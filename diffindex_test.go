package diffindex

import (
	"fmt"
	"testing"
	"time"
)

func openTestDB(t testing.TB, servers int) *DB {
	t.Helper()
	db := Open(Options{Servers: servers})
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	db := openTestDB(t, 3)
	if err := db.CreateTable("reviews", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("reviews", []string{"product"}, SyncInsert, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app-1")
	if _, err := cl.Put("reviews", []byte("r1"), Cols{"product": []byte("p42"), "stars": []byte("5")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("reviews", []byte("r2"), Cols{"product": []byte("p42"), "stars": []byte("3")}); err != nil {
		t.Fatal(err)
	}
	hits, err := cl.GetByIndex("reviews", []string{"product"}, []byte("p42"))
	if err != nil || len(hits) != 2 {
		t.Fatalf("hits=%v err=%v", hits, err)
	}
	rows, err := cl.RowsByIndex("reviews", []string{"product"}, []byte("p42"))
	if err != nil || len(rows) != 2 || string(rows[0].Cols["product"]) != "p42" {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	// Point and row reads.
	v, ts, ok, err := cl.Get("reviews", []byte("r1"), "stars")
	if err != nil || !ok || string(v) != "5" || ts <= 0 {
		t.Fatalf("Get=%q ts=%d ok=%v err=%v", v, ts, ok, err)
	}
	row, err := cl.GetRow("reviews", []byte("r1"))
	if err != nil || len(row) != 2 {
		t.Fatalf("GetRow=%v err=%v", row, err)
	}
	// Scan.
	all, err := cl.Scan("reviews", nil, nil, 0)
	if err != nil || len(all) != 2 {
		t.Fatalf("Scan=%v err=%v", all, err)
	}
	// Delete clears the index (read-repair path).
	if _, err := cl.Delete("reviews", []byte("r1"), nil); err != nil {
		t.Fatal(err)
	}
	hits, _ = cl.GetByIndex("reviews", []string{"product"}, []byte("p42"))
	if len(hits) != 1 {
		t.Fatalf("hits after delete = %v", hits)
	}
}

func TestPublicAPISchemesAndCounters(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"a"}, SyncFull, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", []string{"b"}, AsyncSimple, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	cl.Put("t", []byte("r"), Cols{"a": []byte("1"), "b": []byte("2")})
	if !db.WaitForIndexes(5 * time.Second) {
		t.Fatal("indexes did not converge")
	}
	if db.PendingIndexUpdates() != 0 {
		t.Error("pending updates after convergence")
	}
	io := db.IOCounts()
	if io.BasePut == 0 || io.IndexPut == 0 || io.AsyncIndexPut == 0 {
		t.Errorf("IOCounts = %+v", io)
	}
	if got := db.Staleness(); got.Count == 0 {
		t.Error("staleness empty after async work")
	}
	db.ResetStaleness()
	if got := db.Staleness(); got.Count != 0 {
		t.Error("ResetStaleness did not clear")
	}
}

func TestPublicAPISession(t *testing.T) {
	db := openTestDB(t, 2)
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"col"}, AsyncSession, nil); err != nil {
		t.Fatal(err)
	}
	// Block async delivery so read-your-writes is load-bearing.
	db.PartitionNetwork("rs1", "rs2")
	defer db.HealNetwork()

	cl := db.NewClient("c")
	s := cl.NewSession()
	defer s.End()
	if s.ID() == "" {
		t.Error("empty session id")
	}
	if _, err := s.Put("t", []byte("r1"), Cols{"col": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	hits, err := s.GetByIndex("t", []string{"col"}, []byte("v"))
	if err != nil || len(hits) != 1 {
		t.Fatalf("session hits=%v err=%v", hits, err)
	}
	if s.Degraded() {
		t.Error("session degraded unexpectedly")
	}
	rh, err := s.RangeByIndex("t", []string{"col"}, []byte("a"), []byte("z"), 0)
	if err != nil || len(rh) != 1 {
		t.Fatalf("session range hits=%v err=%v", rh, err)
	}
	s.End()
	if _, err := s.GetByIndex("t", []string{"col"}, []byte("v")); err != ErrSessionExpired {
		t.Errorf("read after End: %v", err)
	}
}

func TestPublicAPIFailover(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", [][]byte{[]byte("m")})
	if err := db.CreateIndex("t", []string{"col"}, AsyncSimple, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for i := 0; i < 30; i++ {
		cl.Put("t", []byte(fmt.Sprintf("row%02d", i)), Cols{"col": []byte("x")})
	}
	if len(db.Servers()) != 3 || len(db.LiveServers()) != 3 {
		t.Fatal("server listing wrong")
	}
	if err := db.CrashServer(db.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	if len(db.LiveServers()) != 2 {
		t.Error("crashed server still live")
	}
	if !db.WaitForIndexes(10 * time.Second) {
		t.Fatal("indexes did not converge after crash")
	}
	hits, err := cl.GetByIndex("t", []string{"col"}, []byte("x"))
	if err != nil || len(hits) != 30 {
		t.Fatalf("hits=%d err=%v", len(hits), err)
	}
}

func TestPublicAPIRangeAndSplits(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	splits := IndexSplitPoints([]byte("00300"), []byte("00600"))
	if len(splits) != 2 {
		t.Fatal("IndexSplitPoints wrong arity")
	}
	if err := db.CreateIndex("t", []string{"price"}, SyncFull, splits); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for i := 0; i < 100; i++ {
		cl.Put("t", []byte(fmt.Sprintf("row%03d", i)), Cols{"price": []byte(fmt.Sprintf("%05d", i*10))})
	}
	hits, err := cl.RangeByIndex("t", []string{"price"}, []byte("00200"), []byte("00700"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 51 {
		t.Fatalf("range hits = %d, want 51", len(hits))
	}
	if db.DropIndex("t", []string{"missing"}) {
		t.Error("DropIndex of missing index succeeded")
	}
	if !db.DropIndex("t", []string{"price"}) {
		t.Error("DropIndex failed")
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SyncFull: "sync-full", SyncInsert: "sync-insert",
		AsyncSimple: "async-simple", AsyncSession: "async-session",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestPublicAPILocalIndex(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", [][]byte{[]byte("m")})
	if err := db.CreateLocalIndex("t", []string{"kind"}); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for i := 0; i < 12; i++ {
		row := []byte(fmt.Sprintf("%c%02d", 'a'+byte(i%26), i)) // both regions
		if _, err := cl.Put("t", row, Cols{"kind": []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := cl.GetByIndex("t", []string{"kind"}, []byte("x"))
	if err != nil || len(hits) != 12 {
		t.Fatalf("local hits = %d err=%v", len(hits), err)
	}
	// Updates are causal: immediately visible, old value gone.
	if _, err := cl.Put("t", []byte("a00"), Cols{"kind": []byte("y")}); err != nil {
		t.Fatal(err)
	}
	hits, _ = cl.GetByIndex("t", []string{"kind"}, []byte("x"))
	if len(hits) != 11 {
		t.Fatalf("hits after update = %d", len(hits))
	}
	// Scans exclude local-index entries.
	rows, err := cl.Scan("t", nil, nil, 0)
	if err != nil || len(rows) != 12 {
		t.Fatalf("scan rows = %d err=%v", len(rows), err)
	}
	if !db.DropIndex("t", []string{"kind"}) {
		t.Error("DropIndex of local index failed")
	}
}

func TestPublicAPISplitRegion(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	if err := db.CreateLocalIndex("t", []string{"kind"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", []string{"tag"}, SyncFull, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for i := 0; i < 40; i++ {
		row := []byte(fmt.Sprintf("row%03d", i))
		if _, err := cl.Put("t", row, Cols{"kind": []byte("k"), "tag": []byte("g")}); err != nil {
			t.Fatal(err)
		}
	}
	regions, err := db.Regions("t")
	if err != nil || len(regions) != 1 {
		t.Fatalf("regions = %v err=%v", regions, err)
	}
	if err := db.SplitRegion(regions[0].ID, []byte("row020")); err != nil {
		t.Fatal(err)
	}
	regions, _ = db.Regions("t")
	if len(regions) != 2 {
		t.Fatalf("regions after split = %d", len(regions))
	}
	// Both index kinds survive the split: local entries moved with their
	// rows, the global index table is untouched.
	hits, err := cl.GetByIndex("t", []string{"kind"}, []byte("k"))
	if err != nil || len(hits) != 40 {
		t.Fatalf("local hits after split = %d err=%v", len(hits), err)
	}
	hits, err = cl.GetByIndex("t", []string{"tag"}, []byte("g"))
	if err != nil || len(hits) != 40 {
		t.Fatalf("global hits after split = %d err=%v", len(hits), err)
	}
	// New writes to both children keep both indexes fresh.
	if _, err := cl.Put("t", []byte("row005"), Cols{"kind": []byte("k2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("t", []byte("row030"), Cols{"kind": []byte("k2")}); err != nil {
		t.Fatal(err)
	}
	hits, _ = cl.GetByIndex("t", []string{"kind"}, []byte("k2"))
	if len(hits) != 2 {
		t.Fatalf("k2 hits = %d", len(hits))
	}
	if err := db.SplitRegion("ghost", []byte("x")); err == nil {
		t.Error("split of unknown region succeeded")
	}
}
