// Benchmarks regenerating the measured quantity behind each table and
// figure of the paper's evaluation (§8), one benchmark per artifact:
//
//	BenchmarkFig7Update      — update latency per scheme (Figure 7)
//	BenchmarkFig8IndexRead   — exact-match index read latency (Figure 8)
//	BenchmarkFig9Range       — range-query latency vs selectivity (Figure 9)
//	BenchmarkFig10ScaleOut   — update latency, base vs 5x cluster (Figure 10)
//	BenchmarkFig11Staleness  — async staleness percentiles (Figure 11)
//	BenchmarkTable2IOCost    — per-op I/O counts per scheme (Table 2)
//	BenchmarkScanVsIndex     — query-by-index vs full scan (§8.2)
//	BenchmarkRecoveryDrain   — drain-before-flush cost (§5.3)
//
// ns/op carries the simulated network and disk latencies, so the RATIOS
// between schemes — not the absolute values — are the result; they should
// match the paper's shape (sync-insert ≈ 2× a bare put, sync-full ≈ 5×,
// async ≈ 1× at low load; sync-insert reads pay a base read per row).
// Full latency-vs-throughput sweeps live in cmd/diffbench.
package diffindex_test

import (
	"fmt"
	"testing"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

const (
	benchRecords = 800
	benchServers = 4
)

// benchOptions is the ms-scale latency model: a bare put ≈ RTT + WAL sync
// ≈ 3 ms, a disk-bound base read ≈ 8 ms — the same ratios as the paper's
// testbed (and coarse enough for this platform's sleep granularity).
func benchOptions() diffindex.Options {
	return diffindex.Options{
		Servers:         benchServers,
		NetRTT:          2 * time.Millisecond,
		NetJitter:       time.Millisecond,
		DiskReadLatency: 8 * time.Millisecond,
		DiskSyncLatency: time.Millisecond,
		BlockCacheBytes: 512 << 10,
		MemtableBytes:   1 << 20,
		APSWorkers:      4,
	}
}

// benchDB loads the extended-YCSB item table with the given index schemes
// (-1 = no index) and flushes so reads are disk-bound.
func benchDB(b *testing.B, titleScheme, priceScheme int) *diffindex.DB {
	b.Helper()
	db := diffindex.Open(benchOptions())
	if err := workload.Setup(db, benchRecords, benchServers, titleScheme, priceScheme, 8); err != nil {
		db.Close()
		b.Fatal(err)
	}
	if !db.WaitForIndexes(2 * time.Minute) {
		db.Close()
		b.Fatal("indexes did not converge after load")
	}
	if err := db.FlushAll(); err != nil {
		db.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

var updateSchemes = []struct {
	name   string
	scheme int
}{
	{"null", -1},
	{"insert", int(diffindex.SyncInsert)},
	{"full", int(diffindex.SyncFull)},
	{"async", int(diffindex.AsyncSimple)},
}

// BenchmarkFig7Update measures one value-changing update per iteration —
// Figure 7's y-axis at the single-client operating point.
func BenchmarkFig7Update(b *testing.B) {
	for _, s := range updateSchemes {
		b.Run(s.name, func(b *testing.B) {
			db := benchDB(b, s.scheme, -1)
			cl := db.NewClient("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := int64(i) % benchRecords
				_, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
					workload.TitleColumn: workload.UpdatedTitleValue(item, int64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			db.WaitForIndexes(2 * time.Minute)
		})
	}
}

// BenchmarkFig8IndexRead measures one exact-match getByIndex (1 row) per
// iteration with a warmed cache — Figure 8's y-axis.
func BenchmarkFig8IndexRead(b *testing.B) {
	for _, s := range updateSchemes[1:] { // full, insert, async
		b.Run(s.name, func(b *testing.B) {
			db := benchDB(b, s.scheme, -1)
			cl := db.NewClient("bench")
			// Warm the block cache (§8.1).
			for i := int64(0); i < benchRecords; i += 7 {
				if _, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.TitleValue(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := int64(i*131) % benchRecords
				hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.TitleValue(item))
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) != 1 {
					b.Fatalf("got %d hits", len(hits))
				}
			}
		})
	}
}

// BenchmarkFig9Range measures one range query per iteration at each
// selectivity — Figure 9's sweep.
func BenchmarkFig9Range(b *testing.B) {
	for _, s := range []struct {
		name   string
		scheme int
	}{
		{"full", int(diffindex.SyncFull)},
		{"insert", int(diffindex.SyncInsert)},
	} {
		for _, sel := range []float64{0.001, 0.01, 0.1} {
			b.Run(fmt.Sprintf("%s/sel=%.3f", s.name, sel), func(b *testing.B) {
				db := benchDB(b, -1, s.scheme)
				cl := db.NewClient("bench")
				span := int64(sel * benchRecords)
				if span < 1 {
					span = 1
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lo := (int64(i) * 37) % (benchRecords - span)
					hits, err := cl.RangeByIndex(workload.TableName, []string{workload.PriceColumn},
						workload.PriceValue(lo), workload.PriceValue(lo+span-1), 0)
					if err != nil {
						b.Fatal(err)
					}
					if int64(len(hits)) != span {
						b.Fatalf("got %d hits, want %d", len(hits), span)
					}
				}
			})
		}
	}
}

// BenchmarkFig10ScaleOut measures the update op on the base cluster and on
// a 5x cluster with the degraded virtualized I/O profile — Figure 10's
// comparison. Sub-linear per-op slowdown on the larger cluster is the
// expected shape.
func BenchmarkFig10ScaleOut(b *testing.B) {
	for _, c := range []struct {
		name    string
		servers int
		factor  time.Duration // disk degradation multiplier
		records int64
	}{
		{"base4", benchServers, 1, benchRecords},
		{"cloud20", benchServers * 5, 2, benchRecords * 5},
	} {
		b.Run(c.name, func(b *testing.B) {
			opts := benchOptions()
			opts.Servers = c.servers
			opts.DiskReadLatency *= c.factor
			opts.DiskWriteLatency *= c.factor
			opts.DiskSyncLatency *= c.factor
			db := diffindex.Open(opts)
			if err := workload.Setup(db, c.records, c.servers, int(diffindex.SyncInsert), -1, 16); err != nil {
				db.Close()
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			cl := db.NewClient("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := int64(i) % c.records
				if _, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
					workload.TitleColumn: workload.UpdatedTitleValue(item, int64(i)),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Staleness measures update throughput under async while
// reporting the staleness percentiles (T2−T1) as custom metrics — the
// quantity Figure 11 plots.
func BenchmarkFig11Staleness(b *testing.B) {
	db := benchDB(b, int(diffindex.AsyncSimple), -1)
	cl := db.NewClient("bench")
	db.ResetStaleness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := int64(i) % benchRecords
		if _, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
			workload.TitleColumn: workload.UpdatedTitleValue(item, int64(i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !db.WaitForIndexes(2 * time.Minute) {
		b.Fatal("no convergence")
	}
	st := db.Staleness()
	b.ReportMetric(float64(st.P50)/1e3, "staleness-p50-us")
	b.ReportMetric(float64(st.P95)/1e3, "staleness-p95-us")
	b.ReportMetric(float64(st.Max)/1e3, "staleness-max-us")
}

// BenchmarkTable2IOCost measures per-update I/O counts per scheme and
// reports them as custom metrics — Table 2 by measurement.
func BenchmarkTable2IOCost(b *testing.B) {
	for _, s := range updateSchemes[1:] {
		b.Run(s.name, func(b *testing.B) {
			db := benchDB(b, s.scheme, -1)
			cl := db.NewClient("bench")
			before := db.IOCounts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := int64(i) % benchRecords
				if _, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
					workload.TitleColumn: workload.UpdatedTitleValue(item, int64(i)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			db.WaitForIndexes(2 * time.Minute)
			d := db.IOCounts()
			n := float64(b.N)
			b.ReportMetric(float64(d.BaseRead-before.BaseRead)/n, "base-reads/op")
			b.ReportMetric(float64(d.IndexPut-before.IndexPut+d.IndexDel-before.IndexDel)/n, "index-writes/op")
			b.ReportMetric(float64(d.AsyncBaseRead-before.AsyncBaseRead)/n, "async-base-reads/op")
			b.ReportMetric(float64(d.AsyncIndexPut-before.AsyncIndexPut+d.AsyncIndexDel-before.AsyncIndexDel)/n, "async-index-writes/op")
		})
	}
}

// BenchmarkScanVsIndex measures the same selective query answered by the
// global index vs a full table scan — the §8.2 reference comparison.
func BenchmarkScanVsIndex(b *testing.B) {
	db := benchDB(b, int(diffindex.SyncFull), -1)
	cl := db.NewClient("bench")
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			item := int64(i*17) % benchRecords
			hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.TitleValue(item))
			if err != nil || len(hits) != 1 {
				b.Fatalf("hits=%d err=%v", len(hits), err)
			}
		}
	})
	b.Run("tablescan", func(b *testing.B) {
		probe := string(workload.TitleValue(benchRecords / 2))
		for i := 0; i < b.N; i++ {
			rows, err := cl.Scan(workload.TableName, nil, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			matches := 0
			for _, row := range rows {
				if string(row.Cols[workload.TitleColumn]) == probe {
					matches++
				}
			}
			if matches != 1 {
				b.Fatalf("matches=%d", matches)
			}
		}
	})
}

// BenchmarkRecoveryDrain measures a region flush including the
// drain-AUQ-before-flush step under a standing async backlog — the §5.3
// overhead the paper argues is acceptable.
func BenchmarkRecoveryDrain(b *testing.B) {
	db := benchDB(b, int(diffindex.AsyncSimple), -1)
	cl := db.NewClient("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Build a small backlog, then time the flush that must drain it.
		for j := int64(0); j < 64; j++ {
			item := (int64(i)*64 + j) % benchRecords
			cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
				workload.TitleColumn: workload.UpdatedTitleValue(item, int64(i*1000+int(j))),
			})
		}
		b.StartTimer()
		if err := db.FlushAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if db.PendingIndexUpdates() != 0 {
		b.Fatal("AUQ not drained by flush")
	}
}
