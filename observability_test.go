package diffindex

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"diffindex/internal/metrics"
)

// TestMetricsTracePropagationSyncFull verifies the trace context rides a put
// end to end: a put against a sync-full-indexed table must record exactly
// the stage set {wal, memtable, index-rpc} — the WAL append and memtable
// insert of the base write plus the synchronous index maintenance — and
// nothing else (the local index applies deliberately do not re-add wal or
// memtable stages).
func TestMetricsTracePropagationSyncFull(t *testing.T) {
	db := openTestDB(t, 3)
	if err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", []string{"a"}, SyncFull, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	if _, err := cl.Put("t", []byte("r1"), Cols{"a": []byte("v1")}); err != nil {
		t.Fatal(err)
	}

	want := []string{metrics.StageIndexRPC, metrics.StageMemtable, metrics.StageWAL}
	var puts int
	for _, op := range db.SlowOps() {
		if op.Op != "put" || op.Table != "t" {
			continue
		}
		puts++
		got := stageSet(op.Stages)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("sync-full put stages = %v, want %v", got, want)
		}
	}
	if puts == 0 {
		t.Fatal("no put in the slow-op log")
	}
}

// TestMetricsTraceAsyncDelivery verifies the async pipeline's observability:
// the put's own trace stops at the AUQ enqueue (the client-visible part),
// and the APS records the enqueue→durable latency after the fact into the
// aps-delivery stage histogram.
func TestMetricsTraceAsyncDelivery(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"a"}, AsyncSimple, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	if _, err := cl.Put("t", []byte("r1"), Cols{"a": []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if !db.WaitForIndexes(10 * time.Second) {
		t.Fatal("index did not converge")
	}

	want := []string{metrics.StageAUQEnqueue, metrics.StageMemtable, metrics.StageWAL}
	var puts int
	for _, op := range db.SlowOps() {
		if op.Op != "put" || op.Table != "t" {
			continue
		}
		puts++
		got := stageSet(op.Stages)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("async put stages = %v, want %v", got, want)
		}
	}
	if puts == 0 {
		t.Fatal("no put in the slow-op log")
	}
	// The delivery latency is observable even though no trace outlives the
	// put: the APS records enqueue→durable per completed task.
	h := db.c.Metrics().Histogram("diffindex_stage_latency_ns",
		metrics.L("stage", metrics.StageAPSDeliver), metrics.L("table", "t"))
	if s := h.Snapshot(); s.Count < 1 {
		t.Errorf("aps-delivery count = %d, want >= 1", s.Count)
	}
}

func stageSet(stages []metrics.Stage) []string {
	seen := map[string]bool{}
	for _, s := range stages {
		seen[s.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TestMetricsLegacyViewsEquivalence pins the "one source of truth" contract:
// IOCounts, HotPathStats and Staleness are views over the registry, so their
// numbers must equal what the registry reports for the same instruments.
func TestMetricsLegacyViewsEquivalence(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"a"}, AsyncSimple, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for i := 0; i < 32; i++ {
		if _, err := cl.Put("t", []byte{byte(i)}, Cols{"a": {byte(i % 7)}}); err != nil {
			t.Fatal(err)
		}
	}
	if !db.WaitForIndexes(10 * time.Second) {
		t.Fatal("index did not converge")
	}
	if _, err := cl.GetByIndex("t", []string{"a"}, []byte{3}); err != nil {
		t.Fatal(err)
	}

	reg := db.c.Metrics()
	io := db.IOCounts()
	for _, c := range []struct {
		op   string
		want int64
	}{
		{"base-put", io.BasePut}, {"base-read", io.BaseRead},
		{"index-put", io.IndexPut}, {"index-del", io.IndexDel},
		{"index-read", io.IndexRead}, {"async-base-read", io.AsyncBaseRead},
		{"async-index-put", io.AsyncIndexPut}, {"async-index-del", io.AsyncIndexDel},
	} {
		got, ok := reg.Value("diffindex_io_ops_total", metrics.L("op", c.op))
		if !ok || got != c.want {
			t.Errorf("io_ops{op=%s}: registry=%d ok=%v, IOCounts=%d", c.op, got, ok, c.want)
		}
	}

	// HotPathStats must agree with a full snapshot's gauge section (a
	// different read path through the same instruments).
	hp := db.HotPathStats()
	snap := db.MetricsSnapshot()
	var hits, misses int64
	for _, g := range snap.Gauges {
		switch g.Name {
		case "diffindex_block_cache_hits":
			hits += g.Value
		case "diffindex_block_cache_misses":
			misses += g.Value
		}
	}
	if hp.CacheHits != hits || hp.CacheMisses != misses {
		t.Errorf("HotPathStats cache=%d/%d, snapshot=%d/%d", hp.CacheHits, hp.CacheMisses, hits, misses)
	}

	st := db.Staleness()
	hs := reg.Histogram("diffindex_staleness_ns").Snapshot()
	if st.Count != hs.Count || st.P50 != hs.P50 || st.Max != hs.Max {
		t.Errorf("Staleness=%+v, registry histogram=%+v", st, hs)
	}
	if st.Count < 1 {
		t.Error("no staleness samples after async convergence")
	}
}

// TestMetricsHandlerHTTP exercises the expvar-style endpoint: /metrics
// returns the stable-JSON registry snapshot, /slowops the slow-op log.
func TestMetricsHandlerHTTP(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	cl := db.NewClient("c")
	if _, err := cl.Put("t", []byte("r"), Cols{"a": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap metrics.RegistrySnapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a RegistrySnapshot: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("empty snapshot over HTTP: %d counters, %d histograms", len(snap.Counters), len(snap.Histograms))
	}
	var slow []metrics.SlowOp
	if err := json.Unmarshal(get("/slowops"), &slow); err != nil {
		t.Fatalf("/slowops is not a []SlowOp: %v", err)
	}
	if len(slow) == 0 {
		t.Error("empty slow-op log over HTTP after a put")
	}
	if resp, err := http.Get(srv.URL + "/nonsense"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: err=%v status=%v", err, resp.StatusCode)
	}
}

// TestMetricsDumpStream checks StartMetricsDump emits parseable JSON lines
// with the unix_ns envelope and stops cleanly.
func TestMetricsDumpStream(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	var buf syncBuffer
	stop := db.StartMetricsDump(&buf, 10*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	stop()
	stop() // idempotent

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no dump lines")
	}
	var d struct {
		UnixNs  int64                    `json:"unix_ns"`
		Metrics metrics.RegistrySnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("dump line is not a metricsDump: %v", err)
	}
	if d.UnixNs == 0 || len(d.Metrics.Counters) == 0 {
		t.Errorf("dump envelope incomplete: unix_ns=%d counters=%d", d.UnixNs, len(d.Metrics.Counters))
	}
}

// TestMetricsTracingDisabled checks the kill switch: no op histograms, no
// slow-op log entries, but stage histograms and counters still record.
func TestMetricsTracingDisabled(t *testing.T) {
	db := Open(Options{Servers: 3, DisableTracing: true})
	t.Cleanup(func() { db.Close() })
	db.CreateTable("t", nil)
	cl := db.NewClient("c")
	if _, err := cl.Put("t", []byte("r"), Cols{"a": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if ops := db.SlowOps(); len(ops) != 0 {
		t.Errorf("slow-op log has %d entries with tracing disabled", len(ops))
	}
	if _, ok := db.c.Metrics().Value("diffindex_io_ops_total", metrics.L("op", "base-put")); !ok {
		t.Error("counters stopped recording with tracing disabled")
	}
	h := db.c.Metrics().Histogram("diffindex_stage_latency_ns",
		metrics.L("stage", metrics.StageWAL), metrics.L("table", "t"))
	if s := h.Snapshot(); s.Count < 1 {
		t.Error("stage histograms stopped recording with tracing disabled")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the dumper goroutine writes
// concurrently with the test's read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
