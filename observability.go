package diffindex

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"diffindex/internal/metrics"
)

// This file is the DB's live observability surface: programmatic snapshots
// of the metrics registry, the slow-operation log, a periodic JSON dumper,
// and an expvar-style HTTP endpoint. All of it reads the same registry that
// the hot paths write, so numbers here always agree with IOCounts,
// HotPathStats and Staleness (which are views over the same instruments).

// MetricsSnapshot returns a point-in-time snapshot of every counter, gauge
// and histogram in the DB's metrics registry. Counters and gauges are read
// atomically; histograms use the weakly consistent (but internally
// consistent) single-pass snapshot documented on metrics.Histogram.
func (db *DB) MetricsSnapshot() metrics.RegistrySnapshot {
	return db.c.Metrics().Snapshot()
}

// SlowOps returns the K slowest operations recorded so far (slowest first),
// each with its per-stage latency breakdown. K is Options.SlowOpLog; the log
// is empty when Options.DisableTracing is set.
func (db *DB) SlowOps() []metrics.SlowOp {
	return db.c.Tracer().SlowOps()
}

// metricsDump is the envelope StartMetricsDump writes: one JSON object per
// line, timestamped so dumps can be correlated with experiment phases.
type metricsDump struct {
	UnixNs  int64                    `json:"unix_ns"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
}

// StartMetricsDump writes a JSON line with the full registry snapshot to w
// every interval until the returned stop function is called. Writes are
// serialized; errors from w stop the dumper. Intended for piping live stats
// from long experiments into a file or a terminal (`diffbench -metrics`).
func (db *DB) StartMetricsDump(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		enc := json.NewEncoder(w)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				d := metricsDump{UnixNs: time.Now().UnixNano(), Metrics: db.MetricsSnapshot()}
				if err := enc.Encode(d); err != nil {
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// MetricsHandler returns an http.Handler that serves the registry as JSON —
// an expvar-style live stats endpoint:
//
//	/         the full registry snapshot (stable JSON: sorted keys)
//	/slowops  the slow-op log with per-stage breakdowns
//
// Mount it wherever convenient, or use StartMetricsHTTP for a ready server.
func (db *DB) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" && r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		buf, err := db.MetricsSnapshot().MarshalStableJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(buf)
	})
	mux.HandleFunc("/slowops", func(w http.ResponseWriter, r *http.Request) {
		buf, err := json.MarshalIndent(db.SlowOps(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(buf)
	})
	return mux
}

// StartMetricsHTTP serves MetricsHandler on addr (e.g. "localhost:0"; the
// returned string is the bound address, useful with port 0). The server
// shuts down when stop is called or the DB is not otherwise torn down —
// callers own the lifecycle.
func (db *DB) StartMetricsHTTP(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("diffindex: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: db.MetricsHandler()}
	go srv.Serve(ln)
	var once sync.Once
	return ln.Addr().String(), func() { once.Do(func() { srv.Close() }) }, nil
}
