package diffindex

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"diffindex/internal/metrics"
)

// This file is the DB's live observability surface: programmatic snapshots
// of the metrics registry, the slow-operation log, a periodic JSON dumper,
// and an expvar-style HTTP endpoint. All of it reads the same registry that
// the hot paths write, so numbers here always agree with IOCounts,
// HotPathStats and Staleness (which are views over the same instruments).

// MetricsSnapshot returns a point-in-time snapshot of every counter, gauge
// and histogram in the DB's metrics registry. Counters and gauges are read
// atomically; histograms use the weakly consistent (but internally
// consistent) single-pass snapshot documented on metrics.Histogram.
func (db *DB) MetricsSnapshot() metrics.RegistrySnapshot {
	return db.c.Metrics().Snapshot()
}

// SlowOps returns the K slowest operations recorded so far (slowest first),
// each with its per-stage latency breakdown. K is Options.SlowOpLog; the log
// is empty when Options.DisableTracing is set.
func (db *DB) SlowOps() []metrics.SlowOp {
	return db.c.Tracer().SlowOps()
}

// Health status levels, ordered by severity.
const (
	// HealthOK: no corruption, no failing background work.
	HealthOK = "ok"
	// HealthDegraded: the store serves requests but something needs operator
	// attention (failing compactions, crashed servers, a backed-up AUQ, or
	// index violations found that could not be repaired).
	HealthDegraded = "degraded"
	// HealthUnhealthy: data integrity is in question (checksum corruption
	// detected) or no server is live.
	HealthUnhealthy = "unhealthy"
)

// healthAUQDepthThreshold is the queued-async-update depth beyond which the
// DB reports degraded: the default AUQ capacity is 4096 per region, so a
// cluster-wide backlog past this level means async indexes are far behind.
const healthAUQDepthThreshold = 4096

// Health is an aggregate health view of the DB, computed from the metrics
// registry plus live cluster state. Status is HealthOK, HealthDegraded or
// HealthUnhealthy; Reasons explains every non-ok contribution.
type Health struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`

	// Integrity scrubbing (cluster-wide sums over every region store).
	ScrubCorruptions int64 `json:"scrub_corruptions"`
	ScrubBlocksTotal int64 `json:"scrub_blocks_total"`
	ScrubBytesTotal  int64 `json:"scrub_bytes_total"`
	ScrubCyclesTotal int64 `json:"scrub_cycles_total"`

	// Background maintenance.
	CompactionErrors int64 `json:"compaction_errors"`

	// Asynchronous index pipeline.
	PendingIndexUpdates int64 `json:"pending_index_updates"`

	// Anti-entropy verification: confirmed violations found vs repaired,
	// cumulative. Outstanding = found − repaired.
	IndexViolationsFound    int64 `json:"index_violations_found"`
	IndexViolationsRepaired int64 `json:"index_violations_repaired"`

	// Topology.
	LiveServers  int `json:"live_servers"`
	TotalServers int `json:"total_servers"`
}

// sumCounters totals every counter with the given name across label sets.
func sumCounters(points []metrics.MetricPoint, name string) int64 {
	var total int64
	for _, p := range points {
		if p.Name == name {
			total += p.Value
		}
	}
	return total
}

// Health computes the DB's aggregate health from the same registry the
// metrics endpoints serve, so /healthz always agrees with /metrics. The
// status rules: checksum corruption anywhere (or zero live servers) is
// unhealthy; failing compactions, crashed servers, an AUQ backlog past the
// threshold, or unrepaired index violations are degraded; otherwise ok.
func (db *DB) Health() Health {
	snap := db.c.Metrics().Snapshot()
	h := Health{
		ScrubCorruptions:        sumCounters(snap.Counters, "diffindex_scrub_corruptions_total"),
		ScrubBlocksTotal:        sumCounters(snap.Counters, "diffindex_scrub_blocks_total"),
		ScrubBytesTotal:         sumCounters(snap.Counters, "diffindex_scrub_bytes_total"),
		ScrubCyclesTotal:        sumCounters(snap.Counters, "diffindex_scrub_cycles_total"),
		CompactionErrors:        sumCounters(snap.Counters, "diffindex_compaction_errors_total"),
		PendingIndexUpdates:     db.m.QueueDepth(),
		IndexViolationsFound:    sumCounters(snap.Counters, "diffindex_antientropy_violations_total"),
		IndexViolationsRepaired: sumCounters(snap.Counters, "diffindex_antientropy_repairs_total"),
		LiveServers:             len(db.c.LiveServerIDs()),
		TotalServers:            len(db.c.ServerIDs()),
	}

	h.Status = HealthOK
	degrade := func(reason string) {
		if h.Status == HealthOK {
			h.Status = HealthDegraded
		}
		h.Reasons = append(h.Reasons, reason)
	}
	fail := func(reason string) {
		h.Status = HealthUnhealthy
		h.Reasons = append(h.Reasons, reason)
	}
	if h.ScrubCorruptions > 0 {
		fail(fmt.Sprintf("scrubber detected %d corrupted blocks", h.ScrubCorruptions))
	}
	if h.LiveServers == 0 {
		fail("no live region servers")
	}
	if h.CompactionErrors > 0 {
		degrade(fmt.Sprintf("%d background compaction rounds failed", h.CompactionErrors))
	}
	if h.LiveServers < h.TotalServers {
		degrade(fmt.Sprintf("%d of %d region servers down", h.TotalServers-h.LiveServers, h.TotalServers))
	}
	if h.PendingIndexUpdates > healthAUQDepthThreshold {
		degrade(fmt.Sprintf("async index backlog %d exceeds %d", h.PendingIndexUpdates, healthAUQDepthThreshold))
	}
	if out := h.IndexViolationsFound - h.IndexViolationsRepaired; out > 0 {
		degrade(fmt.Sprintf("%d index violations found but not repaired", out))
	}
	return h
}

// metricsDump is the envelope StartMetricsDump writes: one JSON object per
// line, timestamped so dumps can be correlated with experiment phases.
type metricsDump struct {
	UnixNs  int64                    `json:"unix_ns"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
}

// StartMetricsDump writes a JSON line with the full registry snapshot to w
// every interval until the returned stop function is called. Writes are
// serialized; errors from w stop the dumper. Intended for piping live stats
// from long experiments into a file or a terminal (`diffbench -metrics`).
func (db *DB) StartMetricsDump(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		enc := json.NewEncoder(w)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				d := metricsDump{UnixNs: time.Now().UnixNano(), Metrics: db.MetricsSnapshot()}
				if err := enc.Encode(d); err != nil {
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// MetricsHandler returns an http.Handler that serves the registry as JSON —
// an expvar-style live stats endpoint:
//
//	/         the full registry snapshot (stable JSON: sorted keys)
//	/slowops  the slow-op log with per-stage breakdowns
//	/healthz  the aggregate Health view (HTTP 503 when unhealthy)
//
// Mount it wherever convenient, or use StartMetricsHTTP for a ready server.
func (db *DB) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" && r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		buf, err := db.MetricsSnapshot().MarshalStableJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(buf)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := db.Health()
		buf, err := json.MarshalIndent(h, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if h.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(buf)
	})
	mux.HandleFunc("/slowops", func(w http.ResponseWriter, r *http.Request) {
		buf, err := json.MarshalIndent(db.SlowOps(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(buf)
	})
	return mux
}

// StartMetricsHTTP serves MetricsHandler on addr (e.g. "localhost:0"; the
// returned string is the bound address, useful with port 0). The server
// shuts down when stop is called or the DB is not otherwise torn down —
// callers own the lifecycle.
func (db *DB) StartMetricsHTTP(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("diffindex: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: db.MetricsHandler()}
	go srv.Serve(ln)
	var once sync.Once
	return ln.Addr().String(), func() { once.Do(func() { srv.Close() }) }, nil
}
