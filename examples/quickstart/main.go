// Quickstart: create a table, add a global secondary index, write rows and
// query them by the indexed column — the minimal Diff-Index workflow.
package main

import (
	"fmt"

	"diffindex"
)

func main() {
	// A 4-server simulated cluster with default (zero) latencies.
	db := diffindex.Open(diffindex.Options{Servers: 4})
	defer db.Close()

	// A products table, pre-split into two regions at key "m".
	if err := db.CreateTable("products", [][]byte{[]byte("m")}); err != nil {
		panic(err)
	}
	// A sync-insert index on the category column: fast updates, stale
	// entries repaired during reads.
	if err := db.CreateIndex("products", []string{"category"}, diffindex.SyncInsert, nil); err != nil {
		panic(err)
	}

	cl := db.NewClient("quickstart")
	for _, p := range []struct{ id, name, category, price string }{
		{"espresso-cup", "Espresso cup", "kitchen", "12"},
		{"moka-pot", "Moka pot", "kitchen", "35"},
		{"desk-lamp", "Desk lamp", "office", "49"},
		{"notebook", "Dotted notebook", "office", "9"},
		{"grinder", "Burr grinder", "kitchen", "89"},
	} {
		if _, err := cl.Put("products", []byte(p.id), diffindex.Cols{
			"name":     []byte(p.name),
			"category": []byte(p.category),
			"price":    []byte(p.price),
		}); err != nil {
			panic(err)
		}
	}

	// Query by the secondary index.
	rows, err := cl.RowsByIndex("products", []string{"category"}, []byte("kitchen"))
	if err != nil {
		panic(err)
	}
	fmt.Println("kitchen products:")
	for _, r := range rows {
		fmt.Printf("  %-14s %-16s $%s\n", r.Key, r.Cols["name"], r.Cols["price"])
	}

	// Update a row: the index entry moves (the stale one is repaired on
	// the next read of the old value).
	if _, err := cl.Put("products", []byte("desk-lamp"), diffindex.Cols{"category": []byte("lighting")}); err != nil {
		panic(err)
	}
	hits, _ := cl.GetByIndex("products", []string{"category"}, []byte("office"))
	fmt.Printf("office products after recategorizing the lamp: %d (the notebook)\n", len(hits))
	hits, _ = cl.GetByIndex("products", []string{"category"}, []byte("lighting"))
	fmt.Printf("lighting products: %d (the lamp)\n", len(hits))

	// Primary-key access still works as usual.
	name, _, _, _ := cl.Get("products", []byte("moka-pot"), "name")
	fmt.Printf("moka-pot is %q\n", name)
}
