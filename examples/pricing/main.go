// Pricing: numeric range queries over a secondary index using the typed
// order-preserving encodings (the "custom encoding schemes" of the paper's
// Big SQL integration, §7). Prices are float64s encoded so byte order
// equals numeric order, making RangeByIndex a real numeric range; a dense
// column packs several typed fields into one value.
package main

import (
	"fmt"

	"diffindex"
)

func main() {
	db := diffindex.Open(diffindex.Options{Servers: 3})
	defer db.Close()

	if err := db.CreateTable("products", nil); err != nil {
		panic(err)
	}
	// Index the float-encoded price column; sync-full so range reads need
	// no double-checking.
	if err := db.CreateIndex("products", []string{"price"}, diffindex.SyncFull, nil); err != nil {
		panic(err)
	}
	cl := db.NewClient("pricing")

	products := []struct {
		id    string
		price float64
		stock int64
		sale  bool
	}{
		{"kettle", 39.90, 12, false},
		{"grinder", 129.00, 3, true},
		{"scale", 24.50, 40, false},
		{"dripper", 18.00, 25, true},
		{"carafe", 44.95, 0, false},
		{"thermometer", 9.99, 100, false},
	}
	for _, p := range products {
		// The dense "info" column packs stock and sale flag into one value.
		if _, err := cl.Put("products", []byte(p.id), diffindex.Cols{
			"price": diffindex.EncodeFloat64(p.price),
			"info": diffindex.DenseValue(
				diffindex.Int64Field(p.stock),
				diffindex.BoolField(p.sale),
			),
		}); err != nil {
			panic(err)
		}
	}

	// Numeric range: 10.00 ≤ price ≤ 45.00.
	hits, err := cl.RangeByIndex("products", []string{"price"},
		diffindex.EncodeFloat64(10.00), diffindex.EncodeFloat64(45.00), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("products priced between $10 and $45 (ascending):")
	for _, h := range hits {
		row, _ := cl.GetRow("products", h.Row)
		price, _ := diffindex.DecodeFloat64(row["price"])
		fields, _ := diffindex.DenseFields(row["info"])
		fmt.Printf("  %-12s $%6.2f  stock=%-3d sale=%v\n", h.Row, price, fields[0].Int, fields[1].Bool)
	}

	// Reprice one product: the index entry moves numerically.
	if _, err := cl.Put("products", []byte("carafe"), diffindex.Cols{
		"price": diffindex.EncodeFloat64(59.00),
	}); err != nil {
		panic(err)
	}
	hits, _ = cl.RangeByIndex("products", []string{"price"},
		diffindex.EncodeFloat64(50.00), nil, 0)
	fmt.Printf("products at $50+ after repricing the carafe: %d\n", len(hits))

	// Negative and fractional values order correctly too (store credits).
	cl.Put("products", []byte("store-credit"), diffindex.Cols{
		"price": diffindex.EncodeFloat64(-15.00),
	})
	hits, _ = cl.RangeByIndex("products", []string{"price"},
		diffindex.EncodeFloat64(-100.00), diffindex.EncodeFloat64(0.00), 0)
	fmt.Printf("negative-priced entries: %d (the credit)\n", len(hits))
}
