// Social reviews: the paper's motivating application (§1, Figure 1) and its
// session-consistency scenario (§3.3). A yelp-like service stores reviews
// keyed by review ID, with global secondary indexes on ProductID and UserID
// so "all reviews for a product" and "all reviews by a user" are efficient.
//
// The demo reproduces the §3.3 interaction: with an asynchronously
// maintained index, User 1 posts a review and immediately lists the
// product's reviews. Without session consistency the review can be missing
// (the cannot-see-your-own-write anomaly); inside a session it is always
// visible, while User 2 — a different session — is allowed to lag.
package main

import (
	"fmt"
	"time"

	"diffindex"
)

func main() {
	db := diffindex.Open(diffindex.Options{
		Servers: 4,
		// A little network latency makes the asynchronous window real.
		NetRTT: 200 * time.Microsecond,
	})
	defer db.Close()

	// Figure 1's schema: Reviews(ReviewID, UserID, ProductID, Rating, ...),
	// partitioned by ReviewID. The indexes make the two common queries
	// efficient; async-session keeps review posting fast.
	if err := db.CreateTable("reviews", nil); err != nil {
		panic(err)
	}
	for _, col := range []string{"product", "user"} {
		if err := db.CreateIndex("reviews", []string{col}, diffindex.AsyncSession, nil); err != nil {
			panic(err)
		}
	}

	// Seed some existing reviews.
	seed := db.NewClient("seed")
	for i, r := range []struct{ user, product, rating string }{
		{"ursula", "cafe-blue", "4"},
		{"victor", "cafe-blue", "5"},
		{"ursula", "taqueria-sol", "3"},
	} {
		if _, err := seed.Put("reviews", []byte(fmt.Sprintf("r%04d", i)), diffindex.Cols{
			"user": []byte(r.user), "product": []byte(r.product), "rating": []byte(r.rating),
		}); err != nil {
			panic(err)
		}
	}
	db.WaitForIndexes(10 * time.Second)

	// Block the server-to-server paths so asynchronous index delivery
	// stalls — an exaggerated version of the natural lag, making the §3.3
	// anomaly deterministic for the demo.
	for _, a := range db.Servers() {
		for _, b := range db.Servers() {
			if a < b {
				db.PartitionNetwork(a, b)
			}
		}
	}

	// t=1: User 1 views reviews for cafe-blue; User 2 views taqueria-sol.
	user1 := db.NewClient("user1").NewSession()
	defer user1.End()
	user2 := db.NewClient("user2").NewSession()
	defer user2.End()

	hits, _ := user1.GetByIndex("reviews", []string{"product"}, []byte("cafe-blue"))
	fmt.Printf("t=1  user1 sees %d reviews for cafe-blue\n", len(hits))
	hits, _ = user2.GetByIndex("reviews", []string{"product"}, []byte("taqueria-sol"))
	fmt.Printf("t=1  user2 sees %d reviews for taqueria-sol\n", len(hits))

	// t=2: User 1 posts a review for cafe-blue.
	if _, err := user1.Put("reviews", []byte("r9999"), diffindex.Cols{
		"user": []byte("user1"), "product": []byte("cafe-blue"), "rating": []byte("5"),
	}); err != nil {
		panic(err)
	}
	fmt.Println("t=2  user1 posts a review for cafe-blue")

	// t=3: both users list cafe-blue's reviews. The index has NOT caught
	// up (delivery is stalled), yet user1 — same session — sees their own
	// review; user2 may not, which session consistency permits.
	hits, _ = user1.GetByIndex("reviews", []string{"product"}, []byte("cafe-blue"))
	fmt.Printf("t=3  user1 sees %d reviews for cafe-blue (their own included: read-your-writes)\n", len(hits))
	hits2, _ := user2.GetByIndex("reviews", []string{"product"}, []byte("cafe-blue"))
	fmt.Printf("t=3  user2 sees %d reviews for cafe-blue (may lag: eventual consistency)\n", len(hits2))

	// "Reviews by user" works the same way.
	byUser, _ := user1.GetByIndex("reviews", []string{"user"}, []byte("user1"))
	fmt.Printf("t=3  user1 sees %d of their own reviews via the user index\n", len(byUser))

	// Heal; the APS delivers; everyone converges.
	db.HealNetwork()
	if !db.WaitForIndexes(30 * time.Second) {
		panic("index did not converge")
	}
	hits2, _ = user2.GetByIndex("reviews", []string{"product"}, []byte("cafe-blue"))
	fmt.Printf("t=4  after convergence user2 sees %d reviews for cafe-blue\n", len(hits2))
}
