// Telemetry ingest: the write-intensive workload the paper motivates
// Diff-Index with ("Internet-scale workloads become more write-intensive
// with the proliferation of click streams, GPS and mobile devices", §1). A
// fleet of devices streams readings into a measurements table; an
// async-simple index on device ID supports occasional lookups without
// slowing ingestion, and the program reports the measured index staleness —
// the trade the paper quantifies in Figure 11.
package main

import (
	"fmt"
	"sync"
	"time"

	"diffindex"
)

const (
	devices  = 40
	readings = 50 // per device
)

func main() {
	db := diffindex.Open(diffindex.Options{
		Servers:          4,
		NetRTT:           150 * time.Microsecond,
		DiskWriteLatency: 5 * time.Microsecond,
		DiskSyncLatency:  10 * time.Microsecond,
	})
	defer db.Close()

	if err := db.CreateTable("measurements", [][]byte{[]byte("m-2"), []byte("m-5"), []byte("m-8")}); err != nil {
		panic(err)
	}
	// Eventually-consistent device index: ingestion never waits for it.
	if err := db.CreateIndex("measurements", []string{"device"}, diffindex.AsyncSimple, nil); err != nil {
		panic(err)
	}

	fmt.Printf("ingesting %d readings from %d devices...\n", devices*readings, devices)
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			cl := db.NewClient(fmt.Sprintf("device-%02d", d))
			for r := 0; r < readings; r++ {
				key := []byte(fmt.Sprintf("m-%d-%06d", d%10, d*readings+r))
				if _, err := cl.Put("measurements", key, diffindex.Cols{
					"device": []byte(fmt.Sprintf("dev%04d", d)),
					"metric": []byte("temperature"),
					"value":  []byte(fmt.Sprintf("%d.%d", 20+d%10, r%10)),
				}); err != nil {
					panic(err)
				}
			}
		}(d)
	}
	wg.Wait()
	ingestTime := time.Since(start)
	total := devices * readings
	fmt.Printf("ingested %d readings in %v (%.0f puts/s); %d index updates still pending\n",
		total, ingestTime.Round(time.Millisecond),
		float64(total)/ingestTime.Seconds(), db.PendingIndexUpdates())

	// The ingest path never blocked on the index; now watch it converge.
	if !db.WaitForIndexes(time.Minute) {
		panic("index did not converge")
	}
	st := db.Staleness()
	fmt.Printf("index staleness (T2−T1): n=%d p50=%v p95=%v max=%v\n",
		st.Count, time.Duration(st.P50).Round(time.Microsecond),
		time.Duration(st.P95).Round(time.Microsecond),
		time.Duration(st.Max).Round(time.Microsecond))

	// Look up one device's readings via the index.
	cl := db.NewClient("dashboard")
	hits, err := cl.GetByIndex("measurements", []string{"device"}, []byte("dev0007"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("device dev0007 has %d readings indexed (expected %d)\n", len(hits), readings)

	// Flush (draining queues first, per the recovery protocol) and show
	// the I/O ledger.
	if err := db.FlushAll(); err != nil {
		panic(err)
	}
	io := db.IOCounts()
	fmt.Printf("I/O ledger: base puts=%d, async index puts=%d, async base reads=%d\n",
		io.BasePut, io.AsyncIndexPut, io.AsyncBaseRead)
}
