// Recovery: a live demonstration of the §5.3 failure-recovery protocol.
// The program stalls asynchronous index delivery with a network partition
// so the AUQ holds pending work, then crashes the region server — losing
// the queue along with the memtables. Recovery reassigns the regions,
// replays the WAL on the new servers, and re-enqueues every replayed put
// into the AUQ; because index entries carry their base entry's timestamp,
// redelivery is idempotent and the index converges to exactly the right
// state.
package main

import (
	"fmt"
	"time"

	"diffindex"
)

const rows = 200

func main() {
	db := diffindex.Open(diffindex.Options{
		Servers: 4,
		NetRTT:  150 * time.Microsecond,
	})
	defer db.Close()

	if err := db.CreateTable("orders", [][]byte{[]byte("order-100")}); err != nil {
		panic(err)
	}
	if err := db.CreateIndex("orders", []string{"status"}, diffindex.AsyncSimple, nil); err != nil {
		panic(err)
	}
	cl := db.NewClient("app")

	// Stall server↔server delivery so index work piles up in the AUQ.
	servers := db.Servers()
	for i := 0; i < len(servers); i++ {
		for j := i + 1; j < len(servers); j++ {
			db.PartitionNetwork(servers[i], servers[j])
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := cl.Put("orders", []byte(fmt.Sprintf("order-%03d", i)), diffindex.Cols{
			"status": []byte("pending"),
			"amount": []byte(fmt.Sprintf("%d", 10+i)),
		}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d orders; %d index updates pending in the AUQ (delivery stalled)\n",
		rows, db.PendingIndexUpdates())

	// Crash a server while its queue is full. The in-memory AUQ dies with
	// it; the WAL survives in the shared file system.
	victim := db.LiveServers()[0]
	fmt.Printf("crashing %s (in-memory AUQ and memtables lost)...\n", victim)
	start := time.Now()
	if err := db.CrashServer(victim); err != nil {
		panic(err)
	}
	fmt.Printf("regions reassigned and WALs replayed in %v; pending after replay: %d\n",
		time.Since(start).Round(time.Millisecond), db.PendingIndexUpdates())

	// Heal the network; the APS drains the reconstructed queues.
	db.HealNetwork()
	if !db.WaitForIndexes(time.Minute) {
		panic("index did not converge after recovery")
	}
	fmt.Printf("index converged %v after the crash\n", time.Since(start).Round(time.Millisecond))

	// Verify: every order is findable through the index, exactly once.
	hits, err := cl.GetByIndex("orders", []string{"status"}, []byte("pending"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("index lookup status=pending: %d orders (expected %d)\n", len(hits), rows)
	if len(hits) != rows {
		panic("index incomplete after recovery")
	}
	// Base data also survived (memtable rebuilt from the WAL).
	if _, _, ok, _ := cl.Get("orders", []byte("order-000"), "amount"); !ok {
		panic("base data lost")
	}
	fmt.Println("recovery protocol verified: no index entry lost, none duplicated")
}
