// Adaptive scheme selection: the paper's future-work extension ("we plan to
// investigate workload-aware scheme selection", §10) implemented on top of
// the scheme spectrum. An advisor observes each index's read/write ratio
// and recommends a scheme per the paper's §3.4 principles; switching an
// index away from sync-insert first runs the cleanse utility (§7) so no
// stale entries are orphaned.
package main

import (
	"fmt"

	"diffindex"
)

func main() {
	db := diffindex.Open(diffindex.Options{Servers: 3})
	defer db.Close()

	if err := db.CreateTable("events", nil); err != nil {
		panic(err)
	}
	// Start pessimistically with sync-insert (cheap updates, consistency
	// kept via read repair).
	if err := db.CreateIndex("events", []string{"kind"}, diffindex.SyncInsert, nil); err != nil {
		panic(err)
	}
	advisor := db.NewAdvisor()
	cl := db.NewClient("app")

	// Phase 1: ingest-heavy. Many writes, few reads.
	for i := 0; i < 300; i++ {
		if _, err := cl.Put("events", []byte(fmt.Sprintf("ev%05d", i)), diffindex.Cols{
			"kind": []byte(fmt.Sprintf("kind%d", i%5)),
		}); err != nil {
			panic(err)
		}
	}
	cl.GetByIndex("events", []string{"kind"}, []byte("kind0"))
	u, r := advisor.Observed("events", "kind")
	rec := advisor.Recommend("events", []string{"kind"}, diffindex.Requirements{NeedConsistency: true})
	fmt.Printf("phase 1: observed %d updates / %d reads → recommend %s\n  rationale: %s\n",
		u, r, rec.Scheme, rec.Rationale)

	// Phase 2: the workload flips to read-heavy dashboards.
	for i := 0; i < 800; i++ {
		if _, err := cl.GetByIndex("events", []string{"kind"}, []byte(fmt.Sprintf("kind%d", i%5))); err != nil {
			panic(err)
		}
	}
	u, r = advisor.Observed("events", "kind")
	rec = advisor.Recommend("events", []string{"kind"}, diffindex.Requirements{NeedConsistency: true})
	fmt.Printf("phase 2: observed %d updates / %d reads → recommend %s\n  rationale: %s\n",
		u, r, rec.Scheme, rec.Rationale)

	// Apply the recommendation live. Because the index leaves sync-insert,
	// the switch cleanses stale entries first (update churn left some).
	for i := 0; i < 50; i++ { // create some stale entries
		cl.Put("events", []byte(fmt.Sprintf("ev%05d", i)), diffindex.Cols{
			"kind": []byte("rekinded"),
		})
	}
	checked, repaired, err := cl.Cleanse("events", "kind")
	if err != nil {
		panic(err)
	}
	fmt.Printf("manual cleanse: checked %d entries, repaired %d stale\n", checked, repaired)

	if _, err := advisor.Apply(cl, "events", []string{"kind"}, diffindex.Requirements{NeedConsistency: true}); err != nil {
		panic(err)
	}
	fmt.Printf("index switched to %s; reads no longer double-check\n", rec.Scheme)

	// Verify correctness after the switch.
	hits, err := cl.GetByIndex("events", []string{"kind"}, []byte("rekinded"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("kind=rekinded → %d rows (expected 50)\n", len(hits))
}
