// Package diffindex is a from-scratch Go reproduction of Diff-Index
// (Tan, Tata, Tang, Fong: "Diff-Index: Differentiated Index in Distributed
// Log-Structured Data Stores", EDBT 2014): global secondary indexes over a
// distributed log-structured (LSM) data store, with a spectrum of index
// maintenance schemes trading consistency for latency:
//
//	SyncFull     causal consistent      index fully maintained inside the put
//	SyncInsert   causal w/ read-repair  fast puts, stale entries cleaned on read
//	AsyncSimple  eventually consistent  index maintained by a background service
//	AsyncSession session consistent     async plus client-side read-your-writes
//
// The package bundles the whole system the paper runs on: an HBase-style
// cluster (key-range partitioned regions, WAL + memtable + SSTable LSM
// stores, master-driven failure recovery) over a simulated network and disk,
// so experiments reproduce the paper's latency asymmetries on a laptop.
//
// # Quick start
//
//	db := diffindex.Open(diffindex.Options{Servers: 4})
//	defer db.Close()
//	db.CreateTable("reviews", nil)
//	db.CreateIndex("reviews", []string{"product"}, diffindex.SyncInsert, nil)
//	cl := db.NewClient("app-1")
//	cl.Put("reviews", []byte("r1"), diffindex.Cols{"product": []byte("p42"), "stars": []byte("5")})
//	hits, _ := cl.GetByIndex("reviews", []string{"product"}, []byte("p42"))
package diffindex

import (
	"sync"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/core"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/simnet"
	"diffindex/internal/vfs"
)

// Scheme selects how an index is maintained (§3.4 of the paper). Schemes
// are chosen per index.
type Scheme int

const (
	// SyncFull completes all index maintenance inside the put: strongest
	// consistency, highest update latency (it pays a base-table read).
	SyncFull Scheme = iota
	// SyncInsert inserts the new index entry synchronously and repairs
	// stale entries lazily during reads: fast updates, slower reads.
	SyncInsert
	// AsyncSimple queues index maintenance for background execution:
	// fastest updates and reads, eventually consistent.
	AsyncSimple
	// AsyncSession is AsyncSimple plus read-your-writes within a Session.
	AsyncSession
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string { return core.Scheme(s).String() }

func (s Scheme) internal() core.Scheme { return core.Scheme(s) }

// Cols is a row's column values.
type Cols = map[string][]byte

// Options configures a DB. The zero value is a usable 3-server cluster with
// no simulated latencies (fastest; good for tests). Latency fields model
// the environment of the paper's experiments — see the bench harness for
// the calibrated profile.
type Options struct {
	// Servers is the number of region servers (default 3).
	Servers int

	// NetRTT and NetJitter model the cluster network round-trip per RPC.
	NetRTT    time.Duration
	NetJitter time.Duration

	// DiskReadLatency is charged per SSTable block read (a random I/O);
	// DiskWriteLatency per sequential append; DiskSyncLatency per WAL sync.
	DiskReadLatency  time.Duration
	DiskWriteLatency time.Duration
	DiskSyncLatency  time.Duration

	// BaseFS, when non-nil, is the file system the cluster's simulated disk
	// wraps instead of a fresh in-memory FS. The chaos harness passes a
	// vfs.FaultFS here so seeded disk faults compose with the latency model.
	BaseFS vfs.FS

	// BlockCacheBytes sizes each server's block cache (default 32 MiB;
	// negative disables caching).
	BlockCacheBytes int64
	// MemtableBytes is the per-region flush threshold (default 4 MiB).
	MemtableBytes int64
	// MaxVersions is per-key version retention at compaction (default 3).
	MaxVersions int
	// CompactionThreshold is the SSTable count that triggers a compaction
	// (default 4).
	CompactionThreshold int
	// CompactionFanIn bounds how many SSTables one incremental compaction
	// round merges per region store (default 4). Each round picks at most
	// this many similar-sized tables, so compaction I/O stays bounded no
	// matter how many tables a write burst accumulates.
	CompactionFanIn int
	// MaxConcurrentCompactions bounds how many compaction rounds may run
	// at once per region store (default 2); rounds work on disjoint table
	// sets and run in parallel with flushes.
	MaxConcurrentCompactions int

	// ReadFanOut bounds how many per-region RPCs one client operation may
	// have in flight at once on the scatter-gather paths: batched MultiGet
	// row fetches, region-batched index maintenance, local-index broadcast
	// scans and index-range scans (default 8; 1 forces the serial
	// behaviour).
	ReadFanOut int

	// AUQCapacity bounds each region's asynchronous update queue
	// (default 4096).
	AUQCapacity int
	// APSWorkers is the number of asynchronous processing workers per
	// region (default 2).
	APSWorkers int
	// APSBatch bounds how many queued index updates one APS worker drains
	// and coalesces into a single region-batched apply (default 16; 1
	// disables micro-batching).
	APSBatch int
	// AUQMaxBacklog, when > 0, caps each region's pending asynchronous
	// index work: an arrival that would exceed the cap is shed to the
	// synchronous path (maintained inline in the put), bounding both queue
	// memory and index staleness under overload. 0 keeps the classic
	// block-at-capacity backpressure.
	AUQMaxBacklog int
	// StalenessSampleEvery samples every Nth async completion into the
	// staleness histogram (default 1 = all; the paper samples 0.1%).
	StalenessSampleEvery int

	// BalancerInterval, when > 0, runs the continuous load-aware balancer:
	// every interval the master compares per-server op counts, migrates one
	// region from the most- to the least-loaded server when the hotspot
	// ratio is exceeded, and merges one cold adjacent region pair when
	// MergeColdThreshold is set. 0 disables the loop (Rebalance still runs
	// rounds on demand).
	BalancerInterval time.Duration
	// HotspotRatio is the most/least-loaded ratio that triggers a balancer
	// move (default 2.0).
	HotspotRatio float64
	// MergeColdThreshold, when > 0, lets balancer rounds merge adjacent
	// regions that each served fewer ops than this since the last round.
	MergeColdThreshold int64
	// MinRegionsPerTable is the floor cold merges never shrink a table
	// below (default 2).
	MinRegionsPerTable int

	// SessionTTL expires inactive sessions (default 30 min, as in §5.2).
	SessionTTL time.Duration
	// SessionMaxBytes caps a session's private memory before session
	// consistency degrades (default 1 MiB).
	SessionMaxBytes int64

	// UnsafeDisableDrainOnFlush turns off the drain-AUQ-before-flush
	// recovery protocol. A crash after a flush then silently loses queued
	// index updates. Exists only for the ablation experiment that
	// demonstrates why the protocol is needed.
	UnsafeDisableDrainOnFlush bool

	// VerifyChecksums makes every SSTable block read verify the block's
	// CRC32C before use, turning silent disk corruption into a read error.
	// Off by default: the background scrubber provides continuous coverage
	// without the per-read cost.
	VerifyChecksums bool
	// LearnedIndex makes every region store train a bounded-error
	// piecewise-linear block model on each SSTable it writes and serve
	// point lookups through it: the model predicts the data block, a ±ε
	// index window is verified exactly, and any miss falls back to binary
	// search — model-backed reads always return exactly what binary search
	// would (DESIGN.md §12).
	LearnedIndex bool
	// LearnedIndexEpsilon is the model error bound in blocks (default 8);
	// BlockRestartInterval the in-block restart-point spacing in entries
	// (default 16) on newly written tables.
	LearnedIndexEpsilon  int
	BlockRestartInterval int
	// DisableScrub turns off the per-region background integrity scrubber
	// (see DESIGN.md §11).
	DisableScrub bool
	// ScrubInterval is the pause between scrub cycles per region store
	// (default 5s); ScrubBlockPace the pause between block verifications
	// (default 1ms ≈ 4 MiB/s per store; negative disables pacing).
	ScrubInterval  time.Duration
	ScrubBlockPace time.Duration

	// SnapshotInterval, when > 0, runs periodic snapshot-in-log rounds on
	// every region store (DESIGN.md §13): the WAL's sealed unflushed span is
	// folded into snapshot records appended back into the log, so recovery
	// replays "latest snapshot + tail" instead of the whole retained log.
	SnapshotInterval time.Duration
	// WALRetainSegments is the per-region WAL retention knob: 0 (default)
	// truncates freely at each flush boundary, N > 0 keeps the newest N
	// sealed segments for CDC consumers regardless of flushes, and -1 never
	// truncates — full log-as-database mode, required by
	// Client.RebuildIndexFromLog. Live Changes feeds pin their position in
	// addition to this knob.
	WALRetainSegments int
	// CDCBufferRecords bounds each Changes feed's in-memory buffer (default
	// 1024): the pump goroutines stop reading the WAL when the consumer
	// falls this many records behind, bounding memory while the retention
	// pin bounds how much log a paused consumer can hold.
	CDCBufferRecords int

	// DisableTracing turns off per-operation traces (the op-latency
	// histograms and the slow-op log). Stage and counter metrics still
	// record; see DESIGN.md's Observability section for what each costs.
	DisableTracing bool
	// SlowOpLog sizes the slow-operation log: the K slowest operations are
	// retained with their per-stage latency breakdowns (default 32).
	SlowOpLog int
}

// DB is a Diff-Index-enabled distributed store: the cluster plus the index
// runtime. All methods are safe for concurrent use.
type DB struct {
	c *cluster.Cluster
	m *core.Manager

	// cdcBuffer is the per-feed buffer bound for Changes (see
	// Options.CDCBufferRecords).
	cdcBuffer int

	// balCfg is the balancer policy built from Options, reused by on-demand
	// Rebalance rounds.
	balCfg cluster.BalanceConfig

	// cdcMu guards the set of live change feeds; cdcGauge registers the
	// feed-lag gauge once, on the first feed.
	cdcMu    sync.Mutex
	cdcFeeds map[*ChangeFeed]struct{}
	cdcGauge sync.Once
}

// Open builds the cluster and index runtime.
func Open(opts Options) *DB {
	c := cluster.New(cluster.Config{
		Servers: opts.Servers,
		Net:     simnet.Config{RTT: opts.NetRTT, Jitter: opts.NetJitter},
		Disk: vfs.LatencyProfile{
			ReadLatency:  opts.DiskReadLatency,
			WriteLatency: opts.DiskWriteLatency,
			SyncLatency:  opts.DiskSyncLatency,
		},
		BaseFS:                   opts.BaseFS,
		BlockCacheBytes:          opts.BlockCacheBytes,
		MemtableBytes:            opts.MemtableBytes,
		MaxVersions:              opts.MaxVersions,
		CompactionThreshold:      opts.CompactionThreshold,
		CompactionFanIn:          opts.CompactionFanIn,
		MaxConcurrentCompactions: opts.MaxConcurrentCompactions,
		ReadFanOut:               opts.ReadFanOut,
		VerifyChecksums:          opts.VerifyChecksums,
		LearnedIndex:             opts.LearnedIndex,
		LearnedIndexEpsilon:      opts.LearnedIndexEpsilon,
		BlockRestartInterval:     opts.BlockRestartInterval,
		DisableScrub:             opts.DisableScrub,
		ScrubInterval:            opts.ScrubInterval,
		ScrubBlockPace:           opts.ScrubBlockPace,
		SnapshotInterval:         opts.SnapshotInterval,
		WALRetainSegments:        opts.WALRetainSegments,
		DisableTracing:           opts.DisableTracing,
		SlowOpK:                  opts.SlowOpLog,
	})
	m := core.NewManager(c, core.ManagerOptions{
		QueueCapacity:        opts.AUQCapacity,
		Workers:              opts.APSWorkers,
		APSBatch:             opts.APSBatch,
		MaxBacklog:           opts.AUQMaxBacklog,
		StalenessSampleEvery: opts.StalenessSampleEvery,
		SessionTTL:           opts.SessionTTL,
		SessionMaxBytes:      opts.SessionMaxBytes,
		DisableDrainOnFlush:  opts.UnsafeDisableDrainOnFlush,
	})
	cdcBuffer := opts.CDCBufferRecords
	if cdcBuffer <= 0 {
		cdcBuffer = 1024
	}
	db := &DB{c: c, m: m, cdcBuffer: cdcBuffer, cdcFeeds: make(map[*ChangeFeed]struct{})}
	db.balCfg = cluster.BalanceConfig{
		HotspotRatio:       opts.HotspotRatio,
		MergeColdThreshold: opts.MergeColdThreshold,
		MinRegionsPerTable: opts.MinRegionsPerTable,
	}
	if opts.BalancerInterval > 0 {
		c.Master.StartBalancer(opts.BalancerInterval, db.balCfg)
	}
	return db
}

// CreateTable creates a base table pre-split at the given row keys into
// len(splits)+1 regions spread across the servers.
func (db *DB) CreateTable(name string, splits [][]byte) error {
	return db.c.Master.CreateTable(name, splits)
}

// CreateIndex defines a global secondary index on table columns with the
// given maintenance scheme, creating and backfilling its index table.
// splits pre-partition the index table by index key (see IndexSplitPoints
// for a helper).
func (db *DB) CreateIndex(table string, columns []string, scheme Scheme, splits [][]byte) error {
	return db.m.CreateIndex(core.IndexDef{Table: table, Columns: columns, Scheme: scheme.internal()}, splits)
}

// CreateLocalIndex defines a LOCAL secondary index (§3.1): entries co-locate
// with the region holding the indexed row, so maintenance is synchronous and
// free of network hops, but every query broadcasts to all of the table's
// regions. Contrast with CreateIndex's global indexes, whose updates pay
// remote calls but whose selective queries touch one region. Local indexes
// are always causal consistent.
func (db *DB) CreateLocalIndex(table string, columns []string) error {
	return db.m.CreateIndex(core.IndexDef{Table: table, Columns: columns, Local: true}, nil)
}

// DropIndex removes an index definition (global or local).
func (db *DB) DropIndex(table string, columns []string) bool {
	if db.m.DropIndex(table, core.IndexDef{Table: table, Columns: columns}.Name()) {
		return true
	}
	return db.m.DropIndex(table, core.IndexDef{Table: table, Columns: columns, Local: true}.Name())
}

// NewClient returns a client routed as the named network node.
func (db *DB) NewClient(name string) *Client {
	return &Client{db: db, c: cluster.NewClient(db.c, name)}
}

// FlushAll flushes every region's memtable to SSTables, draining the AUQs
// first per the recovery protocol. Experiments use it to make reads
// disk-bound.
func (db *DB) FlushAll() error { return db.c.FlushAll() }

// WaitForIndexes blocks until all asynchronous index work has been applied
// or the timeout elapses, reporting whether the indexes converged.
func (db *DB) WaitForIndexes(timeout time.Duration) bool {
	return db.m.WaitForConvergence(timeout)
}

// PendingIndexUpdates returns the number of queued-plus-in-flight
// asynchronous index updates.
func (db *DB) PendingIndexUpdates() int64 { return db.m.QueueDepth() }

// Servers lists all region-server IDs.
func (db *DB) Servers() []string { return db.c.ServerIDs() }

// LiveServers lists the servers currently accepting requests.
func (db *DB) LiveServers() []string { return db.c.LiveServerIDs() }

// CrashServer kills a region server; its regions recover on live servers
// via WAL replay, and lost asynchronous index work is re-enqueued (§5.3).
func (db *DB) CrashServer(id string) error { return db.c.Master.CrashServer(id) }

// RestartServer brings a crashed region server back online. The server
// rejoins empty and receives region assignments again; each moved region
// replays its WAL and re-enqueues asynchronous index work, exactly as in
// crash recovery (§5.3).
func (db *DB) RestartServer(id string) error { return db.c.Master.RestartServer(id) }

// AddServer grows the cluster by one empty region server and returns its ID.
// The new server receives regions through new-table assignment and the
// balancer (continuous or on-demand Rebalance rounds).
func (db *DB) AddServer() string { return db.c.AddServer() }

// RemoveServer decommissions a live server gracefully: it stops receiving
// assignments, its regions are flushed and handed off to the remaining
// servers, and it is retired permanently (it cannot be restarted). The
// elastic inverse of AddServer; contrast with CrashServer, which models
// failure.
func (db *DB) RemoveServer(id string) error { return db.c.Master.DecommissionServer(id) }

// RegionMove records one balancer-driven region migration.
type RegionMove struct {
	Region, From, To string
}

// RebalanceReport is what one balancer round observed and did.
type RebalanceReport struct {
	// Loads is the per-server op count accumulated since the previous round.
	Loads map[string]int64
	// Moves lists region migrations performed this round (at most one).
	Moves []RegionMove
	// Merged lists child regions created by cold merges (at most one).
	Merged []string
}

// Rebalance runs one load-aware balancer round on demand (the continuous
// loop runs the same round every Options.BalancerInterval): migrate one
// region from the most- to the least-loaded server when the hotspot ratio
// is exceeded, and merge one cold adjacent region pair when
// MergeColdThreshold is configured.
func (db *DB) Rebalance() RebalanceReport {
	rep := db.c.Master.BalanceOnce(db.balCfg)
	out := RebalanceReport{Loads: rep.Loads, Merged: rep.Merged}
	for _, mv := range rep.Moves {
		out.Moves = append(out.Moves, RegionMove{Region: mv.Region, From: mv.From, To: mv.To})
	}
	return out
}

// MoveRegion migrates one region to the given live server, reporting whether
// the move happened (false when the region was re-homed concurrently, is
// mid-split, or already lives there).
func (db *DB) MoveRegion(regionID, server string) (bool, error) {
	return db.c.Master.MoveRegion(regionID, server)
}

// AUQStats reports asynchronous-update-queue pressure: total and worst
// single-region backlog, plus how many arrivals admission control shed to
// the synchronous path (see Options.AUQMaxBacklog).
type AUQStats struct {
	Depth          int64 // queued + in-flight tasks across all regions
	MaxRegionDepth int64 // largest single-region backlog (≤ AUQMaxBacklog when capped)
	Shed           int64 // arrivals degraded to synchronous maintenance
}

// AUQStats returns a snapshot of AUQ backlog and admission-control counters.
func (db *DB) AUQStats() AUQStats {
	return AUQStats{
		Depth:          db.m.QueueDepth(),
		MaxRegionDepth: db.m.MaxRegionQueueDepth(),
		Shed:           db.m.ShedTotal(),
	}
}

// RegionDesc describes one region of a table.
type RegionDesc struct {
	ID         string
	Start, End []byte
	Server     string
}

// Regions lists a table's regions in key order.
func (db *DB) Regions(table string) ([]RegionDesc, error) {
	infos, err := db.c.Master.RegionsOf(table)
	if err != nil {
		return nil, err
	}
	out := make([]RegionDesc, len(infos))
	for i, ri := range infos {
		out[i] = RegionDesc{ID: ri.ID, Start: ri.Start, End: ri.End, Server: ri.Server}
	}
	return out, nil
}

// SplitRegion splits a region in two at splitKey (a routing key strictly
// inside the region), like HBase's manual region split: the region is
// frozen, flushed (draining its AUQ), and its data is redistributed into
// two child regions — base cells and local-index entries by row, raw index
// entries by key. Clients re-route transparently.
func (db *DB) SplitRegion(regionID string, splitKey []byte) error {
	return db.c.Master.SplitRegion(regionID, splitKey)
}

// MergeRegions merges two adjacent regions into one, the inverse of
// SplitRegion.
func (db *DB) MergeRegions(lowerID, upperID string) error {
	return db.c.Master.MergeRegions(lowerID, upperID)
}

// PartitionNetwork cuts connectivity between two nodes (servers or
// clients) until HealNetwork.
func (db *DB) PartitionNetwork(a, b string) { db.c.Net.Partition(a, b) }

// HealNetwork restores all connectivity.
func (db *DB) HealNetwork() { db.c.Net.HealAll() }

// IOCounts reports Diff-Index's cumulative I/O operation counts along the
// axes of the paper's Table 2.
type IOCounts struct {
	BasePut, BaseRead  int64
	IndexPut, IndexDel int64
	IndexRead          int64
	AsyncBaseRead      int64
	AsyncIndexPut      int64
	AsyncIndexDel      int64
}

// IOCounts returns a snapshot of the index-maintenance I/O counters.
func (db *DB) IOCounts() IOCounts {
	s := db.m.Counters.Snapshot()
	return IOCounts{
		BasePut: s.BasePut, BaseRead: s.BaseRead,
		IndexPut: s.IndexPut, IndexDel: s.IndexDel, IndexRead: s.IndexRead,
		AsyncBaseRead: s.AsyncBaseRead, AsyncIndexPut: s.AsyncIndexPut, AsyncIndexDel: s.AsyncIndexDel,
	}
}

// HotPathStats reports the hot-path batching instrumentation: block-cache
// effectiveness (rolled up across every server's cache shards), the
// index-maintenance RPC fan-out (Apply RPCs delivered vs. cells they
// carried — Cells/RPCs is the batching factor, 1.0 meaning the historical
// one-RPC-per-cell behaviour), and the mean APS micro-batch size.
type HotPathStats struct {
	CacheHits, CacheMisses int64
	ApplyRPCs, ApplyCells  int64
	APSBatchMean           float64
}

// HotPathStats returns a snapshot of the hot-path batching counters, read
// from the metrics registry (the same instruments MetricsSnapshot reports).
func (db *DB) HotPathStats() HotPathStats {
	reg := db.c.Metrics()
	var s HotPathStats
	for _, id := range db.c.ServerIDs() {
		hits, _ := reg.Value("diffindex_block_cache_hits", metrics.L("server", id))
		misses, _ := reg.Value("diffindex_block_cache_misses", metrics.L("server", id))
		s.CacheHits += hits
		s.CacheMisses += misses
	}
	s.ApplyRPCs, _ = reg.Value("diffindex_apply_rpcs_total")
	s.ApplyCells, _ = reg.Value("diffindex_apply_cells_total")
	s.APSBatchMean = reg.Histogram("diffindex_aps_batch_size").Mean()
	return s
}

// StalenessStats summarizes the measured index-after-data time lag of
// asynchronous indexes (T2 − T1, §8.2), in nanoseconds.
type StalenessStats struct {
	Count          int64
	Mean           float64
	P50, P95, P999 int64
	Max            int64
}

// Staleness returns the async staleness distribution collected so far.
func (db *DB) Staleness() StalenessStats {
	s := db.m.Staleness().Snapshot()
	return StalenessStats{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P999: s.P999, Max: s.Max}
}

// ResetStaleness clears the staleness histogram for a new measurement phase.
func (db *DB) ResetStaleness() { db.m.ResetStaleness() }

// Close shuts the cluster down.
func (db *DB) Close() error { return db.c.Close() }

// Internal exposes the underlying cluster and manager for the in-repo
// benchmark harness; it is not part of the stable API.
func (db *DB) Internal() (*cluster.Cluster, *core.Manager) { return db.c, db.m }

// Row is one base-table row.
type Row struct {
	Key  []byte
	Cols map[string][]byte
}

// IndexHit is one index-lookup result: a base row key plus the timestamp
// of the index entry that produced it.
type IndexHit struct {
	Row []byte
	Ts  int64
}

// Client performs data and index operations against the cluster. Each
// client is a distinct network node; its requests pay the simulated
// client↔server latency.
type Client struct {
	db *DB
	c  *cluster.Client
}

// Put writes a row's columns, returning the server-assigned timestamp.
// Index maintenance for the row happens per each index's scheme.
func (cl *Client) Put(table string, row []byte, cols Cols) (int64, error) {
	return cl.c.Put(table, row, cols)
}

// Delete tombstones the given columns of a row; nil cols deletes the whole
// row.
func (cl *Client) Delete(table string, row []byte, cols []string) (int64, error) {
	return cl.c.Delete(table, row, cols)
}

// Get reads one column of a row. ok reports whether the column exists.
func (cl *Client) Get(table string, row []byte, col string) (value []byte, ts int64, ok bool, err error) {
	return cl.c.Get(table, row, col)
}

// GetRow reads all columns of a row; a nil map means no visible row.
func (cl *Client) GetRow(table string, row []byte) (Cols, error) {
	return cl.c.GetRow(table, row)
}

// Scan reads rows in [startRow, endRow) (nil bounds are open) up to limit.
func (cl *Client) Scan(table string, startRow, endRow []byte, limit int) ([]Row, error) {
	rows, err := cl.c.Scan(table, startRow, endRow, limit)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = Row{Key: r.Key, Cols: r.Cols}
	}
	return out, nil
}

// GetAsOf reads one column of a row as it stood at timestamp ts — any
// timestamp previously returned by Put or Delete, or a past Staleness
// observation point. ok is false when the column did not exist at ts
// (never written, or deleted). It returns ErrHistoryTrimmed when the as-of
// version may have been garbage-collected by MaxVersions retention; raise
// Options.MaxVersions to retain deeper history (DESIGN.md §13).
func (cl *Client) GetAsOf(table string, row []byte, col string, ts int64) (value []byte, cellTs int64, ok bool, err error) {
	return cl.c.GetAsOf(table, row, col, ts)
}

// GetRowAsOf reads all columns of a row as they stood at timestamp ts; a
// nil map means no visible row at ts. Columns whose as-of version may have
// been trimmed are skipped (use GetAsOf per column to detect trimming).
func (cl *Client) GetRowAsOf(table string, row []byte, ts int64) (Cols, error) {
	return cl.c.GetRowAsOf(table, row, ts)
}

// ScanAsOf reads rows in [startRow, endRow) as they stood at timestamp ts,
// up to limit rows — time-travel Scan.
func (cl *Client) ScanAsOf(table string, startRow, endRow []byte, ts int64, limit int) ([]Row, error) {
	rows, err := cl.c.ScanAsOf(table, startRow, endRow, ts, limit)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = Row{Key: r.Key, Cols: r.Cols}
	}
	return out, nil
}

// GetByIndex returns the row keys whose indexed column(s) equal value. For
// sync-insert indexes this performs the read-repair double check.
func (cl *Client) GetByIndex(table string, columns []string, value []byte) ([]IndexHit, error) {
	hits, err := cl.db.m.GetByIndex(cl.c, table, columns, value)
	return convertHits(hits), err
}

// RangeByIndex returns rows whose indexed value v satisfies low ≤ v ≤ high
// (nil high = unbounded), up to limit hits, in index-value order.
func (cl *Client) RangeByIndex(table string, columns []string, low, high []byte, limit int) ([]IndexHit, error) {
	hits, err := cl.db.m.RangeByIndex(cl.c, table, columns, low, high, limit)
	return convertHits(hits), err
}

// RowsByIndex is GetByIndex plus fetching the matching base rows.
func (cl *Client) RowsByIndex(table string, columns []string, value []byte) ([]Row, error) {
	hits, err := cl.db.m.GetByIndex(cl.c, table, columns, value)
	if err != nil {
		return nil, err
	}
	rows, err := cl.db.m.FetchRows(cl.c, table, hits)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = Row{Key: r.Key, Cols: r.Cols}
	}
	return out, nil
}

// NewSession opens a session-consistent view (get_session(), §5.2): reads
// through the session see all of the session's own writes even on
// asynchronously maintained indexes.
func (cl *Client) NewSession() *Session {
	return &Session{s: cl.db.m.NewSession(cl.c)}
}

func convertHits(hits []core.IndexHit) []IndexHit {
	out := make([]IndexHit, len(hits))
	for i, h := range hits {
		out[i] = IndexHit{Row: h.Row, Ts: h.Ts}
	}
	return out
}

// Session is a session-consistent client view. It is safe for concurrent
// use; sessions expire after inactivity and End releases their memory.
type Session struct {
	s *core.Session
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.s.ID() }

// Put writes within the session, tracking private index state for
// read-your-writes.
func (s *Session) Put(table string, row []byte, cols Cols) (int64, error) {
	return s.s.Put(table, row, cols)
}

// Delete removes row columns within the session.
func (s *Session) Delete(table string, row []byte, cols []string) (int64, error) {
	return s.s.Delete(table, row, cols)
}

// GetByIndex is the session-consistent index lookup (getFromIndex, §5.2).
func (s *Session) GetByIndex(table string, columns []string, value []byte) ([]IndexHit, error) {
	hits, err := s.s.GetByIndex(table, columns, value)
	return convertHits(hits), err
}

// RangeByIndex is the session-consistent range lookup.
func (s *Session) RangeByIndex(table string, columns []string, low, high []byte, limit int) ([]IndexHit, error) {
	hits, err := s.s.RangeByIndex(table, columns, low, high, limit)
	return convertHits(hits), err
}

// Degraded reports whether session consistency was disabled because the
// session outgrew its memory cap.
func (s *Session) Degraded() bool { return s.s.Degraded() }

// End terminates the session (end_session(), §5.2).
func (s *Session) End() { s.s.End() }

// ErrSessionExpired is returned by session operations after expiry or End.
var ErrSessionExpired = core.ErrSessionExpired

// Cleanse sweeps an index, double-checking every entry against the base
// table and deleting stale ones — the index-maintenance utility of the
// paper's §7. Mostly useful for sync-insert indexes, whose updates leave
// stale entries behind by design.
func (cl *Client) Cleanse(table string, columns ...string) (checked, repaired int, err error) {
	return cl.db.m.Cleanse(cl.c, table, columns...)
}

// IndexVerifyReport summarizes one index's anti-entropy sweep: how many
// digest buckets diverged between the base table and the index, the
// confirmed violations by kind (missing = entry absent from the index,
// breaking index-complete; stale = entry no base row justifies, breaking
// index-exact), candidates that re-verified clean (in-flight updates), and
// the repairs applied.
type IndexVerifyReport struct {
	Table, Index     string
	Scheme           Scheme
	Buckets          int
	DivergentBuckets int
	PairsCompared    int
	Missing, Stale   int
	Transient        int
	Repaired         int
}

// Healthy reports whether the sweep confirmed zero violations.
func (r IndexVerifyReport) Healthy() bool { return r.Missing == 0 && r.Stale == 0 }

// VerifyIndexes runs one anti-entropy sweep over every global index of a
// table: merkle-style hash-bucket digests of the base table and the index
// are compared, only divergent buckets are enumerated, every candidate
// violation is re-verified with point reads, and confirmed violations are
// repaired in place (missing entries inserted, stale entries deleted, at the
// timestamps §4.3 prescribes). Sweep activity is counted in the
// diffindex_antientropy_* metrics and feeds DB.Health.
func (cl *Client) VerifyIndexes(table string) ([]IndexVerifyReport, error) {
	reps, err := cl.db.m.VerifyIndexes(cl.c, table)
	out := make([]IndexVerifyReport, len(reps))
	for i, r := range reps {
		out[i] = IndexVerifyReport{
			Table: r.Table, Index: r.Index, Scheme: Scheme(r.Scheme),
			Buckets: r.Buckets, DivergentBuckets: r.DivergentBuckets,
			PairsCompared: r.PairsCompared, Missing: r.Missing, Stale: r.Stale,
			Transient: r.Transient, Repaired: r.Repaired,
		}
	}
	return out, err
}

// SetIndexScheme changes an index's maintenance scheme at runtime,
// cleansing first when the index leaves SyncInsert (no other scheme's reads
// repair stale entries).
func (cl *Client) SetIndexScheme(table string, columns []string, scheme Scheme) error {
	return cl.db.m.SetScheme(cl.c, table, columns, scheme.internal())
}

// Requirements declares an application's needs for one index, feeding the
// adaptive scheme advisor (the paper's §3.4 principles).
type Requirements struct {
	NeedConsistency       bool
	NeedReadYourWrites    bool
	ReadLatencyCritical   bool
	UpdateLatencyCritical bool
}

// Recommendation is the advisor's output: a scheme, the reasoning, and the
// observed workload counts it was based on.
type Recommendation struct {
	Scheme         Scheme
	Rationale      string
	Updates, Reads int64
}

// Advisor observes per-index workload (update and read rates) and
// recommends maintenance schemes — the workload-aware scheme selection the
// paper leaves as future work (§3.4).
type Advisor struct {
	a *core.Advisor
}

// NewAdvisor attaches an advisor to the database; from then on every index
// update and index read is counted per index.
func (db *DB) NewAdvisor() *Advisor { return &Advisor{a: db.m.NewAdvisor()} }

// Observed returns the op counts recorded for an index.
func (a *Advisor) Observed(table string, columns ...string) (updates, reads int64) {
	return a.a.Observed(table, columns...)
}

// Recommend applies the paper's five usage principles to the declared
// requirements and the observed read/write ratio.
func (a *Advisor) Recommend(table string, columns []string, req Requirements) Recommendation {
	rec := a.a.Recommend(table, columns, core.Requirements{
		NeedConsistency:       req.NeedConsistency,
		NeedReadYourWrites:    req.NeedReadYourWrites,
		ReadLatencyCritical:   req.ReadLatencyCritical,
		UpdateLatencyCritical: req.UpdateLatencyCritical,
	})
	return Recommendation{
		Scheme: Scheme(rec.Scheme), Rationale: rec.Rationale,
		Updates: rec.Updates, Reads: rec.Reads,
	}
}

// Apply recommends and immediately applies the scheme for an index through
// the given client.
func (a *Advisor) Apply(cl *Client, table string, columns []string, req Requirements) (Recommendation, error) {
	rec := a.Recommend(table, columns, req)
	if err := cl.SetIndexScheme(table, columns, rec.Scheme); err != nil {
		return rec, err
	}
	return rec, nil
}

// IndexSplitPoints builds index-table split keys from representative
// indexed values, so an index table can be pre-partitioned across servers
// the way the paper distributes item_title and item_price (§8.1).
func IndexSplitPoints(values ...[]byte) [][]byte {
	out := make([][]byte, len(values))
	for i, v := range values {
		out[i] = kv.IndexValuePrefix(v)
	}
	return out
}
