// Observability overhead benchmarks: the same put workload with tracing on
// (the default — per-op trace context, op-latency histogram, slow-op log)
// vs off (Options.DisableTracing). Stage histograms and counters record in
// both modes; the delta is the cost of the trace itself. The acceptance bar
// (EXPERIMENTS.md) is <5% on the zero-latency profile, where the overhead
// is not hidden behind simulated disk and network sleeps.
package diffindex_test

import (
	"sync/atomic"
	"testing"

	"diffindex"
	"diffindex/internal/workload"
)

func benchTracePut(b *testing.B, disableTracing bool) {
	opts := diffindex.Options{Servers: 3, DisableTracing: disableTracing}
	db := diffindex.Open(opts)
	if err := workload.Setup(db, 512, 3, int(diffindex.SyncFull), -1, 8); err != nil {
		db.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	cl := db.NewClient("bench")
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			item := i % 512
			if _, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
				workload.TitleColumn: workload.UpdatedTitleValue(item, i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTracedPut(b *testing.B)   { benchTracePut(b, false) }
func BenchmarkUntracedPut(b *testing.B) { benchTracePut(b, true) }
