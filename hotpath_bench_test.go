// Hot-path throughput benchmarks: the RPC fan-out of index maintenance
// (region-batched MultiApply vs the historical one-RPC-per-index-cell) and
// the APS micro-batch size under concurrent update load. Custom metrics:
//
//	rpcs/op  — Apply RPCs issued per update (index maintenance fan-out)
//	cells/op — index cells shipped per update (2 for a value change:
//	           superseded delete + new insert)
//	aps-batch — mean tasks coalesced per APS drain (async schemes only)
//
// rpcs/op < cells/op is the tentpole win: without batching the two are
// equal by construction.
package diffindex_test

import (
	"sync/atomic"
	"testing"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

func BenchmarkHotPathRPCFanout(b *testing.B) {
	for _, s := range []struct {
		name   string
		scheme int
		async  bool
	}{
		{"sync-full", int(diffindex.SyncFull), false},
		{"async", int(diffindex.AsyncSimple), true},
	} {
		b.Run(s.name, func(b *testing.B) {
			db := benchDB(b, s.scheme, -1)
			cl := db.NewClient("bench")
			start := db.HotPathStats()
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					item := i % benchRecords
					_, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
						workload.TitleColumn: workload.UpdatedTitleValue(item, i),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if s.async && !db.WaitForIndexes(2*time.Minute) {
				b.Fatal("async indexes did not converge")
			}
			end := db.HotPathStats()
			n := float64(b.N)
			b.ReportMetric(float64(end.ApplyRPCs-start.ApplyRPCs)/n, "rpcs/op")
			b.ReportMetric(float64(end.ApplyCells-start.ApplyCells)/n, "cells/op")
			if s.async {
				b.ReportMetric(end.APSBatchMean, "aps-batch")
			}
		})
	}
}
