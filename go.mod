module diffindex

go 1.22
