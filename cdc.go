package diffindex

// The change-data-capture surface of the log-as-database subsystem
// (DESIGN.md §13): the WAL is not just a recovery artifact but a consumable
// record of every committed mutation. Changes opens a feed that tails each
// region's log through retention-pinning cursors, so a live consumer can
// never have needed segments truncated out from under it; WALRetainSegments
// additionally bounds how much history a NOT-yet-opened consumer can still
// reach.

import (
	"fmt"
	"sync"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
	"diffindex/internal/wal"
)

// ErrHistoryTrimmed is returned by the as-of read methods when the version
// visible at the requested timestamp may have been garbage-collected by
// MaxVersions retention — "absent at ts" cannot be distinguished from
// "history gone", so the read refuses to guess.
var ErrHistoryTrimmed = lsm.ErrHistoryTrimmed

// LogPos is a durable, resumable position in one region's write-ahead log:
// a segment number plus a frame-aligned byte offset. The zero LogPos is the
// start of the retained log.
type LogPos struct {
	Segment uint64
	Offset  int64
}

// String renders the position as "segment@offset".
func (p LogPos) String() string { return wal.Pos{Seg: p.Segment, Off: p.Offset}.String() }

// ChangeRecord is one committed base-table mutation as recorded in a
// region's WAL: one column of one row, with the position the record was
// read from (resume point) and whether it was a delete.
type ChangeRecord struct {
	Table  string
	Region string
	Row    []byte
	Column string
	Value  []byte // nil for deletes
	Ts     int64
	Delete bool
	Pos    LogPos
}

// cdcReadBatch bounds one cursor read; cdcPollInterval is the idle pause
// when a region's cursor is caught up with the durable tail.
const (
	cdcReadBatch    = 256
	cdcPollInterval = 2 * time.Millisecond
)

// ChangeFeed streams a table's committed mutations. One pump goroutine per
// region tails that region's WAL through a retention-pinning cursor and
// delivers records into Events in per-region log order (no ordering is
// imposed ACROSS regions — like per-partition ordering in Kafka). The
// Events channel is bounded by Options.CDCBufferRecords: a slow consumer
// stalls the pumps, which stop reading the WAL, and the cursor pins keep
// the unread segments from being truncated. The channel closes when the
// feed stops (Close, or a pump error — check Err then).
type ChangeFeed struct {
	db    *DB
	table string
	ch    chan ChangeRecord
	done  chan struct{}
	stop  sync.Once
	wg    sync.WaitGroup

	mu        sync.Mutex
	positions map[string]LogPos
	lag       map[string]uint64
	gaps      map[string]int
	err       error
}

// Changes opens a change feed over the table's full retained log history:
// every committed mutation still present in the regions' WALs, then live
// tailing. With WALRetainSegments = -1 that is the table's complete
// mutation history; with finite retention, check GapSegments for history
// truncated before the feed started. The feed covers the table's regions as
// of this call; regions created by later splits are not tracked.
func (db *DB) Changes(table string) (*ChangeFeed, error) {
	return db.ChangesFrom(table, nil)
}

// ChangesFrom resumes a change feed from per-region positions previously
// returned by Positions — exactly-once delivery across restarts is the
// consumer's: records re-read from a resumed position carry the same Pos,
// so consumers deduplicate on (Region, Pos).
func (db *DB) ChangesFrom(table string, from map[string]LogPos) (*ChangeFeed, error) {
	regions, err := db.c.Master.RegionsOf(table)
	if err != nil {
		return nil, err
	}
	feed := &ChangeFeed{
		db:        db,
		table:     table,
		ch:        make(chan ChangeRecord, db.cdcBuffer),
		done:      make(chan struct{}),
		positions: make(map[string]LogPos, len(regions)),
		lag:       make(map[string]uint64, len(regions)),
		gaps:      make(map[string]int, len(regions)),
	}
	type pump struct {
		ri  cluster.RegionInfo
		cur *wal.Cursor
	}
	var pumps []pump
	for _, ri := range regions {
		s := db.c.Server(ri.Server)
		if s == nil || s.Crashed() {
			for _, p := range pumps {
				p.cur.Close()
			}
			return nil, fmt.Errorf("diffindex: changes(%s): server %s for region %s is down", table, ri.Server, ri.ID)
		}
		start := from[ri.ID]
		cur, err := s.WALCursor(ri.ID, wal.Pos{Seg: start.Segment, Off: start.Offset})
		if err != nil {
			for _, p := range pumps {
				p.cur.Close()
			}
			return nil, err
		}
		feed.positions[ri.ID] = start
		pumps = append(pumps, pump{ri: ri, cur: cur})
	}
	db.registerFeed(feed)
	for _, p := range pumps {
		feed.wg.Add(1)
		go feed.pump(p.ri, p.cur)
	}
	// Close the channel once every pump has exited, so consumers ranging
	// over Events terminate on Close and on pump failure alike.
	go func() {
		feed.wg.Wait()
		close(feed.ch)
		db.unregisterFeed(feed)
	}()
	return feed, nil
}

// Events is the stream of committed mutations. It closes when the feed
// stops; check Err afterwards.
func (f *ChangeFeed) Events() <-chan ChangeRecord { return f.ch }

// Positions returns the per-region resume positions reached so far: records
// delivered before this call will not be re-delivered by a feed resumed
// from these positions.
func (f *ChangeFeed) Positions() map[string]LogPos {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]LogPos, len(f.positions))
	for id, p := range f.positions {
		out[id] = p
	}
	return out
}

// GapSegments returns how many WAL segments were truncated away below the
// feed's starting positions — non-zero means history was lost before the
// feed attached and the consumer must re-bootstrap (e.g. from a base-table
// scan or RebuildIndexFromLog).
func (f *ChangeFeed) GapSegments() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, g := range f.gaps {
		total += g
	}
	return total
}

// LagSegments returns the worst per-region segment lag between the feed and
// the active log tail — the diffindex_cdc_lag_segments gauge per feed.
func (f *ChangeFeed) LagSegments() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var max uint64
	for _, l := range f.lag {
		if l > max {
			max = l
		}
	}
	return int64(max)
}

// Err returns the error that stopped the feed, if any. Meaningful once
// Events has closed.
func (f *ChangeFeed) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Close stops the feed and releases its retention pins. The Events channel
// closes once the pumps have drained; records already buffered are still
// delivered to a consumer that keeps reading.
func (f *ChangeFeed) Close() {
	f.stop.Do(func() { close(f.done) })
}

func (f *ChangeFeed) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.stop.Do(func() { close(f.done) })
}

// pump tails one region's WAL into the feed channel. It owns the cursor
// exclusively (cursors are not concurrency-safe) and releases its retention
// pin on exit.
func (f *ChangeFeed) pump(ri cluster.RegionInfo, cur *wal.Cursor) {
	defer f.wg.Done()
	defer cur.Close()
	reg := f.db.c.Metrics()
	recs := reg.Counter("diffindex_cdc_records_total", metrics.L("table", f.table))
	bytes := reg.Counter("diffindex_cdc_bytes_total", metrics.L("table", f.table))
	for {
		select {
		case <-f.done:
			return
		default:
		}
		entries, err := cur.Next(cdcReadBatch)
		if err != nil {
			f.fail(fmt.Errorf("diffindex: changes(%s) region %s: %w", f.table, ri.ID, err))
			return
		}
		for _, e := range entries {
			if kv.IsLocalIndexKey(e.Record.Key) {
				continue // co-located index entries are derived state, not changes
			}
			row, col, err := kv.SplitBaseKey(e.Record.Key)
			if err != nil {
				f.fail(fmt.Errorf("diffindex: changes(%s) region %s at %s: %w", f.table, ri.ID, e.Pos, err))
				return
			}
			rec := ChangeRecord{
				Table:  f.table,
				Region: ri.ID,
				Row:    row,
				Column: string(col),
				Value:  e.Record.Value,
				Ts:     e.Record.Ts,
				Delete: e.Record.Kind == kv.KindDelete,
				Pos:    LogPos{Segment: e.Pos.Seg, Offset: e.Pos.Off},
			}
			select {
			case f.ch <- rec:
				recs.Inc()
				bytes.Add(int64(len(e.Record.Key) + len(e.Record.Value)))
			case <-f.done:
				return
			}
		}
		pos := cur.Pos()
		f.mu.Lock()
		f.positions[ri.ID] = LogPos{Segment: pos.Seg, Offset: pos.Off}
		f.lag[ri.ID] = cur.Lag()
		f.gaps[ri.ID] = cur.GapSegments()
		f.mu.Unlock()
		if len(entries) == 0 {
			select {
			case <-f.done:
				return
			case <-time.After(cdcPollInterval):
			}
		}
	}
}

func (db *DB) registerFeed(f *ChangeFeed) {
	db.cdcMu.Lock()
	db.cdcFeeds[f] = struct{}{}
	db.cdcMu.Unlock()
	db.cdcGauge.Do(func() {
		db.c.Metrics().RegisterGaugeFunc("diffindex_cdc_lag_segments", func() int64 {
			db.cdcMu.Lock()
			defer db.cdcMu.Unlock()
			var max int64
			for f := range db.cdcFeeds {
				if l := f.LagSegments(); l > max {
					max = l
				}
			}
			return max
		})
	})
}

func (db *DB) unregisterFeed(f *ChangeFeed) {
	db.cdcMu.Lock()
	delete(db.cdcFeeds, f)
	db.cdcMu.Unlock()
}

// RebuildIndexFromLog reconstructs a global index by replaying the base
// table's WALs instead of scanning the base table — usable when the index
// table is suspect but the logs are intact. Requires full log retention
// (Options.WALRetainSegments = -1); a truncated log is an error, never a
// partial rebuild. Insert-only: point it at a fresh index table. Returns
// the number of index entries written; follow with VerifyIndexes to
// cross-check the result against the live base table.
func (cl *Client) RebuildIndexFromLog(table string, columns []string) (int, error) {
	return cl.db.m.RebuildIndexFromLog(cl.c, table, columns)
}
