package diffindex

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
)

func TestHealthOKOnCleanDB(t *testing.T) {
	db := openTestDB(t, 3)
	if err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	if _, err := cl.Put("t", []byte("r1"), Cols{"a": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	h := db.Health()
	if h.Status != HealthOK {
		t.Fatalf("clean DB health = %q, reasons %v", h.Status, h.Reasons)
	}
	if h.LiveServers != 3 || h.TotalServers != 3 {
		t.Fatalf("servers %d/%d", h.LiveServers, h.TotalServers)
	}
	if h.ScrubCorruptions != 0 || len(h.Reasons) != 0 {
		t.Fatalf("unexpected findings: %+v", h)
	}
}

func TestHealthDegradedOnCrashedServer(t *testing.T) {
	db := openTestDB(t, 3)
	if err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CrashServer("rs2"); err != nil {
		t.Fatal(err)
	}
	h := db.Health()
	if h.Status != HealthDegraded {
		t.Fatalf("health with crashed server = %q, reasons %v", h.Status, h.Reasons)
	}
	if h.LiveServers != 2 {
		t.Fatalf("LiveServers = %d, want 2", h.LiveServers)
	}
	if err := db.RestartServer("rs2"); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.Status != HealthOK {
		t.Fatalf("health after restart = %q, reasons %v", h.Status, h.Reasons)
	}
}

func TestHealthDegradedOnUnrepairedViolations(t *testing.T) {
	// A confirmed violation that the sweep repairs leaves found == repaired:
	// health stays ok. (The degraded case — repairs failing — needs a mid-
	// sweep fault and is exercised by the chaos harness.)
	db := openTestDB(t, 3)
	if err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", []string{"a"}, SyncFull, nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("c")
	for _, r := range []string{"r1", "r2", "r3"} {
		if _, err := cl.Put("t", []byte(r), Cols{"a": []byte("v-" + r)}); err != nil {
			t.Fatal(err)
		}
	}
	// Inject a lost index insert through the raw path, then sweep.
	c, _ := db.Internal()
	raw := cluster.NewClient(c, "raw")
	row := []byte("r9")
	if err := raw.RawApply("t", row, []kv.Cell{{
		Key: kv.BaseKey(row, []byte("a")), Value: []byte("lost"), Ts: 999999, Kind: kv.KindPut,
	}}); err != nil {
		t.Fatal(err)
	}
	reps, err := cl.VerifyIndexes("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Missing != 1 || reps[0].Repaired != 1 {
		t.Fatalf("reports: %+v", reps)
	}
	h := db.Health()
	if h.IndexViolationsFound != 1 || h.IndexViolationsRepaired != 1 {
		t.Fatalf("violation counters: %+v", h)
	}
	if h.Status != HealthOK {
		t.Fatalf("repaired violations must not degrade health: %q %v", h.Status, h.Reasons)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	db := openTestDB(t, 3)
	if err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz returned %d", res.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != HealthOK || h.TotalServers != 3 {
		t.Fatalf("decoded health: %+v", h)
	}

	// Crash every server: the endpoint must flip to 503. Crashing the last
	// server returns ErrNoLiveServers (nowhere to reassign its regions) but
	// still takes it down, which is the state we want.
	for _, id := range db.Servers() {
		_ = db.CrashServer(id)
	}
	res2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz returned %d", res2.StatusCode)
	}
	var h2 Health
	if err := json.NewDecoder(res2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Status != HealthUnhealthy || len(h2.Reasons) == 0 {
		t.Fatalf("decoded unhealthy health: %+v", h2)
	}
}
