package diffindex

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// collectChanges drains feed events until want records arrive or the
// timeout elapses.
func collectChanges(t *testing.T, feed *ChangeFeed, want int, timeout time.Duration) []ChangeRecord {
	t.Helper()
	var out []ChangeRecord
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case rec, ok := <-feed.Events():
			if !ok {
				t.Fatalf("feed closed after %d/%d records: %v", len(out), want, feed.Err())
			}
			out = append(out, rec)
		case <-deadline:
			t.Fatalf("timed out with %d/%d records", len(out), want)
		}
	}
	return out
}

// TestClientGetAsOf is the public-API golden test for time-travel reads:
// values read as-of past timestamps must match what reads returned when
// those timestamps were current, across overwrites, deletes and a flush.
func TestClientGetAsOf(t *testing.T) {
	db := Open(Options{Servers: 2, MaxVersions: 10})
	defer db.Close()
	if err := db.CreateTable("kvstore", nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app")

	ts1, err := cl.Put("kvstore", []byte("r1"), Cols{"c": []byte("v1")})
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := cl.Put("kvstore", []byte("r1"), Cols{"c": []byte("v2")})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ts3, err := cl.Delete("kvstore", []byte("r1"), []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	ts4, err := cl.Put("kvstore", []byte("r1"), Cols{"c": []byte("v4")})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		ts    int64
		want  string
		exist bool
	}{
		{ts1, "v1", true},
		{ts2, "v2", true},
		{ts3, "", false}, // deleted at ts3
		{ts4, "v4", true},
	}
	for _, tc := range cases {
		v, _, ok, err := cl.GetAsOf("kvstore", []byte("r1"), "c", tc.ts)
		if err != nil {
			t.Fatalf("GetAsOf(ts=%d): %v", tc.ts, err)
		}
		if ok != tc.exist || (ok && string(v) != tc.want) {
			t.Errorf("GetAsOf(ts=%d) = (%q, %v), want (%q, %v)", tc.ts, v, ok, tc.want, tc.exist)
		}
	}

	// Rows as-of: the whole row reflects the chosen instant.
	cols, err := cl.GetRowAsOf("kvstore", []byte("r1"), ts3)
	if err != nil {
		t.Fatal(err)
	}
	if cols != nil {
		t.Errorf("GetRowAsOf at deletion = %v, want nil", cols)
	}
	rows, err := cl.ScanAsOf("kvstore", nil, nil, ts2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0].Cols["c"]) != "v2" {
		t.Errorf("ScanAsOf(ts2) = %v", rows)
	}
}

// TestClientGetAsOfHistoryTrimmed drives enough overwrites through
// compaction that MaxVersions retention discards the version an old
// timestamp would need, and checks the read reports ErrHistoryTrimmed
// instead of guessing.
func TestClientGetAsOfHistoryTrimmed(t *testing.T) {
	db := Open(Options{Servers: 1, MaxVersions: 2})
	defer db.Close()
	if err := db.CreateTable("kvstore", nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app")
	ts0, err := cl.Put("kvstore", []byte("r1"), Cols{"c": []byte("v0")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := cl.Put("kvstore", []byte("r1"), Cols{"c": []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := db.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	c, m := db.Internal()
	_ = m
	c.WaitCompactions()

	_, _, _, err = cl.GetAsOf("kvstore", []byte("r1"), "c", ts0)
	if !errors.Is(err, ErrHistoryTrimmed) {
		t.Fatalf("GetAsOf(trimmed ts) err = %v, want ErrHistoryTrimmed", err)
	}
}

// TestChangesFeed checks the CDC feed end to end: every committed mutation
// arrives with its row, column, value, delete flag and a frame-aligned
// position; Positions resumes without re-delivery of consumed records; the
// CDC metrics count what flowed.
func TestChangesFeed(t *testing.T) {
	db := Open(Options{Servers: 2, WALRetainSegments: -1})
	defer db.Close()
	if err := db.CreateTable("orders", [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app")

	feed, err := db.Changes("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	if _, err := cl.Put("orders", []byte("a1"), Cols{"item": []byte("x"), "qty": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("orders", []byte("z9"), Cols{"item": []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Delete("orders", []byte("a1"), []string{"qty"}); err != nil {
		t.Fatal(err)
	}

	recs := collectChanges(t, feed, 4, 5*time.Second) // 2+1 puts + 1 delete
	byKey := map[string]ChangeRecord{}
	for _, r := range recs {
		if r.Table != "orders" {
			t.Errorf("record table = %q", r.Table)
		}
		byKey[string(r.Row)+"/"+r.Column+fmt.Sprintf("/%v", r.Delete)] = r
	}
	if r, ok := byKey["a1/item/false"]; !ok || string(r.Value) != "x" {
		t.Errorf("missing or wrong a1/item put: %+v", r)
	}
	if r, ok := byKey["z9/item/false"]; !ok || string(r.Value) != "y" {
		t.Errorf("missing or wrong z9/item put: %+v", r)
	}
	if r, ok := byKey["a1/qty/true"]; !ok || r.Value != nil {
		t.Errorf("missing or wrong a1/qty delete: %+v", r)
	}
	if feed.GapSegments() != 0 {
		t.Errorf("gap = %d on a fresh feed", feed.GapSegments())
	}

	// Metrics flowed.
	snap := db.MetricsSnapshot()
	var gotRecs int64
	for _, c := range snap.Counters {
		if c.Name == "diffindex_cdc_records_total" {
			gotRecs += c.Value
		}
	}
	if gotRecs < 4 {
		t.Errorf("diffindex_cdc_records_total = %d, want >= 4", gotRecs)
	}

	// Resume: a feed started from the reached positions sees only new writes.
	pos := feed.Positions()
	feed.Close()
	resumed, err := db.ChangesFrom("orders", pos)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if _, err := cl.Put("orders", []byte("b2"), Cols{"item": []byte("z")}); err != nil {
		t.Fatal(err)
	}
	got := collectChanges(t, resumed, 1, 5*time.Second)
	if string(got[0].Row) != "b2" || got[0].Column != "item" {
		t.Errorf("resumed feed delivered %+v, want the b2 put first", got[0])
	}
}

// TestChangesFeedSurvivesFlush checks that a feed keeps streaming across a
// flush (which rolls, checkpoints and would normally truncate the WAL): the
// cursor pin holds unconsumed segments, so nothing is lost.
func TestChangesFeedSurvivesFlush(t *testing.T) {
	db := Open(Options{Servers: 1}) // default retention: flushes truncate
	defer db.Close()
	if err := db.CreateTable("orders", nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app")

	feed, err := db.Changes("orders")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := cl.Put("orders", []byte(fmt.Sprintf("r%03d", i)), Cols{"c": []byte("v")}); err != nil {
			t.Fatal(err)
		}
		if i == n/2 {
			if err := db.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	recs := collectChanges(t, feed, n, 5*time.Second)
	seen := map[string]bool{}
	for _, r := range recs {
		seen[string(r.Row)] = true
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("r%03d", i)] {
			t.Errorf("row r%03d never arrived", i)
		}
	}
	if feed.GapSegments() != 0 {
		t.Errorf("gap = %d; the pin should have held every segment", feed.GapSegments())
	}
}

// TestClientRebuildIndexFromLog exercises the public rebuild path: an index
// created empty over pre-existing data is reconstructed from the logs and
// verifies clean.
func TestClientRebuildIndexFromLog(t *testing.T) {
	db := Open(Options{Servers: 2, WALRetainSegments: -1})
	defer db.Close()
	if err := db.CreateTable("items", nil); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("app")
	for i := 0; i < 10; i++ {
		if _, err := cl.Put("items", []byte(fmt.Sprintf("item%02d", i)), Cols{"cat": []byte(fmt.Sprintf("c%d", i%3))}); err != nil {
			t.Fatal(err)
		}
	}
	// CreateIndex backfills; rebuild then re-derives the same entries from
	// the log (idempotent: identical cells at identical timestamps).
	if err := db.CreateIndex("items", []string{"cat"}, SyncFull, nil); err != nil {
		t.Fatal(err)
	}
	n, err := cl.RebuildIndexFromLog("items", []string{"cat"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("rebuild wrote %d entries, want 10", n)
	}
	reps, err := cl.VerifyIndexes("items")
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		if !rep.Healthy() || rep.Repaired != 0 {
			t.Errorf("index not clean after rebuild: %+v", rep)
		}
	}
	hits, err := cl.GetByIndex("items", []string{"cat"}, []byte("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 { // i in 0..9 with i%3 == 1: items 01, 04, 07
		t.Errorf("GetByIndex(c1) = %d hits, want 3", len(hits))
	}
}
