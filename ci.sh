#!/bin/sh
# ci.sh — the full verification gate (tier-1 plus formatting, vet and the
# race detector). Stdlib/toolchain only; no external dependencies.
#
#   ./ci.sh
#
# Steps:
#   1. gofmt -l         — fail on any unformatted file
#   2. go vet ./...     — static analysis
#   3. go build ./...   — everything compiles
#   4. go test ./...    — full test suite (tier-1)
#   5. go test -race ./internal/...  — concurrency-heavy packages under the
#      race detector (block cache, AUQ/APS, cluster, LSM)
#   6. go test -race -run Metrics    — the observability subsystem (registry,
#      histogram snapshot consistency, tracer) under the race detector at
#      the root package too, plus the golden-file guard that
#      MetricsSnapshot marshals to stable JSON (TestMetricsSnapshotStableJSONGolden;
#      refresh the golden with `go test ./internal/metrics -run Golden -update-golden`)
#   7. benchmark smoke    — every benchmark compiles and survives one
#      iteration (catches bit-rot in bench-only code paths)
#   8. chaos              — fixed-seed fault-injection verdict via
#      cmd/chaoskit: all four schemes under crashes, partitions, disk and
#      network faults must uphold every invariant (DESIGN.md §9)
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (internal) =="
go test -race ./internal/...

echo "== go test -race -run Metrics (observability + golden file) =="
go test -race -run Metrics ./...

echo "== benchmark smoke (one iteration each) =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== chaos (fixed-seed fault injection, all four schemes) =="
# Deterministic verdict run: seeded crashes/partitions/disk+net faults under
# a live workload, every invariant checked per scheme (DESIGN.md §9). The
# -race chaos smoke already ran in step 5; this exercises the CLI verdict
# path end to end. Short duration keeps the pass bounded (~10 s).
go run ./cmd/chaoskit -seed 1 -scenarios 4 -duration 400ms -trace=false

echo "CI PASSED"
