#!/bin/sh
# ci.sh — the full verification gate (tier-1 plus formatting, vet and the
# race detector). Stdlib/toolchain only; no external dependencies.
#
#   ./ci.sh
#
# Steps:
#   1. gofmt -l         — fail on any unformatted file
#   2. go vet ./...     — static analysis
#   3. go build ./...   — everything compiles
#   4. go test ./...    — full test suite (tier-1)
#   5. go test -race ./internal/...  — concurrency-heavy packages under the
#      race detector (block cache, AUQ/APS, cluster, LSM)
#   6. go test -race -run Metrics    — the observability subsystem (registry,
#      histogram snapshot consistency, tracer) under the race detector at
#      the root package too, plus the golden-file guard that
#      MetricsSnapshot marshals to stable JSON (TestMetricsSnapshotStableJSONGolden;
#      refresh the golden with `go test ./internal/metrics -run Golden -update-golden`)
#   7. compaction -race   — the incremental compaction pipeline (tier
#      selection, bounded rounds, reads racing concurrent compactions,
#      chaos with compaction armed) under the race detector, plus a
#      one-iteration BenchmarkSustainedWrite smoke
#   8. benchmark smoke    — every benchmark compiles and survives one
#      iteration (catches bit-rot in bench-only code paths)
#   9. chaos              — fixed-seed fault-injection verdict via
#      cmd/chaoskit: all four schemes under crashes, partitions, disk and
#      network faults must uphold every invariant (DESIGN.md §9); a second
#      short run arms incremental compaction (-compact-threshold 2) so
#      tiered merges and the piggybacked cleanse run under faults too
#  10. learned index     — the learned block index (DESIGN.md §12): format
#      compat matrix (v1/v2/v3), model training/marshal properties, the
#      model-vs-binary equivalence corpus and concurrent model readers
#      under -race; `lsmtool stats` must report a trained model on a
#      knob-on store; and a one-iteration BenchmarkLearnedGet smoke runs
#      the model and fallback paths against the same tables
#  11. integrity         — the scrub/anti-entropy surface (DESIGN.md §11):
#      scrubber + anti-entropy tests under -race; `lsmtool verify` must
#      pass clean and exit non-zero on an injected corruption; the chaos
#      integrity pair (scrubber detects misreads, sweep repairs injected
#      divergence, unfaulted control stays silent); and a one-iteration
#      BenchmarkScrubOverhead smoke
#  12. time-travel       — the log-as-database subsystem (DESIGN.md §13):
#      snapshot-in-log, as-of reads and the CDC feed under -race; the
#      chaos crash scenario (torn write mid-snapshot, then snapshot+tail
#      recovery must equal full replay and every golden as-of read must
#      hold); a `lsmtool wal tail` smoke; and a one-iteration
#      BenchmarkRecoveryReplay smoke of both recovery paths
#  13. scale             — the open-loop harness and elastic cluster
#      dynamics (DESIGN.md §14): deterministic pacing/shedding tests, the
#      continuous balancer racing splits/merges/compaction, cold merges,
#      live add/decommission and the elastic chaos scenario under -race;
#      the seeded-generator golden guard; a `diffbench -openloop` overload
#      smoke (p99 column present, arrivals actually shed); and the
#      `chaoskit -elastic` verdict across all four schemes
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (internal) =="
go test -race ./internal/...

echo "== go test -race -run Metrics (observability + golden file) =="
go test -race -run Metrics ./...

echo "== go test -race -run Compact (compaction pipeline) =="
go test -race -count=1 -run 'Compact' ./internal/lsm ./internal/chaos
go test -run=NONE -bench=BenchmarkSustainedWrite -benchtime=1x ./internal/lsm

echo "== benchmark smoke (one iteration each) =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== chaos (fixed-seed fault injection, all four schemes) =="
# Deterministic verdict run: seeded crashes/partitions/disk+net faults under
# a live workload, every invariant checked per scheme (DESIGN.md §9). The
# -race chaos smoke already ran in step 5; this exercises the CLI verdict
# path end to end. Short duration keeps the pass bounded (~10 s).
go run ./cmd/chaoskit -seed 1 -scenarios 4 -duration 400ms -trace=false
# Same harness with the tiered compaction engine kept hot: every flush can
# arm another bounded merge round, so tombstone handling and the
# compaction-piggybacked index cleanse run under the same fault schedule.
go run ./cmd/chaoskit -seed 2 -scenarios 2 -duration 300ms -trace=false -compact-threshold 2

echo "== learned index (model + format compat, DESIGN.md §12) =="
# Race pass over the learned-index surface: training/marshal properties, the
# v1/v2/v3 footer compat matrix, zero-divergence equivalence corpus, restart
# search, gap rejection and hammering one model-backed reader concurrently.
go test -race -count=1 -run 'Learned|Model|FooterCompat|Restart|GapRejection|Info' ./internal/sstable ./internal/lsm
# Operator surface: a knob-on store must produce v3 tables with a trained
# model, and `lsmtool stats` must say so.
if ! go run ./cmd/lsmtool stats -rows 1000 -tables 2 -learned | grep -q 'segments'; then
    echo "lsmtool stats reported no trained model on a -learned store" >&2
    exit 1
fi
# Bench smoke: one iteration of the model and fallback paths on the same
# tables (the full comparison lives in bench_output_learned.txt).
go test -run=NONE -bench=BenchmarkLearned -benchtime=1x ./internal/sstable

echo "== integrity (scrub + anti-entropy + health, DESIGN.md §11) =="
# Race pass over the integrity subsystem: the background scrubber, checksum
# round-trips, the anti-entropy sweep and the health surface.
go test -race -count=1 -run 'Scrub|Checksum|AntiEntropy|Health|Integrity' ./internal/lsm ./internal/sstable ./internal/core ./internal/chaos .
# Offline sweep gate: a clean store must verify; a corrupted one must be
# detected AND fail the process (exit status is the contract CI relies on).
go run ./cmd/lsmtool verify -rows 500 -tables 3 > /dev/null
if go run ./cmd/lsmtool verify -rows 500 -tables 3 -corrupt 1 > /dev/null 2>&1; then
    echo "lsmtool verify did not fail on a corrupted table" >&2
    exit 1
fi
# Online pair: faulted run (scrubber must detect armed misreads, anti-entropy
# must repair injected divergence) plus the unfaulted false-positive control.
go run ./cmd/chaoskit -scenarios 0 -integrity -trace=false
go test -run=NONE -bench=BenchmarkScrubOverhead -benchtime=1x ./internal/lsm

echo "== time-travel (snapshot-in-log + as-of reads + CDC, DESIGN.md §13) =="
# Race pass over the subsystem: snapshot rounds, point-in-time reads racing
# compaction, WAL tailing/cursors, the change feed and log-sourced rebuild.
go test -race -count=1 -run 'Snapshot|AsOf|Checkpoint|Truncat|Pin|Tail|Cursor|Changes|Rebuild|ClockObserve' \
    ./internal/wal ./internal/snapshot ./internal/lsm ./internal/kv ./internal/core .
# Crash gate: tear every WAL write mid-snapshot, then recovery through the
# torn record must fall back cleanly — snapshot+tail replay equals full raw
# replay, golden as-of reads hold, and the retained log still tails every
# acknowledged mutation.
go run ./cmd/chaoskit -scenarios 0 -timetravel -trace=false
# CDC CLI smoke: tailing a store's WAL must surface committed records.
if ! go run ./cmd/lsmtool wal tail -rows 8 | grep -q 'resume position'; then
    echo "lsmtool wal tail printed no resume position" >&2
    exit 1
fi
go test -run=NONE -bench=BenchmarkRecoveryReplay -benchtime=1x ./internal/wal

echo "== scale (open-loop harness + elastic dynamics, DESIGN.md §14) =="
# Deterministic open-loop spine + elastic topology under -race: virtual-clock
# pacing and shed accounting, the continuous balancer racing concurrent
# splits/merges/compaction rounds, cold merges, live server add/decommission,
# and the seeded elastic chaos scenario (all four schemes' invariants).
go test -race -count=1 -run 'OpenLoop|VirtualClock|Balanc|ColdMerge|MoveRegion|AddServer|Decommission|Elastic' \
    ./internal/scale ./internal/cluster ./internal/chaos
# Generator spine: seeded choosers must replay their golden sequences and
# keep the zipfian hot-set mass (silent skew drift invalidates every sweep).
go test -count=1 -run 'Generator|Zipfian' ./internal/workload
# Open-loop smoke at a fixed overload rate: the curve must carry the p99
# column and the run must actually shed — open-loop measurement means
# rejecting excess load, not buffering it without bound.
openloop_out=$(go run ./cmd/diffbench -openloop -rate 6000 -duration 300ms)
echo "$openloop_out" | grep -q 'p99' || { echo "diffbench -openloop output missing p99 column" >&2; exit 1; }
echo "$openloop_out" | grep -Eq 'shed by the open-loop gate across all points: [1-9]' \
    || { echo "diffbench -openloop overload point shed nothing" >&2; exit 1; }
# Elastic verdict: seeded server adds, a decommission, cold merges, hot
# splits and continuous balancing under live load; every per-scheme
# invariant must hold and the AUQ backlog must stay under its cap.
go run ./cmd/chaoskit -scenarios 0 -elastic -trace=false

echo "CI PASSED"
