package diffindex

import "diffindex/internal/kv"

// Typed order-preserving encodings.
//
// Index values compare as raw bytes, so columns holding numbers must be
// encoded order-preservingly for RangeByIndex to work. These helpers map Go
// values to byte strings whose lexicographic order equals the values'
// natural order; strings need no encoding. DenseValue packs several typed
// fields into one column value (the "dense columns" of the paper's Big SQL
// integration, §7), still order-preserving field by field.

// EncodeUint64 encodes v so byte order equals numeric order.
func EncodeUint64(v uint64) []byte { return kv.EncodeUint64(v) }

// DecodeUint64 reverses EncodeUint64.
func DecodeUint64(b []byte) (uint64, error) { return kv.DecodeUint64(b) }

// EncodeInt64 encodes v (including negatives) so byte order equals numeric
// order.
func EncodeInt64(v int64) []byte { return kv.EncodeInt64(v) }

// DecodeInt64 reverses EncodeInt64.
func DecodeInt64(b []byte) (int64, error) { return kv.DecodeInt64(b) }

// EncodeFloat64 encodes v so byte order equals IEEE-754 total order.
func EncodeFloat64(v float64) []byte { return kv.EncodeFloat64(v) }

// DecodeFloat64 reverses EncodeFloat64.
func DecodeFloat64(b []byte) (float64, error) { return kv.DecodeFloat64(b) }

// EncodeBool encodes false < true.
func EncodeBool(v bool) []byte { return kv.EncodeBool(v) }

// DecodeBool reverses EncodeBool.
func DecodeBool(b []byte) (bool, error) { return kv.DecodeBool(b) }

// Field is one typed component of a dense value.
type Field = kv.DenseField

// Typed field constructors for DenseValue.
func Uint64Field(v uint64) Field   { return kv.Uint64Field(v) }
func Int64Field(v int64) Field     { return kv.Int64Field(v) }
func Float64Field(v float64) Field { return kv.Float64Field(v) }
func BoolField(v bool) Field       { return kv.BoolField(v) }
func BytesField(v []byte) Field    { return kv.BytesField(v) }

// DenseValue packs typed fields into one order-preserving column value.
func DenseValue(fields ...Field) []byte { return kv.EncodeDense(fields...) }

// DenseFields unpacks a value produced by DenseValue.
func DenseFields(b []byte) ([]Field, error) { return kv.DecodeDense(b) }
