package diffindex

import (
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIAdvisorAndCleanse(t *testing.T) {
	db := openTestDB(t, 3)
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"kind"}, SyncInsert, nil); err != nil {
		t.Fatal(err)
	}
	advisor := db.NewAdvisor()
	cl := db.NewClient("c")

	// Stale entries accumulate under sync-insert updates.
	for gen := 0; gen < 2; gen++ {
		for i := 0; i < 10; i++ {
			if _, err := cl.Put("t", []byte(fmt.Sprintf("r%02d", i)), Cols{
				"kind": []byte(fmt.Sprintf("g%d", gen)),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	checked, repaired, err := cl.Cleanse("t", "kind")
	if err != nil {
		t.Fatal(err)
	}
	if checked != 20 || repaired != 10 {
		t.Errorf("Cleanse = (%d, %d), want (20, 10)", checked, repaired)
	}

	// The advisor saw the writes; with a read-heavy phase it flips.
	u, r := advisor.Observed("t", "kind")
	if u != 20 {
		t.Errorf("Observed updates = %d", u)
	}
	_ = r
	rec := advisor.Recommend("t", []string{"kind"}, Requirements{NeedConsistency: true, UpdateLatencyCritical: true})
	if rec.Scheme != SyncInsert || rec.Rationale == "" {
		t.Errorf("Recommend = %+v", rec)
	}
	rec, err = advisor.Apply(cl, "t", []string{"kind"}, Requirements{})
	if err != nil || rec.Scheme != AsyncSimple {
		t.Fatalf("Apply = %+v err=%v", rec, err)
	}
	// Updates now flow async; convergence still reaches the right state.
	if _, err := cl.Put("t", []byte("r00"), Cols{"kind": []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	if !db.WaitForIndexes(5 * time.Second) {
		t.Fatal("no convergence after Apply")
	}
	hits, _ := cl.GetByIndex("t", []string{"kind"}, []byte("fresh"))
	if len(hits) != 1 {
		t.Errorf("fresh hits = %v", hits)
	}
	if err := cl.SetIndexScheme("t", []string{"kind"}, SyncFull); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Cleanse("t", "missing"); err == nil {
		t.Error("Cleanse of missing index succeeded")
	}
}

func TestPublicAPIUnsafeDrainKnob(t *testing.T) {
	// Just exercise the wiring: with the knob on, flushes do not wait for
	// the AUQ.
	db := Open(Options{Servers: 2, UnsafeDisableDrainOnFlush: true})
	defer db.Close()
	db.CreateTable("t", nil)
	if err := db.CreateIndex("t", []string{"a"}, AsyncSimple, nil); err != nil {
		t.Fatal(err)
	}
	db.PartitionNetwork("rs1", "rs2")
	cl := db.NewClient("c")
	for i := 0; i < 10; i++ {
		cl.Put("t", []byte(fmt.Sprintf("r%d", i)), Cols{"a": []byte("v")})
	}
	done := make(chan error, 1)
	go func() { done <- db.FlushAll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush blocked despite UnsafeDisableDrainOnFlush")
	}
	db.HealNetwork()
}
