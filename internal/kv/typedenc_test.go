package kv

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUint64OrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		cmp := bytes.Compare(EncodeUint64(a), EncodeUint64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := bytes.Compare(EncodeInt64(a), EncodeInt64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Boundary cases quick.Check may miss.
	cases := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for i := 1; i < len(cases); i++ {
		if bytes.Compare(EncodeInt64(cases[i-1]), EncodeInt64(cases[i])) >= 0 {
			t.Errorf("EncodeInt64(%d) !< EncodeInt64(%d)", cases[i-1], cases[i])
		}
	}
}

func TestFloat64OrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := bytes.Compare(EncodeFloat64(a), EncodeFloat64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp <= 0 // ±0 encode adjacently; -0 sorts ≤ +0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	ordered := []float64{math.Inf(-1), -1e300, -1.5, -1e-300, 0, 1e-300, 1.5, 1e300, math.Inf(1)}
	for i := 1; i < len(ordered); i++ {
		if bytes.Compare(EncodeFloat64(ordered[i-1]), EncodeFloat64(ordered[i])) >= 0 {
			t.Errorf("EncodeFloat64(%g) !< EncodeFloat64(%g)", ordered[i-1], ordered[i])
		}
	}
	// NaN sorts above +Inf (total order).
	if bytes.Compare(EncodeFloat64(math.NaN()), EncodeFloat64(math.Inf(1))) <= 0 {
		t.Error("NaN must sort above +Inf")
	}
}

func TestTypedRoundTrips(t *testing.T) {
	f := func(u uint64, i int64, fl float64, b bool) bool {
		gu, err := DecodeUint64(EncodeUint64(u))
		if err != nil || gu != u {
			return false
		}
		gi, err := DecodeInt64(EncodeInt64(i))
		if err != nil || gi != i {
			return false
		}
		gf, err := DecodeFloat64(EncodeFloat64(fl))
		if err != nil || (gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl))) {
			return false
		}
		gb, err := DecodeBool(EncodeBool(b))
		return err == nil && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypedDecodeErrors(t *testing.T) {
	if _, err := DecodeUint64([]byte{1, 2, 3}); err == nil {
		t.Error("short uint64 accepted")
	}
	if _, err := DecodeInt64(nil); err == nil {
		t.Error("nil int64 accepted")
	}
	if _, err := DecodeFloat64([]byte{0}); err == nil {
		t.Error("short float64 accepted")
	}
	if _, err := DecodeBool([]byte{2}); err == nil {
		t.Error("bad bool accepted")
	}
	if _, err := DecodeBool([]byte{0, 1}); err == nil {
		t.Error("long bool accepted")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	in := []DenseField{
		Uint64Field(42),
		Int64Field(-7),
		Float64Field(3.25),
		BoolField(true),
		BytesField([]byte("tail\x00data")),
	}
	out, err := DecodeDense(EncodeDense(in...))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d fields", len(out))
	}
	if out[0].Uint != 42 || out[1].Int != -7 || out[2].Float != 3.25 || !out[3].Bool || string(out[4].Bytes) != "tail\x00data" {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestDenseOrderPreserving(t *testing.T) {
	// Dense values with a common prefix compare by the first differing
	// field in its natural order.
	lo := EncodeDense(BytesField([]byte("price")), Int64Field(-10))
	mid := EncodeDense(BytesField([]byte("price")), Int64Field(5))
	hi := EncodeDense(BytesField([]byte("price")), Int64Field(700))
	if !(bytes.Compare(lo, mid) < 0 && bytes.Compare(mid, hi) < 0) {
		t.Error("dense int ordering broken")
	}
	// Fewer fields sort before an extension (prefix rule).
	short := EncodeDense(BytesField([]byte("price")))
	if bytes.Compare(short, lo) >= 0 {
		t.Error("prefix dense value must sort first")
	}
	// Floats order across sign.
	fa := EncodeDense(Float64Field(-2.5))
	fb := EncodeDense(Float64Field(1e-9))
	if bytes.Compare(fa, fb) >= 0 {
		t.Error("dense float ordering broken")
	}
}

func TestDenseDecodeErrors(t *testing.T) {
	if _, err := DecodeDense([]byte{0x00}); err == nil {
		t.Error("malformed composite accepted")
	}
	bad := AppendPart(nil, []byte{99, 1, 2}) // unknown kind
	if _, err := DecodeDense(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	empty := AppendPart(nil, nil) // empty field
	if _, err := DecodeDense(empty); err == nil {
		t.Error("empty field accepted")
	}
	shortInt := AppendPart(nil, []byte{byte(DenseInt), 1}) // truncated int
	if _, err := DecodeDense(shortInt); err == nil {
		t.Error("truncated int accepted")
	}
}
