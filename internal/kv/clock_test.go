package kv

import (
	"sync"
	"testing"
)

func TestClockStrictlyIncreasing(t *testing.T) {
	c := NewClock(100)
	prev := Timestamp(0)
	for i := 0; i < 1000; i++ {
		ts := c.Next()
		if ts <= prev {
			t.Fatalf("timestamp went backwards: %d after %d", ts, prev)
		}
		prev = ts
	}
	if first := NewClock(100).Next(); first != 100 {
		t.Errorf("first timestamp = %d, want 100", first)
	}
}

func TestClockObserve(t *testing.T) {
	c := NewClock(1)
	c.Observe(500)
	if ts := c.Next(); ts <= 500 {
		t.Errorf("Next() after Observe(500) = %d, want > 500", ts)
	}
	c.Observe(10) // observing the past must not move the clock back
	if ts := c.Next(); ts <= 500 {
		t.Errorf("Next() after Observe(10) = %d, want > 500", ts)
	}
}

// TestClockObserveReplayedHistoricalTimestamps is the recovery-replay
// regression: WAL and snapshot replay feed the clock historical timestamps
// in log order — which is NOT globally sorted across regions, and a
// snapshot's folded cells replay before a tail that can carry OLDER
// timestamps from other keys. Whatever order history arrives in, the clock
// must end at the maximum observed and never regress, so post-recovery
// writes cannot collide with replayed versions.
func TestClockObserveReplayedHistoricalTimestamps(t *testing.T) {
	replayed := []Timestamp{40, 41, 55, 42, 7, 56, 3, 55, 60, 12}
	c := NewClock(1)
	var max Timestamp
	for _, ts := range replayed {
		c.Observe(ts)
		if ts > max {
			max = ts
		}
		if now := c.Now(); now < max {
			t.Fatalf("clock regressed to %d after observing %d (max %d)", now, ts, max)
		}
	}
	if ts := c.Next(); ts != max+1 {
		t.Fatalf("first post-recovery timestamp = %d, want %d", ts, max+1)
	}

	// Concurrent replay (regions recover in parallel) races Observe against
	// Observe and against Next; the clock must still end past everything
	// observed (run under -race).
	c = NewClock(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe(Timestamp(w*500 + i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Next()
		}
	}()
	wg.Wait()
	if ts := c.Next(); ts <= 1999 {
		t.Fatalf("post-replay Next() = %d, want > 1999 (max observed)", ts)
	}
}

func TestClockConcurrentUnique(t *testing.T) {
	c := NewClock(1)
	const workers, perWorker = 8, 2000
	results := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Timestamp, perWorker)
			for i := range out {
				out[i] = c.Next()
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, workers*perWorker)
	for _, out := range results {
		for _, ts := range out {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
}

func TestCellCloneIndependent(t *testing.T) {
	orig := Cell{Key: []byte("k"), Value: []byte("v"), Ts: 9, Kind: KindPut}
	cp := orig.Clone()
	cp.Key[0] = 'x'
	cp.Value[0] = 'y'
	if orig.Key[0] != 'k' || orig.Value[0] != 'v' {
		t.Error("Clone shares storage with original")
	}
	nilCell := Cell{Ts: 1, Kind: KindDelete}
	cp2 := nilCell.Clone()
	if cp2.Key != nil || cp2.Value != nil || !cp2.Tombstone() {
		t.Error("Clone of nil-slice cell must preserve nils and kind")
	}
}

func TestKindString(t *testing.T) {
	if KindPut.String() != "put" || KindDelete.String() != "delete" {
		t.Error("Kind.String mismatch")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind must still render")
	}
}
