package kv

import (
	"bytes"
	"testing"
)

// Fuzz targets for every decoder that consumes untrusted bytes (store keys
// read back from disk). Run continuously with `go test -fuzz Fuzz...`;
// under plain `go test` the seed corpus acts as extra unit coverage. The
// invariant in each case: decoders never panic, and whatever decodes
// successfully re-encodes to the same bytes.

func FuzzDecodeComposite(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeComposite([]byte("row"), []byte("col")))
	f.Add(EncodeComposite(nil, nil, nil))
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0xFF, 0x00})
	f.Add([]byte("plain bytes with no terminator"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parts, err := DecodeComposite(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeComposite(parts...), data) {
			t.Fatalf("re-encode mismatch for %x", data)
		}
	})
}

func FuzzParseInternalKey(f *testing.F) {
	f.Add([]byte{})
	f.Add(InternalKey([]byte("user"), 42, KindPut))
	f.Add(InternalKey(nil, 0, KindDelete))
	f.Fuzz(func(t *testing.T, data []byte) {
		uk, ts, kind, err := ParseInternalKey(data)
		if err != nil {
			return
		}
		if ts >= 0 && !bytes.Equal(InternalKey(uk, ts, kind), data) {
			// Non-canonical kind bytes (anything but 0/1 in the last
			// position) decode but re-encode canonically; only canonical
			// inputs must round-trip.
			if data[len(data)-1] == 0 || data[len(data)-1] == 1 {
				t.Fatalf("re-encode mismatch for %x", data)
			}
		}
	})
}

func FuzzSplitLocalIndexKey(f *testing.F) {
	f.Add([]byte{})
	f.Add(LocalIndexKey("lidx_t_c", []byte("value"), []byte("row")))
	f.Add(BaseKey([]byte("row"), []byte("col")))
	f.Add([]byte{0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, row, err := SplitLocalIndexKey("lidx_t_c", data)
		if err != nil {
			return
		}
		if !bytes.Equal(LocalIndexKey("lidx_t_c", v, row), data) {
			t.Fatalf("re-encode mismatch for %x", data)
		}
	})
}

func FuzzDecodeDense(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDense(Int64Field(-5), BytesField([]byte("x"))))
	f.Add(EncodeDense(Float64Field(3.14), BoolField(true), Uint64Field(9)))
	f.Fuzz(func(t *testing.T, data []byte) {
		fields, err := DecodeDense(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeDense(fields...), data) {
			t.Fatalf("re-encode mismatch for %x", data)
		}
	})
}
