package kv

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Typed order-preserving value encodings.
//
// Index values are compared as raw bytes, so columns holding numbers must be
// encoded order-preservingly for range queries to work — the paper's Big SQL
// integration indexes "dense columns" whose fields carry "a different type
// and encoding" (§7). These encoders map Go values to byte strings whose
// lexicographic order equals the natural order of the values:
//
//	EncodeUint64   big-endian
//	EncodeInt64    sign-flipped big-endian (negatives sort before positives)
//	EncodeFloat64  IEEE-754 with sign-dependent bit flips (total order,
//	               -Inf < … < -0 ≤ +0 < … < +Inf; NaN sorts last)
//	EncodeBool     false < true
//
// Strings need no encoding (byte order is string order).

// EncodeUint64 encodes v so byte order equals numeric order.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeUint64 reverses EncodeUint64.
func DecodeUint64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("kv: uint64 encoding has %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// EncodeInt64 encodes v so byte order equals numeric order, including
// negative values.
func EncodeInt64(v int64) []byte {
	return EncodeUint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 reverses EncodeInt64.
func DecodeInt64(b []byte) (int64, error) {
	u, err := DecodeUint64(b)
	if err != nil {
		return 0, err
	}
	return int64(u ^ (1 << 63)), nil
}

// EncodeFloat64 encodes v so byte order equals IEEE-754 total order. NaN
// encodes above +Inf.
func EncodeFloat64(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip everything so larger magnitude sorts first
	} else {
		bits ^= 1 << 63 // positive: flip the sign bit so positives sort above negatives
	}
	return EncodeUint64(bits)
}

// DecodeFloat64 reverses EncodeFloat64.
func DecodeFloat64(b []byte) (float64, error) {
	bits, err := DecodeUint64(b)
	if err != nil {
		return 0, err
	}
	if bits&(1<<63) != 0 {
		bits ^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// EncodeBool encodes false < true.
func EncodeBool(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

// DecodeBool reverses EncodeBool.
func DecodeBool(b []byte) (bool, error) {
	if len(b) != 1 || b[0] > 1 {
		return false, fmt.Errorf("kv: bad bool encoding %x", b)
	}
	return b[0] == 1, nil
}

// DenseField is one typed field of a dense column (§7): a column that packs
// several typed fields into a single value to cut per-cell overhead.
type DenseField struct {
	// Kind discriminates the field's type.
	Kind DenseKind
	// Exactly one of the following is meaningful, per Kind.
	Uint  uint64
	Int   int64
	Float float64
	Bool  bool
	Bytes []byte
}

// DenseKind enumerates dense-field types.
type DenseKind uint8

// Dense-field type tags. Their numeric order is irrelevant (every field is
// prefixed by its kind, and heterogeneous comparisons follow tag order).
const (
	DenseUint DenseKind = iota + 1
	DenseInt
	DenseFloat
	DenseBool
	DenseBytes
)

// Uint64Field, Int64Field, Float64Field, BoolField and BytesField build
// DenseField values.
func Uint64Field(v uint64) DenseField   { return DenseField{Kind: DenseUint, Uint: v} }
func Int64Field(v int64) DenseField     { return DenseField{Kind: DenseInt, Int: v} }
func Float64Field(v float64) DenseField { return DenseField{Kind: DenseFloat, Float: v} }
func BoolField(v bool) DenseField       { return DenseField{Kind: DenseBool, Bool: v} }
func BytesField(v []byte) DenseField    { return DenseField{Kind: DenseBytes, Bytes: v} }

// EncodeDense packs typed fields into one order-preserving value: two dense
// values compare field-by-field in their natural type order (fields of
// different kinds compare by kind tag). Usable both as a dense column value
// and as a typed composite index value.
func EncodeDense(fields ...DenseField) []byte {
	var out []byte
	for _, f := range fields {
		part := []byte{byte(f.Kind)}
		switch f.Kind {
		case DenseUint:
			part = append(part, EncodeUint64(f.Uint)...)
		case DenseInt:
			part = append(part, EncodeInt64(f.Int)...)
		case DenseFloat:
			part = append(part, EncodeFloat64(f.Float)...)
		case DenseBool:
			part = append(part, EncodeBool(f.Bool)...)
		case DenseBytes:
			part = append(part, f.Bytes...)
		}
		out = AppendPart(out, part)
	}
	return out
}

// DecodeDense unpacks a dense value produced by EncodeDense.
func DecodeDense(b []byte) ([]DenseField, error) {
	parts, err := DecodeComposite(b)
	if err != nil {
		return nil, err
	}
	fields := make([]DenseField, 0, len(parts))
	for _, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("kv: empty dense field")
		}
		f := DenseField{Kind: DenseKind(part[0])}
		body := part[1:]
		switch f.Kind {
		case DenseUint:
			if f.Uint, err = DecodeUint64(body); err != nil {
				return nil, err
			}
		case DenseInt:
			if f.Int, err = DecodeInt64(body); err != nil {
				return nil, err
			}
		case DenseFloat:
			if f.Float, err = DecodeFloat64(body); err != nil {
				return nil, err
			}
		case DenseBool:
			if f.Bool, err = DecodeBool(body); err != nil {
				return nil, err
			}
		case DenseBytes:
			f.Bytes = append([]byte(nil), body...)
		default:
			return nil, fmt.Errorf("kv: unknown dense kind %d", part[0])
		}
		fields = append(fields, f)
	}
	return fields, nil
}
