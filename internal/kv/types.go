// Package kv defines the cell data model shared by every layer of the
// Diff-Index reproduction: multi-versioned cells identified by (row, column,
// timestamp), the order-preserving key encodings used for composite and
// secondary-index keys, the internal key layout used by the memtable and
// SSTables, and the per-server monotonic clock that assigns timestamps.
//
// The model follows the paper's notation (§4): a record is a key/value pair
// ⟨k, v, ts⟩ where k is the HBase row key plus column name, and the index
// table is key-only with key v⊕k and a null value.
package kv

import "fmt"

// Timestamp is a version number in "milliticks". It mirrors the paper's use
// of System.currentTimeMillis(): a monotonically non-decreasing long integer
// local to one region server. δ (Delta) is the smallest representable unit,
// exactly as the paper's HBase implementation chooses 1 millisecond.
type Timestamp = int64

// Delta is the paper's δ: the smallest time unit. It is subtracted from a new
// entry's timestamp to address the version immediately preceding it, e.g.
// R_B(k, t_new − δ) and D_I(v_old ⊕ k, t_new − δ).
const Delta Timestamp = 1

// MaxTimestamp is the largest valid timestamp; reads at MaxTimestamp observe
// the newest version of every cell.
const MaxTimestamp Timestamp = 1<<63 - 1

// Kind discriminates puts from delete tombstones. LSM stores never update in
// place: a delete is a put of a tombstone whose timestamp masks all older
// versions of the same key (§4.3).
type Kind uint8

const (
	// KindPut is a regular value write.
	KindPut Kind = iota
	// KindDelete is a tombstone. A tombstone with timestamp T masks every
	// version of the same user key with timestamp ≤ T.
	KindDelete
)

// String returns "put" or "delete".
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Cell is one versioned key/value pair in a table: the paper's ⟨k, v, ts⟩.
// Key is the flat user key (already row⊕column encoded for base tables, or
// value⊕row encoded for index tables). Value is nil for tombstones and for
// key-only index entries.
type Cell struct {
	Key   []byte
	Value []byte
	Ts    Timestamp
	Kind  Kind
}

// Tombstone reports whether the cell is a delete marker.
func (c Cell) Tombstone() bool { return c.Kind == KindDelete }

// Clone returns a deep copy of the cell. Layers that retain cells beyond the
// lifetime of the buffer they were decoded from must clone them.
func (c Cell) Clone() Cell {
	out := Cell{Ts: c.Ts, Kind: c.Kind}
	if c.Key != nil {
		out.Key = append([]byte(nil), c.Key...)
	}
	if c.Value != nil {
		out.Value = append([]byte(nil), c.Value...)
	}
	return out
}

// String renders the cell for debugging.
func (c Cell) String() string {
	return fmt.Sprintf("⟨%q, %q, %d, %s⟩", c.Key, c.Value, c.Ts, c.Kind)
}
