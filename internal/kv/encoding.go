package kv

import (
	"bytes"
	"errors"
	"fmt"
)

// Order-preserving composite key encoding.
//
// Both base-table keys (row ⊕ column) and index-table keys (indexValue ⊕ row,
// §4) are concatenations of variable-length byte strings. Plain concatenation
// does not preserve order and is ambiguous, so each part is escaped and
// terminated:
//
//	0x00            → 0x00 0xFF   (escape)
//	end of part     → 0x00 0x01   (terminator)
//
// The terminator (0x00 0x01) sorts below every escaped byte sequence that
// continues the part (0x00 0xFF or any byte ≥ 0x01), so for any distinct a, b:
// a < b  ⇔  Escape(a) < Escape(b), and a part is never a prefix of a
// different part's encoding. This is the classic escape used by BigTable-style
// stores for composite keys.

const (
	escByte  = 0x00
	escCont  = 0xFF // follows escByte when the source byte was 0x00
	escTerm  = 0x01 // follows escByte to terminate a part
	sepBytes = 2
)

// AppendPart appends the order-preserving encoding of part (including its
// terminator) to dst and returns the extended slice.
func AppendPart(dst, part []byte) []byte {
	for _, b := range part {
		if b == escByte {
			dst = append(dst, escByte, escCont)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, escByte, escTerm)
}

// EncodeComposite encodes parts into a single key that sorts exactly like the
// tuple of parts compared part-by-part.
func EncodeComposite(parts ...[]byte) []byte {
	n := sepBytes * len(parts)
	for _, p := range parts {
		n += len(p)
	}
	dst := make([]byte, 0, n+4)
	for _, p := range parts {
		dst = AppendPart(dst, p)
	}
	return dst
}

// ErrBadEncoding is returned when a composite key cannot be decoded.
var ErrBadEncoding = errors.New("kv: malformed composite key encoding")

// DecodePart decodes the first part of b, returning the part and the rest of
// the buffer after the terminator.
func DecodePart(b []byte) (part, rest []byte, err error) {
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); {
		c := b[i]
		if c != escByte {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, ErrBadEncoding
		}
		switch b[i+1] {
		case escCont:
			out = append(out, escByte)
			i += 2
		case escTerm:
			return out, b[i+2:], nil
		default:
			return nil, nil, ErrBadEncoding
		}
	}
	return nil, nil, ErrBadEncoding
}

// DecodeComposite decodes every part of a composite key.
func DecodeComposite(b []byte) ([][]byte, error) {
	var parts [][]byte
	for len(b) > 0 {
		part, rest, err := DecodePart(b)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		b = rest
	}
	return parts, nil
}

// PrefixSuccessor returns the smallest key that is strictly greater than
// every key having the given prefix, or nil if no such key exists (the
// prefix is all 0xFF). It is used to turn "all keys with prefix p" into the
// half-open range [p, PrefixSuccessor(p)).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			out := append([]byte(nil), prefix[:i+1]...)
			out[i]++
			return out
		}
	}
	return nil
}

// --- Base-table keys -------------------------------------------------------

// BaseKey encodes a base-table user key from a row key and a column name:
// the paper's "HBase rowkey plus column name".
func BaseKey(row, column []byte) []byte {
	return EncodeComposite(row, column)
}

// SplitBaseKey decodes a base-table key back into (row, column).
func SplitBaseKey(key []byte) (row, column []byte, err error) {
	parts, err := DecodeComposite(key)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("%w: base key has %d parts, want 2", ErrBadEncoding, len(parts))
	}
	return parts[0], parts[1], nil
}

// RowPrefix returns the key prefix covering every column of the given row.
func RowPrefix(row []byte) []byte {
	return AppendPart(nil, row)
}

// --- Index-table keys ------------------------------------------------------

// IndexKey encodes an index-table row key: the concatenation of the index
// value and the base row key (the paper's v ⊕ k), with a null value stored
// alongside. The index table is key-only (§4 Remark).
func IndexKey(value, row []byte) []byte {
	return EncodeComposite(value, row)
}

// SplitIndexKey decodes an index key back into (value, row).
func SplitIndexKey(key []byte) (value, row []byte, err error) {
	parts, err := DecodeComposite(key)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("%w: index key has %d parts, want 2", ErrBadEncoding, len(parts))
	}
	return parts[0], parts[1], nil
}

// IndexValuePrefix returns the key prefix covering every index entry whose
// index value equals value — the scan range used by exact-match index reads.
func IndexValuePrefix(value []byte) []byte {
	return AppendPart(nil, value)
}

// IndexValueRange returns the half-open index-key range [lo, hi) covering all
// index entries whose value v satisfies low ≤ v ≤ high (inclusive bounds),
// as used by range queries over an indexed column (§8.2 "Range query with
// index"). A nil high means "no upper bound".
func IndexValueRange(low, high []byte) (lo, hi []byte) {
	lo = AppendPart(nil, low)
	if high == nil {
		return lo, nil
	}
	hi = PrefixSuccessor(AppendPart(nil, high))
	return lo, hi
}

// --- Local-index keys -------------------------------------------------------

// Local secondary indexes (§3.1) co-locate with the region holding the
// indexed row: their entries live in the SAME region store as the base
// data, under a reserved key space that no base-table key can collide with.
// Every encoded base key starts either with a byte ≥ 0x01, or with the
// escape pair 0x00 0xFF, or with the empty-part terminator 0x00 0x01 — so
// the prefix 0x00 0x00 is unreachable from base encodings and marks local
// index entries, and all of them sort before BaseDataStart.

// localIndexPrefix begins every local-index store key.
var localIndexPrefix = []byte{0x00, 0x00}

// BaseDataStart is the smallest store key a base-table cell can have; scans
// of base data start here so local-index entries are excluded.
var BaseDataStart = []byte{0x00, 0x01}

// LocalIndexKey encodes a local-index entry's store key:
// 0x00 0x00 · name · value · row (composite-encoded).
func LocalIndexKey(indexName string, value, row []byte) []byte {
	out := make([]byte, 0, 2+len(indexName)+len(value)+len(row)+3*sepBytes)
	out = append(out, localIndexPrefix...)
	out = AppendPart(out, []byte(indexName))
	out = AppendPart(out, value)
	return AppendPart(out, row)
}

// SplitLocalIndexKey decodes a local-index store key into (value, row),
// validating the prefix and index name.
func SplitLocalIndexKey(indexName string, key []byte) (value, row []byte, err error) {
	if !bytes.HasPrefix(key, localIndexPrefix) {
		return nil, nil, fmt.Errorf("%w: not a local index key", ErrBadEncoding)
	}
	parts, err := DecodeComposite(key[len(localIndexPrefix):])
	if err != nil {
		return nil, nil, err
	}
	if len(parts) != 3 {
		return nil, nil, fmt.Errorf("%w: local index key has %d parts, want 3", ErrBadEncoding, len(parts))
	}
	if string(parts[0]) != indexName {
		return nil, nil, fmt.Errorf("%w: local index key for %q, want %q", ErrBadEncoding, parts[0], indexName)
	}
	return parts[1], parts[2], nil
}

// IsLocalIndexKey reports whether a store key lies in the reserved
// local-index key space.
func IsLocalIndexKey(key []byte) bool { return bytes.HasPrefix(key, localIndexPrefix) }

// LocalIndexRow extracts the base row key from any local-index store key,
// regardless of which index it belongs to — region splitting uses it to
// route local entries alongside their rows.
func LocalIndexRow(key []byte) ([]byte, error) {
	if !IsLocalIndexKey(key) {
		return nil, fmt.Errorf("%w: not a local index key", ErrBadEncoding)
	}
	parts, err := DecodeComposite(key[len(localIndexPrefix):])
	if err != nil {
		return nil, err
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: local index key has %d parts, want 3", ErrBadEncoding, len(parts))
	}
	return parts[2], nil
}

// LocalIndexValuePrefix returns the store-key prefix of all of indexName's
// entries with exactly the given value.
func LocalIndexValuePrefix(indexName string, value []byte) []byte {
	out := make([]byte, 0, 2+len(indexName)+len(value)+2*sepBytes)
	out = append(out, localIndexPrefix...)
	out = AppendPart(out, []byte(indexName))
	return AppendPart(out, value)
}

// LocalIndexValueRange returns the store-key range of indexName's entries
// with value v satisfying low ≤ v ≤ high (nil high = unbounded within the
// index).
func LocalIndexValueRange(indexName string, low, high []byte) (lo, hi []byte) {
	namePrefix := append(append([]byte(nil), localIndexPrefix...), AppendPart(nil, []byte(indexName))...)
	lo = append(append([]byte(nil), namePrefix...), AppendPart(nil, low)...)
	if high == nil {
		return lo, PrefixSuccessor(namePrefix)
	}
	hi = PrefixSuccessor(append(append([]byte(nil), namePrefix...), AppendPart(nil, high)...))
	return lo, hi
}

// IndexValueFromColumns computes an index's value bytes from a row's column
// values: a single-column index's value is the raw column value; a composite
// index's value is the order-preserving composite encoding of every column
// value in definition order. ok is false when any indexed column is absent
// (rows with missing indexed columns have no index entry — NULL semantics).
// Both the index-maintenance path and the anti-entropy verifier derive index
// values through this one function so they can never disagree.
func IndexValueFromColumns(columns []string, cols map[string][]byte) ([]byte, bool) {
	if len(columns) == 1 {
		v, ok := cols[columns[0]]
		return v, ok
	}
	parts := make([][]byte, len(columns))
	for i, c := range columns {
		v, ok := cols[c]
		if !ok {
			return nil, false
		}
		parts[i] = v
	}
	return EncodeComposite(parts...), true
}

// CompareParts compares two byte-string tuples part-by-part, mirroring how
// their composite encodings compare byte-wise.
func CompareParts(a, b [][]byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := bytes.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
