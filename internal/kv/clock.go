package kv

import "sync/atomic"

// Clock assigns timestamps to writes the way an HBase region server does: a
// monotonically non-decreasing long integer local to the server (§2.2). Our
// clock is strictly increasing per server, which subsumes HBase's
// non-decreasing guarantee and removes same-key/same-timestamp collisions
// between distinct values; the paper's same-timestamp idempotence rule
// (§5.3) still holds because replays reuse the original timestamp carried in
// the WAL rather than drawing a fresh one.
//
// Timestamps are logical "milliticks" seeded at a fixed epoch, which makes
// concurrency and recovery tests deterministic (see DESIGN.md substitution 3).
type Clock struct {
	last atomic.Int64
}

// NewClock returns a clock whose next timestamp is at least start.
func NewClock(start Timestamp) *Clock {
	c := &Clock{}
	c.last.Store(start - 1)
	return c
}

// Next returns a timestamp strictly greater than every timestamp previously
// returned by this clock.
func (c *Clock) Next() Timestamp {
	return c.last.Add(1)
}

// Observe advances the clock to at least ts, so that timestamps issued after
// recovering data stamped by a previous incarnation never move backwards.
func (c *Clock) Observe(ts Timestamp) {
	for {
		cur := c.last.Load()
		if cur >= ts {
			return
		}
		if c.last.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Now returns the most recently issued timestamp without advancing the clock.
func (c *Clock) Now() Timestamp { return c.last.Load() }
