package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLocalIndexKeyRoundTrip(t *testing.T) {
	key := LocalIndexKey("lidx_t_a", []byte("value"), []byte("row1"))
	v, row, err := SplitLocalIndexKey("lidx_t_a", key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "value" || string(row) != "row1" {
		t.Errorf("got (%q, %q)", v, row)
	}
	if _, _, err := SplitLocalIndexKey("other", key); err == nil {
		t.Error("wrong index name accepted")
	}
	if _, _, err := SplitLocalIndexKey("lidx_t_a", BaseKey([]byte("r"), []byte("c"))); err == nil {
		t.Error("base key accepted as local index key")
	}
}

// TestLocalIndexKeysDisjointFromBaseKeys is the namespace invariant: no
// base key ever falls in the local-index key space, and every local key
// sorts below BaseDataStart.
func TestLocalIndexKeysDisjointFromBaseKeys(t *testing.T) {
	f := func(row, col, value []byte, name string) bool {
		if name == "" {
			name = "i"
		}
		base := BaseKey(row, col)
		local := LocalIndexKey(name, value, row)
		return bytes.Compare(base, BaseDataStart) >= 0 &&
			bytes.Compare(local, BaseDataStart) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// The adversarial corner: empty row, empty column.
	if bytes.Compare(BaseKey(nil, nil), BaseDataStart) < 0 {
		t.Error("empty base key below BaseDataStart")
	}
	if bytes.Compare(BaseKey([]byte{0}, nil), BaseDataStart) < 0 {
		t.Error("0x00-leading base key below BaseDataStart")
	}
}

func TestLocalIndexValuePrefixAndRange(t *testing.T) {
	name := "lidx_t_price"
	k10 := LocalIndexKey(name, []byte("10"), []byte("r1"))
	k20 := LocalIndexKey(name, []byte("20"), []byte("r2"))
	k30 := LocalIndexKey(name, []byte("30"), []byte("r3"))
	other := LocalIndexKey("lidx_t_other", []byte("20"), []byte("r2"))

	prefix := LocalIndexValuePrefix(name, []byte("20"))
	if !bytes.HasPrefix(k20, prefix) {
		t.Error("exact value not covered")
	}
	if bytes.HasPrefix(k10, prefix) || bytes.HasPrefix(other, prefix) {
		t.Error("prefix overmatches")
	}

	lo, hi := LocalIndexValueRange(name, []byte("10"), []byte("20"))
	inRange := func(k []byte) bool {
		return bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0
	}
	if !inRange(k10) || !inRange(k20) {
		t.Error("range misses inclusive bounds")
	}
	if inRange(k30) || inRange(other) {
		t.Error("range overmatches")
	}

	// Unbounded high still stays within this index's name space.
	lo, hi = LocalIndexValueRange(name, []byte("10"), nil)
	if !inRange2(lo, hi, k10) || !inRange2(lo, hi, k30) {
		t.Error("open range misses entries")
	}
	if inRange2(lo, hi, other) {
		t.Error("open range leaks into another index")
	}
}

func inRange2(lo, hi, k []byte) bool {
	return bytes.Compare(k, lo) >= 0 && (hi == nil || bytes.Compare(k, hi) < 0)
}
