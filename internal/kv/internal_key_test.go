package kv

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	f := func(userKey []byte, ts int64, del bool) bool {
		if ts < 0 {
			ts = -ts
		}
		kind := KindPut
		if del {
			kind = KindDelete
		}
		ikey := InternalKey(userKey, ts, kind)
		uk, gotTs, gotKind, err := ParseInternalKey(ikey)
		if err != nil {
			return false
		}
		return bytes.Equal(uk, userKey) && gotTs == ts && gotKind == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseInternalKeyTooShort(t *testing.T) {
	if _, _, _, err := ParseInternalKey(make([]byte, internalSuffixLen-1)); err == nil {
		t.Error("want error for short internal key")
	}
}

func TestInternalKeyOrdering(t *testing.T) {
	// Same user key: newer timestamps sort first.
	a := InternalKey([]byte("k"), 10, KindPut)
	b := InternalKey([]byte("k"), 5, KindPut)
	if CompareInternal(a, b) >= 0 {
		t.Error("newer version must sort before older")
	}
	// Same user key, same ts: tombstone sorts before put.
	d := InternalKey([]byte("k"), 10, KindDelete)
	if CompareInternal(d, a) >= 0 {
		t.Error("tombstone must sort before put at equal ts")
	}
	// Different user keys dominate.
	c := InternalKey([]byte("kk"), math.MaxInt64, KindDelete)
	if CompareInternal(a, c) >= 0 {
		t.Error("user key must dominate ordering")
	}
}

func TestSeekKeyFindsNewestVisible(t *testing.T) {
	// A scan from SeekKey(k, ts) must reach versions with timestamp ≤ ts and
	// skip versions with timestamp > ts.
	uk := []byte("row\x00col")
	seek := SeekKey(uk, 7)
	newer := InternalKey(uk, 8, KindPut)
	atTs := InternalKey(uk, 7, KindPut)
	atTsDel := InternalKey(uk, 7, KindDelete)
	older := InternalKey(uk, 3, KindPut)
	if CompareInternal(newer, seek) >= 0 {
		t.Error("version newer than ts must sort before the seek key")
	}
	for _, vis := range [][]byte{atTsDel, atTs, older} {
		if CompareInternal(seek, vis) > 0 {
			t.Errorf("visible version %x sorts before seek key", vis)
		}
	}
	if CompareInternal(atTsDel, atTs) >= 0 {
		t.Error("tombstone at ts must be seen before put at ts")
	}
}

func TestSeekKeyProperty(t *testing.T) {
	f := func(uk []byte, seekTs, vTs int64, del bool) bool {
		if seekTs < 0 {
			seekTs = -seekTs
		}
		if vTs < 0 {
			vTs = -vTs
		}
		kind := KindPut
		if del {
			kind = KindDelete
		}
		seek := SeekKey(uk, seekTs)
		ver := InternalKey(uk, vTs, kind)
		visible := vTs <= seekTs
		// visible ⇔ version at/after seek position
		return visible == (CompareInternal(seek, ver) <= 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInternalUserKey(t *testing.T) {
	uk := []byte("some-user-key")
	ikey := InternalKey(uk, 123, KindPut)
	if !bytes.Equal(InternalUserKey(ikey), uk) {
		t.Error("InternalUserKey mismatch")
	}
	short := []byte{1, 2}
	if !bytes.Equal(InternalUserKey(short), short) {
		t.Error("short keys must be returned unchanged")
	}
}
