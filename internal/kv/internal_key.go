package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Internal keys.
//
// The memtable and SSTables store cells under an internal key that appends
// the inverted timestamp and kind to the user key:
//
//	internal key = userKey · ( ^ts as big-endian uint64 ) · kind
//
// Inverting the timestamp makes newer versions of the same user key sort
// first, so "newest version ≤ ts" is the first match of a forward scan from
// Seek(userKey, ts). The kind byte breaks the (unlikely) tie between a put
// and a tombstone carrying the same timestamp in favour of the tombstone,
// matching HBase's delete-masks-put rule.

// internalSuffixLen is the number of trailing bytes an internal key adds to
// the user key: 8 timestamp bytes plus 1 kind byte.
const internalSuffixLen = 9

// AppendInternalKey appends the internal encoding of (userKey, ts, kind) to
// dst and returns the extended slice.
func AppendInternalKey(dst, userKey []byte, ts Timestamp, kind Kind) []byte {
	dst = append(dst, userKey...)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ^uint64(ts))
	dst = append(dst, buf[:]...)
	// Tombstones sort before puts at the same timestamp so that a delete
	// issued at time T masks a put at the same T.
	if kind == KindDelete {
		return append(dst, 0)
	}
	return append(dst, 1)
}

// InternalKey encodes (userKey, ts, kind) into a fresh buffer.
func InternalKey(userKey []byte, ts Timestamp, kind Kind) []byte {
	return AppendInternalKey(make([]byte, 0, len(userKey)+internalSuffixLen), userKey, ts, kind)
}

// SeekKey returns the internal key from which a forward scan finds the newest
// version of userKey with timestamp ≤ ts (tombstone or put).
func SeekKey(userKey []byte, ts Timestamp) []byte {
	return AppendInternalKey(make([]byte, 0, len(userKey)+internalSuffixLen), userKey, ts, KindDelete)
}

// ParseInternalKey splits an internal key into its components. The returned
// userKey aliases ikey's storage.
func ParseInternalKey(ikey []byte) (userKey []byte, ts Timestamp, kind Kind, err error) {
	if len(ikey) < internalSuffixLen {
		return nil, 0, 0, fmt.Errorf("kv: internal key too short (%d bytes)", len(ikey))
	}
	n := len(ikey) - internalSuffixLen
	userKey = ikey[:n]
	ts = Timestamp(^binary.BigEndian.Uint64(ikey[n : n+8]))
	if ikey[len(ikey)-1] == 0 {
		kind = KindDelete
	} else {
		kind = KindPut
	}
	return userKey, ts, kind, nil
}

// InternalUserKey returns the user-key portion of an internal key without
// validating the suffix contents.
func InternalUserKey(ikey []byte) []byte {
	if len(ikey) < internalSuffixLen {
		return ikey
	}
	return ikey[:len(ikey)-internalSuffixLen]
}

// CompareInternal orders internal keys: by user key ascending, then by
// timestamp descending (newest first), then tombstones before puts. The user
// keys are compared first so the ordering is correct even when one user key
// is a raw byte prefix of another.
func CompareInternal(a, b []byte) int {
	if c := bytes.Compare(InternalUserKey(a), InternalUserKey(b)); c != 0 {
		return c
	}
	// Equal user keys: the inverted-timestamp + kind suffix compares
	// byte-wise (both suffixes have the same fixed width).
	return bytes.Compare(a[len(a)-min(len(a), internalSuffixLen):], b[len(b)-min(len(b), internalSuffixLen):])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
