package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendPartRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("hello"),
		{0x00},
		{0x00, 0x00, 0x00},
		{0x00, 0x01},
		{0x00, 0xFF},
		{0xFF, 0xFF},
		[]byte("user\x00123"),
	}
	for _, in := range cases {
		enc := AppendPart(nil, in)
		got, rest, err := DecodePart(enc)
		if err != nil {
			t.Fatalf("DecodePart(%x): %v", enc, err)
		}
		if len(rest) != 0 {
			t.Errorf("DecodePart(%x) left %d trailing bytes", enc, len(rest))
		}
		if !bytes.Equal(got, in) {
			t.Errorf("round trip %x: got %x", in, got)
		}
	}
}

func TestEncodeCompositeRoundTrip(t *testing.T) {
	f := func(a, b, c []byte) bool {
		enc := EncodeComposite(a, b, c)
		parts, err := DecodeComposite(enc)
		if err != nil || len(parts) != 3 {
			return false
		}
		return bytes.Equal(parts[0], a) && bytes.Equal(parts[1], b) && bytes.Equal(parts[2], c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEncodingOrderPreserving is the key invariant: comparing encodings
// byte-wise must agree with comparing the part tuples lexicographically.
func TestEncodingOrderPreserving(t *testing.T) {
	f := func(a1, a2, b1, b2 []byte) bool {
		ea := EncodeComposite(a1, a2)
		eb := EncodeComposite(b1, b2)
		want := CompareParts([][]byte{a1, a2}, [][]byte{b1, b2})
		return sign(bytes.Compare(ea, eb)) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncodingNoPrefixAmbiguity: the encoding of one part is never a strict
// prefix of a different part's encoding.
func TestEncodingNoPrefixAmbiguity(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ea := AppendPart(nil, a)
		eb := AppendPart(nil, b)
		return !bytes.HasPrefix(ea, eb) && !bytes.HasPrefix(eb, ea)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodePartErrors(t *testing.T) {
	bad := [][]byte{
		{},                       // empty: no terminator
		{'a', 'b'},               // no terminator
		{0x00},                   // dangling escape
		{0x00, 0x02},             // invalid escape code
		{'a', 0x00},              // dangling escape after data
		AppendPart(nil, nil)[:1], // truncated terminator
	}
	for _, in := range bad {
		if _, _, err := DecodePart(in); err == nil {
			t.Errorf("DecodePart(%x): want error, got nil", in)
		}
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00}, []byte{0x01}},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixSuccessorProperty(t *testing.T) {
	f := func(p, suffix []byte) bool {
		if len(p) == 0 {
			return true
		}
		succ := PrefixSuccessor(p)
		if succ == nil {
			for _, b := range p {
				if b != 0xFF {
					return false
				}
			}
			return true
		}
		withPrefix := append(append([]byte(nil), p...), suffix...)
		return bytes.Compare(withPrefix, succ) < 0 && bytes.Compare(p, succ) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseKeySplit(t *testing.T) {
	key := BaseKey([]byte("user42"), []byte("title"))
	row, col, err := SplitBaseKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(row) != "user42" || string(col) != "title" {
		t.Errorf("got (%q, %q)", row, col)
	}
	if _, _, err := SplitBaseKey(EncodeComposite([]byte("a"))); err == nil {
		t.Error("1-part base key: want error")
	}
	if _, _, err := SplitBaseKey([]byte{0x00}); err == nil {
		t.Error("malformed base key: want error")
	}
}

func TestRowPrefixCoversAllColumns(t *testing.T) {
	row := []byte("user\x001")
	prefix := RowPrefix(row)
	for _, col := range []string{"", "a", "title", "\x00"} {
		key := BaseKey(row, []byte(col))
		if !bytes.HasPrefix(key, prefix) {
			t.Errorf("BaseKey(row, %q) does not have RowPrefix(row)", col)
		}
	}
	other := BaseKey([]byte("user\x0012"), []byte("a"))
	if bytes.HasPrefix(other, prefix) {
		t.Error("RowPrefix matched a longer row key")
	}
}

func TestIndexKeySplit(t *testing.T) {
	key := IndexKey([]byte("The Matrix"), []byte("item9"))
	v, row, err := SplitIndexKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "The Matrix" || string(row) != "item9" {
		t.Errorf("got (%q, %q)", v, row)
	}
	if _, _, err := SplitIndexKey(EncodeComposite([]byte("a"), []byte("b"), []byte("c"))); err == nil {
		t.Error("3-part index key: want error")
	}
}

func TestIndexValuePrefixExactMatchOnly(t *testing.T) {
	prefix := IndexValuePrefix([]byte("red"))
	if !bytes.HasPrefix(IndexKey([]byte("red"), []byte("r1")), prefix) {
		t.Error("exact value not covered by prefix")
	}
	if bytes.HasPrefix(IndexKey([]byte("redder"), []byte("r1")), prefix) {
		t.Error("longer value wrongly covered by prefix")
	}
}

func TestIndexValueRange(t *testing.T) {
	lo, hi := IndexValueRange([]byte("b"), []byte("d"))
	in := [][]byte{
		IndexKey([]byte("b"), []byte("r")),
		IndexKey([]byte("bz"), []byte("r")),
		IndexKey([]byte("d"), []byte("r")),
		IndexKey([]byte("d"), []byte("zzz")),
	}
	out := [][]byte{
		IndexKey([]byte("az"), []byte("r")),
		IndexKey([]byte("dz"), []byte("r")), // value "dz" > high "d": excluded
		IndexKey([]byte("e"), []byte("r")),
	}
	for _, k := range in {
		if bytes.Compare(k, lo) < 0 || (hi != nil && bytes.Compare(k, hi) >= 0) {
			t.Errorf("key %x should be inside [%x, %x)", k, lo, hi)
		}
	}
	for _, k := range out {
		if bytes.Compare(k, lo) >= 0 && (hi == nil || bytes.Compare(k, hi) < 0) {
			t.Errorf("key %x should be outside [%x, %x)", k, lo, hi)
		}
	}
	if _, hi := IndexValueRange([]byte("b"), nil); hi != nil {
		t.Error("nil high must produce nil hi bound")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
