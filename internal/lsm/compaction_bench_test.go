package lsm

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// BenchmarkSustainedWrite drives a growing write stream through a small
// memtable so the store flushes constantly, and compares the legacy
// full-merge compactor against the tiered incremental engine on the two
// axes the tentpole targets:
//
//	write-amp   (FlushBytes + CompactionBytesWritten) / FlushBytes
//	p99-put-ns  tail write-path latency including flushes and the L0-style
//	            write stall applied when compaction debt exceeds
//	            benchMaxTables — the stall a client sees while waiting for
//	            the compactor to retire tables
//
// Both modes are held to the same read-amplification budget (at most
// benchMaxTables live SSTables before the next write proceeds), which is
// how LSM stores bound compaction debt in practice. The full-merge
// baseline can only shed debt by rewriting the entire store, so its stalls
// and write amplification grow with store size; the tiered engine sheds
// the same debt with bounded fan-in rounds.
//
// Run with -benchtime=150000x or more for stable numbers; checked-in
// results live in bench_output_compaction.txt.
func BenchmarkSustainedWrite(b *testing.B) {
	modes := []struct {
		name string
		full bool
	}{
		{"full-merge", true},
		{"tiered", false},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			const (
				benchMemtable  = 8 << 10
				benchMaxTables = 12
			)
			s, err := Open(Options{
				FS: vfs.NewMemFS(), Dir: "bench",
				MemtableBytes:            benchMemtable,
				CompactionThreshold:      benchMaxTables,
				CompactionFanIn:          4,
				MaxConcurrentCompactions: 2,
				FullMergeCompaction:      mode.full,
				// Pace flushes from the loop: the async auto-flush cannot
				// keep up with a tight MemFS put loop, which would batch
				// everything into a handful of giant tables and hide the
				// flush/compaction interplay being measured.
				DisableAutoFlush: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			value := make([]byte, 128)
			lat := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Mostly-unique keys grow the store, so full-merge pays an
				// O(store) rewrite per round; every 8th put overwrites to
				// give the compactor versions to reclaim.
				n := i
				if i%8 == 7 {
					n = i - i%512
				}
				key := []byte(fmt.Sprintf("row%08d", n))
				start := time.Now()
				if err := s.Put(key, value, kv.Timestamp(i+1)); err != nil {
					b.Fatal(err)
				}
				if s.MemtableBytes() >= benchMemtable {
					if err := s.Flush(); err != nil {
						b.Fatal(err)
					}
					// Write stall: block until the compactor brings the
					// table count back under the read-amplification budget.
					for s.TableCount() > benchMaxTables {
						time.Sleep(50 * time.Microsecond)
					}
				}
				lat[i] = time.Since(start)
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			s.WaitCompactions()
			b.StopTimer()

			st := s.Stats()
			if st.CompactionErrors != 0 {
				b.Fatalf("compaction errors: %d (%s)", st.CompactionErrors, st.LastCompactionError)
			}
			if st.FlushBytes > 0 {
				wa := float64(st.FlushBytes+st.CompactionBytesWritten) / float64(st.FlushBytes)
				b.ReportMetric(wa, "write-amp")
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := lat[len(lat)*99/100]
			b.ReportMetric(float64(p99.Nanoseconds()), "p99-put-ns")
			// The stall tail: full-store rewrites block writers for entire
			// merge durations, but those events are rarer than 1 in 100
			// puts, so only the 99.9th percentile sees them.
			p999 := lat[len(lat)*999/1000]
			b.ReportMetric(float64(p999.Nanoseconds()), "p999-put-ns")
			b.ReportMetric(float64(st.Compactions), "rounds")
			b.ReportMetric(float64(s.TableCount()), "tables")
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
