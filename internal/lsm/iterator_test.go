package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/memtable"
)

// buildMemtable makes a memtable component from (key, ts, value) triples.
func buildMemtable(entries ...[3]string) *memtable.Memtable {
	m := memtable.New()
	for _, e := range entries {
		var ts kv.Timestamp
		fmt.Sscanf(e[1], "%d", &ts)
		if e[2] == "DEL" {
			m.Delete([]byte(e[0]), ts)
		} else {
			m.Put([]byte(e[0]), []byte(e[2]), ts)
		}
	}
	return m
}

func collect(t *testing.T, it *mergeIterator) []string {
	t.Helper()
	var out []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		c := it.Cell()
		out = append(out, fmt.Sprintf("%s@%d=%s/%s", c.Key, c.Ts, c.Value, c.Kind))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMergeIteratorInterleavesComponents(t *testing.T) {
	a := buildMemtable([3]string{"a", "3", "a3"}, [3]string{"c", "1", "c1"})
	b := buildMemtable([3]string{"a", "1", "a1"}, [3]string{"b", "2", "b2"})
	it := newMergeIterator([]internalIterator{a.Iterator(), b.Iterator()})
	got := collect(t, it)
	want := []string{"a@3=a3/put", "a@1=a1/put", "b@2=b2/put", "c@1=c1/put"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergeIteratorDeduplicatesIdenticalEntries(t *testing.T) {
	// The same (key, ts, kind) in three components — the idempotent
	// redelivery case of §5.3 — must be emitted once, from the newest
	// component.
	newest := buildMemtable([3]string{"k", "5", "fresh"})
	mid := buildMemtable([3]string{"k", "5", "stale1"})
	old := buildMemtable([3]string{"k", "5", "stale2"}, [3]string{"z", "1", "z1"})
	it := newMergeIterator([]internalIterator{newest.Iterator(), mid.Iterator(), old.Iterator()})
	got := collect(t, it)
	want := []string{"k@5=fresh/put", "z@1=z1/put"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergeIteratorSeek(t *testing.T) {
	a := buildMemtable([3]string{"a", "1", "a1"}, [3]string{"m", "1", "m1"})
	b := buildMemtable([3]string{"f", "1", "f1"}, [3]string{"z", "1", "z1"})
	it := newMergeIterator([]internalIterator{a.Iterator(), b.Iterator()})
	it.Seek(kv.SeekKey([]byte("f"), kv.MaxTimestamp))
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Cell().Key))
	}
	want := []string{"f", "m", "z"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergeIteratorEmptyComponents(t *testing.T) {
	it := newMergeIterator([]internalIterator{
		memtable.New().Iterator(),
		memtable.New().Iterator(),
	})
	it.SeekToFirst()
	if it.Valid() {
		t.Error("merge of empties is valid")
	}
	it.Next() // must not panic
	none := newMergeIterator(nil)
	none.SeekToFirst()
	if none.Valid() {
		t.Error("merge of nothing is valid")
	}
}

// errIter wraps an iterator and fails after n steps.
type errIter struct {
	internalIterator
	stepsLeft int
	err       error
}

func (e *errIter) Next() {
	e.stepsLeft--
	if e.stepsLeft <= 0 {
		e.err = errors.New("injected iterator failure")
		return
	}
	e.internalIterator.Next()
}
func (e *errIter) Valid() bool {
	if e.err != nil {
		return false
	}
	return e.internalIterator.Valid()
}
func (e *errIter) Err() error { return e.err }

func TestMergeIteratorSurfacesComponentErrors(t *testing.T) {
	m := buildMemtable([3]string{"a", "1", "1"}, [3]string{"b", "1", "1"}, [3]string{"c", "1", "1"})
	bad := &errIter{internalIterator: m.Iterator(), stepsLeft: 2}
	it := newMergeIterator([]internalIterator{bad})
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		count++
	}
	if it.Err() == nil {
		t.Error("component error not surfaced")
	}
	if count >= 3 {
		t.Error("iteration continued past the failure")
	}
}

// TestMergeIteratorRandomizedAgainstSort merges random components and
// compares against a flat sort with exact-duplicate removal.
func TestMergeIteratorRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nComponents := 1 + rng.Intn(5)
		comps := make([]*memtable.Memtable, nComponents)
		type entry struct {
			ikey string
			comp int
		}
		seen := map[string]int{} // internal key → newest component holding it
		for ci := range comps {
			comps[ci] = memtable.New()
			for j := 0; j < 30; j++ {
				key := []byte{byte('a' + rng.Intn(6))}
				ts := kv.Timestamp(rng.Intn(10) + 1)
				del := rng.Intn(5) == 0
				if del {
					comps[ci].Delete(key, ts)
				} else {
					comps[ci].Put(key, []byte(fmt.Sprintf("c%d", ci)), ts)
				}
				kind := kv.KindPut
				if del {
					kind = kv.KindDelete
				}
				ik := string(kv.InternalKey(key, ts, kind))
				if prev, ok := seen[ik]; !ok || ci < prev {
					seen[ik] = ci
				}
			}
		}
		var wantKeys []string
		for ik := range seen {
			wantKeys = append(wantKeys, ik)
		}
		sort.Slice(wantKeys, func(i, j int) bool {
			return kv.CompareInternal([]byte(wantKeys[i]), []byte(wantKeys[j])) < 0
		})

		iters := make([]internalIterator, nComponents)
		for i, m := range comps {
			iters[i] = m.Iterator()
		}
		it := newMergeIterator(iters)
		var got []string
		var gotComp []string
		for it.SeekToFirst(); it.Valid(); it.Next() {
			got = append(got, string(it.InternalKey()))
			gotComp = append(gotComp, string(it.Cell().Value))
		}
		if len(got) != len(wantKeys) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(wantKeys))
		}
		for i := range got {
			if got[i] != wantKeys[i] {
				t.Fatalf("trial %d: position %d mismatch", trial, i)
			}
			// Duplicates must come from the newest component.
			uk, ts, kind, _ := kv.ParseInternalKey([]byte(got[i]))
			if kind == kv.KindPut {
				wantComp := fmt.Sprintf("c%d", seen[got[i]])
				if gotComp[i] != wantComp {
					t.Fatalf("trial %d: key %q@%d from %s, want %s", trial, uk, ts, gotComp[i], wantComp)
				}
			}
		}
	}
}
