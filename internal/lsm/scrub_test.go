package lsm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
	"diffindex/internal/vfs"
)

// scrubStore opens a store with the background loop disabled; scrub tests
// drive cycles deterministically through ScrubOnce.
func scrubStore(t testing.TB, fs vfs.FS, opts func(*Options)) *Store {
	t.Helper()
	o := Options{
		FS:                 fs,
		Dir:                "store",
		MemtableBytes:      1 << 20,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
		ScrubBlockPace:     -1,
	}
	if opts != nil {
		opts(&o)
	}
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fillAndFlush(t testing.TB, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%05d", i))
		val := []byte(fmt.Sprintf("value-%05d-padpadpadpadpadpadpadpad", i))
		if err := s.Put(key, val, kv.Timestamp(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// corruptTableAtRest flips one byte of an early data block of the first
// SSTable file. Callers must have closed the store first (MemFS handles pin
// the old content otherwise) and reopen it afterwards.
func corruptTableAtRest(t *testing.T, fs vfs.FS) {
	t.Helper()
	names, err := fs.List("store/")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, _ := f.Size()
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		buf[64] ^= 0xff
		if err := fs.Remove(name); err != nil {
			t.Fatal(err)
		}
		g, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Write(buf); err != nil {
			t.Fatal(err)
		}
		g.Close()
		return
	}
	t.Fatal("no .sst file found to corrupt")
}

func TestScrubCleanStoreFindsNothing(t *testing.T) {
	fs := vfs.NewMemFS()
	s := scrubStore(t, fs, nil)
	defer s.Close()
	fillAndFlush(t, s, 500)
	fillAndFlush(t, s, 500)

	if found := s.ScrubOnce(); found != 0 {
		t.Fatalf("clean store: ScrubOnce found %d corruptions", found)
	}
	st := s.ScrubStats()
	if st.Cycles != 1 || st.BlocksScanned == 0 || st.BytesScanned == 0 {
		t.Fatalf("stats after one cycle: %+v", st)
	}
	if st.Corruptions != 0 || st.LastError != "" {
		t.Fatalf("clean store reported corruption: %+v", st)
	}
	if st.LastCycleEnd.IsZero() {
		t.Fatal("LastCycleEnd not set after a full cycle")
	}
}

func TestScrubDetectsAtRestCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	reg := metrics.NewRegistry()
	s := scrubStore(t, fs, func(o *Options) { o.Metrics = reg; o.MetricsTable = "base" })
	fillAndFlush(t, s, 800)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptTableAtRest(t, fs)

	s = scrubStore(t, fs, func(o *Options) { o.Metrics = reg; o.MetricsTable = "base" })
	defer s.Close()
	found := s.ScrubOnce()
	if found != 1 {
		t.Fatalf("ScrubOnce found %d corruptions, want 1", found)
	}
	st := s.ScrubStats()
	if st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
	if !strings.Contains(st.LastError, "checksum mismatch") {
		t.Fatalf("LastError = %q", st.LastError)
	}
	if v, ok := reg.Value("diffindex_scrub_corruptions_total", metrics.L("table", "base")); !ok || v != 1 {
		t.Fatalf("scrub corruption counter = %d, %v", v, ok)
	}
	if v, ok := reg.Value("diffindex_scrub_blocks_total", metrics.L("table", "base")); !ok || v == 0 {
		t.Fatalf("scrub blocks counter = %d, %v", v, ok)
	}
	// The damage report is repeatable: a second cycle finds the same block.
	if again := s.ScrubOnce(); again != 1 {
		t.Fatalf("second cycle found %d, want 1", again)
	}
}

func TestScrubDetectsTransientMisread(t *testing.T) {
	// A FaultFS bit-flip on ReadAt models a transient firmware misread: the
	// file is intact but the scrubber's read is corrupted — still caught.
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	s := scrubStore(t, ffs, nil)
	defer s.Close()
	fillAndFlush(t, s, 800)

	ffs.Arm(vfs.FaultConfig{Seed: 11, ReadCorruptProb: 1, PathSubstr: ".sst"})
	if found := s.ScrubOnce(); found == 0 {
		t.Fatal("scrub missed injected read corruption")
	}
	ffs.Disarm()
	if found := s.ScrubOnce(); found != 0 {
		t.Fatalf("post-disarm cycle found %d corruptions in intact file", found)
	}
}

func TestScrubBackgroundLoopRuns(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		DisableAutoFlush: true, DisableAutoCompact: true,
		ScrubInterval:  2 * time.Millisecond,
		ScrubBlockPace: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillAndFlush(t, s, 500)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.ScrubStats().Cycles >= 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background scrubber completed %d cycles, want ≥ 2", s.ScrubStats().Cycles)
}

func TestVerifyChecksumsOnReadSurfacesCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	s := scrubStore(t, fs, nil)
	fillAndFlush(t, s, 800)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptTableAtRest(t, fs)

	s = scrubStore(t, fs, func(o *Options) { o.VerifyChecksums = true })
	defer s.Close()
	// Some key lands in the corrupted block; sweep until the read fails.
	var sawCorruption bool
	for i := 0; i < 800; i++ {
		_, _, err := s.Get([]byte(fmt.Sprintf("k%05d", i)), kv.MaxTimestamp)
		if errors.Is(err, sstable.ErrCorruption) {
			sawCorruption = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawCorruption {
		t.Fatal("verified reads never surfaced the corrupted block")
	}
}

func TestScrubRacesWithFlushesAndCompactions(t *testing.T) {
	// The scrubber shares the refcounted table snapshot with reads; this
	// -race exercise runs full-speed cycles against concurrent writers,
	// flushes and compactions and must report zero corruption on clean data.
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MemtableBytes:       1 << 14,
		CompactionThreshold: 2,
		ScrubInterval:       time.Millisecond,
		ScrubBlockPace:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := []byte(fmt.Sprintf("w%d-k%05d", w, i))
				val := []byte(fmt.Sprintf("value-%05d-padpadpadpadpad", i))
				if err := s.Put(key, val, kv.Timestamp(i+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Flush()
	s.WaitCompactions()
	// Let at least one post-quiesce cycle complete.
	deadline := time.Now().Add(5 * time.Second)
	start := s.ScrubStats().Cycles
	for time.Now().Before(deadline) && s.ScrubStats().Cycles == start {
		time.Sleep(time.Millisecond)
	}
	st := s.ScrubStats()
	if st.Corruptions != 0 {
		t.Fatalf("false-positive corruptions under churn: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
