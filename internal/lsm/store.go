package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/memtable"
	"diffindex/internal/metrics"
	"diffindex/internal/snapshot"
	"diffindex/internal/sstable"
	"diffindex/internal/wal"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("lsm: store is closed")

// tableHandle reference-counts an open SSTable reader so that compactions can
// retire tables while reads are still in flight against them.
type tableHandle struct {
	r    *sstable.Reader
	refs atomic.Int32
	// dropped marks the table as replaced by a compaction: when the last
	// reference is released the file is deleted.
	dropped atomic.Bool
	store   *Store
}

func (h *tableHandle) acquire() { h.refs.Add(1) }

func (h *tableHandle) release() {
	if h.refs.Add(-1) == 0 && h.dropped.Load() {
		h.store.opts.BlockCache.DropTable(h.r.Name())
		h.r.Close()
		h.store.opts.FS.Remove(h.r.Name())
	}
}

// Store is one LSM tree: the storage engine behind a single region of a
// single table.
type Store struct {
	opts Options

	// writeGate serializes writers against the pause-and-drain window of a
	// flush: writers hold it shared, the flush's pre-flush phase holds it
	// exclusively (§5.3 "1. pause & drain").
	writeGate sync.RWMutex

	mu       sync.RWMutex // guards the component lists and file numbering
	mem      *memtable.Memtable
	imm      []*memtable.Memtable // newest first
	tables   []*tableHandle       // newest first
	log      *wal.Log
	nextFile uint64
	closed   bool

	flushMu  sync.Mutex // serializes flushes
	flushing atomic.Bool
	bg       sync.WaitGroup
	// closeCh is closed by Close before waiting on bg, so paced background
	// loops (the scrubber) wake from their sleeps and exit promptly.
	closeCh chan struct{}

	// Compaction scheduling state: claimed (busy) tables, the number of
	// rounds in flight and of live workers, and the most recent background
	// failure. compMu orders strictly before mu (a claim holds compMu and
	// snapshots the table list under mu.RLock); compCond signals round and
	// worker completion. Flushes never touch this state, so flushing and
	// compaction proceed in parallel.
	compMu      sync.Mutex
	compCond    *sync.Cond
	compBusy    map[*tableHandle]struct{}
	compRunning int
	compWorkers int
	compLastErr string

	preFlush    []func() error       // coprocessor hooks run inside the write gate
	postCompact []func(CompactionGC) // hooks fed each round's GC'd cells

	stats struct {
		puts, deletes, gets, scans, flushes, compactions atomic.Int64

		flushBytes             atomic.Int64
		compactionBytesRead    atomic.Int64
		compactionBytesWritten atomic.Int64
		gcCells                atomic.Int64
		tombstonesDropped      atomic.Int64
		compactionErrors       atomic.Int64
	}

	// Stage histograms, resolved once at Open when Options.Metrics is set
	// (nil otherwise — stage recording is skipped entirely then). The store
	// records each stage where it runs, so the histograms see every
	// operation, traced or not.
	stageWAL, stageMem, stageGet, stageScan, stageFlush *metrics.Histogram

	// Compaction counters, resolved at Open alongside the histograms.
	compRounds, compErrors, compGCCells, compTombstones *metrics.Counter
	compBytesRead, compBytesWritten, flushBytesC        *metrics.Counter

	// Learned-block-index counters (DESIGN.md §12): window-verified model
	// predictions, fallbacks to full binary search, summed verification-
	// window widths, and segments trained into newly written tables.
	modelHits, modelFallbacks, modelWindow, modelSegments *metrics.Counter

	// Background-scrubber progress; see scrub.go.
	scrub scrubState

	// Snapshot-in-log state (DESIGN.md §13): the snapshotter folds the WAL's
	// sealed unflushed span into snapshot records. Rounds run under flushMu,
	// which both serializes them against flushes (pinning the flush boundary
	// for the duration of a fold) and guards the snapshotter's own state.
	snap                          *snapshot.Snapshotter
	walSnapshots, walSnapshotB    *metrics.Counter
	snapshotsTaken, snapshotCells atomic.Int64
}

// recordStage records d into h when stage metrics are enabled.
func recordStage(h *metrics.Histogram, d time.Duration) {
	if h != nil {
		h.RecordDuration(d)
	}
}

// Open opens (or creates) the store in opts.Dir, replaying any WAL left by a
// previous incarnation into a fresh memtable and invoking opts.OnReplay for
// each recovered cell.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.FS == nil || opts.Dir == "" {
		return nil, errors.New("lsm: Options.FS and Options.Dir are required")
	}
	s := &Store{opts: opts, mem: memtable.New(), compBusy: make(map[*tableHandle]struct{})}
	s.compCond = sync.NewCond(&s.compMu)
	s.closeCh = make(chan struct{})

	// Resolve instruments before any table opens: openTable wires each
	// reader's learned-model counters, including the tables recovered below.
	if reg := opts.Metrics; reg != nil {
		table := metrics.L("table", opts.MetricsTable)
		s.stageWAL = reg.Histogram("diffindex_stage_latency_ns", metrics.L("stage", metrics.StageWAL), table)
		s.stageMem = reg.Histogram("diffindex_stage_latency_ns", metrics.L("stage", metrics.StageMemtable), table)
		s.stageGet = reg.Histogram("diffindex_stage_latency_ns", metrics.L("stage", metrics.StageStoreGet), table)
		s.stageScan = reg.Histogram("diffindex_stage_latency_ns", metrics.L("stage", metrics.StageStoreScan), table)
		s.stageFlush = reg.Histogram("diffindex_stage_latency_ns", metrics.L("stage", metrics.StageFlush), table)
		s.compRounds = reg.Counter("diffindex_compaction_rounds_total", table)
		s.compErrors = reg.Counter("diffindex_compaction_errors_total", table)
		s.compBytesRead = reg.Counter("diffindex_compaction_bytes_total", metrics.L("dir", "read"), table)
		s.compBytesWritten = reg.Counter("diffindex_compaction_bytes_total", metrics.L("dir", "write"), table)
		s.compGCCells = reg.Counter("diffindex_compaction_gc_cells_total", table)
		s.compTombstones = reg.Counter("diffindex_compaction_tombstones_dropped_total", table)
		s.flushBytesC = reg.Counter("diffindex_flush_bytes_total", table)
		s.modelHits = reg.Counter("diffindex_sstable_model_hits_total", table)
		s.modelFallbacks = reg.Counter("diffindex_sstable_model_fallbacks_total", table)
		s.modelWindow = reg.Counter("diffindex_sstable_model_window_blocks_total", table)
		s.modelSegments = reg.Counter("diffindex_sstable_model_segments_total", table)
		s.scrub.blocksC = reg.Counter("diffindex_scrub_blocks_total", table)
		s.scrub.bytesC = reg.Counter("diffindex_scrub_bytes_total", table)
		s.scrub.corruptionsC = reg.Counter("diffindex_scrub_corruptions_total", table)
		s.scrub.cyclesC = reg.Counter("diffindex_scrub_cycles_total", table)
		s.walSnapshots = reg.Counter("diffindex_wal_snapshots_total", table)
		s.walSnapshotB = reg.Counter("diffindex_wal_snapshot_bytes_total", table)
	}

	// Open existing SSTables, newest (highest file number) first.
	names, err := opts.FS.List(opts.Dir + "/")
	if err != nil {
		return nil, fmt.Errorf("lsm: list %s: %w", opts.Dir, err)
	}
	var nums []uint64
	for _, name := range names {
		if n, ok := parseTableNum(opts.Dir, name); ok {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] > nums[j] })
	for _, n := range nums {
		r, err := s.openTable(tableName(opts.Dir, n))
		if err != nil {
			return nil, err
		}
		h := &tableHandle{r: r, store: s}
		h.refs.Store(1) // the store's own reference
		s.tables = append(s.tables, h)
		if n >= s.nextFile {
			s.nextFile = n + 1
		}
	}

	// Replay the WAL into the memtable; surface each cell to OnReplay so
	// Diff-Index can re-enqueue index work. Recovery replays "latest
	// snapshot + tail": a snapshot record's folded cells stand in for the
	// raw span it covers (DESIGN.md §13).
	log, err := wal.OpenWith(opts.FS, opts.Dir+"/wal", wal.ReplayConfig{
		Replay: func(rec wal.Record) {
			c := rec.Cell()
			s.mem.Add(c)
			if opts.OnReplay != nil {
				opts.OnReplay(c)
			}
		},
		RetainSegments: opts.WALRetainSegments,
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	s.snap = snapshot.NewSnapshotter(log)

	if reg := opts.Metrics; reg != nil {
		table := metrics.L("table", opts.MetricsTable)
		appends := reg.Counter("diffindex_wal_appends_total", table)
		bytesC := reg.Counter("diffindex_wal_bytes_total", table)
		log.SetObserver(func(recs, n int, d time.Duration) {
			appends.Add(int64(recs))
			bytesC.Add(int64(n))
		})
	}
	if !opts.DisableScrub {
		s.bg.Add(1)
		go s.scrubLoop()
	}
	if opts.SnapshotInterval > 0 {
		s.bg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// openTable opens a finished table file, applying the store's verify-on-read
// knob and wiring the learned-model counters before the reader serves any
// read.
func (s *Store) openTable(name string) (*sstable.Reader, error) {
	r, err := sstable.Open(s.opts.FS, name, s.opts.BlockCache)
	if err != nil {
		return nil, err
	}
	r.SetVerifyChecksums(s.opts.VerifyChecksums)
	r.SetModelMetrics(s.modelHits, s.modelFallbacks, s.modelWindow)
	return r, nil
}

// writerOptions builds the SSTable writer configuration from the store's
// learned-index knobs; flushes and compactions share it so every table the
// store writes carries the same accelerators.
func (s *Store) writerOptions() sstable.WriterOptions {
	return sstable.WriterOptions{
		LearnedIndex:    s.opts.LearnedIndex,
		Epsilon:         s.opts.LearnedIndexEpsilon,
		RestartInterval: s.opts.BlockRestartInterval,
	}
}

// noteModelTrained records the segments a finished writer trained into a new
// table.
func (s *Store) noteModelTrained(w *sstable.Writer) {
	if s.modelSegments != nil && w.ModelSegments() > 0 {
		s.modelSegments.Add(int64(w.ModelSegments()))
	}
}

func tableName(dir string, n uint64) string {
	return fmt.Sprintf("%s/%020d.sst", dir, n)
}

func parseTableNum(dir, name string) (uint64, bool) {
	prefix := dir + "/"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".sst") {
		return 0, false
	}
	numStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".sst")
	if strings.Contains(numStr, "/") {
		return 0, false
	}
	n, err := strconv.ParseUint(numStr, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// RegisterPreFlush adds a hook run at the start of every flush, while new
// writes are paused and before the memtable is swapped — the coprocessor
// point where Diff-Index drains the AUQ (§5.3). A hook error aborts the
// flush before anything is swapped or truncated: if the drain cannot
// complete (the region is closing underneath the flush), truncating the WAL
// would destroy the only record of the undrained work.
func (s *Store) RegisterPreFlush(hook func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.preFlush = append(s.preFlush, hook)
}

// Put appends a value version: WAL first, then memtable (§2.2).
func (s *Store) Put(key, value []byte, ts kv.Timestamp) error {
	return s.apply(kv.Cell{Key: key, Value: value, Ts: ts, Kind: kv.KindPut})
}

// Delete appends a tombstone masking versions of key with timestamp ≤ ts.
func (s *Store) Delete(key []byte, ts kv.Timestamp) error {
	return s.apply(kv.Cell{Key: key, Ts: ts, Kind: kv.KindDelete})
}

// Apply appends a pre-built cell (used by replay and idempotent redelivery).
func (s *Store) Apply(c kv.Cell) error { return s.apply(c) }

// Pipeline runs fn while holding the store's write gate shared. A flush's
// pause-and-drain phase (§5.3) holds the gate exclusively, so everything fn
// does — applying cells via ApplyBatchLocked and enqueueing asynchronous
// index work — is atomic with respect to the memtable swap: work enqueued
// inside a pipeline always refers to data in the *current* memtable, which
// is the paper's PR(Flushed) = ∅ invariant. fn must not call Put, Delete,
// Apply, ApplyBatch or Flush on this store (the gate is not reentrant); use
// ApplyBatchLocked instead.
func (s *Store) Pipeline(fn func() error) error {
	s.writeGate.RLock()
	defer s.writeGate.RUnlock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return fn()
}

// ApplyBatchLocked is ApplyBatch without acquiring the write gate. Callers
// must guarantee ordering against flushes themselves: either they run inside
// a Pipeline callback (the gate is already held — acquiring it again would
// deadlock), or they run from work a flush's pre-flush hook waits on (e.g.
// this region's AUQ, which is drained to completion before the memtable
// swap). tr, when non-nil, receives the wal and memtable stage durations of
// this batch.
func (s *Store) ApplyBatchLocked(cells []kv.Cell, tr *metrics.Trace) error {
	return s.applyBatch(cells, tr)
}

// ApplyBatch appends several cells with one WAL sync (HBase group-commits a
// multi-column put as one WAL edit, giving row-level durability atomicity).
func (s *Store) ApplyBatch(cells []kv.Cell) error {
	s.writeGate.RLock()
	defer s.writeGate.RUnlock()
	return s.applyBatch(cells, nil)
}

func (s *Store) applyBatch(cells []kv.Cell, tr *metrics.Trace) error {
	if len(cells) == 0 {
		return nil
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	log, mem := s.log, s.mem
	s.mu.RUnlock()

	recs := make([]wal.Record, len(cells))
	for i, c := range cells {
		recs[i] = wal.Record{Key: c.Key, Value: c.Value, Ts: c.Ts, Kind: c.Kind}
	}
	timed := tr != nil || s.stageWAL != nil
	var walStart time.Time
	if timed {
		walStart = time.Now()
	}
	pos, err := log.AppendBatchPos(recs)
	if err != nil {
		return err
	}
	var memStart time.Time
	if timed {
		d := time.Since(walStart)
		recordStage(s.stageWAL, d)
		tr.AddStage(metrics.StageWAL, d)
		// The durable log position of this batch: a slow-op entry can name
		// the exact segment@offset a stalled append landed at.
		tr.Annotate("wal_pos", pos.String())
		memStart = time.Now()
	}
	for _, c := range cells {
		mem.Add(c)
		if c.Kind == kv.KindDelete {
			s.stats.deletes.Add(1)
		} else {
			s.stats.puts.Add(1)
		}
	}
	if timed {
		d := time.Since(memStart)
		recordStage(s.stageMem, d)
		tr.AddStage(metrics.StageMemtable, d)
	}
	if !s.opts.DisableAutoFlush && mem.ApproximateBytes() >= s.opts.MemtableBytes {
		s.maybeScheduleFlush()
	}
	return nil
}

func (s *Store) apply(c kv.Cell) error {
	s.writeGate.RLock()
	defer s.writeGate.RUnlock()
	return s.applyBatch([]kv.Cell{c}, nil)
}

func (s *Store) maybeScheduleFlush() {
	if s.flushing.CompareAndSwap(false, true) {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			defer s.flushing.Store(false)
			if err := s.Flush(); err != nil && !errors.Is(err, ErrClosed) {
				// Background flush failures leave data in the memtable and
				// WAL; the next flush retries. Nothing is lost.
				return
			}
		}()
	}
}

// Flush persists the current memtable as an SSTable. The sequence follows
// §5.3: (1) pause writes and run pre-flush hooks (Diff-Index drains the AUQ
// here), (2) roll the WAL and swap in a fresh memtable, (3) write the
// SSTable, (4) install it and roll the WAL forward (truncate old segments).
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if s.stageFlush != nil {
		flushStart := time.Now()
		defer func() { s.stageFlush.RecordDuration(time.Since(flushStart)) }()
	}

	// Phase 1-2: pause & drain, then swap, under the exclusive write gate.
	s.writeGate.Lock()
	s.mu.RLock()
	hooks := s.preFlush
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		s.writeGate.Unlock()
		return ErrClosed
	}
	for _, hook := range hooks {
		if err := hook(); err != nil {
			s.writeGate.Unlock()
			return err
		}
	}
	s.mu.Lock()
	old := s.mem
	if old.Len() == 0 {
		s.mu.Unlock()
		s.writeGate.Unlock()
		return nil
	}
	keepSeg, err := s.log.Roll()
	if err != nil {
		s.mu.Unlock()
		s.writeGate.Unlock()
		return err
	}
	s.mem = memtable.New()
	s.imm = append([]*memtable.Memtable{old}, s.imm...)
	fileNum := s.nextFile
	s.nextFile++
	s.mu.Unlock()
	s.writeGate.Unlock()

	// Phase 3: write the SSTable without blocking writers.
	name := tableName(s.opts.Dir, fileNum)
	w, err := sstable.NewWriterWith(s.opts.FS, name, s.writerOptions())
	if err != nil {
		return err
	}
	it := old.Iterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		c := it.Cell()
		if err := w.Add(it.InternalKey(), c.Value); err != nil {
			w.Abandon()
			s.opts.FS.Remove(name)
			return err
		}
	}
	if err := w.Finish(); err != nil {
		s.opts.FS.Remove(name)
		return err
	}
	s.noteModelTrained(w)
	r, err := s.openTable(name)
	if err != nil {
		return err
	}

	// Phase 4: install and roll the WAL forward.
	h := &tableHandle{r: r, store: s}
	h.refs.Store(1)
	s.mu.Lock()
	s.tables = append([]*tableHandle{h}, s.tables...)
	for i, m := range s.imm {
		if m == old {
			s.imm = append(s.imm[:i], s.imm[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	// Record the flush boundary in the log itself before truncating: recovery
	// replays only segments ≥ the newest checkpoint, so segments retained
	// past the boundary (CDC cursors, retention knob, log-as-database mode)
	// are never re-applied. If the checkpoint append fails the flush still
	// succeeded — recovery would merely replay more than necessary, and
	// re-applied cells are identical versions the MVCC read path dedupes.
	if err := s.log.Checkpoint(keepSeg); err != nil {
		return err
	}
	if _, err := s.log.TruncateBefore(keepSeg); err != nil {
		return err
	}
	s.stats.flushes.Add(1)
	s.stats.flushBytes.Add(r.Size())
	if s.flushBytesC != nil {
		s.flushBytesC.Add(r.Size())
	}

	// Let the tiered picker decide whether any merge is due (tier full, or
	// total table count past CompactionThreshold). The scheduler returns
	// immediately when there is nothing to do or workers are saturated, and
	// rounds run concurrently with subsequent flushes.
	if !s.opts.DisableAutoCompact {
		s.maybeScheduleCompaction()
	}
	return nil
}

// components snapshots the store's components newest-first, acquiring table
// references the caller must release via the returned function.
func (s *Store) components() ([]*memtable.Memtable, []*tableHandle, func(), error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, nil, nil, ErrClosed
	}
	mems := make([]*memtable.Memtable, 0, 1+len(s.imm))
	mems = append(mems, s.mem)
	mems = append(mems, s.imm...)
	tables := make([]*tableHandle, len(s.tables))
	copy(tables, s.tables)
	for _, h := range tables {
		h.acquire()
	}
	release := func() {
		for _, h := range tables {
			h.release()
		}
	}
	return mems, tables, release, nil
}

// Get returns the newest non-tombstone version of key with timestamp ≤ ts.
// The bool reports whether such a version exists. Following LSM semantics,
// the winning version is the one with the largest timestamp across all
// components; a tombstone at that timestamp hides the key.
func (s *Store) Get(key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	c, ok, err := s.GetCell(key, ts)
	if err != nil || !ok || c.Tombstone() {
		return kv.Cell{}, false, err
	}
	return c, true, nil
}

// GetCell is like Get but also surfaces tombstones: ok is true when any
// version (including a delete marker) is visible at ts. Diff-Index read
// repair uses it to distinguish "no version" from "deleted".
func (s *Store) GetCell(key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	s.stats.gets.Add(1)
	if s.stageGet != nil {
		start := time.Now()
		defer func() { s.stageGet.RecordDuration(time.Since(start)) }()
	}
	mems, tables, release, err := s.components()
	if err != nil {
		return kv.Cell{}, false, err
	}
	defer release()

	var best kv.Cell
	found := false
	consider := func(c kv.Cell) {
		switch {
		case !found:
			best, found = c.Clone(), true
		case c.Ts > best.Ts:
			best = c.Clone()
		case c.Ts == best.Ts && c.Tombstone() && !best.Tombstone():
			// A tombstone beats a put at the same timestamp (HBase rule).
			best = c.Clone()
		}
	}
	for _, m := range mems {
		if c, ok := m.Get(key, ts); ok {
			consider(c)
		}
	}
	for _, h := range tables {
		// Skip tables whose [smallest, largest] user-key range excludes the
		// key: a zero-I/O bound check (the bounds ride the index block) that
		// spares the Bloom probe and any block read on stores with many
		// non-overlapping tables.
		if !h.r.MayContainKey(key) {
			continue
		}
		c, ok, err := h.r.Get(key, ts)
		if err != nil {
			return kv.Cell{}, false, err
		}
		if ok {
			consider(c)
		}
	}
	return best, found, nil
}

// ScanResult is one user key's visible version in a scan.
type ScanResult struct {
	Key   []byte
	Value []byte
	Ts    kv.Timestamp
}

// Scan returns the newest visible (non-deleted) version of every user key in
// [start, end) at timestamp ts, up to limit results (limit ≤ 0 means
// unlimited). A nil end means "to the end of the store".
func (s *Store) Scan(start, end []byte, ts kv.Timestamp, limit int) ([]ScanResult, error) {
	s.stats.scans.Add(1)
	if s.stageScan != nil {
		scanStart := time.Now()
		defer func() { s.stageScan.RecordDuration(time.Since(scanStart)) }()
	}
	mems, tables, release, err := s.components()
	if err != nil {
		return nil, err
	}
	defer release()

	iters := make([]internalIterator, 0, len(mems)+len(tables))
	for _, m := range mems {
		iters = append(iters, m.Iterator())
	}
	for _, h := range tables {
		iters = append(iters, h.r.Iterator())
	}
	merged := newMergeIterator(iters)
	merged.Seek(kv.SeekKey(start, ts))

	var out []ScanResult
	var curUser []byte // user key whose visible version has been decided
	for merged.Valid() {
		c := merged.Cell()
		if end != nil && bytes.Compare(c.Key, end) >= 0 {
			break
		}
		if curUser != nil && bytes.Equal(c.Key, curUser) {
			merged.Next()
			continue // older version of an already-decided key
		}
		if c.Ts > ts {
			merged.Next()
			continue // version newer than the read timestamp: invisible
		}
		// First visible version of a new user key decides it.
		curUser = append(curUser[:0], c.Key...)
		if !c.Tombstone() {
			out = append(out, ScanResult{
				Key:   append([]byte(nil), c.Key...),
				Value: append([]byte(nil), c.Value...),
				Ts:    c.Ts,
			})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		merged.Next()
	}
	if err := merged.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScanAll returns every version of every user key in [start, end) with
// timestamp ≤ ts — puts and tombstones alike. Region copies (split/merge
// streaming) use it: a copied region must be a faithful replica of the
// source's MVCC history, not just its visible surface. Tombstones must
// survive the copy so late-redelivered index cells (at-least-once delivery)
// stay masked, and older base versions must survive so redelivered AUQ
// tasks can still resolve their pre-image at ts−δ (§4.3, §5.3) — collapsing
// to per-key winners would make the pre-image read miss and silently skip
// the superseded-entry delete.
func (s *Store) ScanAll(start, end []byte, ts kv.Timestamp) ([]kv.Cell, error) {
	s.stats.scans.Add(1)
	mems, tables, release, err := s.components()
	if err != nil {
		return nil, err
	}
	defer release()

	iters := make([]internalIterator, 0, len(mems)+len(tables))
	for _, m := range mems {
		iters = append(iters, m.Iterator())
	}
	for _, h := range tables {
		iters = append(iters, h.r.Iterator())
	}
	merged := newMergeIterator(iters)
	merged.Seek(kv.SeekKey(start, ts))

	var out []kv.Cell
	for merged.Valid() {
		c := merged.Cell()
		if end != nil && bytes.Compare(c.Key, end) >= 0 {
			break
		}
		if c.Ts > ts {
			merged.Next()
			continue
		}
		// Identical internal keys across components were already deduplicated
		// by the merge iterator (newest component wins), so every cell here is
		// a distinct (key, ts, kind) version worth copying.
		out = append(out, c.Clone())
		merged.Next()
	}
	if err := merged.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats returns a snapshot of the store's operation counters.
func (s *Store) Stats() Stats {
	s.compMu.Lock()
	lastErr := s.compLastErr
	s.compMu.Unlock()
	return Stats{
		Puts:        s.stats.puts.Load(),
		Deletes:     s.stats.deletes.Load(),
		Gets:        s.stats.gets.Load(),
		Scans:       s.stats.scans.Load(),
		Flushes:     s.stats.flushes.Load(),
		Compactions: s.stats.compactions.Load(),

		FlushBytes:             s.stats.flushBytes.Load(),
		CompactionBytesRead:    s.stats.compactionBytesRead.Load(),
		CompactionBytesWritten: s.stats.compactionBytesWritten.Load(),
		CompactionCellsDropped: s.stats.gcCells.Load(),
		TombstonesDropped:      s.stats.tombstonesDropped.Load(),
		CompactionErrors:       s.stats.compactionErrors.Load(),
		LastCompactionError:    lastErr,

		WALSnapshots:     s.snapshotsTaken.Load(),
		WALSnapshotCells: s.snapshotCells.Load(),
	}
}

// MemtableBytes returns the active memtable's approximate size.
func (s *Store) MemtableBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.ApproximateBytes()
}

// TableCount returns the number of live SSTables.
func (s *Store) TableCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// Closed reports whether Close has run. Retry loops holding a reference to
// a region use it to stop once the region has moved away: further work here
// is wasted, and the WAL they would have served is replayed at the new host.
func (s *Store) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Close waits for background work and releases every resource. The WAL is
// retained so a reopened store recovers unflushed data.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	tables := s.tables
	s.tables = nil
	s.mu.Unlock()

	close(s.closeCh) // wake the scrubber out of its paced sleeps
	s.bg.Wait()
	for _, h := range tables {
		h.release() // drop the store's own reference
	}
	// Readers that were not dropped by compaction still hold open files;
	// close them now that no reads can start.
	for _, h := range tables {
		if !h.dropped.Load() {
			h.r.Close()
		}
	}
	return s.log.Close()
}
