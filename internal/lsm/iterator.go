package lsm

import (
	"container/heap"

	"diffindex/internal/kv"
)

// internalIterator is the cursor contract shared by memtable and SSTable
// iterators.
type internalIterator interface {
	SeekToFirst()
	Seek(ikey []byte)
	Valid() bool
	Next()
	InternalKey() []byte
	Cell() kv.Cell
}

// errIterator lets SSTable iterators surface read errors.
type errIterator interface {
	Err() error
}

// mergeIterator k-way-merges component iterators in internal-key order.
// Components are supplied newest-first; when two components hold an entry
// with the same internal key (an idempotent redelivery, §5.3), the newer
// component wins and the duplicate is skipped.
type mergeIterator struct {
	iters []internalIterator // index = component age, 0 newest
	h     iterHeap
	cur   internalIterator
	err   error
}

type heapItem struct {
	it   internalIterator
	rank int // component index; lower = newer
}

type iterHeap []heapItem

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	c := kv.CompareInternal(h[i].it.InternalKey(), h[j].it.InternalKey())
	if c != 0 {
		return c < 0
	}
	return h[i].rank < h[j].rank
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *iterHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newMergeIterator(iters []internalIterator) *mergeIterator {
	return &mergeIterator{iters: iters}
}

func (m *mergeIterator) reset(position func(internalIterator)) {
	m.h = m.h[:0]
	m.cur = nil
	for rank, it := range m.iters {
		position(it)
		if it.Valid() {
			m.h = append(m.h, heapItem{it: it, rank: rank})
		} else if e, ok := it.(errIterator); ok && e.Err() != nil && m.err == nil {
			m.err = e.Err()
		}
	}
	heap.Init(&m.h)
	m.step()
}

// SeekToFirst positions at the globally smallest internal key.
func (m *mergeIterator) SeekToFirst() {
	m.reset(func(it internalIterator) { it.SeekToFirst() })
}

// Seek positions at the first entry with internal key ≥ ikey.
func (m *mergeIterator) Seek(ikey []byte) {
	m.reset(func(it internalIterator) { it.Seek(ikey) })
}

// step pops the next entry off the heap, de-duplicating identical internal
// keys across components (newest component emitted, older skipped).
func (m *mergeIterator) step() {
	if len(m.h) == 0 {
		m.cur = nil
		return
	}
	top := m.h[0]
	m.cur = top.it
	// Advance duplicates in older components past the emitted key. The
	// emitted entry itself is advanced in Next.
	for len(m.h) > 1 {
		// Find whether the runner-up equals the current key. The heap's
		// second-smallest is at index 1 or 2.
		idx := 1
		if len(m.h) > 2 && m.h.Less(2, 1) {
			idx = 2
		}
		if kv.CompareInternal(m.h[idx].it.InternalKey(), m.cur.InternalKey()) != 0 {
			break
		}
		dup := m.h[idx].it
		dup.Next()
		if dup.Valid() {
			heap.Fix(&m.h, idx)
		} else {
			if e, ok := dup.(errIterator); ok && e.Err() != nil && m.err == nil {
				m.err = e.Err()
			}
			heap.Remove(&m.h, idx)
		}
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (m *mergeIterator) Valid() bool { return m.cur != nil && m.err == nil }

// Next advances past the current entry.
func (m *mergeIterator) Next() {
	if m.cur == nil {
		return
	}
	m.cur.Next()
	if m.cur.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		if e, ok := m.cur.(errIterator); ok && e.Err() != nil && m.err == nil {
			m.err = e.Err()
		}
		heap.Pop(&m.h)
	}
	m.step()
}

// InternalKey returns the current internal key.
func (m *mergeIterator) InternalKey() []byte { return m.cur.InternalKey() }

// Cell decodes the current entry.
func (m *mergeIterator) Cell() kv.Cell { return m.cur.Cell() }

// Err returns the first component error observed.
func (m *mergeIterator) Err() error { return m.err }
