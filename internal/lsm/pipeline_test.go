package lsm

import (
	"fmt"
	"sync"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

func TestApplyAndApplyBatch(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	if err := s.Apply(kv.Cell{Key: []byte("single"), Value: []byte("v"), Ts: 1, Kind: kv.KindPut}); err != nil {
		t.Fatal(err)
	}
	batch := []kv.Cell{
		{Key: []byte("row\x00a"), Value: []byte("1"), Ts: 2, Kind: kv.KindPut},
		{Key: []byte("row\x00b"), Value: []byte("2"), Ts: 2, Kind: kv.KindPut},
		{Key: []byte("dead"), Ts: 2, Kind: kv.KindDelete},
	}
	if err := s.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"single", "row\x00a", "row\x00b"} {
		if _, ok, _ := s.Get([]byte(k), kv.MaxTimestamp); !ok {
			t.Errorf("key %q missing", k)
		}
	}
	st := s.Stats()
	if st.Puts != 3 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Batches survive recovery as one WAL group.
	s.Close()
	s2, err := Open(Options{FS: fs, Dir: "store", DisableAutoFlush: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("row\x00b"), kv.MaxTimestamp); !ok {
		t.Error("batched cell lost on recovery")
	}
}

func TestMemtableBytesAccessor(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()
	if s.MemtableBytes() != 0 {
		t.Error("fresh store has non-zero memtable bytes")
	}
	s.Put([]byte("k"), make([]byte, 1000), 1)
	if s.MemtableBytes() < 1000 {
		t.Errorf("MemtableBytes = %d", s.MemtableBytes())
	}
}

// TestPipelineAtomicWithFlush verifies the invariant the drain-before-flush
// protocol needs: work done inside a Pipeline (apply + any enqueue the
// caller performs) cannot interleave with a flush's pre-flush phase — the
// hook either sees both the cell and the side effect, or neither.
func TestPipelineAtomicWithFlush(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	var mu sync.Mutex
	enqueued := map[string]bool{} // simulates the AUQ

	// The pre-flush hook asserts that every cell currently in the store has
	// its matching "queue entry" — i.e. no pipeline was split by the flush.
	s.RegisterPreFlush(func() error {
		results, err := s.Scan(nil, nil, kv.MaxTimestamp, 0)
		if err != nil {
			t.Error(err)
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		for _, res := range results {
			if !enqueued[string(res.Key)] {
				t.Errorf("flush observed cell %q without its enqueue", res.Key)
			}
		}
		return nil
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%d-%06d", w, i))
				err := s.Pipeline(func() error {
					if err := s.ApplyBatchLocked([]kv.Cell{{Key: key, Value: []byte("v"), Ts: kv.Timestamp(w*1_000_000 + i + 1), Kind: kv.KindPut}}, nil); err != nil {
						return err
					}
					mu.Lock()
					enqueued[string(key)] = true
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for f := 0; f < 10; f++ {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPipelineOnClosedStore(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	s.Close()
	if err := s.Pipeline(func() error { return nil }); err != ErrClosed {
		t.Errorf("Pipeline after close: %v", err)
	}
	if err := s.ApplyBatch([]kv.Cell{{Key: []byte("k"), Ts: 1}}); err != ErrClosed {
		t.Errorf("ApplyBatch after close: %v", err)
	}
	if err := s.Apply(kv.Cell{Key: []byte("k"), Ts: 1}); err != ErrClosed {
		t.Errorf("Apply after close: %v", err)
	}
}
