package lsm

import (
	"fmt"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// TestGetAcrossDisjointRangeTables flushes several tables with disjoint
// key ranges — the layout the point-read range skip targets — and checks
// lookups stay correct: keys resolve from the one table whose range holds
// them, absent keys inside and outside every range report not-found, and
// overlapping-range tables still resolve to the newest version.
func TestGetAcrossDisjointRangeTables(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	// Three disjoint-range tables: a000-a099, m000-m099, z000-z099.
	for gi, group := range []string{"a", "m", "z"} {
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("%s%03d", group, i))
			val := []byte(fmt.Sprintf("%s-v%d", group, i))
			if err := s.Put(key, val, kv.Timestamp(gi*100+i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if s.TableCount() != 3 {
		t.Fatalf("TableCount = %d, want 3", s.TableCount())
	}

	for _, group := range []string{"a", "m", "z"} {
		for _, i := range []int{0, 42, 99} {
			key := []byte(fmt.Sprintf("%s%03d", group, i))
			c, ok, err := s.Get(key, kv.MaxTimestamp)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("%s-v%d", group, i)
			if !ok || string(c.Value) != want {
				t.Errorf("Get(%s) = %q ok=%v, want %q", key, c.Value, ok, want)
			}
		}
	}
	// Absent keys: between ranges, inside a range, outside all ranges.
	for _, key := range []string{"b500", "m100", "x000", "0000", "zz"} {
		if _, ok, err := s.Get([]byte(key), kv.MaxTimestamp); err != nil || ok {
			t.Errorf("Get(%s): ok=%v err=%v, want miss", key, ok, err)
		}
	}

	// A fourth table overlapping the middle range: newest version wins even
	// though an older table's range also contains the key.
	if err := s.Put([]byte("m042"), []byte("newer"), 1000); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	c, ok, err := s.Get([]byte("m042"), kv.MaxTimestamp)
	if err != nil || !ok || string(c.Value) != "newer" {
		t.Errorf("Get(m042) = %q ok=%v err=%v, want \"newer\"", c.Value, ok, err)
	}
}
