package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/vfs"
)

// TestStoreLearnedIndexEndToEnd drives a store with the learned-index knob
// on through flushes and a major compaction, proving every key stays
// readable through model-backed tables and the model counters reach the
// registry — the full knob chain Options → writer → reader → metrics.
func TestStoreLearnedIndexEndToEnd(t *testing.T) {
	fs := vfs.NewMemFS()
	reg := metrics.NewRegistry()
	s, err := Open(Options{
		FS:                  fs,
		Dir:                 "t",
		DisableAutoFlush:    true,
		DisableAutoCompact:  true,
		DisableScrub:        true,
		Metrics:             reg,
		MetricsTable:        "learned",
		LearnedIndex:        true,
		LearnedIndexEpsilon: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clock := kv.NewClock(1)
	const rows, gens = 3000, 3
	for g := 0; g < gens; g++ {
		for i := 0; i < rows; i++ {
			key := []byte(fmt.Sprintf("row%08d", i))
			val := []byte(fmt.Sprintf("g%d-%d", g, i))
			if err := s.Put(key, val, clock.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	check := func(stage string) {
		for i := 0; i < rows; i += 13 {
			key := []byte(fmt.Sprintf("row%08d", i))
			c, ok, err := s.Get(key, kv.MaxTimestamp)
			if err != nil || !ok {
				t.Fatalf("%s: Get(%q) = ok=%v err=%v", stage, key, ok, err)
			}
			want := []byte(fmt.Sprintf("g%d-%d", gens-1, i))
			if !bytes.Equal(c.Value, want) {
				t.Fatalf("%s: Get(%q) = %q, want %q", stage, key, c.Value, want)
			}
		}
		if _, ok, _ := s.Get([]byte("row99999999"), kv.MaxTimestamp); ok {
			t.Fatalf("%s: phantom key found", stage)
		}
	}
	check("after flushes")

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compaction")

	// Segments were trained on flush and again on the compacted output, and
	// the reads above went through the model path (hits or fallbacks — both
	// prove the model was consulted).
	snap := reg.Snapshot()
	sum := func(name string) int64 {
		var total int64
		for _, p := range snap.Counters {
			if p.Name == name {
				total += p.Value
			}
		}
		return total
	}
	if sum("diffindex_sstable_model_segments_total") == 0 {
		t.Fatal("no model segments counted")
	}
	if sum("diffindex_sstable_model_hits_total")+sum("diffindex_sstable_model_fallbacks_total") == 0 {
		t.Fatal("model path never consulted")
	}
}

// TestStoreLearnedMatchesDefault runs the same workload through a learned
// store and a default store and requires identical Get and Scan results —
// the engine-level zero-divergence check.
func TestStoreLearnedMatchesDefault(t *testing.T) {
	open := func(learned bool) *Store {
		s, err := Open(Options{
			FS:                 vfs.NewMemFS(),
			Dir:                "t",
			DisableAutoFlush:   true,
			DisableAutoCompact: true,
			DisableScrub:       true,
			LearnedIndex:       learned,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(true), open(false)
	defer a.Close()
	defer b.Close()

	clock := kv.NewClock(1)
	for i := 0; i < 4000; i++ {
		key := []byte(fmt.Sprintf("key%08d", (i*37)%2000))
		val := []byte(fmt.Sprintf("v%d", i))
		ts := clock.Next()
		for _, s := range []*Store{a, b} {
			if i%11 == 3 {
				if err := s.Delete(key, ts); err != nil {
					t.Fatal(err)
				}
			} else if err := s.Put(key, val, ts); err != nil {
				t.Fatal(err)
			}
		}
		if i%1000 == 999 {
			for _, s := range []*Store{a, b} {
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	for i := 0; i < 2200; i++ {
		key := []byte(fmt.Sprintf("key%08d", i))
		ca, oka, erra := a.Get(key, kv.MaxTimestamp)
		cb, okb, errb := b.Get(key, kv.MaxTimestamp)
		if oka != okb || (erra == nil) != (errb == nil) || !bytes.Equal(ca.Value, cb.Value) || ca.Ts != cb.Ts {
			t.Fatalf("Get(%q) diverged: learned=(%v,%v,%v) default=(%v,%v,%v)",
				key, ca, oka, erra, cb, okb, errb)
		}
	}
	ra, err := a.Scan([]byte("key00000100"), []byte("key00001900"), kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Scan([]byte("key00000100"), []byte("key00001900"), kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("Scan diverged: learned=%d rows default=%d rows", len(ra), len(rb))
	}
	for i := range ra {
		if !bytes.Equal(ra[i].Key, rb[i].Key) || !bytes.Equal(ra[i].Value, rb[i].Value) {
			t.Fatalf("Scan row %d diverged: %q vs %q", i, ra[i].Key, rb[i].Key)
		}
	}
}
