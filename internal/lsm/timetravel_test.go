package lsm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

func newTimeTravelStore(t testing.TB, fs vfs.FS, maxVersions int) *Store {
	t.Helper()
	s, err := Open(Options{
		FS:                 fs,
		Dir:                "tt",
		MaxVersions:        maxVersions,
		WALRetainSegments:  -1,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGetAsOfAcrossComponents: as-of reads answer from memtable and
// SSTables alike, and a tombstone at ts means "did not exist then", not
// "trimmed".
func TestGetAsOfAcrossComponents(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTimeTravelStore(t, fs, 10)
	defer s.Close()

	key := []byte("k")
	mustPut := func(ts int, val string) {
		t.Helper()
		if err := s.Put(key, []byte(val), kv.Timestamp(ts)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(1, "v1")
	mustPut(2, "v2")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key, 3); err != nil {
		t.Fatal(err)
	}
	mustPut(4, "v4") // memtable

	cases := []struct {
		ts    int
		want  string
		exist bool
	}{
		{0, "", false}, // before the key existed
		{1, "v1", true},
		{2, "v2", true},
		{3, "", false}, // deleted as of 3
		{4, "v4", true},
		{99, "v4", true}, // future ts: newest visible
	}
	for _, tc := range cases {
		c, ok, err := s.GetAsOf(key, kv.Timestamp(tc.ts))
		if err != nil {
			t.Fatalf("GetAsOf(ts=%d): %v", tc.ts, err)
		}
		if ok != tc.exist || (ok && string(c.Value) != tc.want) {
			t.Errorf("GetAsOf(ts=%d) = (%q, %v), want (%q, %v)", tc.ts, c.Value, ok, tc.want, tc.exist)
		}
	}

	// ScanAsOf agrees with the point reads.
	rows, err := s.ScanAsOf(nil, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0].Value) != "v2" || rows[0].Ts != 2 {
		t.Errorf("ScanAsOf(ts=2) = %+v", rows)
	}
	rows, err = s.ScanAsOf(nil, nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("ScanAsOf(ts=3) = %+v, want empty (deleted)", rows)
	}
}

// TestGetAsOfTrimmedHistory: once compaction discards the version an old
// timestamp needs, the read reports ErrHistoryTrimmed instead of "absent".
func TestGetAsOfTrimmedHistory(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS:                  fs,
		Dir:                 "tt",
		MaxVersions:         2,
		DisableAutoFlush:    true,
		DisableAutoCompact:  true,
		DisableScrub:        true,
		FullMergeCompaction: true, // compact to the bottom: versions past 2 drop
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := []byte("k")
	for ts := 1; ts <= 6; ts++ {
		if err := s.Put(key, []byte(fmt.Sprintf("v%d", ts)), kv.Timestamp(ts)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetAsOf(key, 1); !errors.Is(err, ErrHistoryTrimmed) {
		t.Fatalf("GetAsOf(trimmed ts) err = %v, want ErrHistoryTrimmed", err)
	}
	// The surviving versions still answer.
	c, ok, err := s.GetAsOf(key, 6)
	if err != nil || !ok || string(c.Value) != "v6" {
		t.Fatalf("GetAsOf(live ts) = (%q, %v, %v)", c.Value, ok, err)
	}
	// MaxTimestamp reads never report trimming.
	if _, ok, err := s.Get([]byte("nosuch"), kv.MaxTimestamp); err != nil || ok {
		t.Fatalf("Get(nosuch) = (%v, %v)", ok, err)
	}
}

// TestSnapshotWALStatsAndRecovery: an on-demand snapshot round folds the
// sealed unflushed span, idle rounds are skipped, and a store reopened
// through the snapshot recovers the same state a full replay would.
func TestSnapshotWALStatsAndRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTimeTravelStore(t, fs, 64)
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), kv.Timestamp(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.SnapshotWAL()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Taken || st.Cells != 10 || st.Bytes == 0 {
		t.Fatalf("snapshot stats = %+v, want 10 folded cells", st)
	}
	// Nothing moved: the next round must skip.
	st, err = s.SnapshotWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.Taken {
		t.Fatalf("idle snapshot round was taken: %+v", st)
	}
	// Tail past the snapshot, then crash (no Close) and recover.
	if err := s.Put([]byte("k99"), []byte("tail"), 100); err != nil {
		t.Fatal(err)
	}

	replayed := 0
	r, err := Open(Options{
		FS:                 fs,
		Dir:                "tt",
		MaxVersions:        64,
		WALRetainSegments:  -1,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
		OnReplay:           func(kv.Cell) { replayed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if replayed != 11 {
		t.Errorf("recovery replayed %d cells, want 11 (10 folded + 1 tail)", replayed)
	}
	for i := 0; i < 10; i++ {
		c, ok, err := r.Get([]byte(fmt.Sprintf("k%02d", i)), kv.MaxTimestamp)
		if err != nil || !ok || string(c.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered k%02d = (%q, %v, %v)", i, c.Value, ok, err)
		}
	}
	if c, ok, _ := r.Get([]byte("k99"), kv.MaxTimestamp); !ok || string(c.Value) != "tail" {
		t.Fatalf("tail record lost in recovery: (%q, %v)", c.Value, ok)
	}
}

// TestSnapshotLoopRunsPeriodically: SnapshotInterval drives rounds without
// explicit calls.
func TestSnapshotLoopRunsPeriodically(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS:                 fs,
		Dir:                "tt",
		WALRetainSegments:  -1,
		SnapshotInterval:   2 * time.Millisecond,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.snapshotsTaken.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.snapshotsTaken.Load() == 0 {
		t.Fatal("periodic snapshot loop never took a round")
	}
}

// TestAsOfReadsRaceCompaction drives GetAsOf/ScanAsOf concurrently with
// writes, flushes and compactions (run under -race). Readers pin recent
// timestamps, so retention never invalidates their answers: every read must
// either succeed with the value written at that timestamp or — for the
// oldest ones — report ErrHistoryTrimmed, never a wrong value.
func TestAsOfReadsRaceCompaction(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS:                  fs,
		Dir:                 "tt",
		MaxVersions:         4,
		CompactionThreshold: 2,
		DisableScrub:        true,
		DisableAutoFlush:    true, // flushes are explicit below; compactions are not
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const keys = 8
	const rounds = 40
	var tsHigh int64 // highest fully written timestamp, shared with readers
	var mu sync.Mutex
	latest := map[int64]map[int]string{} // ts → key index → value at that ts

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				var ts int64
				for cand := range latest {
					if cand > ts {
						ts = cand
					}
				}
				state := latest[ts]
				mu.Unlock()
				if ts == 0 {
					continue
				}
				for k := 0; k < keys; k++ {
					c, ok, err := s.GetAsOf([]byte(fmt.Sprintf("k%d", k)), kv.Timestamp(ts))
					if errors.Is(err, ErrHistoryTrimmed) {
						continue // old ts raced past retention: honest refusal
					}
					if err != nil {
						t.Errorf("GetAsOf(k%d@%d): %v", k, ts, err)
						return
					}
					want, exists := state[k]
					if ok != exists || (ok && string(c.Value) != want) {
						t.Errorf("GetAsOf(k%d@%d) = (%q, %v), want (%q, %v)", k, ts, c.Value, ok, want, exists)
						return
					}
				}
				if _, err := s.ScanAsOf(nil, nil, kv.Timestamp(ts), 0); err != nil {
					t.Errorf("ScanAsOf(%d): %v", ts, err)
					return
				}
			}
		}()
	}

	for round := 1; round <= rounds; round++ {
		state := map[int]string{}
		mu.Lock()
		for k, v := range latest[tsHigh] {
			state[k] = v
		}
		mu.Unlock()
		ts := int64(round)
		for k := 0; k < keys; k++ {
			val := fmt.Sprintf("r%d", round)
			if err := s.Put([]byte(fmt.Sprintf("k%d", k)), []byte(val), kv.Timestamp(ts)); err != nil {
				t.Fatal(err)
			}
			state[k] = val
		}
		mu.Lock()
		latest[ts] = state
		tsHigh = ts
		mu.Unlock()
		if round%5 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	s.WaitCompactions()
}
