package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

func newTestStore(t testing.TB, fs vfs.FS) *Store {
	t.Helper()
	s, err := Open(Options{
		FS:                 fs,
		Dir:                "store",
		MemtableBytes:      1 << 20,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetAcrossFlush(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		if err := s.Put(key, []byte(fmt.Sprintf("v%d", i)), kv.Timestamp(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() != 1 {
		t.Fatalf("TableCount = %d", s.TableCount())
	}
	// Overwrite some keys post-flush.
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		if err := s.Put(key, []byte("new"), kv.Timestamp(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		c, ok, err := s.Get(key, kv.MaxTimestamp)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("v%d", i)
		if i < 50 {
			want = "new"
		}
		if !ok || string(c.Value) != want {
			t.Errorf("Get(%s) = %q ok=%v, want %q", key, c.Value, ok, want)
		}
	}
}

func TestDeleteAcrossComponents(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	s.Put([]byte("k"), []byte("v1"), 10)
	s.Flush()
	s.Delete([]byte("k"), 20)
	if _, ok, _ := s.Get([]byte("k"), kv.MaxTimestamp); ok {
		t.Error("deleted key visible (tombstone in memtable, value in sstable)")
	}
	if c, ok, _ := s.Get([]byte("k"), 15); !ok || string(c.Value) != "v1" {
		t.Errorf("time-travel read before delete failed: %+v ok=%v", c, ok)
	}
	// Tombstone flushed too.
	s.Flush()
	if _, ok, _ := s.Get([]byte("k"), kv.MaxTimestamp); ok {
		t.Error("deleted key visible after tombstone flush")
	}
	if c, ok, _ := s.GetCell([]byte("k"), kv.MaxTimestamp); !ok || !c.Tombstone() {
		t.Errorf("GetCell must surface the tombstone: %+v ok=%v", c, ok)
	}
}

func TestOldTimestampWriteAfterFlush(t *testing.T) {
	// Diff-Index writes tombstones at t_new−δ, which can be OLDER than
	// entries already flushed. The newest-timestamp-wins rule must hold
	// regardless of which component holds which version.
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	s.Put([]byte("idx"), nil, 100)
	s.Flush()
	// A late tombstone with an older timestamp arrives in the memtable.
	s.Delete([]byte("idx"), 50)
	if _, ok, _ := s.Get([]byte("idx"), kv.MaxTimestamp); !ok {
		t.Error("older tombstone must not mask a newer flushed put")
	}
	if _, ok, _ := s.Get([]byte("idx"), 70); ok {
		t.Error("read at ts=70 must see the ts=50 tombstone")
	}
}

func TestReopenRecoversWAL(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	s.Put([]byte("flushed"), []byte("f"), 1)
	s.Flush()
	s.Put([]byte("unflushed"), []byte("u"), 2)
	s.Delete([]byte("flushed"), 3)
	s.Close()

	var replayed []kv.Cell
	s2, err := Open(Options{
		FS: fs, Dir: "store",
		DisableAutoFlush: true, DisableAutoCompact: true,
		OnReplay: func(c kv.Cell) { replayed = append(replayed, c.Clone()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// Only post-flush writes are replayed (earlier segments truncated).
	if len(replayed) != 2 {
		t.Fatalf("replayed %d cells, want 2: %+v", len(replayed), replayed)
	}
	if string(replayed[0].Key) != "unflushed" || replayed[1].Kind != kv.KindDelete {
		t.Errorf("replayed = %+v", replayed)
	}
	if c, ok, _ := s2.Get([]byte("unflushed"), kv.MaxTimestamp); !ok || string(c.Value) != "u" {
		t.Errorf("unflushed data lost: %+v ok=%v", c, ok)
	}
	if _, ok, _ := s2.Get([]byte("flushed"), kv.MaxTimestamp); ok {
		t.Error("tombstone lost in recovery")
	}
}

func TestScan(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), kv.Timestamp(i+1))
	}
	s.Flush()
	s.Delete([]byte("k05"), 100)
	s.Put([]byte("k06"), []byte("updated"), 101)

	res, err := s.Scan([]byte("k03"), []byte("k08"), kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"k03": "v3", "k04": "v4", "k06": "updated", "k07": "v7"}
	if len(res) != len(want) {
		t.Fatalf("Scan returned %d rows: %+v", len(res), res)
	}
	for _, r := range res {
		if want[string(r.Key)] != string(r.Value) {
			t.Errorf("Scan row %s = %q, want %q", r.Key, r.Value, want[string(r.Key)])
		}
	}

	// Limit.
	res, _ = s.Scan([]byte("k00"), nil, kv.MaxTimestamp, 3)
	if len(res) != 3 {
		t.Errorf("limited scan returned %d rows", len(res))
	}
	// Timestamp visibility: at ts=5 only k00..k04 exist.
	res, _ = s.Scan(nil, nil, 5, 0)
	if len(res) != 5 {
		t.Errorf("scan at ts=5 returned %d rows, want 5", len(res))
	}
	// Empty range.
	res, _ = s.Scan([]byte("zzz"), nil, kv.MaxTimestamp, 0)
	if len(res) != 0 {
		t.Errorf("scan past end returned %d rows", len(res))
	}
}

func TestScanSkipsNewerVersionsAndSeesOlder(t *testing.T) {
	// A key whose newest version is above the read timestamp must still
	// surface its older visible version.
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	s.Put([]byte("k"), []byte("old"), 10)
	s.Put([]byte("k"), []byte("new"), 100)
	res, err := s.Scan(nil, nil, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || string(res[0].Value) != "old" {
		t.Errorf("scan at ts=50 = %+v, want the ts=10 version", res)
	}
}

func TestCompactionMergesAndGCs(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MaxVersions:        2,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 5 versions of one key across 5 tables, plus a deleted key.
	for v := 1; v <= 5; v++ {
		s.Put([]byte("multi"), []byte(fmt.Sprintf("v%d", v)), kv.Timestamp(v*10))
		if v == 3 {
			s.Put([]byte("dead"), []byte("x"), 31)
		}
		if v == 4 {
			s.Delete([]byte("dead"), 41)
		}
		s.Flush()
	}
	if s.TableCount() != 5 {
		t.Fatalf("TableCount = %d", s.TableCount())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() != 1 {
		t.Fatalf("TableCount after compaction = %d", s.TableCount())
	}
	// Newest version survives.
	if c, ok, _ := s.Get([]byte("multi"), kv.MaxTimestamp); !ok || string(c.Value) != "v5" {
		t.Errorf("newest version lost: %+v ok=%v", c, ok)
	}
	// MaxVersions=2: version at ts 40 survives, ts 30 GCed.
	if c, ok, _ := s.Get([]byte("multi"), 45); !ok || string(c.Value) != "v4" {
		t.Errorf("second-newest version lost: %+v ok=%v", c, ok)
	}
	if _, ok, _ := s.Get([]byte("multi"), 35); ok {
		t.Error("GCed version still visible")
	}
	// Tombstone and masked data dropped entirely.
	if _, ok, _ := s.Get([]byte("dead"), kv.MaxTimestamp); ok {
		t.Error("deleted key visible after compaction")
	}
	if c, ok, _ := s.GetCell([]byte("dead"), kv.MaxTimestamp); ok {
		t.Errorf("tombstone not GCed at major compaction: %+v", c)
	}
	// Old table files are deleted once unreferenced.
	names, _ := fs.List("store/")
	sstCount := 0
	for _, n := range names {
		if _, ok := parseTableNum("store", n); ok {
			sstCount++
		}
	}
	if sstCount != 1 {
		t.Errorf("%d .sst files remain after compaction, want 1", sstCount)
	}
}

func TestCompactionPreservesNewerFlushes(t *testing.T) {
	// Tables flushed *during* a compaction must survive installation.
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	s.Put([]byte("a"), []byte("1"), 1)
	s.Flush()
	s.Put([]byte("b"), []byte("2"), 2)
	s.Flush()
	// Simulate a concurrent flush landing after compaction snapshots:
	// run Compact, then verify reads still see everything.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("c"), []byte("3"), 3)
	s.Flush()
	for _, k := range []string{"a", "b", "c"} {
		if _, ok, _ := s.Get([]byte(k), kv.MaxTimestamp); !ok {
			t.Errorf("key %s lost", k)
		}
	}
}

func TestPreFlushHookPausesWrites(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()

	s.Put([]byte("k"), []byte("v"), 1)

	hookRunning := make(chan struct{})
	releaseHook := make(chan struct{})
	s.RegisterPreFlush(func() error {
		close(hookRunning)
		<-releaseHook
		return nil
	})

	flushDone := make(chan error, 1)
	go func() { flushDone <- s.Flush() }()
	<-hookRunning

	// A write issued while the hook runs must block until the hook returns.
	putDone := make(chan struct{})
	go func() {
		s.Put([]byte("k2"), []byte("v2"), 2)
		close(putDone)
	}()
	select {
	case <-putDone:
		t.Fatal("Put completed while pre-flush hook held the write gate")
	default:
	}
	close(releaseHook)
	<-putDone
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	// The paused put must have landed in the NEW memtable, not the flushed one.
	if c, ok, _ := s.Get([]byte("k2"), kv.MaxTimestamp); !ok || string(c.Value) != "v2" {
		t.Errorf("paused put lost: %+v ok=%v", c, ok)
	}
}

func TestFlushEmptyMemtableIsNoop(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	defer s.Close()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() != 0 {
		t.Error("empty flush produced a table")
	}
}

func TestAutoFlushAndCompact(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MemtableBytes:       8 << 10,
		CompactionThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 400; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%06d", i)), val, kv.Timestamp(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil { // push out the tail
		t.Fatal(err)
	}
	if st := s.Stats(); st.Flushes == 0 {
		t.Error("auto flush never triggered")
	}
	for i := 0; i < 400; i++ {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("k%06d", i)), kv.MaxTimestamp); !ok {
			t.Fatalf("key %d lost across auto flush/compact", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	s := newTestStore(t, fs)
	s.Close()
	if err := s.Put([]byte("k"), []byte("v"), 1); err != ErrClosed {
		t.Errorf("Put after close: %v", err)
	}
	if _, _, err := s.Get([]byte("k"), 1); err != ErrClosed {
		t.Errorf("Get after close: %v", err)
	}
	if _, err := s.Scan(nil, nil, 1, 0); err != ErrClosed {
		t.Errorf("Scan after close: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("Flush after close: %v", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact after close: %v", err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Errorf("double Close: %v", err)
	}
}

// TestModelEquivalence drives the store and an in-memory model with random
// operations including flushes and compactions, then compares reads.
func TestModelEquivalence(t *testing.T) {
	type version struct {
		ts  kv.Timestamp
		val string
		del bool
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := vfs.NewMemFS()
		s := newTestStore(t, fs)
		defer s.Close()
		model := map[string][]version{}
		keys := []string{"a", "bb", "ccc", "dddd", "e"}
		ts := kv.Timestamp(0)
		for op := 0; op < 300; op++ {
			k := keys[rng.Intn(len(keys))]
			ts++
			switch rng.Intn(10) {
			case 0:
				s.Delete([]byte(k), ts)
				model[k] = append(model[k], version{ts: ts, del: true})
			case 1:
				if err := s.Flush(); err != nil {
					return false
				}
			default:
				v := fmt.Sprintf("%s-%d", k, ts)
				s.Put([]byte(k), []byte(v), ts)
				model[k] = append(model[k], version{ts: ts, val: v})
			}
		}
		// Compare latest-visible reads (compaction-safe: no time travel
		// beyond MaxVersions).
		for _, k := range keys {
			var best *version
			for i := range model[k] {
				v := &model[k][i]
				if best == nil || v.ts > best.ts {
					best = v
				}
			}
			c, ok, err := s.Get([]byte(k), kv.MaxTimestamp)
			if err != nil {
				return false
			}
			if best == nil || best.del {
				if ok {
					return false
				}
			} else if !ok || string(c.Value) != best.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MemtableBytes:       16 << 10,
		CompactionThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 4, 500
	ts := kv.NewClock(1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := s.Put(key, bytes.Repeat([]byte("v"), 64), ts.Next()); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, _, err := s.Get(key, kv.MaxTimestamp); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent scanner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := s.Scan(nil, nil, kv.MaxTimestamp, 100); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for w := 0; w < writers; w++ {
		for _, i := range []int{0, per - 1} {
			key := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if _, ok, _ := s.Get(key, kv.MaxTimestamp); !ok {
				t.Errorf("key %s lost", key)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseTableNum(t *testing.T) {
	if n, ok := parseTableNum("d", "d/00000000000000000007.sst"); !ok || n != 7 {
		t.Errorf("got (%d, %v)", n, ok)
	}
	for _, bad := range []string{"d/wal/1.sst", "d/x.sst", "e/1.sst", "d/1.wal"} {
		if _, ok := parseTableNum("d", bad); ok {
			t.Errorf("parseTableNum(%q) unexpectedly ok", bad)
		}
	}
}
