package lsm

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
)

// The background scrubber is the store's online integrity check: a paced,
// low-priority walker that re-reads every data block of every live SSTable
// directly from disk (bypassing the block cache in both directions) and
// verifies it against the per-block CRC32C recorded at write time. It runs as
// one goroutine per store, coexisting with flushes and compactions through
// the same refcounted table snapshot reads use (components()): a table being
// scrubbed can be retired by a compaction concurrently — the file simply
// lives until the scrubber releases its reference. Pacing makes the scrubber
// yield to foreground I/O: it sleeps ScrubBlockPace between blocks and
// ScrubInterval between full cycles.

// scrubState holds the scrubber's cumulative counters and cycle position.
type scrubState struct {
	cycles      atomic.Int64
	blocks      atomic.Int64
	bytes       atomic.Int64
	corruptions atomic.Int64

	mu           sync.Mutex
	curTable     string // table being scanned ("" between cycles)
	tablesInCyc  int    // tables in the current cycle's snapshot
	tableCursor  int    // position within the snapshot (0-based)
	lastCycleEnd time.Time
	lastErr      string // most recent corruption or read error ("" when none)

	blocksC, bytesC, corruptionsC, cyclesC *metrics.Counter
}

// ScrubStats is a point-in-time view of scrubber progress.
type ScrubStats struct {
	// Cycles is the number of completed full passes over the store.
	Cycles int64
	// BlocksScanned / BytesScanned count verified blocks cumulatively.
	BlocksScanned int64
	BytesScanned  int64
	// Corruptions counts blocks whose content did not match their CRC.
	Corruptions int64
	// CurrentTable / TableCursor / TablesInCycle locate the in-progress
	// cycle ("" and zeros between cycles).
	CurrentTable  string
	TableCursor   int
	TablesInCycle int
	// LastCycleEnd is when the most recent full cycle completed (zero before
	// the first).
	LastCycleEnd time.Time
	// LastError is the most recent corruption or read error ("" when none).
	LastError string
}

// ScrubStats returns a snapshot of the background scrubber's progress.
func (s *Store) ScrubStats() ScrubStats {
	s.scrub.mu.Lock()
	defer s.scrub.mu.Unlock()
	return ScrubStats{
		Cycles:        s.scrub.cycles.Load(),
		BlocksScanned: s.scrub.blocks.Load(),
		BytesScanned:  s.scrub.bytes.Load(),
		Corruptions:   s.scrub.corruptions.Load(),
		CurrentTable:  s.scrub.curTable,
		TableCursor:   s.scrub.tableCursor,
		TablesInCycle: s.scrub.tablesInCyc,
		LastCycleEnd:  s.scrub.lastCycleEnd,
		LastError:     s.scrub.lastErr,
	}
}

// scrubLoop alternates ScrubInterval sleeps with full scrub cycles until the
// store closes.
func (s *Store) scrubLoop() {
	defer s.bg.Done()
	for {
		if !s.scrubSleep(s.opts.ScrubInterval) {
			return
		}
		s.ScrubOnce()
	}
}

// scrubSleep pauses for d, returning false when the store closed meanwhile.
func (s *Store) scrubSleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.closeCh:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.closeCh:
		return false
	case <-t.C:
		return true
	}
}

// ScrubOnce runs one full scrub cycle synchronously: every data block of
// every table in the current snapshot is re-read from disk and verified.
// It returns the number of corruptions found in this cycle. The background
// loop calls it on its own schedule; tests and tools call it directly for a
// deterministic full pass.
func (s *Store) ScrubOnce() int {
	_, tables, release, err := s.components()
	if err != nil {
		return 0 // store closed
	}
	defer release()

	s.scrub.mu.Lock()
	s.scrub.tablesInCyc = len(tables)
	s.scrub.mu.Unlock()

	found := 0
	for ti, h := range tables {
		s.scrub.mu.Lock()
		s.scrub.curTable = h.r.Name()
		s.scrub.tableCursor = ti
		s.scrub.mu.Unlock()
		for i := 0; i < h.r.NumBlocks(); i++ {
			n, err := h.r.VerifyBlock(i)
			s.scrub.blocks.Add(1)
			s.scrub.bytes.Add(int64(n))
			if s.scrub.blocksC != nil {
				s.scrub.blocksC.Add(1)
				s.scrub.bytesC.Add(int64(n))
			}
			if err != nil {
				s.scrub.mu.Lock()
				s.scrub.lastErr = err.Error()
				s.scrub.mu.Unlock()
				if errors.Is(err, sstable.ErrCorruption) {
					found++
					s.scrub.corruptions.Add(1)
					if s.scrub.corruptionsC != nil {
						s.scrub.corruptionsC.Add(1)
					}
				}
				// A read error or corruption does not stop the cycle: the
				// point of a scrub is a complete damage report, not fail-fast.
			}
			if !s.scrubSleep(s.opts.ScrubBlockPace) {
				return found
			}
		}
	}

	s.scrub.cycles.Add(1)
	if s.scrub.cyclesC != nil {
		s.scrub.cyclesC.Add(1)
	}
	s.scrub.mu.Lock()
	s.scrub.curTable = ""
	s.scrub.tableCursor = 0
	s.scrub.tablesInCyc = 0
	s.scrub.lastCycleEnd = time.Now()
	s.scrub.mu.Unlock()
	return found
}
