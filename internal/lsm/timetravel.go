package lsm

// Time-travel surface of the store (DESIGN.md §13): point-in-time reads
// over the MVCC versions the LSM already keeps, on-demand and periodic
// snapshot-in-log rounds, and the WAL tail API the CDC feed builds on.

import (
	"bytes"
	"errors"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/snapshot"
	"diffindex/internal/wal"
)

// ErrHistoryTrimmed reports that a point-in-time read cannot be answered
// faithfully: the version visible at the requested timestamp has (or may
// have) been garbage-collected by compaction's MaxVersions retention. The
// detection is conservative: it fires only when nothing is visible at the
// requested timestamp AND at least MaxVersions newer versions of the key
// survive — the signature of a trimmed tail. A key genuinely born after the
// timestamp with that many newer versions is indistinguishable from a
// trimmed one, so callers needing exact history must retain it (raise
// MaxVersions, or read from the log via TailWAL). Reads at kv.MaxTimestamp
// can never return this error.
var ErrHistoryTrimmed = errors.New("lsm: requested version trimmed by MaxVersions retention")

// GetAsOf returns the value of key as it stood at timestamp ts: the newest
// non-tombstone version with Ts ≤ ts. ok is false when the key did not
// exist at ts (never written yet, or deleted). It returns ErrHistoryTrimmed
// when the as-of version may have been compacted away (see the error's
// contract). GetAsOf(key, kv.MaxTimestamp) behaves exactly like Get.
func (s *Store) GetAsOf(key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	s.stats.gets.Add(1)
	if s.stageGet != nil {
		start := time.Now()
		defer func() { s.stageGet.RecordDuration(time.Since(start)) }()
	}
	mems, tables, release, err := s.components()
	if err != nil {
		return kv.Cell{}, false, err
	}
	defer release()

	iters := make([]internalIterator, 0, len(mems)+len(tables))
	for _, m := range mems {
		iters = append(iters, m.Iterator())
	}
	for _, h := range tables {
		if !h.r.MayContainKey(key) {
			continue
		}
		iters = append(iters, h.r.Iterator())
	}
	merged := newMergeIterator(iters)
	// Seek to the key's newest version so every version newer than ts is
	// observed (the trimmed-history detector needs the count), then take
	// the first version at or below ts.
	merged.Seek(kv.SeekKey(key, kv.MaxTimestamp))

	newer := 0
	for ; merged.Valid(); merged.Next() {
		c := merged.Cell()
		if !bytes.Equal(c.Key, key) {
			break
		}
		if c.Ts > ts {
			newer++
			continue
		}
		// Newest version ≤ ts decides the read; a tombstone means the key
		// was deleted as of ts (a definitive answer, not trimmed history).
		if err := merged.Err(); err != nil {
			return kv.Cell{}, false, err
		}
		if c.Tombstone() {
			return kv.Cell{}, false, nil
		}
		return c.Clone(), true, nil
	}
	if err := merged.Err(); err != nil {
		return kv.Cell{}, false, err
	}
	if ts < kv.MaxTimestamp && newer >= s.opts.MaxVersions {
		return kv.Cell{}, false, ErrHistoryTrimmed
	}
	return kv.Cell{}, false, nil
}

// ScanAsOf returns the newest visible version of every user key in
// [start, end) as of timestamp ts, up to limit results — Scan evaluated
// against historical state. Keys whose as-of version may have been trimmed
// by MaxVersions retention (nothing visible ≤ ts but ≥ MaxVersions newer
// versions survive) are skipped rather than failing the whole scan; use
// GetAsOf on an individual key to distinguish trimmed from never-existed.
func (s *Store) ScanAsOf(start, end []byte, ts kv.Timestamp, limit int) ([]ScanResult, error) {
	s.stats.scans.Add(1)
	if s.stageScan != nil {
		scanStart := time.Now()
		defer func() { s.stageScan.RecordDuration(time.Since(scanStart)) }()
	}
	mems, tables, release, err := s.components()
	if err != nil {
		return nil, err
	}
	defer release()

	iters := make([]internalIterator, 0, len(mems)+len(tables))
	for _, m := range mems {
		iters = append(iters, m.Iterator())
	}
	for _, h := range tables {
		iters = append(iters, h.r.Iterator())
	}
	merged := newMergeIterator(iters)
	// Unlike Scan, seek at MaxTimestamp: versions newer than ts must be
	// walked (not skipped by the seek) so each key's visibility decision
	// sees its full surviving history.
	merged.Seek(kv.SeekKey(start, kv.MaxTimestamp))

	var out []ScanResult
	var curUser []byte // user key whose visible version has been decided
	for merged.Valid() {
		c := merged.Cell()
		if end != nil && bytes.Compare(c.Key, end) >= 0 {
			break
		}
		if curUser != nil && bytes.Equal(c.Key, curUser) {
			merged.Next()
			continue // older version of an already-decided key
		}
		if c.Ts > ts {
			merged.Next()
			continue // newer than the as-of timestamp: invisible
		}
		curUser = append(curUser[:0], c.Key...)
		if !c.Tombstone() {
			out = append(out, ScanResult{
				Key:   append([]byte(nil), c.Key...),
				Value: append([]byte(nil), c.Value...),
				Ts:    c.Ts,
			})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		merged.Next()
	}
	if err := merged.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SnapshotWAL runs one snapshot-in-log round on demand (the periodic loop
// calls this too): fold the WAL's sealed unflushed span into a snapshot
// record using the double-buffer discipline. Rounds where the log has not
// moved since the last one are skipped (Stats.Taken is false). The round
// holds the flush mutex, so it never races a flush's roll/checkpoint.
func (s *Store) SnapshotWAL() (snapshot.Stats, error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return snapshot.Stats{}, ErrClosed
	}
	st, err := s.snap.Maybe()
	if err != nil {
		return st, err
	}
	if st.Taken {
		s.snapshotsTaken.Add(1)
		s.snapshotCells.Add(int64(st.Cells))
		if s.walSnapshots != nil {
			s.walSnapshots.Add(1)
		}
		if s.walSnapshotB != nil {
			s.walSnapshotB.Add(int64(st.Bytes))
		}
	}
	return st, err
}

func (s *Store) snapshotLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closeCh:
			return
		case <-t.C:
			// Failures are transient (a tainted segment rolls on the next
			// append); the next tick retries. A closed store ends the loop.
			if _, err := s.SnapshotWAL(); errors.Is(err, ErrClosed) || errors.Is(err, wal.ErrClosed) {
				return
			}
		}
	}
}

// TailWAL reads committed data records forward from a resumable position
// (the zero wal.Pos starts at the oldest retained history). See
// wal.Log.TailLog for the gap and position contract.
func (s *Store) TailWAL(from wal.Pos, max int) ([]wal.Entry, wal.Pos, int, error) {
	return s.log.TailLog(from, max)
}

// WALCursor opens a retention-pinning cursor over the store's committed
// records — the primitive a CDC consumer holds. The caller must Close it to
// release the truncation pin.
func (s *Store) WALCursor(from wal.Pos) *wal.Cursor {
	return s.log.NewCursor(from)
}

// ActiveWALSegment returns the WAL's active segment number — the reference
// point for a consumer's segment lag.
func (s *Store) ActiveWALSegment() uint64 {
	return s.log.ActiveSegment()
}
