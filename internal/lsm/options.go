// Package lsm implements the log-structured merge store that underlies every
// table region: the paper's abstract LSM model (§2.1) as realized by HBase
// (§2.2). A store is one memtable plus a set of immutable SSTables; writes
// append to the WAL and memtable, flushes turn memtables into SSTables, and
// compactions merge SSTables back into one. Reads merge all components under
// MVCC timestamp visibility.
//
// Two LSM-specific properties drive the Diff-Index design and are faithfully
// reproduced here: writes never update in place (puts and deletes both
// append versions), and reads are much slower than writes (reads may touch
// every component and pay simulated disk latency through the VFS).
//
// The store exposes the two coprocessor-style hook points Diff-Index needs:
// a pre-flush hook (pause-and-drain the AUQ, §5.3) and a WAL-replay callback
// (re-enqueue recovered puts into the AUQ, §5.3).
package lsm

import (
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
	"diffindex/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// FS is the file system holding WAL segments and SSTables. Required.
	FS vfs.FS
	// Dir is the store's directory prefix inside FS. Required.
	Dir string
	// MemtableBytes is the approximate memtable size that triggers a flush.
	// Defaults to 4 MiB.
	MemtableBytes int64
	// MaxVersions is the number of versions per user key retained by
	// compaction, mirroring HBase's VERSIONS column-family attribute.
	// Defaults to 3.
	MaxVersions int
	// CompactionThreshold is the SSTable count at which the tiered picker
	// starts forcing merges even when no size tier is full. Defaults to 4.
	CompactionThreshold int
	// CompactionFanIn bounds how many SSTables one compaction round may
	// merge: each round picks at most this many similar-sized tables, so a
	// round's I/O is bounded no matter how many tables accumulate.
	// Defaults to 4.
	CompactionFanIn int
	// MaxConcurrentCompactions bounds the number of compaction rounds
	// running at once (each round works on a disjoint table set, so rounds
	// never conflict). Defaults to 2.
	MaxConcurrentCompactions int
	// FullMergeCompaction restores the legacy behavior of merging every
	// live SSTable in a single round (used as the write-amplification
	// baseline in benchmarks). Tombstones always drop in this mode because
	// every round compacts the bottom.
	FullMergeCompaction bool
	// RetainTombstones keeps delete markers through every compaction,
	// including bottom-tier rounds (the data they mask is still GC'd).
	// Global-index stores set this: asynchronous index maintenance is
	// at-least-once, so a delayed or crash-redelivered insert of a
	// superseded entry can arrive long after its delete was applied — and
	// stays invisible only as long as the delete marker survives. Dropping
	// the marker would resurrect the stale entry.
	RetainTombstones bool
	// BlockCache, when non-nil, caches SSTable data blocks across the store
	// (typically shared by every store on a region server).
	BlockCache *sstable.BlockCache
	// OnReplay, when non-nil, is invoked for every cell recovered from the
	// WAL during Open, in log order. Diff-Index uses it to re-enqueue index
	// work (§5.3: "each base put replayed is also put into AUQ again").
	OnReplay func(kv.Cell)
	// Metrics, when non-nil, is the registry the store records stage
	// latencies (wal, memtable, store-get, store-scan, flush) and WAL
	// append counters into, labeled with MetricsTable.
	Metrics *metrics.Registry
	// MetricsTable is the value of the `table` label on this store's
	// metrics (typically the owning region's table name).
	MetricsTable string
	// DisableAutoFlush turns off size-triggered flushes (tests flush
	// explicitly for determinism).
	DisableAutoFlush bool
	// DisableAutoCompact turns off count-triggered compactions.
	DisableAutoCompact bool
	// VerifyChecksums makes every data-block read verify the block's CRC32C
	// before use, turning silent corruption into an ErrCorruption read error.
	// Cache hits are not re-verified (they were checked when first read from
	// disk); v1 tables without checksums are unaffected.
	VerifyChecksums bool
	// LearnedIndex trains a bounded-error piecewise-linear block model on
	// every SSTable this store writes (flushes and compactions) and serves
	// point lookups through it: the model predicts a block, a ±ε window is
	// verified against the exact index, and any miss falls back to the full
	// binary search — model-backed reads always return exactly what binary
	// search would (DESIGN.md §12). Already-written tables keep whatever
	// format they have; v1/v2 tables read via binary search.
	LearnedIndex bool
	// LearnedIndexEpsilon is the model's training error bound in blocks
	// (defaults to sstable.DefaultModelEpsilon = 8). Smaller ε means more
	// segments and narrower read windows.
	LearnedIndexEpsilon int
	// BlockRestartInterval is the entry spacing of in-block restart points
	// on newly written tables (defaults to sstable.DefaultRestartInterval =
	// 16): the in-block entry scan binary-searches restarts and walks at
	// most this many entries.
	BlockRestartInterval int
	// DisableScrub turns off the background integrity scrubber.
	DisableScrub bool
	// SnapshotInterval, when > 0, runs a periodic snapshot-in-log round
	// (DESIGN.md §13): the WAL's sealed unflushed span is folded into a
	// snapshot record appended back into the log, so recovery replays
	// "latest snapshot + tail" instead of the whole retained log. 0 disables
	// the periodic loop; SnapshotWAL still takes rounds on demand.
	SnapshotInterval time.Duration
	// WALRetainSegments is the log retention knob: 0 (the default) truncates
	// freely at each flush boundary, N > 0 keeps the newest N sealed
	// segments for CDC consumers regardless of flushes, and -1 never
	// truncates — full log-as-database mode, required by WAL-sourced index
	// rebuild. Live CDC cursors pin their position in addition to this knob.
	WALRetainSegments int
	// ScrubInterval is the pause between scrub cycles (a cycle verifies every
	// block of every live SSTable). Defaults to 5s; short-lived stores never
	// start a cycle.
	ScrubInterval time.Duration
	// ScrubBlockPace is the pause between individual block verifications —
	// the knob that keeps the scrubber low-priority: with the 4 KiB target
	// block size, the default 1ms pace caps scrub I/O at ~4 MiB/s per store.
	// A negative value disables pacing (full-speed scrub, for tests).
	ScrubBlockPace time.Duration
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxVersions <= 0 {
		o.MaxVersions = 3
	}
	if o.CompactionThreshold <= 0 {
		o.CompactionThreshold = 4
	}
	if o.CompactionFanIn <= 0 {
		o.CompactionFanIn = 4
	}
	if o.MaxConcurrentCompactions <= 0 {
		o.MaxConcurrentCompactions = 2
	}
	if o.ScrubInterval <= 0 {
		o.ScrubInterval = 5 * time.Second
	}
	if o.LearnedIndexEpsilon <= 0 {
		o.LearnedIndexEpsilon = sstable.DefaultModelEpsilon
	}
	if o.BlockRestartInterval <= 0 {
		o.BlockRestartInterval = sstable.DefaultRestartInterval
	}
	if o.ScrubBlockPace < 0 {
		o.ScrubBlockPace = 0
	} else if o.ScrubBlockPace == 0 {
		o.ScrubBlockPace = time.Millisecond
	}
	return o
}

// Stats exposes cumulative operation counters for a store.
type Stats struct {
	Puts        int64
	Deletes     int64
	Gets        int64
	Scans       int64
	Flushes     int64
	Compactions int64 // compaction rounds completed

	// FlushBytes is the total SSTable bytes written by flushes; together
	// with CompactionBytesWritten it yields the store's write
	// amplification: (FlushBytes + CompactionBytesWritten) / FlushBytes.
	FlushBytes             int64
	CompactionBytesRead    int64
	CompactionBytesWritten int64
	// CompactionCellsDropped counts cells garbage-collected by compaction
	// (excess versions and tombstone-masked data); TombstonesDropped counts
	// delete markers retired at the bottom tier.
	CompactionCellsDropped int64
	TombstonesDropped      int64
	// CompactionErrors counts failed background rounds;
	// LastCompactionError holds the most recent failure's message ("" when
	// none) so operators can see *why* compactions are failing, not just
	// that they are.
	CompactionErrors    int64
	LastCompactionError string

	// WALSnapshots counts snapshot-in-log rounds that wrote a snapshot
	// record; WALSnapshotCells the total cells folded into them.
	WALSnapshots     int64
	WALSnapshotCells int64
}
