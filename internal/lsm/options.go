// Package lsm implements the log-structured merge store that underlies every
// table region: the paper's abstract LSM model (§2.1) as realized by HBase
// (§2.2). A store is one memtable plus a set of immutable SSTables; writes
// append to the WAL and memtable, flushes turn memtables into SSTables, and
// compactions merge SSTables back into one. Reads merge all components under
// MVCC timestamp visibility.
//
// Two LSM-specific properties drive the Diff-Index design and are faithfully
// reproduced here: writes never update in place (puts and deletes both
// append versions), and reads are much slower than writes (reads may touch
// every component and pay simulated disk latency through the VFS).
//
// The store exposes the two coprocessor-style hook points Diff-Index needs:
// a pre-flush hook (pause-and-drain the AUQ, §5.3) and a WAL-replay callback
// (re-enqueue recovered puts into the AUQ, §5.3).
package lsm

import (
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
	"diffindex/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// FS is the file system holding WAL segments and SSTables. Required.
	FS vfs.FS
	// Dir is the store's directory prefix inside FS. Required.
	Dir string
	// MemtableBytes is the approximate memtable size that triggers a flush.
	// Defaults to 4 MiB.
	MemtableBytes int64
	// MaxVersions is the number of versions per user key retained by
	// compaction, mirroring HBase's VERSIONS column-family attribute.
	// Defaults to 3.
	MaxVersions int
	// CompactionThreshold is the SSTable count that triggers a merge of all
	// tables into one. Defaults to 4.
	CompactionThreshold int
	// BlockCache, when non-nil, caches SSTable data blocks across the store
	// (typically shared by every store on a region server).
	BlockCache *sstable.BlockCache
	// OnReplay, when non-nil, is invoked for every cell recovered from the
	// WAL during Open, in log order. Diff-Index uses it to re-enqueue index
	// work (§5.3: "each base put replayed is also put into AUQ again").
	OnReplay func(kv.Cell)
	// Metrics, when non-nil, is the registry the store records stage
	// latencies (wal, memtable, store-get, store-scan, flush) and WAL
	// append counters into, labeled with MetricsTable.
	Metrics *metrics.Registry
	// MetricsTable is the value of the `table` label on this store's
	// metrics (typically the owning region's table name).
	MetricsTable string
	// DisableAutoFlush turns off size-triggered flushes (tests flush
	// explicitly for determinism).
	DisableAutoFlush bool
	// DisableAutoCompact turns off count-triggered compactions.
	DisableAutoCompact bool
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxVersions <= 0 {
		o.MaxVersions = 3
	}
	if o.CompactionThreshold <= 0 {
		o.CompactionThreshold = 4
	}
	return o
}

// Stats exposes cumulative operation counters for a store.
type Stats struct {
	Puts        int64
	Deletes     int64
	Gets        int64
	Scans       int64
	Flushes     int64
	Compactions int64
}
