package lsm

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

func TestTierOf(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 0},
		{1, 0},
		{tierBase, 0},
		{tierBase*tierRatio - 1, 0},
		{tierBase * tierRatio, 1},
		{tierBase*tierRatio*tierRatio - 1, 1},
		{tierBase * tierRatio * tierRatio, 2},
		{1 << 30, 7},
	}
	for _, c := range cases {
		if got := tierOf(c.size); got != c.want {
			t.Errorf("tierOf(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func sameSize(n int, size int64) []tableMeta {
	metas := make([]tableMeta, n)
	for i := range metas {
		metas[i] = tableMeta{Size: size}
	}
	return metas
}

func TestPickTieredBoundedFanIn(t *testing.T) {
	// The core guarantee: no matter how many tables exist, one round never
	// picks more than fanIn of them — compaction cannot rewrite the store.
	for _, n := range []int{2, 5, 12, 40} {
		metas := sameSize(n, 10<<10)
		picked := pickTiered(metas, 4, 2, false)
		if picked == nil {
			t.Fatalf("n=%d: no pick", n)
		}
		if len(picked) > 4 {
			t.Errorf("n=%d: picked %d tables, fan-in is 4", n, len(picked))
		}
		if n > 4 && len(picked) == n {
			t.Errorf("n=%d: round rewrites every live table", n)
		}
	}
}

func TestPickTieredPrefersLowestFullTier(t *testing.T) {
	// Tier 1 (256 KiB..1 MiB) has 4 members, tier 0 only 2: with fanIn 4
	// the full lower tier 0 is not full, so tier 1 wins only when tier 0
	// lacks fanIn members... construct the opposite: tier 0 full.
	metas := []tableMeta{
		{Size: 300 << 10}, {Size: 300 << 10}, {Size: 300 << 10}, {Size: 300 << 10}, // tier 1
		{Size: 10 << 10}, {Size: 10 << 10}, {Size: 10 << 10}, {Size: 10 << 10}, // tier 0
	}
	picked := pickTiered(metas, 4, 100, false)
	if len(picked) != 4 {
		t.Fatalf("picked %v", picked)
	}
	for _, idx := range picked {
		if metas[idx].Size != 10<<10 {
			t.Errorf("picked table %d from tier %d, want the full tier 0", idx, tierOf(metas[idx].Size))
		}
	}
}

func TestPickTieredThresholdAndForce(t *testing.T) {
	// Three tables in three different tiers: no tier is full, and with the
	// count below threshold nothing is picked — unless forced.
	metas := []tableMeta{{Size: 10 << 10}, {Size: 300 << 10}, {Size: 2 << 20}}
	if picked := pickTiered(metas, 4, 10, false); picked != nil {
		t.Errorf("picked %v below threshold with no full tier", picked)
	}
	picked := pickTiered(metas, 2, 10, true)
	if len(picked) != 2 {
		t.Fatalf("forced pick = %v, want 2 smallest", picked)
	}
	// The two smallest overall are indices 0 and 1.
	if picked[0] != 0 || picked[1] != 1 {
		t.Errorf("forced pick = %v, want [0 1]", picked)
	}
	// Past the threshold the same shape compacts without force.
	if picked := pickTiered(metas, 2, 3, false); len(picked) != 2 {
		t.Errorf("threshold pick = %v, want 2 tables", picked)
	}
}

func TestPickTieredSkipsBusy(t *testing.T) {
	metas := sameSize(5, 10<<10)
	metas[0].Busy = true
	metas[2].Busy = true
	picked := pickTiered(metas, 4, 4, false)
	if len(picked) != 3 {
		t.Fatalf("picked %v, want the 3 idle tables", picked)
	}
	for _, idx := range picked {
		if metas[idx].Busy {
			t.Errorf("picked busy table %d", idx)
		}
	}
	// With fewer than two claimable tables there is nothing to merge.
	metas[1].Busy = true
	metas[3].Busy = true
	if picked := pickTiered(metas, 4, 4, true); picked != nil {
		t.Errorf("picked %v with one idle table", picked)
	}
}

func TestIsBottom(t *testing.T) {
	if !isBottom([]int{3, 4}, 5) {
		t.Error("complete tail not detected")
	}
	if isBottom([]int{2, 4}, 5) {
		t.Error("gap accepted as bottom")
	}
	if isBottom([]int{0, 1}, 5) {
		t.Error("prefix accepted as bottom")
	}
	if !isBottom([]int{0, 1, 2}, 3) {
		t.Error("whole list not detected as bottom")
	}
}

// flushTable writes kvs into the memtable and flushes one SSTable.
func flushTable(t *testing.T, s *Store, base string, n int, ts kv.Timestamp) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("%s%04d", base, i)), []byte("v"), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactOnceIsBounded(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		CompactionFanIn:    3,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 8; i++ {
		flushTable(t, s, fmt.Sprintf("t%d-", i), 4, kv.Timestamp(i+1))
	}
	ran, err := s.CompactOnce()
	if err != nil || !ran {
		t.Fatalf("CompactOnce = %v, %v", ran, err)
	}
	// One round merges exactly fanIn tables: 8 - 3 + 1 = 6 remain.
	if got := s.TableCount(); got != 6 {
		t.Fatalf("TableCount after one round = %d, want 6", got)
	}
	if st := s.Stats(); st.Compactions != 1 || st.CompactionBytesRead == 0 || st.CompactionBytesWritten == 0 {
		t.Errorf("stats after round: %+v", st)
	}
	// Every key from every table is still readable.
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("t%d-0000", i))
		if _, ok, err := s.Get(key, kv.MaxTimestamp); err != nil || !ok {
			t.Errorf("key %s lost after round (ok=%v err=%v)", key, ok, err)
		}
	}
}

func TestTombstoneRetainedAboveBottomTier(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		CompactionFanIn:    2,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Oldest (and largest) table holds the live value; newer small tables
	// hold the tombstone and a filler run. A forced round picks the two
	// smallest — the non-bottom pair — leaving the big table untouched.
	flushTable(t, s, "big-", 60, 10)
	s.Put([]byte("big-0001"), []byte("doomed"), 11)
	s.Flush()
	s.Delete([]byte("big-0001"), 20)
	s.Flush() // small table with the tombstone
	if s.TableCount() != 3 {
		t.Fatalf("TableCount = %d", s.TableCount())
	}

	ran, err := s.CompactOnce()
	if err != nil || !ran {
		t.Fatalf("CompactOnce = %v, %v", ran, err)
	}
	if got := s.TableCount(); got != 2 {
		t.Fatalf("TableCount after non-bottom round = %d, want 2", got)
	}
	// The round was not at the bottom: the tombstone must survive so it
	// keeps masking the version in the untouched oldest table.
	if st := s.Stats(); st.TombstonesDropped != 0 {
		t.Fatalf("tombstone dropped above the bottom tier: %+v", st)
	}
	if _, ok, _ := s.Get([]byte("big-0001"), kv.MaxTimestamp); ok {
		t.Fatal("deleted key resurfaced after non-bottom compaction")
	}
	if c, ok, _ := s.GetCell([]byte("big-0001"), kv.MaxTimestamp); !ok || !c.Tombstone() {
		t.Fatalf("tombstone lost in non-bottom round: %+v ok=%v", c, ok)
	}

	// A major compaction reaches the bottom: now the marker (and the data
	// it masks) may go.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TombstonesDropped == 0 {
		t.Error("bottom-tier compaction retired no tombstone")
	}
	if _, ok, _ := s.GetCell([]byte("big-0001"), kv.MaxTimestamp); ok {
		t.Error("tombstone survived bottom-tier compaction")
	}
	if _, ok, _ := s.Get([]byte("big-0000"), kv.MaxTimestamp); !ok {
		t.Error("live key lost at bottom-tier compaction")
	}
}

// RetainTombstones (set for global-index stores): even a bottom-tier round
// keeps delete markers, because an at-least-once redelivery of the data
// they mask can arrive after the compaction — and must stay invisible.
func TestRetainTombstonesSurvivesBottomTier(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		RetainTombstones:   true,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Put([]byte("k"), []byte("v"), 10)
	s.Flush()
	s.Delete([]byte("k"), 20)
	s.Flush()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TombstonesDropped != 0 {
		t.Fatalf("marker dropped despite RetainTombstones: %+v", st)
	}
	if st.CompactionCellsDropped == 0 {
		t.Error("masked put not GC'd (retention should only spare the marker)")
	}
	if c, ok, _ := s.GetCell([]byte("k"), kv.MaxTimestamp); !ok || !c.Tombstone() {
		t.Fatalf("marker lost at bottom-tier round: %+v ok=%v", c, ok)
	}
	// The redelivery that motivates the option: the masked put arrives
	// again at its original timestamp and must remain invisible.
	s.Put([]byte("k"), []byte("v"), 10)
	if _, ok, _ := s.Get([]byte("k"), kv.MaxTimestamp); ok {
		t.Error("redelivered masked put resurfaced")
	}
}

func TestPostCompactHookReceivesGCCells(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MaxVersions:        1,
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	var got []kv.Cell
	var bottom bool
	s.RegisterPostCompact(func(gc CompactionGC) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, gc.Dropped...)
		bottom = gc.Bottom
	})

	s.Put([]byte("k"), []byte("old"), 10)
	s.Flush()
	s.Put([]byte("k"), []byte("new"), 20)
	s.Flush()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if !bottom {
		t.Error("major compaction not flagged as bottom")
	}
	found := false
	for _, c := range got {
		if string(c.Key) == "k" && string(c.Value) == "old" && c.Ts == 10 && c.Kind == kv.KindPut {
			found = true
		}
	}
	if !found {
		t.Errorf("GC'd version not delivered to hook: %v", got)
	}
	if c, ok, _ := s.Get([]byte("k"), kv.MaxTimestamp); !ok || string(c.Value) != "new" {
		t.Errorf("surviving version wrong: %+v ok=%v", c, ok)
	}
}

func TestBackgroundCompactionErrorSurfaced(t *testing.T) {
	fault := vfs.NewFaultFS(vfs.NewMemFS())
	s, err := Open(Options{
		FS: fault, Dir: "store",
		CompactionThreshold: 2,
		DisableAutoFlush:    true,
		DisableAutoCompact:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	flushTable(t, s, "a-", 3, 1)
	flushTable(t, s, "b-", 3, 2)

	// Every write now fails: the background round's output cannot be
	// written. The failure must land in the stats instead of vanishing.
	fault.Arm(vfs.FaultConfig{Seed: 1, WriteErrProb: 1, PathSubstr: ".sst"})
	s.maybeScheduleCompaction()
	s.WaitCompactions()
	fault.Disarm()

	st := s.Stats()
	if st.CompactionErrors == 0 {
		t.Fatal("failed background compaction not counted")
	}
	if !strings.Contains(st.LastCompactionError, "injected") {
		t.Errorf("LastCompactionError = %q, want the injected fault", st.LastCompactionError)
	}
	if st.Compactions != 0 {
		t.Errorf("failed round counted as completed: %+v", st)
	}
	// Inputs are left in place; a retry after the fault clears succeeds.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions != 1 || s.TableCount() != 1 {
		t.Errorf("retry after fault: %+v tables=%d", st, s.TableCount())
	}
}

func TestFullMergeCompactionOption(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		CompactionThreshold: 4,
		FullMergeCompaction: true,
		DisableAutoFlush:    true,
		DisableAutoCompact:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 5; i++ {
		flushTable(t, s, fmt.Sprintf("t%d-", i), 3, kv.Timestamp(i+1))
	}
	s.maybeScheduleCompaction()
	s.WaitCompactions()
	if got := s.TableCount(); got != 1 {
		t.Fatalf("full-merge baseline left %d tables, want 1", got)
	}
}

// TestReadsRaceConcurrentCompactions hammers the store with writes, reads
// and scans while the incremental engine flushes and compacts in the
// background — the -race proof that claim-based scheduling, refcounted
// table retirement and the merge install are data-race free.
func TestReadsRaceConcurrentCompactions(t *testing.T) {
	fs := vfs.NewMemFS()
	s, err := Open(Options{
		FS: fs, Dir: "store",
		MemtableBytes:            8 << 10,
		CompactionThreshold:      2,
		CompactionFanIn:          2,
		MaxConcurrentCompactions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 3
		perW    = 250
	)
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perW; i++ {
				key := []byte(fmt.Sprintf("w%d-%05d", w, i))
				ts := kv.Timestamp(w*perW + i + 1)
				if err := s.Put(key, []byte(strings.Repeat("v", 64)), ts); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					if err := s.Delete(key, ts+100000); err != nil {
						t.Error(err)
						return
					}
				}
				// Flush explicitly so the workload produces enough tables
				// to keep the compaction pipeline busy; MemFS writes are
				// faster than the async auto-flush can keep up with.
				if i%60 == 59 {
					if err := s.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Readers and scanners race the writers, flushes and compactions.
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%d-%05d", r, i%perW))
				if _, _, err := s.Get(key, kv.MaxTimestamp); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := s.Scan(nil, nil, kv.MaxTimestamp, 32); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.WaitCompactions()
	st := s.Stats()
	if st.Compactions == 0 {
		t.Error("no compaction round ran during the workload")
	}
	if st.CompactionErrors != 0 {
		t.Errorf("compaction errors under race: %d (%s)", st.CompactionErrors, st.LastCompactionError)
	}
	// Every key (or its tombstone) is still decided correctly.
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			key := []byte(fmt.Sprintf("w%d-%05d", w, i))
			_, ok, err := s.Get(key, kv.MaxTimestamp)
			if err != nil {
				t.Fatal(err)
			}
			deleted := i%17 == 0
			if ok == deleted {
				t.Fatalf("key %s: visible=%v, want %v", key, ok, !deleted)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
