package lsm

import (
	"fmt"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// BenchmarkScrubOverhead measures the put/get cost of running the background
// scrubber at its default pace against an identical store with scrubbing
// disabled. The store is pre-loaded so every cycle has real blocks to verify,
// and the scrub interval is shortened to near-zero so the walker is
// continuously active during the measured window — a strict upper bound on
// the default 5s-interval configuration. The acceptance bar is ≤5% impact;
// checked-in results live in bench_output_scrub.txt.
func BenchmarkScrubOverhead(b *testing.B) {
	modes := []struct {
		name  string
		scrub bool
	}{
		{"scrub-off", false},
		{"scrub-on", true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			o := Options{
				FS: vfs.NewMemFS(), Dir: "bench",
				MemtableBytes:    1 << 20,
				DisableAutoFlush: true,
				DisableScrub:     !mode.scrub,
				// Continuous cycles at the default per-block pace (1ms): the
				// paced walker is always active while ops are measured.
				ScrubInterval: time.Nanosecond,
			}
			s, err := Open(o)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const preload = 4000
			for i := 0; i < preload; i++ {
				key := []byte(fmt.Sprintf("k%06d", i))
				val := []byte(fmt.Sprintf("value-%06d-padpadpadpadpadpadpad", i))
				if err := s.Put(key, val, kv.Timestamp(i+1)); err != nil {
					b.Fatal(err)
				}
				if i%1000 == 999 {
					if err := s.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("k%06d", i%preload))
				if i%2 == 0 {
					if err := s.Put(key, []byte("updated-value-padpadpadpad"), kv.Timestamp(preload+i+1)); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, _, err := s.Get(key, kv.MaxTimestamp); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if mode.scrub {
				st := s.ScrubStats()
				b.ReportMetric(float64(st.BlocksScanned), "scrubbed-blocks")
				if st.Corruptions != 0 {
					b.Fatalf("scrub found corruption in clean bench store: %+v", st)
				}
			}
		})
	}
}
