package lsm

import (
	"errors"
	"sort"

	"diffindex/internal/kv"
	"diffindex/internal/sstable"
)

// This file implements size-tiered incremental compaction. Instead of the
// original stop-the-world major compaction (merge *every* live SSTable into
// one, single-flight), tables are grouped into size tiers and each round
// merges a bounded set — at most Options.CompactionFanIn similar-sized
// tables — so a round's I/O stays proportional to the data it rewrites, not
// to the store's total size. Rounds with disjoint input sets run
// concurrently (up to Options.MaxConcurrentCompactions), and because a
// round never touches the memtable or the write gate, flushes proceed in
// parallel with compaction.
//
// Tombstone handling follows the bottom-tier rule: a delete marker may only
// be dropped when the round's inputs include every table older than the
// marker (the inputs form the complete tail of the table list). Anywhere
// else the tombstone is rewritten into the output so it keeps masking
// versions living in older, untouched tables. Visible state is therefore
// never changed by a round — the Diff-Index staleness-tolerance semantics
// (§4.2, §5.1) are preserved exactly as with the old major compaction.

// Size-tier geometry: tier 0 holds tables below tierBase·tierRatio bytes,
// and each subsequent tier covers the next tierRatio× size band. With
// 64 KiB × 4 the first boundaries are 256 KiB, 1 MiB, 4 MiB — sized so that
// memtable-flush outputs land in tier 0 and each merge promotes its output
// roughly one tier up.
const (
	tierBase  = 64 << 10
	tierRatio = 4
)

// tierOf maps a table size to its size tier.
func tierOf(size int64) int {
	tier := 0
	for limit := int64(tierBase * tierRatio); size >= limit; limit *= tierRatio {
		tier++
	}
	return tier
}

// tableMeta is the picker's view of one live table. The slice given to
// pickTiered is ordered newest-first, mirroring Store.tables.
type tableMeta struct {
	Size int64
	Busy bool // claimed by a running compaction round
}

// pickTiered selects the inputs for one compaction round: the indices (into
// metas) of at most fanIn non-busy tables. Preference order:
//
//  1. the smallest-size tier holding at least fanIn claimable tables — the
//     classic size-tiered trigger, merging peers of similar size;
//  2. when no tier is full but the store holds at least threshold tables
//     (or force is set), the fanIn smallest claimable tables overall, so
//     table count always converges even across tier boundaries.
//
// It returns nil when fewer than two tables are claimable or no rule fires.
// The bounded fan-in is the engine's core guarantee: a round never rewrites
// more than fanIn tables regardless of how many exist.
func pickTiered(metas []tableMeta, fanIn, threshold int, force bool) []int {
	var cand []int
	for i, m := range metas {
		if !m.Busy {
			cand = append(cand, i)
		}
	}
	if len(cand) < 2 {
		return nil
	}

	// Rule 1: lowest full tier.
	byTier := make(map[int][]int)
	minTier := -1
	for _, i := range cand {
		t := tierOf(metas[i].Size)
		byTier[t] = append(byTier[t], i)
		if len(byTier[t]) >= fanIn && (minTier < 0 || t < minTier) {
			minTier = t
		}
	}
	pool := cand
	if minTier >= 0 {
		pool = byTier[minTier]
	} else if !force && len(metas) < threshold {
		return nil
	}

	// Merge the smallest members first (ties: older table first, i.e. the
	// larger index in the newest-first ordering) — smallest-first keeps each
	// round's byte cost minimal for the same table-count reduction.
	sort.Slice(pool, func(a, b int) bool {
		if metas[pool[a]].Size != metas[pool[b]].Size {
			return metas[pool[a]].Size < metas[pool[b]].Size
		}
		return pool[a] > pool[b]
	})
	n := fanIn
	if n > len(pool) {
		n = len(pool)
	}
	if n < 2 {
		return nil
	}
	picked := append([]int(nil), pool[:n]...)
	sort.Ints(picked)
	return picked
}

// pickFullMerge is the legacy baseline picker: all tables, one round, but
// only when none is already being compacted (single-flight, as before).
func pickFullMerge(metas []tableMeta, threshold int, force bool) []int {
	if len(metas) < 2 || (!force && len(metas) < threshold) {
		return nil
	}
	picked := make([]int, 0, len(metas))
	for i, m := range metas {
		if m.Busy {
			return nil
		}
		picked = append(picked, i)
	}
	return picked
}

// isBottom reports whether the sorted picked indices form the complete tail
// of a table list of length n — the condition under which no unmerged table
// can hold data older than the inputs, making tombstone dropping safe.
func isBottom(picked []int, n int) bool {
	for i, idx := range picked {
		if idx != n-len(picked)+i {
			return false
		}
	}
	return len(picked) > 0
}

// CompactionGC describes what one compaction round of this store garbage-
// collected, for the PostCompact hook. Dropped holds (a sample of) the
// cells that were physically removed: superseded versions beyond
// MaxVersions, tombstone-masked data, and (bottom rounds only) the
// tombstones themselves. Diff-Index feeds the dropped base *put* cells to
// the index manager, which validates exactly the index entries those old
// values point to — a piggybacked cleanse that repairs staleness for free
// as part of merge I/O.
type CompactionGC struct {
	// Dropped is a sample of the garbage-collected cells (cloned; safe to
	// retain). Capped at gcSampleCap per round; Truncated marks overflow.
	Dropped   []kv.Cell
	Truncated bool
	// Bottom reports whether the round compacted the store's bottom tier
	// (inputs were the complete tail), i.e. tombstones were dropped.
	Bottom bool
}

// gcSampleCap bounds the per-round GC sample handed to PostCompact hooks.
const gcSampleCap = 4096

// RegisterPostCompact adds a hook invoked after each completed compaction
// round, from the compaction goroutine with no store locks held. Hooks must
// be registered before compactions start (mirroring RegisterPreFlush).
func (s *Store) RegisterPostCompact(hook func(CompactionGC)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.postCompact = append(s.postCompact, hook)
}

// errNoClaim distinguishes "nothing to compact" from a real failure.
var errNoClaim = errors.New("lsm: no claimable compaction inputs")

// claimLocked picks a round's inputs and marks them busy. Called with
// compMu held; takes s.mu.RLock internally (lock order: compMu → mu).
// Returns errNoClaim when no rule fires and ErrClosed on a closed store.
func (s *Store) claimLocked(force, all bool) ([]*tableHandle, bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	tables := make([]*tableHandle, len(s.tables))
	copy(tables, s.tables)
	s.mu.RUnlock()

	metas := make([]tableMeta, len(tables))
	for i, h := range tables {
		_, busy := s.compBusy[h]
		metas[i] = tableMeta{Size: h.r.Size(), Busy: busy}
	}
	var picked []int
	if all || s.opts.FullMergeCompaction {
		picked = pickFullMerge(metas, s.opts.CompactionThreshold, force || all)
	} else {
		picked = pickTiered(metas, s.opts.CompactionFanIn, s.opts.CompactionThreshold, force)
	}
	if picked == nil {
		return nil, false, errNoClaim
	}
	inputs := make([]*tableHandle, len(picked))
	for i, idx := range picked {
		h := tables[idx]
		h.acquire()
		s.compBusy[h] = struct{}{}
		inputs[i] = h
	}
	return inputs, isBottom(picked, len(metas)), nil
}

// unclaimLocked releases a round's claim: busy marks and the compaction's
// own table references. Called with compMu held.
func (s *Store) unclaimLocked(inputs []*tableHandle) {
	for _, h := range inputs {
		delete(s.compBusy, h)
		h.release()
	}
}

// recordCompactionError surfaces a failed background round through the
// stats error counter, the last-error field and the metrics registry.
// ErrClosed is not an error: it just means the store shut down mid-round.
func (s *Store) recordCompactionError(err error) {
	if err == nil || errors.Is(err, ErrClosed) {
		return
	}
	s.stats.compactionErrors.Add(1)
	if s.compErrors != nil {
		s.compErrors.Inc()
	}
	s.compMu.Lock()
	s.compLastErr = err.Error()
	s.compMu.Unlock()
}

// maybeScheduleCompaction starts background compaction workers, up to
// MaxConcurrentCompactions, each seeded with a claimed round. Workers keep
// claiming follow-up rounds until the picker finds nothing, then exit.
// Unlike the old single-flight scheduler, a failed round's error is
// recorded (stats + metrics) instead of being silently discarded.
func (s *Store) maybeScheduleCompaction() {
	for {
		s.compMu.Lock()
		if s.compWorkers >= s.opts.MaxConcurrentCompactions {
			s.compMu.Unlock()
			return
		}
		inputs, bottom, err := s.claimLocked(false, false)
		if err != nil {
			s.compMu.Unlock()
			return
		}
		s.compWorkers++
		s.compRunning++
		s.compMu.Unlock()
		s.bg.Add(1)
		go s.compactWorker(inputs, bottom)
	}
}

func (s *Store) compactWorker(inputs []*tableHandle, bottom bool) {
	defer s.bg.Done()
	for {
		err := s.compactRound(inputs, bottom)
		if err != nil {
			s.recordCompactionError(err)
		}
		s.compMu.Lock()
		s.unclaimLocked(inputs)
		s.compRunning--
		if err == nil {
			var cerr error
			if inputs, bottom, cerr = s.claimLocked(false, false); cerr == nil {
				s.compRunning++
				s.compCond.Broadcast()
				s.compMu.Unlock()
				continue
			}
		}
		s.compWorkers--
		s.compCond.Broadcast()
		s.compMu.Unlock()
		return
	}
}

// CompactOnce synchronously runs a single tiered compaction round,
// bypassing the threshold rule (force). It reports whether a round ran:
// false with a nil error means there was nothing worth merging.
func (s *Store) CompactOnce() (bool, error) {
	s.compMu.Lock()
	inputs, bottom, err := s.claimLocked(true, false)
	if err != nil {
		s.compMu.Unlock()
		if errors.Is(err, errNoClaim) {
			return false, nil
		}
		return false, err
	}
	s.compRunning++
	s.compMu.Unlock()

	rerr := s.compactRound(inputs, bottom)
	s.compMu.Lock()
	s.unclaimLocked(inputs)
	s.compRunning--
	s.compCond.Broadcast()
	s.compMu.Unlock()
	return true, rerr
}

// Compact runs a major compaction: every live SSTable is merged into one
// (the paper's "C1, C2 and C3 are compacted into C1'", §2.1), with full
// version GC and tombstone dropping. It waits for in-flight background
// rounds first so it can claim the whole table list. Kept as the explicit
// administrative entry point; steady-state merging is the incremental
// tiered engine above.
func (s *Store) Compact() error {
	s.compMu.Lock()
	for s.compRunning > 0 {
		s.compCond.Wait()
	}
	inputs, _, err := s.claimLocked(true, true)
	if err != nil {
		s.compMu.Unlock()
		if errors.Is(err, errNoClaim) {
			return nil // fewer than two tables: nothing to merge
		}
		return err
	}
	s.compRunning++
	s.compMu.Unlock()

	// A claim-all is by construction the complete tail: bottom round.
	rerr := s.compactRound(inputs, true)
	s.compMu.Lock()
	s.unclaimLocked(inputs)
	s.compRunning--
	s.compCond.Broadcast()
	s.compMu.Unlock()
	return rerr
}

// WaitCompactions blocks until no compaction round or worker is active.
// Benchmarks and tests use it to measure completed work; it makes no
// guarantee that new rounds won't start afterwards.
func (s *Store) WaitCompactions() {
	s.compMu.Lock()
	for s.compRunning > 0 || s.compWorkers > 0 {
		s.compCond.Wait()
	}
	s.compMu.Unlock()
}

// compactRound merges the claimed inputs into one output table and installs
// it in their place. Per user key at most MaxVersions puts survive; data
// masked by a tombstone is dropped; the tombstone itself is dropped only
// when bottom is true (inputs are the complete tail), otherwise it is
// rewritten so it keeps masking older tables. Dropping only ever removes
// cells that are invisible at every timestamp given the surviving cells —
// version trimming is conservative on subsets (a version is trimmed only
// when ≥ MaxVersions strictly newer versions exist *within the inputs*,
// hence globally).
func (s *Store) compactRound(inputs []*tableHandle, bottom bool) error {
	s.mu.RLock()
	hooks := s.postCompact
	s.mu.RUnlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	outNum := s.nextFile
	s.nextFile++
	s.mu.Unlock()

	var bytesRead int64
	for _, h := range inputs {
		bytesRead += h.r.Size()
	}

	name := tableName(s.opts.Dir, outNum)
	w, err := sstable.NewWriterWith(s.opts.FS, name, s.writerOptions())
	if err != nil {
		return err
	}
	fail := func(err error) error {
		w.Abandon()
		s.opts.FS.Remove(name)
		return err
	}

	iters := make([]internalIterator, len(inputs))
	for i, h := range inputs {
		iters[i] = h.r.Iterator()
	}
	merged := newMergeIterator(iters)

	gc := CompactionGC{Bottom: bottom}
	dropCell := func(c kv.Cell) {
		s.stats.gcCells.Add(1)
		if s.compGCCells != nil {
			s.compGCCells.Inc()
		}
		if len(hooks) == 0 {
			return
		}
		if len(gc.Dropped) >= gcSampleCap {
			gc.Truncated = true
			return
		}
		gc.Dropped = append(gc.Dropped, c.Clone())
	}

	var curUser []byte
	kept, masked := 0, false
	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		ikey := merged.InternalKey()
		user := kv.InternalUserKey(ikey)
		if curUser == nil || string(user) != string(curUser) {
			curUser = append(curUser[:0], user...)
			kept, masked = 0, false
		}
		c := merged.Cell()
		if c.Tombstone() {
			masked = true // puts below are masked within the inputs
			if bottom && !s.opts.RetainTombstones {
				// Nothing older exists outside the inputs: the marker has
				// done its job and can be retired.
				s.stats.tombstonesDropped.Add(1)
				if s.compTombstones != nil {
					s.compTombstones.Inc()
				}
				dropCell(c)
				continue
			}
			// Not at the bottom (or the store retains markers for
			// at-least-once redelivery): keep every marker (even ones under
			// a newer marker) so each still masks exactly the versions it
			// did in older, unmerged tables — and any late redelivered
			// write of masked data.
			if err := w.Add(ikey, nil); err != nil {
				return fail(err)
			}
			continue
		}
		if masked || kept >= s.opts.MaxVersions {
			dropCell(c)
			continue
		}
		if err := w.Add(ikey, c.Value); err != nil {
			return fail(err)
		}
		kept++
	}
	if err := merged.Err(); err != nil {
		return fail(err)
	}
	if err := w.Finish(); err != nil {
		s.opts.FS.Remove(name)
		return err
	}
	s.noteModelTrained(w)
	r, err := s.openTable(name)
	if err != nil {
		return err
	}

	out := &tableHandle{r: r, store: s}
	out.refs.Store(1)

	// Install: splice the inputs out of the table list and put the output at
	// the newest input's position. Inputs are located by identity — flushes
	// prepending new tables or sibling rounds splicing elsewhere cannot
	// disturb a claimed (busy) input, so all of them are present unless the
	// store closed underneath us.
	inputSet := make(map[*tableHandle]struct{}, len(inputs))
	for _, h := range inputs {
		inputSet[h] = struct{}{}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		r.Close()
		s.opts.FS.Remove(name)
		return ErrClosed
	}
	newTables := make([]*tableHandle, 0, len(s.tables)-len(inputs)+1)
	matched, inserted := 0, false
	for _, h := range s.tables {
		if _, ok := inputSet[h]; ok {
			matched++
			if !inserted {
				newTables = append(newTables, out)
				inserted = true
			}
			continue
		}
		newTables = append(newTables, h)
	}
	if matched != len(inputs) {
		s.mu.Unlock()
		r.Close()
		s.opts.FS.Remove(name)
		return errors.New("lsm: compaction inputs vanished from table list")
	}
	s.tables = newTables
	s.mu.Unlock()

	for _, h := range inputs {
		h.dropped.Store(true)
		h.release() // the store's own reference
	}

	s.stats.compactions.Add(1)
	s.stats.compactionBytesRead.Add(bytesRead)
	s.stats.compactionBytesWritten.Add(r.Size())
	if s.compRounds != nil {
		s.compRounds.Inc()
		s.compBytesRead.Add(bytesRead)
		s.compBytesWritten.Add(r.Size())
	}

	if len(hooks) > 0 && (len(gc.Dropped) > 0 || gc.Truncated) {
		for _, hook := range hooks {
			hook(gc)
		}
	}
	return nil
}
