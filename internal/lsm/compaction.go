package lsm

import (
	"errors"
	"fmt"

	"diffindex/internal/kv"
	"diffindex/internal/sstable"
)

func (s *Store) maybeScheduleCompaction() {
	if s.compacting.CompareAndSwap(false, true) {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			defer s.compacting.Store(false)
			// Failures leave the inputs in place; the next flush retries.
			_ = s.Compact()
		}()
	}
}

// Compact merges every live SSTable into one (a major compaction, §2.1's
// "C1, C2 and C3 are compacted into C1'"), garbage-collecting versions:
// per user key at most MaxVersions puts are retained, and tombstones plus
// everything they mask are dropped. Dropping tombstones at major compaction
// mirrors HBase; a dropped tombstone can, in a narrow recovery race, let a
// redelivered stale index entry resurface — which Diff-Index tolerates by
// design (stale entries are repaired at read time or by later deliveries,
// §4.2, §5.1).
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.tables) < 2 {
		s.mu.Unlock()
		return nil
	}
	inputs := make([]*tableHandle, len(s.tables))
	copy(inputs, s.tables)
	for _, h := range inputs {
		h.acquire()
	}
	outNum := s.nextFile
	s.nextFile++
	s.mu.Unlock()

	release := func() {
		for _, h := range inputs {
			h.release()
		}
	}

	name := tableName(s.opts.Dir, outNum)
	w, err := sstable.NewWriter(s.opts.FS, name)
	if err != nil {
		release()
		return err
	}
	fail := func(err error) error {
		w.Abandon()
		s.opts.FS.Remove(name)
		release()
		return err
	}

	iters := make([]internalIterator, len(inputs))
	for i, h := range inputs {
		iters[i] = h.r.Iterator()
	}
	merged := newMergeIterator(iters)

	var curUser []byte
	kept, masked := 0, false
	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		ikey := merged.InternalKey()
		user := kv.InternalUserKey(ikey)
		if curUser == nil || string(user) != string(curUser) {
			curUser = append(curUser[:0], user...)
			kept, masked = 0, false
		}
		if masked {
			continue
		}
		c := merged.Cell()
		if c.Tombstone() {
			masked = true // drop the tombstone and everything below it
			continue
		}
		if kept >= s.opts.MaxVersions {
			continue
		}
		if err := w.Add(ikey, c.Value); err != nil {
			return fail(err)
		}
		kept++
	}
	if err := merged.Err(); err != nil {
		return fail(err)
	}
	if err := w.Finish(); err != nil {
		release()
		s.opts.FS.Remove(name)
		return err
	}
	r, err := sstable.Open(s.opts.FS, name, s.opts.BlockCache)
	if err != nil {
		release()
		return err
	}

	out := &tableHandle{r: r, store: s}
	out.refs.Store(1)

	// Install: the inputs form a suffix of the current table list (flushes
	// prepend); replace that suffix with the single output.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		r.Close()
		s.opts.FS.Remove(name)
		return ErrClosed
	}
	if len(s.tables) < len(inputs) {
		s.mu.Unlock()
		release()
		return errors.New("lsm: table list shrank during compaction")
	}
	cut := len(s.tables) - len(inputs)
	for i, h := range s.tables[cut:] {
		if h != inputs[i] {
			s.mu.Unlock()
			release()
			return fmt.Errorf("lsm: table list changed during compaction")
		}
	}
	s.tables = append(append([]*tableHandle{}, s.tables[:cut]...), out)
	s.mu.Unlock()

	for _, h := range inputs {
		h.dropped.Store(true)
		h.release() // the store's own reference
	}
	release()
	s.stats.compactions.Add(1)
	return nil
}
