package wal

import (
	"fmt"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/snapshot"
	"diffindex/internal/vfs"
)

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := l.Append(Record{
			Key:   []byte(fmt.Sprintf("k%04d", i)),
			Value: []byte(fmt.Sprintf("v%04d", i)),
			Ts:    kv.Timestamp(i + 1),
			Kind:  kv.KindPut,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointBoundsReplay: records in segments below the flush checkpoint
// are durable in SSTables and must not be replayed; records at or past it
// must be.
func TestCheckpointBoundsReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	appendN(t, l, 0, 5)
	boundary, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(boundary); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 3)
	if got := l.FlushedBoundary(); got != boundary {
		t.Fatalf("FlushedBoundary = %d, want %d", got, boundary)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed := mustOpen(t, fs, "r")
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want the 3 past the checkpoint", len(replayed))
	}
	for i, r := range replayed {
		if want := fmt.Sprintf("k%04d", 5+i); string(r.Key) != want {
			t.Errorf("replayed[%d].Key = %q, want %q", i, r.Key, want)
		}
	}
}

// TestSnapshotReplayEquality: recovery through a snapshot record must
// produce exactly the records a raw replay of the same span produces — the
// snapshot is a compression of the log, never a different history.
func TestSnapshotReplayEquality(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	appendN(t, l, 0, 20)
	st, err := snapshot.Take(l) // *Log satisfies snapshot.Log
	if err != nil {
		t.Fatal(err)
	}
	if !st.Taken || st.Cells != 20 {
		t.Fatalf("snapshot stats = %+v, want Taken with 20 cells", st)
	}
	appendN(t, l, 20, 7) // tail past the snapshot
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	collect := func(disable bool) []Record {
		var recs []Record
		lg, err := OpenWith(fs, "r", ReplayConfig{
			Replay:           func(r Record) { recs = append(recs, r) },
			DisableSnapshots: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		lg.Close()
		return recs
	}
	viaSnap := collect(false)
	raw := collect(true)
	if len(viaSnap) != 27 || len(raw) != 27 {
		t.Fatalf("replay counts: snapshot path %d, raw %d, want 27 each", len(viaSnap), len(raw))
	}
	got := map[string]int{}
	for _, r := range viaSnap {
		got[fmt.Sprintf("%s|%d|%d|%s", r.Key, r.Ts, r.Kind, r.Value)]++
	}
	for _, r := range raw {
		k := fmt.Sprintf("%s|%d|%d|%s", r.Key, r.Ts, r.Kind, r.Value)
		got[k]--
		if got[k] == 0 {
			delete(got, k)
		}
	}
	if len(got) != 0 {
		t.Errorf("snapshot-path and raw replay differ: %v", got)
	}
}

// TestUndecodableSnapshotFallsBackToRaw: a snapshot record whose payload
// does not decode (a half-written or garbage record that still frames
// correctly) must be ignored, with recovery falling back to the raw
// records it claimed to cover.
func TestUndecodableSnapshotFallsBackToRaw(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	appendN(t, l, 0, 8)
	if _, err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSnapshotPayload([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err) // bad version byte: frames fine, never decodes
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed := mustOpen(t, fs, "r")
	if len(replayed) != 8 {
		t.Fatalf("replayed %d records after bogus snapshot, want all 8 raw", len(replayed))
	}
}

// TestTruncateBeforeRetentionFloor: RetainSegments keeps the newest N
// sealed segments through truncation; -1 disables truncation entirely.
func TestTruncateBeforeRetentionFloor(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	for i := 0; i < 4; i++ {
		appendN(t, l, i*3, 3)
		if _, err := l.Roll(); err != nil {
			t.Fatal(err)
		}
	}
	active := l.ActiveSegment() // 5: four sealed segments behind it

	l.SetRetention(2)
	removed, err := l.TruncateBefore(active)
	if err != nil {
		t.Fatal(err)
	}
	// Floor = active-2 = 3: segments 1 and 2 go, 3 and 4 survive.
	if removed != 2 {
		t.Errorf("TruncateBefore removed %d segments, want 2 under retention 2", removed)
	}
	_, _, gap, err := l.TailLog(Pos{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 2 {
		t.Errorf("tail gap = %d after truncation, want 2", gap)
	}

	l.SetRetention(-1)
	removed, err = l.TruncateBefore(active)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("TruncateBefore removed %d segments under -1 retention, want 0", removed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPinBlocksTruncation: a pin (CDC cursor, snapshot fold) lowers the
// truncation bound to the pinned segment until released.
func TestPinBlocksTruncation(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	for i := 0; i < 3; i++ {
		appendN(t, l, i*2, 2)
		if _, err := l.Roll(); err != nil {
			t.Fatal(err)
		}
	}
	release := l.Pin(2)
	removed, err := l.TruncateBefore(l.ActiveSegment())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 { // only segment 1: the pin holds 2 and above
		t.Errorf("removed %d segments with pin at 2, want 1", removed)
	}
	release()
	release() // idempotent
	removed, err = l.TruncateBefore(l.ActiveSegment())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // segments 2 and 3
		t.Errorf("removed %d segments after release, want 2", removed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTailLogResumeAndGap: TailLog pages through committed records with
// resumable positions, skips meta records, and reports history truncated
// below a resume position as a gap.
func TestTailLogResumeAndGap(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	appendN(t, l, 0, 4)
	boundary, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(boundary); err != nil {
		t.Fatal(err) // meta record: must be invisible to tailing
	}
	appendN(t, l, 4, 4)

	var got []Entry
	pos := Pos{}
	for {
		entries, next, gap, err := l.TailLog(pos, 3) // page size 3: forces resumes
		if err != nil {
			t.Fatal(err)
		}
		if gap != 0 {
			t.Fatalf("gap = %d on an untruncated log", gap)
		}
		if len(entries) == 0 {
			break
		}
		got = append(got, entries...)
		pos = next
	}
	if len(got) != 8 {
		t.Fatalf("tailed %d records, want 8 (checkpoint meta must be skipped)", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("k%04d", i); string(e.Record.Key) != want {
			t.Errorf("entry %d key = %q, want %q (log order)", i, e.Record.Key, want)
		}
		if e.Pos.Seg == 0 {
			t.Errorf("entry %d has zero segment in position", i)
		}
	}

	// Truncate the first segment away: a fresh tail must report the gap.
	if _, err := l.TruncateBefore(2); err != nil {
		t.Fatal(err)
	}
	entries, _, gap, err := l.TailLog(Pos{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 1 {
		t.Errorf("gap = %d after truncating one segment, want 1", gap)
	}
	if len(entries) != 4 {
		t.Errorf("tailed %d records after truncation, want the 4 surviving", len(entries))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCursorPinsAndFollowsRolls: a cursor's pin protects its unread
// segments from truncation, Next follows rolls forward, and Close releases
// the pin so truncation proceeds.
func TestCursorPinsAndFollowsRolls(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	appendN(t, l, 0, 3)
	cur := l.NewCursor(Pos{})

	// Roll + truncate while the cursor still points at segment 1: the pin
	// must keep it.
	if _, err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	removed, err := l.TruncateBefore(l.ActiveSegment())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("truncation removed %d segments out from under a cursor", removed)
	}

	var got []Entry
	for {
		entries, err := cur.Next(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			break
		}
		got = append(got, entries...)
	}
	if len(got) != 6 {
		t.Fatalf("cursor read %d records, want 6 across the roll", len(got))
	}
	if cur.GapSegments() != 0 {
		t.Errorf("cursor gap = %d, want 0", cur.GapSegments())
	}
	if cur.Lag() != 0 {
		t.Errorf("cursor lag = %d segments after catching up, want 0", cur.Lag())
	}

	cur.Close()
	removed, err = l.TruncateBefore(l.ActiveSegment())
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("truncation removed nothing after the cursor released its pin")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRecoveryReplay compares the two recovery paths over the same
// log: "snapshot-tail" replays the latest snapshot record plus the raw
// tail (what OpenWith does by default); "full-log" replays every raw
// record (DisableSnapshots). Both produce identical state; the snapshot
// path wins by replacing per-record framing and CRC checks across many
// segments with one contiguous pre-folded payload. Each iteration removes
// the empty active segment OpenWith creates, so the directory stays fixed.
func BenchmarkRecoveryReplay(b *testing.B) {
	fs := vfs.NewMemFS()
	l, err := OpenWith(fs, "r", ReplayConfig{RetainSegments: -1})
	if err != nil {
		b.Fatal(err)
	}
	const total, perSeg, tail = 20000, 1000, 200
	rec := func(i int) Record {
		return Record{
			Key:   []byte(fmt.Sprintf("user%06d/col%d", i%400, i%5)),
			Value: []byte(fmt.Sprintf("value-%08d-padding-padding-padding", i)),
			Ts:    kv.Timestamp(i + 1),
			Kind:  kv.KindPut,
		}
	}
	for i := 0; i < total; i++ {
		if err := l.Append(rec(i)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%perSeg == 0 {
			if _, err := l.Roll(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if st, err := snapshot.Take(l); err != nil || !st.Taken {
		b.Fatalf("snapshot: %+v, %v", st, err)
	}
	for i := total; i < total+tail; i++ {
		if err := l.Append(rec(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name    string
		disable bool
	}{{"snapshot-tail", false}, {"full-log", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				lg, err := OpenWith(fs, "r", ReplayConfig{
					Replay:           func(Record) { n++ },
					DisableSnapshots: mode.disable,
					RetainSegments:   -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				active := lg.ActiveSegment()
				if err := lg.Close(); err != nil {
					b.Fatal(err)
				}
				if err := fs.Remove(segmentName("r", active)); err != nil {
					b.Fatal(err)
				}
				if n != total+tail {
					b.Fatalf("replayed %d records, want %d", n, total+tail)
				}
			}
			b.ReportMetric(float64(total+tail), "cells/op")
		})
	}
}

// TestCursorStartsWithGapAfterTruncation: a cursor opened below the oldest
// retained segment reports how much history it can never see.
func TestCursorStartsWithGapAfterTruncation(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	for i := 0; i < 3; i++ {
		appendN(t, l, i*2, 2)
		if _, err := l.Roll(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	cur := l.NewCursor(Pos{})
	defer cur.Close()
	entries, err := cur.Next(100)
	if err != nil {
		t.Fatal(err)
	}
	if cur.GapSegments() != 2 {
		t.Errorf("cursor gap = %d, want 2 truncated segments", cur.GapSegments())
	}
	if len(entries) != 2 {
		t.Errorf("cursor read %d surviving records, want 2", len(entries))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
