package wal

import (
	"errors"
	"strings"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// A failed append must fail loudly (no silent ack), name the segment, and
// taint the segment so the NEXT append rolls — otherwise records appended
// after a torn tail would be silently dropped at replay, which stops at the
// first bad record per segment.
func TestFailedAppendTaintsAndRolls(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	l, _ := mustOpen(t, ffs, "r")
	recA := Record{Key: []byte("a"), Value: []byte("1"), Ts: 1, Kind: kv.KindPut}
	if err := l.Append(recA); err != nil {
		t.Fatal(err)
	}

	ffs.Arm(vfs.FaultConfig{Seed: 1, PartialWriteProb: 1})
	err := l.Append(Record{Key: []byte("b"), Value: []byte("2"), Ts: 2, Kind: kv.KindPut})
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append over torn write: err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), segmentName("r", 1)) {
		t.Errorf("error %q does not name the segment", err)
	}
	ffs.Disarm()

	// The tainted segment must be abandoned: the next append rolls first.
	recC := Record{Key: []byte("c"), Value: []byte("3"), Ts: 3, Kind: kv.KindPut}
	if err := l.Append(recC); err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveSegment(); got != 2 {
		t.Fatalf("active segment = %d, want 2 (rolled off the tainted one)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed := mustOpen(t, ffs, "r")
	var keys []string
	for _, r := range replayed {
		keys = append(keys, string(r.Key))
	}
	// A replays (intact, segment 1); B was torn and never acked; C must
	// survive because it went to segment 2.
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" {
		t.Fatalf("replayed %v, want [a c]", keys)
	}
}

func TestFailedSyncFailsAppendWithContext(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	l, _ := mustOpen(t, ffs, "r")
	ffs.Arm(vfs.FaultConfig{Seed: 1, SyncErrProb: 1})
	err := l.Append(Record{Key: []byte("k"), Value: []byte("v"), Ts: 1, Kind: kv.KindPut})
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append with failing fsync: err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "wal: sync") || !strings.Contains(err.Error(), segmentName("r", 1)) {
		t.Errorf("error %q lacks sync/segment context", err)
	}
	ffs.Disarm()
	// The log recovers on its own: a later append succeeds on a fresh
	// segment.
	if err := l.Append(Record{Key: []byte("k2"), Value: []byte("v"), Ts: 2, Kind: kv.KindPut}); err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveSegment(); got != 2 {
		t.Fatalf("active segment = %d, want 2", got)
	}
}
