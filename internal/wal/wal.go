// Package wal implements the write-ahead log that makes memtable contents
// durable (§2.2): every put is appended to the log before it is applied to
// the memtable, and on a region-server failure the log is replayed to
// rebuild the memtable. The log is segmented so it can be "rolled forward"
// after a flush (§5.3): a flush starts a new segment, and once the flushed
// SSTable is durable every earlier segment is deleted. Diff-Index piggybacks
// on this exact mechanism — the drain-AUQ-before-flush rule makes the WAL
// act as the log for both the memtable and the asynchronous update queue.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// Record is one durable log entry: a versioned write to a region.
type Record struct {
	Key   []byte
	Value []byte
	Ts    kv.Timestamp
	Kind  kv.Kind
}

// Cell converts the record to its cell form.
func (r Record) Cell() kv.Cell {
	return kv.Cell{Key: r.Key, Value: r.Value, Ts: r.Ts, Kind: r.Kind}
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is a segmented write-ahead log rooted at a directory prefix inside a
// vfs.FS. It is safe for concurrent appends.
type Log struct {
	fs  vfs.FS
	dir string

	mu     sync.Mutex
	seg    vfs.File // active segment
	segID  uint64
	closed bool
	// tainted marks the active segment as having a torn or unsynced tail
	// after a failed append: replay stops at the first bad record, so
	// further appends to the same segment could be silently lost. The next
	// append rolls to a fresh segment first (replay processes segments
	// independently, so records before the tear and in later segments
	// survive).
	tainted bool
	obs     func(recs, bytes int, d time.Duration)
}

// SetObserver installs a callback invoked after every durable append with the
// record count, encoded byte count, and the wall time of the write+sync. The
// LSM layer uses it to feed WAL metrics without the log depending on the
// metrics package. fn runs under the log's append lock, so it must be cheap
// and must not call back into the log.
func (l *Log) SetObserver(fn func(recs, bytes int, d time.Duration)) {
	l.mu.Lock()
	l.obs = fn
	l.mu.Unlock()
}

func segmentName(dir string, id uint64) string {
	return fmt.Sprintf("%s/%020d.wal", dir, id)
}

func parseSegmentID(dir, name string) (uint64, bool) {
	prefix := dir + "/"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	idStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// Open replays every existing segment under dir in ID order, invoking replay
// for each intact record, then opens a fresh active segment for appends.
// Replay stops at the first torn or corrupt record in a segment (data after
// a torn write was never acknowledged, so dropping it is correct).
func Open(fs vfs.FS, dir string, replay func(Record)) (*Log, error) {
	names, err := fs.List(dir + "/")
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var ids []uint64
	for _, name := range names {
		if id, ok := parseSegmentID(dir, name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var maxID uint64
	for _, id := range ids {
		if err := replaySegment(fs, segmentName(dir, id), replay); err != nil {
			return nil, err
		}
		maxID = id
	}

	l := &Log{fs: fs, dir: dir, segID: maxID + 1}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) openSegment() error {
	f, err := l.fs.Create(segmentName(l.dir, l.segID))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	l.seg = f
	l.tainted = false
	return nil
}

// record layout: crc32c(uint32) · payloadLen(uint32) · payload
// payload: ts(int64) · kind(byte) · keyLen(uvarint) · key · valLen(uvarint) · value
func encodeRecord(r Record) []byte {
	payload := make([]byte, 0, 9+2*binary.MaxVarintLen64+len(r.Key)+len(r.Value))
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(r.Ts))
	payload = append(payload, ts[:]...)
	payload = append(payload, byte(r.Kind))
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Value)))
	payload = append(payload, r.Value...)

	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(payload)))
	copy(out[8:], payload)
	return out
}

func decodePayload(payload []byte) (Record, error) {
	var r Record
	if len(payload) < 9 {
		return r, errors.New("wal: payload too short")
	}
	r.Ts = kv.Timestamp(binary.LittleEndian.Uint64(payload[:8]))
	r.Kind = kv.Kind(payload[8])
	rest := payload[9:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < keyLen {
		return r, errors.New("wal: bad key length")
	}
	rest = rest[n:]
	r.Key = append([]byte(nil), rest[:keyLen]...)
	rest = rest[keyLen:]
	valLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < valLen {
		return r, errors.New("wal: bad value length")
	}
	rest = rest[n:]
	if valLen > 0 {
		r.Value = append([]byte(nil), rest[:valLen]...)
	}
	if len(rest[valLen:]) != 0 {
		return r, errors.New("wal: trailing bytes in payload")
	}
	return r, nil
}

func replaySegment(fs vfs.FS, name string, replay func(Record)) error {
	f, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()

	var off int64
	header := make([]byte, 8)
	for {
		if _, err := f.ReadAt(header, off); err != nil {
			if err == io.EOF {
				return nil // clean end, or torn header: stop
			}
			return fmt.Errorf("wal: read %s@%d: %w", name, off, err)
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		payloadLen := binary.LittleEndian.Uint32(header[4:8])
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, off+8); err != nil {
			if err == io.EOF {
				return nil // torn payload: stop replay here
			}
			return fmt.Errorf("wal: read %s@%d: %w", name, off+8, err)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil // corrupt tail: stop replay here
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil // corrupt but checksum-valid payloads should not happen; stop
		}
		replay(rec)
		off += 8 + int64(payloadLen)
	}
}

// Append durably appends a record (the write is synced before returning, the
// durability point of a put in §2.2). It is a single-record AppendBatch;
// every append goes through the same group-commit path.
func (l *Log) Append(r Record) error {
	return l.AppendBatch([]Record{r})
}

// AppendBatch appends several records with a single sync, amortizing the
// commit cost the way HBase group-commits WAL edits.
//
// A failed write or sync FAILS the append — the caller must not ack the
// batch — and taints the active segment: the next append first rolls to a
// fresh segment, so a torn tail can never swallow later acknowledged
// records at replay. Errors carry the segment path so injected disk faults
// (vfs.FaultFS) surface as diagnosable failures at the region-server
// boundary.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, encodeRecord(r)...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.tainted {
		if err := l.rollLocked(); err != nil {
			return err
		}
	}
	var start time.Time
	if l.obs != nil {
		start = time.Now()
	}
	seg := segmentName(l.dir, l.segID)
	if _, err := l.seg.Write(buf); err != nil {
		l.tainted = true
		return fmt.Errorf("wal: append %s: %w", seg, err)
	}
	if err := l.seg.Sync(); err != nil {
		// The bytes may or may not be durable; the record was not acked, so
		// the safe treatment is the same as a torn write.
		l.tainted = true
		return fmt.Errorf("wal: sync %s: %w", seg, err)
	}
	if l.obs != nil {
		l.obs(len(recs), len(buf), time.Since(start))
	}
	return nil
}

// rollLocked closes the active segment and opens the next one. Callers hold
// l.mu. A close error on a tainted segment is reported but does not stop the
// roll: the replacement segment is what restores correctness.
func (l *Log) rollLocked() error {
	if err := l.seg.Close(); err != nil && !l.tainted {
		return fmt.Errorf("wal: close segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	l.segID++
	return l.openSegment()
}

// Roll closes the active segment and starts a new one, returning the ID of
// the new active segment. Called at the start of a flush; all data covered
// by the flush lives in segments with ID < the returned value.
func (l *Log) Roll() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rollLocked(); err != nil {
		return 0, err
	}
	return l.segID, nil
}

// TruncateBefore deletes every segment with ID < keepID — the roll-forward
// step after a successful flush (§5.3).
func (l *Log) TruncateBefore(keepID uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	names, err := l.fs.List(l.dir + "/")
	if err != nil {
		return fmt.Errorf("wal: list: %w", err)
	}
	for _, name := range names {
		if id, ok := parseSegmentID(l.dir, name); ok && id < keepID {
			if err := l.fs.Remove(name); err != nil {
				return fmt.Errorf("wal: truncate segment %s: %w", name, err)
			}
		}
	}
	return nil
}

// ActiveSegment returns the ID of the segment currently receiving appends.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segID
}

// Close closes the log. Further operations fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	return nil
}
