// Package wal implements the write-ahead log that makes memtable contents
// durable (§2.2): every put is appended to the log before it is applied to
// the memtable, and on a region-server failure the log is replayed to
// rebuild the memtable. The log is segmented so it can be "rolled forward"
// after a flush (§5.3): a flush starts a new segment, and once the flushed
// SSTable is durable every earlier segment is deleted. Diff-Index piggybacks
// on this exact mechanism — the drain-AUQ-before-flush rule makes the WAL
// act as the log for both the memtable and the asynchronous update queue.
//
// Beyond data records the log carries two meta record kinds that turn it
// into the system's source of truth (LogBase's "log as database"):
//
//   - checkpoint records, appended by each flush, carry the flush boundary:
//     every record in a segment with ID < the boundary is durable in
//     SSTables. Recovery replays only segments at or past the newest
//     boundary, so retained (not yet truncated) history is never re-applied.
//   - snapshot records, appended by internal/snapshot's double-buffer
//     discipline, fold the sealed unflushed span [from, to) into one record;
//     recovery replays "latest snapshot + tail" instead of the raw span.
//
// Positions. A record's durable position — its sequence number — is the
// pair (segment ID, byte offset); Pos values order records exactly as
// replay delivers them and are resumable: TailLog reads forward from any
// previously returned position, which is what the CDC feed checkpoints.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/snapshot"
	"diffindex/internal/vfs"
)

// Record is one durable log entry: a versioned write to a region, or (for
// Kind ≥ KindCheckpoint) a meta record that never reaches the memtable.
type Record struct {
	Key   []byte
	Value []byte
	Ts    kv.Timestamp
	Kind  kv.Kind
}

// Meta record kinds. They live in the same kind byte as kv.KindPut/Delete
// but above the data range, so replay and tailing can separate them without
// a second framing layer. Meta records are never surfaced to OnReplay.
const (
	// KindCheckpoint marks a flush boundary: its value is the 8-byte LE
	// segment ID below which every record is durable in SSTables.
	KindCheckpoint kv.Kind = 0x10
	// KindSnapshot carries a snapshot payload (see internal/snapshot):
	// the folded cells of the sealed, unflushed segment span [from, to).
	KindSnapshot kv.Kind = 0x11
)

// IsMeta reports whether a record kind is a meta kind (checkpoint or
// snapshot) rather than a data cell.
func IsMeta(k kv.Kind) bool { return k >= KindCheckpoint }

// Cell converts a data record to its cell form.
func (r Record) Cell() kv.Cell {
	return kv.Cell{Key: r.Key, Value: r.Value, Ts: r.Ts, Kind: r.Kind}
}

// Pos is a record's durable log position: its segment ID and byte offset —
// the per-segment sequence number CDC cursors resume from. Positions
// compare in replay order.
type Pos struct {
	Seg uint64
	Off int64
}

// Less orders positions in replay order.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// String renders "segment@offset", the form slow-op logs and tools print.
func (p Pos) String() string { return fmt.Sprintf("%d@%d", p.Seg, p.Off) }

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is a segmented write-ahead log rooted at a directory prefix inside a
// vfs.FS. It is safe for concurrent appends.
type Log struct {
	fs  vfs.FS
	dir string

	mu     sync.Mutex
	seg    vfs.File // active segment
	segID  uint64
	segOff int64 // bytes appended to the active segment
	closed bool
	// tainted marks the active segment as having a torn or unsynced tail
	// after a failed append: replay stops at the first bad record, so
	// further appends to the same segment could be silently lost. The next
	// append rolls to a fresh segment first (replay processes segments
	// independently, so records before the tear and in later segments
	// survive).
	tainted bool
	// flushed is the current flush boundary: segments with ID < flushed are
	// durable in SSTables (recovered from the newest checkpoint record,
	// advanced by Checkpoint).
	flushed uint64
	// retain is the retention knob: 0 truncates freely at the flush
	// boundary, N > 0 keeps the newest N sealed segments regardless, and
	// -1 never truncates (log-as-database mode, required by WAL-sourced
	// index rebuild).
	retain int
	// pins holds per-segment retention pin counts: TruncateBefore never
	// removes a segment ≥ the lowest pinned ID. Cursors pin their read
	// position; a snapshot fold pins its span while it reads.
	pins map[uint64]int
	obs  func(recs, bytes int, d time.Duration)
}

// SetObserver installs a callback invoked after every durable append with the
// record count, encoded byte count, and the wall time of the write+sync. The
// LSM layer uses it to feed WAL metrics without the log depending on the
// metrics package. fn runs under the log's append lock, so it must be cheap
// and must not call back into the log.
func (l *Log) SetObserver(fn func(recs, bytes int, d time.Duration)) {
	l.mu.Lock()
	l.obs = fn
	l.mu.Unlock()
}

// SetRetention sets the segment-retention knob (see Log.retain). Safe to
// call at any time; it affects subsequent TruncateBefore calls.
func (l *Log) SetRetention(n int) {
	l.mu.Lock()
	l.retain = n
	l.mu.Unlock()
}

func segmentName(dir string, id uint64) string {
	return fmt.Sprintf("%s/%020d.wal", dir, id)
}

func parseSegmentID(dir, name string) (uint64, bool) {
	prefix := dir + "/"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	idStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// ReplayConfig configures OpenWith.
type ReplayConfig struct {
	// Replay, when non-nil, receives every recovered data record: the
	// chosen snapshot's folded cells first (if any), then the raw tail.
	Replay func(Record)
	// DisableSnapshots ignores snapshot records entirely and replays the
	// raw records from the flush boundary — the full-replay baseline the
	// chaos harness and the recovery benchmark compare against. State is
	// identical as long as the raw segments a snapshot covers have not
	// been truncated (they never are while the snapshot is current: a
	// snapshot only covers segments at or past the flush boundary).
	DisableSnapshots bool
	// RetainSegments seeds the retention knob (see SetRetention).
	RetainSegments int
}

// Open replays every recoverable record under dir in log order, invoking
// replay for each intact data record, then opens a fresh active segment for
// appends. Replay stops at the first torn or corrupt record in a segment
// (data after a torn write was never acknowledged, so dropping it is
// correct). Recovery honors meta records: it starts at the newest flush
// checkpoint and substitutes the newest usable snapshot for the raw span it
// covers ("latest snapshot + tail").
func Open(fs vfs.FS, dir string, replay func(Record)) (*Log, error) {
	return OpenWith(fs, dir, ReplayConfig{Replay: replay})
}

// snapCand is a snapshot record located by the recovery index scan.
type snapCand struct {
	pos      Pos
	from, to uint64
}

// OpenWith is Open with explicit replay configuration.
func OpenWith(fs vfs.FS, dir string, cfg ReplayConfig) (*Log, error) {
	names, err := fs.List(dir + "/")
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var ids []uint64
	for _, name := range names {
		if id, ok := parseSegmentID(dir, name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Pass 1 — index scan: find the newest flush boundary and every intact
	// snapshot record, reading only frame headers plus the (CRC-verified)
	// payloads of meta frames.
	var (
		boundary uint64
		cands    []snapCand
	)
	for _, id := range ids {
		if err := skimSegment(fs, segmentName(dir, id), func(off int64, kind kv.Kind, payload func() ([]byte, bool)) {
			switch kind {
			case KindCheckpoint:
				if p, ok := payload(); ok {
					if rec, err := decodePayload(p); err == nil && len(rec.Value) == 8 {
						if b := binary.LittleEndian.Uint64(rec.Value); b > boundary {
							boundary = b
						}
					}
				}
			case KindSnapshot:
				if p, ok := payload(); ok {
					if rec, err := decodePayload(p); err == nil {
						if from, to, err := snapshot.DecodeHeader(rec.Value); err == nil {
							cands = append(cands, snapCand{pos: Pos{Seg: id, Off: off}, from: from, to: to})
						}
					}
				}
			}
		}); err != nil {
			return nil, err
		}
	}

	// Pick the newest snapshot whose span starts at or past the flush
	// boundary: anything earlier would re-apply flushed data.
	var snap *snapCand
	if !cfg.DisableSnapshots {
		for i := len(cands) - 1; i >= 0; i-- {
			if cands[i].from >= boundary {
				snap = &cands[i]
				break
			}
		}
	}

	// Pass 2 — replay: the chosen snapshot's folded cells stand in for the
	// raw records of [snap.from, snap.to); the raw tail (segments ≥ the
	// snapshot's upper bound, or ≥ the flush boundary when no snapshot is
	// usable) replays as before.
	start := boundary
	if snap != nil {
		ok, err := replaySnapshot(fs, dir, *snap, cfg.Replay)
		if err != nil {
			return nil, err
		}
		if ok {
			if snap.to > start {
				start = snap.to
			}
		}
	}
	var maxID uint64
	for _, id := range ids {
		if id >= start {
			if err := replaySegment(fs, segmentName(dir, id), cfg.Replay); err != nil {
				return nil, err
			}
		}
		maxID = id
	}

	l := &Log{
		fs:      fs,
		dir:     dir,
		segID:   maxID + 1,
		flushed: boundary,
		retain:  cfg.RetainSegments,
		pins:    make(map[uint64]int),
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// replaySnapshot re-reads one snapshot frame, verifies it end to end and
// emits its folded cells. ok is false when the frame fails verification
// (recovery then falls back to the raw records, which are still on disk).
func replaySnapshot(fs vfs.FS, dir string, cand snapCand, replay func(Record)) (bool, error) {
	f, err := fs.Open(segmentName(dir, cand.pos.Seg))
	if err != nil {
		return false, fmt.Errorf("wal: open snapshot segment: %w", err)
	}
	defer f.Close()
	payload, _, ok, err := readFrame(f, cand.pos.Off)
	if err != nil || !ok {
		return false, err
	}
	rec, err := decodePayload(payload)
	if err != nil || rec.Kind != KindSnapshot {
		return false, nil
	}
	snapRecs, err := snapshot.Decode(rec.Value)
	if err != nil {
		return false, nil
	}
	if replay != nil {
		for _, c := range snapRecs.Cells {
			replay(Record{Key: c.Key, Value: c.Value, Ts: c.Ts, Kind: c.Kind})
		}
	}
	return true, nil
}

func (l *Log) openSegment() error {
	f, err := l.fs.Create(segmentName(l.dir, l.segID))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	l.seg = f
	l.segOff = 0
	l.tainted = false
	return nil
}

// record layout: crc32c(uint32) · payloadLen(uint32) · payload
// payload: ts(int64) · kind(byte) · keyLen(uvarint) · key · valLen(uvarint) · value
func encodeRecord(r Record) []byte {
	payload := make([]byte, 0, 9+2*binary.MaxVarintLen64+len(r.Key)+len(r.Value))
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(r.Ts))
	payload = append(payload, ts[:]...)
	payload = append(payload, byte(r.Kind))
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Value)))
	payload = append(payload, r.Value...)

	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(payload)))
	copy(out[8:], payload)
	return out
}

func decodePayload(payload []byte) (Record, error) {
	var r Record
	if len(payload) < 9 {
		return r, errors.New("wal: payload too short")
	}
	r.Ts = kv.Timestamp(binary.LittleEndian.Uint64(payload[:8]))
	r.Kind = kv.Kind(payload[8])
	rest := payload[9:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < keyLen {
		return r, errors.New("wal: bad key length")
	}
	rest = rest[n:]
	r.Key = append([]byte(nil), rest[:keyLen]...)
	rest = rest[keyLen:]
	valLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) < valLen {
		return r, errors.New("wal: bad value length")
	}
	rest = rest[n:]
	if valLen > 0 {
		r.Value = append([]byte(nil), rest[:valLen]...)
	}
	if len(rest[valLen:]) != 0 {
		return r, errors.New("wal: trailing bytes in payload")
	}
	return r, nil
}

// readFrame reads and CRC-verifies the frame at off. ok is false at a clean
// end, torn tail or checksum mismatch (replay stops there); err reports
// genuine I/O failures only.
func readFrame(f vfs.File, off int64) (payload []byte, next int64, ok bool, err error) {
	header := make([]byte, 8)
	if _, err := f.ReadAt(header, off); err != nil {
		if err == io.EOF {
			return nil, off, false, nil
		}
		return nil, off, false, fmt.Errorf("wal: read @%d: %w", off, err)
	}
	wantCRC := binary.LittleEndian.Uint32(header[0:4])
	payloadLen := binary.LittleEndian.Uint32(header[4:8])
	payload = make([]byte, payloadLen)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		if err == io.EOF {
			return nil, off, false, nil
		}
		return nil, off, false, fmt.Errorf("wal: read @%d: %w", off+8, err)
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, off, false, nil
	}
	return payload, off + 8 + int64(payloadLen), true, nil
}

// replaySegment replays one segment's intact data records, skipping meta
// records, stopping at the first torn or corrupt frame.
func replaySegment(fs vfs.FS, name string, replay func(Record)) error {
	f, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()

	var off int64
	for {
		payload, next, ok, err := readFrame(f, off)
		if err != nil {
			return fmt.Errorf("wal: %s: %w", name, err)
		}
		if !ok {
			return nil // clean end or torn/corrupt tail: stop
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil // corrupt but checksum-valid payloads should not happen; stop
		}
		if !IsMeta(rec.Kind) && replay != nil {
			replay(rec)
		}
		off = next
	}
}

// maxSanePayload bounds the payload length the header-only skim scan trusts
// before reading the (possibly garbage) frame it describes.
const maxSanePayload = 1 << 30

// skimSegment walks a segment reading only frame headers plus one kind
// byte, calling fn for every plausibly framed record. Data frames are NOT
// checksum-verified here (the replay pass is authoritative for them); fn's
// payload thunk reads and CRC-verifies the full payload on demand, which
// pass 1 does only for the rare meta frames it must trust.
func skimSegment(fs vfs.FS, name string, fn func(off int64, kind kv.Kind, payload func() ([]byte, bool))) error {
	f, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()

	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("wal: size %s: %w", name, err)
	}
	var off int64
	header := make([]byte, 8)
	kindBuf := make([]byte, 1)
	for {
		if _, err := f.ReadAt(header, off); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: read %s@%d: %w", name, off, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(header[4:8]))
		if payloadLen < 9 || payloadLen > maxSanePayload || off+8+payloadLen > size {
			return nil // torn or implausible tail: stop skimming
		}
		// The kind byte sits at payload offset 8 (after the timestamp).
		if _, err := f.ReadAt(kindBuf, off+8+8); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: read %s@%d: %w", name, off+16, err)
		}
		frameOff := off
		fn(frameOff, kv.Kind(kindBuf[0]), func() ([]byte, bool) {
			payload, _, ok, err := readFrame(f, frameOff)
			return payload, ok && err == nil
		})
		off += 8 + payloadLen
	}
}

// Append durably appends a record (the write is synced before returning, the
// durability point of a put in §2.2). It is a single-record AppendBatch;
// every append goes through the same group-commit path.
func (l *Log) Append(r Record) error {
	_, err := l.AppendBatchPos([]Record{r})
	return err
}

// AppendBatch appends several records with a single sync, amortizing the
// commit cost the way HBase group-commits WAL edits.
func (l *Log) AppendBatch(recs []Record) error {
	_, err := l.AppendBatchPos(recs)
	return err
}

// AppendBatchPos is AppendBatch returning the durable position of the
// batch's first record — the sequence number trace contexts attach so a
// slow-op log can name the exact log position of a stalled append.
//
// A failed write or sync FAILS the append — the caller must not ack the
// batch — and taints the active segment: the next append first rolls to a
// fresh segment, so a torn tail can never swallow later acknowledged
// records at replay. Errors carry the segment path so injected disk faults
// (vfs.FaultFS) surface as diagnosable failures at the region-server
// boundary.
func (l *Log) AppendBatchPos(recs []Record) (Pos, error) {
	if len(recs) == 0 {
		return Pos{}, nil
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, encodeRecord(r)...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pos, err := l.appendLocked(buf, len(recs))
	return pos, err
}

// appendLocked writes and syncs pre-encoded frames. Callers hold l.mu.
func (l *Log) appendLocked(buf []byte, recs int) (Pos, error) {
	if l.closed {
		return Pos{}, ErrClosed
	}
	if l.tainted {
		if err := l.rollLocked(); err != nil {
			return Pos{}, err
		}
	}
	var start time.Time
	if l.obs != nil {
		start = time.Now()
	}
	seg := segmentName(l.dir, l.segID)
	pos := Pos{Seg: l.segID, Off: l.segOff}
	if _, err := l.seg.Write(buf); err != nil {
		l.tainted = true
		return Pos{}, fmt.Errorf("wal: append %s: %w", seg, err)
	}
	if err := l.seg.Sync(); err != nil {
		// The bytes may or may not be durable; the record was not acked, so
		// the safe treatment is the same as a torn write.
		l.tainted = true
		return Pos{}, fmt.Errorf("wal: sync %s: %w", seg, err)
	}
	l.segOff += int64(len(buf))
	if l.obs != nil {
		l.obs(recs, len(buf), time.Since(start))
	}
	return pos, nil
}

// Checkpoint durably appends a flush-boundary meta record: every record in
// a segment with ID < boundary is now durable in SSTables. Recovery replays
// only from the newest boundary, so segments retained past it (for CDC or
// log-as-database history) are never re-applied.
func (l *Log) Checkpoint(boundary uint64) error {
	var val [8]byte
	binary.LittleEndian.PutUint64(val[:], boundary)
	buf := encodeRecord(Record{Kind: KindCheckpoint, Value: val[:]})
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.appendLocked(buf, 1); err != nil {
		return err
	}
	if boundary > l.flushed {
		l.flushed = boundary
	}
	return nil
}

// FlushedBoundary returns the current flush boundary: segments with ID
// below it are durable in SSTables.
func (l *Log) FlushedBoundary() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// AppendSnapshotPayload durably appends a snapshot meta record carrying an
// internal/snapshot payload (the folded cells of a sealed segment span).
func (l *Log) AppendSnapshotPayload(payload []byte) error {
	buf := encodeRecord(Record{Kind: KindSnapshot, Value: payload})
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.appendLocked(buf, 1)
	return err
}

// Position returns the active segment ID and its append offset — the
// position the next record will be written at.
func (l *Log) Position() (seg uint64, off int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segID, l.segOff
}

// Pin prevents TruncateBefore from removing segments with ID ≥ seg until
// the returned release function is called. CDC cursors pin their read
// position; snapshot folds pin the span they are reading.
func (l *Log) Pin(seg uint64) func() {
	l.mu.Lock()
	l.pins[seg]++
	l.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			if l.pins[seg]--; l.pins[seg] <= 0 {
				delete(l.pins, seg)
			}
			l.mu.Unlock()
		})
	}
}

// rollLocked closes the active segment and opens the next one. Callers hold
// l.mu. A close error on a tainted segment is reported but does not stop the
// roll: the replacement segment is what restores correctness.
func (l *Log) rollLocked() error {
	if err := l.seg.Close(); err != nil && !l.tainted {
		return fmt.Errorf("wal: close segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	l.segID++
	return l.openSegment()
}

// Roll closes the active segment and starts a new one, returning the ID of
// the new active segment. Called at the start of a flush; all data covered
// by the flush lives in segments with ID < the returned value.
func (l *Log) Roll() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rollLocked(); err != nil {
		return 0, err
	}
	return l.segID, nil
}

// TruncateBefore deletes segments with ID < keepID — the roll-forward step
// after a successful flush (§5.3) — and returns how many segments it
// actually removed. The retention guard lowers the effective bound: pinned
// segments (live CDC cursors, in-progress snapshot folds) and the last
// RetainSegments sealed segments survive, and retention -1 disables
// truncation entirely. A segment another actor removed concurrently (a
// chaos restart racing a flush) is skipped, not an error.
func (l *Log) TruncateBefore(keepID uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.retain < 0 {
		return 0, nil // log-as-database mode: keep everything
	}
	keep := keepID
	if l.retain > 0 {
		floor := uint64(0)
		if l.segID > uint64(l.retain) {
			floor = l.segID - uint64(l.retain)
		}
		if floor < keep {
			keep = floor
		}
	}
	for seg := range l.pins {
		if seg < keep {
			keep = seg
		}
	}
	names, err := l.fs.List(l.dir + "/")
	if err != nil {
		return 0, fmt.Errorf("wal: list: %w", err)
	}
	removed := 0
	for _, name := range names {
		if id, ok := parseSegmentID(l.dir, name); ok && id < keep {
			if err := l.fs.Remove(name); err != nil {
				if errors.Is(err, vfs.ErrNotExist) {
					continue // removed concurrently: already gone, not a failure
				}
				return removed, fmt.Errorf("wal: truncate segment %s: %w", name, err)
			}
			removed++
		}
	}
	return removed, nil
}

// ActiveSegment returns the ID of the segment currently receiving appends.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segID
}

// Close closes the log. Further appends fail with ErrClosed; existing
// cursors keep reading (segment files are immutable once sealed).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment %s: %w", segmentName(l.dir, l.segID), err)
	}
	return nil
}
