package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

func mustOpen(t *testing.T, fs vfs.FS, dir string) (*Log, []Record) {
	t.Helper()
	var replayed []Record
	l, err := Open(fs, dir, func(r Record) { replayed = append(replayed, r) })
	if err != nil {
		t.Fatal(err)
	}
	return l, replayed
}

func TestAppendAndReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	l, replayed := mustOpen(t, fs, "region1")
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d records", len(replayed))
	}
	want := []Record{
		{Key: []byte("k1"), Value: []byte("v1"), Ts: 1, Kind: kv.KindPut},
		{Key: []byte("k2"), Value: nil, Ts: 2, Kind: kv.KindDelete},
		{Key: []byte("k1"), Value: []byte("v2"), Ts: 3, Kind: kv.KindPut},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got := mustOpen(t, fs, "region1")
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) ||
			got[i].Ts != want[i].Ts || got[i].Kind != want[i].Kind {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendBatch(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte("v"), Ts: kv.Timestamp(i + 1)})
	}
	if err := l.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got := mustOpen(t, fs, "r")
	if len(got) != 50 {
		t.Fatalf("replayed %d, want 50", len(got))
	}
}

func TestRollAndTruncate(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	l.Append(Record{Key: []byte("old"), Value: []byte("1"), Ts: 1})
	keep, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Key: []byte("new"), Value: []byte("2"), Ts: 2})
	removed, err := l.TruncateBefore(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("TruncateBefore removed %d segments, want 1", removed)
	}
	l.Close()

	_, got := mustOpen(t, fs, "r")
	if len(got) != 1 || string(got[0].Key) != "new" {
		t.Fatalf("after truncate replayed %+v, want only 'new'", got)
	}
}

func TestReplayAcrossMultipleSegments(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 5; i++ {
			l.Append(Record{Key: []byte(fmt.Sprintf("s%d-k%d", seg, i)), Ts: kv.Timestamp(seg*10 + i + 1)})
		}
		if seg < 2 {
			if _, err := l.Roll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close()
	_, got := mustOpen(t, fs, "r")
	if len(got) != 15 {
		t.Fatalf("replayed %d records, want 15", len(got))
	}
	// Records must replay in append order across segments.
	if string(got[0].Key) != "s0-k0" || string(got[14].Key) != "s2-k4" {
		t.Errorf("replay order wrong: first=%s last=%s", got[0].Key, got[14].Key)
	}
}

func TestTornWriteTruncatesTail(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	l.Append(Record{Key: []byte("good"), Value: []byte("1"), Ts: 1})
	seg := l.ActiveSegment()
	l.Close()

	// Simulate a torn write: append garbage (a plausible header with a
	// payload that never made it to disk) to the active segment.
	f, err := fs.Open(fmt.Sprintf("r/%020d.wal", seg))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0x00, 0x00, 0x00})
	f.Close()

	_, got := mustOpen(t, fs, "r")
	if len(got) != 1 || string(got[0].Key) != "good" {
		t.Fatalf("torn tail not dropped: %+v", got)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	l.Append(Record{Key: []byte("a"), Value: []byte("1"), Ts: 1})
	l.Append(Record{Key: []byte("b"), Value: []byte("2"), Ts: 2})
	seg := l.ActiveSegment()
	l.Close()

	// Flip a byte in the second record's payload. MemFS shares the backing
	// array across handles, so mutate through ReadAt's copy trick: rewrite
	// the whole file with one corrupted byte.
	name := fmt.Sprintf("r/%020d.wal", seg)
	f, _ := fs.Open(name)
	sz, _ := f.Size()
	data := make([]byte, sz)
	f.ReadAt(data, 0)
	f.Close()
	data[len(data)-1] ^= 0xFF
	fs.Remove(name)
	g, _ := fs.Create(name)
	g.Write(data)
	g.Close()

	_, got := mustOpen(t, fs, "r")
	if len(got) != 1 || string(got[0].Key) != "a" {
		t.Fatalf("replay past corrupt record: %+v", got)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(key, value []byte, ts int64, del bool) bool {
		if ts < 0 {
			ts = -ts
		}
		kind := kv.KindPut
		if del {
			kind = kv.KindDelete
		}
		in := Record{Key: key, Value: value, Ts: ts, Kind: kind}
		payloadBuf := encodeRecord(in)
		got, err := decodePayload(payloadBuf[8:])
		if err != nil {
			return false
		}
		// bytes.Equal treats nil and empty as equal, which matches the
		// store's semantics for tombstone/key-only values.
		return bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value) &&
			got.Ts == ts && got.Kind == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePayloadErrors(t *testing.T) {
	bad := [][]byte{
		{},
		make([]byte, 8),
		append(make([]byte, 9), 0xFF), // huge keyLen varint then nothing
	}
	for _, p := range bad {
		if _, err := decodePayload(p); err == nil {
			t.Errorf("decodePayload(%x): want error", p)
		}
	}
}

func TestClosedLogErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	l.Close()
	if err := l.Append(Record{Key: []byte("k")}); err != ErrClosed {
		t.Errorf("Append after close: %v", err)
	}
	if _, err := l.Roll(); err != ErrClosed {
		t.Errorf("Roll after close: %v", err)
	}
	if _, err := l.TruncateBefore(1); err != ErrClosed {
		t.Errorf("TruncateBefore after close: %v", err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Errorf("double Close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := mustOpen(t, fs, "r")
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := l.Append(Record{
					Key: []byte(fmt.Sprintf("w%d-%d", w, i)),
					Ts:  kv.Timestamp(w*per + i + 1),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	_, got := mustOpen(t, fs, "r")
	if len(got) != writers*per {
		t.Errorf("replayed %d, want %d", len(got), writers*per)
	}
}

func TestParseSegmentID(t *testing.T) {
	if id, ok := parseSegmentID("d", "d/00000000000000000042.wal"); !ok || id != 42 {
		t.Errorf("got (%d, %v)", id, ok)
	}
	for _, name := range []string{"other/1.wal", "d/abc.wal", "d/1.txt", "d1.wal"} {
		if _, ok := parseSegmentID("d", name); ok {
			t.Errorf("parseSegmentID(%q) unexpectedly ok", name)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	fs := vfs.NewMemFS()
	l, err := Open(fs, "bench", func(Record) {})
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Key: make([]byte, 32), Value: make([]byte, 1024), Ts: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(rec)
	}
}

func TestRecordCell(t *testing.T) {
	r := Record{Key: []byte("k"), Value: []byte("v"), Ts: 9, Kind: kv.KindDelete}
	c := r.Cell()
	if string(c.Key) != "k" || string(c.Value) != "v" || c.Ts != 9 || c.Kind != kv.KindDelete {
		t.Errorf("Cell = %+v", c)
	}
}

// FuzzReplaySegment feeds arbitrary bytes as a WAL segment: replay must
// never panic, and every record it yields must round-trip through the
// encoder (i.e. only records that were validly encoded are surfaced).
func FuzzReplaySegment(f *testing.F) {
	good := encodeRecord(Record{Key: []byte("k"), Value: []byte("v"), Ts: 7, Kind: kv.KindPut})
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good[:5]...)) // torn tail
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x10, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMemFS()
		w, err := fs.Create("d/00000000000000000001.wal")
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()
		var got []Record
		l, err := Open(fs, "d", func(r Record) { got = append(got, r) })
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		l.Close()
		for _, r := range got {
			enc := encodeRecord(r)
			dec, err := decodePayload(enc[8:])
			if err != nil || !bytes.Equal(dec.Key, r.Key) || !bytes.Equal(dec.Value, r.Value) {
				t.Fatalf("yielded record does not round-trip: %+v", r)
			}
		}
	})
}
