package wal

import (
	"errors"
	"fmt"
	"sort"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// Entry is a committed data record paired with its durable log position.
type Entry struct {
	Pos    Pos
	Record Record
}

// ReadSealed streams the intact data cells of sealed segments in [from, to)
// in log order, skipping meta records and stopping at each segment's first
// torn frame (exactly what replay would deliver for that span). Segments
// already truncated are skipped. Used by the snapshot fold.
func (l *Log) ReadSealed(from, to uint64, fn func(kv.Cell)) error {
	for id := from; id < to; id++ {
		err := replaySegment(l.fs, segmentName(l.dir, id), func(r Record) {
			fn(r.Cell())
		})
		if err != nil {
			if errors.Is(err, vfs.ErrNotExist) {
				continue
			}
			return err
		}
	}
	return nil
}

// TailLog reads forward from a previously returned position, delivering up
// to max committed data records (meta records are skipped but advance the
// position). It returns the entries, the position to resume from, and the
// number of log segments that were truncated away underneath the given
// position — a non-zero gap means the consumer lost history and must
// re-bootstrap (e.g. RebuildIndexFromLog from a base snapshot).
//
// Positions must be frame-aligned: the zero Pos (start of the log) and any
// Pos returned by TailLog or AppendBatchPos qualify. Tailing the active
// segment is safe — a half-visible frame fails its checksum and the
// position simply does not advance past it until the append completes.
// TailLog keeps working on a closed log (sealed files remain readable), so
// tooling can inspect a store post-shutdown.
func (l *Log) TailLog(from Pos, max int) ([]Entry, Pos, int, error) {
	if max <= 0 {
		max = 1 << 10
	}
	names, err := l.fs.List(l.dir + "/")
	if err != nil {
		return nil, from, 0, fmt.Errorf("wal: list: %w", err)
	}
	var ids []uint64
	for _, name := range names {
		if id, ok := parseSegmentID(l.dir, name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	l.mu.Lock()
	active := l.segID
	l.mu.Unlock()

	pos := from
	gap := 0
	// Truncation removes only a prefix of the contiguous segment sequence,
	// so the one gap scenario is a position below the oldest survivor.
	// Segment IDs start at 1, so the zero Pos (log start) reaches the first
	// segment of a fresh log with no gap.
	if len(ids) > 0 && pos.Seg < ids[0] {
		start := pos.Seg
		if start == 0 {
			start = 1
		}
		if ids[0] > start {
			gap = int(ids[0] - start)
		}
		pos = Pos{Seg: ids[0]}
	}
	var out []Entry
	for _, id := range ids {
		if id < pos.Seg {
			continue
		}
		if id > pos.Seg {
			pos = Pos{Seg: id}
		}
		stop, err := l.tailSegment(id, &pos, &out, max, id < active)
		if err != nil {
			if errors.Is(err, vfs.ErrNotExist) {
				continue // truncated between List and Open; keep going
			}
			return out, pos, gap, err
		}
		if stop || len(out) >= max {
			return out, pos, gap, nil
		}
	}
	return out, pos, gap, nil
}

// tailSegment scans one segment from pos.Off, appending data entries and
// advancing pos. stop is true when the scan must not advance into later
// segments (an unfinished frame at the active segment's tail). sealed
// segments with a torn tail advance pos to the next segment: the tear is
// permanent and everything after it was never acknowledged.
func (l *Log) tailSegment(id uint64, pos *Pos, out *[]Entry, max int, sealed bool) (stop bool, err error) {
	f, err := l.fs.Open(segmentName(l.dir, id))
	if err != nil {
		return false, err
	}
	defer f.Close()
	for len(*out) < max {
		payload, next, ok, err := readFrame(f, pos.Off)
		if err != nil {
			return false, err
		}
		if !ok {
			if sealed {
				*pos = Pos{Seg: id + 1}
				return false, nil
			}
			return true, nil // active segment tail: wait for more appends
		}
		rec, decErr := decodePayload(payload)
		framePos := *pos
		pos.Off = next
		if decErr != nil || IsMeta(rec.Kind) {
			continue
		}
		*out = append(*out, Entry{Pos: framePos, Record: rec})
	}
	return false, nil
}

// Cursor is a resumable, retention-pinning reader over committed data
// records — the primitive the CDC feed is built on. While a cursor is open,
// TruncateBefore will not remove the segment it points at or anything
// newer, bounding how far a slow consumer can fall behind the truncation
// horizon. Close the cursor to release the pin. A Cursor is not safe for
// concurrent use.
type Cursor struct {
	l     *Log
	pos   Pos
	unpin func()
	gap   int
}

// NewCursor opens a cursor at from (use the zero Pos for the start of the
// retained log) and pins retention there.
func (l *Log) NewCursor(from Pos) *Cursor {
	return &Cursor{l: l, pos: from, unpin: l.Pin(from.Seg)}
}

// Next returns up to max committed records past the cursor's position and
// advances it. An empty result means the cursor is caught up with the
// active segment's durable tail.
func (c *Cursor) Next(max int) ([]Entry, error) {
	entries, next, gap, err := c.l.TailLog(c.pos, max)
	if err != nil {
		return nil, err
	}
	c.gap += gap
	if next != c.pos {
		// Re-pin at the new position before releasing the old pin so
		// truncation can never slip between the two.
		unpin := c.l.Pin(next.Seg)
		c.unpin()
		c.unpin = unpin
		c.pos = next
	}
	return entries, nil
}

// Pos returns the cursor's resume position.
func (c *Cursor) Pos() Pos { return c.pos }

// GapSegments returns the total number of truncated-away segments the
// cursor has skipped — non-zero means the consumer missed history.
func (c *Cursor) GapSegments() int { return c.gap }

// Lag returns how many segments the cursor trails the active segment by.
func (c *Cursor) Lag() uint64 {
	active := c.l.ActiveSegment()
	if c.pos.Seg >= active {
		return 0
	}
	return active - c.pos.Seg
}

// Close releases the cursor's retention pin. The cursor remains readable
// (Next keeps working) but no longer holds segments against truncation.
func (c *Cursor) Close() {
	c.unpin()
}
