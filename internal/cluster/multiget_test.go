package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
)

// TestMultiGetSpansRegionsInputOrder checks the core batching contract:
// specs spanning ≥3 regions, given in an order that bears no relation to
// region layout, come back positionally — out[i] answers specs[i] — with
// misses reported in place.
func TestMultiGetSpansRegionsInputOrder(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k10", "k20")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}

	// Interleave the regions and sprinkle misses: 29, 0, 28, 1, … plus a
	// missing key after every fifth spec.
	var specs []GetSpec
	var want []*kv.Cell
	for i := 0; i < 15; i++ {
		for _, j := range []int{29 - i, i} {
			specs = append(specs, GetSpec{Key: cells[j].Key})
			want = append(want, &cells[j])
			if len(specs)%5 == 0 {
				specs = append(specs, GetSpec{Key: []byte(fmt.Sprintf("miss%02d", i))})
				want = append(want, nil)
			}
		}
	}

	out, err := cl.MultiGet("idx", specs, kv.MaxTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(specs) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(specs))
	}
	for i, w := range want {
		if w == nil {
			if out[i].Found {
				t.Errorf("out[%d]: found %+v for missing key %q", i, out[i].Cell, specs[i].Key)
			}
			continue
		}
		if !out[i].Found || !bytes.Equal(out[i].Cell.Value, w.Value) || out[i].Cell.Ts != w.Ts {
			t.Errorf("out[%d] = %+v found=%v, want (%q, %d)", i, out[i].Cell, out[i].Found, w.Value, w.Ts)
		}
	}
}

// TestMultiGetStaleRouteRetries splits a region behind the client's warm
// partition map: the groups dispatched at the dead parent must bounce,
// invalidate the map, regroup against the fresh layout and retry — and the
// results must still land in input order.
func TestMultiGetStaleRouteRetries(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k10")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}

	// Split the upper region after the map warmed: routes for [k10,+∞) are
	// now stale.
	regions, err := c.Master.RegionsOf("idx")
	if err != nil {
		t.Fatal(err)
	}
	var upper RegionInfo
	for _, ri := range regions {
		if ri.Contains([]byte("k25")) {
			upper = ri
		}
	}
	if err := c.Master.SplitRegion(upper.ID, []byte("k20")); err != nil {
		t.Fatal(err)
	}

	specs := make([]GetSpec, len(cells))
	for i := range cells {
		specs[len(cells)-1-i] = GetSpec{Key: cells[i].Key} // reverse order
	}
	out, err := cl.MultiGet("idx", specs, kv.MaxTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want := cells[len(cells)-1-i]
		if !out[i].Found || !bytes.Equal(out[i].Cell.Value, want.Value) {
			t.Errorf("out[%d] (%q) = %+v found=%v, want %q", i, spec.Key, out[i].Cell, out[i].Found, want.Value)
		}
	}
}

// TestMultiGetServerCrashRetries crashes a region server between the write
// and the batched read: the stale groups fail with ErrServerDown, the
// regions recover elsewhere, and the retried MultiGet must still see every
// cell.
func TestMultiGetServerCrashRetries(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k10", "k20")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}

	// Crash the server hosting the middle region (map stays warm and stale).
	regions, err := c.Master.RegionsOf("idx")
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, ri := range regions {
		if ri.Contains([]byte("k15")) {
			victim = ri.Server
		}
	}
	if err := c.Master.CrashServer(victim); err != nil {
		t.Fatal(err)
	}

	specs := make([]GetSpec, len(cells))
	for i := range cells {
		specs[i] = GetSpec{Key: cells[i].Key}
	}
	out, err := cl.MultiGet("idx", specs, kv.MaxTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !out[i].Found || !bytes.Equal(out[i].Cell.Value, cells[i].Value) {
			t.Errorf("out[%d] = %+v found=%v, want %q", i, out[i].Cell, out[i].Found, cells[i].Value)
		}
	}
}

// TestMultiGetRowInputOrder checks the row-batched variant against GetRow:
// same visible columns, positional results, nil for rows with no visible
// data.
func TestMultiGetRowInputOrder(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("users", splits("m", "t")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	rows := [][]byte{[]byte("alice"), []byte("mike"), []byte("zoe"), []byte("bob"), []byte("tina")}
	for i, row := range rows {
		cols := map[string][]byte{
			"city": []byte(fmt.Sprintf("city-%d", i)),
			"age":  []byte(fmt.Sprintf("%d", 20+i)),
		}
		if _, err := cl.Put("users", row, cols); err != nil {
			t.Fatal(err)
		}
	}

	// Query in scrambled order with misses interleaved.
	query := [][]byte{[]byte("zoe"), []byte("ghost"), []byte("alice"), []byte("tina"), []byte("nobody"), []byte("mike"), []byte("bob")}
	got, err := cl.MultiGetRow("users", query)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range query {
		want, err := cl.GetRow("users", row)
		if err != nil {
			t.Fatal(err)
		}
		if (got[i] == nil) != (want == nil) {
			t.Errorf("row %q: MultiGetRow nil=%v, GetRow nil=%v", row, got[i] == nil, want == nil)
			continue
		}
		if len(got[i]) != len(want) {
			t.Errorf("row %q: %d cols, want %d", row, len(got[i]), len(want))
		}
		for col, val := range want {
			if !bytes.Equal(got[i][col], val) {
				t.Errorf("row %q col %q = %q, want %q", row, col, got[i][col], val)
			}
		}
	}
}

// TestBroadcastScanConcurrentDeterministic hammers BroadcastScan from many
// goroutines (exercised under -race by ci.sh): every call must return the
// identical, deterministic result — all regions' entries in region (routing)
// order regardless of fan-out scheduling.
func TestBroadcastScanConcurrentDeterministic(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k08", "k16", "k24")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}

	baseline, err := cl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != len(cells) {
		t.Fatalf("baseline has %d entries, want %d", len(baseline), len(cells))
	}

	const goroutines = 8
	results := make([][]lsm.ScanResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine gets its own client: SetFanOut and the route
			// cache are per-client, but all fan-out machinery still runs
			// concurrently across goroutines AND within each call.
			gcl := NewClient(c, fmt.Sprintf("client-%d", g))
			results[g], errs[g] = gcl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 0)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if len(results[g]) != len(baseline) {
			t.Fatalf("goroutine %d: %d entries, want %d", g, len(results[g]), len(baseline))
		}
		for i := range baseline {
			if !bytes.Equal(results[g][i].Key, baseline[i].Key) || !bytes.Equal(results[g][i].Value, baseline[i].Value) {
				t.Fatalf("goroutine %d: result[%d] = %q, want %q (non-deterministic order)", g, i, results[g][i].Key, baseline[i].Key)
			}
		}
	}
}

// TestBroadcastScanPerRegionLimit checks the pushed-down limit semantics:
// limit bounds EACH region's contribution, and each region returns its
// smallest entries — the property readLocalIndex's global sort-and-truncate
// relies on.
func TestBroadcastScanPerRegionLimit(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k10", "k20")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	if err := cl.MultiApply("idx", multiApplyCells(30, 100)); err != nil {
		t.Fatal(err)
	}

	results, err := cl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k00", "k01", "k02", "k10", "k11", "k12", "k20", "k21", "k22"}
	if len(results) != len(want) {
		t.Fatalf("got %d entries, want %d", len(results), len(want))
	}
	for i, w := range want {
		if string(results[i].Key) != w {
			t.Errorf("result[%d] = %q, want %q", i, results[i].Key, w)
		}
	}
}

// TestBroadcastScanAfterMergeNoDuplicates merges two regions behind the
// client's warm partition map: the merged region spans two scatter branches,
// and without the ownership rule both branches would broadcast the same
// whole-region scan. Every key must come back exactly once.
func TestBroadcastScanAfterMergeNoDuplicates(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k10", "k20")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}
	// Warm the scan snapshot, then merge the lower two regions behind it.
	if _, err := cl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 0); err != nil {
		t.Fatal(err)
	}
	regions, err := c.Master.RegionsOf("idx")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.MergeRegions(regions[0].ID, regions[1].ID); err != nil {
		t.Fatal(err)
	}

	results, err := cl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, res := range results {
		seen[string(res.Key)]++
	}
	for _, cell := range cells {
		switch n := seen[string(cell.Key)]; n {
		case 1:
		case 0:
			t.Errorf("key %q missing after merge", cell.Key)
		default:
			t.Errorf("key %q returned %d times after merge", cell.Key, n)
		}
	}
	if len(results) != len(cells) {
		t.Errorf("got %d entries, want %d", len(results), len(cells))
	}
}

// TestRawScanParallelMatchesSerial checks the scatter-gather RawScan against
// the serial (fan-out 1) execution for a range+limit query: identical
// results, first-limit-in-key-order semantics preserved.
func TestRawScanParallelMatchesSerial(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", splits("k08", "k16", "k24")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	if err := cl.MultiApply("idx", multiApplyCells(30, 100)); err != nil {
		t.Fatal(err)
	}

	serial := NewClient(c, "serial")
	serial.SetFanOut(1)
	for _, tc := range []struct {
		start, end string
		limit      int
	}{
		{"", "", 0},
		{"", "", 7},
		{"k05", "k27", 0},
		{"k05", "k27", 9},
		{"k12", "k14", 2},
	} {
		var start, end []byte
		if tc.start != "" {
			start = []byte(tc.start)
		}
		if tc.end != "" {
			end = []byte(tc.end)
		}
		want, err := serial.RawScan("idx", start, end, kv.MaxTimestamp, tc.limit)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.RawScan("idx", start, end, kv.MaxTimestamp, tc.limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("[%q,%q) limit %d: %d entries, want %d", tc.start, tc.end, tc.limit, len(got), len(want))
			continue
		}
		for i := range want {
			if !bytes.Equal(got[i].Key, want[i].Key) {
				t.Errorf("[%q,%q) limit %d: result[%d] = %q, want %q", tc.start, tc.end, tc.limit, i, got[i].Key, want[i].Key)
			}
		}
	}
}
