package cluster

import (
	"sync"
	"sync/atomic"
)

// DefaultReadFanOut is the default bound on concurrent per-region RPCs a
// single client operation may have in flight (Config.ReadFanOut overrides).
// Regions are independent servers, so a scatter-gather read's latency is
// the slowest region's latency — not the sum — as long as the fan-out width
// covers the region count; 8 covers the common deployments while keeping a
// single client from monopolizing the network.
const DefaultReadFanOut = 8

// runFanOut executes fn(0) … fn(n-1) under a bounded worker pool of the
// given width and returns the lowest-index error (first-error semantics in
// input order, deterministic regardless of goroutine scheduling). Every
// index runs even when another fails — batches are small and callers own
// per-slot results, so finishing the wave keeps slot state consistent.
// width ≤ 1 degenerates to a serial loop with early exit (the historical
// behaviour, kept for baselines and tests).
func runFanOut(width, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if width <= 0 {
		width = DefaultReadFanOut
	}
	if width == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if width > n {
		width = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
