package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTopologyChurnProperty drives random puts, deletes, splits, merges and
// crashes against one table and checks the table's contents against a model
// map after every topology change and at the end. This is the integration
// invariant behind elasticity: topology changes never lose, duplicate or
// corrupt data.
func TestTopologyChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Servers: 4})
		defer c.Close()
		if err := c.Master.CreateTable("t", nil); err != nil {
			t.Log(err)
			return false
		}
		cl := NewClient(c, "churn")
		model := map[string]string{}

		verify := func(stage string) bool {
			rows, err := cl.Scan("t", nil, nil, 0)
			if err != nil {
				t.Logf("seed %d %s: scan: %v", seed, stage, err)
				return false
			}
			if len(rows) != len(model) {
				t.Logf("seed %d %s: %d rows, model has %d", seed, stage, len(rows), len(model))
				return false
			}
			for _, r := range rows {
				if model[string(r.Key)] != string(r.Cols["v"]) {
					t.Logf("seed %d %s: row %q = %q, model %q", seed, stage, r.Key, r.Cols["v"], model[string(r.Key)])
					return false
				}
			}
			return true
		}

		crashes := 0
		for op := 0; op < 120; op++ {
			switch rng.Intn(12) {
			case 0: // split a random region at a random existing row
				if len(model) == 0 {
					continue
				}
				regions, _ := c.Master.RegionsOf("t")
				var keys []string
				for k := range model {
					keys = append(keys, k)
				}
				splitKey := []byte(keys[rng.Intn(len(keys))])
				for _, ri := range regions {
					if ri.Contains(splitKey) && (ri.Start == nil || string(ri.Start) != string(splitKey)) {
						if err := c.Master.SplitRegion(ri.ID, splitKey); err != nil {
							t.Logf("seed %d: split: %v", seed, err)
							return false
						}
						break
					}
				}
				if !verify("after split") {
					return false
				}
			case 1: // merge a random adjacent pair
				regions, _ := c.Master.RegionsOf("t")
				if len(regions) < 2 {
					continue
				}
				i := rng.Intn(len(regions) - 1)
				if err := c.Master.MergeRegions(regions[i].ID, regions[i+1].ID); err != nil {
					t.Logf("seed %d: merge: %v", seed, err)
					return false
				}
				if !verify("after merge") {
					return false
				}
			case 2: // crash a server (at most twice, keep 2 alive)
				if crashes < 2 && len(c.LiveServerIDs()) > 2 {
					victim := c.LiveServerIDs()[rng.Intn(len(c.LiveServerIDs()))]
					if err := c.Master.CrashServer(victim); err != nil {
						t.Logf("seed %d: crash: %v", seed, err)
						return false
					}
					crashes++
					if !verify("after crash") {
						return false
					}
				}
			case 3: // delete
				if len(model) == 0 {
					continue
				}
				for k := range model {
					if _, err := cl.Delete("t", []byte(k), nil); err != nil {
						t.Logf("seed %d: delete: %v", seed, err)
						return false
					}
					delete(model, k)
					break
				}
			default: // put
				k := fmt.Sprintf("row%03d", rng.Intn(60))
				v := fmt.Sprintf("v%d", op)
				if _, err := cl.Put("t", []byte(k), map[string][]byte{"v": []byte(v)}); err != nil {
					t.Logf("seed %d: put: %v", seed, err)
					return false
				}
				model[k] = v
			}
		}
		return verify("final")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
