// Package cluster implements the distributed, partitioned store the paper
// deploys Diff-Index on: the HBase architecture of §2.2. Tables are split
// into key-range regions; each region is one LSM store hosted by a region
// server; a master assigns regions, detects failures and reassigns; clients
// cache the partition map and route requests over the simulated network.
//
// The package also defines the coprocessor extension point (§7): per-table
// observers that intercept puts, deletes, flushes and WAL replay — the hooks
// Diff-Index's scheme observers plug into without touching store internals.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
	"diffindex/internal/simnet"
	"diffindex/internal/vfs"
)

// Sentinel errors surfaced by cluster RPCs.
var (
	// ErrServerDown is returned by every operation on a crashed server.
	ErrServerDown = errors.New("cluster: region server is down")
	// ErrRegionNotFound means the addressed region is not hosted by the
	// server (stale client cache after a reassignment).
	ErrRegionNotFound = errors.New("cluster: region not hosted here")
	// ErrNoSuchTable is returned for operations on unknown tables.
	ErrNoSuchTable = errors.New("cluster: no such table")
	// ErrTableExists is returned when creating a table that already exists.
	ErrTableExists = errors.New("cluster: table already exists")
	// ErrNoLiveServers means region assignment found no live server.
	ErrNoLiveServers = errors.New("cluster: no live region servers")
)

// Config sizes a simulated cluster.
type Config struct {
	// Servers is the number of region servers. Defaults to 3.
	Servers int
	// Net is the network latency model.
	Net simnet.Config
	// Disk is the simulated disk profile charged on SSTable/WAL I/O.
	Disk vfs.LatencyProfile
	// BaseFS, when non-nil, is the file system the cluster's LatencyFS
	// wraps instead of a fresh MemFS. The chaos harness injects a
	// vfs.FaultFS here so disk faults compose with the latency model.
	BaseFS vfs.FS
	// BlockCacheBytes sizes each region server's block cache (§8.1 gives
	// 25% of an 8 GiB heap; scaled down here). Zero means the 32 MiB
	// default; a negative value disables caching entirely.
	BlockCacheBytes int64
	// MemtableBytes is the per-region flush threshold. Defaults to 4 MiB.
	MemtableBytes int64
	// MaxVersions is per-key version retention at compaction. Defaults to 3.
	MaxVersions int
	// CompactionThreshold is the table count triggering compaction.
	// Defaults to 4.
	CompactionThreshold int
	// CompactionFanIn bounds how many SSTables one compaction round merges
	// per region store. Defaults to 4.
	CompactionFanIn int
	// MaxConcurrentCompactions bounds concurrent compaction rounds per
	// region store. Defaults to 2.
	MaxConcurrentCompactions int
	// ReadFanOut bounds how many per-region RPCs one client operation may
	// have in flight at once on the batched/scatter-gather paths (MultiGet,
	// MultiApply, BroadcastScan, RawScan). Defaults to 8; 1 forces the
	// serial behaviour.
	ReadFanOut int
	// VerifyChecksums makes every region store verify SSTable block CRCs on
	// read (see lsm.Options.VerifyChecksums).
	VerifyChecksums bool
	// LearnedIndex makes every region store train a learned block model on
	// newly written SSTables and serve point lookups through it, with
	// verified fallback to binary search (see lsm.Options.LearnedIndex).
	LearnedIndex bool
	// LearnedIndexEpsilon / BlockRestartInterval tune the model error bound
	// (blocks) and in-block restart spacing (entries); zero values take the
	// sstable defaults (ε=8, K=16).
	LearnedIndexEpsilon  int
	BlockRestartInterval int
	// DisableScrub turns off the per-region background integrity scrubber.
	DisableScrub bool
	// SnapshotInterval, when > 0, runs periodic snapshot-in-log rounds on
	// every region store (see lsm.Options.SnapshotInterval): the WAL's
	// sealed unflushed span is folded into snapshot records so recovery
	// replays "latest snapshot + tail".
	SnapshotInterval time.Duration
	// WALRetainSegments is the per-region WAL retention knob (see
	// lsm.Options.WALRetainSegments): 0 truncates at each flush boundary,
	// N > 0 keeps the newest N sealed segments for CDC consumers, -1 never
	// truncates (log-as-database mode, required by RebuildIndexFromLog).
	WALRetainSegments int
	// ScrubInterval / ScrubBlockPace tune the per-region scrubber (zero
	// values take the lsm defaults: 5s between cycles, 1ms between blocks).
	ScrubInterval  time.Duration
	ScrubBlockPace time.Duration
	// Metrics is the registry every layer of the cluster records into. A
	// nil value gets a fresh registry, so metrics are always on; the
	// registry is lock-free on the hot path.
	Metrics *metrics.Registry
	// DisableTracing turns off per-operation traces (the slow-op log and
	// op-latency histograms); stage histograms still record.
	DisableTracing bool
	// SlowOpK is the size of the slow-op log. Defaults to 32.
	SlowOpK int
}

func (c Config) withDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 32 << 20
	}
	if c.ReadFanOut <= 0 {
		c.ReadFanOut = DefaultReadFanOut
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.SlowOpK <= 0 {
		c.SlowOpK = 32
	}
	return c
}

// RegionCtx is the server-side context handed to coprocessor callbacks.
type RegionCtx struct {
	Region  *Region
	Server  *RegionServer
	Cluster *Cluster
	// Trace is the trace of the client operation that triggered the
	// callback (nil when tracing is disabled or the callback has no
	// originating operation, e.g. PreFlush). Coprocessors add their stage
	// durations to it.
	Trace *metrics.Trace
}

// Coprocessor is the per-table server-side extension point, mirroring
// HBase's observer coprocessors (§7). Diff-Index registers one observer per
// indexed table; its callbacks implement the maintenance schemes.
type Coprocessor interface {
	// PostPut runs on the hosting region server after a row put has been
	// applied to the base region (and before the RPC returns to the
	// client): the synchronous part of index maintenance.
	PostPut(ctx RegionCtx, row []byte, cols map[string][]byte, ts kv.Timestamp) error
	// PostDelete runs after row columns have been tombstoned.
	PostDelete(ctx RegionCtx, row []byte, cols []string, ts kv.Timestamp) error
	// PreFlush runs at the start of a region flush while writes are paused:
	// Diff-Index drains the AUQ here (§5.3). A non-nil error aborts the
	// flush before the memtable swap — returned when the drain cannot
	// complete (region closing), so the WAL keeps the undrained work.
	PreFlush(ctx RegionCtx) error
	// OnReplay is invoked for every cell recovered from the WAL when a
	// region reopens: Diff-Index re-enqueues index work (§5.3).
	OnReplay(ctx RegionCtx, c kv.Cell)
	// OnRegionClose is invoked when a region stops being served here
	// (server crash or shutdown), before its store closes. Diff-Index
	// tears down the region's AUQ: pending entries are dropped, to be
	// reconstructed by WAL replay on the next server (§5.3).
	OnRegionClose(ctx RegionCtx)
	// PostCompact runs after a compaction round of the region's store
	// garbage-collects cells, in the compaction goroutine with no store
	// locks held. Diff-Index validates the index entries that the dropped
	// base values point to — cleanse piggybacked on merge I/O instead of a
	// dedicated batch scan.
	PostCompact(ctx RegionCtx, gc lsm.CompactionGC)
}

// Cluster owns the shared infrastructure: the (simulated) distributed file
// system, the network, the master and the region servers.
type Cluster struct {
	cfg Config

	// FS is the shared fault-tolerant file system (the HDFS stand-in): any
	// server can open any region's files, which is what makes WAL-replay
	// recovery on a different server possible (§5.3).
	FS *vfs.LatencyFS
	// Net simulates the cluster network.
	Net *simnet.Network
	// Master is the management node (table creation, region assignment,
	// failure handling).
	Master *Master

	// smu guards the mutable server set: AddServer grows it at runtime and
	// DecommissionServer marks members removed, so every reader takes the
	// lock. order keeps the IDs in creation order (rs1, rs2, …) — a stable
	// ordering that survives additions, unlike sorting (rs10 < rs2).
	smu          sync.RWMutex
	servers      map[string]*RegionServer
	order        []string
	nextServerID int

	coprocs map[string]Coprocessor // by table name
	// retainTomb marks tables whose stores must keep delete markers
	// through every compaction (global-index tables: at-least-once async
	// delivery can re-insert a superseded entry long after its delete, and
	// only a surviving marker keeps it invisible). Like coprocs, written
	// before the table is created, then read-only.
	retainTomb map[string]bool

	metrics *metrics.Registry
	tracer  *metrics.Tracer

	// Scatter-gather instrumentation, shared by every client of the
	// cluster: batch waves issued (one per MultiGet/MultiGetRow/MultiApply/
	// BroadcastScan/RawScan), the per-region RPCs those waves fanned out
	// into, and the items they carried. RPCs/waves is the realized fan-out
	// per wave; items/RPCs is the batching factor.
	fanoutWaves *metrics.Counter
	fanoutRPCs  *metrics.Counter
	fanoutItems *metrics.Counter

	// clock issues write timestamps. The paper uses each region server's
	// System.currentTimeMillis (NTP-synchronized wall clocks); a single
	// shared counter is the deterministic logical equivalent and keeps
	// timestamps comparable when a region moves between servers
	// (DESIGN.md substitution 3).
	clock *kv.Clock
}

// New builds a cluster with cfg.Servers region servers, all live.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	base := cfg.BaseFS
	if base == nil {
		base = vfs.NewMemFS()
	}
	c := &Cluster{
		cfg:        cfg,
		FS:         vfs.NewLatencyFS(base, cfg.Disk),
		Net:        simnet.New(cfg.Net),
		servers:    make(map[string]*RegionServer),
		coprocs:    make(map[string]Coprocessor),
		retainTomb: make(map[string]bool),
		clock:      kv.NewClock(1),
		metrics:    cfg.Metrics,
		tracer:     metrics.NewTracer(cfg.Metrics, cfg.SlowOpK, cfg.DisableTracing),
	}
	c.fanoutWaves = cfg.Metrics.Counter("diffindex_fanout_waves_total")
	c.fanoutRPCs = cfg.Metrics.Counter("diffindex_fanout_rpcs_total")
	c.fanoutItems = cfg.Metrics.Counter("diffindex_fanout_items_total")
	cfg.Metrics.RegisterGaugeFunc("diffindex_read_fanout_width", func() int64 {
		return int64(cfg.ReadFanOut)
	})
	c.Master = newMaster(c)
	for i := 0; i < cfg.Servers; i++ {
		id := fmt.Sprintf("rs%d", i+1)
		c.servers[id] = newRegionServer(c, id)
		c.order = append(c.order, id)
	}
	c.nextServerID = cfg.Servers + 1
	return c
}

// AddServer brings a brand-new, empty region server online and returns its
// ID. The server holds no regions until the balancer (or an explicit
// MoveRegion) hands it load — the live scale-out path of the elastic
// cluster.
func (c *Cluster) AddServer() string {
	c.smu.Lock()
	id := fmt.Sprintf("rs%d", c.nextServerID)
	c.nextServerID++
	c.servers[id] = newRegionServer(c, id)
	c.order = append(c.order, id)
	c.smu.Unlock()
	return id
}

// noteWave records scatter-gather fan-out activity: rpcs per-region calls
// carrying items batched items. newWave marks the first dispatch round of a
// wave; retry rounds add their RPCs to the wave already counted.
func (c *Cluster) noteWave(rpcs, items int, newWave bool) {
	if newWave {
		c.fanoutWaves.Inc()
	}
	c.fanoutRPCs.Add(int64(rpcs))
	c.fanoutItems.Add(int64(items))
}

// RegisterCoprocessor attaches a coprocessor to a table. Register before
// creating the table so region-open events are observed from the start.
func (c *Cluster) RegisterCoprocessor(table string, cp Coprocessor) {
	c.coprocs[table] = cp
}

func (c *Cluster) coprocessor(table string) Coprocessor { return c.coprocs[table] }

// RetainTombstones marks a table's stores as never dropping delete markers
// at compaction. Call before creating the table, like RegisterCoprocessor.
func (c *Cluster) RetainTombstones(table string) {
	c.retainTomb[table] = true
}

func (c *Cluster) retainsTombstones(table string) bool { return c.retainTomb[table] }

// Metrics returns the cluster-wide metrics registry: the single source of
// truth every layer (WAL, LSM stores, index runtime, clients) records into.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// Tracer mints the per-operation traces for this cluster's clients.
func (c *Cluster) Tracer() *metrics.Tracer { return c.tracer }

// Server returns a region server by ID (nil if unknown). Removed servers
// are still resolvable so requests racing a decommission fail with
// ErrServerDown instead of a nil dereference.
func (c *Cluster) Server(id string) *RegionServer {
	c.smu.RLock()
	defer c.smu.RUnlock()
	return c.servers[id]
}

// ServerIDs returns all non-removed server IDs, live or crashed, in creation
// order.
func (c *Cluster) ServerIDs() []string {
	c.smu.RLock()
	defer c.smu.RUnlock()
	ids := make([]string, 0, len(c.order))
	for _, id := range c.order {
		if !c.servers[id].Removed() {
			ids = append(ids, id)
		}
	}
	return ids
}

// LiveServerIDs returns the IDs of servers currently accepting requests.
func (c *Cluster) LiveServerIDs() []string {
	var out []string
	for _, id := range c.ServerIDs() {
		if s := c.Server(id); s != nil && !s.Crashed() {
			out = append(out, id)
		}
	}
	return out
}

// AssignableServerIDs returns the live servers the master may place regions
// on: not crashed, not removed, not draining toward removal.
func (c *Cluster) AssignableServerIDs() []string {
	var out []string
	for _, id := range c.LiveServerIDs() {
		if s := c.Server(id); s != nil && !s.Draining() {
			out = append(out, id)
		}
	}
	return out
}

// FlushAll synchronously flushes every region on every live server —
// experiment setup uses it to move loaded data to SSTables so reads are
// disk-bound as in §8.1.
func (c *Cluster) FlushAll() error {
	for _, id := range c.ServerIDs() {
		if err := c.Server(id).FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// WaitCompactions blocks until every live server's background compaction
// pipeline is idle. Deterministic tests flush (arming compaction) and then
// wait here before asserting on post-compaction state.
func (c *Cluster) WaitCompactions() {
	for _, id := range c.ServerIDs() {
		c.Server(id).WaitCompactions()
	}
}

// Close shuts down every server. All servers are marked down before any
// region is released, so coprocessor workers observing a dead peer drop
// their work immediately instead of retrying against servers that are about
// to close.
func (c *Cluster) Close() error {
	c.Master.StopBalancer()
	for _, id := range c.ServerIDs() {
		c.Server(id).markDown()
	}
	var firstErr error
	for _, id := range c.ServerIDs() {
		if err := c.Server(id).close(); err != nil && firstErr == nil && !errors.Is(err, ErrServerDown) {
			firstErr = err
		}
	}
	return firstErr
}

// WaitFor polls cond until it returns true or the timeout elapses, reporting
// whether the condition was met. Tests and examples use it to wait for
// asynchronous index convergence.
func WaitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return cond()
}
