package cluster

// Client-side time-travel reads (DESIGN.md §13): the as-of variants of
// Get/GetRow/Scan, answered from the MVCC versions the region stores
// already keep. The timestamp is a point in the cluster clock's history —
// any timestamp previously returned by Put/Delete qualifies.

import (
	"bytes"

	"diffindex/internal/kv"
)

// GetAsOf reads one column of a row as it stood at timestamp ts. Unlike
// GetAt (which answers from whatever versions remain), GetAsOf surfaces
// lsm.ErrHistoryTrimmed when the version visible at ts may have been
// garbage-collected by MaxVersions retention, so callers can tell "absent
// at ts" from "history gone".
func (cl *Client) GetAsOf(table string, row []byte, col string, ts kv.Timestamp) ([]byte, kv.Timestamp, bool, error) {
	tr := cl.tracer.Start("get-asof", table)
	defer cl.tracer.Finish(tr)
	var val []byte
	var cellTs kv.Timestamp
	var ok bool
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		c, found, err := s.GetAsOf(ri.ID, kv.BaseKey(row, []byte(col)), ts)
		if err != nil {
			return err
		}
		if found {
			val, cellTs, ok = c.Value, c.Ts, true
		} else {
			val, cellTs, ok = nil, 0, false
		}
		return nil
	})
	return val, cellTs, ok, err
}

// GetRowAsOf reads all columns of a row as they stood at timestamp ts. A
// nil map means the row had no visible columns at ts. Columns whose as-of
// version may have been trimmed are skipped (scan semantics); use GetAsOf
// per column for trimmed-history detection.
func (cl *Client) GetRowAsOf(table string, row []byte, ts kv.Timestamp) (map[string][]byte, error) {
	tr := cl.tracer.Start("get-row-asof", table)
	defer cl.tracer.Finish(tr)
	prefix := kv.RowPrefix(row)
	var cols map[string][]byte
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		results, err := s.ScanAsOf(ri.ID, prefix, kv.PrefixSuccessor(prefix), ts, 0)
		if err != nil {
			return err
		}
		cols = nil
		for _, res := range results {
			_, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return err
			}
			if cols == nil {
				cols = make(map[string][]byte)
			}
			cols[string(col)] = res.Value
		}
		return nil
	})
	return cols, err
}

// ScanAsOf reads rows with keys in [startRow, endRow) as they stood at
// timestamp ts, visiting regions in key order, up to limit rows (limit ≤ 0
// = unlimited) — Scan evaluated against historical state.
func (cl *Client) ScanAsOf(table string, startRow, endRow []byte, ts kv.Timestamp, limit int) ([]Row, error) {
	tr := cl.tracer.Start("scan-asof", table)
	defer cl.tracer.Finish(tr)
	var rows []Row
	var curKey []byte
	var curCols map[string][]byte
	flush := func() {
		if curCols != nil {
			rows = append(rows, Row{Key: curKey, Cols: curCols})
			curKey, curCols = nil, nil
		}
	}
	hitLimit := false
	err := cl.forEachRegion(table, startRow, endRow, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		storeLo := kv.BaseDataStart
		if len(lo) > 0 {
			storeLo = kv.RowPrefix(lo)
		}
		var storeHi []byte
		if hi != nil {
			storeHi = kv.RowPrefix(hi)
		}
		results, err := s.ScanAsOf(ri.ID, storeLo, storeHi, ts, 0)
		if err != nil {
			return false, err
		}
		for _, res := range results {
			row, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return false, err
			}
			if curCols == nil || !bytes.Equal(row, curKey) {
				flush()
				if limit > 0 && len(rows) >= limit {
					hitLimit = true
					return false, nil
				}
				curKey = append([]byte(nil), row...)
				curCols = make(map[string][]byte)
			}
			curCols[string(col)] = res.Value
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if !hitLimit {
		flush()
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}
