package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"
)

// This file is the elastic half of the cluster: a continuous load-aware
// balancer that generalizes RestartServer's one-shot steal-from-most-loaded
// rebalance into a periodic loop, a safe region-move primitive it is built
// on, cold-range merges (split's inverse as a *policy*, driving
// Master.mergeRegions), and live server decommission with drain-and-handoff.
//
// Every decision is deterministic given the observed load counters: servers
// and regions are considered in sorted order and ties go to the
// lexicographically smallest ID, mirroring RestartServer's plan.

// BalanceConfig tunes one balancer round.
type BalanceConfig struct {
	// HotspotRatio is the donor/receiver load ratio that triggers a move
	// (default 2.0): the most-loaded server must carry more than
	// HotspotRatio times the least-loaded server's ops.
	HotspotRatio float64
	// MinMoveOps is the minimum absolute load gap (ops since the previous
	// round) worth acting on; smaller gaps are noise (default 16).
	MinMoveOps int64
	// MergeColdThreshold, when > 0, merges adjacent regions of a table when
	// BOTH served fewer ops than this since the previous round — cold
	// ranges collapse so their fixed per-region cost (stores, AUQs, scan
	// fan-out) is reclaimed. 0 disables merging.
	MergeColdThreshold int64
	// MinRegionsPerTable is the floor cold merges never shrink a table
	// below (default 2).
	MinRegionsPerTable int
}

func (c BalanceConfig) withDefaults() BalanceConfig {
	if c.HotspotRatio <= 1 {
		c.HotspotRatio = 2.0
	}
	if c.MinMoveOps <= 0 {
		c.MinMoveOps = 16
	}
	if c.MinRegionsPerTable <= 0 {
		c.MinRegionsPerTable = 2
	}
	return c
}

// Move records one balancer-driven region migration.
type Move struct {
	Region, From, To string
}

// BalanceReport is what one balancer round observed and did.
type BalanceReport struct {
	// Loads is the per-server op count accumulated since the previous round
	// (assignable servers only).
	Loads map[string]int64
	// Moves lists the region migrations performed (at most one per round).
	Moves []Move
	// Merged lists child region IDs created by cold merges (at most one
	// merge per round).
	Merged []string
}

// hostedRegion pairs a region with its load delta for planning.
type hostedRegion struct {
	id   string
	load int64
}

// BalanceOnce runs one round of the continuous balancer: collect per-region
// load deltas, move the region that best evens out the worst hotspot (at
// most one move), then merge the coldest adjacent region pair (at most one
// merge). Single-step rounds keep each round cheap and let the loop converge
// incrementally, like HBase's balancer chore.
func (m *Master) BalanceOnce(cfg BalanceConfig) BalanceReport {
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	return m.balanceOnce(cfg)
}

func (m *Master) balanceOnce(cfg BalanceConfig) BalanceReport {
	cfg = cfg.withDefaults()
	reg := m.cluster.metrics
	reg.Counter("diffindex_balance_rounds_total").Inc()
	m.repairUnhosted()

	servers := m.cluster.AssignableServerIDs()
	sort.Strings(servers)
	report := BalanceReport{Loads: make(map[string]int64, len(servers))}

	// Collect this round's per-region load deltas, then attribute them to
	// servers through the master's metadata (the authority on placement).
	regionLoad := make(map[string]int64)
	for _, id := range servers {
		report.Loads[id] = 0
		for rid, n := range m.cluster.Server(id).TakeRegionLoads() {
			regionLoad[rid] += n
		}
	}
	byServer := make(map[string][]hostedRegion, len(servers))
	m.mu.RLock()
	for _, meta := range m.tables {
		for _, ri := range meta.regions {
			if _, ok := report.Loads[ri.Server]; !ok {
				continue // hosted on a crashed/draining server: not balanced here
			}
			load := regionLoad[ri.ID]
			report.Loads[ri.Server] += load
			byServer[ri.Server] = append(byServer[ri.Server], hostedRegion{ri.ID, load})
		}
	}
	m.mu.RUnlock()

	if mv, ok := m.planMove(cfg, servers, report.Loads, byServer); ok {
		if moved, err := m.moveRegion(mv.Region, mv.From, mv.To); err == nil && moved {
			report.Moves = append(report.Moves, mv)
			reg.Counter("diffindex_balance_moves_total").Inc()
		}
	}

	if cfg.MergeColdThreshold > 0 {
		if child, ok := m.mergeColdOnce(cfg, regionLoad); ok {
			report.Merged = append(report.Merged, child)
			reg.Counter("diffindex_balance_merges_total").Inc()
		}
	}
	return report
}

// planMove picks the single region migration that best evens out the load
// gap between the most- and least-loaded servers, or reports none is worth
// making. Moving a region of load L changes the donor/receiver gap from g to
// |g − 2L|, so the best candidate minimizes that residual; a move is only
// made when it strictly shrinks the gap (a region hotter than the whole gap
// would just relocate the hotspot).
func (m *Master) planMove(cfg BalanceConfig, servers []string, loads map[string]int64, byServer map[string][]hostedRegion) (Move, bool) {
	if len(servers) < 2 {
		return Move{}, false
	}
	donor, receiver := servers[0], servers[0]
	for _, id := range servers[1:] {
		if loads[id] > loads[donor] {
			donor = id
		}
		if loads[id] < loads[receiver] {
			receiver = id
		}
	}
	gap := loads[donor] - loads[receiver]
	if donor == receiver || gap < cfg.MinMoveOps ||
		float64(loads[donor]) <= cfg.HotspotRatio*float64(loads[receiver]) {
		return Move{}, false
	}
	ds := m.cluster.Server(donor)
	if ds == nil {
		return Move{}, false
	}
	cands := append([]hostedRegion(nil), byServer[donor]...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	best, bestResid := "", gap
	for _, h := range cands {
		if !ds.hostsUnfrozen(h.id) {
			continue // mid-split or not actually served here
		}
		resid := gap - 2*h.load
		if resid < 0 {
			resid = -resid
		}
		if resid < bestResid {
			best, bestResid = h.id, resid
		}
	}
	if best == "" {
		return Move{}, false
	}
	return Move{Region: best, From: donor, To: receiver}, true
}

// mergeColdOnce finds the coldest qualifying adjacent region pair across all
// tables and merges it, returning the child region's ID. A pair qualifies
// when both regions served fewer than MergeColdThreshold ops this round,
// both are live and unfrozen, and the table stays at or above the region
// floor.
func (m *Master) mergeColdOnce(cfg BalanceConfig, regionLoad map[string]int64) (string, bool) {
	type pair struct {
		table        string
		lower, upper string
		start        []byte // lower's start key, to find the child afterwards
		load         int64
	}
	var best *pair
	m.mu.RLock()
	tableNames := make([]string, 0, len(m.tables))
	for name := range m.tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		meta := m.tables[name]
		if len(meta.regions) <= cfg.MinRegionsPerTable {
			continue
		}
		for i := 0; i+1 < len(meta.regions); i++ {
			lo, hi := meta.regions[i], meta.regions[i+1]
			ll, lok := regionLoad[lo.ID]
			hl, hok := regionLoad[hi.ID]
			if !lok || !hok || ll >= cfg.MergeColdThreshold || hl >= cfg.MergeColdThreshold {
				continue
			}
			ls, hs := m.cluster.Server(lo.Server), m.cluster.Server(hi.Server)
			if ls == nil || hs == nil || !ls.hostsUnfrozen(lo.ID) || !hs.hostsUnfrozen(hi.ID) {
				continue
			}
			if best == nil || ll+hl < best.load || (ll+hl == best.load && lo.ID < best.lower) {
				best = &pair{table: name, lower: lo.ID, upper: hi.ID, start: lo.Start, load: ll + hl}
			}
		}
	}
	m.mu.RUnlock()
	if best == nil {
		return "", false
	}
	if err := m.mergeRegions(best.lower, best.upper); err != nil {
		return "", false
	}
	// The child took the lower parent's slot: it is the unique region of the
	// table whose start key equals the lower parent's.
	m.mu.RLock()
	defer m.mu.RUnlock()
	if meta, ok := m.tables[best.table]; ok {
		for _, ri := range meta.regions {
			if bytes.Equal(ri.Start, best.start) {
				return ri.ID, true
			}
		}
	}
	return "", true
}

// MoveRegion migrates one region to the given live server: close on the
// current host (dropping its AUQ), reopen on the target (WAL replay
// reconstructs the memtable and re-enqueues index work, §5.3) — exactly the
// steal RestartServer performs, as a standalone primitive. Returns
// (false, nil) when the region was not movable (re-homed concurrently by
// failure recovery, frozen mid-split, or already on the target).
func (m *Master) MoveRegion(regionID, to string) (bool, error) {
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	m.mu.RLock()
	ri := m.findRegionLocked(regionID)
	var from string
	if ri != nil {
		from = ri.Server
	}
	m.mu.RUnlock()
	if ri == nil {
		return false, fmt.Errorf("cluster: unknown region %s", regionID)
	}
	if from == to {
		return false, nil
	}
	return m.moveRegion(regionID, from, to)
}

// repairUnhosted is the balancer's janitor pass (HBase's hbck, as a chore):
// a region whose metadata points at a live, un-crashed server that does not
// actually host it is re-opened there. Handoffs publish metadata before
// opening, so a single observation may just be a move or crash recovery in
// flight — only a region seen unhosted on the SAME server in two
// consecutive rounds is repaired. Runs under topoMu (from balanceOnce).
func (m *Master) repairUnhosted() {
	var stuck []RegionInfo
	seen := make(map[string]string)
	m.mu.RLock()
	for _, meta := range m.tables {
		for _, ri := range meta.regions {
			s := m.cluster.Server(ri.Server)
			if s == nil || s.Crashed() || s.hostsRegion(ri.ID) {
				continue // crash recovery owns it, or nothing is wrong
			}
			seen[ri.ID] = ri.Server
			if m.unhosted[ri.ID] == ri.Server {
				stuck = append(stuck, *ri)
			}
		}
	}
	m.mu.RUnlock()
	m.unhosted = seen
	for _, info := range stuck {
		// Claim-then-open: act only if the assignment is still current.
		m.mu.RLock()
		cur := m.findRegionLocked(info.ID)
		ok := cur != nil && cur.Server == info.Server
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if s := m.cluster.Server(info.Server); s != nil && !s.Crashed() {
			s.OpenRegion(info) // idempotent, best-effort; WAL replay restores state
		}
	}
}

// reviveParent restores a region a failed split or merge froze (and maybe
// closed) without ever publishing its replacement: unfreeze it if still
// hosted, otherwise reopen it in place (WAL replay restores any unflushed
// tail). Best-effort — if the host crashed, crash recovery re-homes the
// region by metadata, which still routes to it.
func (m *Master) reviveParent(info RegionInfo) {
	m.mu.RLock()
	cur := ""
	if ri := m.findRegionLocked(info.ID); ri != nil {
		cur = ri.Server
	}
	m.mu.RUnlock()
	if cur == "" {
		return // replaced in metadata: nothing routes to it anymore
	}
	s := m.cluster.Server(cur)
	if s == nil || s.Crashed() {
		return // crash recovery owns it now
	}
	if err := s.UnfreezeRegion(info.ID); err == nil {
		return
	}
	info.Server = cur
	s.OpenRegion(info) // best-effort; a crash beyond this point re-homes it
}

// findRegionLocked resolves a region's metadata entry; m.mu must be held.
func (m *Master) findRegionLocked(regionID string) *RegionInfo {
	for _, meta := range m.tables {
		for _, ri := range meta.regions {
			if ri.ID == regionID {
				return ri
			}
		}
	}
	return nil
}

// moveRegion performs the migration with the topology lock held. The
// assignment is published BEFORE the handoff: once metadata points at the
// target, a concurrent CrashServer(donor) will not re-home the region, so
// its store is never opened on two servers at once. Clients routing on the
// stale map get ErrRegionNotFound/ErrServerDown and retry.
func (m *Master) moveRegion(regionID, from, to string) (bool, error) {
	donor, target := m.cluster.Server(from), m.cluster.Server(to)
	if donor == nil || target == nil {
		return false, fmt.Errorf("cluster: unknown server in move %s: %s -> %s", regionID, from, to)
	}

	// Claim: re-validate under mu immediately before publishing, so the
	// move composes with concurrent crash/restart recovery (which also
	// updates assignments under mu).
	m.mu.Lock()
	ri := m.findRegionLocked(regionID)
	if ri == nil {
		m.mu.Unlock()
		return false, fmt.Errorf("cluster: unknown region %s", regionID)
	}
	if ri.Server != from || donor.Crashed() || target.Crashed() || !donor.hostsUnfrozen(regionID) {
		m.mu.Unlock()
		return false, nil // re-homed, frozen, or an endpoint died: not movable now
	}
	ri.Server = to
	info := *ri
	m.mu.Unlock()

	// Handoff: close on the donor (its AUQ entries drop; WAL replay on the
	// target reconstructs them). A routing miss means the donor crashed in
	// the window and already released the store — equally fine.
	if err := donor.CloseRegion(regionID); err != nil && !errors.Is(err, ErrRegionNotFound) && !errors.Is(err, ErrServerDown) {
		return false, err
	}
	if err := target.OpenRegion(info); err == nil {
		return true, nil
	}

	// The target died before adopting the region. If its crash handler
	// already re-homed it (metadata moved on), we are done; otherwise
	// re-home it ourselves so the region is never left unserved.
	m.mu.Lock()
	ri = m.findRegionLocked(regionID)
	if ri == nil || ri.Server != to {
		m.mu.Unlock()
		return false, nil
	}
	fallback := ""
	if !donor.Crashed() && !donor.Removed() {
		fallback = from
	} else {
		for _, id := range m.cluster.AssignableServerIDs() {
			if id != to {
				fallback = id
				break
			}
		}
	}
	if fallback == "" {
		m.mu.Unlock()
		return false, fmt.Errorf("cluster: no live server to re-home %s after failed move to %s", regionID, to)
	}
	ri.Server = fallback
	info = *ri
	m.mu.Unlock()
	candidates := append([]string{from}, m.cluster.AssignableServerIDs()...)
	if err := m.recoverRegion(info, candidates); err != nil {
		return false, fmt.Errorf("cluster: re-home %s after failed move to %s: %w", regionID, to, err)
	}
	return false, nil
}

// DecommissionServer removes a live server from the cluster gracefully:
// mark it draining (no new assignments), flush its regions (shrinking the
// WAL each receiver must replay), hand every region off to the remaining
// assignable servers round-robin, then retire the server permanently. The
// inverse of Cluster.AddServer.
func (m *Master) DecommissionServer(id string) error {
	server := m.cluster.Server(id)
	if server == nil {
		return fmt.Errorf("cluster: unknown server %s", id)
	}
	if server.Removed() {
		return fmt.Errorf("cluster: server %s already decommissioned", id)
	}
	if server.Crashed() {
		// A crashed server's regions were already reassigned by CrashServer;
		// retiring it is pure bookkeeping.
		server.markRemoved()
		return nil
	}
	server.setDraining(true)

	// Best-effort flush BEFORE taking the topology lock: a flush waits out
	// any in-flight replay dispatch on the region's write gate, and that
	// dispatch may itself be blocked until the balancer's repair pass (which
	// needs topoMu) heals some other region.
	_ = server.FlushAll()

	m.topoMu.Lock()
	defer m.topoMu.Unlock()

	// Hand off every region routed to this server. A single pass can skip
	// regions — moveRegion declines when a target crashed mid-move or a
	// concurrent restart stole the region first — so re-scan until nothing
	// is routed here. Retiring the server while metadata still points at it
	// would strand those ranges: markRemoved crashes the server WITHOUT the
	// master-side reassignment CrashServer performs.
	for pass := 0; ; pass++ {
		targets := m.cluster.AssignableServerIDs()
		if len(targets) == 0 {
			server.setDraining(false)
			return fmt.Errorf("cluster: cannot decommission %s: no other assignable server", id)
		}
		sort.Strings(targets)

		m.mu.RLock()
		var regions []string
		for _, meta := range m.tables {
			for _, ri := range meta.regions {
				if ri.Server == id {
					regions = append(regions, ri.ID)
				}
			}
		}
		m.mu.RUnlock()
		if len(regions) == 0 {
			break
		}
		if pass >= 8 {
			server.setDraining(false)
			return fmt.Errorf("cluster: decommission %s: %d regions still routed here after %d passes", id, len(regions), pass)
		}
		sort.Strings(regions)
		for i, rid := range regions {
			if _, err := m.moveRegion(rid, id, targets[i%len(targets)]); err != nil {
				server.setDraining(false)
				return fmt.Errorf("cluster: decommission %s: %w", id, err)
			}
		}
	}
	server.markRemoved()
	return nil
}

// StartBalancer runs BalanceOnce(cfg) every interval until StopBalancer (or
// cluster Close). Idempotent: a second start while running is a no-op.
func (m *Master) StartBalancer(interval time.Duration, cfg BalanceConfig) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	m.balMu.Lock()
	defer m.balMu.Unlock()
	if m.balStop != nil {
		return
	}
	stop := make(chan struct{})
	m.balStop = stop
	m.balWG.Add(1)
	go func() {
		defer m.balWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.BalanceOnce(cfg)
			}
		}
	}()
}

// StopBalancer stops the continuous balancer loop and waits for the
// in-flight round to finish. Safe to call when the balancer never started.
func (m *Master) StopBalancer() {
	m.balMu.Lock()
	stop := m.balStop
	m.balStop = nil
	m.balMu.Unlock()
	if stop != nil {
		close(stop)
		m.balWG.Wait()
	}
}
