package cluster

import (
	"hash/fnv"

	"diffindex/internal/kv"
)

// Anti-entropy support: merkle-style hash-bucket digests of index state.
//
// A global index is healthy when the set of (indexValue, row) pairs derivable
// from the base table equals the set of entries stored in the index table.
// Comparing the two sets directly would ship every pair over the network; the
// anti-entropy protocol instead compares fixed-size digest vectors. Each pair
// hashes into one of `buckets` buckets by its row key, and a bucket's digest
// is the XOR of its pairs' 64-bit hashes. XOR is commutative and associative,
// so per-region digest vectors merge into a table-wide vector in any order —
// region splits, moves and scatter scheduling cannot change the result. Only
// buckets whose digests differ between the base side and the index side are
// then enumerated pair-by-pair.
//
// Digests cover (value, row) with length-prefixed hashing (no concatenation
// ambiguity). Timestamps are excluded: presence and value equality define the
// index-complete / index-exact contracts (§6.1); timestamps only matter when
// repairing, so the enumeration RPCs return them alongside each pair.

// IndexEntryPair is one (indexValue, row) pair surfaced by anti-entropy
// enumeration, with the timestamp repairs must carry: for an index-side entry
// the entry's own timestamp, for a base-side pair the newest timestamp among
// the row's indexed columns (the §4.3 same-timestamp rule).
type IndexEntryPair struct {
	Value []byte
	Row   []byte
	Ts    kv.Timestamp
}

// aeBucket assigns a row key to a digest bucket.
func aeBucket(row []byte, buckets int) int {
	h := fnv.New32a()
	h.Write(row)
	return int(h.Sum32() % uint32(buckets))
}

// aeDigest hashes one (value, row) pair, length-prefixing each part so
// distinct pairs never collide by concatenation.
func aeDigest(value, row []byte) uint64 {
	h := fnv.New64a()
	var lenBuf [8]byte
	putLen := func(b []byte) {
		n := len(b)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(b)
	}
	putLen(value)
	putLen(row)
	return h.Sum64()
}

// xorMerge folds src into dst element-wise.
func xorMerge(dst, src []uint64) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// --- Server-side RPCs -------------------------------------------------------

// IndexDigest scans an index-table region's store keys in [lo, hi) at ts and
// returns the region's per-bucket XOR digest of its (value, row) entries.
func (s *RegionServer) IndexDigest(regionID string, lo, hi []byte, buckets int, ts kv.Timestamp) ([]uint64, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	results, err := region.store.Scan(lo, hi, ts, 0)
	if err != nil {
		return nil, mapStoreErr(err)
	}
	dig := make([]uint64, buckets)
	for _, res := range results {
		val, row, err := kv.SplitIndexKey(res.Key)
		if err != nil {
			return nil, err
		}
		dig[aeBucket(row, buckets)] ^= aeDigest(val, row)
	}
	return dig, nil
}

// IndexBucketEntries returns an index-table region's (value, row, ts) entries
// in [lo, hi) whose rows fall into one of the wanted buckets — the
// enumeration step, restricted to buckets the digest comparison flagged.
func (s *RegionServer) IndexBucketEntries(regionID string, lo, hi []byte, buckets int, want []int, ts kv.Timestamp) ([]IndexEntryPair, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	wanted := make(map[int]bool, len(want))
	for _, b := range want {
		wanted[b] = true
	}
	results, err := region.store.Scan(lo, hi, ts, 0)
	if err != nil {
		return nil, mapStoreErr(err)
	}
	var out []IndexEntryPair
	for _, res := range results {
		val, row, err := kv.SplitIndexKey(res.Key)
		if err != nil {
			return nil, err
		}
		if !wanted[aeBucket(row, buckets)] {
			continue
		}
		out = append(out, IndexEntryPair{
			Value: append([]byte(nil), val...),
			Row:   append([]byte(nil), row...),
			Ts:    res.Ts,
		})
	}
	return out, nil
}

// baseIndexPairs scans a base-table region's store keys in [lo, hi) at ts and
// derives the (value, row, maxTs) index pair of every row whose indexed
// columns are all present, invoking emit for each. Cells arrive in store-key
// order, so a row's columns are contiguous.
func baseIndexPairs(region *Region, lo, hi []byte, columns []string, ts kv.Timestamp, emit func(val, row []byte, maxTs kv.Timestamp)) error {
	results, err := region.store.Scan(lo, hi, ts, 0)
	if err != nil {
		return mapStoreErr(err)
	}
	var curRow []byte
	var curCols map[string][]byte
	var curMax kv.Timestamp
	colSet := make(map[string]bool, len(columns))
	for _, c := range columns {
		colSet[c] = true
	}
	flush := func() {
		if curCols == nil {
			return
		}
		if val, ok := kv.IndexValueFromColumns(columns, curCols); ok {
			emit(val, curRow, curMax)
		}
		curRow, curCols, curMax = nil, nil, 0
	}
	for _, res := range results {
		row, col, err := kv.SplitBaseKey(res.Key)
		if err != nil {
			return err
		}
		if curCols == nil || string(row) != string(curRow) {
			flush()
			curRow = append([]byte(nil), row...)
			curCols = make(map[string][]byte, len(columns))
		}
		if colSet[string(col)] {
			curCols[string(col)] = res.Value
			if res.Ts > curMax {
				curMax = res.Ts
			}
		}
	}
	flush()
	return nil
}

// BaseIndexDigest scans a base-table region in [lo, hi) (store-key bounds,
// at or above kv.BaseDataStart) and returns the per-bucket XOR digest of the
// index pairs its rows SHOULD have for an index on columns — the base-side
// half of the digest comparison.
func (s *RegionServer) BaseIndexDigest(regionID string, lo, hi []byte, columns []string, buckets int, ts kv.Timestamp) ([]uint64, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	dig := make([]uint64, buckets)
	err = baseIndexPairs(region, lo, hi, columns, ts, func(val, row []byte, _ kv.Timestamp) {
		dig[aeBucket(row, buckets)] ^= aeDigest(val, row)
	})
	if err != nil {
		return nil, err
	}
	return dig, nil
}

// BaseBucketEntries returns the expected (value, row, maxColumnTs) index
// pairs of a base-table region's rows in the wanted buckets.
func (s *RegionServer) BaseBucketEntries(regionID string, lo, hi []byte, columns []string, buckets int, want []int, ts kv.Timestamp) ([]IndexEntryPair, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	wanted := make(map[int]bool, len(want))
	for _, b := range want {
		wanted[b] = true
	}
	var out []IndexEntryPair
	err = baseIndexPairs(region, lo, hi, columns, ts, func(val, row []byte, maxTs kv.Timestamp) {
		if !wanted[aeBucket(row, buckets)] {
			return
		}
		out = append(out, IndexEntryPair{
			Value: append([]byte(nil), val...),
			Row:   append([]byte(nil), row...),
			Ts:    maxTs,
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Client-side fan-out ----------------------------------------------------

// IndexTableDigest computes the table-wide per-bucket digest of an index
// table by walking its regions with the routing cursor and XOR-merging each
// region's digest vector. Raw (index) tables route by store key, so each
// region digests its clamped store-key slice exactly once.
func (cl *Client) IndexTableDigest(table string, buckets int, ts kv.Timestamp) ([]uint64, error) {
	dig := make([]uint64, buckets)
	err := cl.forEachRegion(table, nil, nil, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		part, err := s.IndexDigest(ri.ID, lo, hi, buckets, ts)
		if err != nil {
			return false, err
		}
		xorMerge(dig, part)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return dig, nil
}

// IndexTableBucketEntries enumerates an index table's entries in the wanted
// buckets, concatenated across regions in routing order.
func (cl *Client) IndexTableBucketEntries(table string, buckets int, want []int, ts kv.Timestamp) ([]IndexEntryPair, error) {
	var out []IndexEntryPair
	err := cl.forEachRegion(table, nil, nil, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		part, err := s.IndexBucketEntries(ri.ID, lo, hi, buckets, want, ts)
		if err != nil {
			return false, err
		}
		out = append(out, part...)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// baseStoreBounds translates a base-table region's clamped ROUTING bounds
// (row keys) into store-key bounds that exclude the reserved local-index key
// space below kv.BaseDataStart.
func baseStoreBounds(lo, hi []byte) (storeLo, storeHi []byte) {
	storeLo = kv.BaseDataStart
	if len(lo) > 0 {
		storeLo = kv.RowPrefix(lo)
	}
	if hi != nil {
		storeHi = kv.RowPrefix(hi)
	}
	return storeLo, storeHi
}

// BaseTableIndexDigest computes the table-wide per-bucket digest of the index
// pairs a base table's rows SHOULD have for an index on columns.
func (cl *Client) BaseTableIndexDigest(table string, columns []string, buckets int, ts kv.Timestamp) ([]uint64, error) {
	dig := make([]uint64, buckets)
	err := cl.forEachRegion(table, nil, nil, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		storeLo, storeHi := baseStoreBounds(lo, hi)
		part, err := s.BaseIndexDigest(ri.ID, storeLo, storeHi, columns, buckets, ts)
		if err != nil {
			return false, err
		}
		xorMerge(dig, part)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return dig, nil
}

// BaseTableBucketEntries enumerates the expected index pairs of a base
// table's rows in the wanted buckets.
func (cl *Client) BaseTableBucketEntries(table string, columns []string, buckets int, want []int, ts kv.Timestamp) ([]IndexEntryPair, error) {
	var out []IndexEntryPair
	err := cl.forEachRegion(table, nil, nil, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		storeLo, storeHi := baseStoreBounds(lo, hi)
		part, err := s.BaseBucketEntries(ri.ID, storeLo, storeHi, columns, buckets, want, ts)
		if err != nil {
			return false, err
		}
		out = append(out, part...)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
