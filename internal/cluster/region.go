package cluster

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
)

// RegionInfo describes one key-range shard of a table. Start and End bound
// the region's routing keys: Start is inclusive (nil = −∞), End exclusive
// (nil = +∞). For base tables the routing key is the row key; for index
// tables it is the full index key.
type RegionInfo struct {
	ID     string
	Table  string
	Start  []byte
	End    []byte
	Server string // current assignment
}

// Contains reports whether the routing key falls inside the region.
func (ri RegionInfo) Contains(key []byte) bool {
	if ri.Start != nil && bytes.Compare(key, ri.Start) < 0 {
		return false
	}
	if ri.End != nil && bytes.Compare(key, ri.End) >= 0 {
		return false
	}
	return true
}

// Overlaps reports whether the region intersects the routing-key range
// [start, end) (nil bounds are infinite).
func (ri RegionInfo) Overlaps(start, end []byte) bool {
	if ri.End != nil && start != nil && bytes.Compare(ri.End, start) <= 0 {
		return false
	}
	if ri.Start != nil && end != nil && bytes.Compare(end, ri.Start) <= 0 {
		return false
	}
	return true
}

func (ri RegionInfo) String() string {
	return fmt.Sprintf("%s[%q,%q)@%s", ri.ID, ri.Start, ri.End, ri.Server)
}

// Region is a hosted shard: RegionInfo plus its LSM store.
type Region struct {
	Info   RegionInfo
	store  *lsm.Store
	server *RegionServer
	// frozen marks the region as mid-split: requests bounce with
	// ErrRegionNotFound so clients re-route once the children appear.
	frozen atomic.Bool
	// ops counts data RPCs served by this region since the balancer last
	// collected loads (TakeRegionLoads swaps it back to zero).
	ops atomic.Int64
}

// Store exposes the region's LSM store to coprocessors (local base reads,
// the paper's R_B, are direct store reads with no network hop).
func (r *Region) Store() *lsm.Store { return r.store }

// LocalGet reads the newest non-deleted version of a store key visible at
// ts without any network cost — the coprocessor-side R_B(k, t−δ).
func (r *Region) LocalGet(key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	return r.store.Get(key, ts)
}

// LocalGetRow reads every column of a base-table row visible at ts.
func (r *Region) LocalGetRow(row []byte, ts kv.Timestamp) (map[string][]byte, error) {
	prefix := kv.RowPrefix(row)
	results, err := r.store.Scan(prefix, kv.PrefixSuccessor(prefix), ts, 0)
	if err != nil {
		return nil, err
	}
	cols := make(map[string][]byte, len(results))
	for _, res := range results {
		_, col, err := kv.SplitBaseKey(res.Key)
		if err != nil {
			return nil, err
		}
		cols[string(col)] = res.Value
	}
	return cols, nil
}
