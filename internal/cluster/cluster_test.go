package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
)

func newTestCluster(t testing.TB, servers int) *Cluster {
	t.Helper()
	c := New(Config{Servers: servers})
	t.Cleanup(func() { c.Close() })
	return c
}

func splits(keys ...string) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out
}

func TestCreateTableAndRegionAssignment(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("items", splits("g", "p")); err != nil {
		t.Fatal(err)
	}
	if err := c.Master.CreateTable("items", nil); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := c.Master.CreateTable("bad", splits("b", "a")); err == nil {
		t.Error("unsorted splits accepted")
	}
	regions, err := c.Master.RegionsOf("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("got %d regions", len(regions))
	}
	// Regions must cover the key space contiguously.
	if regions[0].Start != nil || regions[2].End != nil {
		t.Error("outer bounds must be open")
	}
	if !bytes.Equal(regions[0].End, []byte("g")) || !bytes.Equal(regions[1].Start, []byte("g")) {
		t.Error("regions not contiguous")
	}
	// Spread across servers (round robin with 3 servers and 3 regions).
	seen := map[string]bool{}
	for _, ri := range regions {
		seen[ri.Server] = true
	}
	if len(seen) != 3 {
		t.Errorf("regions assigned to %d servers, want 3", len(seen))
	}
	if _, err := c.Master.RegionsOf("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
}

func TestLocate(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("tbl", splits("m")); err != nil {
		t.Fatal(err)
	}
	lo, err := c.Master.Locate("tbl", []byte("apple"))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Start != nil || !bytes.Equal(lo.End, []byte("m")) {
		t.Errorf("Locate(apple) = %v", lo)
	}
	hi, err := c.Master.Locate("tbl", []byte("zebra"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hi.Start, []byte("m")) || hi.End != nil {
		t.Errorf("Locate(zebra) = %v", hi)
	}
	// Boundary key belongs to the upper region.
	b, _ := c.Master.Locate("tbl", []byte("m"))
	if !bytes.Equal(b.Start, []byte("m")) {
		t.Errorf("Locate(m) = %v", b)
	}
}

func TestPutGetDeleteThroughClient(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("users", splits("h", "q")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client1")

	ts, err := cl.Put("users", []byte("alice"), map[string][]byte{"name": []byte("Alice"), "city": []byte("NY")})
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 {
		t.Errorf("ts = %d", ts)
	}
	val, gotTs, ok, err := cl.Get("users", []byte("alice"), "name")
	if err != nil || !ok || string(val) != "Alice" || gotTs != ts {
		t.Fatalf("Get = %q ts=%d ok=%v err=%v", val, gotTs, ok, err)
	}
	row, err := cl.GetRow("users", []byte("alice"))
	if err != nil || len(row) != 2 || string(row["city"]) != "NY" {
		t.Fatalf("GetRow = %v err=%v", row, err)
	}

	// Overwrite gets a newer timestamp.
	ts2, _ := cl.Put("users", []byte("alice"), map[string][]byte{"city": []byte("SF")})
	if ts2 <= ts {
		t.Errorf("ts2=%d not newer than ts=%d", ts2, ts)
	}
	val, _, _, _ = cl.Get("users", []byte("alice"), "city")
	if string(val) != "SF" {
		t.Errorf("city = %q", val)
	}

	// Delete one column, then the whole row.
	if _, err := cl.Delete("users", []byte("alice"), []string{"city"}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := cl.Get("users", []byte("alice"), "city"); ok {
		t.Error("deleted column visible")
	}
	if _, _, ok, _ := cl.Get("users", []byte("alice"), "name"); !ok {
		t.Error("surviving column lost")
	}
	if _, err := cl.Delete("users", []byte("alice"), nil); err != nil {
		t.Fatal(err)
	}
	if row, _ := cl.GetRow("users", []byte("alice")); row != nil {
		t.Errorf("row visible after full delete: %v", row)
	}
	// Missing rows.
	if _, _, ok, _ := cl.Get("users", []byte("nobody"), "name"); ok {
		t.Error("missing row found")
	}
}

func TestPutWithOldReturnsPreviousValues(t *testing.T) {
	c := newTestCluster(t, 1)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")

	_, old, err := cl.PutWithOld("t", []byte("r"), map[string][]byte{"a": []byte("1")})
	if err != nil || len(old) != 0 {
		t.Fatalf("first put old=%v err=%v", old, err)
	}
	_, old, err = cl.PutWithOld("t", []byte("r"), map[string][]byte{"a": []byte("2"), "b": []byte("x")})
	if err != nil || string(old["a"]) != "1" {
		t.Fatalf("second put old=%v err=%v", old, err)
	}
}

func TestScanAcrossRegions(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("k10", "k20")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 30; i++ {
		row := []byte(fmt.Sprintf("k%02d", i))
		if _, err := cl.Put("t", row, map[string][]byte{"v": []byte(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := cl.Scan("t", []byte("k05"), []byte("k25"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("Scan returned %d rows, want 20", len(rows))
	}
	if string(rows[0].Key) != "k05" || string(rows[19].Key) != "k24" {
		t.Errorf("scan bounds wrong: first=%s last=%s", rows[0].Key, rows[19].Key)
	}
	// Rows must arrive in order across region boundaries.
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
	// Limit stops early.
	rows, _ = cl.Scan("t", nil, nil, 7)
	if len(rows) != 7 {
		t.Errorf("limited scan returned %d", len(rows))
	}
	// Full scan.
	rows, _ = cl.Scan("t", nil, nil, 0)
	if len(rows) != 30 {
		t.Errorf("full scan returned %d", len(rows))
	}
}

func TestRawOpsOnIndexStyleTable(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("idx", splits(string(kv.IndexValuePrefix([]byte("m"))))); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")

	for _, v := range []string{"apple", "mango", "zebra"} {
		key := kv.IndexKey([]byte(v), []byte("row-"+v))
		if err := cl.RawApply("idx", key, []kv.Cell{{Key: key, Ts: 5, Kind: kv.KindPut}}); err != nil {
			t.Fatal(err)
		}
	}
	// Exact-match scan for one value.
	prefix := kv.IndexValuePrefix([]byte("mango"))
	res, err := cl.RawScan("idx", prefix, kv.PrefixSuccessor(prefix), kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("RawScan returned %d entries", len(res))
	}
	_, row, _ := kv.SplitIndexKey(res[0].Key)
	if string(row) != "row-mango" {
		t.Errorf("decoded row = %q", row)
	}
	// Cross-region range scan: values in [a, zz] ("zebra" > "z", so the
	// upper bound must reach past it).
	lo, hi := kv.IndexValueRange([]byte("a"), []byte("zz"))
	res, err = cl.RawScan("idx", lo, hi, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("range scan returned %d entries, want 3", len(res))
	}
	// The inclusive range [a, z] excludes "zebra".
	lo, hi = kv.IndexValueRange([]byte("a"), []byte("z"))
	res, err = cl.RawScan("idx", lo, hi, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("range scan [a,z] returned %d entries, want 2", len(res))
	}
	// RawGet with explicit timestamp visibility.
	key := kv.IndexKey([]byte("apple"), []byte("row-apple"))
	if _, ok, _ := cl.RawGet("idx", key, key, 4); ok {
		t.Error("entry visible before its timestamp")
	}
	if _, ok, _ := cl.RawGet("idx", key, key, 5); !ok {
		t.Error("entry invisible at its timestamp")
	}
}

func TestCrashRecoveryPreservesData(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("j", "s")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("key%02d", i))
		if _, err := cl.Put("t", row, map[string][]byte{"v": []byte(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Find the server hosting the first region and kill it without any
	// flush: all its memtable data must come back from the WAL.
	ri, _ := c.Master.Locate("t", []byte("key00"))
	victim := ri.Server
	if err := c.Master.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	ri2, _ := c.Master.Locate("t", []byte("key00"))
	if ri2.Server == victim {
		t.Fatal("region not reassigned")
	}

	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("key%02d", i))
		val, _, ok, err := cl.Get("t", row, "v")
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(val) != fmt.Sprintf("%d", i) {
			t.Errorf("row %s lost after crash: %q ok=%v", row, val, ok)
		}
	}
	// Writes continue to work after recovery, with monotonic timestamps.
	ts1, _, _, _ := cl.Get("t", []byte("key00"), "v")
	_ = ts1
	ts2, err := cl.Put("t", []byte("key00"), map[string][]byte{"v": []byte("post-crash")})
	if err != nil {
		t.Fatal(err)
	}
	val, ts3, _, _ := cl.Get("t", []byte("key00"), "v")
	if string(val) != "post-crash" || ts3 != ts2 {
		t.Errorf("post-crash write lost: %q ts=%d want ts=%d", val, ts3, ts2)
	}
}

func TestCrashRecoveryAfterFlush(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")
	cl.Put("t", []byte("flushed"), map[string][]byte{"v": []byte("1")})
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	cl.Put("t", []byte("memonly"), map[string][]byte{"v": []byte("2")})

	ri, _ := c.Master.Locate("t", []byte("flushed"))
	if err := c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"flushed", "memonly"} {
		if _, _, ok, err := cl.Get("t", []byte(row), "v"); err != nil || !ok {
			t.Errorf("row %s lost (ok=%v err=%v)", row, ok, err)
		}
	}
}

func TestCrashedServerRejectsOps(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", nil)
	ri, _ := c.Master.Locate("t", []byte("k"))
	server := c.Server(ri.Server)
	c.Master.CrashServer(ri.Server)

	if _, _, err := server.PutRow(ri.ID, []byte("k"), map[string][]byte{"a": nil}, false, nil); !errors.Is(err, ErrServerDown) {
		t.Errorf("PutRow on crashed server: %v", err)
	}
	if _, _, err := server.Get(ri.ID, []byte("k"), kv.MaxTimestamp); !errors.Is(err, ErrServerDown) {
		t.Errorf("Get on crashed server: %v", err)
	}
	if err := server.OpenRegion(ri); !errors.Is(err, ErrServerDown) {
		t.Errorf("OpenRegion on crashed server: %v", err)
	}
}

func TestStaleClientCacheRetries(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")
	// Prime the cache.
	if _, err := cl.Put("t", []byte("k"), map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	ri, _ := c.Master.Locate("t", []byte("k"))
	if err := c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	// The client's cached route is stale; the put must transparently retry.
	if _, err := cl.Put("t", []byte("k"), map[string][]byte{"v": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	val, _, _, err := cl.Get("t", []byte("k"), "v")
	if err != nil || string(val) != "2" {
		t.Errorf("Get after failover = %q err=%v", val, err)
	}
}

// recordingCoprocessor records hook invocations for verification.
type recordingCoprocessor struct {
	mu          sync.Mutex
	puts        []string
	deletes     []string
	replays     []string
	preFlush    int
	postCompact int
}

func (r *recordingCoprocessor) PostCompact(ctx RegionCtx, gc lsm.CompactionGC) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.postCompact++
}

func (r *recordingCoprocessor) PostPut(ctx RegionCtx, row []byte, cols map[string][]byte, ts kv.Timestamp) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts = append(r.puts, string(row))
	return nil
}
func (r *recordingCoprocessor) PostDelete(ctx RegionCtx, row []byte, cols []string, ts kv.Timestamp) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deletes = append(r.deletes, string(row))
	return nil
}
func (r *recordingCoprocessor) PreFlush(ctx RegionCtx) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.preFlush++
	return nil
}
func (r *recordingCoprocessor) OnRegionClose(ctx RegionCtx) {}
func (r *recordingCoprocessor) OnReplay(ctx RegionCtx, c kv.Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	row, _, err := kv.SplitBaseKey(c.Key)
	if err == nil {
		r.replays = append(r.replays, string(row))
	}
}

func TestCoprocessorHooks(t *testing.T) {
	c := newTestCluster(t, 2)
	rec := &recordingCoprocessor{}
	c.RegisterCoprocessor("t", rec)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")

	cl.Put("t", []byte("r1"), map[string][]byte{"a": []byte("1")})
	cl.Put("t", []byte("r2"), map[string][]byte{"a": []byte("2")})
	cl.Delete("t", []byte("r1"), []string{"a"})

	rec.mu.Lock()
	puts, dels := len(rec.puts), len(rec.deletes)
	rec.mu.Unlock()
	if puts != 2 || dels != 1 {
		t.Errorf("observer saw %d puts, %d deletes", puts, dels)
	}

	// PreFlush fires on flush.
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	pf := rec.preFlush
	rec.mu.Unlock()
	if pf == 0 {
		t.Error("PreFlush hook never fired")
	}

	// Unflushed writes replay through OnReplay after a crash.
	cl.Put("t", []byte("r3"), map[string][]byte{"a": []byte("3")})
	ri, _ := c.Master.Locate("t", []byte("r3"))
	if err := c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	// OnReplay dispatch runs in the background after the region reopens.
	if !WaitFor(2*time.Second, func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		for _, r := range rec.replays {
			if r == "r3" {
				return true
			}
		}
		return false
	}) {
		t.Error("unflushed row r3 not replayed")
	}
	rec.mu.Lock()
	replays := append([]string(nil), rec.replays...)
	rec.mu.Unlock()
	for _, r := range replays {
		if r == "r1" || r == "r2" {
			t.Errorf("flushed row %s replayed", r)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.Master.CreateTable("t", splits("c", "f", "l", "r")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const clients, per = 6, 150
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := NewClient(c, fmt.Sprintf("client%d", ci))
			for i := 0; i < per; i++ {
				row := []byte(fmt.Sprintf("%c%d-%d", 'a'+byte(i%26), ci, i))
				if _, err := cl.Put("t", row, map[string][]byte{"v": []byte("x")}); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					if _, _, _, err := cl.Get("t", row, "v"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	cl := NewClient(c, "verifier")
	rows, err := cl.Scan("t", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != clients*per {
		t.Errorf("scan found %d rows, want %d", len(rows), clients*per)
	}
}

func TestRegionInfoPredicates(t *testing.T) {
	ri := RegionInfo{Start: []byte("g"), End: []byte("p")}
	if ri.Contains([]byte("f")) || !ri.Contains([]byte("g")) || !ri.Contains([]byte("o")) || ri.Contains([]byte("p")) {
		t.Error("Contains boundary behavior wrong")
	}
	open := RegionInfo{}
	if !open.Contains([]byte("anything")) || !open.Contains([]byte{}) {
		t.Error("open region must contain everything")
	}
	if !ri.Overlaps(nil, nil) || !ri.Overlaps([]byte("a"), []byte("h")) || ri.Overlaps([]byte("p"), nil) || ri.Overlaps(nil, []byte("g")) {
		t.Error("Overlaps boundary behavior wrong")
	}
	if ri.String() == "" {
		t.Error("String must render")
	}
}
