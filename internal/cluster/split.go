package cluster

import (
	"bytes"
	"fmt"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
)

// SplitRegion splits a region in two at splitKey (a routing key strictly
// inside the region's range), like HBase's manual region split. The lower
// child stays on the region's server; the upper child is assigned
// round-robin. While the split runs the parent rejects requests and clients
// transparently retry with backoff until the children are registered.
//
// The sequence is: freeze the parent (new mutations bounce), flush it (the
// pre-flush hook drains its AUQ, so no asynchronous index work is pending
// and the WAL rolls forward), close it, re-read its persisted data, route
// every cell — base cells by row, local-index cells by their row, raw cells
// by themselves — into the matching child, and publish the children in the
// partition map. Timestamps are preserved, so the copy is idempotent under
// LSM semantics.
func (m *Master) SplitRegion(regionID string, splitKey []byte) error {
	// Serialize against merges, balancer moves and decommissions: two
	// topology operations must never close/open the same region's store
	// concurrently. Crash/restart recovery intentionally bypasses this lock.
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	return m.splitRegion(regionID, splitKey)
}

func (m *Master) splitRegion(regionID string, splitKey []byte) error {
	// Locate the parent and validate the split point.
	m.mu.Lock()
	var meta *tableMeta
	var idx int
	var parent *RegionInfo
	for _, tm := range m.tables {
		for i, ri := range tm.regions {
			if ri.ID == regionID {
				meta, idx, parent = tm, i, ri
			}
		}
	}
	if parent == nil {
		m.mu.Unlock()
		return fmt.Errorf("cluster: unknown region %s", regionID)
	}
	if !parent.Contains(splitKey) || (parent.Start != nil && bytes.Equal(splitKey, parent.Start)) {
		m.mu.Unlock()
		return fmt.Errorf("cluster: split key %q outside region %s", splitKey, parent)
	}
	server := m.cluster.Server(parent.Server)
	live := m.cluster.AssignableServerIDs()
	if len(live) == 0 {
		live = m.cluster.LiveServerIDs()
	}
	if server == nil || server.Crashed() || len(live) == 0 {
		m.mu.Unlock()
		return ErrServerDown
	}
	upperServer := live[m.rr%len(live)]
	m.rr++
	meta.nextSplit++
	lower := &RegionInfo{
		ID:     fmt.Sprintf("%s.s%04da", parent.ID, meta.nextSplit),
		Table:  parent.Table,
		Start:  parent.Start,
		End:    append([]byte(nil), splitKey...),
		Server: parent.Server,
	}
	upper := &RegionInfo{
		ID:     fmt.Sprintf("%s.s%04db", parent.ID, meta.nextSplit),
		Table:  parent.Table,
		Start:  append([]byte(nil), splitKey...),
		End:    parent.End,
		Server: upperServer,
	}
	raw := meta.raw
	parentInfo := *parent
	m.mu.Unlock()

	// Any failure past the freeze must put the parent back in service:
	// close partially opened children, then unfreeze or reopen the parent
	// wherever the metadata still routes to it. Leaving it frozen or
	// unhosted would bounce its key range forever.
	fail := func(err error) error {
		m.cluster.Server(lower.Server).CloseRegion(lower.ID)
		m.cluster.Server(upper.Server).CloseRegion(upper.ID)
		m.reviveParent(parentInfo)
		return err
	}

	// Freeze: the parent stops accepting requests; clients back off.
	if err := server.FreezeRegion(regionID); err != nil {
		return err
	}
	// Flush drains the region's AUQ (pre-flush hook) and persists the
	// memtable; the WAL rolls forward, so the persisted SSTables are the
	// complete region state.
	if err := server.Flush(regionID); err != nil {
		return fail(err)
	}
	if err := server.CloseRegion(regionID); err != nil {
		return fail(err)
	}

	// Re-open the parent's store read-only to stream its live data. The
	// WAL is empty after the flush; replaying it is a no-op.
	parentStore, err := lsm.Open(lsm.Options{
		FS:                 m.cluster.FS,
		Dir:                regionDir(parentInfo),
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
	})
	if err != nil {
		return fail(fmt.Errorf("cluster: reopen parent for split: %w", err))
	}
	// ScanAll copies the full MVCC history — every version plus tombstones.
	// Without tombstones a late-redelivered index cell (at-least-once
	// delivery) could resurrect a superseded entry in the child; without
	// older base versions a redelivered AUQ task could miss its pre-image
	// read and skip the superseded-entry delete.
	cells, err := parentStore.ScanAll(nil, nil, kv.MaxTimestamp)
	parentStore.Close()
	if err != nil {
		return fail(err)
	}

	// Open the children and route the parent's cells into them.
	if err := m.cluster.Server(lower.Server).OpenRegion(*lower); err != nil {
		return fail(err)
	}
	if err := m.cluster.Server(upper.Server).OpenRegion(*upper); err != nil {
		return fail(err)
	}
	var lowerCells, upperCells []kv.Cell
	for _, cell := range cells {
		route, err := routingKeyOf(raw, cell.Key)
		if err != nil {
			return fail(fmt.Errorf("cluster: split routing: %w", err))
		}
		if bytes.Compare(route, splitKey) < 0 {
			lowerCells = append(lowerCells, cell)
		} else {
			upperCells = append(upperCells, cell)
		}
	}
	if err := applyChunked(m.cluster.Server(lower.Server), lower.ID, lowerCells); err != nil {
		return fail(err)
	}
	if err := applyChunked(m.cluster.Server(upper.Server), upper.ID, upperCells); err != nil {
		return fail(err)
	}

	// Publish the children; clients refresh on their next routing miss.
	// Re-validate first: if the parent's host crashed mid-split, recovery
	// re-homed and REOPENED the parent elsewhere, and it may have accepted
	// writes the children never saw — publishing would lose them. Abandon
	// the split instead (the reopened parent keeps serving).
	m.mu.Lock()
	if cur := m.findRegionLocked(parentInfo.ID); cur == nil || cur.Server != parentInfo.Server {
		m.mu.Unlock()
		return fail(fmt.Errorf("cluster: split of %s preempted by crash recovery", parentInfo.ID))
	}
	meta.regions = append(meta.regions[:idx], append([]*RegionInfo{lower, upper}, meta.regions[idx+1:]...)...)
	m.mu.Unlock()

	// Garbage-collect the parent's files (its data now lives in the
	// children's stores and WALs).
	if names, err := m.cluster.FS.List(regionDir(parentInfo) + "/"); err == nil {
		for _, name := range names {
			m.cluster.FS.Remove(name)
		}
	}
	return nil
}

// MergeRegions merges two ADJACENT regions of a table into one, the inverse
// of SplitRegion (HBase's region merge). Both parents are frozen, flushed
// (draining their AUQs) and closed; their data streams into a fresh child
// covering the union range, hosted on the lower parent's server.
func (m *Master) MergeRegions(lowerID, upperID string) error {
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	return m.mergeRegions(lowerID, upperID)
}

// mergeRegions is MergeRegions without the topology lock, for callers that
// already hold it (the balancer's cold-merge pass).
func (m *Master) mergeRegions(lowerID, upperID string) error {
	m.mu.Lock()
	var meta *tableMeta
	var idx int // index of the lower region
	for _, tm := range m.tables {
		for i, ri := range tm.regions {
			if ri.ID == lowerID {
				meta, idx = tm, i
			}
		}
	}
	if meta == nil {
		m.mu.Unlock()
		return fmt.Errorf("cluster: unknown region %s", lowerID)
	}
	if idx+1 >= len(meta.regions) || meta.regions[idx+1].ID != upperID {
		m.mu.Unlock()
		return fmt.Errorf("cluster: regions %s and %s are not adjacent", lowerID, upperID)
	}
	lower, upper := meta.regions[idx], meta.regions[idx+1]
	ls := m.cluster.Server(lower.Server)
	us := m.cluster.Server(upper.Server)
	if ls == nil || us == nil || ls.Crashed() || us.Crashed() {
		m.mu.Unlock()
		return ErrServerDown
	}
	meta.nextSplit++
	child := &RegionInfo{
		ID:     fmt.Sprintf("%s.m%04d", lower.ID, meta.nextSplit),
		Table:  lower.Table,
		Start:  lower.Start,
		End:    upper.End,
		Server: lower.Server,
	}
	lowerInfo, upperInfo := *lower, *upper
	m.mu.Unlock()

	// Any failure past the first freeze must put both parents back in
	// service (see splitRegion's twin cleanup).
	fail := func(err error) error {
		m.cluster.Server(child.Server).CloseRegion(child.ID)
		m.reviveParent(lowerInfo)
		m.reviveParent(upperInfo)
		return err
	}

	// Freeze, flush (drain), close both parents.
	for _, p := range []struct {
		s  *RegionServer
		id string
	}{{ls, lowerID}, {us, upperID}} {
		if err := p.s.FreezeRegion(p.id); err != nil {
			return fail(err)
		}
		if err := p.s.Flush(p.id); err != nil {
			return fail(err)
		}
		if err := p.s.CloseRegion(p.id); err != nil {
			return fail(err)
		}
	}

	// Stream both parents' persisted data into the child.
	if err := m.cluster.Server(child.Server).OpenRegion(*child); err != nil {
		return fail(err)
	}
	for _, parent := range []RegionInfo{lowerInfo, upperInfo} {
		store, err := lsm.Open(lsm.Options{
			FS:                 m.cluster.FS,
			Dir:                regionDir(parent),
			DisableAutoFlush:   true,
			DisableAutoCompact: true,
		})
		if err != nil {
			return fail(fmt.Errorf("cluster: reopen parent for merge: %w", err))
		}
		// ScanAll copies the full MVCC history (see splitRegion): the merged
		// child must keep masking late-redelivered index cells and keep
		// answering pre-image reads for redelivered AUQ tasks.
		cells, err := store.ScanAll(nil, nil, kv.MaxTimestamp)
		store.Close()
		if err != nil {
			return fail(err)
		}
		if err := applyChunked(m.cluster.Server(child.Server), child.ID, cells); err != nil {
			return fail(err)
		}
	}

	// Publish the child, GC the parents' files. Re-validate first (see
	// splitRegion): a parent re-homed by crash recovery mid-merge was
	// reopened elsewhere and may hold writes the child never saw.
	m.mu.Lock()
	for _, parent := range []RegionInfo{lowerInfo, upperInfo} {
		if cur := m.findRegionLocked(parent.ID); cur == nil || cur.Server != parent.Server {
			m.mu.Unlock()
			return fail(fmt.Errorf("cluster: merge of %s preempted by crash recovery", parent.ID))
		}
	}
	meta.regions = append(meta.regions[:idx], append([]*RegionInfo{child}, meta.regions[idx+2:]...)...)
	m.mu.Unlock()
	for _, parent := range []RegionInfo{lowerInfo, upperInfo} {
		if names, err := m.cluster.FS.List(regionDir(parent) + "/"); err == nil {
			for _, name := range names {
				m.cluster.FS.Remove(name)
			}
		}
	}
	return nil
}

// routingKeyOf maps a store key to its routing key: identity for raw
// tables; for row tables, the row of a base cell or of a local-index entry.
func routingKeyOf(raw bool, storeKey []byte) ([]byte, error) {
	if raw {
		return storeKey, nil
	}
	if kv.IsLocalIndexKey(storeKey) {
		return kv.LocalIndexRow(storeKey)
	}
	row, _, err := kv.SplitBaseKey(storeKey)
	return row, err
}

// applyChunked writes cells to a region in batches.
func applyChunked(s *RegionServer, regionID string, cells []kv.Cell) error {
	const chunk = 256
	for len(cells) > 0 {
		n := chunk
		if n > len(cells) {
			n = len(cells)
		}
		if err := s.Apply(regionID, cells[:n]); err != nil {
			return err
		}
		cells = cells[n:]
	}
	return nil
}
