package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// hammer issues n puts to rows strictly inside [prefix0, prefix9...] so all
// land in one known region, and returns the rows written.
func hammer(t *testing.T, cl *Client, table, prefix string, n int) [][]byte {
	t.Helper()
	rows := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		row := []byte(fmt.Sprintf("%s%04d", prefix, i))
		if _, err := cl.Put(table, row, map[string][]byte{"v": []byte(prefix)}); err != nil {
			t.Fatalf("put %s: %v", row, err)
		}
		rows = append(rows, row)
	}
	return rows
}

// serverOf resolves which server hosts the region containing key.
func serverOf(t *testing.T, c *Cluster, table string, key []byte) (string, string) {
	t.Helper()
	ri, err := c.Master.Locate(table, key)
	if err != nil {
		t.Fatal(err)
	}
	return ri.Server, ri.ID
}

// TestBalanceOnceMovesHotRegion: the balancer migrates the region that best
// evens out the gap between the most- and least-loaded server — here the
// smaller of the donor's two loaded regions, since moving the hottest one
// would overshoot.
func TestBalanceOnceMovesHotRegion(t *testing.T) {
	c := newTestCluster(t, 2)
	// 4 regions round-robin over 2 servers: each server hosts two.
	if err := c.Master.CreateTable("tbl", splits("g", "p", "w")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "load")

	// Pick two regions on the same server (the donor) and one on the other.
	regions, _ := c.Master.RegionsOf("tbl")
	byServer := map[string][]RegionInfo{}
	for _, ri := range regions {
		byServer[ri.Server] = append(byServer[ri.Server], ri)
	}
	if len(byServer) != 2 {
		t.Fatalf("regions on %d servers, want 2", len(byServer))
	}
	prefixFor := func(ri RegionInfo) string {
		if ri.Start == nil {
			return "a"
		}
		return string(ri.Start) + "a"
	}
	var donor, receiver string
	for id, rs := range byServer {
		if len(rs) == 2 {
			donor = id
		} else if len(rs) == 1 {
			t.Fatalf("uneven assignment: server %s hosts %d regions", id, len(rs))
		}
	}
	for id := range byServer {
		if id != donor {
			receiver = id
		}
	}
	hot, warm := byServer[donor][0], byServer[donor][1]
	hammer(t, cl, "tbl", prefixFor(hot), 150)
	hammer(t, cl, "tbl", prefixFor(warm), 50)
	coldRows := hammer(t, cl, "tbl", prefixFor(byServer[receiver][0]), 10)

	rep := c.Master.BalanceOnce(BalanceConfig{MinMoveOps: 10})
	if len(rep.Moves) != 1 {
		t.Fatalf("moves = %v, want exactly one", rep.Moves)
	}
	mv := rep.Moves[0]
	// gap ≈ 200−10; moving the 50-op region leaves residual ≈ 90, beating
	// the 150-op region's ≈ 110.
	if mv.Region != warm.ID || mv.From != donor || mv.To != receiver {
		t.Fatalf("move = %+v, want %s from %s to %s (loads %v)", mv, warm.ID, donor, receiver, rep.Loads)
	}
	if got, _ := serverOf(t, c, "tbl", []byte(prefixFor(warm))); got != receiver {
		t.Fatalf("metadata still places %s on %s", warm.ID, got)
	}
	// The moved region serves its data on the new host.
	v, _, ok, err := cl.Get("tbl", []byte(prefixFor(warm)+"0007"), "v")
	if err != nil || !ok || string(v) != prefixFor(warm) {
		t.Fatalf("read after move = %q ok=%v err=%v", v, ok, err)
	}
	_ = coldRows

	// A balanced cluster makes no further moves.
	if rep2 := c.Master.BalanceOnce(BalanceConfig{MinMoveOps: 10}); len(rep2.Moves) != 0 {
		t.Fatalf("second round moved %v on a quiet cluster", rep2.Moves)
	}
}

// TestMoveRegionPrimitive: explicit moves relocate data and metadata; no-op
// and error cases are reported as such.
func TestMoveRegionPrimitive(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("t", splits("m")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	if _, err := cl.Put("t", []byte("apple"), map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	from, regionID := serverOf(t, c, "t", []byte("apple"))
	to := "rs1"
	if from == "rs1" {
		to = "rs2"
	}

	moved, err := c.Master.MoveRegion(regionID, to)
	if err != nil || !moved {
		t.Fatalf("MoveRegion = %v, %v", moved, err)
	}
	if got, _ := serverOf(t, c, "t", []byte("apple")); got != to {
		t.Fatalf("region on %s after move to %s", got, to)
	}
	if v, _, ok, err := cl.Get("t", []byte("apple"), "v"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("read after move = %q ok=%v err=%v", v, ok, err)
	}
	// Moving to the current host is a no-op, not an error.
	if moved, err := c.Master.MoveRegion(regionID, to); err != nil || moved {
		t.Fatalf("same-host move = %v, %v", moved, err)
	}
	if _, err := c.Master.MoveRegion("nope", to); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := c.Master.MoveRegion(regionID, "rs99"); err == nil {
		t.Fatal("unknown server accepted")
	}
}

// TestAddServerExpansion: a new server joins empty, is assignable, and
// receives regions via moves and new tables.
func TestAddServerExpansion(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("t", splits("m")); err != nil {
		t.Fatal(err)
	}
	id := c.AddServer()
	if id != "rs3" {
		t.Fatalf("AddServer = %s, want rs3 (creation order continues)", id)
	}
	if c.AddServer() != "rs4" {
		t.Fatal("second AddServer did not continue the sequence")
	}
	found := false
	for _, s := range c.ServerIDs() {
		if s == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("ServerIDs %v missing %s", c.ServerIDs(), id)
	}

	cl := NewClient(c, "cl")
	if _, err := cl.Put("t", []byte("zebra"), map[string][]byte{"v": []byte("z")}); err != nil {
		t.Fatal(err)
	}
	_, regionID := serverOf(t, c, "t", []byte("zebra"))
	if moved, err := c.Master.MoveRegion(regionID, id); err != nil || !moved {
		t.Fatalf("move to new server = %v, %v", moved, err)
	}
	if v, _, ok, err := cl.Get("t", []byte("zebra"), "v"); err != nil || !ok || string(v) != "z" {
		t.Fatalf("read from new server = %q ok=%v err=%v", v, ok, err)
	}
	// New tables spread over the grown cluster.
	if err := c.Master.CreateTable("wide", splits("b", "d", "f", "h", "j", "l")); err != nil {
		t.Fatal(err)
	}
	regions, _ := c.Master.RegionsOf("wide")
	onNew := 0
	for _, ri := range regions {
		if ri.Server == "rs3" || ri.Server == "rs4" {
			onNew++
		}
	}
	if onNew == 0 {
		t.Fatal("no region of a 7-region table assigned to the added servers")
	}
}

// TestDecommissionServer: drain-and-handoff empties the server, its data
// stays readable, and the server is retired for good.
func TestDecommissionServer(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("h", "q")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	var rows [][]byte
	for _, prefix := range []string{"a", "k", "s"} {
		rows = append(rows, hammer(t, cl, "t", prefix, 20)...)
	}

	if err := c.Master.DecommissionServer("rs2"); err != nil {
		t.Fatal(err)
	}
	regions, _ := c.Master.RegionsOf("t")
	for _, ri := range regions {
		if ri.Server == "rs2" {
			t.Fatalf("region %s still on decommissioned server", ri.ID)
		}
	}
	for _, id := range c.ServerIDs() {
		if id == "rs2" {
			t.Fatal("retired server still listed")
		}
	}
	for _, row := range rows {
		if _, _, ok, err := cl.Get("t", row, "v"); err != nil || !ok {
			t.Fatalf("row %s unreadable after decommission: ok=%v err=%v", row, ok, err)
		}
	}
	if err := c.Master.RestartServer("rs2"); err == nil {
		t.Fatal("decommissioned server restarted")
	}
	if err := c.Master.DecommissionServer("rs2"); err == nil {
		t.Fatal("double decommission accepted")
	}
	// Removing down to a single server is allowed; removing the last one is
	// not.
	if err := c.Master.DecommissionServer("rs3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Master.DecommissionServer("rs1"); err == nil {
		t.Fatal("decommissioned the last server")
	}
	for _, row := range rows {
		if _, _, ok, err := cl.Get("t", row, "v"); err != nil || !ok {
			t.Fatalf("row %s unreadable on the last server: ok=%v err=%v", row, ok, err)
		}
	}
}

// TestColdMergePolicy: adjacent regions below the cold threshold merge, but
// never below the per-table region floor, and hot regions are left alone.
func TestColdMergePolicy(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.Master.CreateTable("t", splits("h", "q")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	hotRows := hammer(t, cl, "t", "s", 100) // heat the last region only

	cfg := BalanceConfig{MergeColdThreshold: 5, MinRegionsPerTable: 2}
	rep := c.Master.BalanceOnce(cfg)
	if len(rep.Merged) != 1 {
		t.Fatalf("merged = %v, want one cold merge", rep.Merged)
	}
	regions, _ := c.Master.RegionsOf("t")
	if len(regions) != 2 {
		t.Fatalf("table has %d regions after merge, want 2", len(regions))
	}
	// The two cold regions [nil,h) and [h,q) collapsed into [nil,q).
	if regions[0].Start != nil || !bytes.Equal(regions[0].End, []byte("q")) {
		t.Fatalf("merged child spans [%q,%q), want [nil,q)", regions[0].Start, regions[0].End)
	}
	// At the floor, further cold rounds must not merge the table away.
	if rep2 := c.Master.BalanceOnce(cfg); len(rep2.Merged) != 0 {
		t.Fatalf("merged %v below the region floor", rep2.Merged)
	}
	for _, row := range hotRows[:5] {
		if _, _, ok, err := cl.Get("t", row, "v"); err != nil || !ok {
			t.Fatalf("row %s unreadable after merge: ok=%v err=%v", row, ok, err)
		}
	}
	if _, err := cl.Put("t", []byte("a-new"), map[string][]byte{"v": []byte("n")}); err != nil {
		t.Fatalf("write into merged child: %v", err)
	}
}

// TestBalancerRacesTopologyChanges runs the continuous balancer at full
// tilt against concurrent splits, merges, flush+compaction rounds and live
// traffic — the -race gate for the elastic machinery. Afterwards the
// region map must still tile the key space and every write must be
// readable.
func TestBalancerRacesTopologyChanges(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("k200", "k400", "k600", "k800")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "writer")
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
	for i := 0; i < 1000; i += 10 {
		if _, err := cl.Put("t", key(i), map[string][]byte{"v": key(i)}); err != nil {
			t.Fatal(err)
		}
	}

	c.Master.StartBalancer(time.Millisecond, BalanceConfig{
		HotspotRatio: 1.2, MinMoveOps: 1, MergeColdThreshold: 1 << 30, MinRegionsPerTable: 2,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Live traffic: rewrite and read back keys the whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		reader := NewClient(c, "reader")
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Intn(100) * 10
			if _, err := cl.Put("t", key(i), map[string][]byte{"v": key(i)}); err != nil {
				t.Errorf("put under balancing: %v", err)
				return
			}
			if _, _, ok, err := reader.Get("t", key(i), "v"); err != nil || !ok {
				t.Errorf("get under balancing: ok=%v err=%v", ok, err)
				return
			}
		}
	}()
	// Splits: repeatedly split whichever region is widest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			regions, err := c.Master.RegionsOf("t")
			if err != nil || len(regions) == 0 {
				continue
			}
			ri := regions[rng.Intn(len(regions))]
			mid := key(rng.Intn(100) * 10)
			if !ri.Contains(mid) || (ri.Start != nil && bytes.Equal(mid, ri.Start)) {
				continue
			}
			_ = c.Master.SplitRegion(ri.ID, mid) // benign failures: raced topology
		}
	}()
	// Merges: repeatedly merge a random adjacent pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			regions, err := c.Master.RegionsOf("t")
			if err != nil || len(regions) < 3 {
				continue
			}
			i := rng.Intn(len(regions) - 1)
			_ = c.Master.MergeRegions(regions[i].ID, regions[i+1].ID)
		}
	}()
	// Flush + compaction churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.FlushAll()
			c.WaitCompactions()
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Master.StopBalancer()

	// Invariant: the region map tiles the key space with no gaps/overlaps.
	regions, err := c.Master.RegionsOf("t")
	if err != nil {
		t.Fatal(err)
	}
	if regions[0].Start != nil || regions[len(regions)-1].End != nil {
		t.Fatalf("outer bounds not open: %v", regions)
	}
	for i := 1; i < len(regions); i++ {
		if !bytes.Equal(regions[i-1].End, regions[i].Start) {
			t.Fatalf("gap/overlap between %v and %v", regions[i-1], regions[i])
		}
	}
	// Every key written before the storm is still readable with its value.
	for i := 0; i < 1000; i += 10 {
		v, _, ok, err := cl.Get("t", key(i), "v")
		if err != nil || !ok || !bytes.Equal(v, key(i)) {
			t.Fatalf("key %s after storm: %q ok=%v err=%v", key(i), v, ok, err)
		}
	}
}
