package cluster

import (
	"errors"
	"testing"
	"time"

	"diffindex/internal/kv"
)

func TestAccessorsAndCloseRegion(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if !c.Master.HasTable("t") || c.Master.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	cl := NewClient(c, "client-x")
	if cl.Name() != "client-x" || cl.Cluster() != c {
		t.Error("client accessors wrong")
	}
	ri, err := c.Master.Locate("t", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	server := c.Server(ri.Server)
	if server.ID() != ri.Server {
		t.Error("server ID wrong")
	}
	infos := server.Regions()
	found := false
	for _, info := range infos {
		if info.ID == ri.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("Regions() = %v missing %s", infos, ri.ID)
	}

	// Region-local access used by coprocessors.
	if _, err := cl.Put("t", []byte("row"), map[string][]byte{"c": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	var region *Region
	c.servers[ri.Server].mu.RLock()
	region = c.servers[ri.Server].regions[ri.ID]
	c.servers[ri.Server].mu.RUnlock()
	if region.Store() == nil {
		t.Fatal("Region.Store nil")
	}
	cell, ok, err := region.LocalGet(kv.BaseKey([]byte("row"), []byte("c")), kv.MaxTimestamp)
	if err != nil || !ok || string(cell.Value) != "v" {
		t.Errorf("LocalGet = %+v ok=%v err=%v", cell, ok, err)
	}

	// Per-region flush through the server API.
	if err := server.Flush(ri.ID); err != nil {
		t.Fatal(err)
	}
	if err := server.Flush("ghost"); !errors.Is(err, ErrRegionNotFound) {
		t.Errorf("Flush of unknown region: %v", err)
	}

	// CloseRegion removes the region from service.
	if err := server.CloseRegion(ri.ID); err != nil {
		t.Fatal(err)
	}
	if err := server.CloseRegion(ri.ID); !errors.Is(err, ErrRegionNotFound) {
		t.Errorf("double CloseRegion: %v", err)
	}
	if _, _, err := server.Get(ri.ID, []byte("k"), kv.MaxTimestamp); !errors.Is(err, ErrRegionNotFound) {
		t.Errorf("Get on closed region: %v", err)
	}
}

func TestWaitFor(t *testing.T) {
	n := 0
	ok := WaitFor(time.Second, func() bool {
		n++
		return n >= 3
	})
	if !ok || n < 3 {
		t.Errorf("WaitFor ok=%v n=%d", ok, n)
	}
	if WaitFor(5*time.Millisecond, func() bool { return false }) {
		t.Error("WaitFor(false) returned true")
	}
}
