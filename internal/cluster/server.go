package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
	"diffindex/internal/wal"
)

// RegionServer hosts regions and serves puts, gets and scans for their key
// ranges (§2.2). A server can crash (losing all in-memory state: memtables
// and any coprocessor queues) and its regions then recover on other servers
// from the shared file system.
type RegionServer struct {
	id      string
	cluster *Cluster
	cache   *sstable.BlockCache

	mu      sync.RWMutex
	regions map[string]*Region
	opening map[string]struct{} // region IDs with an OpenRegion in flight
	crashed atomic.Bool
	// draining marks a server being decommissioned: it still serves its
	// regions while the master hands them off, but receives no new
	// assignments. removed marks the decommission complete; the server is
	// permanently out of the cluster and may not be restarted.
	draining atomic.Bool
	removed  atomic.Bool

	// ops counts every data RPC routed to a hosted region — the per-server
	// load signal the continuous balancer's hotspot detection reads (also
	// exported as diffindex_server_ops_total{server}).
	ops *metrics.Counter
}

func newRegionServer(c *Cluster, id string) *RegionServer {
	s := &RegionServer{
		id:      id,
		cluster: c,
		cache:   sstable.NewBlockCache(c.cfg.BlockCacheBytes),
		regions: make(map[string]*Region),
		opening: make(map[string]struct{}),
		ops:     c.metrics.Counter("diffindex_server_ops_total", metrics.L("server", id)),
	}
	// Computed gauges read through CacheStats so they keep reporting the
	// replacement cache after a crash.
	c.metrics.RegisterGaugeFunc("diffindex_block_cache_hits", func() int64 {
		hits, _ := s.CacheStats()
		return hits
	}, metrics.L("server", id))
	c.metrics.RegisterGaugeFunc("diffindex_block_cache_misses", func() int64 {
		_, misses := s.CacheStats()
		return misses
	}, metrics.L("server", id))
	return s
}

// ID returns the server's node name (also its simnet address).
func (s *RegionServer) ID() string { return s.id }

// CacheStats returns the server's block-cache cumulative hit and miss
// counts (rolled up across the cache's shards).
func (s *RegionServer) CacheStats() (hits, misses int64) {
	s.mu.RLock()
	cache := s.cache
	s.mu.RUnlock()
	return cache.Stats()
}

// Crashed reports whether the server is down.
func (s *RegionServer) Crashed() bool { return s.crashed.Load() }

// Draining reports whether the server is being decommissioned: still
// serving, but receiving no new region assignments.
func (s *RegionServer) Draining() bool { return s.draining.Load() }

// Removed reports whether the server has been decommissioned out of the
// cluster for good.
func (s *RegionServer) Removed() bool { return s.removed.Load() }

// setDraining flips the decommission-in-progress flag.
func (s *RegionServer) setDraining(v bool) { s.draining.Store(v) }

// markRemoved finalizes a decommission: the server is down and will never
// come back (RestartServer refuses removed servers).
func (s *RegionServer) markRemoved() {
	s.removed.Store(true)
	s.crash()
}

// Ops returns the cumulative count of data RPCs served (the balancer's
// per-server load signal).
func (s *RegionServer) Ops() int64 { return s.ops.Load() }

// TakeRegionLoads returns each hosted region's operation count accumulated
// since the previous call, resetting the counters — one balancer round's
// per-region load deltas.
func (s *RegionServer) TakeRegionLoads() map[string]int64 {
	if s.crashed.Load() {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.regions))
	for id, r := range s.regions {
		out[id] = r.ops.Swap(0)
	}
	return out
}

func regionDir(info RegionInfo) string {
	return fmt.Sprintf("tables/%s/%s", info.Table, info.ID)
}

// mapStoreErr converts a closed-store error into a routing miss: a request
// that raced a region close (crash, split, merge) should re-route and
// retry, exactly as if the region had already moved.
func mapStoreErr(err error) error {
	if errors.Is(err, lsm.ErrClosed) {
		return ErrRegionNotFound
	}
	return err
}

// OpenRegion opens (or recovers) a region on this server. Cells found in the
// region's WAL are replayed into a fresh memtable and surfaced to the
// table's coprocessor via OnReplay, after the region is fully open (§5.3:
// replayed puts re-enter the AUQ).
func (s *RegionServer) OpenRegion(info RegionInfo) error {
	if s.crashed.Load() {
		return ErrServerDown
	}
	// Reserve the slot first: recovery paths (crash re-homing, the repair
	// pass, a retried move) may race each other onto the same server, and
	// two lsm stores must never be open on one region directory at once.
	// An already-hosted or already-opening region makes the open a no-op.
	s.mu.Lock()
	if _, ok := s.regions[info.ID]; ok {
		s.mu.Unlock()
		return nil
	}
	if _, ok := s.opening[info.ID]; ok {
		s.mu.Unlock()
		return nil
	}
	s.opening[info.ID] = struct{}{}
	cache := s.cache
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.opening, info.ID)
		s.mu.Unlock()
	}()

	region := &Region{Info: info, server: s}
	var replayed []kv.Cell
	store, err := lsm.Open(lsm.Options{
		FS:                       s.cluster.FS,
		Dir:                      regionDir(info),
		MemtableBytes:            s.cluster.cfg.MemtableBytes,
		MaxVersions:              s.cluster.cfg.MaxVersions,
		CompactionThreshold:      s.cluster.cfg.CompactionThreshold,
		CompactionFanIn:          s.cluster.cfg.CompactionFanIn,
		MaxConcurrentCompactions: s.cluster.cfg.MaxConcurrentCompactions,
		RetainTombstones:         s.cluster.retainsTombstones(info.Table),
		BlockCache:               cache,
		VerifyChecksums:          s.cluster.cfg.VerifyChecksums,
		LearnedIndex:             s.cluster.cfg.LearnedIndex,
		LearnedIndexEpsilon:      s.cluster.cfg.LearnedIndexEpsilon,
		BlockRestartInterval:     s.cluster.cfg.BlockRestartInterval,
		DisableScrub:             s.cluster.cfg.DisableScrub,
		ScrubInterval:            s.cluster.cfg.ScrubInterval,
		ScrubBlockPace:           s.cluster.cfg.ScrubBlockPace,
		SnapshotInterval:         s.cluster.cfg.SnapshotInterval,
		WALRetainSegments:        s.cluster.cfg.WALRetainSegments,
		Metrics:                  s.cluster.metrics,
		MetricsTable:             info.Table,
		OnReplay: func(c kv.Cell) {
			s.cluster.clock.Observe(c.Ts)
			replayed = append(replayed, c.Clone())
		},
	})
	if err != nil {
		return fmt.Errorf("open region %s: %w", info.ID, err)
	}
	region.store = store

	ctx := RegionCtx{Region: region, Server: s, Cluster: s.cluster}
	store.RegisterPreFlush(func() error {
		if cp := s.cluster.coprocessor(info.Table); cp != nil {
			return cp.PreFlush(ctx)
		}
		return nil
	})
	store.RegisterPostCompact(func(gc lsm.CompactionGC) {
		// A crashed server's regions are closed, but a round that was
		// already installing may still fire; its in-memory observations
		// must not leak into the revived cluster state.
		if s.crashed.Load() {
			return
		}
		if cp := s.cluster.coprocessor(info.Table); cp != nil {
			cp.PostCompact(ctx, gc)
		}
	})

	s.mu.Lock()
	if s.crashed.Load() {
		// The server died while the store was opening: crash() already
		// swept s.regions, so registering now would leave a live store on
		// a dead server while recovery reopens the region elsewhere.
		s.mu.Unlock()
		store.Close()
		return ErrServerDown
	}
	s.regions[info.ID] = region
	s.mu.Unlock()

	if cp := s.cluster.coprocessor(info.Table); cp != nil && len(replayed) > 0 {
		// The replayed cells already sit in the memtable; re-enqueueing
		// their index work must be atomic with respect to flushes, exactly
		// like the put pipeline (§5.3 PR(Flushed) = ∅). Outside the gate an
		// auto-flush could truncate the WAL before a replayed task is back
		// in the AUQ, and a subsequent region close would then drop the
		// task with no replay source left.
		//
		// The dispatch runs in the background: enqueues can block on AUQ
		// backpressure until some other region heals, and OpenRegion's
		// callers (a balancer move, crash recovery) may hold the topology
		// lock that healing needs — blocking here would deadlock recovery
		// against admission control. ReplayStarted keeps the work visible
		// to convergence waits until the dispatch finishes.
		done := func() {}
		if rs, ok := cp.(interface{ ReplayStarted(int) func() }); ok {
			done = rs.ReplayStarted(len(replayed))
		}
		go func() {
			defer done()
			_ = store.Pipeline(func() error {
				for _, c := range replayed {
					cp.OnReplay(ctx, c)
				}
				return nil
			})
		}()
	}
	return nil
}

// CloseRegion closes a hosted region, leaving its files for another server.
func (s *RegionServer) CloseRegion(regionID string) error {
	s.mu.Lock()
	region, ok := s.regions[regionID]
	delete(s.regions, regionID)
	s.mu.Unlock()
	if !ok {
		return ErrRegionNotFound
	}
	if cp := s.cluster.coprocessor(region.Info.Table); cp != nil {
		cp.OnRegionClose(RegionCtx{Region: region, Server: s, Cluster: s.cluster})
	}
	return region.store.Close()
}

func (s *RegionServer) region(id string) (*Region, error) {
	if s.crashed.Load() {
		return nil, ErrServerDown
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	region, ok := s.regions[id]
	if !ok {
		return nil, ErrRegionNotFound
	}
	if region.frozen.Load() {
		return nil, ErrRegionNotFound // mid-split: clients re-route and retry
	}
	// Every data RPC that resolved a region counts toward the hotspot
	// signal: per region for placement decisions, per server for imbalance
	// detection.
	region.ops.Add(1)
	s.ops.Inc()
	return region, nil
}

// FreezeRegion makes a hosted region reject requests (used while a split is
// in flight). The region's store stays open for the split's own flush.
func (s *RegionServer) FreezeRegion(id string) error {
	if s.crashed.Load() {
		return ErrServerDown
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	region, ok := s.regions[id]
	if !ok {
		return ErrRegionNotFound
	}
	region.frozen.Store(true)
	return nil
}

// UnfreezeRegion reverts FreezeRegion — the failure path of a split or
// merge that froze a parent it could not finish dismantling.
func (s *RegionServer) UnfreezeRegion(id string) error {
	if s.crashed.Load() {
		return ErrServerDown
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	region, ok := s.regions[id]
	if !ok {
		return ErrRegionNotFound
	}
	region.frozen.Store(false)
	return nil
}

// PutRow applies a multi-column row put: the server assigns the timestamp,
// logs and applies the cells, then invokes the table's coprocessor (the
// synchronous part of index maintenance runs inside this RPC). When wantOld
// is set the previous visible row values (at ts−δ) are returned — the hook
// async-session uses to build client-side delete markers (§5.2). tr, when
// non-nil, is the client operation's trace; the store and the coprocessor
// add their stage durations to it.
func (s *RegionServer) PutRow(regionID string, row []byte, cols map[string][]byte, wantOld bool, tr *metrics.Trace) (kv.Timestamp, map[string][]byte, error) {
	region, err := s.region(regionID)
	if err != nil {
		return 0, nil, err
	}
	ts := s.cluster.clock.Next()

	var old map[string][]byte
	if wantOld {
		if old, err = region.LocalGetRow(row, ts-kv.Delta); err != nil {
			return 0, nil, mapStoreErr(err)
		}
	}

	cells := make([]kv.Cell, 0, len(cols))
	for col, val := range cols {
		cells = append(cells, kv.Cell{Key: kv.BaseKey(row, []byte(col)), Value: val, Ts: ts, Kind: kv.KindPut})
	}
	// The whole put pipeline — base apply plus coprocessor — runs inside the
	// store's write gate, making asynchronous index work enqueued by the
	// observer atomic with the memtable insert (the PR(Flushed) = ∅
	// invariant of §5.3). Index maintenance failures never fail the base put
	// (§6.2): the observer queues retries itself.
	err = region.store.Pipeline(func() error {
		if err := region.store.ApplyBatchLocked(cells, tr); err != nil {
			return err
		}
		if cp := s.cluster.coprocessor(region.Info.Table); cp != nil {
			ctx := RegionCtx{Region: region, Server: s, Cluster: s.cluster, Trace: tr}
			_ = cp.PostPut(ctx, row, cols, ts)
		}
		return nil
	})
	if err != nil {
		return 0, nil, mapStoreErr(err)
	}
	return ts, old, nil
}

// DeleteRow tombstones the given columns of a row (all currently visible
// columns when cols is nil), then invokes the coprocessor. Deletion is
// handled like a put of a tombstone (§4.3).
func (s *RegionServer) DeleteRow(regionID string, row []byte, cols []string, tr *metrics.Trace) (kv.Timestamp, error) {
	region, err := s.region(regionID)
	if err != nil {
		return 0, err
	}
	ts := s.cluster.clock.Next()
	if cols == nil {
		existing, err := region.LocalGetRow(row, ts-kv.Delta)
		if err != nil {
			return 0, err
		}
		for col := range existing {
			cols = append(cols, col)
		}
	}
	cells := make([]kv.Cell, 0, len(cols))
	for _, col := range cols {
		cells = append(cells, kv.Cell{Key: kv.BaseKey(row, []byte(col)), Ts: ts, Kind: kv.KindDelete})
	}
	err = region.store.Pipeline(func() error {
		if err := region.store.ApplyBatchLocked(cells, tr); err != nil {
			return err
		}
		if cp := s.cluster.coprocessor(region.Info.Table); cp != nil {
			ctx := RegionCtx{Region: region, Server: s, Cluster: s.cluster, Trace: tr}
			_ = cp.PostDelete(ctx, row, cols, ts)
		}
		return nil
	})
	if err != nil {
		return 0, mapStoreErr(err)
	}
	return ts, nil
}

// Apply writes pre-timestamped cells directly (no coprocessor): the raw
// path used for index-table maintenance operations and idempotent
// redelivery, where timestamps must equal the base entry's (§4.3).
func (s *RegionServer) Apply(regionID string, cells []kv.Cell) error {
	region, err := s.region(regionID)
	if err != nil {
		return err
	}
	for _, c := range cells {
		s.cluster.clock.Observe(c.Ts)
	}
	return mapStoreErr(region.store.ApplyBatch(cells))
}

// Get reads the newest non-deleted version of a store key visible at ts.
func (s *RegionServer) Get(regionID string, key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	region, err := s.region(regionID)
	if err != nil {
		return kv.Cell{}, false, err
	}
	c, ok, err := region.store.Get(key, ts)
	return c, ok, mapStoreErr(err)
}

// GetResult is one item of a MultiGet reply. Found reports whether any
// visible non-deleted version of the key exists.
type GetResult struct {
	Cell  kv.Cell
	Found bool
}

// MultiGet serves a batch of point reads against one region in a single
// RPC — the server half of the region-grouped read path. Results are
// positional: out[i] answers keys[i].
func (s *RegionServer) MultiGet(regionID string, keys [][]byte, ts kv.Timestamp) ([]GetResult, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	out := make([]GetResult, len(keys))
	for i, key := range keys {
		c, ok, err := region.store.Get(key, ts)
		if err != nil {
			return nil, mapStoreErr(err)
		}
		out[i] = GetResult{Cell: c, Found: ok}
	}
	return out, nil
}

// MultiGetRow serves a batch of whole-row reads against one region in a
// single RPC. Results are positional: out[i] holds rows[i]'s visible
// columns, nil when the row has none (matching Client.GetRow).
func (s *RegionServer) MultiGetRow(regionID string, rows [][]byte, ts kv.Timestamp) ([]map[string][]byte, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	out := make([]map[string][]byte, len(rows))
	for i, row := range rows {
		cols, err := region.LocalGetRow(row, ts)
		if err != nil {
			return nil, mapStoreErr(err)
		}
		if len(cols) > 0 {
			out[i] = cols
		}
	}
	return out, nil
}

// GetAsOf reads a store key as it stood at ts (time-travel read): the
// newest non-deleted version with timestamp ≤ ts, or lsm.ErrHistoryTrimmed
// when the as-of version may have been compacted away.
func (s *RegionServer) GetAsOf(regionID string, key []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	region, err := s.region(regionID)
	if err != nil {
		return kv.Cell{}, false, err
	}
	c, ok, err := region.store.GetAsOf(key, ts)
	if errors.Is(err, lsm.ErrHistoryTrimmed) {
		return kv.Cell{}, false, err // not a routing miss: surface as-is
	}
	return c, ok, mapStoreErr(err)
}

// ScanAsOf returns the visible versions of store keys in [start, end) as
// they stood at ts; keys whose as-of version may have been trimmed are
// skipped (see lsm.Store.ScanAsOf).
func (s *RegionServer) ScanAsOf(regionID string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	results, err := region.store.ScanAsOf(start, end, ts, limit)
	return results, mapStoreErr(err)
}

// TailWAL reads committed data records of one region's WAL forward from a
// resumable position — the RPC surface of the CDC feed.
func (s *RegionServer) TailWAL(regionID string, from wal.Pos, max int) ([]wal.Entry, wal.Pos, int, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, from, 0, err
	}
	entries, next, gap, err := region.store.TailWAL(from, max)
	return entries, next, gap, mapStoreErr(err)
}

// WALCursor opens a retention-pinning cursor over one region's WAL. The
// cursor is an in-process handle (it pins segments in the region's log), so
// it is an administrative API for co-located consumers — the DB-level CDC
// feed — rather than a remoted RPC.
func (s *RegionServer) WALCursor(regionID string, from wal.Pos) (*wal.Cursor, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	return region.store.WALCursor(from), nil
}

// Scan returns the visible versions of store keys in [start, end) at ts.
func (s *RegionServer) Scan(regionID string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	region, err := s.region(regionID)
	if err != nil {
		return nil, err
	}
	results, err := region.store.Scan(start, end, ts, limit)
	return results, mapStoreErr(err)
}

// Flush flushes one region. It is an administrative operation and works on
// frozen (mid-split) regions too.
func (s *RegionServer) Flush(regionID string) error {
	if s.crashed.Load() {
		return ErrServerDown
	}
	s.mu.RLock()
	region, ok := s.regions[regionID]
	s.mu.RUnlock()
	if !ok {
		return ErrRegionNotFound
	}
	return region.store.Flush()
}

// FlushAll flushes every hosted region.
func (s *RegionServer) FlushAll() error {
	if s.crashed.Load() {
		return nil // crashed servers hold no regions to flush
	}
	s.mu.RLock()
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	s.mu.RUnlock()
	for _, r := range regions {
		if err := r.store.Flush(); err != nil && !errors.Is(err, lsm.ErrClosed) {
			return err
		}
	}
	return nil
}

// WaitCompactions blocks until every hosted region's background compaction
// pipeline is idle — in-flight rounds finished and their PostCompact hooks
// (including the piggybacked index cleanse) returned.
func (s *RegionServer) WaitCompactions() {
	if s.crashed.Load() {
		return
	}
	s.mu.RLock()
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	s.mu.RUnlock()
	for _, r := range regions {
		r.store.WaitCompactions()
	}
}

// Regions returns the infos of all hosted regions.
func (s *RegionServer) Regions() []RegionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionInfo, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r.Info)
	}
	return out
}

// crash kills the server: every in-memory structure (memtables, block
// cache, any coprocessor queue keyed to this server) is lost; WAL segments
// and SSTables survive in the shared FS. Subsequent RPCs fail with
// ErrServerDown. Idempotent: regions are released exactly once.
func (s *RegionServer) crash() {
	s.crashed.Store(true)
	s.mu.Lock()
	regions := s.regions
	s.regions = make(map[string]*Region)
	s.mu.Unlock()
	if len(regions) == 0 {
		return
	}
	for _, r := range regions {
		if cp := s.cluster.coprocessor(r.Info.Table); cp != nil {
			cp.OnRegionClose(RegionCtx{Region: r, Server: s, Cluster: s.cluster})
		}
		r.store.Close() // releases files; unflushed data stays in the WAL
	}
	s.mu.Lock()
	s.cache = sstable.NewBlockCache(s.cluster.cfg.BlockCacheBytes)
	s.mu.Unlock()
}

// restart brings a crashed server back to life with empty in-memory state —
// the inverse of crash. The master then re-opens regions on it; WAL replay
// rebuilds their memtables and OnReplay re-enqueues index work (§5.3).
func (s *RegionServer) restart() {
	s.mu.Lock()
	s.cache = sstable.NewBlockCache(s.cluster.cfg.BlockCacheBytes)
	s.regions = make(map[string]*Region)
	s.opening = make(map[string]struct{})
	s.mu.Unlock()
	s.crashed.Store(false)
}

// hostsRegion reports whether the server holds the region at all — frozen,
// serving, or with an open still in flight. The repair pass uses it: any of
// those states means the region is not stranded.
func (s *RegionServer) hostsRegion(regionID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.regions[regionID]; ok {
		return true
	}
	_, ok := s.opening[regionID]
	return ok
}

// hostsUnfrozen reports whether the server currently serves the region and
// no split has frozen it. The master's rebalancer only steals regions that
// are actually movable.
func (s *RegionServer) hostsUnfrozen(regionID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.regions[regionID]
	return ok && !r.frozen.Load()
}

// markDown makes the server reject requests without releasing its regions
// yet. Cluster shutdown marks every server down first so no surviving APS
// worker wastes retries against peers that are about to close.
func (s *RegionServer) markDown() { s.crashed.Store(true) }

func (s *RegionServer) close() error {
	s.crash()
	return nil
}
