package cluster

import (
	"fmt"
	"testing"
)

func TestRestartServerRejoinsAndRebalances(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("j", "s")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("key%02d", i))
		if _, err := cl.Put("t", row, map[string][]byte{"v": []byte(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	ri, _ := c.Master.Locate("t", []byte("key00"))
	victim := ri.Server
	if err := c.Master.CrashServer(victim); err != nil {
		t.Fatal(err)
	}

	if err := c.Master.RestartServer("rs99"); err == nil {
		t.Error("restart of unknown server must fail")
	}
	if err := c.Master.RestartServer(victim); err != nil {
		t.Fatal(err)
	}
	if c.Server(victim).Crashed() {
		t.Fatal("server still down after restart")
	}
	if err := c.Master.RestartServer(victim); err == nil {
		t.Error("restart of a live server must fail")
	}

	// The rebalance must hand the restarted server its fair share: with 3
	// regions over 3 live servers, at least one region.
	regions, _ := c.Master.RegionsOf("t")
	hosted := 0
	for _, ri := range regions {
		if ri.Server == victim {
			hosted++
		}
		if c.Server(ri.Server).Crashed() {
			t.Errorf("region %s assigned to crashed server %s", ri.ID, ri.Server)
		}
	}
	if hosted == 0 {
		t.Error("restarted server received no regions")
	}

	// Every pre-crash write must still be readable (WAL replay on the moved
	// regions), and new writes must route through the rejoined server.
	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("key%02d", i))
		val, _, ok, err := cl.Get("t", row, "v")
		if err != nil || !ok || string(val) != fmt.Sprintf("%d", i) {
			t.Errorf("row %s lost across restart: %q ok=%v err=%v", row, val, ok, err)
		}
	}
	if _, err := cl.Put("t", []byte("key00"), map[string][]byte{"v": []byte("post")}); err != nil {
		t.Fatalf("put after restart: %v", err)
	}
	if val, _, ok, _ := cl.Get("t", []byte("key00"), "v"); !ok || string(val) != "post" {
		t.Errorf("post-restart write lost: %q ok=%v", val, ok)
	}
}

// When every server crashes, the first restart must adopt ALL regions
// (they are orphaned — no live server hosts them).
func TestRestartServerAdoptsOrphanedRegions(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateTable("t", splits("m")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	if _, err := cl.Put("t", []byte("a"), map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("t", []byte("z"), map[string][]byte{"v": []byte("2")}); err != nil {
		t.Fatal(err)
	}

	// Kill both servers. CrashServer on the last one fails to reassign
	// (no live servers), leaving its regions orphaned.
	for _, id := range c.ServerIDs() {
		_ = c.Master.CrashServer(id)
	}
	if live := c.LiveServerIDs(); len(live) != 0 {
		t.Fatalf("live servers after total outage: %v", live)
	}

	first := c.ServerIDs()[0]
	if err := c.Master.RestartServer(first); err != nil {
		t.Fatal(err)
	}
	regions, _ := c.Master.RegionsOf("t")
	for _, ri := range regions {
		if ri.Server != first {
			t.Errorf("region %s still on %s after sole-survivor restart", ri.ID, ri.Server)
		}
	}
	for _, row := range []string{"a", "z"} {
		if val, _, ok, err := cl.Get("t", []byte(row), "v"); err != nil || !ok || len(val) == 0 {
			t.Errorf("row %s lost after total outage + restart (ok=%v err=%v)", row, ok, err)
		}
	}
}
