package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
)

// ApplyStats counts the index-maintenance RPC fan-out: Apply RPCs that
// reached a region server versus the cells those RPCs carried. A batched
// hot path ships many cells per RPC, so Cells/RPCs is the batching factor
// (1.0 = the historical one-RPC-per-cell behaviour).
type ApplyStats struct {
	RPCs  metrics.Counter // Apply RPCs delivered to region servers
	Cells metrics.Counter // cells shipped in those RPCs
}

// Client is the store's client library (§2.2): it caches a copy of the
// partition map and routes each request to the region server hosting the
// key, over the simulated network. On a routing miss (server crashed or
// region moved) it refreshes the map from the master and retries.
type Client struct {
	name    string
	cluster *Cluster

	mu     sync.Mutex
	routes map[string][]RegionInfo

	// stats, when set, counts Apply RPC fan-out (see ApplyStats).
	stats *ApplyStats

	// fanOut, when positive, overrides the cluster's ReadFanOut for this
	// client's scatter-gather operations.
	fanOut int

	// tracer mints per-operation traces (shared with the whole cluster).
	tracer *metrics.Tracer
}

// SetFanOut overrides the cluster-wide fan-out width for this client: the
// bound on concurrent per-region RPCs of one batched operation. n ≤ 0
// restores the cluster default; 1 forces the serial behaviour (useful as a
// baseline). Not safe to call concurrently with requests; attach before use.
func (cl *Client) SetFanOut(n int) { cl.fanOut = n }

// fanOutWidth resolves the effective fan-out bound.
func (cl *Client) fanOutWidth() int {
	if cl.fanOut > 0 {
		return cl.fanOut
	}
	return cl.cluster.cfg.ReadFanOut
}

// SetApplyStats attaches a (possibly shared) fan-out counter to the client.
// Not safe to call concurrently with requests; attach before use.
func (cl *Client) SetApplyStats(s *ApplyStats) { cl.stats = s }

// countApply records one delivered Apply RPC carrying n cells.
func (cl *Client) countApply(n int) {
	if cl.stats != nil {
		cl.stats.RPCs.Inc()
		cl.stats.Cells.Add(int64(n))
	}
}

// NewClient returns a client with the given simnet node name.
func NewClient(c *Cluster, name string) *Client {
	return &Client{name: name, cluster: c, routes: make(map[string][]RegionInfo), tracer: c.tracer}
}

// Name returns the client's node name.
func (cl *Client) Name() string { return cl.name }

// Cluster returns the cluster this client talks to.
func (cl *Client) Cluster() *Cluster { return cl.cluster }

func (cl *Client) regions(table string) ([]RegionInfo, error) {
	cl.mu.Lock()
	cached, ok := cl.routes[table]
	cl.mu.Unlock()
	if ok {
		return cached, nil
	}
	regions, err := cl.cluster.Master.RegionsOf(table)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.routes[table] = regions
	cl.mu.Unlock()
	return regions, nil
}

func (cl *Client) invalidate(table string) {
	cl.mu.Lock()
	delete(cl.routes, table)
	cl.mu.Unlock()
}

func (cl *Client) locate(table string, key []byte) (RegionInfo, error) {
	regions, err := cl.regions(table)
	if err != nil {
		return RegionInfo{}, err
	}
	for _, ri := range regions {
		if ri.Contains(key) {
			return ri, nil
		}
	}
	return RegionInfo{}, fmt.Errorf("cluster: no region for key %q in table %s", key, table)
}

const maxRetries = 20

// retriable reports whether a routing error warrants refreshing the cached
// partition map and retrying.
func retriable(err error) bool {
	return errors.Is(err, ErrServerDown) || errors.Is(err, ErrRegionNotFound)
}

// withRegion routes an operation to the region holding the routing key,
// retrying through map refreshes when the region has moved. Retries back
// off exponentially (1 ms … 64 ms) so requests ride out a region split or
// reassignment in progress.
func (cl *Client) withRegion(table string, routingKey []byte, fn func(ri RegionInfo, s *RegionServer) error) error {
	var lastErr error
	backoff := time.Millisecond
	for attempt := 0; attempt < maxRetries; attempt++ {
		ri, err := cl.locate(table, routingKey)
		if err != nil {
			return err
		}
		server := cl.cluster.Server(ri.Server)
		err = cl.cluster.Net.Call(cl.name, ri.Server, func() error { return fn(ri, server) })
		if retriable(err) {
			cl.invalidate(table)
			lastErr = err
			if len(cl.cluster.LiveServerIDs()) == 0 {
				// Whole-cluster shutdown: nothing to retry against.
				return fmt.Errorf("cluster: no live servers for table %s: %w", table, lastErr)
			}
			time.Sleep(backoff)
			if backoff < 64*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return err
	}
	return fmt.Errorf("cluster: retries exhausted for table %s: %w", table, lastErr)
}

// Put writes a row's columns, returning the server-assigned timestamp.
func (cl *Client) Put(table string, row []byte, cols map[string][]byte) (kv.Timestamp, error) {
	ts, _, err := cl.put(table, row, cols, false)
	return ts, err
}

// PutWithOld writes a row's columns and additionally returns the previous
// visible values of that row — the session-consistency variant of put
// (§5.2: "the server returns the old value and the new timestamp").
func (cl *Client) PutWithOld(table string, row []byte, cols map[string][]byte) (kv.Timestamp, map[string][]byte, error) {
	return cl.put(table, row, cols, true)
}

func (cl *Client) put(table string, row []byte, cols map[string][]byte, wantOld bool) (kv.Timestamp, map[string][]byte, error) {
	tr := cl.tracer.Start("put", table)
	defer cl.tracer.Finish(tr)
	var ts kv.Timestamp
	var old map[string][]byte
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		var err error
		ts, old, err = s.PutRow(ri.ID, row, cols, wantOld, tr)
		return err
	})
	return ts, old, err
}

// Delete tombstones the given columns of a row (all columns when cols is
// nil), returning the delete timestamp.
func (cl *Client) Delete(table string, row []byte, cols []string) (kv.Timestamp, error) {
	tr := cl.tracer.Start("delete", table)
	defer cl.tracer.Finish(tr)
	var ts kv.Timestamp
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		var err error
		ts, err = s.DeleteRow(ri.ID, row, cols, tr)
		return err
	})
	return ts, err
}

// Get reads one column of a row at the latest timestamp. ok reports whether
// the column exists.
func (cl *Client) Get(table string, row []byte, col string) ([]byte, kv.Timestamp, bool, error) {
	return cl.GetAt(table, row, col, kv.MaxTimestamp)
}

// GetAt reads one column of a row as of timestamp ts.
func (cl *Client) GetAt(table string, row []byte, col string, ts kv.Timestamp) ([]byte, kv.Timestamp, bool, error) {
	tr := cl.tracer.Start("get", table)
	defer cl.tracer.Finish(tr)
	var val []byte
	var cellTs kv.Timestamp
	var ok bool
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		c, found, err := s.Get(ri.ID, kv.BaseKey(row, []byte(col)), ts)
		if err != nil {
			return err
		}
		if found {
			val, cellTs, ok = c.Value, c.Ts, true
		} else {
			val, cellTs, ok = nil, 0, false
		}
		return nil
	})
	return val, cellTs, ok, err
}

// GetRow reads all columns of a row at the latest timestamp. A nil map
// means the row has no visible columns.
func (cl *Client) GetRow(table string, row []byte) (map[string][]byte, error) {
	tr := cl.tracer.Start("get-row", table)
	defer cl.tracer.Finish(tr)
	prefix := kv.RowPrefix(row)
	var cols map[string][]byte
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		results, err := s.Scan(ri.ID, prefix, kv.PrefixSuccessor(prefix), kv.MaxTimestamp, 0)
		if err != nil {
			return err
		}
		cols = nil
		for _, res := range results {
			_, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return err
			}
			if cols == nil {
				cols = make(map[string][]byte)
			}
			cols[string(col)] = res.Value
		}
		return nil
	})
	return cols, err
}

// Row is one base-table row returned by Scan.
type Row struct {
	Key  []byte
	Cols map[string][]byte
}

// forEachRegion walks the routing-key range [start, end) region by region
// with a cursor: each step locates the region holding the cursor (through
// the cache, refreshed transparently on routing misses) and invokes fn with
// the region's clamped routing bounds. Cursor iteration stays correct when
// regions split or move mid-scan, unlike walking a point-in-time region
// list. fn returns false to stop early.
func (cl *Client) forEachRegion(table string, start, end []byte, fn func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error)) error {
	cursor := start
	if cursor == nil {
		cursor = []byte{}
	}
	for {
		if end != nil && bytes.Compare(cursor, end) >= 0 {
			return nil
		}
		var (
			more    bool
			nextEnd []byte
		)
		err := cl.withRegion(table, cursor, func(ri RegionInfo, s *RegionServer) error {
			lo := cursor
			hi := ri.End
			if end != nil && (hi == nil || bytes.Compare(end, hi) < 0) {
				hi = end
			}
			var err error
			more, err = fn(ri, lo, hi, s)
			nextEnd = ri.End
			return err
		})
		if err != nil {
			return err
		}
		if !more || nextEnd == nil {
			return nil
		}
		cursor = nextEnd
	}
}

// Scan reads rows with keys in [startRow, endRow) (nil bounds are open),
// visiting regions in key order, up to limit rows (limit ≤ 0 = unlimited).
func (cl *Client) Scan(table string, startRow, endRow []byte, limit int) ([]Row, error) {
	tr := cl.tracer.Start("scan", table)
	defer cl.tracer.Finish(tr)
	var rows []Row
	var curKey []byte
	var curCols map[string][]byte
	flush := func() {
		if curCols != nil {
			rows = append(rows, Row{Key: curKey, Cols: curCols})
			curKey, curCols = nil, nil
		}
	}
	hitLimit := false
	err := cl.forEachRegion(table, startRow, endRow, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		// Translate row bounds into store-key bounds. An empty lower bound
		// still starts at BaseDataStart so local-index entries (which sort
		// below all base data) stay out of row scans.
		storeLo := kv.BaseDataStart
		if len(lo) > 0 {
			storeLo = kv.RowPrefix(lo)
		}
		var storeHi []byte
		if hi != nil {
			storeHi = kv.RowPrefix(hi)
		}
		results, err := s.Scan(ri.ID, storeLo, storeHi, kv.MaxTimestamp, 0)
		if err != nil {
			return false, err
		}
		for _, res := range results {
			row, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return false, err
			}
			if curCols == nil || !bytes.Equal(row, curKey) {
				flush()
				if limit > 0 && len(rows) >= limit {
					hitLimit = true
					return false, nil
				}
				curKey = append([]byte(nil), row...)
				curCols = make(map[string][]byte)
			}
			curCols[string(col)] = res.Value
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if !hitLimit {
		flush()
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}

// RawApply writes pre-timestamped cells to the region holding routingKey —
// the index-maintenance path, where cells carry the base entry's timestamp.
func (cl *Client) RawApply(table string, routingKey []byte, cells []kv.Cell) error {
	err := cl.withRegion(table, routingKey, func(ri RegionInfo, s *RegionServer) error {
		return s.Apply(ri.ID, cells)
	})
	if err == nil {
		cl.countApply(len(cells))
	}
	return err
}

// MultiApply writes pre-timestamped cells to a RAW (index) table, grouping
// them by destination region through the cached partition map and issuing
// ONE Apply RPC per region, with the per-region RPCs in flight concurrently
// under the client's fan-out bound. Each cell routes by its own Key (raw
// tables route by store key).
//
// When a region moved mid-batch (split, crash recovery), the groups that
// hit the stale route fail with a retriable error; the partition map is
// invalidated and only the failed cells are regrouped and retried, with the
// same backoff as withRegion. Cells carry fixed timestamps, so a retry that
// re-delivers an already-applied cell is idempotent under LSM semantics
// (§4.3's same-timestamp rule) — no cell is lost or duplicated.
func (cl *Client) MultiApply(table string, cells []kv.Cell) error {
	if len(cells) == 0 {
		return nil
	}
	return cl.multiRoute(table, len(cells),
		func(i int) []byte { return cells[i].Key },
		func(ri RegionInfo, s *RegionServer, group []int) error {
			batch := make([]kv.Cell, len(group))
			for j, i := range group {
				batch[j] = cells[i]
			}
			return s.Apply(ri.ID, batch)
		},
		func(group []int) { cl.countApply(len(group)) })
}

// multiRoute is the engine behind the region-grouped batch operations
// (MultiGet, MultiGetRow, MultiApply): items 0…n-1 route by routeKey
// through the cached partition map, each destination region receives ONE
// call carrying its group of item indices, and the per-region calls are
// issued concurrently under the client's bounded fan-out. Groups that fail
// with a retriable routing error (split, crash recovery) invalidate the map
// and only their items are regrouped and retried, with the same backoff as
// withRegion — call must therefore be idempotent under redelivery and write
// its results into caller-owned slots indexed by item, which keeps results
// in input order no matter how items regroup. A non-retriable error
// surfaces deterministically: among failing groups, the one lowest in
// region-dispatch order (itself fixed by item order) wins. onSuccess, when
// non-nil, observes each group whose call round-tripped successfully.
func (cl *Client) multiRoute(table string, n int, routeKey func(i int) []byte, call func(ri RegionInfo, s *RegionServer, group []int) error, onSuccess func(group []int)) error {
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	backoff := time.Millisecond
	for attempt := 0; attempt < maxRetries; attempt++ {
		// Group the pending items by destination region.
		regions, err := cl.regions(table)
		if err != nil {
			return err
		}
		var order []string // region dispatch order: first item routed there
		groups := make(map[string][]int)
		infos := make(map[string]RegionInfo)
		for _, i := range pending {
			ri, ok := regionContaining(regions, routeKey(i))
			if !ok {
				return fmt.Errorf("cluster: no region for key %q in table %s", routeKey(i), table)
			}
			if _, seen := groups[ri.ID]; !seen {
				order = append(order, ri.ID)
				infos[ri.ID] = ri
			}
			groups[ri.ID] = append(groups[ri.ID], i)
		}
		cl.cluster.noteWave(len(order), len(pending), attempt == 0)

		// One call per region, concurrently; collect the items of failed
		// (retriable) groups for the next round.
		var mu sync.Mutex
		var failed []int
		err = runFanOut(cl.fanOutWidth(), len(order), func(g int) error {
			ri := infos[order[g]]
			group := groups[order[g]]
			server := cl.cluster.Server(ri.Server)
			callErr := cl.cluster.Net.Call(cl.name, ri.Server, func() error {
				return call(ri, server, group)
			})
			switch {
			case callErr == nil:
				if onSuccess != nil {
					onSuccess(group)
				}
			case retriable(callErr):
				mu.Lock()
				lastErr = callErr
				failed = append(failed, group...)
				mu.Unlock()
			default:
				return callErr
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(failed) == 0 {
			return nil
		}
		cl.invalidate(table)
		if len(cl.cluster.LiveServerIDs()) == 0 {
			return fmt.Errorf("cluster: no live servers for table %s: %w", table, lastErr)
		}
		sort.Ints(failed) // deterministic regroup order across retry rounds
		pending = failed
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("cluster: retries exhausted for table %s: %w", table, lastErr)
}

// GetSpec addresses one point read of a MultiGet batch: Key is the store
// key to read, Route the routing key locating its region (the row key for
// base tables). A nil Route routes by Key itself — the raw/index-table
// case, where store keys are routing keys.
type GetSpec struct {
	Route []byte
	Key   []byte
}

func (g GetSpec) route() []byte {
	if g.Route != nil {
		return g.Route
	}
	return g.Key
}

// MultiGet reads a batch of store keys at ts, grouping them by destination
// region through the cached partition map: one MultiGet RPC per region,
// issued concurrently under the client's fan-out bound. Results are
// positional — out[i] answers specs[i] — so output order equals input order
// regardless of grouping, retries or scheduling. Stale-routed groups retry
// after a map invalidation exactly like MultiApply; point reads are
// trivially idempotent, so redelivery is safe.
func (cl *Client) MultiGet(table string, specs []GetSpec, ts kv.Timestamp) ([]GetResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	tr := cl.tracer.Start("multi-get", table)
	defer cl.tracer.Finish(tr)
	out := make([]GetResult, len(specs))
	err := cl.multiRoute(table, len(specs),
		func(i int) []byte { return specs[i].route() },
		func(ri RegionInfo, s *RegionServer, group []int) error {
			keys := make([][]byte, len(group))
			for j, i := range group {
				keys[j] = specs[i].Key
			}
			res, err := s.MultiGet(ri.ID, keys, ts)
			if err != nil {
				return err
			}
			for j, i := range group {
				out[i] = res[j]
			}
			return nil
		}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MultiGetRow reads a batch of whole base-table rows in one region-grouped,
// concurrent wave: the batched form of GetRow, and the resolver FetchRows
// uses to turn N index hits into rows with one RPC per region instead of N
// serial round trips. out[i] holds rows[i]'s visible columns (nil = no
// visible row), in input order.
func (cl *Client) MultiGetRow(table string, rows [][]byte) ([]map[string][]byte, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	tr := cl.tracer.Start("multi-get-row", table)
	defer cl.tracer.Finish(tr)
	out := make([]map[string][]byte, len(rows))
	err := cl.multiRoute(table, len(rows),
		func(i int) []byte { return rows[i] },
		func(ri RegionInfo, s *RegionServer, group []int) error {
			batch := make([][]byte, len(group))
			for j, i := range group {
				batch[j] = rows[i]
			}
			res, err := s.MultiGetRow(ri.ID, batch, kv.MaxTimestamp)
			if err != nil {
				return err
			}
			for j, i := range group {
				out[i] = res[j]
			}
			return nil
		}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// regionContaining finds the region of a sorted region list holding key.
func regionContaining(regions []RegionInfo, key []byte) (RegionInfo, bool) {
	for _, ri := range regions {
		if ri.Contains(key) {
			return ri, true
		}
	}
	return RegionInfo{}, false
}

// RawGet reads a raw store key from the region holding routingKey at ts.
func (cl *Client) RawGet(table string, routingKey, storeKey []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	var cell kv.Cell
	var ok bool
	err := cl.withRegion(table, routingKey, func(ri RegionInfo, s *RegionServer) error {
		var err error
		cell, ok, err = s.Get(ri.ID, storeKey, ts)
		return err
	})
	return cell, ok, err
}

// scatterRanges snapshots the table's region routing boundaries clamped to
// [start, end), the unit of work one scatter-gather scan branch covers.
// Each branch re-walks its slice of the routing space with the cursor loop
// (forEachRegion), so a region that splits after the snapshot is still
// covered — the branch just visits both children. A region that MERGED
// after the snapshot spans several branch ranges; range-clamped scans
// (RawScan) stay disjoint naturally, while whole-region scans
// (BroadcastScan) dedupe with an ownership rule — see ownsRegion.
type scatterRange struct {
	lo, hi []byte
}

func (cl *Client) scatterRanges(table string, start, end []byte) ([]scatterRange, error) {
	regions, err := cl.regions(table)
	if err != nil {
		return nil, err
	}
	var out []scatterRange
	for _, ri := range regions {
		if !ri.Overlaps(start, end) {
			continue
		}
		lo, hi := ri.Start, ri.End
		if start != nil && (lo == nil || bytes.Compare(start, lo) > 0) {
			lo = start
		}
		if end != nil && (hi == nil || bytes.Compare(end, hi) < 0) {
			hi = end
		}
		out = append(out, scatterRange{lo: lo, hi: hi})
	}
	return out, nil
}

// BroadcastScan runs the same store-key scan against EVERY region of the
// table and concatenates the results in region (routing) order, not
// globally sorted. This is the query pattern of local secondary indexes
// (§3.1: "every query has to be broadcast to each region"); each region
// contributes its own matching entries. The per-region scans run
// concurrently under the client's fan-out bound, so latency tracks the
// slowest region rather than the region count.
//
// limit bounds EACH region's result count (≤ 0 = unlimited): regions scan
// independently, so a global cutoff cannot be pushed down. Callers needing
// a global bound sort the concatenation and truncate (readLocalIndex does).
func (cl *Client) BroadcastScan(table string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	ranges, err := cl.scatterRanges(table, nil, nil)
	if err != nil {
		return nil, err
	}
	parts := make([][]lsm.ScanResult, len(ranges))
	rpcs := make([]int, len(ranges))
	err = runFanOut(cl.fanOutWidth(), len(ranges), func(i int) error {
		return cl.forEachRegion(table, ranges[i].lo, ranges[i].hi, func(ri RegionInfo, _, _ []byte, s *RegionServer) (bool, error) {
			// A region that merged after the snapshot spans several branch
			// ranges and would be broadcast once per branch; only the branch
			// owning its start key scans it.
			if !ownsRegion(ranges[i], ri.Start) {
				return true, nil
			}
			results, err := s.Scan(ri.ID, start, end, ts, limit)
			if err != nil {
				return false, err
			}
			parts[i] = append(parts[i], results...)
			rpcs[i]++
			return true, nil
		})
	})
	cl.noteScatter(rpcs)
	if err != nil {
		return nil, err
	}
	return concatScans(parts), nil
}

// RawScan scans raw store keys in [start, end) across regions at ts, up to
// limit results (≤ 0 = unlimited). For index tables, routing keys equal
// store keys, so concatenating the per-range results in snapshot order
// yields globally key-ordered output; each range scans up to limit entries
// concurrently and the concatenation is truncated to limit, which returns
// exactly the first limit results in key order — the serial semantics.
func (cl *Client) RawScan(table string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	ranges, err := cl.scatterRanges(table, start, end)
	if err != nil {
		return nil, err
	}
	parts := make([][]lsm.ScanResult, len(ranges))
	rpcs := make([]int, len(ranges))
	err = runFanOut(cl.fanOutWidth(), len(ranges), func(i int) error {
		return cl.forEachRegion(table, ranges[i].lo, ranges[i].hi, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
			remaining := 0
			if limit > 0 {
				remaining = limit - len(parts[i])
				if remaining <= 0 {
					return false, nil
				}
			}
			results, err := s.Scan(ri.ID, lo, hi, ts, remaining)
			if err != nil {
				return false, err
			}
			parts[i] = append(parts[i], results...)
			rpcs[i]++
			return true, nil
		})
	})
	cl.noteScatter(rpcs)
	if err != nil {
		return nil, err
	}
	out := concatScans(parts)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// ownsRegion reports whether a scatter branch owns the region whose start
// key is riStart (nil = the keyspace minimum): ownership goes to the single
// branch whose [lo, hi) range contains the region's start, so a region
// spanning several branch snapshots (a post-snapshot merge) is whole-region
// scanned exactly once.
func ownsRegion(r scatterRange, riStart []byte) bool {
	if riStart == nil {
		return r.lo == nil
	}
	if r.lo != nil && bytes.Compare(riStart, r.lo) < 0 {
		return false
	}
	return r.hi == nil || bytes.Compare(riStart, r.hi) < 0
}

// noteScatter records one scatter-gather scan wave's realized RPC count.
func (cl *Client) noteScatter(rpcs []int) {
	total := 0
	for _, n := range rpcs {
		total += n
	}
	cl.cluster.noteWave(total, 0, true)
}

// concatScans flattens per-branch results preserving branch order.
func concatScans(parts [][]lsm.ScanResult) []lsm.ScanResult {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return nil
	}
	out := make([]lsm.ScanResult, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
