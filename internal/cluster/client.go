package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
)

// ApplyStats counts the index-maintenance RPC fan-out: Apply RPCs that
// reached a region server versus the cells those RPCs carried. A batched
// hot path ships many cells per RPC, so Cells/RPCs is the batching factor
// (1.0 = the historical one-RPC-per-cell behaviour).
type ApplyStats struct {
	RPCs  metrics.Counter // Apply RPCs delivered to region servers
	Cells metrics.Counter // cells shipped in those RPCs
}

// Client is the store's client library (§2.2): it caches a copy of the
// partition map and routes each request to the region server hosting the
// key, over the simulated network. On a routing miss (server crashed or
// region moved) it refreshes the map from the master and retries.
type Client struct {
	name    string
	cluster *Cluster

	mu     sync.Mutex
	routes map[string][]RegionInfo

	// stats, when set, counts Apply RPC fan-out (see ApplyStats).
	stats *ApplyStats

	// tracer mints per-operation traces (shared with the whole cluster).
	tracer *metrics.Tracer
}

// SetApplyStats attaches a (possibly shared) fan-out counter to the client.
// Not safe to call concurrently with requests; attach before use.
func (cl *Client) SetApplyStats(s *ApplyStats) { cl.stats = s }

// countApply records one delivered Apply RPC carrying n cells.
func (cl *Client) countApply(n int) {
	if cl.stats != nil {
		cl.stats.RPCs.Inc()
		cl.stats.Cells.Add(int64(n))
	}
}

// NewClient returns a client with the given simnet node name.
func NewClient(c *Cluster, name string) *Client {
	return &Client{name: name, cluster: c, routes: make(map[string][]RegionInfo), tracer: c.tracer}
}

// Name returns the client's node name.
func (cl *Client) Name() string { return cl.name }

// Cluster returns the cluster this client talks to.
func (cl *Client) Cluster() *Cluster { return cl.cluster }

func (cl *Client) regions(table string) ([]RegionInfo, error) {
	cl.mu.Lock()
	cached, ok := cl.routes[table]
	cl.mu.Unlock()
	if ok {
		return cached, nil
	}
	regions, err := cl.cluster.Master.RegionsOf(table)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.routes[table] = regions
	cl.mu.Unlock()
	return regions, nil
}

func (cl *Client) invalidate(table string) {
	cl.mu.Lock()
	delete(cl.routes, table)
	cl.mu.Unlock()
}

func (cl *Client) locate(table string, key []byte) (RegionInfo, error) {
	regions, err := cl.regions(table)
	if err != nil {
		return RegionInfo{}, err
	}
	for _, ri := range regions {
		if ri.Contains(key) {
			return ri, nil
		}
	}
	return RegionInfo{}, fmt.Errorf("cluster: no region for key %q in table %s", key, table)
}

const maxRetries = 20

// retriable reports whether a routing error warrants refreshing the cached
// partition map and retrying.
func retriable(err error) bool {
	return errors.Is(err, ErrServerDown) || errors.Is(err, ErrRegionNotFound)
}

// withRegion routes an operation to the region holding the routing key,
// retrying through map refreshes when the region has moved. Retries back
// off exponentially (1 ms … 64 ms) so requests ride out a region split or
// reassignment in progress.
func (cl *Client) withRegion(table string, routingKey []byte, fn func(ri RegionInfo, s *RegionServer) error) error {
	var lastErr error
	backoff := time.Millisecond
	for attempt := 0; attempt < maxRetries; attempt++ {
		ri, err := cl.locate(table, routingKey)
		if err != nil {
			return err
		}
		server := cl.cluster.Server(ri.Server)
		err = cl.cluster.Net.Call(cl.name, ri.Server, func() error { return fn(ri, server) })
		if retriable(err) {
			cl.invalidate(table)
			lastErr = err
			if len(cl.cluster.LiveServerIDs()) == 0 {
				// Whole-cluster shutdown: nothing to retry against.
				return fmt.Errorf("cluster: no live servers for table %s: %w", table, lastErr)
			}
			time.Sleep(backoff)
			if backoff < 64*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		return err
	}
	return fmt.Errorf("cluster: retries exhausted for table %s: %w", table, lastErr)
}

// Put writes a row's columns, returning the server-assigned timestamp.
func (cl *Client) Put(table string, row []byte, cols map[string][]byte) (kv.Timestamp, error) {
	ts, _, err := cl.put(table, row, cols, false)
	return ts, err
}

// PutWithOld writes a row's columns and additionally returns the previous
// visible values of that row — the session-consistency variant of put
// (§5.2: "the server returns the old value and the new timestamp").
func (cl *Client) PutWithOld(table string, row []byte, cols map[string][]byte) (kv.Timestamp, map[string][]byte, error) {
	return cl.put(table, row, cols, true)
}

func (cl *Client) put(table string, row []byte, cols map[string][]byte, wantOld bool) (kv.Timestamp, map[string][]byte, error) {
	tr := cl.tracer.Start("put", table)
	defer cl.tracer.Finish(tr)
	var ts kv.Timestamp
	var old map[string][]byte
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		var err error
		ts, old, err = s.PutRow(ri.ID, row, cols, wantOld, tr)
		return err
	})
	return ts, old, err
}

// Delete tombstones the given columns of a row (all columns when cols is
// nil), returning the delete timestamp.
func (cl *Client) Delete(table string, row []byte, cols []string) (kv.Timestamp, error) {
	tr := cl.tracer.Start("delete", table)
	defer cl.tracer.Finish(tr)
	var ts kv.Timestamp
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		var err error
		ts, err = s.DeleteRow(ri.ID, row, cols, tr)
		return err
	})
	return ts, err
}

// Get reads one column of a row at the latest timestamp. ok reports whether
// the column exists.
func (cl *Client) Get(table string, row []byte, col string) ([]byte, kv.Timestamp, bool, error) {
	return cl.GetAt(table, row, col, kv.MaxTimestamp)
}

// GetAt reads one column of a row as of timestamp ts.
func (cl *Client) GetAt(table string, row []byte, col string, ts kv.Timestamp) ([]byte, kv.Timestamp, bool, error) {
	tr := cl.tracer.Start("get", table)
	defer cl.tracer.Finish(tr)
	var val []byte
	var cellTs kv.Timestamp
	var ok bool
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		c, found, err := s.Get(ri.ID, kv.BaseKey(row, []byte(col)), ts)
		if err != nil {
			return err
		}
		if found {
			val, cellTs, ok = c.Value, c.Ts, true
		} else {
			val, cellTs, ok = nil, 0, false
		}
		return nil
	})
	return val, cellTs, ok, err
}

// GetRow reads all columns of a row at the latest timestamp. A nil map
// means the row has no visible columns.
func (cl *Client) GetRow(table string, row []byte) (map[string][]byte, error) {
	tr := cl.tracer.Start("get-row", table)
	defer cl.tracer.Finish(tr)
	prefix := kv.RowPrefix(row)
	var cols map[string][]byte
	err := cl.withRegion(table, row, func(ri RegionInfo, s *RegionServer) error {
		results, err := s.Scan(ri.ID, prefix, kv.PrefixSuccessor(prefix), kv.MaxTimestamp, 0)
		if err != nil {
			return err
		}
		cols = nil
		for _, res := range results {
			_, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return err
			}
			if cols == nil {
				cols = make(map[string][]byte)
			}
			cols[string(col)] = res.Value
		}
		return nil
	})
	return cols, err
}

// Row is one base-table row returned by Scan.
type Row struct {
	Key  []byte
	Cols map[string][]byte
}

// forEachRegion walks the routing-key range [start, end) region by region
// with a cursor: each step locates the region holding the cursor (through
// the cache, refreshed transparently on routing misses) and invokes fn with
// the region's clamped routing bounds. Cursor iteration stays correct when
// regions split or move mid-scan, unlike walking a point-in-time region
// list. fn returns false to stop early.
func (cl *Client) forEachRegion(table string, start, end []byte, fn func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error)) error {
	cursor := start
	if cursor == nil {
		cursor = []byte{}
	}
	for {
		if end != nil && bytes.Compare(cursor, end) >= 0 {
			return nil
		}
		var (
			more    bool
			nextEnd []byte
		)
		err := cl.withRegion(table, cursor, func(ri RegionInfo, s *RegionServer) error {
			lo := cursor
			hi := ri.End
			if end != nil && (hi == nil || bytes.Compare(end, hi) < 0) {
				hi = end
			}
			var err error
			more, err = fn(ri, lo, hi, s)
			nextEnd = ri.End
			return err
		})
		if err != nil {
			return err
		}
		if !more || nextEnd == nil {
			return nil
		}
		cursor = nextEnd
	}
}

// Scan reads rows with keys in [startRow, endRow) (nil bounds are open),
// visiting regions in key order, up to limit rows (limit ≤ 0 = unlimited).
func (cl *Client) Scan(table string, startRow, endRow []byte, limit int) ([]Row, error) {
	tr := cl.tracer.Start("scan", table)
	defer cl.tracer.Finish(tr)
	var rows []Row
	var curKey []byte
	var curCols map[string][]byte
	flush := func() {
		if curCols != nil {
			rows = append(rows, Row{Key: curKey, Cols: curCols})
			curKey, curCols = nil, nil
		}
	}
	hitLimit := false
	err := cl.forEachRegion(table, startRow, endRow, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		// Translate row bounds into store-key bounds. An empty lower bound
		// still starts at BaseDataStart so local-index entries (which sort
		// below all base data) stay out of row scans.
		storeLo := kv.BaseDataStart
		if len(lo) > 0 {
			storeLo = kv.RowPrefix(lo)
		}
		var storeHi []byte
		if hi != nil {
			storeHi = kv.RowPrefix(hi)
		}
		results, err := s.Scan(ri.ID, storeLo, storeHi, kv.MaxTimestamp, 0)
		if err != nil {
			return false, err
		}
		for _, res := range results {
			row, col, err := kv.SplitBaseKey(res.Key)
			if err != nil {
				return false, err
			}
			if curCols == nil || !bytes.Equal(row, curKey) {
				flush()
				if limit > 0 && len(rows) >= limit {
					hitLimit = true
					return false, nil
				}
				curKey = append([]byte(nil), row...)
				curCols = make(map[string][]byte)
			}
			curCols[string(col)] = res.Value
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if !hitLimit {
		flush()
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}

// RawApply writes pre-timestamped cells to the region holding routingKey —
// the index-maintenance path, where cells carry the base entry's timestamp.
func (cl *Client) RawApply(table string, routingKey []byte, cells []kv.Cell) error {
	err := cl.withRegion(table, routingKey, func(ri RegionInfo, s *RegionServer) error {
		return s.Apply(ri.ID, cells)
	})
	if err == nil {
		cl.countApply(len(cells))
	}
	return err
}

// MultiApply writes pre-timestamped cells to a RAW (index) table, grouping
// them by destination region through the cached partition map and issuing
// ONE Apply RPC per region — the region-batched index-maintenance path.
// Each cell routes by its own Key (raw tables route by store key).
//
// When a region moved mid-batch (split, crash recovery), the groups that
// hit the stale route fail with a retriable error; the partition map is
// invalidated and only the failed cells are regrouped and retried, with the
// same backoff as withRegion. Cells carry fixed timestamps, so a retry that
// re-delivers an already-applied cell is idempotent under LSM semantics
// (§4.3's same-timestamp rule) — no cell is lost or duplicated.
func (cl *Client) MultiApply(table string, cells []kv.Cell) error {
	if len(cells) == 0 {
		return nil
	}
	pending := cells
	var lastErr error
	backoff := time.Millisecond
	for attempt := 0; attempt < maxRetries; attempt++ {
		// Group the pending cells by destination region.
		regions, err := cl.regions(table)
		if err != nil {
			return err
		}
		groups := make(map[string][]kv.Cell)
		infos := make(map[string]RegionInfo)
		for _, c := range pending {
			ri, ok := regionContaining(regions, c.Key)
			if !ok {
				return fmt.Errorf("cluster: no region for key %q in table %s", c.Key, table)
			}
			groups[ri.ID] = append(groups[ri.ID], c)
			infos[ri.ID] = ri
		}

		// One Apply per region; collect the cells of failed (retriable)
		// groups for the next round.
		var failed []kv.Cell
		for id, group := range groups {
			ri := infos[id]
			server := cl.cluster.Server(ri.Server)
			err := cl.cluster.Net.Call(cl.name, ri.Server, func() error {
				return server.Apply(ri.ID, group)
			})
			switch {
			case err == nil:
				cl.countApply(len(group))
			case retriable(err):
				lastErr = err
				failed = append(failed, group...)
			default:
				return err
			}
		}
		if len(failed) == 0 {
			return nil
		}
		cl.invalidate(table)
		if len(cl.cluster.LiveServerIDs()) == 0 {
			return fmt.Errorf("cluster: no live servers for table %s: %w", table, lastErr)
		}
		pending = failed
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("cluster: retries exhausted for table %s: %w", table, lastErr)
}

// regionContaining finds the region of a sorted region list holding key.
func regionContaining(regions []RegionInfo, key []byte) (RegionInfo, bool) {
	for _, ri := range regions {
		if ri.Contains(key) {
			return ri, true
		}
	}
	return RegionInfo{}, false
}

// RawGet reads a raw store key from the region holding routingKey at ts.
func (cl *Client) RawGet(table string, routingKey, storeKey []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	var cell kv.Cell
	var ok bool
	err := cl.withRegion(table, routingKey, func(ri RegionInfo, s *RegionServer) error {
		var err error
		cell, ok, err = s.Get(ri.ID, storeKey, ts)
		return err
	})
	return cell, ok, err
}

// BroadcastScan runs the same store-key scan against EVERY region of the
// table and concatenates the results (region order, not globally sorted).
// This is the query pattern of local secondary indexes (§3.1: "every query
// has to be broadcast to each region"); each region contributes its own
// matching entries, and the cost grows with the region count.
func (cl *Client) BroadcastScan(table string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	var out []lsm.ScanResult
	err := cl.forEachRegion(table, nil, nil, func(ri RegionInfo, _, _ []byte, s *RegionServer) (bool, error) {
		remaining := 0
		if limit > 0 {
			remaining = limit - len(out)
			if remaining <= 0 {
				return false, nil
			}
		}
		results, err := s.Scan(ri.ID, start, end, ts, remaining)
		if err != nil {
			return false, err
		}
		out = append(out, results...)
		return true, nil
	})
	return out, err
}

// RawScan scans raw store keys in [start, end) across regions at ts, up to
// limit results. For index tables, routing keys equal store keys.
func (cl *Client) RawScan(table string, start, end []byte, ts kv.Timestamp, limit int) ([]lsm.ScanResult, error) {
	var out []lsm.ScanResult
	err := cl.forEachRegion(table, start, end, func(ri RegionInfo, lo, hi []byte, s *RegionServer) (bool, error) {
		remaining := 0
		if limit > 0 {
			remaining = limit - len(out)
			if remaining <= 0 {
				return false, nil
			}
		}
		results, err := s.Scan(ri.ID, lo, hi, ts, remaining)
		if err != nil {
			return false, err
		}
		out = append(out, results...)
		return true, nil
	})
	return out, err
}
