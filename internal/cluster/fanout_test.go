package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunFanOutCoversAllIndices(t *testing.T) {
	for _, width := range []int{0, 1, 2, 8, 100} {
		const n = 37
		var hits [n]atomic.Int32
		if err := runFanOut(width, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("width %d: index %d ran %d times", width, i, got)
			}
		}
	}
}

// TestRunFanOutFirstErrorDeterministic checks the error contract: among
// several failing indices, the LOWEST index's error is returned, no matter
// how the workers interleave.
func TestRunFanOutFirstErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 50; trial++ {
		err := runFanOut(4, 10, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLow)
		}
	}
}

// TestRunFanOutSerialStopsEarly checks the width-1 baseline keeps the serial
// loop's early-exit behaviour: nothing past the failing index runs.
func TestRunFanOutSerialStopsEarly(t *testing.T) {
	var ran []int
	err := runFanOut(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 4 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "stop at 4" {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 5 {
		t.Fatalf("ran %v, want exactly indices 0..4", ran)
	}
}
