package cluster

import (
	"fmt"
	"sync"
	"testing"

	"diffindex/internal/kv"
)

func TestSplitRegionBasic(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("row%03d", i))
		if _, err := cl.Put("t", row, map[string][]byte{"v": []byte(fmt.Sprint(i)), "w": []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	regions, _ := c.Master.RegionsOf("t")
	if len(regions) != 1 {
		t.Fatalf("regions = %d", len(regions))
	}
	if err := c.Master.SplitRegion(regions[0].ID, []byte("row030")); err != nil {
		t.Fatal(err)
	}
	regions, _ = c.Master.RegionsOf("t")
	if len(regions) != 2 {
		t.Fatalf("regions after split = %d", len(regions))
	}
	if string(regions[0].End) != "row030" || string(regions[1].Start) != "row030" {
		t.Errorf("split bounds wrong: %v", regions)
	}

	// Every row readable, multi-column intact, through the stale cache.
	for i := 0; i < 60; i++ {
		row := []byte(fmt.Sprintf("row%03d", i))
		cols, err := cl.GetRow("t", row)
		if err != nil || len(cols) != 2 || string(cols["v"]) != fmt.Sprint(i) {
			t.Fatalf("row %s after split = %v err=%v", row, cols, err)
		}
	}
	// Scans stitch across the new boundary in order.
	rows, err := cl.Scan("t", nil, nil, 0)
	if err != nil || len(rows) != 60 {
		t.Fatalf("scan = %d rows err=%v", len(rows), err)
	}
	// Writes to both children work.
	if _, err := cl.Put("t", []byte("row010"), map[string][]byte{"v": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("t", []byte("row050"), map[string][]byte{"v": []byte("new")}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRegionErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", splits("m"))
	regions, _ := c.Master.RegionsOf("t")
	if err := c.Master.SplitRegion("ghost", []byte("x")); err == nil {
		t.Error("split of unknown region succeeded")
	}
	// Split key outside the region.
	if err := c.Master.SplitRegion(regions[0].ID, []byte("z")); err == nil {
		t.Error("out-of-range split key accepted")
	}
	// Split key equal to the region start.
	if err := c.Master.SplitRegion(regions[1].ID, []byte("m")); err == nil {
		t.Error("split at region start accepted")
	}
}

func TestSplitPreservesTimestampsAndTombstones(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")
	ts1, _ := cl.Put("t", []byte("a"), map[string][]byte{"v": []byte("1")})
	cl.Put("t", []byte("b"), map[string][]byte{"v": []byte("1")})
	cl.Delete("t", []byte("b"), nil)
	regions, _ := c.Master.RegionsOf("t")
	if err := c.Master.SplitRegion(regions[0].ID, []byte("b")); err != nil {
		t.Fatal(err)
	}
	v, ts, ok, err := cl.Get("t", []byte("a"), "v")
	if err != nil || !ok || string(v) != "1" || ts != ts1 {
		t.Errorf("Get(a) = %q ts=%d (want %d) ok=%v err=%v", v, ts, ts1, ok, err)
	}
	if _, _, ok, _ := cl.Get("t", []byte("b"), "v"); ok {
		t.Error("deleted row resurrected by split")
	}
}

func TestSplitUnderConcurrentWrites(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Master.CreateTable("t", nil)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		started.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := NewClient(c, fmt.Sprintf("w%d", w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				row := []byte(fmt.Sprintf("k%d-%05d", w, i))
				if _, err := cl.Put("t", row, map[string][]byte{"v": []byte("x")}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					if i < 10 {
						started.Done()
					}
					return
				}
				if i == 9 {
					started.Done() // 10 puts in: real data exists pre-split
				}
			}
		}(w)
	}
	started.Wait()
	regions, _ := c.Master.RegionsOf("t")
	if err := c.Master.SplitRegion(regions[0].ID, []byte("k2")); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// All written rows survive.
	cl := NewClient(c, "verify")
	rows, err := cl.Scan("t", nil, nil, 0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("scan after concurrent split = %d err=%v", len(rows), err)
	}
	for _, r := range rows {
		if string(r.Cols["v"]) != "x" {
			t.Fatalf("row %q corrupted: %v", r.Key, r.Cols)
		}
	}
}

func TestSplitRawTable(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.Master.CreateRawTable("idx", nil); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 20; i++ {
		key := kv.IndexKey([]byte(fmt.Sprintf("v%02d", i)), []byte("row"))
		if err := cl.RawApply("idx", key, []kv.Cell{{Key: key, Ts: kv.Timestamp(i + 1), Kind: kv.KindPut}}); err != nil {
			t.Fatal(err)
		}
	}
	regions, _ := c.Master.RegionsOf("idx")
	splitAt := kv.IndexValuePrefix([]byte("v10"))
	if err := c.Master.SplitRegion(regions[0].ID, splitAt); err != nil {
		t.Fatal(err)
	}
	res, err := cl.RawScan("idx", nil, nil, kv.MaxTimestamp, 0)
	if err != nil || len(res) != 20 {
		t.Fatalf("raw scan after split = %d err=%v", len(res), err)
	}
	regions, _ = c.Master.RegionsOf("idx")
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
}

func TestSplitFreesParentFiles(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", nil)
	cl := NewClient(c, "cl")
	for i := 0; i < 20; i++ {
		cl.Put("t", []byte(fmt.Sprintf("r%02d", i)), map[string][]byte{"v": []byte("x")})
	}
	regions, _ := c.Master.RegionsOf("t")
	parentDir := regionDir(regions[0]) + "/"
	if err := c.Master.SplitRegion(regions[0].ID, []byte("r10")); err != nil {
		t.Fatal(err)
	}
	names, _ := c.FS.List(parentDir)
	if len(names) != 0 {
		t.Errorf("parent files not GCed: %v", names)
	}
}

func TestMergeRegions(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateTable("t", splits("m")); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "cl")
	for i := 0; i < 40; i++ {
		row := []byte(fmt.Sprintf("%c%02d", 'a'+byte(i%26), i))
		if _, err := cl.Put("t", row, map[string][]byte{"v": []byte(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	regions, _ := c.Master.RegionsOf("t")
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	if err := c.Master.MergeRegions(regions[0].ID, regions[1].ID); err != nil {
		t.Fatal(err)
	}
	regions, _ = c.Master.RegionsOf("t")
	if len(regions) != 1 || regions[0].Start != nil || regions[0].End != nil {
		t.Fatalf("merged regions = %v", regions)
	}
	rows, err := cl.Scan("t", nil, nil, 0)
	if err != nil || len(rows) != 40 {
		t.Fatalf("scan after merge = %d err=%v", len(rows), err)
	}
	// Writes keep working on the child.
	if _, err := cl.Put("t", []byte("zzz"), map[string][]byte{"v": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	// Split-then-merge round trip.
	regions, _ = c.Master.RegionsOf("t")
	if err := c.Master.SplitRegion(regions[0].ID, []byte("m")); err != nil {
		t.Fatal(err)
	}
	regions, _ = c.Master.RegionsOf("t")
	if err := c.Master.MergeRegions(regions[0].ID, regions[1].ID); err != nil {
		t.Fatal(err)
	}
	rows, _ = cl.Scan("t", nil, nil, 0)
	if len(rows) != 41 {
		t.Fatalf("rows after split+merge = %d", len(rows))
	}
}

func TestMergeRegionsErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Master.CreateTable("t", splits("g", "p"))
	regions, _ := c.Master.RegionsOf("t")
	if err := c.Master.MergeRegions("ghost", regions[0].ID); err == nil {
		t.Error("merge of unknown region succeeded")
	}
	// Non-adjacent pair.
	if err := c.Master.MergeRegions(regions[0].ID, regions[2].ID); err == nil {
		t.Error("merge of non-adjacent regions succeeded")
	}
	// Reversed order is also non-adjacent by definition.
	if err := c.Master.MergeRegions(regions[1].ID, regions[0].ID); err == nil {
		t.Error("reversed merge succeeded")
	}
}
