// Read-path scatter-gather benchmarks: the wall-clock effect of issuing
// per-region RPCs concurrently instead of serially, under non-zero simulated
// network latency. Each pair of sub-benchmarks contrasts the serial baseline
// (fan-out 1, or the historical one-RPC-per-row loop) with the parallel
// path, on a table wide enough (≥8 regions) that per-region round trips
// dominate:
//
//	FetchRowsWave — resolving 32 index hits to rows: serial GetRow loop
//	                (32 sequential RPCs) vs one MultiGetRow wave (one RPC
//	                per region, concurrent)
//	BroadcastScan — local-index broadcast over every region: fan-out 1 vs
//	                the default fan-out width
//	RawScan       — global-index range scan across all regions, same pair
//
// ns/op carries the simulated RTT, so the RATIO serial/parallel is the
// result; with 16 regions and fan-out 8 the waves should land ≥3× under
// the serial baseline. rpcs/op reports the per-region RPCs each operation
// fanned out into.
package cluster

import (
	"fmt"
	"testing"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/simnet"
)

const (
	benchReadRegions = 16
	benchReadRTT     = 2 * time.Millisecond
)

// benchReadCluster builds a cluster with non-zero network RTT and a raw
// table plus a base table, each split into benchReadRegions regions.
func benchReadCluster(b *testing.B) (*Cluster, *Client) {
	b.Helper()
	c := New(Config{Servers: 8, Net: simnet.Config{RTT: benchReadRTT}})
	b.Cleanup(func() { c.Close() })

	var rawSplits, rowSplits [][]byte
	for i := 1; i < benchReadRegions; i++ {
		rawSplits = append(rawSplits, []byte(fmt.Sprintf("k%03d", i*10)))
		rowSplits = append(rowSplits, []byte(fmt.Sprintf("r%03d", i*10)))
	}
	if err := c.Master.CreateRawTable("idx", rawSplits); err != nil {
		b.Fatal(err)
	}
	if err := c.Master.CreateTable("items", rowSplits); err != nil {
		b.Fatal(err)
	}

	cl := NewClient(c, "bench-load")
	cells := make([]kv.Cell, benchReadRegions*10)
	for i := range cells {
		cells[i] = kv.Cell{
			Key:   []byte(fmt.Sprintf("k%03d", i)),
			Value: []byte(fmt.Sprintf("v%03d", i)),
			Ts:    kv.Timestamp(i + 1),
			Kind:  kv.KindPut,
		}
	}
	if err := cl.MultiApply("idx", cells); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchReadRegions*10; i += 5 {
		row := []byte(fmt.Sprintf("r%03d", i))
		if _, err := cl.Put("items", row, map[string][]byte{"title": []byte(fmt.Sprintf("t%03d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	return c, cl
}

// benchRows returns 32 row keys spread across every region.
func benchRows() [][]byte {
	rows := make([][]byte, 32)
	for i := range rows {
		rows[i] = []byte(fmt.Sprintf("r%03d", (i*5)%(benchReadRegions*10)))
	}
	return rows
}

func reportFanout(b *testing.B, c *Cluster, rpcs0 int64) {
	b.ReportMetric(float64(c.fanoutRPCs.Load()-rpcs0)/float64(b.N), "rpcs/op")
}

func BenchmarkFetchRowsWave(b *testing.B) {
	b.Run("serial-getrow", func(b *testing.B) {
		_, cl := benchReadCluster(b)
		rows := benchRows()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, row := range rows {
				if _, err := cl.GetRow("items", row); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("multigetrow-wave", func(b *testing.B) {
		c, cl := benchReadCluster(b)
		rows := benchRows()
		rpcs0 := c.fanoutRPCs.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.MultiGetRow("items", rows); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportFanout(b, c, rpcs0)
	})
}

func BenchmarkBroadcastScanFanout(b *testing.B) {
	for _, width := range []int{1, DefaultReadFanOut} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			c, cl := benchReadCluster(b)
			cl.SetFanOut(width)
			rpcs0 := c.fanoutRPCs.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := cl.BroadcastScan("idx", nil, nil, kv.MaxTimestamp, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != benchReadRegions*10 {
					b.Fatalf("got %d results", len(results))
				}
			}
			b.StopTimer()
			reportFanout(b, c, rpcs0)
		})
	}
}

func BenchmarkRawScanFanout(b *testing.B) {
	for _, width := range []int{1, DefaultReadFanOut} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			c, cl := benchReadCluster(b)
			cl.SetFanOut(width)
			rpcs0 := c.fanoutRPCs.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := cl.RawScan("idx", nil, nil, kv.MaxTimestamp, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != benchReadRegions*10 {
					b.Fatalf("got %d results", len(results))
				}
			}
			b.StopTimer()
			reportFanout(b, c, rpcs0)
		})
	}
}
