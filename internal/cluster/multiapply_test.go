package cluster

import (
	"fmt"
	"testing"

	"diffindex/internal/kv"
)

// multiApplyCells builds n pre-timestamped raw cells with keys spread across
// the whole keyspace ("k00".."k<n-1>").
func multiApplyCells(n int, tsBase kv.Timestamp) []kv.Cell {
	cells := make([]kv.Cell, n)
	for i := range cells {
		cells[i] = kv.Cell{
			Key:   []byte(fmt.Sprintf("k%02d", i)),
			Value: []byte(fmt.Sprintf("v%02d", i)),
			Ts:    tsBase + kv.Timestamp(i),
			Kind:  kv.KindPut,
		}
	}
	return cells
}

// TestMultiApplySpansRegions checks the core batching contract: cells
// spanning ≥3 regions land in the right regions, with exactly one Apply RPC
// per destination region.
func TestMultiApplySpansRegions(t *testing.T) {
	c := newTestCluster(t, 3)
	// Raw table with 3 regions: (-∞,k10), [k10,k20), [k20,+∞).
	if err := c.Master.CreateRawTable("idx", [][]byte{[]byte("k10"), []byte("k20")}); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	var stats ApplyStats
	cl.SetApplyStats(&stats)

	cells := multiApplyCells(30, 100)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}
	if got := stats.RPCs.Load(); got != 3 {
		t.Errorf("RPCs = %d, want 3 (one per destination region)", got)
	}
	if got := stats.Cells.Load(); got != 30 {
		t.Errorf("Cells = %d, want 30", got)
	}

	// Every cell must be readable, and must live in the region its key
	// routes to (verified by a direct region-server read, no client rerouting).
	regions, err := c.Master.RegionsOf("idx")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	for _, cell := range cells {
		ri, ok := regionContaining(regions, cell.Key)
		if !ok {
			t.Fatalf("no region for %q", cell.Key)
		}
		got, found, err := c.Server(ri.Server).Get(ri.ID, cell.Key, kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("cell %q not in its region %s: found=%v err=%v", cell.Key, ri.ID, found, err)
		}
		if string(got.Value) != string(cell.Value) || got.Ts != cell.Ts {
			t.Errorf("cell %q: got (%q, %d), want (%q, %d)", cell.Key, got.Value, got.Ts, cell.Value, cell.Ts)
		}
	}
}

// TestMultiApplyRegionMoveRetries checks the failure path: the client's
// cached partition map goes stale (a region splits after the cache warmed),
// the first dispatch of the batch hits the dead parent region, and
// MultiApply must invalidate + regroup + retry so that no cell is lost —
// and, because cells carry fixed timestamps, none is duplicated.
func TestMultiApplyRegionMoveRetries(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.Master.CreateRawTable("idx", [][]byte{[]byte("k10")}); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c, "client")
	var stats ApplyStats
	cl.SetApplyStats(&stats)

	// Warm the partition map, then split the upper region behind the
	// client's back: routes for [k10,+∞) now point at a region that no
	// longer exists.
	if err := cl.MultiApply("idx", multiApplyCells(4, 100)); err != nil {
		t.Fatal(err)
	}
	regions, err := c.Master.RegionsOf("idx")
	if err != nil {
		t.Fatal(err)
	}
	var upper RegionInfo
	for _, ri := range regions {
		if ri.Contains([]byte("k25")) {
			upper = ri
		}
	}
	if err := c.Master.SplitRegion(upper.ID, []byte("k20")); err != nil {
		t.Fatal(err)
	}

	// A batch spanning all (now three) regions: the stale groups bounce
	// with ErrRegionNotFound and must be retried against the fresh map.
	cells := multiApplyCells(30, 200)
	if err := cl.MultiApply("idx", cells); err != nil {
		t.Fatal(err)
	}

	// No cell lost: every key readable at its exact timestamp. No cell
	// duplicated: a full scan returns exactly one visible version per key.
	results, err := cl.RawScan("idx", nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]kv.Timestamp)
	for _, res := range results {
		if prev, dup := byKey[string(res.Key)]; dup {
			t.Fatalf("key %q returned twice (ts %d and %d)", res.Key, prev, res.Ts)
		}
		byKey[string(res.Key)] = res.Ts
	}
	for _, cell := range cells {
		ts, ok := byKey[string(cell.Key)]
		if !ok {
			t.Errorf("cell %q lost during region move", cell.Key)
			continue
		}
		if ts != cell.Ts {
			t.Errorf("cell %q: visible ts %d, want %d", cell.Key, ts, cell.Ts)
		}
	}

	// The retry path must have re-sent only the failed groups — total
	// delivered cells is the two successful batches, nothing more.
	if got := stats.Cells.Load(); got != 4+30 {
		t.Errorf("delivered cells = %d, want %d", got, 4+30)
	}
}
