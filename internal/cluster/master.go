package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Master is the management node (§2.2): it creates tables, assigns regions
// to region servers, and — standing in for ZooKeeper's failure detection and
// reassignment — recovers the regions of a crashed server onto live ones,
// where WAL replay restores their memtables (§5.3).
type Master struct {
	cluster *Cluster

	mu     sync.RWMutex
	tables map[string]*tableMeta
	rr     int // round-robin assignment cursor

	// topoMu serializes region-topology mutations: splits, merges, balancer
	// moves and decommissions. Crash and restart handling deliberately do
	// NOT take it — failure recovery must preempt a topology change that may
	// be stalled behind a fault window; the individual operations tolerate
	// that preemption by re-validating metadata under mu.
	topoMu sync.Mutex

	// Continuous balancer loop state (see balance.go).
	balMu   sync.Mutex
	balStop chan struct{}
	balWG   sync.WaitGroup

	// unhosted tracks regions observed routed to a live server that does
	// not actually host them, keyed region ID → server ID. Guarded by
	// topoMu: only the balancer's repair pass reads or writes it.
	unhosted map[string]string
}

type tableMeta struct {
	name    string
	regions []*RegionInfo // sorted by Start
	// raw tables route by the store key itself (index tables); row tables
	// route by the row key decoded from composite store keys (base tables).
	// Region splitting needs this to route existing cells to child regions.
	raw       bool
	nextSplit int // counter for child-region IDs
}

func newMaster(c *Cluster) *Master {
	return &Master{cluster: c, tables: make(map[string]*tableMeta)}
}

// CreateTable creates a row-keyed (base) table pre-split at the given
// routing keys into len(splits)+1 regions, assigned round-robin across live
// servers. Splits must be sorted and distinct.
func (m *Master) CreateTable(name string, splits [][]byte) error {
	return m.createTable(name, splits, false)
}

// CreateRawTable creates a table whose routing keys ARE its store keys —
// the layout of global index tables.
func (m *Master) CreateRawTable(name string, splits [][]byte) error {
	return m.createTable(name, splits, true)
}

func (m *Master) createTable(name string, splits [][]byte, raw bool) error {
	if name == "" {
		return fmt.Errorf("cluster: empty table name")
	}
	for i := 1; i < len(splits); i++ {
		if bytes.Compare(splits[i-1], splits[i]) >= 0 {
			return fmt.Errorf("cluster: splits must be sorted and distinct")
		}
	}
	m.mu.Lock()
	if _, ok := m.tables[name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	live := m.cluster.AssignableServerIDs()
	if len(live) == 0 {
		m.mu.Unlock()
		return ErrNoLiveServers
	}
	meta := &tableMeta{name: name, raw: raw}
	// Offset the assignment cursor per table so a table and its index
	// table never land region-aligned on the same servers: a global index
	// is generally not collocated with the data it indexes, which is
	// exactly why its maintenance pays remote calls (§3.1).
	m.rr++
	bounds := make([][]byte, 0, len(splits)+2)
	bounds = append(bounds, nil)
	bounds = append(bounds, splits...)
	bounds = append(bounds, nil)
	for i := 0; i < len(bounds)-1; i++ {
		server := live[m.rr%len(live)]
		m.rr++
		meta.regions = append(meta.regions, &RegionInfo{
			ID:     fmt.Sprintf("%s.r%04d", name, i),
			Table:  name,
			Start:  bounds[i],
			End:    bounds[i+1],
			Server: server,
		})
	}
	m.tables[name] = meta
	regions := append([]*RegionInfo(nil), meta.regions...)
	m.mu.Unlock()

	for _, ri := range regions {
		if err := m.cluster.Server(ri.Server).OpenRegion(*ri); err != nil {
			return err
		}
	}
	return nil
}

// HasTable reports whether the table exists.
func (m *Master) HasTable(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.tables[name]
	return ok
}

// RegionsOf returns a copy of the table's region map, sorted by start key.
func (m *Master) RegionsOf(table string) ([]RegionInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	meta, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	out := make([]RegionInfo, len(meta.regions))
	for i, ri := range meta.regions {
		out[i] = *ri
	}
	return out, nil
}

// Locate returns the region containing the routing key.
func (m *Master) Locate(table string, key []byte) (RegionInfo, error) {
	regions, err := m.RegionsOf(table)
	if err != nil {
		return RegionInfo{}, err
	}
	i := sort.Search(len(regions), func(i int) bool {
		return regions[i].End == nil || bytes.Compare(key, regions[i].End) < 0
	})
	if i >= len(regions) || !regions[i].Contains(key) {
		return RegionInfo{}, fmt.Errorf("cluster: no region for key %q in table %s", key, table)
	}
	return regions[i], nil
}

// CrashServer kills a region server and recovers each of its regions on a
// live server. In HBase this is driven by ZooKeeper heartbeat expiry; here
// the fault injector calls it directly so experiments control timing.
func (m *Master) CrashServer(id string) error {
	server := m.cluster.Server(id)
	if server == nil {
		return fmt.Errorf("cluster: unknown server %s", id)
	}
	server.crash()

	// Reassign every region that was hosted by the dead server. Prefer
	// assignable servers; fall back to any live server so recovery never
	// stalls just because the survivors are draining.
	m.mu.Lock()
	live := m.cluster.AssignableServerIDs()
	if len(live) == 0 {
		live = m.cluster.LiveServerIDs()
	}
	if len(live) == 0 {
		m.mu.Unlock()
		return ErrNoLiveServers
	}
	var toRecover []*RegionInfo
	for _, meta := range m.tables {
		for _, ri := range meta.regions {
			if ri.Server == id {
				ri.Server = live[m.rr%len(live)]
				m.rr++
				toRecover = append(toRecover, ri)
			}
		}
	}
	recover := make([]RegionInfo, len(toRecover))
	for i, ri := range toRecover {
		recover[i] = *ri
	}
	m.mu.Unlock()

	// Reopen every reassigned region, falling back to other live servers
	// when an open fails (the chosen server crashed in the window, or a
	// fault-injected disk error hit the reopen). One region's failure must
	// not strand the rest un-recovered.
	var firstErr error
	for _, ri := range recover {
		if err := m.recoverRegion(ri, live); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// recoverRegion opens a region on its published server, re-targeting it to
// the other candidates when the open fails. Every re-target republishes the
// assignment under mu before opening — the claim-then-open discipline all
// placement paths follow, so concurrent recovery never double-opens a
// region's store.
func (m *Master) recoverRegion(ri RegionInfo, candidates []string) error {
	tried := make(map[string]bool, len(candidates)+1)
	var lastErr error
	for {
		tried[ri.Server] = true
		if s := m.cluster.Server(ri.Server); s != nil && !s.Crashed() {
			if err := s.OpenRegion(ri); err == nil {
				return nil
			} else {
				lastErr = err
			}
		}
		next := ""
		for _, id := range candidates {
			if s := m.cluster.Server(id); !tried[id] && s != nil && !s.Crashed() && !s.Removed() {
				next = id
				break
			}
		}
		if next == "" {
			if lastErr == nil {
				lastErr = fmt.Errorf("cluster: no live server could adopt region %s", ri.ID)
			}
			return lastErr
		}
		m.mu.Lock()
		cur := m.findRegionLocked(ri.ID)
		if cur == nil || cur.Server != ri.Server {
			// Someone else re-homed (or dissolved) the region meanwhile;
			// their claim wins.
			m.mu.Unlock()
			return nil
		}
		cur.Server = next
		ri = *cur
		m.mu.Unlock()
	}
}

// RestartServer brings a crashed region server back online: the server
// restarts with empty in-memory state, adopts any orphaned regions (regions
// whose host is not live — possible if every server was down at once), and
// then takes regions from the most-loaded servers until it holds roughly its
// fair share. Each moved region replays its WAL on the restarted server, so
// recovery (§5.3) — including OnReplay re-enqueueing of index work — runs
// exactly as it does after a crash. The rebalance plan is deterministic:
// regions are considered in sorted ID order and ties go to the
// lexicographically smallest donor.
func (m *Master) RestartServer(id string) error {
	server := m.cluster.Server(id)
	if server == nil {
		return fmt.Errorf("cluster: unknown server %s", id)
	}
	if server.Removed() {
		return fmt.Errorf("cluster: server %s was decommissioned and cannot restart", id)
	}
	if !server.Crashed() {
		return fmt.Errorf("cluster: server %s is not down", id)
	}
	server.restart()

	type move struct {
		info RegionInfo
		from string // "" when no live server hosts the region
	}
	m.mu.Lock()
	live := m.cluster.LiveServerIDs() // includes id now
	liveSet := make(map[string]bool, len(live))
	for _, lid := range live {
		liveSet[lid] = true
	}
	byServer := make(map[string][]*RegionInfo)
	var orphans []*RegionInfo
	total := 0
	for _, meta := range m.tables {
		for _, ri := range meta.regions {
			total++
			if ri.Server == id || !liveSet[ri.Server] {
				// Metadata points at a dead server, or at the restarted
				// server itself (its crash released everything): nobody
				// serves this region.
				orphans = append(orphans, ri)
			} else {
				byServer[ri.Server] = append(byServer[ri.Server], ri)
			}
		}
	}
	sortRegionPtrs(orphans)
	var moves []move
	for _, ri := range orphans {
		ri.Server = id
		moves = append(moves, move{info: *ri})
	}
	held := len(orphans)
	fair := total / len(live)
	for held < fair {
		donor := ""
		for sid, regions := range byServer {
			if len(regions) > len(byServer[donor]) || (donor != "" && len(regions) == len(byServer[donor]) && sid < donor) {
				donor = sid
			}
		}
		if donor == "" || len(byServer[donor]) <= held+1 {
			break // stealing more would just invert the imbalance
		}
		regions := byServer[donor]
		sortRegionPtrs(regions)
		var ri *RegionInfo
		for i, cand := range regions {
			if m.cluster.Server(donor).hostsUnfrozen(cand.ID) {
				ri = cand
				byServer[donor] = append(regions[:i:i], regions[i+1:]...)
				break
			}
		}
		if ri == nil {
			delete(byServer, donor) // nothing movable here (e.g. mid-split)
			continue
		}
		ri.Server = id
		moves = append(moves, move{info: *ri, from: donor})
		held++
	}
	m.mu.Unlock()

	var firstErr error
	for _, mv := range moves {
		if mv.from != "" {
			// Close on the donor first: its AUQ entries for the region are
			// dropped and reconstructed by WAL replay on the new host. A
			// routing miss or a donor that crashed in the window already
			// released the store.
			if err := m.cluster.Server(mv.from).CloseRegion(mv.info.ID); err != nil &&
				!errors.Is(err, ErrRegionNotFound) && !errors.Is(err, ErrServerDown) && firstErr == nil {
				firstErr = err
			}
		}
		// recoverRegion retries the open and falls back to other live
		// servers, so one failed adoption never strands the region (or the
		// rest of the plan) unserved.
		if err := m.recoverRegion(mv.info, live); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func sortRegionPtrs(regions []*RegionInfo) {
	sort.Slice(regions, func(i, j int) bool { return regions[i].ID < regions[j].ID })
}
