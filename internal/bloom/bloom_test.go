package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func keysN(n int, prefix string) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s%08d", prefix, i))
	}
	return keys
}

func TestNoFalseNegatives(t *testing.T) {
	keys := keysN(10000, "key")
	f := New(keys, BitsPerKey)
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(keys [][]byte) bool {
		f := New(keys, BitsPerKey)
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(keysN(10000, "member"), BitsPerKey)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent%08d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key targets ≈1%; allow generous slack to keep the test stable.
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f exceeds 3%%", rate)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	keys := keysN(500, "k")
	f := New(keys, BitsPerKey)
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !g.MayContain(k) {
			t.Fatalf("false negative after round trip for %q", k)
		}
	}
	if g.k != f.k || len(g.bits) != len(f.bits) {
		t.Error("round trip changed filter shape")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Error("short buffer: want error")
	}
	bad := make([]byte, 12)
	binary.LittleEndian.PutUint32(bad, 0)
	if _, err := Unmarshal(bad); err == nil {
		t.Error("k=0: want error")
	}
	binary.LittleEndian.PutUint32(bad, 31)
	if _, err := Unmarshal(bad); err == nil {
		t.Error("k=31: want error")
	}
}

func TestEmptyAndNilFilter(t *testing.T) {
	f := New(nil, BitsPerKey)
	if f.MayContain([]byte("anything")) {
		// An empty filter has all bits clear, so everything is excluded.
		t.Error("empty filter should exclude all keys")
	}
	var nilF *Filter
	if !nilF.MayContain([]byte("x")) {
		t.Error("nil filter must not exclude keys")
	}
}

func TestDegenerateBitsPerKey(t *testing.T) {
	keys := keysN(100, "k")
	f := New(keys, 0) // clamped to 1 bit/key
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatal("false negative with clamped bitsPerKey")
		}
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(keysN(100000, "k"), BitsPerKey)
	probe := []byte("k00050000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(probe)
	}
}
