// Package bloom implements the Bloom filters embedded in SSTables. HBase
// attaches a Bloom filter to each HFile so point reads skip files that
// cannot contain the requested key; without them every LSM read would probe
// every on-disk component (§2.1). The filter uses double hashing (Kirsch &
// Mitzenmacher) over a 64-bit FNV-1a hash, the standard construction used by
// LevelDB-family stores.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is an immutable Bloom filter over a set of keys.
type Filter struct {
	bits []byte
	k    uint32 // number of probe positions per key
}

// BitsPerKey is the sizing used when building filters: 10 bits/key gives a
// ≈1% false-positive rate, matching HBase's default row Bloom configuration.
const BitsPerKey = 10

// hashKey returns two independent 32-bit hashes of key for double hashing.
func hashKey(key []byte) (h1, h2 uint32) {
	h := fnv.New64a()
	h.Write(key)
	sum := h.Sum64()
	h1 = uint32(sum)
	h2 = uint32(sum >> 32)
	if h2 == 0 { // keep the probe stride non-degenerate
		h2 = 0x9E3779B9
	}
	return h1, h2
}

// New builds a filter containing every key in keys, sized at bitsPerKey bits
// per key (use BitsPerKey for the default ≈1% FP rate).
func New(keys [][]byte, bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	nBits := len(keys) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	// Optimal probe count: k = ln2 · bits/key, clamped to a sane range.
	k := uint32(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	f := &Filter{bits: make([]byte, nBytes), k: k}
	for _, key := range keys {
		f.add(key, uint32(nBits))
	}
	return f
}

func (f *Filter) add(key []byte, nBits uint32) {
	h1, h2 := hashKey(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % nBits
		f.bits[pos/8] |= 1 << (pos % 8)
	}
}

// MayContain reports whether key may be in the set. False negatives never
// occur; false positives occur at roughly the configured rate.
func (f *Filter) MayContain(key []byte) bool {
	if f == nil || len(f.bits) == 0 {
		return true // absent filter: cannot exclude anything
	}
	nBits := uint32(len(f.bits) * 8)
	h1, h2 := hashKey(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// Marshal serializes the filter for embedding in an SSTable footer block.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 4+len(f.bits))
	binary.LittleEndian.PutUint32(out, f.k)
	copy(out[4:], f.bits)
	return out
}

// Unmarshal decodes a filter produced by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bloom: filter too short (%d bytes)", len(data))
	}
	k := binary.LittleEndian.Uint32(data)
	if k == 0 || k > 30 {
		return nil, fmt.Errorf("bloom: invalid probe count %d", k)
	}
	bits := make([]byte, len(data)-4)
	copy(bits, data[4:])
	return &Filter{bits: bits, k: k}, nil
}
