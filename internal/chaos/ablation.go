package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"diffindex"
	"diffindex/internal/core"
	"diffindex/internal/workload"
)

// RunDrainAblation runs the §5.3 recovery-protocol ablation as a directed
// chaos scenario: partition an async-indexed base region away from its index
// region so queued index updates back up in the AUQ, flush the base region,
// crash its server, then heal and check the invariants.
//
// With disableDrain=false the pre-flush AUQ drain runs (after the heal, so
// it can complete) and the crash loses nothing: zero violations. With
// disableDrain=true the flush truncates the WAL while the AUQ still holds
// the updates, so the crash destroys the only record of them — the
// index-complete and index-exact checkers must report violations. A harness
// whose checkers pass the broken protocol would be worthless; this is the
// negative control proving they catch real loss.
func RunDrainAblation(seed int64, disableDrain bool) (*Result, error) {
	res := &Result{Seed: seed, Scheme: diffindex.AsyncSimple}
	begin := time.Now()

	db := diffindex.Open(diffindex.Options{
		Servers:                   3,
		MaxVersions:               1024,
		CompactionThreshold:       64,
		UnsafeDisableDrainOnFlush: disableDrain,
		DisableTracing:            true,
	})
	defer db.Close()
	c, _ := db.Internal()

	// Single-region base and index tables, so "the base server" and "the
	// index server" are well defined (the master's offset round-robin puts
	// them on different servers).
	if err := db.CreateTable(workload.TableName, nil); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(workload.TableName, []string{workload.TitleColumn}, diffindex.AsyncSimple, nil); err != nil {
		return nil, err
	}
	baseRegions, err := db.Regions(workload.TableName)
	if err != nil {
		return nil, err
	}
	baseSrv := baseRegions[0].Server
	idxName := core.IndexDef{Table: workload.TableName, Columns: []string{workload.TitleColumn}}.Name()
	idxRegions, err := db.Regions(idxName)
	if err != nil {
		return nil, err
	}
	if idxRegions[0].Server == baseSrv {
		return nil, errors.New("chaos: ablation needs the index region off the base server")
	}

	cl := db.NewClient("chaos-ablation")
	model := NewModel()
	rng := rand.New(rand.NewSource(mix(seed, "ablation")))
	const items = 40
	for i := int64(0); i < items; i++ {
		ts, err := cl.Put(workload.TableName, workload.ItemKey(i), workload.ItemRow(i, rng))
		if err != nil {
			return nil, fmt.Errorf("chaos: ablation load: %w", err)
		}
		model.Record(i, ts, workload.TitleValue(i))
	}
	if !db.WaitForIndexes(10 * time.Second) {
		return nil, errors.New("chaos: ablation indexes did not converge after load")
	}

	// Cut the base server off from every peer: the APS cannot reach the
	// index region, so each title update below parks in the AUQ.
	for _, id := range db.Servers() {
		if id != baseSrv {
			db.PartitionNetwork(baseSrv, id)
		}
	}
	for i := int64(0); i < items; i++ {
		title := workload.UpdatedTitleValue(i, i+1)
		ts, err := cl.Put(workload.TableName, workload.ItemKey(i), diffindex.Cols{workload.TitleColumn: title})
		if err != nil {
			return nil, fmt.Errorf("chaos: ablation update: %w", err)
		}
		model.Record(i, ts, title)
		res.Ops++
	}

	if disableDrain {
		// Flush under partition with the drain protocol OFF: the WAL is
		// truncated while the AUQ still holds every index update. The crash
		// then drops the AUQ, and replay finds an empty WAL — the updates
		// are gone for good.
		if err := c.Server(baseSrv).FlushAll(); err != nil {
			return nil, fmt.Errorf("chaos: ablation flush: %w", err)
		}
		if err := db.CrashServer(baseSrv); err != nil {
			return nil, err
		}
		db.HealNetwork()
	} else {
		// Healthy protocol: heal first (the drain needs the network), then
		// flush — PreFlush drains the AUQ before the WAL truncation — then
		// crash. Nothing is lost.
		db.HealNetwork()
		if err := c.Server(baseSrv).FlushAll(); err != nil {
			return nil, fmt.Errorf("chaos: ablation flush: %w", err)
		}
		if err := db.CrashServer(baseSrv); err != nil {
			return nil, err
		}
	}
	for _, id := range crashedServers(db) {
		if err := db.RestartServer(id); err != nil {
			return nil, err
		}
	}
	res.Converged = db.WaitForIndexes(20 * time.Second)
	if !res.Converged {
		res.Violations = append(res.Violations, Violation{"convergence",
			fmt.Sprintf("%d async index updates still pending", db.PendingIndexUpdates())})
	}
	checked, vs, err := checkInvariants(db, model)
	if err != nil {
		return nil, err
	}
	res.Checked = checked
	res.Violations = append(res.Violations, vs...)
	res.Elapsed = time.Since(begin)
	exportCounters(c.Metrics(), res)
	return res, nil
}
