package chaos

import (
	"time"

	"diffindex"
)

// ElasticConfig sizes one elastic chaos scenario. Zero values take the
// defaults below.
type ElasticConfig struct {
	Seed   int64
	Scheme diffindex.Scheme
	// Duration is the chaos window (default 1.5s — slightly longer than the
	// base scenario so the decommission drain and post-add balancing fit).
	Duration time.Duration
	// AUQMaxBacklog arms admission control (default 64).
	AUQMaxBacklog int
	// BalancerInterval runs the load-aware balancer during the scenario
	// (default 20ms).
	BalancerInterval time.Duration
}

// RunElastic runs the elastic cluster-dynamics scenario: a seeded schedule
// interleaving server adds, a decommission, a region merge and a split with
// the base harness's crash/restart, partition/heal and fault windows — all
// under a live update workload, with the continuous balancer moving regions
// and AUQ admission control capping async backlog throughout. Every
// per-scheme invariant checker must hold at the end, and the sampled
// backlog must stay within the configured cap.
func RunElastic(cfg ElasticConfig) (*Result, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 1500 * time.Millisecond
	}
	if cfg.AUQMaxBacklog <= 0 {
		cfg.AUQMaxBacklog = 64
	}
	if cfg.BalancerInterval <= 0 {
		cfg.BalancerInterval = 20 * time.Millisecond
	}
	return Run(ScenarioConfig{
		Seed:             cfg.Seed,
		Scheme:           cfg.Scheme,
		Duration:         cfg.Duration,
		AUQMaxBacklog:    cfg.AUQMaxBacklog,
		BalancerInterval: cfg.BalancerInterval,
		Plan: &PlanConfig{
			Crashes: 1, Partitions: 1, Flushes: 1, Splits: 1,
			AddServers: 2, RemoveServers: 1, Merges: 1,
			DiskFaultWindows: 1, NetFaultWindows: 1,
		},
	})
}
