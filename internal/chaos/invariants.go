package chaos

import (
	"fmt"
	"sync"

	"diffindex"
	"diffindex/internal/cluster"
	"diffindex/internal/core"
	"diffindex/internal/kv"
	"diffindex/internal/workload"
)

// Violation is one detected breach of a scheme's consistency contract.
type Violation struct {
	// Invariant names the broken contract: "index-complete" (a base row's
	// indexed value has no index entry — a lost index update),
	// "index-exact" (an index entry points at a row whose value no longer
	// matches — a stale entry surviving where the scheme forbids it),
	// "durability" (an acknowledged base write is missing or shadowed after
	// recovery), "session-ryw" (a session read missed the session's own
	// write), or "convergence" (async queues failed to drain).
	Invariant string
	// Detail identifies the offending row/entry.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Model records the writes the workload got acknowledgements for: per item,
// the highest acked timestamp and the title written at it. It is the ground
// truth the durability checker compares recovered cluster state against.
type Model struct {
	mu   sync.Mutex
	rows map[int64]acked
}

type acked struct {
	ts    int64
	title string
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{rows: make(map[int64]acked)} }

// Record notes an acknowledged put of item's title at ts. Only the highest
// acked timestamp per item is kept: later acked writes supersede earlier
// ones, exactly as the store's MVCC read does.
func (m *Model) Record(item int64, ts int64, title []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w, ok := m.rows[item]; !ok || ts > w.ts {
		m.rows[item] = acked{ts: ts, title: string(title)}
	}
}

// Len returns the number of items with at least one acknowledged write.
func (m *Model) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows)
}

func (m *Model) snapshot() map[int64]acked {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int64]acked, len(m.rows))
	for k, v := range m.rows {
		out[k] = v
	}
	return out
}

type titleCell struct {
	val string
	ts  int64
}

// checkInvariants compares cluster state against the per-scheme contracts
// after quiescence (workload stopped, faults disarmed, partitions healed,
// crashed servers restarted, AUQs drained, and — for sync-insert — the index
// cleansed). It returns the number of facts checked and every violation
// found. All schemes are held to the same post-quiescence standard: complete
// (no lost entries), exact (no stale entries) and durable (no lost acked
// writes); what differs per scheme is only how much work the runner had to
// do to reach quiescence (nothing for sync-full, a Cleanse for sync-insert,
// an AUQ drain for the async schemes).
func checkInvariants(db *diffindex.DB, model *Model) (checked int, vs []Violation, err error) {
	c, _ := db.Internal()
	raw := cluster.NewClient(c, "chaos-checker")

	// Base-table ground truth: every row's visible title and its timestamp.
	baseCells, err := raw.RawScan(workload.TableName, kv.BaseDataStart, nil, kv.MaxTimestamp, 0)
	if err != nil {
		return 0, nil, fmt.Errorf("chaos: base scan: %w", err)
	}
	base := make(map[string]titleCell)
	for _, sr := range baseCells {
		row, col, err := kv.SplitBaseKey(sr.Key)
		if err != nil || string(col) != workload.TitleColumn {
			continue
		}
		base[string(row)] = titleCell{val: string(sr.Value), ts: int64(sr.Ts)}
	}

	// Index-table state: the set of visible (value → row) entries.
	idxName := core.IndexDef{Table: workload.TableName, Columns: []string{workload.TitleColumn}}.Name()
	idxCells, err := raw.RawScan(idxName, nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		return 0, nil, fmt.Errorf("chaos: index scan: %w", err)
	}
	entries := make(map[string]map[string]bool) // row → set of indexed values
	for _, sr := range idxCells {
		val, row, err := kv.SplitIndexKey(sr.Key)
		if err != nil {
			vs = append(vs, Violation{"index-exact", fmt.Sprintf("malformed index key %q", sr.Key)})
			continue
		}
		set := entries[string(row)]
		if set == nil {
			set = make(map[string]bool)
			entries[string(row)] = set
		}
		set[string(val)] = true
	}

	// Completeness: every base row's title is findable through the index.
	for row, bc := range base {
		checked++
		if !entries[row][bc.val] {
			vs = append(vs, Violation{"index-complete",
				fmt.Sprintf("row %q title %q has no index entry (lost index update)", row, bc.val)})
		}
	}

	// Exactness: every index entry points at a row that still has its value.
	for row, vals := range entries {
		for val := range vals {
			checked++
			bc, ok := base[row]
			if !ok {
				vs = append(vs, Violation{"index-exact",
					fmt.Sprintf("index entry (%q → %q) points at a missing row", val, row)})
			} else if bc.val != val {
				vs = append(vs, Violation{"index-exact",
					fmt.Sprintf("stale index entry (%q → %q); base title is %q", val, row, bc.val)})
			}
		}
	}

	// Durability: every acknowledged write survived. The base row must show
	// a timestamp at least as new as the last acked write; at the exact
	// acked timestamp the value must match. A newer timestamp is accepted
	// without a value check: it can come from a write whose ack was lost to
	// an injected response drop (applied but never acknowledged).
	for item, w := range model.snapshot() {
		checked++
		row := string(workload.ItemKey(item))
		bc, ok := base[row]
		switch {
		case !ok:
			vs = append(vs, Violation{"durability",
				fmt.Sprintf("row %q: acked write at ts %d lost entirely", row, w.ts)})
		case bc.ts < w.ts:
			vs = append(vs, Violation{"durability",
				fmt.Sprintf("row %q: base shows ts %d, older than acked ts %d", row, bc.ts, w.ts)})
		case bc.ts == w.ts && bc.val != w.title:
			vs = append(vs, Violation{"durability",
				fmt.Sprintf("row %q: value at acked ts %d is %q, want %q", row, w.ts, bc.val, w.title)})
		}
	}
	return checked, vs, nil
}
