package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/vfs"
	"diffindex/internal/wal"
)

// RunTimeTravel runs the log-as-database crash scenario (DESIGN.md §13): a
// seeded workload of puts/overwrites/deletes is driven through an LSM store
// with full log retention while golden per-timestamp observations are
// recorded; snapshot-in-log rounds and a flush interleave; then a fault is
// armed mid-snapshot so the snapshot record itself is torn on disk, the
// store is abandoned without Close (the crash), and recovery is checked
// three ways:
//
//  1. snapshot+tail replay must yield exactly the same record multiset as a
//     full raw replay (DisableSnapshots) of the same log — torn snapshot
//     records must be fallen through, never half-applied;
//  2. every golden observation must read back byte-identically through
//     GetAsOf on the recovered store — time-travel reads survive the crash;
//  3. the retained log must still tail every acknowledged mutation — the
//     CDC history is intact.
//
// The multiset comparison is exact because the workload clock is monotonic:
// every record carries a unique (key, ts), so the snapshot fold's
// (key, ts, kind) dedupe is the identity and folded cells correspond 1:1 to
// the raw records they cover.
func RunTimeTravel(seed int64) (*TimeTravelResult, error) {
	res := &TimeTravelResult{Seed: seed}
	begin := time.Now()
	check := func(ok bool, invariant, format string, args ...any) {
		res.Checked++
		if !ok {
			res.Violations = append(res.Violations, Violation{invariant, fmt.Sprintf(format, args...)})
		}
	}

	const dir = "timetravel"
	fault := vfs.NewFaultFS(vfs.NewMemFS())
	open := func() (*lsm.Store, error) {
		return lsm.Open(lsm.Options{
			FS:                 fault,
			Dir:                dir,
			MaxVersions:        1024, // never trim: every golden timestamp stays answerable
			WALRetainSegments:  -1,   // log-as-database mode: full history
			DisableAutoFlush:   true,
			DisableAutoCompact: true,
			DisableScrub:       true,
		})
	}
	store, err := open()
	if err != nil {
		return nil, fmt.Errorf("chaos: timetravel open: %w", err)
	}

	// Seeded workload over a small keyspace: ~85% puts, ~15% deletes, with
	// a shadow state snapshotted into golden observations as the clock
	// advances. Only acknowledged mutations update the shadow.
	rng := rand.New(rand.NewSource(seed))
	clock := kv.NewClock(1)
	const keyspace = 48
	shadow := map[string]string{}
	type observation struct {
		ts    kv.Timestamp
		state map[string]string
	}
	var golden []observation
	observe := func() {
		state := make(map[string]string, len(shadow))
		for k, v := range shadow {
			state[k] = v
		}
		golden = append(golden, observation{ts: clock.Now(), state: state})
	}
	mutate := func(n int) error {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key%03d", rng.Intn(keyspace))
			ts := clock.Next()
			if rng.Float64() < 0.15 {
				if err := store.Delete([]byte(key), ts); err != nil {
					return fmt.Errorf("chaos: timetravel delete: %w", err)
				}
				delete(shadow, key)
			} else {
				val := fmt.Sprintf("v%d", ts)
				if err := store.Put([]byte(key), []byte(val), ts); err != nil {
					return fmt.Errorf("chaos: timetravel put: %w", err)
				}
				shadow[key] = val
			}
			res.Ops++
			if res.Ops%25 == 0 {
				observe()
			}
		}
		return nil
	}

	snapshotRound := func() error {
		st, err := store.SnapshotWAL()
		if err != nil {
			return fmt.Errorf("chaos: timetravel snapshot: %w", err)
		}
		if st.Taken {
			res.Snapshots++
			res.SnapshotCells += st.Cells
		}
		return nil
	}

	// Phase A: build history, flush part of it into SSTables (moving the
	// replay boundary), then take a clean snapshot of the sealed tail.
	if err := mutate(120); err != nil {
		return nil, err
	}
	if err := store.Flush(); err != nil {
		return nil, fmt.Errorf("chaos: timetravel flush: %w", err)
	}
	if err := mutate(60); err != nil {
		return nil, err
	}
	if err := snapshotRound(); err != nil {
		return nil, err
	}
	if err := mutate(40); err != nil {
		return nil, err
	}
	check(res.Snapshots >= 1, "snapshot-taken",
		"no snapshot round folded anything before the crash (ops=%d)", res.Ops)

	// Phase B: crash mid-snapshot. Every WAL write is torn while the round
	// runs, so the snapshot record is half on disk — exactly the on-disk
	// state of a process that died inside AppendSnapshotPayload.
	fault.Arm(vfs.FaultConfig{
		Seed:             mix(seed, "snapshot-crash"),
		PartialWriteProb: 1,
		PathSubstr:       ".wal",
	})
	_, crashErr := store.SnapshotWAL()
	fault.Disarm()
	res.CrashInjected = crashErr != nil
	check(res.CrashInjected, "snapshot-crash",
		"snapshot round survived a 100%% torn-write window")

	// A few more acknowledged mutations: the first append rolls off the
	// tainted segment, sealing the torn snapshot record behind it.
	if err := mutate(20); err != nil {
		return nil, err
	}
	observe()

	// The crash: abandon the store without Close. Background writers are
	// all disabled, so the directory now looks exactly like a kill -9.
	store = nil

	// Check 1: replay equality. Fold the log once through the snapshot path
	// (what recovery does) and once raw (DisableSnapshots), and require the
	// exact same record multiset. Each OpenWith creates a fresh empty
	// active segment — harmless, it replays nothing.
	collect := func(disableSnapshots bool) (map[string]int, int, error) {
		counts := map[string]int{}
		n := 0
		lg, err := wal.OpenWith(fault, dir+"/wal", wal.ReplayConfig{
			Replay: func(r wal.Record) {
				counts[fmt.Sprintf("%s|%d|%d|%s", r.Key, r.Ts, r.Kind, r.Value)]++
				n++
			},
			DisableSnapshots: disableSnapshots,
			RetainSegments:   -1,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("chaos: timetravel replay(disable=%v): %w", disableSnapshots, err)
		}
		lg.Close()
		return counts, n, nil
	}
	snapCells, nSnap, err := collect(false)
	if err != nil {
		return nil, err
	}
	rawCells, nRaw, err := collect(true)
	if err != nil {
		return nil, err
	}
	res.ReplayedCells = nSnap
	equal := len(snapCells) == len(rawCells)
	if equal {
		for k, c := range rawCells {
			if snapCells[k] != c {
				equal = false
				break
			}
		}
	}
	check(equal, "replay-equality",
		"snapshot+tail replay (%d cells) differs from full raw replay (%d cells)", nSnap, nRaw)

	// Check 2: golden time-travel reads on the recovered store. Every key in
	// the keyspace at every observed instant must read exactly what a reader
	// saw when that instant was the present.
	recovered, err := open()
	if err != nil {
		return nil, fmt.Errorf("chaos: timetravel recover: %w", err)
	}
	defer recovered.Close()
	for _, obs := range golden {
		mismatches := 0
		var first string
		for i := 0; i < keyspace; i++ {
			key := fmt.Sprintf("key%03d", i)
			cell, ok, err := recovered.GetAsOf([]byte(key), obs.ts)
			if err != nil {
				return nil, fmt.Errorf("chaos: timetravel GetAsOf(%s@%d): %w", key, obs.ts, err)
			}
			res.AsOfReads++
			want, exists := obs.state[key]
			if ok != exists || (ok && string(cell.Value) != want) {
				mismatches++
				if first == "" {
					first = fmt.Sprintf("%s@%d = (%q,%v), want (%q,%v)",
						key, obs.ts, cell.Value, ok, want, exists)
				}
			}
		}
		check(mismatches == 0, "as-of-golden",
			"observation at ts=%d: %d/%d keys diverge after recovery (first: %s)",
			obs.ts, mismatches, keyspace, first)
	}

	// Check 3: the retained log still tails every acknowledged mutation —
	// nothing acked was lost behind the torn frame, nothing phantom appears.
	tailed := 0
	var pos wal.Pos
	for {
		entries, next, gap, err := recovered.TailWAL(pos, 4096)
		if err != nil {
			return nil, fmt.Errorf("chaos: timetravel tail: %w", err)
		}
		check(gap == 0, "tail-gap", "tail from %s reported a %d-segment gap under -1 retention", pos, gap)
		if len(entries) == 0 {
			break
		}
		tailed += len(entries)
		pos = next
	}
	res.TailedRecords = tailed
	check(tailed == res.Ops, "tail-complete",
		"log tails %d records, %d mutations were acknowledged", tailed, res.Ops)

	res.Elapsed = time.Since(begin)
	return res, nil
}

// TimeTravelResult is one time-travel crash scenario's outcome.
type TimeTravelResult struct {
	Seed int64
	// Ops counts acknowledged mutations; Snapshots the successful
	// snapshot-in-log rounds and SnapshotCells the cells they folded.
	Ops           int
	Snapshots     int
	SnapshotCells int
	// CrashInjected reports that the faulted snapshot round failed as
	// intended, leaving a torn snapshot record on disk.
	CrashInjected bool
	// ReplayedCells is the snapshot-path replay's cell count; TailedRecords
	// how many data records the recovered log tails; AsOfReads the golden
	// point-in-time reads evaluated.
	ReplayedCells int
	TailedRecords int
	AsOfReads     int
	// Checked counts assertions evaluated; Violations the failed ones.
	Checked    int
	Violations []Violation
	Elapsed    time.Duration
}

// OK reports whether every time-travel assertion held.
func (r *TimeTravelResult) OK() bool { return len(r.Violations) == 0 }
