// Package chaos is the deterministic fault-injection and invariant-checking
// harness for the Diff-Index cluster. It provokes the failures the paper's
// recovery protocol (§5.3) must survive — region-server crashes and
// restarts, flushes and splits racing a live workload, network partitions,
// dropped/delayed messages, and failed or torn disk writes — and then
// verifies, per index scheme, the consistency contract the paper promises:
//
//	sync-full      exact base↔index agreement
//	sync-insert    stale entries only (cleansable; no lost entries)
//	async-simple   exact agreement after the AUQ drains
//	async-session  async-simple plus read-your-writes inside a session
//	(all schemes)  every acknowledged write survives crash + recovery
//
// Everything derives from one root seed: the event schedule, the fault
// decision streams (vfs.FaultFS, simnet message faults) and the workload
// key choices, so a failing run replays from its seed alone.
//
// Architecture: a Schedule (this file) is a pure function of the seed; the
// Runner (runner.go) fires it against a live cluster while a workload runs
// and a model records acknowledged writes; the invariant checkers
// (invariants.go) compare cluster state against the model after quiescence.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// EventKind names one chaos action.
type EventKind string

// The chaos event vocabulary. Window kinds come in arm/calm or cut/heal
// pairs; point kinds fire once.
const (
	EvCrash     EventKind = "crash"      // kill a region server (Master.CrashServer)
	EvRestart   EventKind = "restart"    // rejoin it (Master.RestartServer)
	EvFlush     EventKind = "flush"      // flush every region (drains AUQs first, §5.3)
	EvSplit     EventKind = "split"      // split one region of the base table
	EvPartition EventKind = "partition"  // cut the "a|b" server pair
	EvHeal      EventKind = "heal"       // heal the "a|b" server pair
	EvDiskFault EventKind = "disk-fault" // arm the FaultFS (failed/torn writes, fsync errors)
	EvDiskCalm  EventKind = "disk-calm"  // disarm the FaultFS
	EvNetFault  EventKind = "net-fault"  // arm simnet message drop/delay
	EvNetCalm   EventKind = "net-calm"   // disarm simnet message faults

	// Elastic cluster dynamics (targets resolved at fire time, since they
	// depend on what the run has done so far).
	EvAddServer    EventKind = "add-server"    // grow the cluster by one empty server
	EvRemoveServer EventKind = "remove-server" // decommission one server (drain + handoff)
	EvMerge        EventKind = "merge"         // merge one adjacent base-table region pair
)

// Event is one scheduled chaos action.
type Event struct {
	// At is the offset from workload start.
	At time.Duration
	// Kind selects the action.
	Kind EventKind
	// Target is a server ID for crash/restart, an "a|b" server pair for
	// partition/heal, and empty for cluster-wide kinds (flush picks every
	// region, split resolves its victim region at fire time).
	Target string
}

func (e Event) String() string {
	s := fmt.Sprintf("t=+%-7s %s", e.At.Round(time.Millisecond), e.Kind)
	if e.Target != "" {
		s += " " + e.Target
	}
	return s
}

// Schedule is a time-ordered chaos plan.
type Schedule []Event

// Trace renders the schedule, one event per line. Two runs from the same
// seed print identical traces.
func (s Schedule) Trace() []string {
	out := make([]string, len(s))
	for i, e := range s {
		out[i] = e.String()
	}
	return out
}

// PlanConfig bounds what a generated schedule may do.
type PlanConfig struct {
	// Duration is the workload window events must fall inside.
	Duration time.Duration
	// Servers are the region-server IDs available as targets.
	Servers []string
	// Crashes is the number of crash→restart pairs (requires ≥3 servers so
	// at least two stay live while one is down).
	Crashes int
	// Partitions is the number of partition→heal windows between server
	// pairs.
	Partitions int
	// Flushes and Splits are point events; both are scheduled outside
	// partition windows (their AUQ drains would stall until heal) and
	// splits also outside crash windows.
	Flushes int
	Splits  int
	// DiskFaultWindows and NetFaultWindows arm the seeded injectors for a
	// sub-interval of the run.
	DiskFaultWindows int
	NetFaultWindows  int
	// AddServers grows the cluster by one empty server per event (scheduled
	// in the first half of the run, so the balancer has time to use them).
	AddServers int
	// RemoveServers decommissions one server per event (scheduled after the
	// adds; the runner resolves the victim at fire time, preferring servers
	// the run added).
	RemoveServers int
	// Merges are point events merging one adjacent base-table region pair,
	// scheduled outside partition and crash windows (their freeze+flush
	// drains would stall there) like Splits.
	Merges int
}

type window struct{ start, end time.Duration }

func (w window) contains(t time.Duration) bool { return t >= w.start && t <= w.end }

// Plan derives a deterministic schedule from a seed. The same (seed, cfg)
// always yields the same event list. Generated schedules respect the
// constraints that keep a scenario live: crash windows never overlap (so at
// most one server is down at a time), every crash is paired with a restart
// and every partition with a heal well before the run ends, and flush/split
// events avoid the windows whose pre-flush AUQ drain could not complete.
func Plan(seed int64, cfg PlanConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	d := cfg.Duration
	var sched Schedule
	var crashWins, partWins []window

	// Crash→restart pairs, serialized into disjoint sub-intervals.
	if len(cfg.Servers) >= 3 && cfg.Crashes > 0 {
		per := d / time.Duration(cfg.Crashes)
		for i := 0; i < cfg.Crashes; i++ {
			base := time.Duration(i) * per
			w := window{
				start: base + scale(per, 0.15+0.20*rng.Float64()),
				end:   base + scale(per, 0.60+0.25*rng.Float64()),
			}
			target := cfg.Servers[rng.Intn(len(cfg.Servers))]
			crashWins = append(crashWins, w)
			sched = append(sched,
				Event{At: w.start, Kind: EvCrash, Target: target},
				Event{At: w.end, Kind: EvRestart, Target: target})
		}
	}

	// Partition→heal windows between distinct server pairs. Heals land by
	// 0.75·Duration so blocked index maintenance has time to drain.
	for i := 0; i < cfg.Partitions && len(cfg.Servers) >= 2; i++ {
		w := window{start: scale(d, 0.10+0.45*rng.Float64())}
		w.end = w.start + scale(d, 0.08+0.12*rng.Float64())
		if max := scale(d, 0.75); w.end > max {
			w.end = max
		}
		a := rng.Intn(len(cfg.Servers))
		b := rng.Intn(len(cfg.Servers) - 1)
		if b >= a {
			b++
		}
		partWins = append(partWins, w)
		pair := cfg.Servers[a] + "|" + cfg.Servers[b]
		sched = append(sched,
			Event{At: w.start, Kind: EvPartition, Target: pair},
			Event{At: w.end, Kind: EvHeal, Target: pair})
	}

	// Point events, rejection-sampled away from the windows they would
	// stall in. The sampling is part of the deterministic stream.
	point := func(avoid []window) (time.Duration, bool) {
		for try := 0; try < 16; try++ {
			t := scale(d, 0.10+0.70*rng.Float64())
			clear := true
			for _, w := range avoid {
				if w.contains(t) {
					clear = false
					break
				}
			}
			if clear {
				return t, true
			}
		}
		return 0, false
	}
	for i := 0; i < cfg.Flushes; i++ {
		if t, ok := point(partWins); ok {
			sched = append(sched, Event{At: t, Kind: EvFlush})
		}
	}
	avoidBoth := append(append([]window(nil), partWins...), crashWins...)
	for i := 0; i < cfg.Splits; i++ {
		if t, ok := point(avoidBoth); ok {
			sched = append(sched, Event{At: t, Kind: EvSplit})
		}
	}
	for i := 0; i < cfg.Merges; i++ {
		if t, ok := point(avoidBoth); ok {
			sched = append(sched, Event{At: t, Kind: EvMerge})
		}
	}

	// Elastic membership: adds land early (first half) so later events and
	// the balancer can exercise the grown cluster; removes land in
	// (0.55, 0.80)·Duration, after every add, and outside crash windows —
	// decommission hands regions off to the survivors, which a concurrent
	// crash of the handoff target would turn into recovery churn the short
	// run cannot absorb deterministically.
	for i := 0; i < cfg.AddServers; i++ {
		sched = append(sched, Event{At: scale(d, 0.08+0.40*rng.Float64()), Kind: EvAddServer})
	}
	for i := 0; i < cfg.RemoveServers; i++ {
		t := scale(d, 0.55+0.25*rng.Float64())
		for try := 0; try < 16; try++ {
			clear := true
			for _, w := range crashWins {
				if w.contains(t) {
					clear = false
					break
				}
			}
			if clear {
				break
			}
			t = scale(d, 0.55+0.25*rng.Float64())
		}
		sched = append(sched, Event{At: t, Kind: EvRemoveServer})
	}

	// Injector windows: arm → calm.
	addWindow := func(n int, arm, calm EventKind) {
		for i := 0; i < n; i++ {
			start := scale(d, 0.05+0.55*rng.Float64())
			end := start + scale(d, 0.10+0.15*rng.Float64())
			if max := scale(d, 0.80); end > max {
				end = max
			}
			sched = append(sched,
				Event{At: start, Kind: arm},
				Event{At: end, Kind: calm})
		}
	}
	addWindow(cfg.DiskFaultWindows, EvDiskFault, EvDiskCalm)
	addWindow(cfg.NetFaultWindows, EvNetFault, EvNetCalm)

	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}

func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(f * float64(d))
}

// mix derives a sub-seed from the root seed and a label, so every consumer
// of randomness (schedule, each injector, each workload thread) gets an
// independent deterministic stream.
func mix(seed int64, salt string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(salt))
	return int64(h.Sum64() >> 1) // keep it non-negative
}

// splitPair decodes a partition/heal target.
func splitPair(target string) (a, b string) {
	parts := strings.SplitN(target, "|", 2)
	if len(parts) != 2 {
		return target, target
	}
	return parts[0], parts[1]
}
