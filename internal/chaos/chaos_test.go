package chaos

import (
	"reflect"
	"testing"
	"time"

	"diffindex"
)

func TestPlanIsDeterministicAndPaired(t *testing.T) {
	cfg := PlanConfig{
		Duration: time.Second,
		Servers:  []string{"rs1", "rs2", "rs3"},
		Crashes:  2, Partitions: 2, Flushes: 2, Splits: 1,
		DiskFaultWindows: 1, NetFaultWindows: 1,
	}
	a, b := Plan(99, cfg), Plan(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, Plan(100, cfg)) {
		t.Fatal("different seeds produced identical schedules")
	}

	counts := make(map[EventKind]int)
	last := time.Duration(-1)
	for _, e := range a {
		counts[e.Kind]++
		if e.At < last {
			t.Fatalf("schedule not time-ordered at %v", e)
		}
		last = e.At
	}
	for _, pair := range [][2]EventKind{
		{EvCrash, EvRestart}, {EvPartition, EvHeal},
		{EvDiskFault, EvDiskCalm}, {EvNetFault, EvNetCalm},
	} {
		if counts[pair[0]] != counts[pair[1]] {
			t.Errorf("%s/%s unpaired: %d vs %d", pair[0], pair[1], counts[pair[0]], counts[pair[1]])
		}
	}
	if counts[EvCrash] != cfg.Crashes {
		t.Errorf("crashes = %d, want %d", counts[EvCrash], cfg.Crashes)
	}
}

// The fixed-seed smoke test: a small cluster under the full fault schedule
// must uphold every invariant, for every scheme. Run with -race in CI.
func TestChaosSmoke(t *testing.T) {
	schemes := []diffindex.Scheme{
		diffindex.SyncFull, diffindex.SyncInsert,
		diffindex.AsyncSimple, diffindex.AsyncSession,
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res, err := Run(ScenarioConfig{
				Seed:     1,
				Scheme:   scheme,
				Servers:  3,
				Records:  120,
				Threads:  2,
				Duration: 400 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Error("async index work did not converge after quiescence")
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			if res.Ops == 0 {
				t.Error("workload made no progress")
			}
			if res.Checked == 0 {
				t.Error("checkers evaluated nothing")
			}
		})
	}
}

// The negative control: with the §5.3 drain-on-flush protocol disabled, a
// flush+crash must LOSE queued index updates and the checkers must say so.
// A clean pass here would mean the harness cannot detect real loss.
func TestDrainAblationCaughtByCheckers(t *testing.T) {
	clean, err := RunDrainAblation(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Violations) != 0 {
		t.Fatalf("healthy protocol produced violations: %v", clean.Violations)
	}

	broken, err := RunDrainAblation(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken.Violations) == 0 {
		t.Fatal("drain-disabled recovery produced no violations — checkers are blind to index loss")
	}
	byInv := make(map[string]int)
	for _, v := range broken.Violations {
		byInv[v.Invariant]++
	}
	if byInv["index-complete"] == 0 {
		t.Errorf("want index-complete (lost entry) violations, got %v", byInv)
	}
	if byInv["index-exact"] == 0 {
		t.Errorf("want index-exact (stale entry) violations, got %v", byInv)
	}
}

// The integrity pair: a faulted run where the scrubber must detect injected
// misreads and the anti-entropy sweep must repair injected divergence, and a
// clean control where both defenses must stay silent (no false positives).
func TestIntegrityScenarioPair(t *testing.T) {
	faulted, err := RunIntegrity(7, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range faulted.Violations {
		t.Errorf("faulted run: %s", v)
	}
	if faulted.ScrubCorruptions == 0 || faulted.DetectionLatency <= 0 {
		t.Errorf("no detection: %+v", faulted)
	}
	if faulted.Found != faulted.InjectedMissing+faulted.InjectedStale || faulted.Repaired != faulted.Found {
		t.Errorf("sweep missed injected divergence: %+v", faulted)
	}

	control, err := RunIntegrity(7, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range control.Violations {
		t.Errorf("control run: %s", v)
	}
	if control.ScrubCorruptions != 0 || control.Found != 0 || control.Residual != 0 {
		t.Errorf("false positives on control run: %+v", control)
	}
}

// Incremental compaction under faults: a table-count trigger of 2 keeps the
// tiered engine busy for the whole window (every flush arms another round),
// with extra flush events feeding it tables while crashes, partitions and
// disk faults fire. This drives the paths the smoke test leaves cold —
// bounded-fan-in merges racing reads, the tombstone-at-bottom-tier rule,
// and the PostCompact piggybacked cleanse — and demands the same
// invariants: index-complete, index-exact, durability, convergence.
func TestChaosIncrementalCompaction(t *testing.T) {
	schemes := []diffindex.Scheme{
		diffindex.SyncFull, diffindex.SyncInsert,
		diffindex.AsyncSimple, diffindex.AsyncSession,
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res, err := Run(ScenarioConfig{
				Seed:                2,
				Scheme:              scheme,
				Servers:             3,
				Records:             120,
				Threads:             2,
				Duration:            500 * time.Millisecond,
				CompactionThreshold: 2,
				CompactionFanIn:     2,
				Plan: &PlanConfig{
					Crashes: 1, Partitions: 1, Flushes: 6, Splits: 1,
					DiskFaultWindows: 1, NetFaultWindows: 1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Error("async index work did not converge after quiescence")
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			if res.Ops == 0 {
				t.Error("workload made no progress")
			}
			if res.Checked == 0 {
				t.Error("checkers evaluated nothing")
			}
		})
	}
}

// The elastic scenario: server adds, a decommission, a merge and a split
// interleaved with crashes, partitions and fault windows while the balancer
// runs and AUQ admission control caps the async backlog. Every invariant
// must hold and the sampled backlog must respect the cap.
func TestElasticScenario(t *testing.T) {
	schemes := []diffindex.Scheme{diffindex.AsyncSimple, diffindex.AsyncSession}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res, err := RunElastic(ElasticConfig{Seed: 11, Scheme: scheme, Duration: 900 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Error("async index work did not converge after quiescence")
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			if res.Ops == 0 {
				t.Error("workload made no progress")
			}
			if len(res.Added) == 0 {
				t.Error("schedule added no servers")
			}
			if res.MaxAUQBacklog > 2*64+3+4 {
				t.Errorf("backlog %d breached the enforced bound", res.MaxAUQBacklog)
			}
			t.Logf("elastic %s: ops=%d added=%v removed=%v merges=%d maxBacklog=%d shed=%d notes=%v",
				scheme, res.Ops, res.Added, res.Removed, res.Merges, res.MaxAUQBacklog, res.AUQShed, res.Notes)
		})
	}
}
