package chaos

import (
	"errors"
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/cluster"
	"diffindex/internal/core"
	"diffindex/internal/kv"
	"diffindex/internal/vfs"
	"diffindex/internal/workload"
)

// RunIntegrity runs the silent-corruption + index-divergence scenario as a
// directed chaos pair. With faulted=true it arms the one fault class the
// other scenarios deliberately exclude — misreads that "succeed" with wrong
// bytes — and injects index divergence through the raw path, then requires
// the two online defenses to catch everything: the background scrubber must
// detect the corrupted blocks (the time-to-first-detection is the scenario's
// headline number), and the anti-entropy sweep must find and repair every
// injected violation with nothing left for a second sweep. With
// faulted=false it is the false-positive control: the same cluster, workload
// and checks with no faults armed, where any corruption count or reported
// violation means a defense is crying wolf.
//
// The workload is quiesced before the corruption window opens: misreads are
// injected below the checksum layer, so a query racing the window could be
// served garbage — detecting that is the verify-on-read knob's job, not the
// scrubber's, and mixing the two would blur what this scenario measures.
func RunIntegrity(seed int64, faulted bool) (*IntegrityResult, error) {
	res := &IntegrityResult{Seed: seed, Faulted: faulted}
	begin := time.Now()
	check := func(ok bool, invariant, format string, args ...any) {
		res.Checked++
		if !ok {
			res.Violations = append(res.Violations, Violation{invariant, fmt.Sprintf(format, args...)})
		}
	}

	const scrubInterval = 20 * time.Millisecond
	fault := vfs.NewFaultFS(vfs.NewMemFS())
	db := diffindex.Open(diffindex.Options{
		Servers:             3,
		BaseFS:              fault,
		MaxVersions:         1024,
		CompactionThreshold: 64, // keep compaction cold: no background .sst reads but the scrubber's
		ScrubInterval:       scrubInterval,
		ScrubBlockPace:      -1, // unpaced: detection latency measures the scrubber, not its throttle
		DisableTracing:      true,
	})
	defer db.Close()
	c, _ := db.Internal()

	const records = 120
	if err := db.CreateTable(workload.TableName, workload.TableSplits(records, 3)); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(workload.TableName, []string{workload.TitleColumn}, diffindex.SyncFull,
		workload.TitleIndexSplits(records, 3)); err != nil {
		return nil, err
	}
	if err := workload.Load(db, records, 3); err != nil {
		return nil, err
	}
	if !db.WaitForIndexes(10 * time.Second) {
		return nil, errors.New("chaos: integrity indexes did not converge after load")
	}
	// Flush everything so the data at risk is in SSTables — the scrubber
	// walks flushed blocks, not the memtable.
	if err := db.FlushAll(); err != nil {
		return nil, err
	}
	check(db.Health().Status == diffindex.HealthOK, "health",
		"pre-fault health is %q, want ok", db.Health().Status)

	// Phase 1: silent corruption. Arm misreads on .sst paths only and wait
	// for the scrubber's damage counter to move.
	if faulted {
		t0 := time.Now()
		fault.Arm(vfs.FaultConfig{Seed: mix(seed, "corrupt"), ReadCorruptProb: 1, PathSubstr: ".sst"})
		deadline := time.Now().Add(10 * time.Second)
		for db.Health().ScrubCorruptions == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		res.DetectionLatency = time.Since(t0)
		res.ScrubCorruptions = db.Health().ScrubCorruptions
		fault.Disarm()
		check(res.ScrubCorruptions > 0, "scrub-detect",
			"scrubber saw no corruption within %v of arming misreads", 10*time.Second)
		check(db.Health().Status == diffindex.HealthUnhealthy, "health",
			"health after detected corruption is %q, want unhealthy", db.Health().Status)
	} else {
		// Control: let several scrub cycles run over clean tables.
		deadline := time.Now().Add(10 * time.Second)
		for db.Health().ScrubCyclesTotal < 3 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		h := db.Health()
		check(h.ScrubCyclesTotal >= 3, "scrub-detect",
			"scrubber completed only %d cycles in 10s", h.ScrubCyclesTotal)
		res.ScrubCorruptions = h.ScrubCorruptions
		check(h.ScrubCorruptions == 0, "scrub-false-positive",
			"scrubber reported %d corruptions on a clean store", h.ScrubCorruptions)
	}

	// Phase 2: index divergence. Inject lost inserts (base rows the index
	// never saw) and phantom entries (index keys no base row justifies)
	// through the raw path, then demand the anti-entropy sweep find and
	// repair exactly that set.
	raw := cluster.NewClient(c, "chaos-integrity")
	idxName := core.IndexDef{Table: workload.TableName, Columns: []string{workload.TitleColumn}}.Name()
	if faulted {
		res.InjectedMissing, res.InjectedStale = 3, 2
		for i := 0; i < res.InjectedMissing; i++ {
			row := workload.ItemKey(records + int64(i))
			if err := raw.RawApply(workload.TableName, row, []kv.Cell{{
				Key:   kv.BaseKey(row, []byte(workload.TitleColumn)),
				Value: []byte(fmt.Sprintf("lost-title-%d", i)),
				Ts:    kv.Timestamp(900000 + i), Kind: kv.KindPut,
			}}); err != nil {
				return nil, fmt.Errorf("chaos: inject missing: %w", err)
			}
		}
		for i := 0; i < res.InjectedStale; i++ {
			key := kv.IndexKey([]byte(fmt.Sprintf("phantom-title-%d", i)), workload.ItemKey(int64(i)))
			if err := raw.RawApply(idxName, key, []kv.Cell{{
				Key: key, Ts: kv.Timestamp(800000 + i), Kind: kv.KindPut,
			}}); err != nil {
				return nil, fmt.Errorf("chaos: inject stale: %w", err)
			}
		}
	}

	cl := db.NewClient("chaos-integrity-sweep")
	reports, err := cl.VerifyIndexes(workload.TableName)
	if err != nil {
		return nil, fmt.Errorf("chaos: verify sweep: %w", err)
	}
	for _, r := range reports {
		res.Found += r.Missing + r.Stale
		res.Repaired += r.Repaired
	}
	injected := res.InjectedMissing + res.InjectedStale
	if faulted {
		check(res.Found == injected, "antientropy-detect",
			"sweep found %d violations, injected %d", res.Found, injected)
		check(res.Repaired == res.Found, "antientropy-repair",
			"sweep repaired %d of %d found violations", res.Repaired, res.Found)
	} else {
		check(res.Found == 0, "antientropy-false-positive",
			"sweep reported %d violations on an untampered index", res.Found)
	}

	// A second sweep must be clean either way: repairs converged (faulted)
	// or nothing ever diverged (control).
	reports, err = cl.VerifyIndexes(workload.TableName)
	if err != nil {
		return nil, fmt.Errorf("chaos: residual sweep: %w", err)
	}
	for _, r := range reports {
		res.Residual += r.Missing + r.Stale + r.DivergentBuckets
	}
	check(res.Residual == 0, "antientropy-repair",
		"residual divergence after repair: %d", res.Residual)

	// Health must agree with the ledger: every violation found was repaired,
	// so the only permissible degradation is the (cumulative, intentional)
	// corruption count from phase 1.
	h := db.Health()
	check(h.IndexViolationsFound == h.IndexViolationsRepaired, "health",
		"health shows %d found vs %d repaired", h.IndexViolationsFound, h.IndexViolationsRepaired)
	if !faulted {
		check(h.Status == diffindex.HealthOK, "health",
			"control run ends with health %q (%v), want ok", h.Status, h.Reasons)
	}

	res.Elapsed = time.Since(begin)
	return res, nil
}

// IntegrityResult is one integrity scenario's outcome.
type IntegrityResult struct {
	Seed    int64
	Faulted bool
	// ScrubCorruptions is the scrubber's cumulative damage count at the end
	// of the corruption window; DetectionLatency the time from arming
	// misreads to the first nonzero count (zero on control runs).
	ScrubCorruptions int64
	DetectionLatency time.Duration
	// InjectedMissing/InjectedStale are the violations planted through the
	// raw path; Found/Repaired what the anti-entropy sweep confirmed and
	// fixed; Residual what a second sweep still saw (must be zero).
	InjectedMissing, InjectedStale int
	Found, Repaired, Residual      int
	// Checked counts assertions evaluated; Violations the failed ones.
	Checked    int
	Violations []Violation
	Elapsed    time.Duration
}

// OK reports whether every integrity assertion held.
func (r *IntegrityResult) OK() bool { return len(r.Violations) == 0 }
