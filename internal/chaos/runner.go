package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diffindex"
	"diffindex/internal/metrics"
	"diffindex/internal/simnet"
	"diffindex/internal/vfs"
	"diffindex/internal/workload"
)

// ScenarioConfig sizes one chaos scenario. The zero value is not usable;
// fill Seed and Scheme and let withDefaults pick the rest.
type ScenarioConfig struct {
	// Seed is the single root seed: schedule, fault streams and workload
	// key choices all derive from it.
	Seed int64
	// Scheme is the index maintenance scheme under test.
	Scheme diffindex.Scheme
	// Servers is the region-server count (default 3).
	Servers int
	// Records is the item-table size (default 240).
	Records int64
	// Threads is the update-workload thread count (default 3).
	Threads int
	// Duration is the chaos window the workload runs for (default 1.2s).
	Duration time.Duration
	// Throttle is the per-thread pause between operations (default 200µs),
	// bounding AUQ backlog so post-run convergence stays fast.
	Throttle time.Duration
	// Plan overrides the generated schedule's event counts (nil = default:
	// one crash/restart, one partition/heal, two flushes, one split, one
	// disk-fault window, one net-fault window).
	Plan *PlanConfig
	// DisableDrainOnFlush turns off the §5.3 drain-AUQ-before-flush
	// protocol — the deliberately broken recovery the negative test uses to
	// prove the checkers catch real violations.
	DisableDrainOnFlush bool
	// CompactionThreshold overrides the per-store table count that arms
	// the incremental compaction engine (default 64, which effectively
	// disables compaction during the short chaos window). Set low (e.g. 2)
	// to exercise tiered compaction — including the tombstone-at-bottom-
	// tier rule and the PostCompact piggybacked cleanse — under faults.
	CompactionThreshold int
	// CompactionFanIn overrides the per-round merge width (0 = store
	// default).
	CompactionFanIn int
	// AUQMaxBacklog, when > 0, arms AUQ admission control: per-region async
	// backlog is capped and overflow arrivals degrade to synchronous
	// maintenance. The runner samples the worst backlog throughout and
	// reports a violation if the cap was breached (beyond the bounded
	// overshoot the shed-to-sync fallback permits).
	AUQMaxBacklog int
	// BalancerInterval, when > 0, runs the continuous load-aware balancer
	// during the scenario, so moves race the scheduled faults.
	BalancerInterval time.Duration
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.Records <= 0 {
		c.Records = 240
	}
	if c.Threads <= 0 {
		c.Threads = 3
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Throttle <= 0 {
		c.Throttle = 200 * time.Microsecond
	}
	if c.CompactionThreshold <= 0 {
		c.CompactionThreshold = 64
	}
	return c
}

// Result is one scenario's outcome.
type Result struct {
	Seed   int64
	Scheme diffindex.Scheme
	// Schedule is the planned event trace — a pure function of Seed, so two
	// runs from the same seed print identical traces.
	Schedule Schedule
	// Ops counts acknowledged workload operations; OpErrors counts
	// operations that failed (injected faults, crashed servers mid-op).
	Ops, OpErrors int64
	// DiskFaults, NetDrops and NetDelays count injected faults by injector.
	DiskFaults, NetDrops, NetDelays int64
	// Checked counts facts the invariant checkers evaluated; Violations
	// holds every contract breach found (empty on a healthy run).
	Checked    int
	Violations []Violation
	// Converged reports whether async index work drained after the run.
	Converged bool
	Elapsed   time.Duration
	// Notes records non-fatal oddities (failed administrative events).
	Notes []string
	// Added and Removed list the servers the elastic events grew and
	// decommissioned; Merges counts region merges performed.
	Added, Removed []string
	Merges         int
	// MaxAUQBacklog is the worst single-region async backlog sampled during
	// the run; AUQShed counts arrivals admission control degraded to sync.
	MaxAUQBacklog int64
	AUQShed       int64
}

// OK reports whether the scenario upheld every invariant.
func (r *Result) OK() bool { return r.Converged && len(r.Violations) == 0 }

// Run executes one seeded chaos scenario: build a cluster with both
// injectors wired in, load the item table, start the update workload, fire
// the schedule, then quiesce and check every invariant. The returned error
// covers harness failures (setup, checker scans); contract breaches are
// reported as Result.Violations, not errors.
func Run(cfg ScenarioConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Seed: cfg.Seed, Scheme: cfg.Scheme}
	begin := time.Now()

	fault := vfs.NewFaultFS(vfs.NewMemFS())
	db := diffindex.Open(diffindex.Options{
		Servers: cfg.Servers,
		BaseFS:  fault,
		// Retain deep version history: the async schemes' pre-image reads
		// (old value at ts−δ) must never lose the version they need while
		// tasks sit in a backlogged AUQ. The default CompactionThreshold of
		// 64 effectively disables compaction during the short chaos window;
		// the compaction scenarios lower it to put incremental merges (and
		// their version/tombstone GC) inside the fault schedule.
		MaxVersions:               1024,
		CompactionThreshold:       cfg.CompactionThreshold,
		CompactionFanIn:           cfg.CompactionFanIn,
		AUQMaxBacklog:             cfg.AUQMaxBacklog,
		BalancerInterval:          cfg.BalancerInterval,
		UnsafeDisableDrainOnFlush: cfg.DisableDrainOnFlush,
		DisableTracing:            true,
	})
	defer db.Close()
	c, _ := db.Internal()

	if err := db.CreateTable(workload.TableName, workload.TableSplits(cfg.Records, cfg.Servers)); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(workload.TableName, []string{workload.TitleColumn}, cfg.Scheme,
		workload.TitleIndexSplits(cfg.Records, cfg.Servers)); err != nil {
		return nil, err
	}
	if err := workload.Load(db, cfg.Records, cfg.Threads); err != nil {
		return nil, err
	}
	if !db.WaitForIndexes(20 * time.Second) {
		return nil, errors.New("chaos: indexes did not converge after load")
	}

	plan := PlanConfig{
		Duration: cfg.Duration, Servers: db.Servers(),
		Crashes: 1, Partitions: 1, Flushes: 2, Splits: 1,
		DiskFaultWindows: 1, NetFaultWindows: 1,
	}
	if cfg.Plan != nil {
		plan = *cfg.Plan
		plan.Duration = cfg.Duration
		plan.Servers = db.Servers()
	}
	res.Schedule = Plan(mix(cfg.Seed, "schedule"), plan)

	model := NewModel()
	var ops, opErrs, seq atomic.Int64
	stop := make(chan struct{})
	var workers sync.WaitGroup

	// Update workload: each thread picks items from its own seeded stream
	// and writes a title unique per (item, op), so every acked write moves
	// the index entry and the model knows exactly what must survive.
	putOnce := func(put func(table string, row []byte, cols diffindex.Cols) (int64, error), item int64) (int64, []byte, error) {
		title := workload.UpdatedTitleValue(item, seq.Add(1))
		ts, err := put(workload.TableName, workload.ItemKey(item), diffindex.Cols{workload.TitleColumn: title})
		if err != nil {
			opErrs.Add(1)
			return 0, nil, err
		}
		model.Record(item, ts, title)
		ops.Add(1)
		return ts, title, nil
	}
	for w := 0; w < cfg.Threads; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			cl := db.NewClient(fmt.Sprintf("chaos-w%d", w))
			gen := workload.NewGenerator("uniform", cfg.Records, mix(cfg.Seed, fmt.Sprintf("worker-%d", w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				putOnce(cl.Put, gen.Next())
				time.Sleep(cfg.Throttle)
			}
		}(w)
	}

	// Session thread: for async-session, verify read-your-writes LIVE —
	// after each acked put the session's index lookup must return the row,
	// faults or not, unless the session itself has degraded.
	var vioMu sync.Mutex
	if cfg.Scheme == diffindex.AsyncSession {
		workers.Add(1)
		go func() {
			defer workers.Done()
			cl := db.NewClient("chaos-sess")
			sess := cl.NewSession()
			defer sess.End()
			gen := workload.NewGenerator("uniform", cfg.Records, mix(cfg.Seed, "session"))
			for {
				select {
				case <-stop:
					return
				default:
				}
				item := gen.Next()
				_, title, err := putOnce(sess.Put, item)
				if err != nil {
					if errors.Is(err, diffindex.ErrSessionExpired) {
						sess = cl.NewSession()
					}
					time.Sleep(cfg.Throttle)
					continue
				}
				hits, err := sess.GetByIndex(workload.TableName, []string{workload.TitleColumn}, title)
				if err == nil && !sess.Degraded() {
					found := false
					for _, h := range hits {
						if string(h.Row) == string(workload.ItemKey(item)) {
							found = true
							break
						}
					}
					if !found {
						vioMu.Lock()
						res.Violations = append(res.Violations, Violation{"session-ryw",
							fmt.Sprintf("session lookup of %q missed the session's own write of item %d", title, item)})
						vioMu.Unlock()
					}
				}
				time.Sleep(cfg.Throttle)
			}
		}()
	}

	// Fire the schedule. Flush, split, merge and decommission run in
	// goroutines: their pre-flush AUQ drains can stall behind an injected
	// fault until the window heals, and must not delay later events.
	var admin sync.WaitGroup
	var noteMu sync.Mutex
	note := func(format string, args ...any) {
		noteMu.Lock()
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
		noteMu.Unlock()
	}

	// Elastic bookkeeping: adds are recorded so removes can prefer them.
	var elasticMu sync.Mutex
	var added []string

	// With admission control armed, sample the worst single-region backlog
	// continuously — the cap must hold THROUGH the faults, not just at the
	// end.
	var maxBacklog atomic.Int64
	if cfg.AUQMaxBacklog > 0 {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if d := db.AUQStats().MaxRegionDepth; d > maxBacklog.Load() {
					maxBacklog.Store(d)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	start := time.Now()
	for _, ev := range res.Schedule {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		switch ev.Kind {
		case EvCrash:
			if err := db.CrashServer(ev.Target); err != nil {
				note("crash %s: %v", ev.Target, err)
			}
		case EvRestart:
			if err := db.RestartServer(ev.Target); err != nil {
				note("restart %s: %v", ev.Target, err)
			}
		case EvFlush:
			admin.Add(1)
			go func() {
				defer admin.Done()
				if err := db.FlushAll(); err != nil {
					note("flush: %v", err)
				}
			}()
		case EvSplit:
			if id, key, ok := pickSplit(db, cfg.Records); ok {
				admin.Add(1)
				go func() {
					defer admin.Done()
					if err := db.SplitRegion(id, key); err != nil {
						note("split %s: %v", id, err)
					}
				}()
			}
		case EvAddServer:
			id := db.AddServer()
			elasticMu.Lock()
			added = append(added, id)
			res.Added = append(res.Added, id)
			elasticMu.Unlock()
		case EvRemoveServer:
			// Resolve the victim now: prefer the most recently added server
			// still live, else an original server when at least three remain
			// assignable (the checkers' scatter reads need survivors).
			live := make(map[string]bool)
			for _, id := range db.LiveServers() {
				live[id] = true
			}
			target := ""
			elasticMu.Lock()
			for i := len(added) - 1; i >= 0; i-- {
				if live[added[i]] {
					target = added[i]
					added = append(added[:i], added[i+1:]...)
					break
				}
			}
			elasticMu.Unlock()
			if target == "" {
				if ids := db.LiveServers(); len(ids) >= 3 {
					target = ids[len(ids)-1]
				}
			}
			if target == "" {
				note("remove-server: no eligible target")
				continue
			}
			// Decommission drains and hands off in a goroutine: its FlushAll
			// can stall behind a partition until the window heals.
			admin.Add(1)
			go func(target string) {
				defer admin.Done()
				if err := db.RemoveServer(target); err != nil {
					note("remove %s: %v", target, err)
					return
				}
				elasticMu.Lock()
				res.Removed = append(res.Removed, target)
				elasticMu.Unlock()
			}(target)
		case EvMerge:
			if lo, hi, ok := pickMerge(db, cfg.Records); ok {
				admin.Add(1)
				go func() {
					defer admin.Done()
					if err := db.MergeRegions(lo, hi); err != nil {
						note("merge %s+%s: %v", lo, hi, err)
						return
					}
					elasticMu.Lock()
					res.Merges++
					elasticMu.Unlock()
				}()
			}
		case EvPartition:
			a, b := splitPair(ev.Target)
			db.PartitionNetwork(a, b)
		case EvHeal:
			a, b := splitPair(ev.Target)
			c.Net.Heal(a, b)
		case EvDiskFault:
			fault.Arm(vfs.FaultConfig{
				Seed:             mix(cfg.Seed, "disk"),
				WriteErrProb:     0.05,
				PartialWriteProb: 0.05,
				SyncErrProb:      0.05,
				SpikeProb:        0.02,
				SpikeLatency:     500 * time.Microsecond,
				// Fault only commit logs: WAL framing tolerates torn tails
				// by design, while a corrupted SSTable would be a different
				// (unmodeled) failure class.
				PathSubstr: "/wal/",
			})
		case EvDiskCalm:
			fault.Disarm()
		case EvNetFault:
			c.Net.ArmFaults(simnet.FaultConfig{
				Seed:       mix(cfg.Seed, "net"),
				DropProb:   0.03,
				DelayProb:  0.05,
				ExtraDelay: 200 * time.Microsecond,
			})
		case EvNetCalm:
			c.Net.DisarmFaults()
		}
	}
	if d := time.Until(start.Add(cfg.Duration)); d > 0 {
		time.Sleep(d)
	}

	// Quiesce: stop injecting before stopping workers, so operations
	// blocked behind a partition or a fault window can complete.
	close(stop)
	fault.Disarm()
	c.Net.DisarmFaults()
	db.HealNetwork()
	workers.Wait()
	admin.Wait()
	for _, id := range crashedServers(db) {
		if err := db.RestartServer(id); err != nil {
			note("final restart %s: %v", id, err)
		}
	}

	res.Converged = db.WaitForIndexes(30 * time.Second)
	if !res.Converged {
		res.Violations = append(res.Violations, Violation{"convergence",
			fmt.Sprintf("%d async index updates still pending after quiescence", db.PendingIndexUpdates())})
	}
	if cfg.Scheme == diffindex.SyncInsert {
		// Sync-insert's contract allows stale entries but requires them to
		// be cleansable; run the sweep so exactness must hold afterwards.
		if _, _, err := db.NewClient("chaos-admin").Cleanse(workload.TableName, workload.TitleColumn); err != nil {
			return nil, fmt.Errorf("chaos: cleanse: %w", err)
		}
	}

	checked, vs, err := checkInvariants(db, model)
	if err != nil {
		return nil, err
	}
	res.Checked = checked
	res.Violations = append(res.Violations, vs...)
	if cfg.AUQMaxBacklog > 0 {
		// One final sample, then enforce the cap. The shed-to-sync fallback
		// re-enqueues when inline maintenance fails mid-fault, so concurrent
		// writers can overshoot the cap by at most their own count; anything
		// beyond that bounded slack means admission control leaked.
		if d := db.AUQStats().MaxRegionDepth; d > maxBacklog.Load() {
			maxBacklog.Store(d)
		}
		res.MaxAUQBacklog = maxBacklog.Load()
		res.AUQShed = db.AUQStats().Shed
		// Two legitimate overshoot sources: concurrent writers racing the
		// cap check (bounded by the writer count), and crash-recovery WAL
		// replay re-enqueueing up to a full cap's worth of preserved tasks
		// on top of an already-full queue — durability beats the cap during
		// recovery. So the enforced bound is 2·cap plus writer slack; an
		// uncapped run under the same load backs up into the thousands.
		bound := 2*int64(cfg.AUQMaxBacklog) + int64(cfg.Threads) + 4
		if res.MaxAUQBacklog > bound {
			res.Violations = append(res.Violations, Violation{"auq-backlog",
				fmt.Sprintf("sampled AUQ backlog %d exceeds bound %d (cap %d)",
					res.MaxAUQBacklog, bound, cfg.AUQMaxBacklog)})
		}
	}
	res.Ops = ops.Load()
	res.OpErrors = opErrs.Load()
	res.DiskFaults = fault.Stats.Total()
	res.NetDrops, res.NetDelays = c.Net.FaultCounts()
	res.Elapsed = time.Since(begin)
	exportCounters(c.Metrics(), res)
	return res, nil
}

// crashedServers lists servers currently down.
func crashedServers(db *diffindex.DB) []string {
	live := make(map[string]bool)
	for _, id := range db.LiveServers() {
		live[id] = true
	}
	var out []string
	for _, id := range db.Servers() {
		if !live[id] {
			out = append(out, id)
		}
	}
	return out
}

// pickSplit chooses the widest base-table region and its midpoint item key.
func pickSplit(db *diffindex.DB, records int64) (regionID string, splitKey []byte, ok bool) {
	regions, err := db.Regions(workload.TableName)
	if err != nil {
		return "", nil, false
	}
	bestSpan := int64(0)
	for _, r := range regions {
		lo := itemOrdinal(r.Start, 0)
		hi := itemOrdinal(r.End, records)
		mid := (lo + hi) / 2
		if span := hi - lo; span > bestSpan && mid > lo && mid < hi {
			bestSpan = span
			regionID = r.ID
			splitKey = workload.ItemKey(mid)
		}
	}
	return regionID, splitKey, regionID != ""
}

// pickMerge chooses the narrowest adjacent base-table region pair, keeping
// at least two regions so later splits still have room to work.
func pickMerge(db *diffindex.DB, records int64) (lower, upper string, ok bool) {
	regions, err := db.Regions(workload.TableName)
	if err != nil || len(regions) < 3 {
		return "", "", false
	}
	bestSpan := int64(1) << 62
	for i := 0; i+1 < len(regions); i++ {
		lo := itemOrdinal(regions[i].Start, 0)
		hi := itemOrdinal(regions[i+1].End, records)
		if span := hi - lo; span < bestSpan {
			bestSpan, lower, upper = span, regions[i].ID, regions[i+1].ID
		}
	}
	return lower, upper, lower != ""
}

// itemOrdinal decodes workload.ItemKey back to its ordinal; empty region
// bounds decode to def.
func itemOrdinal(key []byte, def int64) int64 {
	if len(key) <= 4 {
		return def
	}
	n, err := strconv.ParseInt(string(key[4:]), 10, 64)
	if err != nil {
		return def
	}
	return n
}

// exportCounters publishes the scenario's chaos counters through the
// cluster's metrics registry, alongside every other subsystem's metrics.
func exportCounters(reg *metrics.Registry, res *Result) {
	reg.Counter("diffindex_chaos_faults_total", metrics.L("kind", "disk")).Add(res.DiskFaults)
	reg.Counter("diffindex_chaos_faults_total", metrics.L("kind", "net-drop")).Add(res.NetDrops)
	reg.Counter("diffindex_chaos_faults_total", metrics.L("kind", "net-delay")).Add(res.NetDelays)
	byInv := make(map[string]int64)
	for _, v := range res.Violations {
		byInv[v.Invariant]++
	}
	for inv, n := range byInv {
		reg.Counter("diffindex_chaos_violations_total", metrics.L("invariant", inv)).Add(n)
	}
}
