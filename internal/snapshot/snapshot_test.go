package snapshot

import (
	"bytes"
	"fmt"
	"testing"

	"diffindex/internal/kv"
)

// fakeLog is an in-memory snapshot.Log: segments of cells, a flush
// boundary, and the appended snapshot payloads.
type fakeLog struct {
	segs     map[uint64][]kv.Cell
	active   uint64
	off      int64
	boundary uint64
	pins     []uint64
	payloads [][]byte
	appendEr error
}

func newFakeLog() *fakeLog {
	return &fakeLog{segs: map[uint64][]kv.Cell{}, active: 1, boundary: 1}
}

func (f *fakeLog) add(c kv.Cell) {
	f.segs[f.active] = append(f.segs[f.active], c)
	f.off += int64(len(c.Key) + len(c.Value) + 9)
}

func (f *fakeLog) Roll() (uint64, error) {
	f.active++
	f.off = 0
	return f.active, nil
}
func (f *fakeLog) FlushedBoundary() uint64   { return f.boundary }
func (f *fakeLog) Position() (uint64, int64) { return f.active, f.off }
func (f *fakeLog) Pin(seg uint64) func()     { f.pins = append(f.pins, seg); return func() {} }
func (f *fakeLog) ReadSealed(from, to uint64, fn func(kv.Cell)) error {
	for s := from; s < to; s++ {
		for _, c := range f.segs[s] {
			fn(c)
		}
	}
	return nil
}
func (f *fakeLog) AppendSnapshotPayload(p []byte) error {
	if f.appendEr != nil {
		return f.appendEr
	}
	f.payloads = append(f.payloads, p)
	f.off += int64(len(p))
	return nil
}

func cell(key string, ts int, kind kv.Kind, val string) kv.Cell {
	c := kv.Cell{Key: []byte(key), Ts: kv.Timestamp(ts), Kind: kind}
	if val != "" {
		c.Value = []byte(val)
	}
	return c
}

// TestTakeFoldsSealedSpan: one round rolls, folds [boundary, newActive) and
// appends a payload that decodes back to exactly the folded cells.
func TestTakeFoldsSealedSpan(t *testing.T) {
	f := newFakeLog()
	f.add(cell("a", 1, kv.KindPut, "v1"))
	f.add(cell("b", 2, kv.KindPut, "v2"))
	f.Roll()
	f.add(cell("a", 3, kv.KindDelete, ""))

	st, err := Take(f)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Taken || st.From != 1 || st.To != 3 || st.Cells != 3 {
		t.Fatalf("stats = %+v, want Taken over [1,3) with 3 cells", st)
	}
	if len(f.pins) != 1 || f.pins[0] != 1 {
		t.Errorf("pins = %v, want the fold's start segment pinned", f.pins)
	}
	if len(f.payloads) != 1 {
		t.Fatalf("appended %d payloads, want 1", len(f.payloads))
	}
	snap, err := Decode(f.payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.From != 1 || snap.To != 3 || len(snap.Cells) != 3 {
		t.Fatalf("decoded %+v, want [1,3) with 3 cells", snap)
	}
	if string(snap.Cells[0].Key) != "a" || string(snap.Cells[0].Value) != "v1" {
		t.Errorf("first folded cell = %+v", snap.Cells[0])
	}
	if snap.Cells[2].Kind != kv.KindDelete || snap.Cells[2].Value != nil {
		t.Errorf("tombstone round-trip = %+v", snap.Cells[2])
	}
}

// TestTakeSkipsEmptySpan: a round over a span with nothing to fold writes
// no payload and reports Taken=false.
func TestTakeSkipsEmptySpan(t *testing.T) {
	f := newFakeLog()
	st, err := Take(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Taken || len(f.payloads) != 0 {
		t.Fatalf("empty span produced a snapshot: %+v", st)
	}
}

// TestSnapshotterSkipsIdleRounds: Maybe only takes a round when the log has
// moved since the last one, so an idle store does not roll segments forever.
func TestSnapshotterSkipsIdleRounds(t *testing.T) {
	f := newFakeLog()
	f.add(cell("a", 1, kv.KindPut, "v"))
	s := NewSnapshotter(f)
	st, err := s.Maybe()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Taken {
		t.Fatal("first round with pending data was skipped")
	}
	rolls := f.active
	for i := 0; i < 3; i++ {
		st, err = s.Maybe()
		if err != nil {
			t.Fatal(err)
		}
		if st.Taken {
			t.Fatal("idle round took a snapshot")
		}
	}
	if f.active != rolls {
		t.Errorf("idle rounds rolled segments: %d → %d", rolls, f.active)
	}
	// New appends re-arm the next round.
	f.add(cell("b", 2, kv.KindPut, "v"))
	st, err = s.Maybe()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Taken {
		t.Error("round after new appends was skipped")
	}
}

// TestTakeAppendFailureSurfaces: an append failure is the caller's to see —
// no stats, no phantom payload.
func TestTakeAppendFailureSurfaces(t *testing.T) {
	f := newFakeLog()
	f.add(cell("a", 1, kv.KindPut, "v"))
	f.appendEr = fmt.Errorf("torn write")
	if _, err := Take(f); err == nil {
		t.Fatal("Take swallowed the append failure")
	}
	if len(f.payloads) != 0 {
		t.Fatal("failed round left a payload behind")
	}
}

// TestDedupeKeepsLastOccurrence: duplicate (key, ts, kind) versions
// (retried batches, re-folded spans) collapse to the last occurrence, in
// log order; distinct versions all survive.
func TestDedupeKeepsLastOccurrence(t *testing.T) {
	in := []kv.Cell{
		cell("a", 1, kv.KindPut, "old"),
		cell("b", 2, kv.KindPut, "b1"),
		cell("a", 1, kv.KindPut, "new"), // same version, later occurrence wins
		cell("a", 2, kv.KindPut, "a2"),  // distinct ts: kept
		cell("a", 2, kv.KindDelete, ""), // distinct kind: kept
	}
	out := dedupe(in)
	if len(out) != 4 {
		t.Fatalf("dedupe kept %d cells, want 4", len(out))
	}
	if string(out[0].Value) != "new" {
		t.Errorf("dedupe kept %q for the duplicated version, want the last occurrence", out[0].Value)
	}
	if string(out[1].Key) != "b" || out[2].Ts != 2 || out[3].Kind != kv.KindDelete {
		t.Errorf("dedupe reordered or dropped distinct versions: %+v", out)
	}
}

// TestPayloadRoundTripAndErrors: the codec round-trips cells exactly and
// rejects truncations, bad versions and trailing garbage.
func TestPayloadRoundTripAndErrors(t *testing.T) {
	cells := []kv.Cell{
		cell("k1", 10, kv.KindPut, "hello"),
		cell("k2", 11, kv.KindDelete, ""),
		{Key: []byte{0x00, 0xFF}, Ts: 12, Kind: kv.KindPut, Value: bytes.Repeat([]byte{7}, 300)},
	}
	payload := EncodePayload(4, 9, cells)

	from, to, err := DecodeHeader(payload)
	if err != nil || from != 4 || to != 9 {
		t.Fatalf("DecodeHeader = (%d, %d, %v), want (4, 9, nil)", from, to, err)
	}
	snap, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if snap.From != 4 || snap.To != 9 || len(snap.Cells) != 3 {
		t.Fatalf("decoded %+v", snap)
	}
	for i := range cells {
		got, want := snap.Cells[i], cells[i]
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) ||
			got.Ts != want.Ts || got.Kind != want.Kind {
			t.Errorf("cell %d: got %+v, want %+v", i, got, want)
		}
	}

	if _, err := Decode([]byte{}); err == nil {
		t.Error("Decode accepted an empty payload")
	}
	if _, err := Decode([]byte{99, 1, 2, 3}); err == nil {
		t.Error("Decode accepted a bad version byte")
	}
	for cut := 1; cut < len(payload); cut += 7 {
		if _, err := Decode(payload[:cut]); err == nil {
			t.Errorf("Decode accepted a payload truncated to %d bytes", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), payload...), 0xAB)); err == nil {
		t.Error("Decode accepted trailing bytes")
	}
}
