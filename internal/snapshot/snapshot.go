// Package snapshot implements snapshot-in-log storage (LogBase; the logd
// double-buffer design): the folded contents of the WAL's sealed, unflushed
// segment span are periodically appended back INTO the log as a single
// snapshot record, so recovery replays "latest snapshot + tail" instead of
// the whole retained log.
//
// The double-buffer discipline: a snapshot round first rolls the log, so
// the span it is about to fold is sealed (immutable) while new appends
// continue on the fresh active segment. The fold then reads the sealed span
// [flushed boundary, roll boundary), deduplicates identical versions, and
// appends one snapshot record to the active segment. Nothing blocks writers
// beyond the instant of the roll.
//
// The package depends only on internal/kv; the log it drives is an
// interface that *wal.Log satisfies structurally, which keeps the wal
// package free to import this one for the payload codec used at recovery.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"

	"diffindex/internal/kv"
)

// Log is the slice of *wal.Log a snapshot round needs.
type Log interface {
	// Roll seals the active segment and returns the new active segment ID;
	// the sealed span to fold ends (exclusively) there.
	Roll() (uint64, error)
	// FlushedBoundary is the newest flush checkpoint: segments below it are
	// durable in SSTables and must not be folded (recovery would re-apply
	// flushed data).
	FlushedBoundary() uint64
	// Position reports the active segment and its append offset; the
	// snapshotter skips rounds when it has not moved.
	Position() (seg uint64, off int64)
	// Pin guards the span being folded against concurrent truncation.
	Pin(seg uint64) func()
	// ReadSealed streams the data cells of sealed segments in [from, to) in
	// log order, skipping meta records and torn tails.
	ReadSealed(from, to uint64, fn func(kv.Cell)) error
	// AppendSnapshotPayload durably appends a snapshot meta record.
	AppendSnapshotPayload(payload []byte) error
}

// Stats describes the outcome of one snapshot round.
type Stats struct {
	// Taken reports whether a snapshot record was written. A round that
	// found nothing to fold (or nothing new since the last round) is
	// skipped, not an error.
	Taken bool
	// From and To bound the folded segment span [From, To).
	From, To uint64
	// Cells is the number of folded cells; Bytes the encoded payload size.
	Cells int
	Bytes int
}

// Take runs one double-buffer snapshot round: roll, fold the sealed
// unflushed span, append the snapshot record. Callers serialize Take
// against flushes (the LSM store holds its flush mutex), which pins the
// flush boundary for the duration of the round.
func Take(l Log) (Stats, error) {
	from := l.FlushedBoundary()
	unpin := l.Pin(from)
	defer unpin()
	to, err := l.Roll()
	if err != nil {
		return Stats{}, fmt.Errorf("snapshot: roll: %w", err)
	}
	var cells []kv.Cell
	if err := l.ReadSealed(from, to, func(c kv.Cell) {
		cells = append(cells, c)
	}); err != nil {
		return Stats{}, fmt.Errorf("snapshot: fold [%d,%d): %w", from, to, err)
	}
	cells = dedupe(cells)
	if len(cells) == 0 {
		return Stats{From: from, To: to}, nil
	}
	payload := EncodePayload(from, to, cells)
	if err := l.AppendSnapshotPayload(payload); err != nil {
		return Stats{}, fmt.Errorf("snapshot: append: %w", err)
	}
	return Stats{Taken: true, From: from, To: to, Cells: len(cells), Bytes: len(payload)}, nil
}

// dedupe drops all but the last occurrence of each (key, ts, kind) version,
// in place, preserving log order. Replay applies cells through the
// memtable's insert-or-overwrite set, so duplicates are harmless but bloat
// the payload (retried batches, re-folded spans).
func dedupe(cells []kv.Cell) []kv.Cell {
	if len(cells) < 2 {
		return cells
	}
	type version struct {
		key  string
		ts   kv.Timestamp
		kind kv.Kind
	}
	seen := make(map[version]int, len(cells))
	out := cells[:0]
	for _, c := range cells {
		v := version{key: string(c.Key), ts: c.Ts, kind: c.Kind}
		if i, ok := seen[v]; ok {
			out[i] = c
			continue
		}
		seen[v] = len(out)
		out = append(out, c)
	}
	return out
}

// Snapshotter runs periodic snapshot rounds, skipping rounds while the log
// has not received new appends (otherwise every idle interval would roll a
// fresh segment and re-fold the same span forever).
type Snapshotter struct {
	l        Log
	lastSeg  uint64
	lastOff  int64
	haveLast bool
}

// NewSnapshotter returns a Snapshotter over l.
func NewSnapshotter(l Log) *Snapshotter {
	return &Snapshotter{l: l}
}

// Maybe runs Take if the log has moved since the last call. Callers
// serialize Maybe against flushes, same as Take.
func (s *Snapshotter) Maybe() (Stats, error) {
	seg, off := s.l.Position()
	if s.haveLast && seg == s.lastSeg && off == s.lastOff {
		return Stats{}, nil
	}
	st, err := Take(s.l)
	if err != nil {
		return st, err
	}
	s.lastSeg, s.lastOff = s.l.Position()
	s.haveLast = true
	return st, nil
}

// Payload format (the value of a wal snapshot record):
//
//	version(1) · from(uvarint) · to(uvarint) · count(uvarint) ·
//	count × [ ts(8 LE) · kind(1) · keyLen(uvarint) · key · valLen(uvarint) · value ]
//
// The cell encoding deliberately mirrors the WAL's own payload encoding so
// a reader of one can read the other.
const payloadVersion = 1

// EncodePayload encodes a folded span into a snapshot record value.
func EncodePayload(from, to uint64, cells []kv.Cell) []byte {
	size := 1 + 3*binary.MaxVarintLen64
	for _, c := range cells {
		size += 9 + 2*binary.MaxVarintLen64 + len(c.Key) + len(c.Value)
	}
	out := make([]byte, 0, size)
	out = append(out, payloadVersion)
	out = binary.AppendUvarint(out, from)
	out = binary.AppendUvarint(out, to)
	out = binary.AppendUvarint(out, uint64(len(cells)))
	var ts [8]byte
	for _, c := range cells {
		binary.LittleEndian.PutUint64(ts[:], uint64(c.Ts))
		out = append(out, ts[:]...)
		out = append(out, byte(c.Kind))
		out = binary.AppendUvarint(out, uint64(len(c.Key)))
		out = append(out, c.Key...)
		out = binary.AppendUvarint(out, uint64(len(c.Value)))
		out = append(out, c.Value...)
	}
	return out
}

// Snapshot is a decoded snapshot payload.
type Snapshot struct {
	From, To uint64
	Cells    []kv.Cell
}

var errTruncated = errors.New("snapshot: truncated payload")

// DecodeHeader decodes only the span bounds of a payload — the cheap read
// recovery's index scan performs on every snapshot candidate.
func DecodeHeader(payload []byte) (from, to uint64, err error) {
	rest, from, to, _, err := decodeHeader(payload)
	_ = rest
	return from, to, err
}

func decodeHeader(payload []byte) (rest []byte, from, to, count uint64, err error) {
	if len(payload) < 1 || payload[0] != payloadVersion {
		return nil, 0, 0, 0, fmt.Errorf("snapshot: unsupported payload version")
	}
	rest = payload[1:]
	var n int
	from, n = binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, 0, 0, errTruncated
	}
	rest = rest[n:]
	to, n = binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, 0, 0, errTruncated
	}
	rest = rest[n:]
	count, n = binary.Uvarint(rest)
	if n <= 0 {
		return nil, 0, 0, 0, errTruncated
	}
	return rest[n:], from, to, count, nil
}

// Decode decodes a full snapshot payload.
func Decode(payload []byte) (Snapshot, error) {
	rest, from, to, count, err := decodeHeader(payload)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{From: from, To: to}
	if count > uint64(len(rest)) { // every cell needs ≥ 11 bytes; cheap bound
		return Snapshot{}, errTruncated
	}
	s.Cells = make([]kv.Cell, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 9 {
			return Snapshot{}, errTruncated
		}
		var c kv.Cell
		c.Ts = kv.Timestamp(binary.LittleEndian.Uint64(rest[:8]))
		c.Kind = kv.Kind(rest[8])
		rest = rest[9:]
		keyLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest[n:])) < keyLen {
			return Snapshot{}, errTruncated
		}
		rest = rest[n:]
		c.Key = append([]byte(nil), rest[:keyLen]...)
		rest = rest[keyLen:]
		valLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest[n:])) < valLen {
			return Snapshot{}, errTruncated
		}
		rest = rest[n:]
		if valLen > 0 {
			c.Value = append([]byte(nil), rest[:valLen]...)
		}
		rest = rest[valLen:]
		s.Cells = append(s.Cells, c)
	}
	if len(rest) != 0 {
		return Snapshot{}, errors.New("snapshot: trailing bytes in payload")
	}
	return s, nil
}
