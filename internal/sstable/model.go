package sstable

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Learned block index (format v3, DESIGN.md §12).
//
// SSTables are immutable, so a per-table model mapping key → block ordinal
// can be trained in one pass at write time and never maintained again. The
// model is a bounded-error piecewise-linear function over a fixed-width key
// prefix: each block contributes one training point (prefix of its first
// user key, block ordinal), and a greedy shrinking-cone fit (FITing-tree /
// PGM style) emits the fewest segments such that every point within a
// segment is predicted within ±ε blocks. At read time the reader predicts a
// block and verifies a ±ε window against the exact block index; any key the
// model cannot place (out-of-range prefix, duplicate-prefix runs wider than
// the cone) falls back to the full binary search, so the model is a pure
// accelerator — it can never change a lookup's result.

const (
	// DefaultModelEpsilon is the training error bound in blocks: a
	// prediction is off by at most this many block ordinals, so the read-
	// side verification window spans 2ε+1 index entries. Smaller ε means a
	// shorter window search per lookup but more segments per table; at ~24
	// bytes a segment the space cost of ε=4 is noise even on huge tables.
	DefaultModelEpsilon = 4
	// DefaultRestartInterval is the entry spacing of in-block restart
	// points: the offset of every K-th entry is recorded in the index so an
	// in-block lookup binary-searches restarts and scans at most K entries
	// (K/2 expected). K=8 keeps the expected tail at 4 entry decodes for
	// ~14 extra uvarints per block in the index.
	DefaultRestartInterval = 8
	// modelPrefixLen is the fixed key-prefix width the model maps to a
	// block ordinal: 8 bytes (after stripping the table-wide common prefix)
	// packed big-endian into a uint64, preserving lexicographic order.
	modelPrefixLen = 8
)

// modelSegment is one piece of the piecewise-linear fit: for prefixes
// x ≥ startX (and below the next segment's startX) the predicted block is
// startBlock + slope·(x − startX).
type modelSegment struct {
	startX     uint64
	startBlock int
	slope      float64
}

// blockModel is a trained per-table model plus the prefix extraction
// parameters it was trained with.
type blockModel struct {
	epsilon  int
	prefixAt int // bytes of table-wide common prefix stripped before the 8-byte window
	segments []modelSegment
}

// keyPrefix packs up to modelPrefixLen bytes of user starting at off into a
// big-endian, left-aligned uint64. Left alignment (shifting short tails into
// the high bytes) preserves lexicographic order of the sliced bytes, which
// is all the model relies on.
func keyPrefix(user []byte, off int) uint64 {
	var x uint64
	i := 0
	for ; i < modelPrefixLen && off+i < len(user); i++ {
		x = x<<8 | uint64(user[off+i])
	}
	return x << (8 * uint(modelPrefixLen-i))
}

// commonPrefixLen returns the length of the longest shared prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// trainModel fits a piecewise-linear model over the first user key of each
// block (firstUsers, ascending) with error bound epsilon, using the greedy
// shrinking-cone algorithm: a segment stays open while some slope predicts
// every point seen so far within ±ε; when the feasible slope interval
// empties, the segment closes at the midpoint of its final cone and a new
// one opens. Duplicate prefixes (keys longer than the window, or heavy
// duplication) can exceed any fixed-slope error bound; such runs simply
// close segments — the reader's window verification turns the residual
// error into a counted fallback, never a wrong answer. Returns nil for
// tables with no blocks.
func trainModel(firstUsers [][]byte, epsilon int) *blockModel {
	if len(firstUsers) == 0 {
		return nil
	}
	if epsilon <= 0 {
		epsilon = DefaultModelEpsilon
	}
	strip := commonPrefixLen(firstUsers[0], firstUsers[len(firstUsers)-1])
	m := &blockModel{epsilon: epsilon, prefixAt: strip}

	var (
		open             bool
		x0               uint64
		y0               int
		slopeLo, slopeHi float64
	)
	closeSeg := func() {
		slope := 0.0
		switch {
		case math.IsInf(slopeHi, 1) && math.IsInf(slopeLo, -1):
			// Single-point segment: constant prediction.
		case math.IsInf(slopeHi, 1):
			slope = slopeLo
		default:
			slope = (slopeLo + slopeHi) / 2
		}
		m.segments = append(m.segments, modelSegment{startX: x0, startBlock: y0, slope: slope})
	}
	openSeg := func(x uint64, y int) {
		open, x0, y0 = true, x, y
		slopeLo, slopeHi = math.Inf(-1), math.Inf(1)
	}
	eps := float64(epsilon)
	for y, user := range firstUsers {
		x := keyPrefix(user, strip)
		if !open {
			openSeg(x, y)
			continue
		}
		dy := float64(y - y0)
		if x == x0 {
			// Same prefix as the segment start: prediction is the start
			// block, tolerable while the run stays within ε.
			if dy > eps {
				closeSeg()
				openSeg(x, y)
			}
			continue
		}
		dx := float64(x - x0)
		lo, hi := (dy-eps)/dx, (dy+eps)/dx
		if lo < slopeLo {
			lo = slopeLo
		}
		if hi > slopeHi {
			hi = slopeHi
		}
		if lo > hi {
			// Infeasible: close on the cone as it stood BEFORE this point —
			// intersecting first would poison the closing midpoint.
			closeSeg()
			openSeg(x, y)
		} else {
			slopeLo, slopeHi = lo, hi
		}
	}
	if open {
		closeSeg()
	}
	return m
}

// predict returns the model's block-ordinal estimate for user key, clamped
// to [0, nBlocks).
func (m *blockModel) predict(user []byte, nBlocks int) int {
	x := keyPrefix(user, m.prefixAt)
	// Binary search for the last segment with startX ≤ x. Segment counts
	// are tiny (one per curvature change), so this is a handful of integer
	// compares.
	lo, hi := 0, len(m.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.segments[mid].startX <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	s := m.segments[lo]
	pred := s.startBlock
	if x > s.startX {
		pred += int(s.slope*float64(x-s.startX) + 0.5)
	}
	if pred < 0 {
		pred = 0
	}
	if pred >= nBlocks {
		pred = nBlocks - 1
	}
	return pred
}

// marshalModel serializes a trained model, self-protected by a trailing
// CRC32C like the checksum section: a corrupted model is rejected at Open
// instead of silently mis-predicting (mis-prediction is harmless, but a
// torn float could decode to NaN and poison every window).
func marshalModel(m *blockModel) []byte {
	out := binary.AppendUvarint(nil, uint64(m.epsilon))
	out = binary.AppendUvarint(out, uint64(m.prefixAt))
	out = binary.AppendUvarint(out, uint64(len(m.segments)))
	for _, s := range m.segments {
		out = binary.LittleEndian.AppendUint64(out, s.startX)
		out = binary.AppendUvarint(out, uint64(s.startBlock))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.slope))
	}
	return binary.LittleEndian.AppendUint32(out, blockCRC(out))
}

func unmarshalModel(b []byte) (*blockModel, error) {
	if len(b) < 4 || blockCRC(b[:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, fmt.Errorf("%w: model section", ErrCorruption)
	}
	b = b[:len(b)-4]
	m := &blockModel{}
	eps, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: model epsilon", ErrBadTable)
	}
	b = b[sz:]
	m.epsilon = int(eps)
	strip, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: model prefix", ErrBadTable)
	}
	b = b[sz:]
	m.prefixAt = int(strip)
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: model segment count", ErrBadTable)
	}
	b = b[sz:]
	m.segments = make([]modelSegment, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: model segment", ErrBadTable)
		}
		var s modelSegment
		s.startX = binary.LittleEndian.Uint64(b)
		b = b[8:]
		blk, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: model segment block", ErrBadTable)
		}
		b = b[sz:]
		s.startBlock = int(blk)
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: model segment slope", ErrBadTable)
		}
		s.slope = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(s.slope) || math.IsInf(s.slope, 0) {
			return nil, fmt.Errorf("%w: model slope not finite", ErrBadTable)
		}
		m.segments = append(m.segments, s)
	}
	if len(m.segments) == 0 {
		return nil, nil // a v3 table written with the model knob off
	}
	return m, nil
}
