package sstable

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"diffindex/internal/bloom"
	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// buildTableWith mirrors buildTable but honors explicit WriterOptions, so
// tests can pin a format version or enable the learned model.
func buildTableWith(t testing.TB, fs vfs.FS, name string, cells []kv.Cell, opts WriterOptions) {
	t.Helper()
	type entry struct {
		ikey  []byte
		value []byte
	}
	entries := make([]entry, len(cells))
	for i, c := range cells {
		entries[i] = entry{kv.InternalKey(c.Key, c.Ts, c.Kind), c.Value}
	}
	sort.Slice(entries, func(i, j int) bool {
		return kv.CompareInternal(entries[i].ikey, entries[j].ikey) < 0
	})
	w, err := NewWriterWith(fs, name, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

// seqCells returns n sequential single-version cells keyed key%08d.
func seqCells(n int) []kv.Cell {
	cells := make([]kv.Cell, n)
	for i := range cells {
		cells[i] = kv.Cell{
			Key:   []byte(fmt.Sprintf("key%08d", i)),
			Value: []byte(fmt.Sprintf("val-%d", i)),
			Ts:    1,
			Kind:  kv.KindPut,
		}
	}
	return cells
}

// distCells builds n cells under a named key distribution. All distributions
// are deterministic (fixed seed) so failures reproduce.
func distCells(dist string, n int) []kv.Cell {
	rng := rand.New(rand.NewSource(42))
	cells := make([]kv.Cell, 0, n)
	switch dist {
	case "sequential":
		return seqCells(n)
	case "zipfian":
		// Zipf-spaced key *gaps*: long runs of dense keys punctuated by
		// huge jumps, the worst case for a single linear segment.
		z := rand.NewZipf(rng, 1.3, 1, 1<<20)
		cur := uint64(0)
		for i := 0; i < n; i++ {
			cur += z.Uint64() + 1
			cells = append(cells, kv.Cell{
				Key:   []byte(fmt.Sprintf("key%016d", cur)),
				Value: []byte(fmt.Sprintf("val-%d", i)),
				Ts:    1,
				Kind:  kv.KindPut,
			})
		}
	case "composite":
		// HBase-style composite rowkeys: long shared prefix, discriminating
		// bytes deep in the key. Comparisons are expensive here, which is
		// where replacing binary-search compares with model arithmetic pays
		// the most.
		for i := 0; i < n; i++ {
			cells = append(cells, kv.Cell{
				Key:   []byte(fmt.Sprintf("orders#tenant-0042#user-%010d#seq-%06d", i/50, i%50)),
				Value: []byte(fmt.Sprintf("val-%d", i)),
				Ts:    1,
				Kind:  kv.KindPut,
			})
		}
	case "duplicate-heavy":
		// Few distinct user keys, many timestamped versions each: block
		// first-keys repeat, so the model's prefix space collapses and the
		// read path must lean on its verified fallback.
		distinct := n/64 + 1
		for i := 0; i < n; i++ {
			cells = append(cells, kv.Cell{
				Key:   []byte(fmt.Sprintf("key%08d", rng.Intn(distinct))),
				Value: []byte(fmt.Sprintf("val-%d", i)),
				Ts:    kv.Timestamp(i + 1),
				Kind:  kv.KindPut,
			})
		}
	case "single-key":
		// One user key, n versions: every block shares the same first user
		// key — the degenerate extreme of duplicate-heavy.
		for i := 0; i < n; i++ {
			cells = append(cells, kv.Cell{
				Key:   []byte("the-only-key"),
				Value: []byte(fmt.Sprintf("val-%d", i)),
				Ts:    kv.Timestamp(i + 1),
				Kind:  kv.KindPut,
			})
		}
	default:
		panic("unknown distribution " + dist)
	}
	return cells
}

// TestTrainModelBoundedError is the core model property: for strictly
// increasing training keys, every training point predicts within ε blocks of
// its true ordinal, across distributions and ε values.
func TestTrainModelBoundedError(t *testing.T) {
	mk := func(gen func(i int) []byte, n int) [][]byte {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = gen(i)
		}
		return keys
	}
	rng := rand.New(rand.NewSource(7))
	jump := 0
	distributions := map[string][][]byte{
		"sequential": mk(func(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }, 500),
		"gapped": mk(func(i int) []byte {
			jump += rng.Intn(1000) + 1
			return []byte(fmt.Sprintf("key%012d", jump))
		}, 500),
		// 8-char keys: nothing shared between runs, so the whole key fits
		// the 8-byte model window and every block has a distinct prefix (the
		// precondition for the per-training-point ε guarantee; wider keys
		// collapse to duplicate prefixes, covered by the equivalence test).
		"two-runs": mk(func(i int) []byte {
			if i < 250 {
				return []byte(fmt.Sprintf("aaa%05d", i))
			}
			return []byte(fmt.Sprintf("zzz%05d", i))
		}, 500),
		"tiny": mk(func(i int) []byte { return []byte(fmt.Sprintf("k%d", i)) }, 1),
	}
	for name, keys := range distributions {
		for _, eps := range []int{1, 4, 8} {
			m := trainModel(keys, eps)
			if m == nil {
				t.Fatalf("%s eps=%d: trainModel returned nil", name, eps)
			}
			for i, k := range keys {
				pred := m.predict(k, len(keys))
				if d := pred - i; d > eps || d < -eps {
					t.Fatalf("%s eps=%d: block %d predicted %d (error %d > ε)",
						name, eps, i, pred, d)
				}
			}
		}
	}
}

func TestModelMarshalRoundTrip(t *testing.T) {
	keys := make([][]byte, 300)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i*i))
	}
	m := trainModel(keys, 4)
	buf := marshalModel(m)
	got, err := unmarshalModel(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.epsilon != m.epsilon || got.prefixAt != m.prefixAt || len(got.segments) != len(m.segments) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
	}
	for i := range m.segments {
		if got.segments[i] != m.segments[i] {
			t.Fatalf("segment %d mismatch: got %+v want %+v", i, got.segments[i], m.segments[i])
		}
	}

	// Any flipped byte must be rejected by the section CRC.
	for _, off := range []int{0, len(buf) / 2, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0xff
		if _, err := unmarshalModel(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", off)
		}
	}

	// Non-finite slopes are data corruption even if the CRC was recomputed.
	evil := &blockModel{epsilon: 4, segments: []modelSegment{{startX: 1, startBlock: 0, slope: math.NaN()}}}
	if _, err := unmarshalModel(marshalModel(evil)); err == nil {
		t.Fatal("NaN slope accepted")
	}
}

// TestFooterCompatMatrix opens one table per format version and proves the
// full read surface — point gets, ordered iteration, seeks, block
// verification — behaves identically on all of them.
func TestFooterCompatMatrix(t *testing.T) {
	cells := seqCells(5000)
	cases := []struct {
		name      string
		opts      WriterOptions
		version   int
		checksums bool
		model     bool
	}{
		{"v1", WriterOptions{FormatVersion: 1}, 1, false, false},
		{"v2", WriterOptions{FormatVersion: 2}, 2, true, false},
		{"v3", WriterOptions{}, 3, true, false},
		{"v3-learned", WriterOptions{LearnedIndex: true}, 3, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := vfs.NewMemFS()
			buildTableWith(t, fs, "t.sst", cells, tc.opts)
			r, err := Open(fs, "t.sst", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.FormatVersion() != tc.version {
				t.Fatalf("FormatVersion = %d, want %d", r.FormatVersion(), tc.version)
			}
			if r.HasChecksums() != tc.checksums {
				t.Fatalf("HasChecksums = %v, want %v", r.HasChecksums(), tc.checksums)
			}
			if r.HasModel() != tc.model {
				t.Fatalf("HasModel = %v, want %v", r.HasModel(), tc.model)
			}

			// Every key resolves; a missing key does not.
			for i := 0; i < len(cells); i += 7 {
				c, ok, err := r.Get(cells[i].Key, kv.MaxTimestamp)
				if err != nil || !ok {
					t.Fatalf("Get(%q) = ok=%v err=%v", cells[i].Key, ok, err)
				}
				if !bytes.Equal(c.Value, cells[i].Value) {
					t.Fatalf("Get(%q) = %q, want %q", cells[i].Key, c.Value, cells[i].Value)
				}
			}
			if _, ok, _ := r.Get([]byte("key99999999"), kv.MaxTimestamp); ok {
				t.Fatal("phantom key found")
			}

			// Ordered full iteration.
			it := r.Iterator()
			n := 0
			var prev []byte
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if prev != nil && kv.CompareInternal(prev, it.InternalKey()) >= 0 {
					t.Fatal("iteration out of order")
				}
				prev = append(prev[:0], it.InternalKey()...)
				n++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if n != len(cells) {
				t.Fatalf("iterated %d entries, want %d", n, len(cells))
			}

			// Seek lands on the exact entry.
			target := cells[1234]
			it.Seek(kv.SeekKey(target.Key, kv.MaxTimestamp))
			if !it.Valid() || !bytes.Equal(it.Cell().Key, target.Key) {
				t.Fatalf("Seek(%q) landed on %q", target.Key, it.Cell().Key)
			}

			// Every block verifies (vacuously on v1).
			for i := 0; i < r.NumBlocks(); i++ {
				if _, err := r.VerifyBlock(i); err != nil {
					t.Fatalf("VerifyBlock(%d): %v", i, err)
				}
			}
		})
	}
}

// TestLearnedEquivalenceProperty is the zero-divergence guarantee: on the
// same table, every Get and Seek must return byte-identical results with the
// model enabled and disabled, across key distributions (including the
// degenerate ones where the model is useless and always falls back).
func TestLearnedEquivalenceProperty(t *testing.T) {
	for _, dist := range []string{"sequential", "zipfian", "composite", "duplicate-heavy", "single-key"} {
		for _, eps := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/eps%d", dist, eps), func(t *testing.T) {
				cells := distCells(dist, 6000)
				fs := vfs.NewMemFS()
				buildTableWith(t, fs, "t.sst", cells,
					WriterOptions{LearnedIndex: true, Epsilon: eps})
				r, err := Open(fs, "t.sst", nil)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if !r.HasModel() {
					t.Fatal("no model trained")
				}

				// Probe set: every written user key plus misses on both sides
				// of each (and of the whole table).
				probes := [][]byte{[]byte(""), []byte("~~~past-the-end")}
				seen := map[string]bool{}
				for _, c := range cells {
					if !seen[string(c.Key)] {
						seen[string(c.Key)] = true
						probes = append(probes, c.Key,
							append(append([]byte(nil), c.Key...), '!'),  // just above (! < any digit continuation is false; '!' sorts below digits, giving a just-below-next miss)
							append(append([]byte(nil), c.Key...), 0xff)) // just above, in-gap
					}
				}
				for _, p := range probes {
					for _, ts := range []kv.Timestamp{kv.MaxTimestamp, 1, 3000} {
						r.SetUseModel(true)
						c1, ok1, err1 := r.Get(p, ts)
						r.SetUseModel(false)
						c2, ok2, err2 := r.Get(p, ts)
						if ok1 != ok2 || (err1 == nil) != (err2 == nil) ||
							!bytes.Equal(c1.Value, c2.Value) || c1.Ts != c2.Ts || c1.Kind != c2.Kind {
							t.Fatalf("Get(%q, %d) diverged: model=(%v,%v,%v) binary=(%v,%v,%v)",
								p, ts, c1, ok1, err1, c2, ok2, err2)
						}
					}
				}

				// Seek equivalence: first 3 entries from each probe position.
				next3 := func(seek []byte) []string {
					it := r.Iterator()
					it.Seek(seek)
					var out []string
					for i := 0; i < 3 && it.Valid(); i++ {
						out = append(out, string(it.InternalKey())+"="+string(it.Value()))
						it.Next()
					}
					if err := it.Err(); err != nil {
						t.Fatal(err)
					}
					return out
				}
				for i := 0; i < len(probes); i += 17 {
					seek := kv.SeekKey(probes[i], kv.MaxTimestamp)
					r.SetUseModel(true)
					a := next3(seek)
					r.SetUseModel(false)
					b := next3(seek)
					if fmt.Sprint(a) != fmt.Sprint(b) {
						t.Fatalf("Seek(%q) diverged:\nmodel:  %v\nbinary: %v", probes[i], a, b)
					}
				}

				hits, falls := r.ModelStats()
				if hits+falls == 0 {
					t.Fatal("model path never exercised")
				}
				t.Logf("dist=%s eps=%d: %d blocks, %d segments, %d hits, %d fallbacks",
					dist, eps, r.NumBlocks(), r.Info().ModelSegments, hits, falls)
			})
		}
	}
}

// TestConcurrentLearnedReaders hammers one model-backed reader from many
// goroutines; run under -race it proves the model read path (atomics
// included) is safe for concurrent use.
func TestConcurrentLearnedReaders(t *testing.T) {
	cells := seqCells(20000)
	fs := vfs.NewMemFS()
	buildTableWith(t, fs, "t.sst", cells, WriterOptions{LearnedIndex: true})
	r, err := Open(fs, "t.sst", NewBlockCache(256))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.HasModel() {
		t.Fatal("no model trained")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				j := rng.Intn(len(cells))
				c, ok, err := r.Get(cells[j].Key, kv.MaxTimestamp)
				if err != nil || !ok || !bytes.Equal(c.Value, cells[j].Value) {
					errs <- fmt.Errorf("Get(%q) = (%q,%v,%v)", cells[j].Key, c.Value, ok, err)
					return
				}
				if i%100 == 0 {
					it := r.Iterator()
					it.Seek(kv.SeekKey(cells[j].Key, kv.MaxTimestamp))
					if !it.Valid() || !bytes.Equal(it.Cell().Key, cells[j].Key) {
						errs <- fmt.Errorf("Seek(%q) invalid", cells[j].Key)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits, falls := r.ModelStats(); hits == 0 && falls == 0 {
		t.Fatal("model path never exercised")
	}
}

// TestSearchBlockRestarts checks the restart-point binary search against the
// ground-truth linear scan (restarts=nil) for every entry boundary and for
// keys that fall between entries.
func TestSearchBlockRestarts(t *testing.T) {
	cells := seqCells(3000)
	fs := vfs.NewMemFS()
	buildTableWith(t, fs, "t.sst", cells, WriterOptions{RestartInterval: 4})
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for bi := 0; bi < r.NumBlocks(); bi++ {
		blk, err := r.block(bi)
		if err != nil {
			t.Fatal(err)
		}
		restarts := r.index[bi].restarts
		if bi == 0 && len(restarts) == 0 {
			t.Fatal("no restart points recorded")
		}
		probe := func(seek []byte) {
			got := searchBlock(blk, restarts, seek)
			want := searchBlock(blk, nil, seek)
			if got != want {
				t.Fatalf("block %d searchBlock(%q): restarts=%d linear=%d", bi, seek, got, want)
			}
		}
		off := 0
		for off < len(blk) {
			ikey, _, n := blockEntry(blk[off:])
			if n == 0 {
				t.Fatalf("block %d: malformed entry at %d", bi, off)
			}
			probe(ikey)                                       // exact hit
			probe(append([]byte(nil), ikey[:len(ikey)-1]...)) // prefix: sorts below
			probe(append(append([]byte(nil), ikey...), 0))    // just above
			off += n
		}
		probe([]byte{})                       // below everything
		probe(bytes.Repeat([]byte{0xff}, 24)) // above everything
	}
}

// countingFS wraps a vfs.FS and counts ReadAt calls on every file opened
// through it, so tests can assert "zero block I/O".
type countingFS struct {
	vfs.FS
	reads atomic.Int64
}

func (c *countingFS) Open(name string) (vfs.File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, n: &c.reads}, nil
}

type countingFile struct {
	vfs.File
	n *atomic.Int64
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	f.n.Add(1)
	return f.File.ReadAt(p, off)
}

// TestGetGapRejectionZeroIO: a point get for a key that falls in the gap
// between two blocks' key ranges must be rejected from the index alone —
// zero data-block reads — using the per-block first-key bound. The bloom
// filter is replaced so the probe key passes it (simulating a false
// positive, the only case where the gap bound matters).
func TestGetGapRejectionZeroIO(t *testing.T) {
	cfs := &countingFS{FS: vfs.NewMemFS()}
	// Build by hand with an explicit block cut between the "a" and "c" key
	// ranges so the gap lands exactly on a block boundary (a size-based cut
	// would let one block straddle it, and a straddling block legitimately
	// needs a read to disprove the key).
	w, err := NewWriterWith(cfs, "t.sst", WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := kv.InternalKey([]byte(fmt.Sprintf("a%07d", i)), 1, kv.KindPut)
		if err := w.Add(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.cutBlock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := kv.InternalKey([]byte(fmt.Sprintf("c%07d", i)), 1, kv.KindPut)
		if err := w.Add(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cfs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Force the bloom to pass for the gap key: the filter is rebuilt over
	// exactly the probe, so MayContain is true yet the key is absent.
	gap := []byte("b5000000")
	r.filter = bloom.New([][]byte{gap}, 10)

	before := cfs.reads.Load()
	if _, ok, err := r.Get(gap, kv.MaxTimestamp); ok || err != nil {
		t.Fatalf("Get(gap) = ok=%v err=%v", ok, err)
	}
	if got := cfs.reads.Load() - before; got != 0 {
		t.Fatalf("gap-key Get performed %d reads, want 0", got)
	}

	// Sanity: the same reader still does real I/O for a key it must fetch.
	r.filter = bloom.New([][]byte{[]byte("c0001000")}, 10)
	before = cfs.reads.Load()
	if _, ok, _ := r.Get([]byte("c0001000"), kv.MaxTimestamp); !ok {
		t.Fatal("real key not found")
	}
	if got := cfs.reads.Load() - before; got == 0 {
		t.Fatal("expected at least one block read for a present key")
	}
}

// TestInfoSurface spot-checks the Info() summary lsmtool stats prints.
func TestInfoSurface(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTableWith(t, fs, "t.sst", seqCells(5000), WriterOptions{LearnedIndex: true, Epsilon: 4})
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Info()
	if info.FormatVersion != 3 || info.Blocks != r.NumBlocks() || info.Entries != 5000 {
		t.Fatalf("Info = %+v", info)
	}
	if info.ModelSegments < 1 || info.ModelEpsilon != 4 || info.ModelBytes == 0 {
		t.Fatalf("model summary missing: %+v", info)
	}
	if info.Restarts == 0 {
		t.Fatalf("restart count missing: %+v", info)
	}
}
