package sstable

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// BlockCache is a shared LRU cache of decoded data blocks, keyed by
// (table name, block offset). It models HBase's block cache: the experiment
// setup assigns 25% of the region-server heap to it (§8.1), and "read is
// measured with a warmed block cache". Cached hits bypass the VFS and so
// avoid the simulated disk latency.
//
// The cache is sharded: each key hashes to one of N independent shards,
// each with its own mutex, LRU list and byte budget, so concurrent readers
// on different blocks do not serialize on a single lock (the paper's
// experiments run up to 320 closed-loop client threads against one block
// cache; a global mutex is the first hot-path bottleneck at that scale).
// Small caches collapse to a single shard so per-shard budgets stay large
// enough to hold real blocks.
type BlockCache struct {
	capacity int64
	shards   []*cacheShard
	mask     uint64
	seed     maphash.Seed
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	table  string
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block []byte
}

const (
	// defaultCacheShards is the shard count for full-size caches. Shard
	// counts are powers of two so shard selection is a mask.
	defaultCacheShards = 16
	// minShardBytes is the smallest useful per-shard budget: caches too
	// small to give every shard at least this much use fewer shards (down
	// to one), preserving the eviction behaviour of a tiny unsharded cache.
	minShardBytes = 128 << 10
)

// NewBlockCache returns a cache bounded to capacity bytes, sharded
// defaultCacheShards ways (fewer for small capacities). A zero or negative
// capacity disables caching (every lookup misses).
func NewBlockCache(capacity int64) *BlockCache {
	shards := defaultCacheShards
	for shards > 1 && capacity/int64(shards) < minShardBytes {
		shards /= 2
	}
	return NewBlockCacheShards(capacity, shards)
}

// NewBlockCacheShards returns a cache bounded to capacity bytes split across
// the given number of shards (rounded down to a power of two, minimum 1).
// Benchmarks use shards=1 to reproduce the historical single-mutex cache.
func NewBlockCacheShards(capacity int64, shards int) *BlockCache {
	if shards < 1 {
		shards = 1
	}
	// Round down to a power of two so shardFor can mask instead of mod.
	for shards&(shards-1) != 0 {
		shards &= shards - 1
	}
	c := &BlockCache{
		capacity: capacity,
		shards:   make([]*cacheShard, shards),
		mask:     uint64(shards - 1),
		seed:     maphash.MakeSeed(),
	}
	per := capacity / int64(shards)
	rem := capacity % int64(shards)
	for i := range c.shards {
		budget := per
		if int64(i) < rem {
			budget++
		}
		c.shards[i] = &cacheShard{
			capacity: budget,
			ll:       list.New(),
			items:    make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// shardFor hashes (table, offset) to a shard.
func (c *BlockCache) shardFor(table string, offset uint64) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(table)
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(offset >> (8 * i))
	}
	h.Write(buf[:])
	return c.shards[h.Sum64()&c.mask]
}

// Get returns the cached block for (table, offset), or nil on a miss.
//
// The returned slice aliases the cache's copy of the block — it is shared
// with every other reader of the same block. Callers MUST treat it as
// read-only; mutating it would corrupt the block for all future readers.
// (sstable.Reader only ever decodes from it, never writes into it.)
func (c *BlockCache) Get(table string, offset uint64) []byte {
	if c == nil {
		return nil
	}
	s := c.shardFor(table, offset)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[cacheKey{table, offset}]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*cacheEntry).block
	}
	s.misses++
	return nil
}

// Put inserts a block, evicting least-recently-used blocks of its shard to
// stay within the shard's byte budget. Blocks larger than a whole shard are
// not inserted. The cache takes ownership of block: callers must not mutate
// it after Put (the same read-only contract as Get).
func (c *BlockCache) Put(table string, offset uint64, block []byte) {
	if c == nil || c.capacity <= 0 {
		return
	}
	s := c.shardFor(table, offset)
	if int64(len(block)) > s.capacity {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := cacheKey{table, offset}
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.used += int64(len(block)) - int64(len(el.Value.(*cacheEntry).block))
		el.Value.(*cacheEntry).block = block
	} else {
		el := s.ll.PushFront(&cacheEntry{key: key, block: block})
		s.items[key] = el
		s.used += int64(len(block))
	}
	for s.used > s.capacity {
		tail := s.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		s.ll.Remove(tail)
		delete(s.items, ent.key)
		s.used -= int64(len(ent.block))
	}
}

// DropTable evicts every block belonging to the named table — called when a
// table file is deleted after compaction. The drop fans out across shards.
func (c *BlockCache) DropTable(table string) {
	if c == nil {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			ent := el.Value.(*cacheEntry)
			if ent.key.table == table {
				s.ll.Remove(el)
				delete(s.items, ent.key)
				s.used -= int64(len(ent.block))
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit and miss counts, rolled up across shards.
func (c *BlockCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Used returns the current cached byte total across all shards.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	var used int64
	for _, s := range c.shards {
		s.mu.Lock()
		used += s.used
		s.mu.Unlock()
	}
	return used
}

// ShardCount returns the number of independent shards.
func (c *BlockCache) ShardCount() int { return len(c.shards) }
