package sstable

import (
	"container/list"
	"sync"
)

// BlockCache is a shared LRU cache of decoded data blocks, keyed by
// (table name, block offset). It models HBase's block cache: the experiment
// setup assigns 25% of the region-server heap to it (§8.1), and "read is
// measured with a warmed block cache". Cached hits bypass the VFS and so
// avoid the simulated disk latency.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	table  string
	offset uint64
}

type cacheEntry struct {
	key   cacheKey
	block []byte
}

// NewBlockCache returns a cache bounded to capacity bytes. A zero or
// negative capacity disables caching (every lookup misses).
func NewBlockCache(capacity int64) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached block for (table, offset), or nil on a miss.
func (c *BlockCache) Get(table string, offset uint64) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[cacheKey{table, offset}]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).block
	}
	c.misses++
	return nil
}

// Put inserts a block, evicting least-recently-used blocks to stay within
// capacity. Blocks larger than the whole cache are not inserted.
func (c *BlockCache) Put(table string, offset uint64, block []byte) {
	if c == nil || c.capacity <= 0 || int64(len(block)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{table, offset}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.used += int64(len(block)) - int64(len(el.Value.(*cacheEntry).block))
		el.Value.(*cacheEntry).block = block
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, block: block})
		c.items[key] = el
		c.used += int64(len(block))
	}
	for c.used > c.capacity {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.block))
	}
}

// DropTable evicts every block belonging to the named table — called when a
// table file is deleted after compaction.
func (c *BlockCache) DropTable(table string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.table == table {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.used -= int64(len(ent.block))
		}
		el = next
	}
}

// Stats returns cumulative hit and miss counts.
func (c *BlockCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Used returns the current cached byte total.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
