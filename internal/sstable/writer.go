package sstable

import (
	"fmt"

	"diffindex/internal/bloom"
	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// WriterOptions selects the table format and the write-time lookup
// accelerators. The zero value writes the latest format (v3) with restart
// points but without the learned model.
type WriterOptions struct {
	// FormatVersion is the table format to emit: 1 (no checksums), 2
	// (checksums) or 3 (checksums + first keys + restarts + optional
	// model). 0 means FormatLatest. Older versions exist for the
	// compatibility matrix and as the on-disk state of pre-upgrade stores.
	FormatVersion int
	// LearnedIndex trains a bounded-error piecewise-linear block model over
	// the table at Finish and persists it in the v3 model section. Ignored
	// below v3.
	LearnedIndex bool
	// Epsilon is the model's training error bound in blocks (≤ 0 means
	// DefaultModelEpsilon).
	Epsilon int
	// RestartInterval is the entry spacing of in-block restart points
	// (≤ 0 means DefaultRestartInterval). Ignored below v3.
	RestartInterval int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.FormatVersion == 0 {
		o.FormatVersion = FormatLatest
	}
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultModelEpsilon
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = DefaultRestartInterval
	}
	return o
}

// Writer builds an SSTable from entries added in ascending internal-key
// order (flushes iterate the memtable in order; compactions merge sorted
// runs, so both producers satisfy this naturally).
type Writer struct {
	f    vfs.File
	name string
	opts WriterOptions

	block    []byte
	blockOff uint64
	index    []indexEntry
	lastKey  []byte

	// Per-open-block v3 state: the block's first internal key, the restart
	// offsets of every RestartInterval-th entry after the first, and the
	// running entry count within the block.
	blockFirstKey []byte
	blockRestarts []uint32
	blockEntries  int
	// firstUsers collects each finished block's first user key — the
	// model's training set.
	firstUsers [][]byte

	userKeys [][]byte // distinct user keys, for the Bloom filter
	lastUser []byte

	smallest, largest []byte // user-key bounds
	count             uint64
	tombstones        uint64
	finished          bool

	crcs          checksumSet
	modelSegments int
	modelBytes    int
}

// NewWriter creates the named table file and returns a writer emitting the
// latest format with default accelerator settings (no learned model).
func NewWriter(fs vfs.FS, name string) (*Writer, error) {
	return NewWriterWith(fs, name, WriterOptions{})
}

// NewWriterWith creates the named table file with explicit format options.
func NewWriterWith(fs vfs.FS, name string, opts WriterOptions) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("sstable: create %s: %w", name, err)
	}
	return &Writer{f: f, name: name, opts: opts.withDefaults()}, nil
}

// Add appends one entry. Entries must arrive in strictly ascending internal
// key order.
func (w *Writer) Add(ikey, value []byte) error {
	if w.finished {
		return fmt.Errorf("sstable: writer for %s already finished", w.name)
	}
	if w.lastKey != nil && kv.CompareInternal(ikey, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: out-of-order key %x after %x", ikey, w.lastKey)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)

	user := kv.InternalUserKey(ikey)
	if w.lastUser == nil || string(user) != string(w.lastUser) {
		w.userKeys = append(w.userKeys, append([]byte(nil), user...))
		w.lastUser = append(w.lastUser[:0], user...)
	}
	if w.smallest == nil {
		w.smallest = append([]byte(nil), user...)
	}
	w.largest = append(w.largest[:0], user...)
	w.count++
	if _, _, kind, err := kv.ParseInternalKey(ikey); err == nil && kind == kv.KindDelete {
		w.tombstones++
	}

	if w.opts.FormatVersion >= 3 {
		if w.blockEntries == 0 {
			w.blockFirstKey = append([]byte(nil), ikey...)
		} else if w.blockEntries%w.opts.RestartInterval == 0 {
			w.blockRestarts = append(w.blockRestarts, uint32(len(w.block)))
		}
		w.blockEntries++
	}
	w.block = appendBlockEntry(w.block, ikey, value)
	if len(w.block) >= TargetBlockSize {
		return w.cutBlock()
	}
	return nil
}

func (w *Writer) cutBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	n, err := w.f.Write(w.block)
	if err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	w.crcs.blocks = append(w.crcs.blocks, blockCRC(w.block))
	e := indexEntry{
		lastKey: append([]byte(nil), w.lastKey...),
		handle:  blockHandle{offset: w.blockOff, length: uint64(n)},
	}
	if w.opts.FormatVersion >= 3 {
		e.firstKey = w.blockFirstKey
		e.restarts = w.blockRestarts
		w.firstUsers = append(w.firstUsers, kv.InternalUserKey(w.blockFirstKey))
		w.blockFirstKey = nil
		w.blockRestarts = nil
		w.blockEntries = 0
	}
	w.index = append(w.index, e)
	w.blockOff += uint64(n)
	w.block = w.block[:0]
	return nil
}

// Finish flushes the remaining block, writes the filter, index, checksum and
// model sections and the footer, syncs, and closes the file. The writer
// cannot be reused.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("sstable: writer for %s already finished", w.name)
	}
	w.finished = true
	if err := w.cutBlock(); err != nil {
		return err
	}

	var ftr footer
	ftr.entryCount = w.count
	ftr.tombstoneCount = w.tombstones

	filter := bloom.New(w.userKeys, bloom.BitsPerKey).Marshal()
	ftr.filterOff = w.blockOff
	ftr.filterLen = uint64(len(filter))
	if _, err := w.f.Write(filter); err != nil {
		return fmt.Errorf("sstable: write filter: %w", err)
	}
	w.blockOff += uint64(len(filter))

	idx := marshalIndex(w.smallest, w.index, w.opts.FormatVersion)
	ftr.indexOff = w.blockOff
	ftr.indexLen = uint64(len(idx))
	if _, err := w.f.Write(idx); err != nil {
		return fmt.Errorf("sstable: write index: %w", err)
	}
	w.blockOff += uint64(len(idx))

	var ftrBytes []byte
	switch w.opts.FormatVersion {
	case 1:
		ftrBytes = ftr.marshalV1()
	default:
		w.crcs.filter = blockCRC(filter)
		w.crcs.index = blockCRC(idx)
		sums := w.crcs.marshal()
		ftr.checksumOff = w.blockOff
		ftr.checksumLen = uint64(len(sums))
		if _, err := w.f.Write(sums); err != nil {
			return fmt.Errorf("sstable: write checksums: %w", err)
		}
		w.blockOff += uint64(len(sums))
		if w.opts.FormatVersion == 2 {
			ftrBytes = ftr.marshalV2()
			break
		}
		if w.opts.LearnedIndex {
			if m := trainModel(w.firstUsers, w.opts.Epsilon); m != nil {
				mb := marshalModel(m)
				ftr.modelOff = w.blockOff
				ftr.modelLen = uint64(len(mb))
				if _, err := w.f.Write(mb); err != nil {
					return fmt.Errorf("sstable: write model: %w", err)
				}
				w.blockOff += uint64(len(mb))
				w.modelSegments = len(m.segments)
				w.modelBytes = len(mb)
			}
		}
		ftrBytes = ftr.marshal()
	}
	if _, err := w.f.Write(ftrBytes); err != nil {
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sstable: sync: %w", err)
	}
	return w.f.Close()
}

// Abandon closes the underlying file without finishing the table. The caller
// is responsible for removing the partial file.
func (w *Writer) Abandon() error {
	w.finished = true
	return w.f.Close()
}

// Count returns the number of entries added so far.
func (w *Writer) Count() uint64 { return w.count }

// ModelSegments returns the number of piecewise-linear segments the trained
// model holds (0 when no model was written). Valid after Finish.
func (w *Writer) ModelSegments() int { return w.modelSegments }

// ModelBytes returns the size of the persisted model section (0 when no
// model was written). Valid after Finish.
func (w *Writer) ModelBytes() int { return w.modelBytes }
