package sstable

import (
	"fmt"

	"diffindex/internal/bloom"
	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// Writer builds an SSTable from entries added in ascending internal-key
// order (flushes iterate the memtable in order; compactions merge sorted
// runs, so both producers satisfy this naturally).
type Writer struct {
	f    vfs.File
	name string

	block    []byte
	blockOff uint64
	index    []indexEntry
	lastKey  []byte

	userKeys [][]byte // distinct user keys, for the Bloom filter
	lastUser []byte

	smallest, largest []byte // user-key bounds
	count             uint64
	tombstones        uint64
	finished          bool

	crcs checksumSet
	// legacy makes Finish emit the v1 format (no checksum section, 56-byte
	// footer). Only backward-compat tests set it.
	legacy bool
}

// NewWriter creates the named table file and returns a writer for it.
func NewWriter(fs vfs.FS, name string) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("sstable: create %s: %w", name, err)
	}
	return &Writer{f: f, name: name}, nil
}

// Add appends one entry. Entries must arrive in strictly ascending internal
// key order.
func (w *Writer) Add(ikey, value []byte) error {
	if w.finished {
		return fmt.Errorf("sstable: writer for %s already finished", w.name)
	}
	if w.lastKey != nil && kv.CompareInternal(ikey, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: out-of-order key %x after %x", ikey, w.lastKey)
	}
	w.lastKey = append(w.lastKey[:0], ikey...)

	user := kv.InternalUserKey(ikey)
	if w.lastUser == nil || string(user) != string(w.lastUser) {
		w.userKeys = append(w.userKeys, append([]byte(nil), user...))
		w.lastUser = append(w.lastUser[:0], user...)
	}
	if w.smallest == nil {
		w.smallest = append([]byte(nil), user...)
	}
	w.largest = append(w.largest[:0], user...)
	w.count++
	if _, _, kind, err := kv.ParseInternalKey(ikey); err == nil && kind == kv.KindDelete {
		w.tombstones++
	}

	w.block = appendBlockEntry(w.block, ikey, value)
	if len(w.block) >= TargetBlockSize {
		return w.cutBlock()
	}
	return nil
}

func (w *Writer) cutBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	n, err := w.f.Write(w.block)
	if err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	w.crcs.blocks = append(w.crcs.blocks, blockCRC(w.block))
	w.index = append(w.index, indexEntry{
		lastKey: append([]byte(nil), w.lastKey...),
		handle:  blockHandle{offset: w.blockOff, length: uint64(n)},
	})
	w.blockOff += uint64(n)
	w.block = w.block[:0]
	return nil
}

// Finish flushes the remaining block, writes the filter, index and footer,
// syncs, and closes the file. The writer cannot be reused.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("sstable: writer for %s already finished", w.name)
	}
	w.finished = true
	if err := w.cutBlock(); err != nil {
		return err
	}

	var ftr footer
	ftr.entryCount = w.count
	ftr.tombstoneCount = w.tombstones

	filter := bloom.New(w.userKeys, bloom.BitsPerKey).Marshal()
	ftr.filterOff = w.blockOff
	ftr.filterLen = uint64(len(filter))
	if _, err := w.f.Write(filter); err != nil {
		return fmt.Errorf("sstable: write filter: %w", err)
	}
	w.blockOff += uint64(len(filter))

	idx := marshalIndex(w.smallest, w.index)
	ftr.indexOff = w.blockOff
	ftr.indexLen = uint64(len(idx))
	if _, err := w.f.Write(idx); err != nil {
		return fmt.Errorf("sstable: write index: %w", err)
	}
	w.blockOff += uint64(len(idx))

	ftrBytes := ftr.marshalV1()
	if !w.legacy {
		w.crcs.filter = blockCRC(filter)
		w.crcs.index = blockCRC(idx)
		sums := w.crcs.marshal()
		ftr.checksumOff = w.blockOff
		ftr.checksumLen = uint64(len(sums))
		if _, err := w.f.Write(sums); err != nil {
			return fmt.Errorf("sstable: write checksums: %w", err)
		}
		w.blockOff += uint64(len(sums))
		ftrBytes = ftr.marshal()
	}
	if _, err := w.f.Write(ftrBytes); err != nil {
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sstable: sync: %w", err)
	}
	return w.f.Close()
}

// Abandon closes the underlying file without finishing the table. The caller
// is responsible for removing the partial file.
func (w *Writer) Abandon() error {
	w.finished = true
	return w.f.Close()
}

// Count returns the number of entries added so far.
func (w *Writer) Count() uint64 { return w.count }
