package sstable

import (
	"fmt"
	"math/rand"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// Benchmarks for the learned block index (DESIGN.md §12): the same table is
// probed with the model enabled and disabled, so the delta is exactly the
// seekBlock strategy — predict + ±ε window search vs full binary search over
// the block index. A large block cache keeps every data block hot; on-disk
// I/O would dwarf and mask the index-search cost this measures.

// benchReader builds a model-backed table over cells and opens it cache-hot.
func benchReader(b *testing.B, cells []kv.Cell) *Reader {
	b.Helper()
	fs := vfs.NewMemFS()
	buildTableWith(b, fs, "bench.sst", cells, WriterOptions{LearnedIndex: true})
	r, err := Open(fs, "bench.sst", NewBlockCache(1<<30))
	if err != nil {
		b.Fatal(err)
	}
	if !r.HasModel() {
		b.Fatal("no model trained")
	}
	// Touch every block once so the timed loop never faults the cache.
	it := r.Iterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
	}
	return r
}

func benchGet(b *testing.B, cells []kv.Cell, useModel bool) {
	r := benchReader(b, cells)
	defer r.Close()
	rng := rand.New(rand.NewSource(1))
	probes := make([][]byte, 4096)
	for i := range probes {
		probes[i] = cells[rng.Intn(len(cells))].Key
	}
	r.SetUseModel(useModel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := r.Get(probes[i%len(probes)], kv.MaxTimestamp)
		if err != nil || !ok {
			b.Fatalf("Get(%q) = ok=%v err=%v", probes[i%len(probes)], ok, err)
		}
	}
	b.StopTimer()
	if useModel {
		hits, falls := r.ModelStats()
		b.ReportMetric(float64(hits)/float64(hits+falls), "model-hit-rate")
	}
}

// BenchmarkLearnedGet is the acceptance benchmark: model vs binary point
// lookups across key distributions and table sizes (~64 and ~1024 blocks;
// roughly 115 entries per 4 KiB block at this row shape).
func BenchmarkLearnedGet(b *testing.B) {
	for _, size := range []struct {
		name string
		rows int
	}{
		{"64blocks", 7400},
		{"1024blocks", 118000},
	} {
		for _, dist := range []string{"sequential", "zipfian", "composite"} {
			cells := distCells(dist, size.rows)
			for _, mode := range []struct {
				name  string
				model bool
			}{
				{"model", true},
				{"binary", false},
			} {
				b.Run(fmt.Sprintf("%s/%s/%s", dist, size.name, mode.name), func(b *testing.B) {
					benchGet(b, cells, mode.model)
				})
			}
		}
	}
}

// BenchmarkLearnedSeekBlock isolates the index-search step itself (no block
// fetch, no in-block scan): the purest view of what the model buys.
func BenchmarkLearnedSeekBlock(b *testing.B) {
	cells := distCells("sequential", 118000)
	r := benchReader(b, cells)
	defer r.Close()
	rng := rand.New(rand.NewSource(1))
	probes := make([][]byte, 4096)
	for i := range probes {
		probes[i] = kv.SeekKey(cells[rng.Intn(len(cells))].Key, kv.MaxTimestamp)
	}
	for _, mode := range []struct {
		name  string
		model bool
	}{
		{"model", true},
		{"binary", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			r.SetUseModel(mode.model)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.seekBlock(probes[i%len(probes)])
			}
		})
	}
}
