package sstable

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchmarkCacheParallel drives a mixed Get/Put workload (≈94% gets) from
// b.RunParallel goroutines against a cache with the given shard count.
// shards=1 reproduces the historical single-mutex BlockCache; comparing it
// with the default shard count at -cpu 8 (or higher) shows the contention
// the sharding removes:
//
//	go test ./internal/sstable -bench BlockCacheParallel -cpu 1,8
func benchmarkCacheParallel(b *testing.B, shards int) {
	const (
		capacity  = 32 << 20
		blockSize = 4 << 10
		blocks    = 4096 // half-resident working set: evictions stay active
		tables    = 8
	)
	c := NewBlockCacheShards(capacity, shards)
	block := make([]byte, blockSize)
	for i := 0; i < blocks; i++ {
		c.Put(fmt.Sprintf("t%d", i%tables), uint64(i), block)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			i := rng.Intn(blocks)
			table := fmt.Sprintf("t%d", i%tables)
			if i%16 == 0 {
				c.Put(table, uint64(i), block)
			} else {
				c.Get(table, uint64(i))
			}
		}
	})
}

func BenchmarkBlockCacheParallel(b *testing.B) {
	for _, shards := range []int{1, defaultCacheShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkCacheParallel(b, shards)
		})
	}
}
