package sstable

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"

	"diffindex/internal/bloom"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
	"diffindex/internal/vfs"
)

// Reader serves point lookups and scans from one immutable table file. The
// block index and Bloom filter are held in memory (as HBase keeps HFile
// indexes and Blooms in the region server heap); data blocks are read
// through the VFS on demand and optionally cached in a shared BlockCache.
type Reader struct {
	f     vfs.File
	name  string
	cache *BlockCache

	index  []indexEntry
	filter *bloom.Filter

	smallest   []byte // smallest user key, from the index block
	largest    []byte // largest user key, from the index block
	count      uint64
	tombstones uint64
	size       int64

	crcs         checksumSet
	version      int // footer format version (1, 2 or 3)
	hasChecksums bool
	verify       bool // verify block CRCs on every read (set before use)

	// Learned block index (v3, optional): model predicts a block ordinal,
	// seekBlock verifies a ±ε window against the exact index and falls back
	// to the full binary search on a miss. useModel gates the path for
	// divergence tests and benchmarks; set before concurrent use.
	model      *blockModel
	modelLen   int
	useModel   bool
	modelHits  atomic.Uint64
	modelMiss  atomic.Uint64
	modelWidth atomic.Uint64 // sum of verification-window widths, in blocks

	// Registry counters mirroring the atomics (nil unless wired by the
	// owning store via SetModelMetrics).
	hitsC, missC, widthC *metrics.Counter
}

// Open opens a finished table file. cache may be nil to disable block
// caching.
func Open(fs vfs.FS, name string, cache *BlockCache) (*Reader, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, fmt.Errorf("sstable: open %s: %w", name, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size < footerLenV1 {
		f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrBadTable, name, size)
	}
	tail := int64(footerLenV3)
	if size < tail {
		tail = size
	}
	buf := make([]byte, tail)
	if _, err := f.ReadAt(buf, size-tail); err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable: read footer of %s: %w", name, err)
	}
	ftr, version, err := unmarshalFooter(buf)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	hasChecksums := version >= 2

	// A corrupted footer must fail structurally, not panic allocating a
	// garbage-length section buffer.
	sane := func(off, n uint64) bool { return off <= uint64(size) && n <= uint64(size)-off }
	if !sane(ftr.filterOff, ftr.filterLen) || !sane(ftr.indexOff, ftr.indexLen) ||
		!sane(ftr.checksumOff, ftr.checksumLen) || !sane(ftr.modelOff, ftr.modelLen) {
		f.Close()
		return nil, fmt.Errorf("%w: %s footer section out of range", ErrBadTable, name)
	}

	idxBuf := make([]byte, ftr.indexLen)
	if _, err := f.ReadAt(idxBuf, int64(ftr.indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("sstable: read index of %s: %w", name, err)
	}
	smallest, index, err := unmarshalIndex(idxBuf, version)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	var filter *bloom.Filter
	var fltBuf []byte
	if ftr.filterLen > 0 {
		fltBuf = make([]byte, ftr.filterLen)
		if _, err := f.ReadAt(fltBuf, int64(ftr.filterOff)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sstable: read filter of %s: %w", name, err)
		}
		if filter, err = bloom.Unmarshal(fltBuf); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}

	var crcs checksumSet
	if hasChecksums {
		sumBuf := make([]byte, ftr.checksumLen)
		if _, err := f.ReadAt(sumBuf, int64(ftr.checksumOff)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sstable: read checksums of %s: %w", name, err)
		}
		if crcs, err = unmarshalChecksums(sumBuf); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if len(crcs.blocks) != len(index) {
			f.Close()
			return nil, fmt.Errorf("%w: %s has %d block checksums for %d blocks",
				ErrBadTable, name, len(crcs.blocks), len(index))
		}
		// The filter and index bytes are already in hand — verify them now so
		// a table with corrupted metadata never serves a read.
		if blockCRC(fltBuf) != crcs.filter {
			f.Close()
			return nil, fmt.Errorf("%w: %s filter block", ErrCorruption, name)
		}
		if blockCRC(idxBuf) != crcs.index {
			f.Close()
			return nil, fmt.Errorf("%w: %s index block", ErrCorruption, name)
		}
	}

	var model *blockModel
	modelLen := 0
	if version >= 3 && ftr.modelLen > 0 {
		mBuf := make([]byte, ftr.modelLen)
		if _, err := f.ReadAt(mBuf, int64(ftr.modelOff)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sstable: read model of %s: %w", name, err)
		}
		if model, err = unmarshalModel(mBuf); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		modelLen = len(mBuf)
	}

	r := &Reader{
		f:            f,
		name:         name,
		cache:        cache,
		index:        index,
		filter:       filter,
		smallest:     smallest,
		count:        ftr.entryCount,
		tombstones:   ftr.tombstoneCount,
		size:         size,
		crcs:         crcs,
		version:      version,
		hasChecksums: hasChecksums,
		model:        model,
		modelLen:     modelLen,
		useModel:     model != nil,
	}
	if len(index) > 0 {
		// Recover user-key bounds without a data-block read: the smallest
		// key is persisted at the head of the index block, the largest is
		// the final block's last key.
		r.largest = append([]byte(nil), kv.InternalUserKey(index[len(index)-1].lastKey)...)
	}
	return r, nil
}

// Name returns the file name the reader was opened from.
func (r *Reader) Name() string { return r.name }

// EntryCount returns the number of entries in the table.
func (r *Reader) EntryCount() uint64 { return r.count }

// TombstoneCount returns the number of delete markers in the table,
// recorded in the footer at write time — per-table garbage pressure
// readable without touching data blocks.
func (r *Reader) TombstoneCount() uint64 { return r.tombstones }

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// SmallestUserKey returns the smallest user key in the table (nil for an
// empty table).
func (r *Reader) SmallestUserKey() []byte { return r.smallest }

// LargestUserKey returns the largest user key in the table (nil for an empty
// table).
func (r *Reader) LargestUserKey() []byte { return r.largest }

// MayContainKey reports whether userKey falls inside the table's
// [smallest, largest] user-key range — a zero-I/O pre-check point reads use
// to skip tables that cannot hold the key. Conservative: an empty range
// (no persisted bounds) returns true.
func (r *Reader) MayContainKey(userKey []byte) bool {
	if r.smallest == nil || r.largest == nil {
		return len(r.index) > 0
	}
	return bytes.Compare(userKey, r.smallest) >= 0 && bytes.Compare(userKey, r.largest) <= 0
}

// Close releases the underlying file handle.
func (r *Reader) Close() error { return r.f.Close() }

// HasChecksums reports whether the table carries per-block CRCs (format v2+).
func (r *Reader) HasChecksums() bool { return r.hasChecksums }

// FormatVersion returns the table's footer format version (1, 2 or 3).
func (r *Reader) FormatVersion() int { return r.version }

// NumBlocks returns the number of data blocks in the table.
func (r *Reader) NumBlocks() int { return len(r.index) }

// HasModel reports whether the table carries a learned block model.
func (r *Reader) HasModel() bool { return r.model != nil }

// SetUseModel enables or disables the learned seek path (no-op on tables
// without a model). Must be called before the reader serves concurrent
// reads; divergence tests and benchmarks use it to compare the model and
// binary-search paths on one table.
func (r *Reader) SetUseModel(on bool) { r.useModel = on && r.model != nil }

// SetModelMetrics wires the reader's model counters into a registry: hits
// (window-verified predictions), fallbacks (full binary searches after a
// window miss) and windowBlocks (the summed width of verified windows; the
// mean window is windowBlocks/hits). Any counter may be nil. Must be called
// before the reader serves concurrent reads.
func (r *Reader) SetModelMetrics(hits, fallbacks, windowBlocks *metrics.Counter) {
	r.hitsC, r.missC, r.widthC = hits, fallbacks, windowBlocks
}

// ModelStats returns the reader's cumulative model counters: window-verified
// predictions and fallbacks to the full binary search.
func (r *Reader) ModelStats() (hits, fallbacks uint64) {
	return r.modelHits.Load(), r.modelMiss.Load()
}

// TableInfo summarizes a table's format and lookup-accelerator footprint —
// the per-table view `lsmtool stats` prints for operators.
type TableInfo struct {
	FormatVersion int
	Blocks        int
	Entries       uint64
	Restarts      int // total in-block restart points across all blocks
	ModelSegments int
	ModelEpsilon  int // 0 when the table has no model
	ModelBytes    int
}

// Info returns the table's format/model summary.
func (r *Reader) Info() TableInfo {
	info := TableInfo{
		FormatVersion: r.version,
		Blocks:        len(r.index),
		Entries:       r.count,
		ModelBytes:    r.modelLen,
	}
	for i := range r.index {
		info.Restarts += len(r.index[i].restarts)
	}
	if r.model != nil {
		info.ModelSegments = len(r.model.segments)
		info.ModelEpsilon = r.model.epsilon
	}
	return info
}

// SetVerifyChecksums enables CRC verification on every data-block read (a
// cache hit is not re-verified: it was checked when first read). Must be
// called before the reader serves concurrent reads; a v1 table without
// checksums ignores the knob.
func (r *Reader) SetVerifyChecksums(on bool) { r.verify = on }

// VerifyBlock re-reads the i-th data block directly from the file — bypassing
// the block cache in both directions, so a scrub neither hides at-rest
// corruption behind a cached copy nor evicts hot blocks — and checks it
// against the recorded CRC. It returns the number of bytes read.
// ErrCorruption reports a mismatch; a v1 table verifies vacuously.
func (r *Reader) VerifyBlock(i int) (int, error) {
	h := r.index[i].handle
	buf := make([]byte, h.length)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return 0, fmt.Errorf("sstable: read block %d of %s: %w", i, r.name, err)
	}
	if r.hasChecksums && blockCRC(buf) != r.crcs.blocks[i] {
		return len(buf), fmt.Errorf("%w: %s block %d", ErrCorruption, r.name, i)
	}
	return len(buf), nil
}

// block fetches the idx-th data block, via the cache when possible.
func (r *Reader) block(i int) ([]byte, error) {
	h := r.index[i].handle
	if b := r.cache.Get(r.name, h.offset); b != nil {
		return b, nil
	}
	buf := make([]byte, h.length)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable: read block %d of %s: %w", i, r.name, err)
	}
	if r.verify && r.hasChecksums && blockCRC(buf) != r.crcs.blocks[i] {
		return nil, fmt.Errorf("%w: %s block %d", ErrCorruption, r.name, i)
	}
	r.cache.Put(r.name, h.offset, buf)
	return buf, nil
}

// seekBlockBinary is the exact path: a binary search over the whole block
// index for the first block whose last key is ≥ ikey, or len(index) when
// ikey is past the table's end.
func (r *Reader) seekBlockBinary(ikey []byte) int {
	return sort.Search(len(r.index), func(i int) bool {
		return kv.CompareInternal(r.index[i].lastKey, ikey) >= 0
	})
}

// seekBlock returns the position of the first block whose last key is ≥ ikey
// (i.e. the only block that can contain ikey), or len(index) when ikey is
// past the table's end. When the table carries a learned model, the model
// predicts a block and only a ±ε window of the index is searched; the window
// search plus at most one boundary probe prove the result is the global one,
// and any violation (out-of-range key, prefix collision wider than ε) falls
// back to the full binary search — so the result is always identical to
// seekBlockBinary.
func (r *Reader) seekBlock(ikey []byte) int {
	m := r.model
	if m == nil || !r.useModel {
		return r.seekBlockBinary(ikey)
	}
	n := len(r.index)
	pred := m.predict(kv.InternalUserKey(ikey), n)
	lo := pred - m.epsilon
	if lo < 0 {
		lo = 0
	}
	hi := pred + m.epsilon
	if hi >= n {
		hi = n - 1
	}
	// Search the window first; the search result itself carries most of the
	// correctness proof. j is the first block in [lo, hi] with lastKey ≥
	// ikey (or hi+1 when none is).
	j := lo + sort.Search(hi-lo+1, func(i int) bool {
		return kv.CompareInternal(r.index[lo+i].lastKey, ikey) >= 0
	})
	if j > hi {
		if hi == n-1 {
			// Every block in the window — hence, by sortedness, in the
			// table — ends below ikey: past-the-end, no probe needed.
			r.noteModel(&r.modelHits, r.hitsC, 1)
			r.noteModel(&r.modelWidth, r.widthC, uint64(hi-lo+1))
			return n
		}
		// ikey lies beyond the window: the model missed.
		r.noteModel(&r.modelMiss, r.missC, 1)
		return r.seekBlockBinary(ikey)
	}
	if j == lo && lo > 0 && kv.CompareInternal(r.index[lo-1].lastKey, ikey) >= 0 {
		// Landed on the window's left edge with blocks before it that also
		// reach ikey: the true block is left of the window.
		r.noteModel(&r.modelMiss, r.missC, 1)
		return r.seekBlockBinary(ikey)
	}
	// j > lo proves index[j-1].lastKey < ikey directly; j == lo was probed
	// (or touches the table start). Either way j is the global answer.
	r.noteModel(&r.modelHits, r.hitsC, 1)
	r.noteModel(&r.modelWidth, r.widthC, uint64(hi-lo+1))
	return j
}

func (r *Reader) noteModel(local *atomic.Uint64, c *metrics.Counter, d uint64) {
	local.Add(d)
	if c != nil {
		c.Add(int64(d))
	}
}

// searchBlock returns the offset of the first entry in blk with internal
// key ≥ seek, or len(blk) when every entry is below seek. With restart
// points (v3) it binary-searches the restarts and scans a ≤K-entry tail;
// without them it scans from the block start. Either way the scan exits at
// the first entry ≥ seek — it never walks entries past the target. A
// malformed entry is reported as a negative offset.
func searchBlock(blk []byte, restarts []uint32, seek []byte) int {
	off := 0
	if len(restarts) > 0 {
		// First restart with key ≥ seek; the scan starts one restart
		// earlier (the target may precede that restart's entry).
		j := sort.Search(len(restarts), func(j int) bool {
			ikey, _, n := blockEntry(blk[restarts[j]:])
			if n == 0 {
				return true // malformed tail: stay left, the scan reports it
			}
			return kv.CompareInternal(ikey, seek) >= 0
		})
		if j > 0 {
			off = int(restarts[j-1])
		}
	}
	for off < len(blk) {
		ikey, _, n := blockEntry(blk[off:])
		if n == 0 {
			return -1
		}
		if kv.CompareInternal(ikey, seek) >= 0 {
			return off
		}
		off += n
	}
	return len(blk)
}

// Get returns the newest version of userKey with timestamp ≤ ts stored in
// this table. The returned cell may be a tombstone. The bool reports whether
// any visible version exists here.
func (r *Reader) Get(userKey []byte, ts kv.Timestamp) (kv.Cell, bool, error) {
	if !r.filter.MayContain(userKey) {
		return kv.Cell{}, false, nil
	}
	// Seek key built in a stack buffer: for ordinary key lengths the hottest
	// read path does zero allocations.
	var seekArr [128]byte
	seek := kv.AppendInternalKey(seekArr[:0], userKey, ts, kv.KindDelete)
	bi := r.seekBlock(seek)
	if bi >= len(r.index) {
		return kv.Cell{}, false, nil
	}
	// Per-block lower bound (v3): every block before bi ends below seek, so
	// if block bi already starts past userKey the key lives in the gap
	// between blocks — reject without any block I/O (the per-block analogue
	// of the table-level MayContainKey skip).
	if fk := r.index[bi].firstKey; fk != nil &&
		bytes.Compare(kv.InternalUserKey(fk), userKey) > 0 {
		return kv.Cell{}, false, nil
	}
	blk, err := r.block(bi)
	if err != nil {
		return kv.Cell{}, false, err
	}
	off := searchBlock(blk, r.index[bi].restarts, seek)
	if off < 0 {
		return kv.Cell{}, false, fmt.Errorf("%w: %s block %d", ErrBadTable, r.name, bi)
	}
	if off >= len(blk) {
		// seek falls past this block's last entry only if the index is
		// inconsistent; treat as not found.
		return kv.Cell{}, false, nil
	}
	ikey, val, n := blockEntry(blk[off:])
	if n == 0 {
		return kv.Cell{}, false, fmt.Errorf("%w: %s block %d", ErrBadTable, r.name, bi)
	}
	uk, vts, kind, err := kv.ParseInternalKey(ikey)
	if err != nil {
		return kv.Cell{}, false, err
	}
	if string(uk) != string(userKey) {
		// First entry ≥ seek belongs to a later user key: no visible
		// version here. The scan never parses entries past this point.
		return kv.Cell{}, false, nil
	}
	return kv.Cell{Key: uk, Value: val, Ts: vts, Kind: kind}, true, nil
}

// Iterator returns a cursor over the whole table in internal-key order.
func (r *Reader) Iterator() *Iterator {
	return &Iterator{r: r, blockIdx: -1}
}

// Iterator walks a table's entries in internal-key order. Errors encountered
// while reading blocks are surfaced via Err and end the iteration.
type Iterator struct {
	r        *Reader
	blockIdx int
	blk      []byte
	off      int

	ikey, value []byte
	valid       bool
	err         error
}

// SeekToFirst positions at the table's first entry.
func (it *Iterator) SeekToFirst() {
	it.blockIdx = -1
	it.nextBlock()
}

// Seek positions at the first entry with internal key ≥ ikey.
func (it *Iterator) Seek(seek []byte) {
	it.valid = false
	it.err = nil
	bi := it.r.seekBlock(seek)
	if bi >= len(it.r.index) {
		return
	}
	it.blockIdx = bi
	if !it.loadBlock() {
		return
	}
	// Restart-guided entry search within the block (v3); a v1/v2 block
	// scans from its start. A seek past the block's last entry (possible
	// only on the seekBlock result block when the index is inconsistent)
	// continues into the following block.
	e := &it.r.index[bi]
	if e.firstKey == nil || kv.CompareInternal(seek, e.firstKey) > 0 {
		off := searchBlock(it.blk, e.restarts, seek)
		if off < 0 {
			it.fail(fmt.Errorf("%w: %s block %d", ErrBadTable, it.r.name, it.blockIdx))
			return
		}
		it.off = off
	}
	it.stepEntry()
}

func (it *Iterator) fail(err error) {
	it.err = err
	it.valid = false
}

func (it *Iterator) loadBlock() bool {
	blk, err := it.r.block(it.blockIdx)
	if err != nil {
		it.fail(err)
		return false
	}
	it.blk, it.off = blk, 0
	return true
}

func (it *Iterator) advanceBlock() bool {
	it.blockIdx++
	if it.blockIdx >= len(it.r.index) {
		it.valid = false
		return false
	}
	return it.loadBlock()
}

func (it *Iterator) nextBlock() {
	if !it.advanceBlock() {
		return
	}
	it.stepEntry()
}

func (it *Iterator) stepEntry() {
	for {
		if it.off < len(it.blk) {
			ikey, val, n := blockEntry(it.blk[it.off:])
			if n == 0 {
				it.fail(fmt.Errorf("%w: %s block %d", ErrBadTable, it.r.name, it.blockIdx))
				return
			}
			it.off += n
			it.ikey, it.value, it.valid = ikey, val, true
			return
		}
		if !it.advanceBlock() {
			return
		}
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Next advances to the following entry.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	it.stepEntry()
}

// InternalKey returns the current internal key. Valid until the next call
// that advances the iterator past a block boundary.
func (it *Iterator) InternalKey() []byte { return it.ikey }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.value }

// Cell decodes the current entry.
func (it *Iterator) Cell() kv.Cell {
	uk, ts, kind, _ := kv.ParseInternalKey(it.ikey)
	return kv.Cell{Key: uk, Value: it.value, Ts: ts, Kind: kind}
}

// Err returns the first error encountered during iteration, if any.
func (it *Iterator) Err() error { return it.err }
