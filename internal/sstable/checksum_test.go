package sstable

import (
	"errors"
	"fmt"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// flipByte XORs one byte of the named file in place (read-modify-rewrite,
// since the VFS has no WriteAt) — the test's stand-in for at-rest bit rot.
func flipByte(t *testing.T, fs vfs.FS, name string, off int64) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	buf[off] ^= 0xff
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func checksumCells(n int) []kv.Cell {
	cells := make([]kv.Cell, n)
	for i := range cells {
		cells[i] = kv.Cell{
			Key:   []byte(fmt.Sprintf("user%06d", i)),
			Value: []byte(fmt.Sprintf("value-%d-padpadpadpadpadpad", i)),
			Ts:    1,
			Kind:  kv.KindPut,
		}
	}
	return cells
}

func TestChecksumRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, "t.sst", checksumCells(1000))
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.HasChecksums() {
		t.Fatal("v2 table must carry checksums")
	}
	if r.NumBlocks() < 2 {
		t.Fatalf("want multi-block table, got %d blocks", r.NumBlocks())
	}
	var bytesRead int
	for i := 0; i < r.NumBlocks(); i++ {
		n, err := r.VerifyBlock(i)
		if err != nil {
			t.Fatalf("VerifyBlock(%d): %v", i, err)
		}
		bytesRead += n
	}
	if bytesRead == 0 {
		t.Fatal("VerifyBlock read no bytes")
	}
	r.SetVerifyChecksums(true)
	if _, ok, err := r.Get([]byte("user000500"), kv.MaxTimestamp); err != nil || !ok {
		t.Fatalf("verified Get: ok=%v err=%v", ok, err)
	}
}

func TestChecksumDetectsDataCorruption(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, "t.sst", checksumCells(1000))
	// Flip a byte inside the first data block (data blocks start at offset 0).
	flipByte(t, fs, "t.sst", 100)

	// Open succeeds — metadata is intact — but the scrub sweep finds it.
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.VerifyBlock(0); !errors.Is(err, ErrCorruption) {
		t.Fatalf("VerifyBlock(0) = %v, want ErrCorruption", err)
	}
	if _, err := r.VerifyBlock(1); err != nil {
		t.Fatalf("VerifyBlock(1) on clean block: %v", err)
	}

	// Verify-on-read surfaces it at Get time; with the knob off the
	// corruption passes through silently (the pre-checksum behaviour).
	r.SetVerifyChecksums(true)
	if _, _, err := r.Get([]byte("user000000"), kv.MaxTimestamp); !errors.Is(err, ErrCorruption) {
		t.Fatalf("verified Get = %v, want ErrCorruption", err)
	}
	r.SetVerifyChecksums(false)
	if _, _, err := r.Get([]byte("user000000"), kv.MaxTimestamp); errors.Is(err, ErrCorruption) {
		t.Fatal("unverified Get must not checksum-fail")
	}
}

func TestChecksumVerifiedIteratorFails(t *testing.T) {
	fs := vfs.NewMemFS()
	buildTable(t, fs, "t.sst", checksumCells(1000))
	flipByte(t, fs, "t.sst", 10)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetVerifyChecksums(true)
	it := r.Iterator()
	it.SeekToFirst()
	for it.Valid() {
		it.Next()
	}
	if !errors.Is(it.Err(), ErrCorruption) {
		t.Fatalf("iterator over corrupt block: err=%v, want ErrCorruption", it.Err())
	}
}

func TestChecksumMetadataCorruptionRejectedAtOpen(t *testing.T) {
	// Corrupting the index block or the checksum section itself must fail at
	// Open — a reader never serves from unverifiable metadata.
	for _, tc := range []struct {
		name    string
		fromEnd int64 // byte offset measured back from end of file
	}{
		{"checksum-section", footerLenV3 + 2},
		{"index-block", footerLenV3 + 64},
		{"footer", 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := vfs.NewMemFS()
			buildTable(t, fs, "t.sst", checksumCells(200))
			f, _ := fs.Open("t.sst")
			size, _ := f.Size()
			f.Close()
			flipByte(t, fs, "t.sst", size-tc.fromEnd)
			if _, err := Open(fs, "t.sst", nil); err == nil {
				t.Fatal("Open on corrupted metadata succeeded")
			}
		})
	}
}

func TestLegacyV1TableStillReadable(t *testing.T) {
	fs := vfs.NewMemFS()
	w, err := NewWriterWith(fs, "v1.sst", WriterOptions{FormatVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ik := kv.InternalKey([]byte(fmt.Sprintf("user%06d", i)), 1, kv.KindPut)
		if err := w.Add(ik, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(fs, "v1.sst", nil)
	if err != nil {
		t.Fatalf("open v1 table: %v", err)
	}
	defer r.Close()
	if r.HasChecksums() {
		t.Fatal("v1 table must report no checksums")
	}
	if r.EntryCount() != 500 {
		t.Fatalf("EntryCount = %d, want 500", r.EntryCount())
	}
	if _, ok, err := r.Get([]byte("user000123"), kv.MaxTimestamp); err != nil || !ok {
		t.Fatalf("v1 Get: ok=%v err=%v", ok, err)
	}
	// Verification is vacuous without recorded CRCs: no false positives.
	r.SetVerifyChecksums(true)
	for i := 0; i < r.NumBlocks(); i++ {
		if _, err := r.VerifyBlock(i); err != nil {
			t.Fatalf("VerifyBlock(%d) on v1 table: %v", i, err)
		}
	}
	if _, ok, err := r.Get([]byte("user000321"), kv.MaxTimestamp); err != nil || !ok {
		t.Fatalf("verified v1 Get: ok=%v err=%v", ok, err)
	}
}
