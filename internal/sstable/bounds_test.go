package sstable

import (
	"fmt"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// TestUserKeyBoundsPersisted checks both user-key bounds survive a
// write/open round trip — the smallest comes from the index-block prefix,
// not a data-block read.
func TestUserKeyBoundsPersisted(t *testing.T) {
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	for i := 100; i < 200; i++ {
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("user%04d", i)),
			Value: []byte("v"),
			Ts:    1,
			Kind:  kv.KindPut,
		})
	}
	buildTable(t, fs, "b.sst", cells)
	r, err := Open(fs, "b.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := string(r.SmallestUserKey()); got != "user0100" {
		t.Errorf("SmallestUserKey = %q, want %q", got, "user0100")
	}
	if got := string(r.LargestUserKey()); got != "user0199" {
		t.Errorf("LargestUserKey = %q, want %q", got, "user0199")
	}
}

func TestMayContainKey(t *testing.T) {
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	for i := 100; i < 200; i += 10 {
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("user%04d", i)),
			Value: []byte("v"),
			Ts:    1,
			Kind:  kv.KindPut,
		})
	}
	buildTable(t, fs, "m.sst", cells)
	r, err := Open(fs, "m.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, tc := range []struct {
		key  string
		want bool
	}{
		{"user0099", false}, // below smallest
		{"user0100", true},  // exactly smallest
		{"user0105", true},  // inside (even though absent — range check only)
		{"user0190", true},  // exactly largest
		{"user0191", false}, // above largest
		{"zzz", false},
		{"", false},
	} {
		if got := r.MayContainKey([]byte(tc.key)); got != tc.want {
			t.Errorf("MayContainKey(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
}
