package sstable

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// TestBlockCacheSharding checks shard-count selection: full-size caches get
// defaultCacheShards, tiny caches collapse to one shard so their per-shard
// budget stays useful, and explicit shard counts round down to powers of two.
func TestBlockCacheSharding(t *testing.T) {
	if got := NewBlockCache(32 << 20).ShardCount(); got != defaultCacheShards {
		t.Errorf("32 MiB cache: ShardCount = %d, want %d", got, defaultCacheShards)
	}
	if got := NewBlockCache(100).ShardCount(); got != 1 {
		t.Errorf("100 B cache: ShardCount = %d, want 1", got)
	}
	if got := NewBlockCacheShards(1<<20, 5).ShardCount(); got != 4 {
		t.Errorf("shards=5 rounds to %d, want 4", got)
	}
	if got := NewBlockCacheShards(1<<20, 0).ShardCount(); got != 1 {
		t.Errorf("shards=0 rounds to %d, want 1", got)
	}
}

// TestBlockCacheShardBudgets checks the eviction invariants of a sharded
// cache: each shard respects its own byte budget, the budgets sum to the
// configured capacity, and the aggregate Used never exceeds capacity — even
// after inserting far more data than fits.
func TestBlockCacheShardBudgets(t *testing.T) {
	const capacity = 64 << 10
	c := NewBlockCacheShards(capacity, 4)
	if c.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", c.ShardCount())
	}
	var budgets int64
	for _, s := range c.shards {
		budgets += s.capacity
	}
	if budgets != capacity {
		t.Fatalf("shard budgets sum to %d, want %d", budgets, capacity)
	}

	// Insert 4x the capacity in 1 KiB blocks across many tables.
	block := make([]byte, 1<<10)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("t%02d", i%8), uint64(i), block)
	}
	if used := c.Used(); used > capacity {
		t.Errorf("aggregate Used = %d exceeds capacity %d", used, capacity)
	}
	for i, s := range c.shards {
		s.mu.Lock()
		used, budget := s.used, s.capacity
		var sum int64
		for el := s.ll.Front(); el != nil; el = el.Next() {
			sum += int64(len(el.Value.(*cacheEntry).block))
		}
		n := len(s.items)
		ln := s.ll.Len()
		s.mu.Unlock()
		if used > budget {
			t.Errorf("shard %d: used %d exceeds budget %d", i, used, budget)
		}
		if sum != used {
			t.Errorf("shard %d: accounted bytes %d != resident bytes %d", i, used, sum)
		}
		if n != ln {
			t.Errorf("shard %d: map size %d != list size %d", i, n, ln)
		}
	}
}

// TestBlockCacheConcurrentStress hammers Get/Put/DropTable/Stats/Used from
// parallel goroutines across shards. It is meaningful mainly under -race
// (ci.sh runs internal/... with -race); the final invariant check guards
// against lost accounting too.
func TestBlockCacheConcurrentStress(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		tables  = 4
	)
	c := NewBlockCacheShards(256<<10, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			block := make([]byte, 512+w)
			for i := 0; i < ops; i++ {
				table := fmt.Sprintf("t%d", (w+i)%tables)
				off := uint64(i % 97)
				switch i % 7 {
				case 0:
					c.Put(table, off, block)
				case 3:
					c.DropTable(table)
				case 5:
					c.Stats()
					c.Used()
				default:
					c.Get(table, off)
				}
			}
		}(w)
	}
	wg.Wait()
	if used := c.Used(); used < 0 || used > 256<<10 {
		t.Errorf("Used = %d out of [0, capacity]", used)
	}
	hits, misses := c.Stats()
	if hits+misses <= 0 {
		t.Errorf("stats lost: hits=%d misses=%d", hits, misses)
	}
}

// TestBlockCacheGetAliasing pins the read-only contract of Get: the returned
// slice aliases the cached block, so reads through sstable.Reader must leave
// cached bytes bit-identical. The test snapshots a cached block, drives many
// reader operations that hit that block, and asserts the cache's copy never
// changed.
func TestBlockCacheGetAliasing(t *testing.T) {
	fs := vfs.NewLatencyFS(vfs.NewMemFS(), vfs.LatencyProfile{})
	var cells []kv.Cell
	for i := 0; i < 200; i++ {
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("k%04d", i)),
			Value: bytes.Repeat([]byte{byte(i)}, 32),
			Ts:    1,
		})
	}
	buildTable(t, fs, "alias.sst", cells)

	cache := NewBlockCache(1 << 20)
	r, err := Open(fs, "alias.sst", cache)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Warm the cache, then snapshot every cached block.
	for i := 0; i < 200; i += 10 {
		if _, ok, _ := r.Get([]byte(fmt.Sprintf("k%04d", i)), kv.MaxTimestamp); !ok {
			t.Fatalf("k%04d missing", i)
		}
	}
	type snap struct {
		key   cacheKey
		block []byte
	}
	var snaps []snap
	for _, s := range cache.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*cacheEntry)
			snaps = append(snaps, snap{ent.key, append([]byte(nil), ent.block...)})
		}
		s.mu.Unlock()
	}
	if len(snaps) == 0 {
		t.Fatal("no blocks cached")
	}

	// Exercise every reader path that touches cached blocks.
	for i := 0; i < 200; i++ {
		r.Get([]byte(fmt.Sprintf("k%04d", i)), kv.MaxTimestamp)
	}
	it := r.Iterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		_ = it.Cell()
	}
	it.Seek(kv.SeekKey([]byte("k0100"), kv.MaxTimestamp))

	for _, s := range snaps {
		got := cache.Get(s.key.table, s.key.offset)
		if got == nil {
			continue // evicted is fine; mutated is not
		}
		if !bytes.Equal(got, s.block) {
			t.Fatalf("cached block (%s, %d) mutated by a reader", s.key.table, s.key.offset)
		}
	}
}
