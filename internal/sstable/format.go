// Package sstable implements the immutable on-disk LSM component: the
// paper's disk stores C1, C2, … (§2.1), HBase's HTable/HFile (§2.2). A table
// is a sorted run of internal-key/value entries laid out in fixed-target-size
// data blocks, followed by a Bloom filter over user keys, a block index, and
// a fixed-size footer:
//
//	[data block]* [filter block] [index block] [footer]
//
// Point reads consult the Bloom filter, binary-search the in-memory block
// index, and read a single data block through the VFS — which is where the
// simulated disk latency is charged, making LSM reads pay random-I/O cost
// while writes remain sequential (§2.1's asymmetry).
//
// Format v2 appends a checksum section between the index block and the
// footer: one CRC32C (Castagnoli) per data block plus CRCs of the filter and
// index blocks, self-protected by a trailing section CRC. Readers verify
// blocks against it on read (behind a knob) and during scrubbing; v1 tables
// (56-byte footer, no checksums) remain readable.
//
// Format v3 (DESIGN.md §12) teaches the table two in-table lookup
// accelerators. The index block gains, per data block, the block's first
// internal key (zero-I/O gap rejection: a point get whose key falls between
// two blocks never reads either) and the offsets of every K-th entry
// (restart points: the in-block entry scan becomes a binary search over
// restarts plus a ≤K-entry tail). A model section between the checksum
// section and the (88-byte) footer optionally carries a bounded-error
// piecewise-linear model mapping key prefixes to block ordinals — see
// model.go. v1/v2 tables keep opening; every accelerator degrades to the
// v2 behaviour when its data is absent.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// TargetBlockSize is the uncompressed size at which a data block is cut.
// 4 KiB mirrors typical HFile/LevelDB block sizing.
const TargetBlockSize = 4 * 1024

const (
	footerLenV1 = 56
	footerLenV2 = 72
	footerLenV3 = 88
	magicV1     = 0xD1FF1DE0CAFEB10C
	magicV2     = 0xD1FF1DE0CAFEB10D
	magicV3     = 0xD1FF1DE0CAFEB10E

	// FormatLatest is the version NewWriter emits by default.
	FormatLatest = 3
)

var (
	// ErrBadTable is returned when a table file fails structural checks.
	ErrBadTable = errors.New("sstable: malformed table")
	// ErrCorruption is returned when a block's content does not match its
	// recorded CRC32C — a silent data corruption, distinct from a structural
	// decode failure (ErrBadTable) or an I/O error.
	ErrCorruption = errors.New("sstable: checksum mismatch")
)

// castagnoli is the CRC32C polynomial table shared by writer, reader and
// scrubber.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockCRC computes the CRC32C of one block's raw bytes.
func blockCRC(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

type footer struct {
	filterOff, filterLen uint64
	indexOff, indexLen   uint64
	entryCount           uint64
	// tombstoneCount records how many entries are delete markers, letting
	// the compaction layer see per-table garbage pressure without reading
	// data blocks.
	tombstoneCount uint64
	// checksumOff/checksumLen locate the checksum section (v2+; zero in
	// tables read from the v1 footer).
	checksumOff, checksumLen uint64
	// modelOff/modelLen locate the learned-model section (v3 only; a zero
	// length means the table was written with the model knob off).
	modelOff, modelLen uint64
}

// marshal emits the v3 (88-byte) footer.
func (f footer) marshal() []byte {
	out := make([]byte, footerLenV3)
	binary.LittleEndian.PutUint64(out[0:], f.filterOff)
	binary.LittleEndian.PutUint64(out[8:], f.filterLen)
	binary.LittleEndian.PutUint64(out[16:], f.indexOff)
	binary.LittleEndian.PutUint64(out[24:], f.indexLen)
	binary.LittleEndian.PutUint64(out[32:], f.entryCount)
	binary.LittleEndian.PutUint64(out[40:], f.tombstoneCount)
	binary.LittleEndian.PutUint64(out[48:], f.checksumOff)
	binary.LittleEndian.PutUint64(out[56:], f.checksumLen)
	binary.LittleEndian.PutUint64(out[64:], f.modelOff)
	binary.LittleEndian.PutUint64(out[72:], f.modelLen)
	binary.LittleEndian.PutUint64(out[80:], magicV3)
	return out
}

// marshalV2 emits the 72-byte v2 footer (no model section).
func (f footer) marshalV2() []byte {
	out := make([]byte, footerLenV2)
	binary.LittleEndian.PutUint64(out[0:], f.filterOff)
	binary.LittleEndian.PutUint64(out[8:], f.filterLen)
	binary.LittleEndian.PutUint64(out[16:], f.indexOff)
	binary.LittleEndian.PutUint64(out[24:], f.indexLen)
	binary.LittleEndian.PutUint64(out[32:], f.entryCount)
	binary.LittleEndian.PutUint64(out[40:], f.tombstoneCount)
	binary.LittleEndian.PutUint64(out[48:], f.checksumOff)
	binary.LittleEndian.PutUint64(out[56:], f.checksumLen)
	binary.LittleEndian.PutUint64(out[64:], magicV2)
	return out
}

// marshalV1 emits the legacy 56-byte footer (kept for backward-compat tests).
func (f footer) marshalV1() []byte {
	out := make([]byte, footerLenV1)
	binary.LittleEndian.PutUint64(out[0:], f.filterOff)
	binary.LittleEndian.PutUint64(out[8:], f.filterLen)
	binary.LittleEndian.PutUint64(out[16:], f.indexOff)
	binary.LittleEndian.PutUint64(out[24:], f.indexLen)
	binary.LittleEndian.PutUint64(out[32:], f.entryCount)
	binary.LittleEndian.PutUint64(out[40:], f.tombstoneCount)
	binary.LittleEndian.PutUint64(out[48:], magicV1)
	return out
}

// unmarshalFooter decodes a footer from the tail of the file. b holds the
// last min(fileSize, footerLenV3) bytes; the magic in the final 8 bytes
// selects the version (1, 2 or 3). Versions ≥ 2 carry a checksum section;
// version 3 may carry a model section.
func unmarshalFooter(b []byte) (f footer, version int, err error) {
	if len(b) < footerLenV1 {
		return f, 0, fmt.Errorf("%w: footer length %d", ErrBadTable, len(b))
	}
	switch binary.LittleEndian.Uint64(b[len(b)-8:]) {
	case magicV3:
		if len(b) < footerLenV3 {
			return f, 0, fmt.Errorf("%w: v3 footer length %d", ErrBadTable, len(b))
		}
		b = b[len(b)-footerLenV3:]
		f.checksumOff = binary.LittleEndian.Uint64(b[48:])
		f.checksumLen = binary.LittleEndian.Uint64(b[56:])
		f.modelOff = binary.LittleEndian.Uint64(b[64:])
		f.modelLen = binary.LittleEndian.Uint64(b[72:])
		version = 3
	case magicV2:
		if len(b) < footerLenV2 {
			return f, 0, fmt.Errorf("%w: v2 footer length %d", ErrBadTable, len(b))
		}
		b = b[len(b)-footerLenV2:]
		f.checksumOff = binary.LittleEndian.Uint64(b[48:])
		f.checksumLen = binary.LittleEndian.Uint64(b[56:])
		version = 2
	case magicV1:
		b = b[len(b)-footerLenV1:]
		version = 1
	default:
		return f, 0, fmt.Errorf("%w: bad magic", ErrBadTable)
	}
	f.filterOff = binary.LittleEndian.Uint64(b[0:])
	f.filterLen = binary.LittleEndian.Uint64(b[8:])
	f.indexOff = binary.LittleEndian.Uint64(b[16:])
	f.indexLen = binary.LittleEndian.Uint64(b[24:])
	f.entryCount = binary.LittleEndian.Uint64(b[32:])
	f.tombstoneCount = binary.LittleEndian.Uint64(b[40:])
	return f, version, nil
}

// checksumSet holds a table's recorded CRCs: one per data block, plus the
// filter and index blocks. The marshaled section is self-protected by a
// trailing CRC of its own bytes, so a corrupted section is rejected at Open
// rather than silently mis-verifying data blocks.
type checksumSet struct {
	blocks []uint32
	filter uint32
	index  uint32
}

func (c checksumSet) marshal() []byte {
	out := binary.AppendUvarint(nil, uint64(len(c.blocks)))
	for _, crc := range c.blocks {
		out = binary.LittleEndian.AppendUint32(out, crc)
	}
	out = binary.LittleEndian.AppendUint32(out, c.filter)
	out = binary.LittleEndian.AppendUint32(out, c.index)
	return binary.LittleEndian.AppendUint32(out, blockCRC(out))
}

func unmarshalChecksums(b []byte) (checksumSet, error) {
	var c checksumSet
	if len(b) < 4 || blockCRC(b[:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return c, fmt.Errorf("%w: checksum section", ErrCorruption)
	}
	b = b[:len(b)-4]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b[sz:])) != 4*(n+2) {
		return c, fmt.Errorf("%w: checksum count", ErrBadTable)
	}
	b = b[sz:]
	c.blocks = make([]uint32, n)
	for i := range c.blocks {
		c.blocks[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	c.filter = binary.LittleEndian.Uint32(b[4*n:])
	c.index = binary.LittleEndian.Uint32(b[4*n+4:])
	return c, nil
}

// blockHandle locates one data block within the file.
type blockHandle struct {
	offset, length uint64
}

// indexEntry maps a data block to the largest internal key it contains.
// Format v3 additionally records the block's first internal key (per-block
// lower bound: point gets reject gap keys with zero I/O) and the in-block
// offsets of every K-th entry after the first (restart points: the entry
// scan binary-searches restarts instead of walking the whole block).
// firstKey and restarts are nil for entries read from v1/v2 tables.
type indexEntry struct {
	lastKey  []byte
	handle   blockHandle
	firstKey []byte
	restarts []uint32
}

// marshalIndex serializes the block index, prefixed with the table's
// smallest user key so readers recover both user-key bounds without a data-
// block read (the largest comes from the final entry's last key). version 3
// appends each entry's first key and restart offsets (delta-encoded; the
// implicit first restart at offset 0 is not stored).
func marshalIndex(smallest []byte, entries []indexEntry, version int) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(smallest)))
	out = append(out, smallest...)
	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = binary.AppendUvarint(out, uint64(len(e.lastKey)))
		out = append(out, e.lastKey...)
		out = binary.AppendUvarint(out, e.handle.offset)
		out = binary.AppendUvarint(out, e.handle.length)
		if version >= 3 {
			out = binary.AppendUvarint(out, uint64(len(e.firstKey)))
			out = append(out, e.firstKey...)
			out = binary.AppendUvarint(out, uint64(len(e.restarts)))
			prev := uint32(0)
			for _, r := range e.restarts {
				out = binary.AppendUvarint(out, uint64(r-prev))
				prev = r
			}
		}
	}
	return out
}

func unmarshalIndex(b []byte, version int) (smallest []byte, entries []indexEntry, err error) {
	slen, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b[sz:])) < slen {
		return nil, nil, fmt.Errorf("%w: index smallest key", ErrBadTable)
	}
	b = b[sz:]
	if slen > 0 {
		smallest = append([]byte(nil), b[:slen]...)
		b = b[slen:]
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("%w: index count", ErrBadTable)
	}
	b = b[sz:]
	entries = make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b[sz:])) < klen {
			return nil, nil, fmt.Errorf("%w: index key", ErrBadTable)
		}
		b = b[sz:]
		key := append([]byte(nil), b[:klen]...)
		b = b[klen:]
		off, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: index offset", ErrBadTable)
		}
		b = b[sz:]
		length, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: index length", ErrBadTable)
		}
		b = b[sz:]
		e := indexEntry{lastKey: key, handle: blockHandle{off, length}}
		if version >= 3 {
			fklen, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b[sz:])) < fklen {
				return nil, nil, fmt.Errorf("%w: index first key", ErrBadTable)
			}
			b = b[sz:]
			e.firstKey = append([]byte(nil), b[:fklen]...)
			b = b[fklen:]
			nr, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, nil, fmt.Errorf("%w: index restart count", ErrBadTable)
			}
			b = b[sz:]
			if nr > 0 {
				e.restarts = make([]uint32, 0, nr)
				prev := uint64(0)
				for j := uint64(0); j < nr; j++ {
					d, sz := binary.Uvarint(b)
					if sz <= 0 {
						return nil, nil, fmt.Errorf("%w: index restart", ErrBadTable)
					}
					b = b[sz:]
					prev += d
					if prev > length {
						return nil, nil, fmt.Errorf("%w: restart past block end", ErrBadTable)
					}
					e.restarts = append(e.restarts, uint32(prev))
				}
			}
		}
		entries = append(entries, e)
	}
	return smallest, entries, nil
}

// appendBlockEntry appends one key/value entry to a data block.
func appendBlockEntry(dst, ikey, value []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ikey)))
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, ikey...)
	return append(dst, value...)
}

// blockEntry decodes the entry at b, returning the key, value and the number
// of bytes consumed (0 when b is exhausted or malformed).
func blockEntry(b []byte) (ikey, value []byte, n int) {
	klen, s1 := binary.Uvarint(b)
	if s1 <= 0 {
		return nil, nil, 0
	}
	vlen, s2 := binary.Uvarint(b[s1:])
	if s2 <= 0 {
		return nil, nil, 0
	}
	head := s1 + s2
	if uint64(len(b[head:])) < klen+vlen {
		return nil, nil, 0
	}
	ikey = b[head : head+int(klen)]
	value = b[head+int(klen) : head+int(klen)+int(vlen)]
	return ikey, value, head + int(klen) + int(vlen)
}
