package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"diffindex/internal/kv"
	"diffindex/internal/vfs"
)

// buildTable writes cells (given in arbitrary order) into a new table.
func buildTable(t testing.TB, fs vfs.FS, name string, cells []kv.Cell) {
	t.Helper()
	type entry struct {
		ikey  []byte
		value []byte
	}
	entries := make([]entry, len(cells))
	for i, c := range cells {
		entries[i] = entry{kv.InternalKey(c.Key, c.Ts, c.Kind), c.Value}
	}
	sort.Slice(entries, func(i, j int) bool {
		return kv.CompareInternal(entries[i].ikey, entries[j].ikey) < 0
	})
	w, err := NewWriter(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Add(e.ikey, e.value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	for i := 0; i < 1000; i++ {
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("user%06d", i)),
			Value: []byte(fmt.Sprintf("value-%d", i)),
			Ts:    kv.Timestamp(i%5 + 1),
			Kind:  kv.KindPut,
		})
	}
	buildTable(t, fs, "t1.sst", cells)

	r, err := Open(fs, "t1.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.EntryCount() != 1000 {
		t.Errorf("EntryCount = %d", r.EntryCount())
	}
	if string(r.LargestUserKey()) != "user000999" {
		t.Errorf("LargestUserKey = %q", r.LargestUserKey())
	}
	for _, i := range []int{0, 1, 499, 998, 999} {
		key := []byte(fmt.Sprintf("user%06d", i))
		c, ok, err := r.Get(key, kv.MaxTimestamp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(c.Value) != fmt.Sprintf("value-%d", i) {
			t.Errorf("Get(%s) = %+v, %v", key, c, ok)
		}
	}
	if _, ok, _ := r.Get([]byte("user9999999"), kv.MaxTimestamp); ok {
		t.Error("missing key found")
	}
	if _, ok, _ := r.Get([]byte("aaa"), kv.MaxTimestamp); ok {
		t.Error("key before table start found")
	}
}

// The footer's tombstone count lets the compaction picker reason about a
// table without reading it; it must survive the write→open round trip.
func TestTombstoneCountInFooter(t *testing.T) {
	fs := vfs.NewMemFS()
	cells := []kv.Cell{
		{Key: []byte("a"), Value: []byte("v"), Ts: 1, Kind: kv.KindPut},
		{Key: []byte("b"), Value: nil, Ts: 2, Kind: kv.KindDelete},
		{Key: []byte("c"), Value: []byte("v"), Ts: 3, Kind: kv.KindPut},
		{Key: []byte("c"), Value: nil, Ts: 4, Kind: kv.KindDelete},
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.TombstoneCount(); got != 2 {
		t.Errorf("TombstoneCount = %d, want 2", got)
	}

	buildTable(t, fs, "clean.sst", cells[:1])
	rc, err := Open(fs, "clean.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := rc.TombstoneCount(); got != 0 {
		t.Errorf("TombstoneCount = %d, want 0", got)
	}
}

func TestGetVersionVisibility(t *testing.T) {
	fs := vfs.NewMemFS()
	key := []byte("k")
	cells := []kv.Cell{
		{Key: key, Value: []byte("v1"), Ts: 10, Kind: kv.KindPut},
		{Key: key, Value: nil, Ts: 20, Kind: kv.KindDelete},
		{Key: key, Value: []byte("v3"), Ts: 30, Kind: kv.KindPut},
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if c, ok, _ := r.Get(key, 5); ok {
		t.Errorf("ts=5: %+v", c)
	}
	if c, ok, _ := r.Get(key, 15); !ok || string(c.Value) != "v1" {
		t.Errorf("ts=15: %+v ok=%v", c, ok)
	}
	if c, ok, _ := r.Get(key, 25); !ok || !c.Tombstone() {
		t.Errorf("ts=25 must see tombstone: %+v ok=%v", c, ok)
	}
	if c, ok, _ := r.Get(key, 100); !ok || string(c.Value) != "v3" {
		t.Errorf("ts=100: %+v ok=%v", c, ok)
	}
}

func TestIteratorFullScan(t *testing.T) {
	fs := vfs.NewMemFS()
	const n = 2500 // several blocks
	var cells []kv.Cell
	for i := 0; i < n; i++ {
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("row%08d", i)),
			Value: bytes.Repeat([]byte("x"), 50),
			Ts:    1,
			Kind:  kv.KindPut,
		})
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.index) < 2 {
		t.Fatalf("test requires multiple blocks, got %d", len(r.index))
	}

	it := r.Iterator()
	count := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := it.InternalKey()
		if prev != nil && kv.CompareInternal(prev, k) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], k...)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("scanned %d entries, want %d", count, n)
	}
}

func TestIteratorSeek(t *testing.T) {
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	for i := 0; i < 1000; i += 2 { // even keys only
		cells = append(cells, kv.Cell{
			Key:   []byte(fmt.Sprintf("row%08d", i)),
			Value: []byte("v"),
			Ts:    1,
			Kind:  kv.KindPut,
		})
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	it := r.Iterator()
	// Seek to an absent odd key: must land on the next even key.
	it.Seek(kv.SeekKey([]byte("row00000101"), kv.MaxTimestamp))
	if !it.Valid() {
		t.Fatal("Seek found nothing")
	}
	if c := it.Cell(); string(c.Key) != "row00000102" {
		t.Errorf("Seek landed on %q, want row00000102", c.Key)
	}
	// Seek past the end.
	it.Seek(kv.SeekKey([]byte("zzz"), kv.MaxTimestamp))
	if it.Valid() {
		t.Error("Seek past end must be invalid")
	}
	// Seek before the beginning.
	it.Seek(kv.SeekKey([]byte("aaa"), kv.MaxTimestamp))
	if !it.Valid() || string(it.Cell().Key) != "row00000000" {
		t.Error("Seek before start must land on first key")
	}
	// Continue with Next after a Seek.
	it.Seek(kv.SeekKey([]byte("row00000004"), kv.MaxTimestamp))
	it.Next()
	if !it.Valid() || string(it.Cell().Key) != "row00000006" {
		t.Errorf("Next after Seek: %q", it.Cell().Key)
	}
}

func TestBlockCacheHitAvoidsIO(t *testing.T) {
	mem := vfs.NewMemFS()
	lfs := vfs.NewLatencyFS(mem, vfs.LatencyProfile{})
	var cells []kv.Cell
	for i := 0; i < 100; i++ {
		cells = append(cells, kv.Cell{Key: []byte(fmt.Sprintf("k%04d", i)), Value: []byte("v"), Ts: 1})
	}
	buildTable(t, lfs, "t.sst", cells)

	cache := NewBlockCache(1 << 20)
	r, err := Open(lfs, "t.sst", cache)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	before, _, _, _, _ := lfs.Stats.Snapshot()
	if _, ok, _ := r.Get([]byte("k0042"), kv.MaxTimestamp); !ok {
		t.Fatal("key missing")
	}
	afterFirst, _, _, _, _ := lfs.Stats.Snapshot()
	if afterFirst == before {
		t.Error("first read should hit the VFS")
	}
	if _, ok, _ := r.Get([]byte("k0042"), kv.MaxTimestamp); !ok {
		t.Fatal("key missing")
	}
	afterSecond, _, _, _, _ := lfs.Stats.Snapshot()
	if afterSecond != afterFirst {
		t.Error("second read must be served from cache")
	}
	hits, misses := cache.Stats()
	if hits < 1 || misses < 1 {
		t.Errorf("cache stats hits=%d misses=%d", hits, misses)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := NewBlockCache(100)
	c.Put("t", 0, make([]byte, 60))
	c.Put("t", 1, make([]byte, 60)) // must evict offset 0
	if c.Get("t", 0) != nil {
		t.Error("LRU victim not evicted")
	}
	if c.Get("t", 1) == nil {
		t.Error("resident block evicted")
	}
	if c.Used() != 60 {
		t.Errorf("Used = %d", c.Used())
	}
	c.Put("t", 2, make([]byte, 200)) // larger than capacity: not inserted
	if c.Get("t", 2) != nil {
		t.Error("oversized block must not be cached")
	}
	c.DropTable("t")
	if c.Used() != 0 {
		t.Errorf("Used after DropTable = %d", c.Used())
	}
	var nilCache *BlockCache
	if nilCache.Get("t", 0) != nil {
		t.Error("nil cache Get must return nil")
	}
	nilCache.Put("t", 0, []byte("x")) // must not panic
	nilCache.DropTable("t")
	if h, m := nilCache.Stats(); h != 0 || m != 0 {
		t.Error("nil cache stats must be zero")
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	fs := vfs.NewMemFS()
	w, err := NewWriter(fs, "t.sst")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abandon()
	if err := w.Add(kv.InternalKey([]byte("b"), 1, kv.KindPut), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(kv.InternalKey([]byte("a"), 1, kv.KindPut), nil); err == nil {
		t.Error("out-of-order Add must fail")
	}
	// Same key, older ts is in order (descending ts sorts later).
	if err := w.Add(kv.InternalKey([]byte("b"), 0, kv.KindPut), nil); err != nil {
		t.Errorf("older version of same key must be accepted: %v", err)
	}
	// Exact duplicate must fail.
	if err := w.Add(kv.InternalKey([]byte("b"), 0, kv.KindPut), nil); err == nil {
		t.Error("duplicate internal key must fail")
	}
}

func TestWriterDoubleFinish(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, "t.sst")
	w.Add(kv.InternalKey([]byte("a"), 1, kv.KindPut), []byte("v"))
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Error("double Finish must fail")
	}
	if err := w.Add(kv.InternalKey([]byte("b"), 1, kv.KindPut), nil); err == nil {
		t.Error("Add after Finish must fail")
	}
}

func TestEmptyTable(t *testing.T) {
	fs := vfs.NewMemFS()
	w, _ := NewWriter(fs, "empty.sst")
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, "empty.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.EntryCount() != 0 || r.LargestUserKey() != nil {
		t.Error("empty table must report zero entries, nil bounds")
	}
	if _, ok, _ := r.Get([]byte("k"), kv.MaxTimestamp); ok {
		t.Error("Get on empty table found something")
	}
	it := r.Iterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("iterator on empty table is valid")
	}
}

func TestOpenErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, err := Open(fs, "missing.sst", nil); err == nil {
		t.Error("open missing file: want error")
	}
	f, _ := fs.Create("short.sst")
	f.Write([]byte("tiny"))
	f.Close()
	if _, err := Open(fs, "short.sst", nil); err == nil {
		t.Error("open short file: want error")
	}
	g, _ := fs.Create("badmagic.sst")
	g.Write(make([]byte, footerLenV2+10))
	g.Close()
	if _, err := Open(fs, "badmagic.sst", nil); err == nil {
		t.Error("open bad-magic file: want error")
	}
}

func TestMultiVersionAcrossBlocks(t *testing.T) {
	// Many versions of few keys spanning block boundaries: Get must still
	// find the newest visible version.
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	for _, key := range []string{"a", "b", "c"} {
		for ts := 1; ts <= 300; ts++ {
			cells = append(cells, kv.Cell{
				Key:   []byte(key),
				Value: bytes.Repeat([]byte(fmt.Sprintf("%s%03d", key, ts)), 10),
				Ts:    kv.Timestamp(ts),
				Kind:  kv.KindPut,
			})
		}
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, key := range []string{"a", "b", "c"} {
		for _, ts := range []kv.Timestamp{1, 150, 300, 1000} {
			want := ts
			if want > 300 {
				want = 300
			}
			c, ok, err := r.Get([]byte(key), ts)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || c.Ts != want {
				t.Errorf("Get(%s, %d) = ts %d ok=%v, want ts %d", key, ts, c.Ts, ok, want)
			}
		}
	}
}

func TestRandomizedAgainstSortedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fs := vfs.NewMemFS()
	model := map[string]string{}
	var cells []kv.Cell
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(2000))
		if _, dup := model[k]; dup {
			continue
		}
		v := fmt.Sprintf("val%d", i)
		model[k] = v
		cells = append(cells, kv.Cell{Key: []byte(k), Value: []byte(v), Ts: 1, Kind: kv.KindPut})
	}
	buildTable(t, fs, "t.sst", cells)
	r, err := Open(fs, "t.sst", NewBlockCache(1<<16)) // small cache: exercise eviction
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k, v := range model {
		c, ok, err := r.Get([]byte(k), kv.MaxTimestamp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(c.Value) != v {
			t.Errorf("Get(%s) = %q ok=%v, want %q", k, c.Value, ok, v)
		}
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("absent%05d", i)
		if _, ok, _ := r.Get([]byte(k), kv.MaxTimestamp); ok {
			t.Errorf("absent key %s found", k)
		}
	}
}

func BenchmarkSSTableGet(b *testing.B) {
	fs := vfs.NewMemFS()
	var cells []kv.Cell
	const n = 100000
	for i := 0; i < n; i++ {
		cells = append(cells, kv.Cell{Key: []byte(fmt.Sprintf("k%08d", i)), Value: make([]byte, 100), Ts: 1})
	}
	buildTable(b, fs, "bench.sst", cells)
	r, err := Open(fs, "bench.sst", NewBlockCache(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get([]byte(fmt.Sprintf("k%08d", i%n)), kv.MaxTimestamp)
	}
}

func TestReaderAccessorsAndIteratorValue(t *testing.T) {
	fs := vfs.NewMemFS()
	cells := []kv.Cell{{Key: []byte("k1"), Value: []byte("v1"), Ts: 1, Kind: kv.KindPut}}
	w, err := NewWriter(fs, "acc.sst")
	if err != nil {
		t.Fatal(err)
	}
	if w.Count() != 0 {
		t.Error("fresh writer Count != 0")
	}
	for _, c := range cells {
		w.Add(kv.InternalKey(c.Key, c.Ts, c.Kind), c.Value)
	}
	if w.Count() != 1 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fs, "acc.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Name() != "acc.sst" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Size() <= 0 {
		t.Errorf("Size = %d", r.Size())
	}
	it := r.Iterator()
	it.SeekToFirst()
	if !it.Valid() || string(it.Value()) != "v1" {
		t.Errorf("iterator Value = %q", it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Error("iterator valid past end")
	}
	it.Next() // Next on invalid iterator must be a no-op
	if it.Err() != nil {
		t.Errorf("Err = %v", it.Err())
	}
}
