// Package core implements Diff-Index itself: global secondary indexes on the
// distributed LSM store with a spectrum of maintenance schemes (§3.4):
//
//	sync-full    — causal consistent: P_I, R_B, D_I complete before the put
//	               returns (Algorithm 1).
//	sync-insert  — causal consistent with read-repair: only P_I is done
//	               synchronously; stale entries are detected and deleted at
//	               read time (Algorithm 2).
//	async-simple — eventually consistent: index work is queued on the AUQ
//	               and applied by the background APS (Algorithms 3, 4).
//	async-session— session consistent: async-simple plus a client-side
//	               session cache providing read-your-writes (§5.2).
//
// The package registers one coprocessor per indexed base table (§7), owns
// the per-region asynchronous update queues with their drain-before-flush
// recovery protocol (§5.3), and provides the index read paths GetByIndex
// and RangeByIndex including sync-insert's double-check-and-clean.
package core

import (
	"fmt"
	"strings"
)

// Scheme selects the index maintenance scheme for one index. Schemes are
// chosen per index (§3.4: "schemes can be chosen in a per index manner").
type Scheme int

const (
	// SyncFull completes all index update tasks synchronously (§4.1).
	SyncFull Scheme = iota
	// SyncInsert inserts new index entries synchronously but lazily repairs
	// old entries at read time (§4.2).
	SyncInsert
	// AsyncSimple executes index updates asynchronously with guaranteed
	// eventual execution (§5.1).
	AsyncSimple
	// AsyncSession adds read-your-writes on top of AsyncSimple via a
	// client-side session cache (§5.2).
	AsyncSession
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SyncFull:
		return "sync-full"
	case SyncInsert:
		return "sync-insert"
	case AsyncSimple:
		return "async-simple"
	case AsyncSession:
		return "async-session"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Asynchronous reports whether index updates are applied by the APS rather
// than inside the put RPC.
func (s Scheme) Asynchronous() bool { return s == AsyncSimple || s == AsyncSession }

// IndexDef defines one global secondary index.
type IndexDef struct {
	// Table is the indexed base table.
	Table string
	// Columns are the indexed columns. With more than one column this is a
	// composite index (§7 lists composite indexes among Diff-Index
	// features); the index value is the order-preserving composite encoding
	// of the column values in order.
	Columns []string
	// Scheme is the maintenance scheme for this index. Ignored when Local
	// is set: local index maintenance is always synchronous, because it is
	// a write into the same region (same server, same WAL) as the base
	// mutation — the cheap-update/expensive-query end of the §3.1
	// trade-off.
	Scheme Scheme
	// Local makes this a local (per-region, co-located) index instead of a
	// global one (§3.1). Local entries live inside each base region's own
	// store under a reserved key space; queries broadcast to every region.
	Local bool
}

// Name returns the index's name: the index table's name for a global index
// ("idx_item_title"), or the in-region key-space label for a local one
// ("lidx_item_title").
func (d IndexDef) Name() string {
	prefix := "idx_"
	if d.Local {
		prefix = "lidx_"
	}
	return prefix + d.Table + "_" + strings.Join(d.Columns, "_")
}

// Covers reports whether the put of the given columns can change this
// index's value (i.e. whether any indexed column is touched).
func (d IndexDef) Covers(cols map[string][]byte) bool {
	for _, c := range d.Columns {
		if _, ok := cols[c]; ok {
			return true
		}
	}
	return false
}

// CoversNames is Covers for a column-name list (the delete path).
func (d IndexDef) CoversNames(cols []string) bool {
	for _, c := range d.Columns {
		for _, name := range cols {
			if c == name {
				return true
			}
		}
	}
	return false
}

// Validate checks structural well-formedness.
func (d IndexDef) Validate() error {
	if d.Table == "" {
		return fmt.Errorf("core: index definition needs a table")
	}
	if len(d.Columns) == 0 {
		return fmt.Errorf("core: index definition needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range d.Columns {
		if c == "" {
			return fmt.Errorf("core: empty column name in index on %s", d.Table)
		}
		if seen[c] {
			return fmt.Errorf("core: duplicate column %q in index on %s", c, d.Table)
		}
		seen[c] = true
	}
	if d.Scheme < SyncFull || d.Scheme > AsyncSession {
		return fmt.Errorf("core: unknown scheme %d", d.Scheme)
	}
	return nil
}
