package core

import (
	"fmt"
	"sync"

	"diffindex/internal/kv"
)

// Catalog stores index metadata, standing in for the Big SQL catalog that
// "stores index metadata and also puts a copy in the HBase table descriptor"
// (§7). It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	byTable map[string][]IndexDef
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byTable: make(map[string][]IndexDef)}
}

// Add registers an index definition. Adding a duplicate (same table and
// columns) fails.
func (c *Catalog) Add(def IndexDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.byTable[def.Table] {
		if d.Name() == def.Name() {
			return fmt.Errorf("core: index %s already exists", def.Name())
		}
	}
	c.byTable[def.Table] = append(c.byTable[def.Table], def)
	return nil
}

// Remove unregisters an index definition by name.
func (c *Catalog) Remove(table, name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	defs := c.byTable[table]
	for i, d := range defs {
		if d.Name() == name {
			c.byTable[table] = append(defs[:i], defs[i+1:]...)
			return true
		}
	}
	return false
}

// UpdateScheme changes the maintenance scheme of an index by name. Callers
// switching an index away from sync-insert must cleanse it first (see
// Manager.SetScheme).
func (c *Catalog) UpdateScheme(table, name string, scheme Scheme) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, d := range c.byTable[table] {
		if d.Name() == name {
			c.byTable[table][i].Scheme = scheme
			return true
		}
	}
	return false
}

// IndexesOn returns the indexes defined on a table (a copy).
func (c *Catalog) IndexesOn(table string) []IndexDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]IndexDef(nil), c.byTable[table]...)
}

// Find returns the index on the given table and column list, matching the
// column order exactly.
func (c *Catalog) Find(table string, columns ...string) (IndexDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.byTable[table] {
		if len(d.Columns) != len(columns) {
			continue
		}
		match := true
		for i := range columns {
			if d.Columns[i] != columns[i] {
				match = false
				break
			}
		}
		if match {
			return d, true
		}
	}
	return IndexDef{}, false
}

// indexValue computes an index's value bytes from a row's column values.
// ok is false when any indexed column is absent (rows with missing indexed
// columns have no index entry, the usual NULL semantics).
func indexValue(def IndexDef, cols map[string][]byte) ([]byte, bool) {
	return kv.IndexValueFromColumns(def.Columns, cols)
}
