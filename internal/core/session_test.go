package core

import (
	"fmt"
	"testing"
	"time"

	"diffindex/internal/cluster"
)

// blockAsync cuts every server↔server path so the APS cannot deliver index
// updates; client↔server paths stay up. This makes "the index is stale"
// deterministic for session tests.
func blockAsync(e *env) {
	ids := e.c.ServerIDs()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			e.c.Net.Partition(ids[i], ids[j])
		}
	}
}

func TestSessionReadYourWrites(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")
	blockAsync(e)

	// §3.3's scenario: user 1 posts a review, then lists reviews.
	s1 := e.m.NewSession(e.cl)
	defer s1.End()
	if _, err := s1.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("matrix")}); err != nil {
		t.Fatal(err)
	}

	// The plain (non-session) read misses the write: the index is stale.
	// Note: the index entry for item001 may be server-local, in which case
	// even the stale path sees it; use a row whose index region is remote.
	hits, err := s1.GetByIndex(e.tbl, []string{"title"}, []byte("matrix"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || string(hits[0].Row) != "item001" {
		t.Fatalf("session read missed own write: %+v", hits)
	}

	// A different session (user 2) has no private state; it may or may not
	// see the write — session consistency makes no promise for it.
	s2 := e.m.NewSession(e.cl)
	defer s2.End()
	if _, err := s2.GetByIndex(e.tbl, []string{"title"}, []byte("matrix")); err != nil {
		t.Fatal(err)
	}

	// After healing and convergence the server index catches up and the
	// merged result still reports the row exactly once.
	e.c.Net.HealAll()
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("no convergence after heal")
	}
	hits, err = s1.GetByIndex(e.tbl, []string{"title"}, []byte("matrix"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("duplicate or missing hit after convergence: %+v", hits)
	}
}

func TestSessionSeesOwnUpdateNotStaleValue(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")

	// Converged initial state.
	s := e.m.NewSession(e.cl)
	defer s.End()
	if _, err := s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("no convergence")
	}

	// Update while the async path is blocked: the server index still holds
	// old→item001.
	blockAsync(e)
	if _, err := s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	// Session read of the OLD value must hide the superseded entry...
	hits, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("session saw its own superseded entry: %+v", hits)
	}
	// ...and the NEW value must be visible.
	hits, _ = s.GetByIndex(e.tbl, []string{"title"}, []byte("new"))
	if len(hits) != 1 {
		t.Fatalf("session missed its own update: %+v", hits)
	}
	e.c.Net.HealAll()
}

func TestSessionDelete(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")
	s := e.m.NewSession(e.cl)
	defer s.End()

	s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("gone")})
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("no convergence")
	}
	blockAsync(e)
	if _, err := s.Delete(e.tbl, []byte("item001"), nil); err != nil {
		t.Fatal(err)
	}
	hits, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("gone"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("session saw its own deleted row: %+v", hits)
	}
	e.c.Net.HealAll()
}

func TestSessionRange(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSession, "price")
	blockAsync(e)
	s := e.m.NewSession(e.cl)
	defer s.End()
	for i := 0; i < 5; i++ {
		s.Put(e.tbl, []byte(fmt.Sprintf("item%03d", i)), map[string][]byte{"price": []byte(fmt.Sprintf("%03d", i*10))})
	}
	hits, err := s.RangeByIndex(e.tbl, []string{"price"}, []byte("010"), []byte("030"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("session range hits = %+v", hits)
	}
	// Limit applies after the merge.
	hits, _ = s.RangeByIndex(e.tbl, []string{"price"}, []byte("000"), nil, 2)
	if len(hits) != 2 {
		t.Fatalf("limited session range = %+v", hits)
	}
	e.c.Net.HealAll()
}

func TestSessionExpiry(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{SessionTTL: 5 * time.Millisecond})
	e.createIndex(t, AsyncSession, "title")
	s := e.m.NewSession(e.cl)
	if _, err := s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("x")); err != ErrSessionExpired {
		t.Errorf("expired session read: %v", err)
	}
	if _, err := s.Put(e.tbl, []byte("item002"), map[string][]byte{"title": []byte("y")}); err != ErrSessionExpired {
		t.Errorf("expired session put: %v", err)
	}
}

func TestSessionEnd(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")
	s := e.m.NewSession(e.cl)
	if s.ID() == "" {
		t.Error("empty session ID")
	}
	s.End()
	if _, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("x")); err != ErrSessionExpired {
		t.Errorf("ended session read: %v", err)
	}
}

func TestSessionMemoryCapDegrades(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{SessionMaxBytes: 256})
	e.createIndex(t, AsyncSession, "title")
	s := e.m.NewSession(e.cl)
	defer s.End()
	for i := 0; i < 50 && !s.Degraded(); i++ {
		if _, err := s.Put(e.tbl, []byte(fmt.Sprintf("item%03d", i)), map[string][]byte{
			"title": []byte(fmt.Sprintf("a-rather-long-title-%04d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Degraded() {
		t.Fatal("session never degraded despite tiny memory cap")
	}
	// Degraded sessions still work, just without the read-your-write
	// guarantee (plain eventual consistency).
	if _, err := s.Put(e.tbl, []byte("item999"), map[string][]byte{"title": []byte("t")}); err != nil {
		t.Fatal(err)
	}
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("no convergence")
	}
	if _, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("t")); err != nil {
		t.Fatal(err)
	}
}

func TestSessionOnSyncIndexIsTransparent(t *testing.T) {
	// Session APIs over a synchronous index: private state is not tracked
	// (unnecessary) and reads behave like plain reads.
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncFull, "title")
	s := e.m.NewSession(e.cl)
	defer s.End()
	s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("v")})
	hits, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("v"))
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits=%+v err=%v", hits, err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			cl := cluster.NewClient(e.c, fmt.Sprintf("sess-client-%d", g))
			s := e.m.NewSession(cl)
			defer s.End()
			for i := 0; i < 25; i++ {
				row := []byte(fmt.Sprintf("item%d%02d", g, i))
				title := []byte(fmt.Sprintf("g%d-t%d", g, i))
				if _, err := s.Put(e.tbl, row, map[string][]byte{"title": title}); err != nil {
					done <- err
					return
				}
				hits, err := s.GetByIndex(e.tbl, []string{"title"}, title)
				if err != nil {
					done <- err
					return
				}
				if len(hits) != 1 {
					done <- fmt.Errorf("goroutine %d: read-your-write violated for %s (%d hits)", g, row, len(hits))
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestSessionSurvivesServerCrash(t *testing.T) {
	// The session cache lives in the client library, so read-your-writes
	// holds even across a region-server crash: the private entries bridge
	// the gap while WAL replay re-enqueues the lost AUQ work.
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, AsyncSession, "title")
	blockAsync(e)

	s := e.m.NewSession(e.cl)
	defer s.End()
	for i := 0; i < 10; i++ {
		if _, err := s.Put(e.tbl, []byte(fmt.Sprintf("item%03d", i)), map[string][]byte{
			"title": []byte("mine"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the server hosting the first base region while its AUQ holds
	// the pending index work.
	ri, _ := e.c.Master.Locate(e.tbl, []byte("item000"))
	if err := e.c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	// Session reads still see every write (client-side merge).
	hits, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Fatalf("session hits after crash = %d, want 10", len(hits))
	}
	// After heal + convergence the server state agrees, still exactly once.
	e.c.Net.HealAll()
	if !e.m.WaitForConvergence(10 * time.Second) {
		t.Fatal("no convergence after crash")
	}
	hits, _ = s.GetByIndex(e.tbl, []string{"title"}, []byte("mine"))
	if len(hits) != 10 {
		t.Fatalf("session hits after convergence = %d", len(hits))
	}
}
