package core

import (
	"fmt"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// Anti-entropy index verification: the background check that a global index
// actually delivers the contract its scheme promises. Diff-Index's schemes
// bound WHERE divergence can appear — sync-full leaves none, sync-insert
// leaves only stale entries (repaired lazily on read), async schemes leave a
// convergence window (§6.1) — but bugs, lost queues or disk corruption can
// breach those bounds silently: an index read simply misses rows. The sweep
// compares the index against the base table wholesale and classifies every
// divergence against the §6.1 contracts:
//
//   - a base row whose expected entry is absent from the index breaks
//     index-complete (reads silently miss the row) — "missing";
//   - an index entry no base row justifies breaks index-exact (reads return
//     phantom rows, modulo the double-check of sync-insert) — "stale".
//
// The comparison is digest-first (see cluster's hash-bucket protocol): only
// buckets whose base-side and index-side digests differ are enumerated
// pair-by-pair, so a healthy index costs two digest scans and no enumeration.
// Because the two sides are scanned without a common snapshot, in-flight
// writes and queued async updates can masquerade as divergence; every
// candidate is therefore re-verified with point reads before it is counted
// or repaired, and candidates that re-verify clean are reported as transient.

// VerifyBuckets is the digest-vector width used by VerifyIndexes. More
// buckets localize divergence better (fewer pairs enumerated per divergent
// bucket); fewer buckets shrink the digest exchange.
const VerifyBuckets = 64

// IndexVerifyReport summarizes one index's anti-entropy sweep.
type IndexVerifyReport struct {
	Table string
	Index string
	// Scheme is the index's maintenance scheme at sweep time.
	Scheme Scheme
	// Buckets is the digest-vector width; DivergentBuckets how many buckets
	// differed between the base side and the index side.
	Buckets          int
	DivergentBuckets int
	// PairsCompared counts the (value, row) pairs enumerated from the
	// divergent buckets, both sides combined.
	PairsCompared int
	// Missing / Stale are CONFIRMED violations: expected entries absent from
	// the index (index-complete breach) and index entries without a matching
	// base row (index-exact breach).
	Missing int
	Stale   int
	// Transient counts candidates that re-verified clean — in-flight or
	// queued-async updates caught mid-propagation, not violations.
	Transient int
	// Repaired counts violations fixed this sweep (missing entries inserted,
	// stale entries deleted, both at the timestamps §4.3 prescribes).
	Repaired int
}

// Healthy reports whether the sweep confirmed zero violations.
func (r IndexVerifyReport) Healthy() bool { return r.Missing == 0 && r.Stale == 0 }

func (r IndexVerifyReport) String() string {
	return fmt.Sprintf("%s[%s]: buckets %d/%d divergent, %d pairs, %d missing, %d stale, %d transient, %d repaired",
		r.Index, r.Scheme, r.DivergentBuckets, r.Buckets, r.PairsCompared, r.Missing, r.Stale, r.Transient, r.Repaired)
}

// VerifyIndexes runs one anti-entropy sweep over every GLOBAL index of a
// table, repairing confirmed violations through the same raw-apply path the
// maintenance schemes use. Local indexes are skipped: their entries live in
// the same region as their rows and are maintained inside the row's write,
// so there is no cross-table state to diverge.
func (m *Manager) VerifyIndexes(cl *cluster.Client, table string) ([]IndexVerifyReport, error) {
	var reports []IndexVerifyReport
	for _, def := range m.catalog.IndexesOn(table) {
		if def.Local {
			continue
		}
		rep, err := m.verifyIndex(cl, def)
		if err != nil {
			return reports, fmt.Errorf("core: verify %s: %w", def.Name(), err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func (m *Manager) verifyIndex(cl *cluster.Client, def IndexDef) (IndexVerifyReport, error) {
	rep := IndexVerifyReport{Table: def.Table, Index: def.Name(), Scheme: def.Scheme, Buckets: VerifyBuckets}
	m.reg.Counter("diffindex_antientropy_sweeps_total", metrics.L("table", def.Table)).Inc()

	// Phase 1: digest exchange. One scan of each side, fixed-size result.
	baseDig, err := cl.BaseTableIndexDigest(def.Table, def.Columns, VerifyBuckets, kv.MaxTimestamp)
	if err != nil {
		return rep, err
	}
	idxDig, err := cl.IndexTableDigest(def.Name(), VerifyBuckets, kv.MaxTimestamp)
	if err != nil {
		return rep, err
	}
	var divergent []int
	for i := range baseDig {
		if baseDig[i] != idxDig[i] {
			divergent = append(divergent, i)
		}
	}
	rep.DivergentBuckets = len(divergent)
	m.reg.Counter("diffindex_antientropy_buckets_total", metrics.L("result", "clean")).Add(int64(VerifyBuckets - len(divergent)))
	m.reg.Counter("diffindex_antientropy_buckets_total", metrics.L("result", "divergent")).Add(int64(len(divergent)))
	if len(divergent) == 0 {
		return rep, nil
	}

	// Phase 2: enumerate ONLY the divergent buckets and diff the pair sets.
	basePairs, err := cl.BaseTableBucketEntries(def.Table, def.Columns, VerifyBuckets, divergent, kv.MaxTimestamp)
	if err != nil {
		return rep, err
	}
	idxPairs, err := cl.IndexTableBucketEntries(def.Name(), VerifyBuckets, divergent, kv.MaxTimestamp)
	if err != nil {
		return rep, err
	}
	rep.PairsCompared = len(basePairs) + len(idxPairs)
	baseSet := make(map[string]cluster.IndexEntryPair, len(basePairs))
	for _, p := range basePairs {
		baseSet[string(kv.IndexKey(p.Value, p.Row))] = p
	}
	idxSet := make(map[string]cluster.IndexEntryPair, len(idxPairs))
	for _, p := range idxPairs {
		idxSet[string(kv.IndexKey(p.Value, p.Row))] = p
	}
	var missing, stale []cluster.IndexEntryPair
	for k, p := range baseSet {
		if _, ok := idxSet[k]; !ok {
			missing = append(missing, p)
		}
	}
	for k, p := range idxSet {
		if _, ok := baseSet[k]; !ok {
			stale = append(stale, p)
		}
	}

	// Phase 3: re-verify candidates with point reads, then repair. The two
	// enumeration scans above are not a snapshot, so a write racing the sweep
	// shows up as a candidate; the point reads below see the current state
	// and filter those out.
	var repairs []kv.Cell
	confirmedMissing, transient, err := m.confirmMissing(cl, def, missing)
	if err != nil {
		return rep, err
	}
	rep.Transient += transient
	for _, p := range confirmedMissing {
		// Insert the absent entry at the base row's newest indexed-column
		// timestamp — the same-timestamp rule (§4.3) keeps the repair
		// idempotent under redelivery and ordered against future updates.
		repairs = append(repairs, kv.Cell{Key: kv.IndexKey(p.Value, p.Row), Ts: p.Ts, Kind: kv.KindPut})
	}
	rep.Missing = len(confirmedMissing)

	confirmedStale, transient, err := m.confirmStale(cl, def, stale)
	if err != nil {
		return rep, err
	}
	rep.Transient += transient
	for _, p := range confirmedStale {
		// Delete at the entry's own timestamp, exactly like the lazy repair
		// of Algorithm 2 and Cleanse.
		repairs = append(repairs, kv.Cell{Key: kv.IndexKey(p.Value, p.Row), Ts: p.Ts, Kind: kv.KindDelete})
	}
	rep.Stale = len(confirmedStale)

	m.reg.Counter("diffindex_antientropy_violations_total", metrics.L("kind", "missing")).Add(int64(rep.Missing))
	m.reg.Counter("diffindex_antientropy_violations_total", metrics.L("kind", "stale")).Add(int64(rep.Stale))

	if len(repairs) > 0 {
		if err := cl.MultiApply(def.Name(), repairs); err != nil {
			return rep, err
		}
		rep.Repaired = len(repairs)
		m.reg.Counter("diffindex_antientropy_repairs_total", metrics.L("kind", "missing")).Add(int64(rep.Missing))
		m.reg.Counter("diffindex_antientropy_repairs_total", metrics.L("kind", "stale")).Add(int64(rep.Stale))
		m.Counters.IndexPut.Add(int64(rep.Missing))
		m.Counters.IndexDel.Add(int64(rep.Stale))
	}
	return rep, nil
}

// confirmMissing re-verifies missing-entry candidates: a candidate is a real
// index-complete breach only if the base row STILL produces that index value
// and the index STILL has no entry for it. Both checks batch into one
// region-grouped wave each.
func (m *Manager) confirmMissing(cl *cluster.Client, def IndexDef, cands []cluster.IndexEntryPair) (confirmed []cluster.IndexEntryPair, transient int, err error) {
	if len(cands) == 0 {
		return nil, 0, nil
	}
	vals := make([][]byte, len(cands))
	rows := make([][]byte, len(cands))
	specs := make([]cluster.GetSpec, len(cands))
	for i, p := range cands {
		vals[i], rows[i] = p.Value, p.Row
		// Index tables route by store key, so a nil Route routes by Key.
		specs[i] = cluster.GetSpec{Key: kv.IndexKey(p.Value, p.Row)}
	}
	baseKeep, err := m.doubleCheckBatch(cl, def, vals, rows)
	if err != nil {
		return nil, 0, err
	}
	idxRes, err := cl.MultiGet(def.Name(), specs, kv.MaxTimestamp)
	if err != nil {
		return nil, 0, err
	}
	for i, p := range cands {
		switch {
		case idxRes[i].Found:
			// The entry arrived between enumeration and now (async delivery
			// in flight during the scan) — not a violation.
			transient++
		case !baseKeep[i]:
			// The base row changed since enumeration; the expected pair no
			// longer exists, so there is nothing to repair.
			transient++
		default:
			confirmed = append(confirmed, p)
		}
	}
	return confirmed, transient, nil
}

// confirmStale re-verifies stale-entry candidates with the same
// double-check sync-insert reads use (Algorithm 2): an entry is a real
// index-exact breach only if the base row does NOT currently produce its
// value.
func (m *Manager) confirmStale(cl *cluster.Client, def IndexDef, cands []cluster.IndexEntryPair) (confirmed []cluster.IndexEntryPair, transient int, err error) {
	if len(cands) == 0 {
		return nil, 0, nil
	}
	vals := make([][]byte, len(cands))
	rows := make([][]byte, len(cands))
	for i, p := range cands {
		vals[i], rows[i] = p.Value, p.Row
	}
	keep, err := m.doubleCheckBatch(cl, def, vals, rows)
	if err != nil {
		return nil, 0, err
	}
	for i, p := range cands {
		if keep[i] {
			transient++ // base caught up and matches the entry after all
			continue
		}
		confirmed = append(confirmed, p)
	}
	return confirmed, transient, nil
}

// VerifyIndex runs the sweep for one index, by table and columns.
func (m *Manager) VerifyIndex(cl *cluster.Client, table string, columns ...string) (IndexVerifyReport, error) {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return IndexVerifyReport{}, fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	if def.Local {
		return IndexVerifyReport{}, fmt.Errorf("core: %s is a local index; anti-entropy applies to global indexes", def.Name())
	}
	return m.verifyIndex(cl, def)
}
