package core

import (
	"fmt"
	"testing"
	"time"
)

// TestSyncFullRPCBatching counter-verifies the tentpole claim: a sync-full
// update that changes an indexed value performs its index maintenance (one
// delete of the superseded entry + one insert of the new one) with ONE
// Apply RPC per destination index region — not one RPC per index cell.
func TestSyncFullRPCBatching(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "title") // single-region index table

	e.put(t, "item001", "title", "alpha")
	rpcs0, cells0 := e.m.ApplyStats()

	// A value-changing update: delete of ⟨alpha⊕item001⟩ + insert of
	// ⟨beta⊕item001⟩, both destined for the index table's only region.
	e.put(t, "item001", "title", "beta")
	rpcs, cells := e.m.ApplyStats()
	if got := cells - cells0; got != 2 {
		t.Errorf("cells shipped by the update = %d, want 2 (delete + insert)", got)
	}
	if got := rpcs - rpcs0; got != 1 {
		t.Errorf("Apply RPCs issued by the update = %d, want 1 (one per destination region)", got)
	}
}

// TestSyncFullRPCPerRegion is the multi-region variant: when the superseded
// and new index entries route to different index regions, the batch
// degrades gracefully to one RPC per region — never more.
func TestSyncFullRPCPerRegion(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := IndexDef{Table: e.tbl, Columns: []string{"title"}, Scheme: SyncFull}
	// Index table split at "m": values < m and ≥ m live in different regions.
	if err := e.m.CreateIndex(def, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}

	e.put(t, "item001", "title", "alpha")
	rpcs0, _ := e.m.ApplyStats()

	// alpha (region 1) superseded by zeta (region 2): two destinations.
	e.put(t, "item001", "title", "zeta")
	rpcs, _ := e.m.ApplyStats()
	if got := rpcs - rpcs0; got != 2 {
		t.Errorf("Apply RPCs = %d, want 2 (entries span two index regions)", got)
	}
}

// TestAPSMicroBatching backs the AUQ up behind a partition so the single
// APS worker finds a deep queue when the network heals, then checks that
// (a) the index converges to the correct state and (b) the batch-size
// histogram shows the worker coalesced multiple tasks per drain.
func TestAPSMicroBatching(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{Workers: 1, APSBatch: 8})
	def := e.createIndex(t, AsyncSimple, "title")

	// A region's APS client is named after its hosting server, so writing
	// rows to a base region hosted AWAY from the index region and
	// partitioning the two servers stalls the worker while the queue fills.
	// The items table has two regions (split at item500) on different
	// servers; pick whichever one is remote from the index region.
	idxRegions, err := e.c.Master.RegionsOf(def.Name())
	if err != nil {
		t.Fatal(err)
	}
	prefix := "item0%02d" // rows item000.. (first region)
	baseRI, err := e.c.Master.Locate(e.tbl, []byte("item000"))
	if err != nil {
		t.Fatal(err)
	}
	if baseRI.Server == idxRegions[0].Server {
		prefix = "item9%02d" // rows item900.. (second region)
		if baseRI, err = e.c.Master.Locate(e.tbl, []byte("item900")); err != nil {
			t.Fatal(err)
		}
	}
	remote := baseRI.Server != idxRegions[0].Server
	if remote {
		e.c.Net.Partition(baseRI.Server, idxRegions[0].Server)
	}

	const n = 48
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf(prefix, i), "title", fmt.Sprintf("v%03d", i))
	}
	if remote {
		e.c.Net.HealAll()
	}
	if !e.m.WaitForConvergence(10 * time.Second) {
		t.Fatal("AUQ did not converge")
	}

	for i := 0; i < n; i++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("v%03d", i))
		if len(rows) != 1 || rows[0] != fmt.Sprintf(prefix, i) {
			t.Fatalf("v%03d → %v, want [%s]", i, rows, fmt.Sprintf(prefix, i))
		}
	}

	h := e.m.APSBatchSizes()
	t.Logf("remote=%v batches=%d mean=%.1f max=%d", remote, h.Count(), h.Mean(), h.Max())
	if h.Count() == 0 {
		t.Fatal("no APS batches recorded")
	}
	if remote {
		// ≥47 tasks were queued when the worker unblocked; with APSBatch=8
		// it must have drained them in far fewer than n batches.
		if h.Count() >= int64(n) {
			t.Errorf("batches = %d for %d tasks: no coalescing happened", h.Count(), n)
		}
		if h.Max() < 2 {
			t.Errorf("max batch size = %d, want ≥ 2", h.Max())
		}
		if h.Max() > int64(e.m.opts.APSBatch) {
			t.Errorf("max batch size = %d exceeds APSBatch bound %d", h.Max(), e.m.opts.APSBatch)
		}
	}
}

// TestFlushDuringBatchedAPSDrain exercises the drain-before-flush protocol
// while batched APS work is mid-flight: a burst of async updates is
// enqueued, and a flush starts immediately — its pre-flush hook must wait
// for every drained micro-batch to become durable before the memtable
// swaps. After the flush, the region's queue must be empty (PR(Flushed) =
// ∅) and the index complete.
func TestFlushDuringBatchedAPSDrain(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{Workers: 2, APSBatch: 8})
	e.createIndex(t, AsyncSimple, "title")

	const n = 48
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("t%03d", i))
	}
	// Flush every region of the base table while the APS is (very likely)
	// still mid-drain; the pre-flush hook blocks until the batches land.
	regions, err := e.c.Master.RegionsOf(e.tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range regions {
		if err := e.c.Server(ri.Server).Flush(ri.ID); err != nil {
			t.Fatal(err)
		}
	}
	if depth := e.m.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth after flush = %d, want 0 (drain-before-flush)", depth)
	}
	for i := 0; i < n; i++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("t%03d", i))
		if len(rows) != 1 || rows[0] != fmt.Sprintf("item%03d", i) {
			t.Fatalf("t%03d → %v after flush", i, rows)
		}
	}
}

// TestBackfillUsesBatchedRPCs checks that creating an index over existing
// rows ships the backfill entries region-batched: far fewer Apply RPCs than
// index cells.
func TestBackfillUsesBatchedRPCs(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	const n = 40
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("t%03d", i))
	}
	rpcs0, cells0 := e.m.ApplyStats()
	def := e.createIndex(t, SyncFull, "title")
	rpcs, cells := e.m.ApplyStats()
	if got := cells - cells0; got != n {
		t.Errorf("backfill cells = %d, want %d", got, n)
	}
	if got := rpcs - rpcs0; got >= n/2 {
		t.Errorf("backfill RPCs = %d for %d cells: not batched", got, n)
	}
	if entries := e.rawIndexEntries(t, def); len(entries) != n {
		t.Errorf("index entries after backfill = %d, want %d", len(entries), n)
	}
}

// TestCacheStatsRollup sanity-checks the per-server block-cache stats
// accessor feeding HotPathStats.
func TestCacheStatsRollup(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.put(t, "item001", "title", "alpha")
	if err := e.c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Two disk-backed reads: the second must hit the block cache.
	for i := 0; i < 2; i++ {
		if _, _, ok, err := e.cl.Get(e.tbl, []byte("item001"), "title"); err != nil || !ok {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
	var hits, misses int64
	for _, id := range e.c.ServerIDs() {
		h, m := e.c.Server(id).CacheStats()
		hits += h
		misses += m
	}
	if misses == 0 || hits == 0 {
		t.Errorf("cache stats hits=%d misses=%d, want both > 0", hits, misses)
	}
}
