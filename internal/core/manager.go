package core

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// ManagerOptions tunes the Diff-Index runtime.
type ManagerOptions struct {
	// QueueCapacity bounds each region's AUQ ("by assigning a large-size
	// AUQ the workload surge can be largely absorbed", §8.2). Defaults to
	// 4096.
	QueueCapacity int
	// Workers is the number of APS workers per region. Defaults to 2.
	Workers int
	// StalenessSampleEvery samples every Nth AUQ completion into the
	// staleness histogram — the paper samples 0.1% of inserted entries
	// (§8.2). Defaults to 1 (sample everything; experiments that need the
	// paper's 0.1% set 1000).
	StalenessSampleEvery int
	// SessionTTL is the inactivity limit after which a session expires
	// (§5.2 uses 30 minutes). Defaults to 30 minutes.
	SessionTTL time.Duration
	// SessionMaxBytes caps a session's private-table memory; beyond it,
	// session consistency is automatically disabled (§5.2). Defaults to
	// 1 MiB.
	SessionMaxBytes int64
	// DisableDrainOnFlush turns OFF the drain-AUQ-before-flush protocol
	// (§5.3). Unsafe: after a flush truncates the WAL, pending AUQ entries
	// for flushed data cannot be reconstructed by replay, so a crash loses
	// index updates permanently. Exists only for the ablation experiment
	// demonstrating exactly that failure.
	DisableDrainOnFlush bool
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 4096
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.StalenessSampleEvery <= 0 {
		o.StalenessSampleEvery = 1
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 30 * time.Minute
	}
	if o.SessionMaxBytes <= 0 {
		o.SessionMaxBytes = 1 << 20
	}
	return o
}

// Manager is the Diff-Index runtime: it owns the catalog, the per-region
// AUQs, the per-server clients used for server-side index maintenance, and
// the operation counters. One Manager serves a whole cluster.
type Manager struct {
	cluster *cluster.Cluster
	catalog *Catalog
	opts    ManagerOptions

	// Counters instruments I/O along the axes of Table 2.
	Counters OpCounters

	mu          sync.Mutex
	auqs        map[*cluster.Region]*auq
	serverConns map[string]*cluster.Client
	sampleTick  int64
	staleness   *metrics.Histogram
	advisor     *Advisor
}

// noteIndexUpdate/noteIndexRead report per-index activity to the attached
// advisor, if any.
func (m *Manager) noteIndexUpdate(indexName string) {
	m.mu.Lock()
	a := m.advisor
	m.mu.Unlock()
	if a != nil {
		a.noteUpdate(indexName)
	}
}

func (m *Manager) noteIndexRead(indexName string) {
	m.mu.Lock()
	a := m.advisor
	m.mu.Unlock()
	if a != nil {
		a.noteRead(indexName)
	}
}

// NewManager creates the Diff-Index runtime for a cluster.
func NewManager(c *cluster.Cluster, opts ManagerOptions) *Manager {
	return &Manager{
		cluster:     c,
		catalog:     NewCatalog(),
		opts:        opts.withDefaults(),
		auqs:        make(map[*cluster.Region]*auq),
		serverConns: make(map[string]*cluster.Client),
		staleness:   metrics.NewHistogram(),
	}
}

// Catalog exposes the index metadata catalog.
func (m *Manager) Catalog() *Catalog { return m.catalog }

// CreateIndex defines an index. For a global index it creates the
// (key-only) index table, pre-split at the given index-key routing splits;
// for a local index (def.Local) no table is created — entries live inside
// each base region (splits are ignored). The base table must exist; rows
// already in it are indexed by a backfill scan, so an index can be added to
// a populated table (the paper's index-creation utility, §7).
func (m *Manager) CreateIndex(def IndexDef, splits [][]byte) error {
	if !m.cluster.Master.HasTable(def.Table) {
		return fmt.Errorf("core: base table %s does not exist", def.Table)
	}
	if err := m.catalog.Add(def); err != nil {
		return err
	}
	// One observer per base table handles every index on it.
	m.cluster.RegisterCoprocessor(def.Table, &observer{m: m})
	if !def.Local {
		// Index tables are raw tables: their routing keys ARE their store
		// keys (v ⊕ k).
		if err := m.cluster.Master.CreateRawTable(def.Name(), splits); err != nil {
			m.catalog.Remove(def.Table, def.Name())
			return err
		}
	}
	return m.backfill(def)
}

// backfill scans the base table and writes index entries for existing rows,
// carrying each row's base timestamps (same-timestamp rule, §4.3).
func (m *Manager) backfill(def IndexDef) error {
	cl := m.clientFor("diffindex-backfill")
	// Scan base data only: local-index entries of other indexes live below
	// BaseDataStart in the same stores.
	results, err := cl.RawScan(def.Table, kv.BaseDataStart, nil, kv.MaxTimestamp, 0)
	if err != nil {
		return err
	}
	var (
		curRow []byte
		cols   map[string][]byte
		maxTs  kv.Timestamp
	)
	emit := func() error {
		if cols == nil {
			return nil
		}
		if v, ok := indexValue(def, cols); ok {
			cell := kv.Cell{Ts: maxTs, Kind: kv.KindPut}
			var err error
			if def.Local {
				// Local entries route by ROW so they land in the row's own
				// region.
				cell.Key = kv.LocalIndexKey(def.Name(), v, curRow)
				err = cl.RawApply(def.Table, curRow, []kv.Cell{cell})
			} else {
				cell.Key = kv.IndexKey(v, curRow)
				err = cl.RawApply(def.Name(), cell.Key, []kv.Cell{cell})
			}
			if err != nil {
				return err
			}
			m.Counters.IndexPut.Inc()
		}
		cols, maxTs = nil, 0
		return nil
	}
	for _, res := range results {
		row, col, err := kv.SplitBaseKey(res.Key)
		if err != nil {
			return err
		}
		if cols == nil || !bytes.Equal(row, curRow) {
			if err := emit(); err != nil {
				return err
			}
			curRow = append([]byte(nil), row...)
			cols = make(map[string][]byte)
		}
		cols[string(col)] = res.Value
		if res.Ts > maxTs {
			maxTs = res.Ts
		}
	}
	return emit()
}

// DropIndex removes an index definition and forgets its metadata. The index
// table's regions remain until the table is dropped (our master has no table
// deletion, like early HBase required disable-then-drop; callers simply stop
// routing to it).
func (m *Manager) DropIndex(table, name string) bool {
	return m.catalog.Remove(table, name)
}

// clientFor returns (creating if needed) the cluster client whose simnet
// node is name — index maintenance issued on region server rs3 must pay
// rs3→indexserver network latency, so each server gets its own client.
func (m *Manager) clientFor(name string) *cluster.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	cl, ok := m.serverConns[name]
	if !ok {
		cl = cluster.NewClient(m.cluster, name)
		m.serverConns[name] = cl
	}
	return cl
}

// auqFor returns (creating if needed) the AUQ of a region.
func (m *Manager) auqFor(ctx cluster.RegionCtx) *auq {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.auqs[ctx.Region]
	if !ok {
		q = newAUQ(m, ctx)
		m.auqs[ctx.Region] = q
	}
	return q
}

func (m *Manager) dropAUQ(region *cluster.Region) *auq {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.auqs[region]
	delete(m.auqs, region)
	return q
}

// QueueDepth sums pending AUQ tasks across all regions — zero means every
// asynchronous index update has been applied.
func (m *Manager) QueueDepth() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, q := range m.auqs {
		total += q.depth()
	}
	return total
}

// WaitForConvergence blocks until the AUQs are empty or the timeout
// elapses, reporting whether convergence was reached.
func (m *Manager) WaitForConvergence(timeout time.Duration) bool {
	return cluster.WaitFor(timeout, func() bool { return m.QueueDepth() == 0 })
}

// observeStaleness records one AUQ completion's index-after-data time lag
// (T2 − T1, §8.2), subject to sampling.
func (m *Manager) observeStaleness(enqueuedAt time.Time) {
	m.mu.Lock()
	m.sampleTick++
	sample := m.sampleTick%int64(m.opts.StalenessSampleEvery) == 0
	m.mu.Unlock()
	if sample {
		m.staleness.RecordDuration(time.Since(enqueuedAt))
	}
}

// Staleness exposes the index-staleness histogram (Figure 11's measurement).
func (m *Manager) Staleness() *metrics.Histogram { return m.staleness }

// ResetStaleness replaces the staleness histogram, for per-phase
// measurements.
func (m *Manager) ResetStaleness() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.staleness = metrics.NewHistogram()
}

// covered reports whether the mutation in t can affect the index.
func covered(def IndexDef, t task) bool {
	return (t.putCols != nil && def.Covers(t.putCols)) || (t.delCols != nil && def.CoversNames(t.delCols))
}

// applyIndexUpdates is the APS's work function (Algorithm 4): it applies
// the mutation to the asynchronous indexes it covers — or to every index
// when the task is a replay/failure redelivery (t.allIndexes).
func (m *Manager) applyIndexUpdates(ctx cluster.RegionCtx, t task, async bool) error {
	var relevant []IndexDef
	for _, def := range m.catalog.IndexesOn(ctx.Region.Info.Table) {
		if covered(def, t) && (t.allIndexes || (!def.Local && def.Scheme.Asynchronous())) {
			relevant = append(relevant, def)
		}
	}
	return m.applyIndexUpdatesFor(ctx, t, async, relevant)
}

// applyIndexUpdatesFor performs index maintenance for one base mutation
// against the given indexes: the shared core of Algorithm 1 (sync-full,
// async=false) and Algorithm 4 (APS, async=true). It reads the row's
// pre-image at ts−δ once, then per index deletes the superseded entry at
// ts−δ and inserts the new entry at ts. Index-table operations ride the
// calling server's network identity.
func (m *Manager) applyIndexUpdatesFor(ctx cluster.RegionCtx, t task, async bool, relevant []IndexDef) error {
	if len(relevant) == 0 {
		return nil
	}

	// R_B(k, t_new − δ): one local read of the row's pre-image (§4.1 SU3 /
	// Algorithm 4 BA2). Local because the observer/APS runs on the server
	// hosting the base region.
	oldCols, err := ctx.Region.LocalGetRow(t.row, t.ts-kv.Delta)
	if err != nil {
		return err
	}
	if async {
		m.Counters.AsyncBaseRead.Inc()
	} else {
		m.Counters.BaseRead.Inc()
	}

	// The row's post-image: pre-image overlaid with this mutation.
	newCols := make(map[string][]byte, len(oldCols)+len(t.putCols))
	for c, v := range oldCols {
		newCols[c] = v
	}
	for c, v := range t.putCols {
		newCols[c] = v
	}
	for _, c := range t.delCols {
		delete(newCols, c)
	}

	conn := m.clientFor(ctx.Server.ID())
	var firstErr error
	for _, def := range relevant {
		oldVal, hadOld := indexValue(def, oldCols)
		newVal, hasNew := indexValue(def, newCols)

		// writeCell applies one index mutation. Global entries are remote
		// RPCs routed by the index key. Local entries live in THIS region's
		// own store and are written gate-free via ApplyBatchLocked:
		// acquiring the write gate here would deadlock, and ordering with
		// flushes is already guaranteed — the synchronous path runs inside
		// the put pipeline (gate held by the caller), and the APS path runs
		// from this region's own AUQ, which a flush drains to completion
		// before swapping the memtable.
		writeCell := func(v []byte, cell kv.Cell) error {
			if def.Local {
				cell.Key = kv.LocalIndexKey(def.Name(), v, t.row)
				return ctx.Region.Store().ApplyBatchLocked([]kv.Cell{cell})
			}
			cell.Key = kv.IndexKey(v, t.row)
			return conn.RawApply(def.Name(), cell.Key, []kv.Cell{cell})
		}

		// D_I(v_old ⊕ k, t_new − δ): remove the superseded entry. The δ
		// ensures we never delete the entry just inserted at t_new when
		// v_old == v_new (§4.3) — and when values are equal we skip the
		// delete entirely, as nothing is superseded.
		if hadOld && (!hasNew || !bytes.Equal(oldVal, newVal)) {
			if err := writeCell(oldVal, kv.Cell{Ts: t.ts - kv.Delta, Kind: kv.KindDelete}); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if async {
				m.Counters.AsyncIndexDel.Inc()
			} else {
				m.Counters.IndexDel.Inc()
			}
		}

		// P_I(v_new ⊕ k, t_new): insert the new key-only entry with the
		// base entry's timestamp (§4.3's same-timestamp rule).
		if hasNew {
			if err := writeCell(newVal, kv.Cell{Ts: t.ts, Kind: kv.KindPut}); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if async {
				m.Counters.AsyncIndexPut.Inc()
			} else {
				m.Counters.IndexPut.Inc()
			}
		}
	}
	return firstErr
}
