package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// ManagerOptions tunes the Diff-Index runtime.
type ManagerOptions struct {
	// QueueCapacity bounds each region's AUQ ("by assigning a large-size
	// AUQ the workload surge can be largely absorbed", §8.2). Defaults to
	// 4096.
	QueueCapacity int
	// Workers is the number of APS workers per region. Defaults to 2.
	Workers int
	// APSBatch bounds how many queued tasks one APS worker drains at once
	// (non-blocking after the first receive) and coalesces into
	// region-batched index applies — the micro-batching bound K. 1
	// disables batching. Defaults to 16.
	APSBatch int
	// MaxBacklog, when > 0, is the AUQ admission-control cap: a region's
	// pending asynchronous index work may not exceed it. An arrival that
	// would is SHED TO SYNC — its index maintenance runs inline on the
	// writer, degrading that put to the synchronous path. Shedding bounds
	// both the backlog and index staleness (an admitted entry never waits
	// behind more than MaxBacklog predecessors), trading write latency for
	// them exactly as the scheme table (Table 1) predicts. 0 disables the
	// cap: the queue blocks at QueueCapacity as before.
	MaxBacklog int
	// StalenessSampleEvery samples every Nth AUQ completion into the
	// staleness histogram — the paper samples 0.1% of inserted entries
	// (§8.2). Defaults to 1 (sample everything; experiments that need the
	// paper's 0.1% set 1000).
	StalenessSampleEvery int
	// SessionTTL is the inactivity limit after which a session expires
	// (§5.2 uses 30 minutes). Defaults to 30 minutes.
	SessionTTL time.Duration
	// SessionMaxBytes caps a session's private-table memory; beyond it,
	// session consistency is automatically disabled (§5.2). Defaults to
	// 1 MiB.
	SessionMaxBytes int64
	// DisableDrainOnFlush turns OFF the drain-AUQ-before-flush protocol
	// (§5.3). Unsafe: after a flush truncates the WAL, pending AUQ entries
	// for flushed data cannot be reconstructed by replay, so a crash loses
	// index updates permanently. Exists only for the ablation experiment
	// demonstrating exactly that failure.
	DisableDrainOnFlush bool
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 4096
	}
	if o.MaxBacklog > 0 {
		// With admission control on, the channel IS the cap: admitted sends
		// (pending ≤ MaxBacklog) never block, while the shed path's
		// can't-apply-inline fallback and WAL-replay refill block at the cap
		// instead of growing the backlog past it — recovery gets
		// backpressure, not an exemption.
		o.QueueCapacity = o.MaxBacklog
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.APSBatch <= 0 {
		o.APSBatch = 16
	}
	if o.StalenessSampleEvery <= 0 {
		o.StalenessSampleEvery = 1
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = 30 * time.Minute
	}
	if o.SessionMaxBytes <= 0 {
		o.SessionMaxBytes = 1 << 20
	}
	return o
}

// Manager is the Diff-Index runtime: it owns the catalog, the per-region
// AUQs, the per-server clients used for server-side index maintenance, and
// the operation counters. One Manager serves a whole cluster.
type Manager struct {
	cluster *cluster.Cluster
	catalog *Catalog
	opts    ManagerOptions

	// Counters instruments I/O along the axes of Table 2.
	Counters OpCounters

	// applyStats counts index-maintenance RPC fan-out (Apply RPCs issued
	// vs. cells shipped) across every server-side client; shared so the
	// roll-up covers all servers.
	applyStats cluster.ApplyStats
	// apsBatch records the size of every APS micro-batch one worker
	// drained and applied together.
	apsBatch *metrics.Histogram
	// shedTotal counts AUQ arrivals shed to the synchronous path by the
	// MaxBacklog admission cap, across all regions.
	shedTotal atomic.Int64
	// replayInflight counts replayed cells whose background re-dispatch
	// (OpenRegion's OnReplay loop) has not finished yet; QueueDepth includes
	// it so convergence waits cover work that is not yet back in an AUQ.
	replayInflight atomic.Int64

	// reg is the cluster-wide metrics registry; staleness and apsBatch are
	// registry-owned histograms, so the legacy accessors and
	// DB.MetricsSnapshot read the same instruments.
	reg *metrics.Registry

	mu          sync.Mutex
	auqs        map[*cluster.Region]*auq
	serverConns map[string]*cluster.Client
	sampleTick  int64
	staleness   *metrics.Histogram
	advisor     *Advisor
}

// noteIndexUpdate/noteIndexRead report per-index activity to the attached
// advisor, if any.
func (m *Manager) noteIndexUpdate(indexName string) {
	m.mu.Lock()
	a := m.advisor
	m.mu.Unlock()
	if a != nil {
		a.noteUpdate(indexName)
	}
}

func (m *Manager) noteIndexRead(indexName string) {
	m.mu.Lock()
	a := m.advisor
	m.mu.Unlock()
	if a != nil {
		a.noteRead(indexName)
	}
}

// NewManager creates the Diff-Index runtime for a cluster.
func NewManager(c *cluster.Cluster, opts ManagerOptions) *Manager {
	reg := c.Metrics()
	m := &Manager{
		cluster:     c,
		catalog:     NewCatalog(),
		opts:        opts.withDefaults(),
		reg:         reg,
		auqs:        make(map[*cluster.Region]*auq),
		serverConns: make(map[string]*cluster.Client),
		Counters:    newOpCounters(reg),
		staleness:   reg.Histogram("diffindex_staleness_ns"),
		apsBatch:    reg.Histogram("diffindex_aps_batch_size"),
	}
	// Computed gauges over runtime state. They take m.mu / the ApplyStats
	// counters at read time; the registry evaluates them outside its own
	// lock, so no lock-ordering cycle.
	reg.RegisterGaugeFunc("diffindex_auq_depth", m.QueueDepth)
	reg.RegisterGaugeFunc("diffindex_apply_rpcs_total", m.applyStats.RPCs.Load)
	reg.RegisterGaugeFunc("diffindex_apply_cells_total", m.applyStats.Cells.Load)
	return m
}

// stageHist resolves the stage-latency histogram for a stage on a base
// table, with optional extra labels (e.g. the index scheme).
func (m *Manager) stageHist(stage, table string, extra ...metrics.Label) *metrics.Histogram {
	labels := append([]metrics.Label{metrics.L("stage", stage), metrics.L("table", table)}, extra...)
	return m.reg.Histogram("diffindex_stage_latency_ns", labels...)
}

// ApplyStats reports the cumulative index-maintenance fan-out: Apply RPCs
// delivered to region servers and the cells those RPCs carried. With
// region-batched maintenance, Cells/RPCs > 1 measures the batching win.
func (m *Manager) ApplyStats() (rpcs, cells int64) {
	return m.applyStats.RPCs.Load(), m.applyStats.Cells.Load()
}

// APSBatchSizes exposes the histogram of APS micro-batch sizes (tasks per
// drained batch); its mean is the paper-facing "mean APS batch size" metric.
func (m *Manager) APSBatchSizes() *metrics.Histogram { return m.apsBatch }

// Catalog exposes the index metadata catalog.
func (m *Manager) Catalog() *Catalog { return m.catalog }

// CreateIndex defines an index. For a global index it creates the
// (key-only) index table, pre-split at the given index-key routing splits;
// for a local index (def.Local) no table is created — entries live inside
// each base region (splits are ignored). The base table must exist; rows
// already in it are indexed by a backfill scan, so an index can be added to
// a populated table (the paper's index-creation utility, §7).
func (m *Manager) CreateIndex(def IndexDef, splits [][]byte) error {
	if !m.cluster.Master.HasTable(def.Table) {
		return fmt.Errorf("core: base table %s does not exist", def.Table)
	}
	if err := m.catalog.Add(def); err != nil {
		return err
	}
	// One observer per base table handles every index on it.
	m.cluster.RegisterCoprocessor(def.Table, &observer{m: m})
	if !def.Local {
		// Index-table stores must never drop delete markers at compaction:
		// async delivery is at-least-once, and a redelivered stale-entry
		// insert stays masked only while its tombstone survives.
		m.cluster.RetainTombstones(def.Name())
		// Index tables are raw tables: their routing keys ARE their store
		// keys (v ⊕ k).
		if err := m.cluster.Master.CreateRawTable(def.Name(), splits); err != nil {
			m.catalog.Remove(def.Table, def.Name())
			return err
		}
	}
	return m.backfill(def)
}

// backfill scans the base table and writes index entries for existing rows,
// carrying each row's base timestamps (same-timestamp rule, §4.3).
func (m *Manager) backfill(def IndexDef) error {
	cl := m.clientFor("diffindex-backfill")
	// Scan base data only: local-index entries of other indexes live below
	// BaseDataStart in the same stores.
	results, err := cl.RawScan(def.Table, kv.BaseDataStart, nil, kv.MaxTimestamp, 0)
	if err != nil {
		return err
	}
	// backfillChunk bounds the global-index cell batch flushed in one
	// region-batched MultiApply.
	const backfillChunk = 256
	var (
		curRow []byte
		cols   map[string][]byte
		maxTs  kv.Timestamp
		batch  []kv.Cell // pending global-index entries
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := cl.MultiApply(def.Name(), batch); err != nil {
			return err
		}
		m.Counters.IndexPut.Add(int64(len(batch)))
		batch = batch[:0]
		return nil
	}
	emit := func() error {
		if cols == nil {
			return nil
		}
		if v, ok := indexValue(def, cols); ok {
			cell := kv.Cell{Ts: maxTs, Kind: kv.KindPut}
			if def.Local {
				// Local entries route by ROW so they land in the row's own
				// region — they cannot ride the key-routed MultiApply batch.
				cell.Key = kv.LocalIndexKey(def.Name(), v, curRow)
				if err := cl.RawApply(def.Table, curRow, []kv.Cell{cell}); err != nil {
					return err
				}
				m.Counters.IndexPut.Inc()
			} else {
				cell.Key = kv.IndexKey(v, curRow)
				batch = append(batch, cell)
				if len(batch) >= backfillChunk {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		cols, maxTs = nil, 0
		return nil
	}
	for _, res := range results {
		row, col, err := kv.SplitBaseKey(res.Key)
		if err != nil {
			return err
		}
		if cols == nil || !bytes.Equal(row, curRow) {
			if err := emit(); err != nil {
				return err
			}
			curRow = append([]byte(nil), row...)
			cols = make(map[string][]byte)
		}
		cols[string(col)] = res.Value
		if res.Ts > maxTs {
			maxTs = res.Ts
		}
	}
	if err := emit(); err != nil {
		return err
	}
	return flush()
}

// DropIndex removes an index definition and forgets its metadata. The index
// table's regions remain until the table is dropped (our master has no table
// deletion, like early HBase required disable-then-drop; callers simply stop
// routing to it).
func (m *Manager) DropIndex(table, name string) bool {
	return m.catalog.Remove(table, name)
}

// clientFor returns (creating if needed) the cluster client whose simnet
// node is name — index maintenance issued on region server rs3 must pay
// rs3→indexserver network latency, so each server gets its own client.
func (m *Manager) clientFor(name string) *cluster.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	cl, ok := m.serverConns[name]
	if !ok {
		cl = cluster.NewClient(m.cluster, name)
		cl.SetApplyStats(&m.applyStats)
		m.serverConns[name] = cl
	}
	return cl
}

// auqFor returns (creating if needed) the AUQ of a region. A straggler
// enqueue racing a region close (balancer move, decommission, merge) must
// not resurrect the killed queue: the work it carries is reconstructed by
// WAL replay at the region's new host, so it gets a dead stub that drops
// the task instead of a live queue no close will ever tear down.
func (m *Manager) auqFor(ctx cluster.RegionCtx) *auq {
	// The queue outlives the operation that created it: never retain the
	// originating operation's trace in the queue's context.
	ctx.Trace = nil
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.auqs[ctx.Region]
	if !ok {
		if ctx.Region.Store().Closed() {
			q = &auq{m: m, ctx: ctx}
			q.killed.Store(true)
			return q
		}
		q = newAUQ(m, ctx)
		m.auqs[ctx.Region] = q
	}
	return q
}

func (m *Manager) dropAUQ(region *cluster.Region) *auq {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.auqs[region]
	delete(m.auqs, region)
	return q
}

// QueueDepth sums pending AUQ tasks across all regions — zero means every
// asynchronous index update has been applied.
func (m *Manager) QueueDepth() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.replayInflight.Load()
	for _, q := range m.auqs {
		total += q.depth()
	}
	return total
}

// MaxRegionQueueDepth returns the largest single-region AUQ backlog — with
// admission control on (MaxBacklog > 0) it must never exceed the cap.
func (m *Manager) MaxRegionQueueDepth() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max int64
	for _, q := range m.auqs {
		if d := q.depth(); d > max {
			max = d
		}
	}
	return max
}

// ShedTotal counts the AUQ arrivals degraded to synchronous index
// maintenance by the MaxBacklog admission cap.
func (m *Manager) ShedTotal() int64 { return m.shedTotal.Load() }

// WaitForConvergence blocks until the AUQs are empty or the timeout
// elapses, reporting whether convergence was reached.
func (m *Manager) WaitForConvergence(timeout time.Duration) bool {
	return cluster.WaitFor(timeout, func() bool { return m.QueueDepth() == 0 })
}

// observeStaleness records one AUQ completion's index-after-data time lag
// (T2 − T1, §8.2), subject to sampling.
func (m *Manager) observeStaleness(enqueuedAt time.Time) {
	m.mu.Lock()
	m.sampleTick++
	sample := m.sampleTick%int64(m.opts.StalenessSampleEvery) == 0
	m.mu.Unlock()
	if sample {
		m.staleness.RecordDuration(time.Since(enqueuedAt))
	}
}

// Staleness exposes the index-staleness histogram (Figure 11's measurement).
func (m *Manager) Staleness() *metrics.Histogram { return m.staleness }

// ResetStaleness zeroes the staleness histogram, for per-phase
// measurements. The histogram is registry-owned, so it is reset in place
// rather than replaced.
func (m *Manager) ResetStaleness() {
	m.staleness.Reset()
}

// covered reports whether the mutation in t can affect the index.
func covered(def IndexDef, t task) bool {
	return (t.putCols != nil && def.Covers(t.putCols)) || (t.delCols != nil && def.CoversNames(t.delCols))
}

// relevantIndexes selects the indexes a task must maintain on the APS path:
// asynchronous indexes it covers — or every covered index when the task is
// a replay/failure redelivery (t.allIndexes).
func (m *Manager) relevantIndexes(ctx cluster.RegionCtx, t task) []IndexDef {
	var relevant []IndexDef
	for _, def := range m.catalog.IndexesOn(ctx.Region.Info.Table) {
		if covered(def, t) && (t.allIndexes || (!def.Local && def.Scheme.Asynchronous())) {
			relevant = append(relevant, def)
		}
	}
	return relevant
}

// indexMutations holds the index cells computed for one or more base
// mutations, separated by destination: local-index cells live in the base
// region's own store; global cells are grouped per index table so each
// table's batch ships in one region-batched MultiApply.
type indexMutations struct {
	local  []kv.Cell
	global map[string][]kv.Cell
}

func (mu *indexMutations) empty() bool { return len(mu.local) == 0 && len(mu.global) == 0 }

// merge appends other's cells into mu (the APS micro-batch coalescing step).
func (mu *indexMutations) merge(other indexMutations) {
	mu.local = append(mu.local, other.local...)
	for table, cells := range other.global {
		if mu.global == nil {
			mu.global = make(map[string][]kv.Cell)
		}
		mu.global[table] = append(mu.global[table], cells...)
	}
}

// buildIndexMutations computes the index maintenance for one base mutation
// against the given indexes without performing any index-table I/O: the
// read-and-compute half of Algorithm 1 (sync-full, async=false) and
// Algorithm 4 (APS, async=true). It reads the row's pre-image at ts−δ once,
// then per index emits a delete of the superseded entry at ts−δ and an
// insert of the new entry at ts.
func (m *Manager) buildIndexMutations(ctx cluster.RegionCtx, t task, async bool, relevant []IndexDef) (indexMutations, error) {
	var muts indexMutations
	if len(relevant) == 0 {
		return muts, nil
	}

	// R_B(k, t_new − δ): one local read of the row's pre-image (§4.1 SU3 /
	// Algorithm 4 BA2). Local because the observer/APS runs on the server
	// hosting the base region.
	oldCols, err := ctx.Region.LocalGetRow(t.row, t.ts-kv.Delta)
	if err != nil {
		return muts, err
	}
	if async {
		m.Counters.AsyncBaseRead.Inc()
	} else {
		m.Counters.BaseRead.Inc()
	}

	// The row's post-image: pre-image overlaid with this mutation.
	newCols := make(map[string][]byte, len(oldCols)+len(t.putCols))
	for c, v := range oldCols {
		newCols[c] = v
	}
	for c, v := range t.putCols {
		newCols[c] = v
	}
	for _, c := range t.delCols {
		delete(newCols, c)
	}

	emit := func(def IndexDef, v []byte, cell kv.Cell) {
		if def.Local {
			cell.Key = kv.LocalIndexKey(def.Name(), v, t.row)
			muts.local = append(muts.local, cell)
			return
		}
		cell.Key = kv.IndexKey(v, t.row)
		if muts.global == nil {
			muts.global = make(map[string][]kv.Cell)
		}
		muts.global[def.Name()] = append(muts.global[def.Name()], cell)
	}
	for _, def := range relevant {
		oldVal, hadOld := indexValue(def, oldCols)
		newVal, hasNew := indexValue(def, newCols)

		// D_I(v_old ⊕ k, t_new − δ): remove the superseded entry. The δ
		// ensures we never delete the entry just inserted at t_new when
		// v_old == v_new (§4.3) — and when values are equal we skip the
		// delete entirely, as nothing is superseded.
		if hadOld && (!hasNew || !bytes.Equal(oldVal, newVal)) {
			emit(def, oldVal, kv.Cell{Ts: t.ts - kv.Delta, Kind: kv.KindDelete})
		}
		// P_I(v_new ⊕ k, t_new): insert the new key-only entry with the
		// base entry's timestamp (§4.3's same-timestamp rule).
		if hasNew {
			emit(def, newVal, kv.Cell{Ts: t.ts, Kind: kv.KindPut})
		}
	}
	return muts, nil
}

// applyMutations ships computed index cells. Global entries go through the
// calling server's client as ONE MultiApply per index table — one RPC per
// destination region instead of one per cell. Local entries live in THIS
// region's own store and are written gate-free in one batch via
// ApplyBatchLocked: acquiring the write gate here would deadlock, and
// ordering with flushes is already guaranteed — the synchronous path runs
// inside the put pipeline (gate held by the caller), and the APS path runs
// from this region's own AUQ, which a flush drains to completion before
// swapping the memtable.
func (m *Manager) applyMutations(ctx cluster.RegionCtx, async bool, muts indexMutations) error {
	var firstErr error
	if len(muts.local) > 0 {
		// Local cells are the row region's own writes: attribute them to the
		// index-local stage rather than re-counting their wal/memtable time
		// on the operation's trace.
		localStart := time.Now()
		if err := ctx.Region.Store().ApplyBatchLocked(muts.local, nil); err != nil {
			firstErr = err
		} else {
			m.countIndexCells(muts.local, async)
		}
		d := time.Since(localStart)
		m.stageHist(metrics.StageIndexLocal, ctx.Region.Info.Table).RecordDuration(d)
		ctx.Trace.AddStage(metrics.StageIndexLocal, d)
	}
	if len(muts.global) > 0 {
		conn := m.clientFor(ctx.Server.ID())
		for table, cells := range muts.global {
			if err := conn.MultiApply(table, cells); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			m.countIndexCells(cells, async)
		}
	}
	return firstErr
}

// countIndexCells bumps the Table 2 counters for durably applied index cells.
func (m *Manager) countIndexCells(cells []kv.Cell, async bool) {
	var puts, dels int64
	for _, c := range cells {
		if c.Kind == kv.KindDelete {
			dels++
		} else {
			puts++
		}
	}
	if async {
		m.Counters.AsyncIndexPut.Add(puts)
		m.Counters.AsyncIndexDel.Add(dels)
	} else {
		m.Counters.IndexPut.Add(puts)
		m.Counters.IndexDel.Add(dels)
	}
}

// applyIndexUpdatesFor performs index maintenance for one base mutation
// against the given indexes: compute the cells, then ship them batched.
func (m *Manager) applyIndexUpdatesFor(ctx cluster.RegionCtx, t task, async bool, relevant []IndexDef) error {
	muts, err := m.buildIndexMutations(ctx, t, async, relevant)
	if err != nil {
		return err
	}
	return m.applyMutations(ctx, async, muts)
}

// applyIndexBatch performs one attempt at the micro-batched Algorithm 4: it
// builds the mutations of every task in the batch, coalesces them by
// destination index table, and ships each table's cells in one MultiApply.
// It returns nil only when EVERY task's cells are durable — the caller may
// then mark all of them complete, preserving the drain-before-flush
// invariant (a task's pending count drops only after its work is durable).
func (m *Manager) applyIndexBatch(ctx cluster.RegionCtx, batch []task) error {
	var all indexMutations
	for _, t := range batch {
		muts, err := m.buildIndexMutations(ctx, t, true, m.relevantIndexes(ctx, t))
		if err != nil {
			return err
		}
		all.merge(muts)
	}
	if all.empty() {
		return nil
	}
	return m.applyMutations(ctx, true, all)
}
