package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// IndexHit is one index lookup result: a base-table row key and the
// timestamp of the index entry that produced it.
type IndexHit struct {
	Row []byte
	Ts  kv.Timestamp
}

// GetByIndex looks up the base-table row keys whose indexed column(s) equal
// value — the client-side getByIndex API (§7). For a composite index, value
// must be the composite encoding of all column values (see IndexValueOf).
//
// Consistency depends on the index's scheme: sync-full results are causal
// consistent; sync-insert results are made consistent by the double-check-
// and-clean of Algorithm 2 (stale entries are deleted as they are found);
// async results are eventually consistent and may be stale (§5.1) — session
// consistency is layered on top by Session.GetByIndex.
func (m *Manager) GetByIndex(cl *cluster.Client, table string, columns []string, value []byte) ([]IndexHit, error) {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return nil, fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	tr := m.cluster.Tracer().Start("index-get", table)
	defer m.cluster.Tracer().Finish(tr)
	if def.Local {
		lo, hi := kv.LocalIndexValueRange(def.Name(), value, value)
		return m.readLocalIndex(cl, def, lo, hi, 0, tr)
	}
	prefix := kv.IndexValuePrefix(value)
	return m.readIndex(cl, def, prefix, kv.PrefixSuccessor(prefix), 0, tr)
}

// RangeByIndex returns rows whose indexed value v satisfies low ≤ v ≤ high
// (inclusive; nil high = unbounded), up to limit hits — the range-query path
// of §8.2 ("Range query with index"). Results arrive in index-value order.
func (m *Manager) RangeByIndex(cl *cluster.Client, table string, columns []string, low, high []byte, limit int) ([]IndexHit, error) {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return nil, fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	tr := m.cluster.Tracer().Start("index-range", table)
	defer m.cluster.Tracer().Finish(tr)
	if def.Local {
		lo, hi := kv.LocalIndexValueRange(def.Name(), low, high)
		return m.readLocalIndex(cl, def, lo, hi, limit, tr)
	}
	lo, hi := kv.IndexValueRange(low, high)
	return m.readIndex(cl, def, lo, hi, limit, tr)
}

// readIndex scans the index table and, for sync-insert, runs Algorithm 2:
// every hit is double-checked against the base table and stale entries are
// deleted from the index.
func (m *Manager) readIndex(cl *cluster.Client, def IndexDef, lo, hi []byte, limit int, tr *metrics.Trace) ([]IndexHit, error) {
	// SR1: read the index table.
	scanStart := time.Now()
	entries, err := cl.RawScan(def.Name(), lo, hi, kv.MaxTimestamp, limit)
	scanDur := time.Since(scanStart)
	m.stageHist(metrics.StageIndexScan, def.Table).RecordDuration(scanDur)
	tr.AddStage(metrics.StageIndexScan, scanDur)
	if err != nil {
		return nil, err
	}
	m.Counters.IndexRead.Inc()
	m.noteIndexRead(def.Name())

	// Split every entry up front so SR2 can batch all double checks.
	vals := make([][]byte, len(entries))
	rows := make([][]byte, len(entries))
	for i, e := range entries {
		val, row, err := kv.SplitIndexKey(e.Key)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt index key in %s: %w", def.Name(), err)
		}
		vals[i], rows[i] = val, row
	}

	// SR2: double check, batched. One region-grouped MultiGet wave reads
	// every entry's indexed base columns; a mismatch with the entry's index
	// value means the entry is stale — its delete joins the batched repair
	// below. The wave replaces len(entries) × len(def.Columns) serial Get
	// round trips with one concurrent RPC per destination region.
	var keep []bool
	if def.Scheme == SyncInsert && len(entries) > 0 {
		checkStart := time.Now()
		var err error
		keep, err = m.doubleCheckBatch(cl, def, vals, rows)
		checkDur := time.Since(checkStart)
		m.stageHist(metrics.StageCheck, def.Table).RecordDuration(checkDur)
		tr.AddStage(metrics.StageCheck, checkDur)
		if err != nil {
			return nil, err
		}
	}

	hits := make([]IndexHit, 0, len(entries))
	var repairs []kv.Cell // stale entries to delete, shipped as one batch
	for i, e := range entries {
		if keep != nil && !keep[i] {
			repairs = append(repairs, kv.Cell{
				Key:  append([]byte(nil), e.Key...),
				Ts:   e.Ts,
				Kind: kv.KindDelete,
			})
			continue
		}
		hits = append(hits, IndexHit{Row: append([]byte(nil), rows[i]...), Ts: e.Ts})
	}
	// Algorithm 2's clean step, region-batched: all stale entries found by
	// this read are deleted with one Apply per destination region instead
	// of one RPC each.
	if len(repairs) > 0 {
		repairStart := time.Now()
		err := cl.MultiApply(def.Name(), repairs)
		repairDur := time.Since(repairStart)
		m.stageHist(metrics.StageRepair, def.Table).RecordDuration(repairDur)
		tr.AddStage(metrics.StageRepair, repairDur)
		if err != nil {
			return nil, err
		}
		m.Counters.IndexDel.Add(int64(len(repairs)))
	}
	return hits, nil
}

// readLocalIndex serves a lookup against a LOCAL index: the same store-key
// scan broadcast to every region of the base table (§3.1's local-index
// query pattern). Local entries are maintained synchronously inside the
// row's region, so no double check is needed. Results are merged into
// index-value order.
func (m *Manager) readLocalIndex(cl *cluster.Client, def IndexDef, lo, hi []byte, limit int, tr *metrics.Trace) ([]IndexHit, error) {
	// The limit is pushed down per region: each region returns at most
	// limit entries, and since the global smallest limit entries are always
	// among the union of per-region smallest limit entries, the sort-and-
	// truncate below still yields the exact answer.
	scanStart := time.Now()
	entries, err := cl.BroadcastScan(def.Table, lo, hi, kv.MaxTimestamp, limit)
	scanDur := time.Since(scanStart)
	m.stageHist(metrics.StageIndexScan, def.Table).RecordDuration(scanDur)
	tr.AddStage(metrics.StageIndexScan, scanDur)
	if err != nil {
		return nil, err
	}
	m.Counters.IndexRead.Inc()
	m.noteIndexRead(def.Name())

	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].Key, entries[j].Key) < 0 })
	hits := make([]IndexHit, 0, len(entries))
	for _, e := range entries {
		_, row, err := kv.SplitLocalIndexKey(def.Name(), e.Key)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt local index key: %w", err)
		}
		hits = append(hits, IndexHit{Row: append([]byte(nil), row...), Ts: e.Ts})
		if limit > 0 && len(hits) >= limit {
			break
		}
	}
	return hits, nil
}

// doubleCheckBatch implements the check half of Algorithm 2's loop for a
// whole index read at once: compare each index entry's value with the base
// table's current value for its row. All entries' base-column reads ship in
// ONE region-grouped MultiGet wave (one concurrent RPC per destination
// region) before any keep/repair decision is made. keep[i] == false means
// entry i is stale; the caller batches its deletion (the clean half) with
// every other stale entry found by the same read.
func (m *Manager) doubleCheckBatch(cl *cluster.Client, def IndexDef, indexVals, rows [][]byte) ([]bool, error) {
	specs := make([]cluster.GetSpec, 0, len(rows)*len(def.Columns))
	for _, row := range rows {
		for _, c := range def.Columns {
			specs = append(specs, cluster.GetSpec{Route: row, Key: kv.BaseKey(row, []byte(c))})
		}
	}
	res, err := cl.MultiGet(def.Table, specs, kv.MaxTimestamp)
	if err != nil {
		return nil, err
	}
	m.Counters.BaseRead.Add(int64(len(rows)))
	keep := make([]bool, len(rows))
	for i := range rows {
		cols := make(map[string][]byte, len(def.Columns))
		for j, c := range def.Columns {
			if r := res[i*len(def.Columns)+j]; r.Found {
				cols[c] = r.Cell.Value
			}
		}
		baseVal, ok := indexValue(def, cols)
		keep[i] = ok && bytes.Equal(baseVal, indexVals[i])
	}
	return keep, nil
}

// FetchRows resolves index hits to full base rows, preserving hit order.
// Rows deleted between the index read and the fetch are skipped. All hits
// resolve in one region-grouped MultiGetRow wave — one concurrent RPC per
// destination region instead of one serial GetRow round trip per hit.
func (m *Manager) FetchRows(cl *cluster.Client, table string, hits []IndexHit) ([]cluster.Row, error) {
	rows := make([]cluster.Row, 0, len(hits))
	if len(hits) == 0 {
		return rows, nil
	}
	tr := m.cluster.Tracer().Start("fetch-rows", table)
	defer m.cluster.Tracer().Finish(tr)
	keys := make([][]byte, len(hits))
	for i, h := range hits {
		keys[i] = h.Row
	}
	waveStart := time.Now()
	colsByHit, err := cl.MultiGetRow(table, keys)
	waveDur := time.Since(waveStart)
	m.stageHist(metrics.StageMultiGet, table).RecordDuration(waveDur)
	tr.AddStage(metrics.StageMultiGet, waveDur)
	if err != nil {
		return nil, err
	}
	m.Counters.BaseRead.Add(int64(len(hits)))
	for i, cols := range colsByHit {
		if cols != nil {
			rows = append(rows, cluster.Row{Key: append([]byte(nil), hits[i].Row...), Cols: cols})
		}
	}
	return rows, nil
}

// IndexValueOf computes the index-value bytes for the given column values
// of an index — what GetByIndex expects for composite indexes.
func IndexValueOf(def IndexDef, cols map[string][]byte) ([]byte, bool) {
	return indexValue(def, cols)
}
