package core

import (
	"bytes"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
)

// Piggybacked cleanse: when a compaction round of a *base* region garbage-
// collects old cell versions, each dropped put value is exactly the kind of
// value a stale index entry would still point to. Instead of sweeping the
// whole index (Manager.Cleanse, an O(index) batch job), the PostCompact hook
// validates just the entries those dropped values name — Algorithm 2's
// check-and-clean applied to the set the merge already paid to read. Stale
// entries are repaired as a side effect of compaction I/O; live entries are
// never touched (an entry is deleted only at its own timestamp and only
// after a base read proves the value it indexes is no longer current).

// PostCompact implements the Coprocessor hook. It runs in the compaction
// goroutine of the base region's store, after the round installed its
// output.
func (o *observer) PostCompact(ctx cluster.RegionCtx, gc lsm.CompactionGC) {
	o.m.piggybackCleanse(ctx, gc)
}

// piggybackCandidate names one index entry to validate: the entry def's
// index table holds for (value, row) at ts, derived from a dropped base put.
type piggybackCandidate struct {
	def IndexDef
	val []byte
	ts  kv.Timestamp
}

func (m *Manager) piggybackCleanse(ctx cluster.RegionCtx, gc lsm.CompactionGC) {
	table := ctx.Region.Info.Table

	// Only global single-column indexes are validatable from a dropped
	// cell: a composite entry's old value needs the row's *other* columns
	// at the same old timestamp, which the merge no longer has; local
	// entries live in this same store and were GC'd by the same round.
	var defs []IndexDef
	for _, def := range m.catalog.IndexesOn(table) {
		if !def.Local && len(def.Columns) == 1 {
			defs = append(defs, def)
		}
	}
	if len(defs) == 0 {
		return
	}

	// Collect candidates per row, deduplicating identical (def, value)
	// pairs — several dropped versions of the same value produce one check.
	byRow := make(map[string][]piggybackCandidate)
	for _, c := range gc.Dropped {
		if c.Kind != kv.KindPut || len(c.Value) == 0 {
			continue
		}
		row, col, err := kv.SplitBaseKey(c.Key)
		if err != nil {
			continue // not a base cell (e.g. a local-index entry)
		}
		for _, def := range defs {
			if def.Columns[0] != string(col) {
				continue
			}
			dup := false
			for _, prev := range byRow[string(row)] {
				if prev.def.Name() == def.Name() && bytes.Equal(prev.val, c.Value) && prev.ts == c.Ts {
					dup = true
					break
				}
			}
			if !dup {
				byRow[string(row)] = append(byRow[string(row)], piggybackCandidate{def: def, val: c.Value, ts: c.Ts})
			}
		}
	}
	if len(byRow) == 0 {
		return
	}

	checked := m.reg.Counter("diffindex_compaction_cleanse_checked_total", metrics.L("table", table))
	repairedC := m.reg.Counter("diffindex_compaction_cleanse_repaired_total", metrics.L("table", table))

	// Validate with region-local base reads (the compacted rows belong to
	// this region, so the check costs no network hop), then delete the
	// stale entries region-batched per index table.
	repairs := make(map[string][]kv.Cell) // index table → stale entries
	for rowStr, cands := range byRow {
		row := []byte(rowStr)
		cols, err := ctx.Region.LocalGetRow(row, kv.MaxTimestamp)
		if err != nil {
			continue // store closing mid-round; a later cleanse catches it
		}
		for _, cand := range cands {
			checked.Inc()
			if cur, ok := cols[cand.def.Columns[0]]; ok && bytes.Equal(cur, cand.val) {
				continue // entry points at the row's current value: live
			}
			repairs[cand.def.Name()] = append(repairs[cand.def.Name()], kv.Cell{
				Key:  kv.IndexKey(cand.val, row),
				Ts:   cand.ts,
				Kind: kv.KindDelete,
			})
		}
	}
	if len(repairs) == 0 {
		return
	}
	conn := m.clientFor(ctx.Server.ID())
	for indexTable, cells := range repairs {
		// Best effort: a failed repair leaves a stale entry for read repair
		// or the next round to clean, never breaks anything.
		if err := conn.MultiApply(indexTable, cells); err == nil {
			repairedC.Add(int64(len(cells)))
		}
	}
}
