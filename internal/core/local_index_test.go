package core

import (
	"fmt"
	"testing"
	"time"

	"diffindex/internal/kv"
)

func (e *env) createLocalIndex(t testing.TB, cols ...string) IndexDef {
	t.Helper()
	def := IndexDef{Table: e.tbl, Columns: cols, Local: true}
	if err := e.m.CreateIndex(def, nil); err != nil {
		t.Fatal(err)
	}
	return def
}

func TestLocalIndexLifecycle(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createLocalIndex(t, "title")

	// Rows land in both regions (split at item500).
	e.put(t, "item001", "title", "matrix")
	e.put(t, "item800", "title", "matrix")
	e.put(t, "item300", "title", "inception")

	rows := e.lookupRows(t, []string{"title"}, "matrix")
	if len(rows) != 2 || rows[0] != "item001" || rows[1] != "item800" {
		t.Fatalf("matrix rows = %v", rows)
	}
	// Update moves the entry synchronously (local maintenance is causal).
	e.put(t, "item001", "title", "avatar")
	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 1 || rows[0] != "item800" {
		t.Fatalf("matrix rows after update = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"title"}, "avatar"); len(rows) != 1 {
		t.Fatalf("avatar rows = %v", rows)
	}
	// Delete removes the entry.
	if _, err := e.cl.Delete(e.tbl, []byte("item800"), nil); err != nil {
		t.Fatal(err)
	}
	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 0 {
		t.Fatalf("matrix rows after delete = %v", rows)
	}
}

func TestLocalIndexDoesNotPolluteScans(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createLocalIndex(t, "title")
	for i := 0; i < 10; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", "v")
	}
	// Row scans must return exactly the base rows despite local-index
	// entries living in the same stores.
	rows, err := e.cl.Scan(e.tbl, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("scan returned %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if len(r.Cols) != 1 || string(r.Cols["title"]) != "v" {
			t.Fatalf("scan row %q has cols %v", r.Key, r.Cols)
		}
	}
	// GetRow likewise.
	cols, err := e.cl.GetRow(e.tbl, []byte("item003"))
	if err != nil || len(cols) != 1 {
		t.Fatalf("GetRow = %v err=%v", cols, err)
	}
}

func TestLocalIndexRange(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createLocalIndex(t, "price")
	for i := 0; i < 40; i++ {
		// Spread across both regions via alternating row prefixes.
		row := fmt.Sprintf("item%03d", i*25)
		e.put(t, row, "price", fmt.Sprintf("%04d", i*10))
	}
	hits, err := e.m.RangeByIndex(e.cl, e.tbl, []string{"price"}, []byte("0100"), []byte("0200"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 11 {
		t.Fatalf("range hits = %d, want 11", len(hits))
	}
	// Results arrive in value order even though regions are scanned
	// independently.
	hits, _ = e.m.RangeByIndex(e.cl, e.tbl, []string{"price"}, nil, nil, 0)
	if len(hits) != 40 {
		t.Fatalf("full range = %d", len(hits))
	}
	// Limit.
	hits, _ = e.m.RangeByIndex(e.cl, e.tbl, []string{"price"}, []byte("0000"), nil, 5)
	if len(hits) != 5 {
		t.Fatalf("limited range = %d", len(hits))
	}
}

func TestLocalIndexBackfill(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	for i := 0; i < 20; i++ {
		e.put(t, fmt.Sprintf("item%03d", i*50), "title", fmt.Sprintf("b%d", i%2))
	}
	e.createLocalIndex(t, "title")
	for v := 0; v < 2; v++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("b%d", v))
		if len(rows) != 10 {
			t.Fatalf("b%d rows = %d, want 10", v, len(rows))
		}
	}
}

func TestLocalIndexCrashRecovery(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createLocalIndex(t, "title")
	for i := 0; i < 30; i++ {
		e.put(t, fmt.Sprintf("item%03d", i*30), "title", "persist")
	}
	// Local entries share the region's WAL, so an unflushed crash must
	// recover them along with the base data.
	ri, _ := e.c.Master.Locate(e.tbl, []byte("item000"))
	if err := e.c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	if !e.m.WaitForConvergence(10 * time.Second) {
		t.Fatal("no convergence after crash")
	}
	rows := e.lookupRows(t, []string{"title"}, "persist")
	if len(rows) != 30 {
		t.Fatalf("rows after crash = %d, want 30", len(rows))
	}
}

func TestLocalIndexSessionReads(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createLocalIndex(t, "title")
	s := e.m.NewSession(e.cl)
	defer s.End()
	if _, err := s.Put(e.tbl, []byte("item001"), map[string][]byte{"title": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	// Local indexes are causal: the session read sees the write without
	// private-table machinery.
	hits, err := s.GetByIndex(e.tbl, []string{"title"}, []byte("v"))
	if err != nil || len(hits) != 1 {
		t.Fatalf("session local read = %v err=%v", hits, err)
	}
	rh, err := s.RangeByIndex(e.tbl, []string{"title"}, []byte("a"), []byte("z"), 0)
	if err != nil || len(rh) != 1 {
		t.Fatalf("session local range = %v err=%v", rh, err)
	}
}

func TestLocalIndexIOCounts(t *testing.T) {
	// A local index update costs zero network hops: the index write routes
	// to the same region (and server) as the base put.
	e := newEnv(t, 3, ManagerOptions{})
	e.createLocalIndex(t, "title")
	e.put(t, "item100", "title", "before")

	before := e.m.Counters.Snapshot()
	e.put(t, "item100", "title", "after")
	d := e.m.Counters.Snapshot().Sub(before)
	if d.BasePut != 1 || d.BaseRead != 1 || d.IndexPut != 1 || d.IndexDel != 1 {
		t.Errorf("local update costs = %+v", d)
	}

	// Verify the index write really went to the base row's own region: the
	// local entry must be in the store of the region holding item100.
	ri, _ := e.c.Master.Locate(e.tbl, []byte("item100"))
	def := IndexDef{Table: e.tbl, Columns: []string{"title"}, Local: true}
	lo, hi := kv.LocalIndexValueRange(def.Name(), []byte("after"), []byte("after"))
	res, err := e.c.Server(ri.Server).Scan(ri.ID, lo, hi, kv.MaxTimestamp, 0)
	if err != nil || len(res) != 1 {
		t.Fatalf("local entry not in the row's region: %v err=%v", res, err)
	}
}

func TestLocalAndGlobalIndexCoexist(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createLocalIndex(t, "title")
	e.createIndex(t, SyncFull, "price")

	if _, err := e.cl.Put(e.tbl, []byte("item001"), map[string][]byte{
		"title": []byte("t"), "price": []byte("9"),
	}); err != nil {
		t.Fatal(err)
	}
	if rows := e.lookupRows(t, []string{"title"}, "t"); len(rows) != 1 {
		t.Fatalf("local rows = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"price"}, "9"); len(rows) != 1 {
		t.Fatalf("global rows = %v", rows)
	}
}
