package core

import (
	"fmt"
	"testing"

	"diffindex/internal/cluster"
)

// newCompactionEnv builds a cluster whose stores compact eagerly: two
// SSTables arm a round, one retained version per key, so every overwrite
// that reaches a second flush is garbage-collected on the next merge.
func newCompactionEnv(t testing.TB) *env {
	t.Helper()
	c := cluster.New(cluster.Config{
		Servers:             3,
		MaxVersions:         1,
		CompactionThreshold: 2,
		CompactionFanIn:     2,
	})
	t.Cleanup(func() { c.Close() })
	m := NewManager(c, ManagerOptions{})
	if err := c.Master.CreateTable("items", [][]byte{[]byte("item500")}); err != nil {
		t.Fatal(err)
	}
	return &env{c: c, m: m, cl: cluster.NewClient(c, "testclient"), tbl: "items"}
}

// Sync-insert never deletes superseded entries, so overwrites accumulate
// stale index entries — normally Cleanse's job to sweep. Here compaction's
// version GC drops the old base cells, the PostCompact hook hands them to
// the index manager, and the stale entries those values name are repaired
// without any sweep.
func TestPiggybackCleanseRepairsStaleEntriesOnCompaction(t *testing.T) {
	e := newCompactionEnv(t)
	def := e.createIndex(t, SyncInsert, "title")

	for i := 0; i < 10; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("g0-%d", i))
	}
	if err := e.c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("g1-%d", i))
	}
	raw := e.rawIndexEntries(t, def)
	if len(raw) != 20 { // 10 live + 10 stale left by sync-insert
		t.Fatalf("raw entries before compaction = %d, want 20", len(raw))
	}

	// The second flush gives each base region two tables, arming a round;
	// MaxVersions 1 drops every g0 cell, and the hook cleans their entries.
	if err := e.c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.c.WaitCompactions()

	raw = e.rawIndexEntries(t, def)
	if len(raw) != 10 {
		t.Errorf("raw entries after compaction = %d, want 10 (stale g0 cleansed): %v", len(raw), raw)
	}
	for _, entry := range raw {
		if entry[:2] != "g1" {
			t.Errorf("stale entry survived piggybacked cleanse: %s", entry)
		}
	}
	// Live entries were never touched: every row is still reachable by its
	// current title.
	for i := 0; i < 10; i++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("g1-%d", i))
		if len(rows) != 1 || rows[0] != fmt.Sprintf("item%03d", i) {
			t.Errorf("g1-%d lookup = %v", i, rows)
		}
	}
	// An explicit Cleanse now finds nothing left to repair.
	if _, repaired, err := e.m.Cleanse(e.cl, e.tbl, "title"); err != nil || repaired != 0 {
		t.Errorf("post-compaction Cleanse = repaired %d, err %v; want 0, nil", repaired, err)
	}
}

// Composite (multi-column) indexes must be left alone: a dropped cell holds
// only one column's old value, not the row's other columns at that
// timestamp, so no candidate entry can be reconstructed. The stale entry
// stays until an explicit Cleanse.
func TestPiggybackCleanseSkipsCompositeIndexes(t *testing.T) {
	e := newCompactionEnv(t)
	def := e.createIndex(t, SyncInsert, "title", "author")

	e.put(t, "item001", "title", "old")
	e.put(t, "item001", "author", "ann")
	if err := e.c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.put(t, "item001", "title", "new")
	if err := e.c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.c.WaitCompactions()

	raw := e.rawIndexEntries(t, def)
	if len(raw) != 2 { // old+ann (stale) and new+ann (live)
		t.Errorf("composite entries after compaction = %v, want both (stale untouched)", raw)
	}
}
