package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// expectedIndexEntries recomputes what an index's live entries should be
// from a full scan of the base table: the ground truth every scheme must
// converge to.
func expectedIndexEntries(t *testing.T, e *env, def IndexDef) []string {
	t.Helper()
	rows, err := e.cl.Scan(def.Table, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range rows {
		if v, ok := indexValue(def, row.Cols); ok {
			out = append(out, fmt.Sprintf("%s→%s", v, row.Key))
		}
	}
	sort.Strings(out)
	return out
}

// liveIndexEntries reads an index's entries the way its scheme intends:
// via GetByIndex/read-repair semantics. For sync-insert, stale entries must
// first be flushed out with repairing reads; for others a raw scan is the
// truth.
func liveIndexEntries(t *testing.T, e *env, def IndexDef) []string {
	t.Helper()
	if def.Scheme == SyncInsert {
		// Repair pass: read every distinct value currently in the index so
		// stale entries get cleaned (Algorithm 2), then re-scan.
		seen := map[string]bool{}
		for _, en := range e.rawIndexEntries(t, def) {
			val, _, ok := strings.Cut(en, "→")
			if !ok || seen[val] {
				continue
			}
			seen[val] = true
			if _, err := e.m.GetByIndex(e.cl, def.Table, def.Columns, []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := e.rawIndexEntries(t, def)
	sort.Strings(out)
	return out
}

// TestConvergencePropertyAllSchemes drives a random workload of puts,
// updates and deletes against one index per scheme, waits for quiescence,
// and checks every index equals the ground truth rebuilt from the base
// table. This is the paper's core correctness claim: all schemes converge
// to a correct index; they differ only in when.
func TestConvergencePropertyAllSchemes(t *testing.T) {
	schemes := []Scheme{SyncFull, SyncInsert, AsyncSimple, AsyncSession}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, 3, ManagerOptions{})
		defs := make([]IndexDef, len(schemes))
		for i, s := range schemes {
			defs[i] = e.createIndex(t, s, fmt.Sprintf("col%d", i))
		}
		rows := []string{"item001", "item100", "item400", "item600", "item800", "item999"}
		values := []string{"a", "bb", "ccc", "dd", "e"}
		for op := 0; op < 120; op++ {
			row := rows[rng.Intn(len(rows))]
			col := fmt.Sprintf("col%d", rng.Intn(len(schemes)))
			switch rng.Intn(10) {
			case 0:
				if _, err := e.cl.Delete(e.tbl, []byte(row), []string{col}); err != nil {
					t.Log(err)
					return false
				}
			case 1:
				if _, err := e.cl.Delete(e.tbl, []byte(row), nil); err != nil {
					t.Log(err)
					return false
				}
			default:
				if _, err := e.cl.Put(e.tbl, []byte(row), map[string][]byte{
					col: []byte(values[rng.Intn(len(values))]),
				}); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		if !e.m.WaitForConvergence(10 * time.Second) {
			t.Log("no convergence")
			return false
		}
		for _, def := range defs {
			want := expectedIndexEntries(t, e, def)
			got := liveIndexEntries(t, e, def)
			if len(want) != len(got) {
				t.Logf("seed %d %s(%s): want %v got %v", seed, def.Scheme, def.Name(), want, got)
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					t.Logf("seed %d %s(%s): want %v got %v", seed, def.Scheme, def.Name(), want, got)
					return false
				}
			}
		}
		e.c.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestConvergenceUnderCrashProperty mixes random crashes into the workload
// and still requires convergence to ground truth afterwards.
func TestConvergenceUnderCrashProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, 4, ManagerOptions{})
		def := e.createIndex(t, AsyncSimple, "title")
		rows := []string{"item001", "item200", "item600", "item900"}
		crashes := 0
		for op := 0; op < 80; op++ {
			row := rows[rng.Intn(len(rows))]
			if _, err := e.cl.Put(e.tbl, []byte(row), map[string][]byte{
				"title": []byte(fmt.Sprintf("v%d", rng.Intn(6))),
			}); err != nil {
				t.Log(err)
				return false
			}
			if crashes < 2 && rng.Intn(40) == 0 {
				live := e.c.LiveServerIDs()
				if len(live) > 2 {
					if err := e.c.Master.CrashServer(live[rng.Intn(len(live))]); err != nil {
						t.Log(err)
						return false
					}
					crashes++
				}
			}
		}
		if !e.m.WaitForConvergence(10 * time.Second) {
			t.Log("no convergence after crashes")
			return false
		}
		want := expectedIndexEntries(t, e, def)
		got := liveIndexEntries(t, e, def)
		if len(want) != len(got) {
			t.Logf("seed %d: want %v got %v", seed, want, got)
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				t.Logf("seed %d: want %v got %v", seed, want, got)
				return false
			}
		}
		e.c.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
