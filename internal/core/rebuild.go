package core

import (
	"fmt"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/wal"
)

// RebuildIndexFromLog reconstructs a global index by replaying the base
// table's region WALs instead of scanning the base table — the
// log-as-database recovery path (DESIGN.md §13). Where backfill reads the
// CURRENT state through the store's read path, rebuild folds the full
// mutation history out of the logs and derives the same state, which makes
// it usable when the index table is suspect but the logs are intact (e.g.
// after restoring index-table storage from scratch).
//
// It requires full log retention (Config.WALRetainSegments = -1 from the
// region's creation): if any region's log has been truncated the replay
// would silently miss history, so a retention gap is an error, never a
// partial rebuild. Regions created by splits are covered — a split seeds
// each child by applying the parent's live cells, and those applies land in
// the child's own WAL.
//
// Entries are written through the same region-batched MultiApply path as
// backfill, at each row's max base timestamp (same-timestamp rule, §4.3).
// The rebuild is insert-only: it does not delete entries already present in
// the index table, so point it at a fresh (or truncated) index table.
// Returns the number of index entries written.
func (m *Manager) RebuildIndexFromLog(cl *cluster.Client, table string, columns []string) (int, error) {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return 0, fmt.Errorf("core: no index on %s%v", table, columns)
	}
	if def.Local {
		return 0, fmt.Errorf("core: %s is a local index; local entries are rebuilt by region recovery, not log replay", def.Name())
	}
	regions, err := m.cluster.Master.RegionsOf(table)
	if err != nil {
		return 0, err
	}

	// Fold every region's log into per-(row, column) latest versions. A
	// column's visible version is the newest record for its key; on a
	// timestamp tie the tombstone wins (a tombstone at T masks every version
	// with ts ≤ T, including a put at T itself).
	type colVersion struct {
		ts  kv.Timestamp
		val []byte
		del bool
	}
	rows := make(map[string]map[string]colVersion)
	for _, ri := range regions {
		s := m.cluster.Server(ri.Server)
		if s == nil || s.Crashed() {
			return 0, fmt.Errorf("core: rebuild %s: server %s for region %s is down", def.Name(), ri.Server, ri.ID)
		}
		pos := wal.Pos{}
		for {
			entries, next, gap, err := s.TailWAL(ri.ID, pos, 4096)
			if err != nil {
				return 0, fmt.Errorf("core: rebuild %s: tail region %s: %w", def.Name(), ri.ID, err)
			}
			if gap > 0 {
				return 0, fmt.Errorf("core: rebuild %s: region %s log truncated (%d segments gone); full-log rebuild needs WALRetainSegments=-1", def.Name(), ri.ID, gap)
			}
			if len(entries) == 0 {
				break
			}
			for _, e := range entries {
				rec := e.Record
				if kv.IsLocalIndexKey(rec.Key) {
					continue // local-index entries of other indexes, not base data
				}
				row, col, err := kv.SplitBaseKey(rec.Key)
				if err != nil {
					return 0, fmt.Errorf("core: rebuild %s: region %s: %w", def.Name(), ri.ID, err)
				}
				cols := rows[string(row)]
				if cols == nil {
					cols = make(map[string]colVersion)
					rows[string(row)] = cols
				}
				cur, seen := cols[string(col)]
				switch {
				case !seen || rec.Ts > cur.ts:
					cols[string(col)] = colVersion{ts: rec.Ts, val: rec.Value, del: rec.Kind == kv.KindDelete}
				case rec.Ts == cur.ts && rec.Kind == kv.KindDelete:
					cols[string(col)] = colVersion{ts: rec.Ts, del: true}
				}
			}
			pos = next
		}
	}

	// Derive each surviving row's index entry exactly as backfill does: the
	// visible column values and the row's max visible timestamp.
	const rebuildChunk = 256
	var batch []kv.Cell
	written := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := cl.MultiApply(def.Name(), batch); err != nil {
			return err
		}
		m.Counters.IndexPut.Add(int64(len(batch)))
		written += len(batch)
		batch = batch[:0]
		return nil
	}
	for row, versions := range rows {
		cols := make(map[string][]byte, len(versions))
		var maxTs kv.Timestamp
		for col, v := range versions {
			if v.del {
				continue
			}
			cols[col] = v.val
			if v.ts > maxTs {
				maxTs = v.ts
			}
		}
		if len(cols) == 0 {
			continue // row fully deleted
		}
		if v, ok := indexValue(def, cols); ok {
			batch = append(batch, kv.Cell{Key: kv.IndexKey(v, []byte(row)), Ts: maxTs, Kind: kv.KindPut})
			if len(batch) >= rebuildChunk {
				if err := flush(); err != nil {
					return written, err
				}
			}
		}
	}
	return written, flush()
}
