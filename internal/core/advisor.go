package core

import (
	"fmt"
	"sync"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
)

// This file implements two of the paper's stated extensions:
//
//   - the index "cleanse" utility listed among the client-side components
//     (§7: "a utility for index creation, maintenance and cleanse"): a full
//     sweep that double-checks every index entry against the base table and
//     deletes the stale ones — Algorithm 2 applied to the whole index; and
//
//   - workload-aware scheme selection, the paper's future work ("Ideally
//     Diff-Index should be able to adaptively choose a scheme by
//     understanding consistency requirements and observing workload
//     characteristics such as read/write ratio", §3.4). The Advisor tracks
//     per-index update and read rates and recommends a scheme following the
//     paper's five usage principles; SetScheme applies a recommendation
//     live, cleansing first when the index leaves sync-insert (whose stale
//     entries would otherwise never be repaired).

// Cleanse sweeps an index, double-checking every entry against the base
// table and deleting the stale ones. It returns the number of entries
// checked and repaired. After a cleanse (and with no concurrent writes) a
// sync-insert index contains no stale entries.
func (m *Manager) Cleanse(cl *cluster.Client, table string, columns ...string) (checked, repaired int, err error) {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return 0, 0, fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	entries, err := cl.RawScan(def.Name(), nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		return 0, 0, err
	}
	var repairs []kv.Cell
	// Double-check in bounded waves: each chunk's base reads ship as one
	// region-grouped MultiGet instead of one serial Get per entry-column.
	const cleanseChunk = 512
	for base := 0; base < len(entries); base += cleanseChunk {
		chunk := entries[base:min(base+cleanseChunk, len(entries))]
		vals := make([][]byte, len(chunk))
		rows := make([][]byte, len(chunk))
		for i, e := range chunk {
			val, row, err := kv.SplitIndexKey(e.Key)
			if err != nil {
				return checked, repaired, fmt.Errorf("core: corrupt index key in %s: %w", def.Name(), err)
			}
			vals[i], rows[i] = val, row
		}
		keep, err := m.doubleCheckBatch(cl, def, vals, rows)
		if err != nil {
			return checked, repaired, err
		}
		checked += len(chunk)
		for i, e := range chunk {
			if keep[i] {
				continue
			}
			repairs = append(repairs, kv.Cell{
				Key:  append([]byte(nil), e.Key...),
				Ts:   e.Ts,
				Kind: kv.KindDelete,
			})
			repaired++
		}
	}
	// Delete every stale entry found by the sweep in one region-batched
	// apply per destination region.
	if len(repairs) > 0 {
		if err := cl.MultiApply(def.Name(), repairs); err != nil {
			return checked, repaired, err
		}
		m.Counters.IndexDel.Add(int64(len(repairs)))
	}
	return checked, repaired, nil
}

// SetScheme changes an index's maintenance scheme at runtime. Leaving
// sync-insert triggers a cleanse: the other schemes' read paths do not
// repair stale entries, so any left behind would linger forever.
func (m *Manager) SetScheme(cl *cluster.Client, table string, columns []string, scheme Scheme) error {
	def, ok := m.catalog.Find(table, columns...)
	if !ok {
		return fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	if def.Scheme == scheme {
		return nil
	}
	if def.Scheme == SyncInsert && scheme != SyncInsert {
		if _, _, err := m.Cleanse(cl, table, columns...); err != nil {
			return fmt.Errorf("core: cleanse before scheme switch: %w", err)
		}
	}
	if !m.catalog.UpdateScheme(table, def.Name(), scheme) {
		return fmt.Errorf("core: index %s disappeared during scheme switch", def.Name())
	}
	return nil
}

// Requirements captures an application's declared needs for one index,
// mirroring the inputs to the paper's five usage principles (§3.4).
type Requirements struct {
	// NeedConsistency: reads must reflect all completed writes.
	NeedConsistency bool
	// NeedReadYourWrites: a session must see its own writes (weaker than
	// full consistency).
	NeedReadYourWrites bool
	// ReadLatencyCritical / UpdateLatencyCritical break ties.
	ReadLatencyCritical   bool
	UpdateLatencyCritical bool
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Scheme    Scheme
	Rationale string
	// Updates and Reads are the observed op counts the recommendation was
	// based on.
	Updates, Reads int64
}

// Advisor observes per-index workload characteristics and recommends
// maintenance schemes.
type Advisor struct {
	m  *Manager
	mu sync.Mutex
	// per index name
	updates map[string]int64
	reads   map[string]int64
}

// NewAdvisor creates an advisor attached to the manager; from then on the
// manager reports each index update and index read to it.
func (m *Manager) NewAdvisor() *Advisor {
	a := &Advisor{m: m, updates: make(map[string]int64), reads: make(map[string]int64)}
	m.mu.Lock()
	m.advisor = a
	m.mu.Unlock()
	return a
}

func (a *Advisor) noteUpdate(indexName string) {
	a.mu.Lock()
	a.updates[indexName]++
	a.mu.Unlock()
}

func (a *Advisor) noteRead(indexName string) {
	a.mu.Lock()
	a.reads[indexName]++
	a.mu.Unlock()
}

// Observed returns the op counts recorded for an index.
func (a *Advisor) Observed(table string, columns ...string) (updates, reads int64) {
	def := IndexDef{Table: table, Columns: columns}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.updates[def.Name()], a.reads[def.Name()]
}

// Recommend applies the paper's principles to the declared requirements and
// the observed read/write ratio:
//
//	(1) use sync-full or sync-insert when consistency is needed;
//	(2) use sync-full when read latency is critical;
//	(3) use sync-insert when update latency is critical;
//	(4) use async-simple or async-session when consistency is not a concern;
//	(5) use async-session when read-your-write semantics is needed.
func (a *Advisor) Recommend(table string, columns []string, req Requirements) Recommendation {
	def := IndexDef{Table: table, Columns: columns}
	a.mu.Lock()
	updates, reads := a.updates[def.Name()], a.reads[def.Name()]
	a.mu.Unlock()

	rec := Recommendation{Updates: updates, Reads: reads}
	switch {
	case req.NeedConsistency && req.ReadLatencyCritical:
		rec.Scheme, rec.Rationale = SyncFull, "consistency needed and read latency critical (principles 1+2)"
	case req.NeedConsistency && req.UpdateLatencyCritical:
		rec.Scheme, rec.Rationale = SyncInsert, "consistency needed and update latency critical (principles 1+3)"
	case req.NeedConsistency:
		// Neither latency marked critical: let the observed ratio decide.
		if updates > reads {
			rec.Scheme, rec.Rationale = SyncInsert, "consistency needed; observed write-heavy workload favors cheap updates (principles 1+3)"
		} else {
			rec.Scheme, rec.Rationale = SyncFull, "consistency needed; observed read-heavy workload favors cheap reads (principles 1+2)"
		}
	case req.NeedReadYourWrites:
		rec.Scheme, rec.Rationale = AsyncSession, "read-your-writes suffices (principle 5)"
	default:
		rec.Scheme, rec.Rationale = AsyncSimple, "consistency not a concern (principle 4)"
	}
	return rec
}

// Apply recommends and immediately applies the scheme for an index.
func (a *Advisor) Apply(cl *cluster.Client, table string, columns []string, req Requirements) (Recommendation, error) {
	rec := a.Recommend(table, columns, req)
	if err := a.m.SetScheme(cl, table, columns, rec.Scheme); err != nil {
		return rec, err
	}
	return rec, nil
}
