package core

import (
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// task is one unit of asynchronous index work: a base mutation whose index
// maintenance the APS must perform. The paper's AUQ stores "the put"
// (Algorithm 3, AU1); our task carries the mutated columns plus the base
// timestamp, which is everything Algorithm 4 needs.
type task struct {
	row []byte
	ts  kv.Timestamp
	// putCols holds the written column values for puts; nil for deletes.
	putCols map[string][]byte
	// delCols names the tombstoned columns for deletes; nil for puts.
	delCols []string
	// enqueuedAt is T1 of the staleness measurement (§8.2 "Index
	// consistency in async-simple"): the moment the base data persisted.
	enqueuedAt time.Time
	// allIndexes widens the task from asynchronous indexes only (the
	// normal AU1 path) to every index on the table: set for tasks created
	// by WAL replay and by failed synchronous operations, where work for
	// sync-scheme indexes may have been lost and redelivery is idempotent.
	allIndexes bool
}

// auq is the asynchronous update queue of one region, plus its asynchronous
// processing service (APS) workers. The paper describes one AUQ per region
// server; scoping the queue per region preserves its semantics (the server's
// AUQ is the union of its regions' queues) while making the
// drain-before-flush protocol exact: a region's flush waits precisely for
// the entries whose base data is in that region's memtable (see DESIGN.md).
type auq struct {
	m   *Manager
	ctx cluster.RegionCtx

	ch      chan task
	pending atomic.Int64 // queued + in-flight tasks
	wg      sync.WaitGroup

	// delivery records enqueue→durable latency per completed task (the
	// aps-delivery stage, observed after the fact).
	delivery *metrics.Histogram
	// shed counts arrivals degraded to the synchronous path by the
	// MaxBacklog admission cap.
	shed *metrics.Counter

	// mu orders enqueues against kill: enqueuers hold it shared while
	// sending, kill takes it exclusively before closing the channel.
	mu     sync.RWMutex
	killed atomic.Bool
}

func newAUQ(m *Manager, ctx cluster.RegionCtx) *auq {
	q := &auq{
		m:        m,
		ctx:      ctx,
		ch:       make(chan task, m.opts.QueueCapacity),
		delivery: m.stageHist(metrics.StageAPSDeliver, ctx.Region.Info.Table),
		shed:     m.reg.Counter("diffindex_auq_shed_total", metrics.L("table", ctx.Region.Info.Table)),
	}
	for i := 0; i < m.opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// enqueue adds a task (AU1). It is always called inside the region's write
// pipeline, so it cannot race with the exclusive pause-and-drain phase of a
// flush. Without an admission cap a full queue applies backpressure to the
// writer — the resource contention the paper observes for async at high
// load (§8.2, Fig. 7). With MaxBacklog set, an arrival that would push the
// backlog past the cap is shed to the synchronous path instead.
func (q *auq) enqueue(t task) {
	q.mu.RLock()
	if q.killed.Load() {
		q.mu.RUnlock()
		return // region is gone; WAL replay will reconstruct the work
	}
	n := q.pending.Add(1)
	if max := int64(q.m.opts.MaxBacklog); max > 0 && n > max {
		// Admission control: over the cap, degrade to sync. The pending slot
		// stays held until the task resolves — a concurrent flush's drain
		// must wait for it, or the flush could truncate the WAL record of a
		// task whose inline maintenance then fails, losing the update.
		q.mu.RUnlock()
		q.shedToSync(t)
		return
	}
	// A full queue blocks here (backpressure); the workers keep consuming,
	// and kill cannot close the channel while we hold the lock shared.
	q.ch <- t
	q.mu.RUnlock()
}

// shedToSync is the admission-control overflow path: perform the task's
// index maintenance inline on the writer (the synchronous algorithm), as if
// the index were sync-configured for this one put. The backlog stays at the
// cap and index staleness stays bounded — the async scheme degrades toward
// sync under overload instead of growing an unbounded queue. If the inline
// maintenance fails (destination mid-fault), the task falls back to a
// blocking enqueue: a transient cap overshoot beats losing the work.
func (q *auq) shedToSync(t task) {
	q.shed.Inc()
	q.m.shedTotal.Add(1)
	if err := q.m.applyIndexUpdatesFor(q.ctx, t, false, q.m.relevantIndexes(q.ctx, t)); err == nil {
		q.m.observeStaleness(t.enqueuedAt)
		q.pending.Add(-1)
		return
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.killed.Load() {
		// Region closed mid-shed. The held pending slot kept every flush
		// drain waiting on this task, so its base cell is still in the WAL
		// and replay reconstructs the work at the region's next host.
		q.pending.Add(-1)
		return
	}
	q.ch <- t
}

// drain blocks until every queued and in-flight task has completed — the
// "1. pause & drain" step of Figure 5. It runs inside the store's exclusive
// write gate, which is what pauses the AUQ's intake: no pipeline can
// enqueue while the flush holds the gate. Returns false if the region died
// first: the caller's flush must then abort, because truncating the WAL
// with tasks still pending would destroy their only replay source.
func (q *auq) drain() bool {
	for q.pending.Load() > 0 {
		if q.killed.Load() || q.ctx.Server.Crashed() || q.ctx.Region.Store().Closed() {
			return false
		}
		time.Sleep(50 * time.Microsecond)
	}
	return true
}

// kill tears the queue down: workers exit and pending tasks are dropped.
// Dropped work is reconstructed by WAL replay when the region reopens
// (§5.3: replayed puts re-enter the AUQ, idempotently).
func (q *auq) kill() {
	q.mu.Lock()
	if !q.killed.CompareAndSwap(false, true) {
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	close(q.ch)
	q.wg.Wait()
}

func (q *auq) worker() {
	defer q.wg.Done()
	batch := make([]task, 0, q.m.opts.APSBatch)
	for t := range q.ch {
		// Micro-batching: after the first (blocking) receive, drain up to
		// APSBatch−1 more queued tasks without blocking, then coalesce the
		// whole batch's index mutations into region-batched applies.
		batch = append(batch[:0], t)
		q.fill(&batch)
		q.processBatch(batch)
	}
	// Drain remaining pending count for anyone stuck in drain().
	for range q.ch {
		q.pending.Add(-1)
	}
}

// fill appends queued tasks to *batch without blocking, up to the APSBatch
// bound. A closed channel simply stops the fill; the tasks already received
// are still processed.
func (q *auq) fill(batch *[]task) {
	for len(*batch) < q.m.opts.APSBatch {
		select {
		case t, ok := <-q.ch:
			if !ok {
				return
			}
			*batch = append(*batch, t)
		default:
			return
		}
	}
}

// processBatch performs the background index maintenance for a drained
// batch of tasks (micro-batched Algorithm 4): per task, read the pre-image
// at ts−δ and compute the superseded deletes and new inserts; then ship the
// coalesced cells with one Apply per destination index region. Transient
// failures retry the whole batch with backoff — redelivery is idempotent
// because index cells carry the base entries' timestamps — until the region
// dies; this is what guarantees eventual execution (§5.1).
//
// pending is decremented only after every task's cells are durable (or on
// region death, where drain() gives up anyway and WAL replay reconstructs
// the work), so the drain-before-flush invariant PR(Flushed) = ∅ holds:
// a flush's drain cannot complete while any drained task's index cells are
// still in flight.
func (q *auq) processBatch(batch []task) {
	defer q.pending.Add(-int64(len(batch)))
	q.m.apsBatch.Record(int64(len(batch)))
	backoff := 200 * time.Microsecond
	for {
		err := q.m.applyIndexBatch(q.ctx, batch)
		if err == nil {
			for _, t := range batch {
				q.delivery.RecordDuration(time.Since(t.enqueuedAt))
				q.m.observeStaleness(t.enqueuedAt)
			}
			return
		}
		if q.killed.Load() || q.ctx.Server.Crashed() || q.ctx.Region.Store().Closed() {
			// Dropped; WAL replay reconstructs it. The store check covers a
			// region a balancer move or decommission closed underneath a
			// straggler enqueue that resurrected this queue after kill —
			// without it the batch would retry against the closed store
			// forever and its pending count would never converge.
			return
		}
		time.Sleep(backoff)
		if backoff < 20*time.Millisecond {
			backoff *= 2
		}
	}
}

// QueueDepth returns the number of queued plus in-flight tasks (used by
// experiments to wait for convergence and to report AUQ pressure).
func (q *auq) depth() int64 { return q.pending.Load() }
