package core

import (
	"fmt"
	"sort"
	"testing"

	"diffindex/internal/cluster"
)

// defineIndexWithoutBackfill installs an index definition and its (empty)
// index table without running the backfill scan — the "index table restored
// from scratch" starting state RebuildIndexFromLog exists for.
func defineIndexWithoutBackfill(t *testing.T, c *cluster.Cluster, m *Manager, def IndexDef) {
	t.Helper()
	if err := m.catalog.Add(def); err != nil {
		t.Fatal(err)
	}
	c.RegisterCoprocessor(def.Table, &observer{m: m})
	c.RetainTombstones(def.Name())
	if err := c.Master.CreateRawTable(def.Name(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestRebuildIndexFromLog replays a workload of puts, overwrites and
// deletes — spanning a flush so the history crosses WAL segments — into a
// fresh index table and cross-checks the result against the anti-entropy
// verifier: zero missing, zero stale, zero repairs needed.
func TestRebuildIndexFromLog(t *testing.T) {
	c := cluster.New(cluster.Config{Servers: 2, WALRetainSegments: -1})
	defer c.Close()
	m := NewManager(c, ManagerOptions{})
	if err := c.Master.CreateTable("items", [][]byte{[]byte("item020")}); err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewClient(c, "testclient")

	put := func(row, title string) {
		t.Helper()
		if _, err := cl.Put("items", []byte(row), map[string][]byte{"title": []byte(title), "price": []byte("9")}); err != nil {
			t.Fatal(err)
		}
	}
	// Initial load: no index exists yet, so none of this is index-maintained.
	for i := 0; i < 40; i++ {
		put(fmt.Sprintf("item%03d", i), fmt.Sprintf("title%02d", i%10))
	}
	// Flush so the history spans sealed WAL segments (retention -1 keeps them).
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Overwrites change index values; deletes remove rows/columns.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("item%03d", i), fmt.Sprintf("retitled%02d", i))
	}
	for i := 30; i < 35; i++ {
		if _, err := cl.Delete("items", []byte(fmt.Sprintf("item%03d", i)), []string{"title"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Delete("items", []byte("item035"), []string{"title", "price"}); err != nil {
		t.Fatal(err)
	}

	def := IndexDef{Table: "items", Columns: []string{"title"}, Scheme: SyncFull}
	defineIndexWithoutBackfill(t, c, m, def)

	written, err := m.RebuildIndexFromLog(cl, "items", []string{"title"})
	if err != nil {
		t.Fatal(err)
	}
	// 40 rows − 6 with the title deleted = 34 index entries.
	if written != 34 {
		t.Errorf("rebuild wrote %d entries, want 34", written)
	}

	reports, err := m.VerifyIndexes(cl, "items")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d verify reports, want 1", len(reports))
	}
	rep := reports[0]
	if !rep.Healthy() || rep.Repaired != 0 {
		t.Errorf("rebuilt index not clean: %s", rep)
	}

	// The rebuilt index answers index reads.
	hits, err := m.GetByIndex(cl, "items", []string{"title"}, []byte("retitled03"))
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, h := range hits {
		rows = append(rows, string(h.Row))
	}
	if len(rows) != 1 || rows[0] != "item003" {
		t.Errorf("GetByIndex(retitled03) = %v, want [item003]", rows)
	}
	// Deleted rows must not appear under their old value.
	if hits, err = m.GetByIndex(cl, "items", []string{"title"}, []byte("title00")); err != nil {
		t.Fatal(err)
	} else {
		rows = rows[:0]
		for _, h := range hits {
			rows = append(rows, string(h.Row))
		}
		sort.Strings(rows)
		// item000 was retitled, item030 had its title deleted: only item010
		// and item020 still carry title00.
		want := []string{"item010", "item020"}
		if len(rows) != len(want) || rows[0] != want[0] || rows[1] != want[1] {
			t.Errorf("GetByIndex(title00) = %v, want %v", rows, want)
		}
	}

	// The registered coprocessor keeps maintaining the rebuilt index.
	put("item100", "fresh")
	if hits, err = m.GetByIndex(cl, "items", []string{"title"}, []byte("fresh")); err != nil {
		t.Fatal(err)
	} else if len(hits) != 1 || string(hits[0].Row) != "item100" {
		t.Errorf("post-rebuild maintenance: GetByIndex(fresh) = %v", hits)
	}
}

// TestRebuildIndexFromLogDetectsTruncation proves the retention guard: with
// default retention, a flush truncates replayed WAL segments, and the
// rebuild must refuse rather than silently miss history.
func TestRebuildIndexFromLogDetectsTruncation(t *testing.T) {
	c := cluster.New(cluster.Config{Servers: 1})
	defer c.Close()
	m := NewManager(c, ManagerOptions{})
	if err := c.Master.CreateTable("items", nil); err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewClient(c, "testclient")
	for i := 0; i < 5; i++ {
		if _, err := cl.Put("items", []byte(fmt.Sprintf("item%03d", i)), map[string][]byte{"title": []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil { // rolls + truncates the WAL
		t.Fatal(err)
	}
	def := IndexDef{Table: "items", Columns: []string{"title"}, Scheme: SyncFull}
	defineIndexWithoutBackfill(t, c, m, def)
	if _, err := m.RebuildIndexFromLog(cl, "items", []string{"title"}); err == nil {
		t.Fatal("rebuild succeeded over a truncated log; want truncation error")
	}
}

// TestRebuildIndexFromLogErrors covers the definition guards.
func TestRebuildIndexFromLogErrors(t *testing.T) {
	c := cluster.New(cluster.Config{Servers: 1, WALRetainSegments: -1})
	defer c.Close()
	m := NewManager(c, ManagerOptions{})
	if err := c.Master.CreateTable("items", nil); err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewClient(c, "testclient")
	if _, err := m.RebuildIndexFromLog(cl, "items", []string{"title"}); err == nil {
		t.Error("rebuild of an undefined index succeeded")
	}
	if err := m.CreateIndex(IndexDef{Table: "items", Columns: []string{"title"}, Local: true}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RebuildIndexFromLog(cl, "items", []string{"title"}); err == nil {
		t.Error("rebuild of a local index succeeded")
	}
}
