package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
)

// env is a small cluster with one base table ("items") and a Diff-Index
// manager, shared test scaffolding.
type env struct {
	c   *cluster.Cluster
	m   *Manager
	cl  *cluster.Client
	tbl string
}

func newEnv(t testing.TB, servers int, opts ManagerOptions) *env {
	t.Helper()
	c := cluster.New(cluster.Config{Servers: servers})
	t.Cleanup(func() { c.Close() })
	m := NewManager(c, opts)
	if err := c.Master.CreateTable("items", [][]byte{[]byte("item500")}); err != nil {
		t.Fatal(err)
	}
	return &env{c: c, m: m, cl: cluster.NewClient(c, "testclient"), tbl: "items"}
}

func (e *env) createIndex(t testing.TB, scheme Scheme, cols ...string) IndexDef {
	t.Helper()
	def := IndexDef{Table: e.tbl, Columns: cols, Scheme: scheme}
	if err := e.m.CreateIndex(def, nil); err != nil {
		t.Fatal(err)
	}
	return def
}

func (e *env) put(t testing.TB, row, col, val string) kv.Timestamp {
	t.Helper()
	ts, err := e.cl.Put(e.tbl, []byte(row), map[string][]byte{col: []byte(val)})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func (e *env) lookupRows(t testing.TB, cols []string, value string) []string {
	t.Helper()
	hits, err := e.m.GetByIndex(e.cl, e.tbl, cols, []byte(value))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = string(h.Row)
	}
	return out
}

// rawIndexEntries returns every physically present (non-tombstoned) entry
// in an index table.
func (e *env) rawIndexEntries(t testing.TB, def IndexDef) []string {
	t.Helper()
	results, err := e.cl.RawScan(def.Name(), nil, nil, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(results))
	for _, r := range results {
		v, row, err := kv.SplitIndexKey(r.Key)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%s→%s", v, row))
	}
	return out
}

func TestSchemeStringsAndValidate(t *testing.T) {
	names := map[Scheme]string{
		SyncFull: "sync-full", SyncInsert: "sync-insert",
		AsyncSimple: "async-simple", AsyncSession: "async-session",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme must render")
	}
	if !AsyncSimple.Asynchronous() || !AsyncSession.Asynchronous() || SyncFull.Asynchronous() || SyncInsert.Asynchronous() {
		t.Error("Asynchronous() wrong")
	}

	good := IndexDef{Table: "t", Columns: []string{"a", "b"}, Scheme: SyncFull}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if good.Name() != "idx_t_a_b" {
		t.Errorf("Name = %q", good.Name())
	}
	bad := []IndexDef{
		{Columns: []string{"a"}},
		{Table: "t"},
		{Table: "t", Columns: []string{""}},
		{Table: "t", Columns: []string{"a", "a"}},
		{Table: "t", Columns: []string{"a"}, Scheme: Scheme(42)},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad def %d validated", i)
		}
	}
	if !good.Covers(map[string][]byte{"b": nil}) || good.Covers(map[string][]byte{"z": nil}) {
		t.Error("Covers wrong")
	}
	if !good.CoversNames([]string{"x", "a"}) || good.CoversNames([]string{"x"}) {
		t.Error("CoversNames wrong")
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	d1 := IndexDef{Table: "t", Columns: []string{"a"}, Scheme: SyncFull}
	d2 := IndexDef{Table: "t", Columns: []string{"b"}, Scheme: AsyncSimple}
	if err := cat.Add(d1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(d1); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := cat.Add(d2); err != nil {
		t.Fatal(err)
	}
	if got := cat.IndexesOn("t"); len(got) != 2 {
		t.Errorf("IndexesOn = %v", got)
	}
	if got := cat.IndexesOn("other"); len(got) != 0 {
		t.Errorf("IndexesOn(other) = %v", got)
	}
	if d, ok := cat.Find("t", "b"); !ok || d.Scheme != AsyncSimple {
		t.Error("Find(b) failed")
	}
	if _, ok := cat.Find("t", "z"); ok {
		t.Error("Find(z) succeeded")
	}
	if !cat.Remove("t", "idx_t_a") {
		t.Error("Remove failed")
	}
	if cat.Remove("t", "idx_t_a") {
		t.Error("double Remove succeeded")
	}
	if _, ok := cat.Find("t", "a"); ok {
		t.Error("removed index still found")
	}
}

func TestIndexValueComposite(t *testing.T) {
	single := IndexDef{Table: "t", Columns: []string{"a"}}
	if v, ok := indexValue(single, map[string][]byte{"a": []byte("x")}); !ok || string(v) != "x" {
		t.Errorf("single = %q ok=%v", v, ok)
	}
	if _, ok := indexValue(single, map[string][]byte{}); ok {
		t.Error("missing column produced a value")
	}
	comp := IndexDef{Table: "t", Columns: []string{"a", "b"}}
	v1, ok1 := indexValue(comp, map[string][]byte{"a": []byte("x"), "b": []byte("y")})
	if !ok1 {
		t.Fatal("composite value missing")
	}
	if want := kv.EncodeComposite([]byte("x"), []byte("y")); !bytes.Equal(v1, want) {
		t.Errorf("composite = %x, want %x", v1, want)
	}
	if _, ok := indexValue(comp, map[string][]byte{"a": []byte("x")}); ok {
		t.Error("partial composite produced a value")
	}
}

func TestSyncFullLifecycle(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := e.createIndex(t, SyncFull, "title")

	e.put(t, "item001", "title", "matrix")
	e.put(t, "item002", "title", "matrix")
	e.put(t, "item003", "title", "inception")

	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 2 {
		t.Fatalf("matrix rows = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"title"}, "inception"); len(rows) != 1 || rows[0] != "item003" {
		t.Fatalf("inception rows = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"title"}, "absent"); len(rows) != 0 {
		t.Fatalf("absent rows = %v", rows)
	}

	// Update: old entry must be gone immediately (causal consistency).
	e.put(t, "item001", "title", "avatar")
	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 1 || rows[0] != "item002" {
		t.Fatalf("matrix rows after update = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"title"}, "avatar"); len(rows) != 1 || rows[0] != "item001" {
		t.Fatalf("avatar rows = %v", rows)
	}
	// Physically, the stale entry is tombstoned, not merely filtered.
	entries := e.rawIndexEntries(t, def)
	for _, en := range entries {
		if en == "matrix→item001" {
			t.Error("stale index entry physically present after sync-full update")
		}
	}

	// Delete: entry goes away synchronously.
	if _, err := e.cl.Delete(e.tbl, []byte("item002"), []string{"title"}); err != nil {
		t.Fatal(err)
	}
	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 0 {
		t.Fatalf("matrix rows after delete = %v", rows)
	}

	// Idempotent same-value overwrite keeps exactly one live entry.
	e.put(t, "item003", "title", "inception")
	if rows := e.lookupRows(t, []string{"title"}, "inception"); len(rows) != 1 {
		t.Fatalf("inception rows after same-value put = %v", rows)
	}
}

func TestSyncInsertStaleEntriesAndReadRepair(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := e.createIndex(t, SyncInsert, "title")

	e.put(t, "item001", "title", "matrix")
	e.put(t, "item001", "title", "avatar") // leaves stale matrix→item001

	// The stale entry is physically present (sync-insert never deletes).
	entries := e.rawIndexEntries(t, def)
	if len(entries) != 2 {
		t.Fatalf("raw entries = %v, want stale + fresh", entries)
	}

	// A read for the stale value returns nothing — and repairs the index.
	if rows := e.lookupRows(t, []string{"title"}, "matrix"); len(rows) != 0 {
		t.Fatalf("stale read returned %v", rows)
	}
	entries = e.rawIndexEntries(t, def)
	if len(entries) != 1 || entries[0] != "avatar→item001" {
		t.Fatalf("raw entries after repair = %v", entries)
	}

	// The fresh value reads correctly.
	if rows := e.lookupRows(t, []string{"title"}, "avatar"); len(rows) != 1 {
		t.Fatalf("avatar rows = %v", rows)
	}

	// Deletes leave stale entries that reads repair too.
	if _, err := e.cl.Delete(e.tbl, []byte("item001"), nil); err != nil {
		t.Fatal(err)
	}
	if rows := e.lookupRows(t, []string{"title"}, "avatar"); len(rows) != 0 {
		t.Fatalf("avatar rows after row delete = %v", rows)
	}
	if entries := e.rawIndexEntries(t, def); len(entries) != 0 {
		t.Fatalf("entries after delete + repair = %v", entries)
	}
}

func TestAsyncSimpleEventualConsistency(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, AsyncSimple, "title")

	for i := 0; i < 20; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("t%d", i%4))
	}
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("AUQ did not drain")
	}
	for v := 0; v < 4; v++ {
		if rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("t%d", v)); len(rows) != 5 {
			t.Fatalf("t%d rows = %v", v, rows)
		}
	}

	// Updates eventually remove old entries (APS deletes at t−δ).
	e.put(t, "item000", "title", "newval")
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("AUQ did not drain after update")
	}
	if rows := e.lookupRows(t, []string{"title"}, "t0"); len(rows) != 4 {
		t.Fatalf("t0 rows after update = %v", rows)
	}
	if rows := e.lookupRows(t, []string{"title"}, "newval"); len(rows) != 1 {
		t.Fatalf("newval rows = %v", rows)
	}
	if e.m.Staleness().Count() == 0 {
		t.Error("staleness histogram empty after async completions")
	}
}

// TestAsyncRetriesThroughPartition verifies guaranteed eventual execution:
// with the server→server paths cut, async index updates stall but are
// retried until the partition heals.
func TestAsyncRetriesThroughPartition(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSimple, "title")

	// Cut server↔server connectivity (client↔server stays up).
	e.c.Net.Partition("rs1", "rs2")

	e.put(t, "item001", "title", "stuck")
	e.put(t, "item900", "title", "stuck") // second region, other server

	// At least one of the two index updates must cross servers; it cannot
	// complete while partitioned.
	if e.m.WaitForConvergence(50 * time.Millisecond) {
		// Both index entries happened to be server-local; force a remote
		// one by checking visibility instead.
		t.Log("converged while partitioned (all updates were server-local)")
	}
	e.c.Net.HealAll()
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("AUQ did not drain after heal")
	}
	if rows := e.lookupRows(t, []string{"title"}, "stuck"); len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSyncFullDegradesToAUQOnPartition(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncFull, "title")
	e.c.Net.Partition("rs1", "rs2")

	// Puts succeed even when the synchronous index op cannot reach the
	// index region (§6.2: no all-or-nothing semantics; failed ops enter
	// the AUQ).
	for i := 0; i < 10; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", "v")
		e.put(t, fmt.Sprintf("item%03d", 900+i), "title", "v")
	}
	e.c.Net.HealAll()
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("degraded sync-full work never completed")
	}
	if rows := e.lookupRows(t, []string{"title"}, "v"); len(rows) != 20 {
		t.Fatalf("rows after heal = %d, want 20", len(rows))
	}
}

func TestDrainBeforeFlush(t *testing.T) {
	// After a region flush returns, its AUQ must be empty (PR(Flushed)=∅):
	// crash the server right after the flush — recovery replays nothing
	// (WAL rolled forward), so only the drain guarantees index completeness.
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, AsyncSimple, "title")

	for i := 0; i < 50; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("val%d", i))
	}
	// Flush every region of the base table (drains each AUQ first).
	regions, err := e.c.Master.RegionsOf(e.tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range regions {
		if err := e.c.Server(ri.Server).Flush(ri.ID); err != nil {
			t.Fatal(err)
		}
	}
	if depth := e.m.QueueDepth(); depth != 0 {
		t.Fatalf("AUQ depth %d after flush, want 0", depth)
	}
	// Crash every server that hosted base regions; index entries must
	// already be durable/complete despite empty WALs.
	crashed := map[string]bool{}
	for _, ri := range regions {
		if !crashed[ri.Server] {
			crashed[ri.Server] = true
			if err := e.c.Master.CrashServer(ri.Server); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("AUQ did not drain after recovery")
	}
	for i := 0; i < 50; i++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("val%d", i))
		if len(rows) != 1 {
			t.Fatalf("val%d rows = %v", i, rows)
		}
	}
}

func TestCrashRecoveryReplaysAUQ(t *testing.T) {
	// Partition the index path so AUQ work backs up, crash the base
	// server (losing the queue), heal, and verify WAL replay re-enqueues
	// everything on the recovery server.
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, AsyncSimple, "title")

	e.c.Net.Partition("rs1", "rs2")
	for i := 0; i < 20; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", "crashval")
		e.put(t, fmt.Sprintf("item%03d", 900+i), "title", "crashval")
	}
	// Crash one base-hosting server while its AUQ is blocked.
	ri, _ := e.c.Master.Locate(e.tbl, []byte("item000"))
	if err := e.c.Master.CrashServer(ri.Server); err != nil {
		t.Fatal(err)
	}
	e.c.Net.HealAll()
	if !e.m.WaitForConvergence(10 * time.Second) {
		t.Fatalf("AUQ did not converge after crash recovery (depth %d)", e.m.QueueDepth())
	}
	rows := e.lookupRows(t, []string{"title"}, "crashval")
	if len(rows) != 40 {
		t.Fatalf("rows after crash recovery = %d, want 40", len(rows))
	}
}

func TestBackfillIndexesExistingData(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	for i := 0; i < 30; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("bulk%d", i%3))
	}
	// Index created after the data exists.
	e.createIndex(t, SyncFull, "title")
	for v := 0; v < 3; v++ {
		rows := e.lookupRows(t, []string{"title"}, fmt.Sprintf("bulk%d", v))
		if len(rows) != 10 {
			t.Fatalf("bulk%d rows = %d, want 10", v, len(rows))
		}
	}
}

func TestCompositeIndex(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	def := e.createIndex(t, SyncFull, "category", "rating")

	put := func(row, cat, rating string) {
		if _, err := e.cl.Put(e.tbl, []byte(row), map[string][]byte{
			"category": []byte(cat), "rating": []byte(rating),
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("item001", "bar", "5")
	put("item002", "bar", "3")
	put("item003", "club", "5")

	val, ok := IndexValueOf(def, map[string][]byte{"category": []byte("bar"), "rating": []byte("5")})
	if !ok {
		t.Fatal("IndexValueOf failed")
	}
	hits, err := e.m.GetByIndex(e.cl, e.tbl, []string{"category", "rating"}, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || string(hits[0].Row) != "item001" {
		t.Fatalf("composite hits = %+v", hits)
	}

	// Partial update of one composite column must move the entry.
	if _, err := e.cl.Put(e.tbl, []byte("item001"), map[string][]byte{"rating": []byte("4")}); err != nil {
		t.Fatal(err)
	}
	hits, _ = e.m.GetByIndex(e.cl, e.tbl, []string{"category", "rating"}, val)
	if len(hits) != 0 {
		t.Fatalf("old composite value still indexed: %+v", hits)
	}
	val4, _ := IndexValueOf(def, map[string][]byte{"category": []byte("bar"), "rating": []byte("4")})
	hits, _ = e.m.GetByIndex(e.cl, e.tbl, []string{"category", "rating"}, val4)
	if len(hits) != 1 {
		t.Fatalf("new composite value not indexed: %+v", hits)
	}
}

func TestRangeByIndex(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "price")
	for i := 0; i < 50; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "price", fmt.Sprintf("%05d", i*10))
	}
	hits, err := e.m.RangeByIndex(e.cl, e.tbl, []string{"price"}, []byte("00100"), []byte("00200"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 11 { // prices 100,110,...,200 inclusive
		t.Fatalf("range hits = %d, want 11", len(hits))
	}
	// Limit.
	hits, _ = e.m.RangeByIndex(e.cl, e.tbl, []string{"price"}, []byte("00000"), nil, 7)
	if len(hits) != 7 {
		t.Fatalf("limited range hits = %d", len(hits))
	}
	// Missing index.
	if _, err := e.m.RangeByIndex(e.cl, e.tbl, []string{"nope"}, nil, nil, 0); err == nil {
		t.Error("range on missing index succeeded")
	}
}

func TestFetchRows(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncFull, "title")
	e.put(t, "item001", "title", "x")
	e.put(t, "item002", "title", "x")
	hits, _ := e.m.GetByIndex(e.cl, e.tbl, []string{"title"}, []byte("x"))
	rows, err := e.m.FetchRows(e.cl, e.tbl, hits)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || string(rows[0].Cols["title"]) != "x" {
		t.Fatalf("FetchRows = %+v", rows)
	}
}

func TestTable2IOCosts(t *testing.T) {
	// Verify the measured per-operation I/O against Table 2.
	cases := []struct {
		scheme Scheme
		// expected counts for ONE update (a put changing the indexed value
		// of an existing row):
		upBasePut, upBaseRead, upIdxPut, upIdxDel     int64
		upAsyncBaseRead, upAsyncIdxPut, upAsyncIdxDel int64
		// expected counts for ONE exact-match read returning 1 row:
		rdBaseRead, rdIdxRead int64
	}{
		{SyncFull, 1, 1, 1, 1, 0, 0, 0, 0, 1},
		{SyncInsert, 1, 0, 1, 0, 0, 0, 0, 1, 1}, // read: K=1 base read
		{AsyncSimple, 1, 0, 0, 0, 1, 1, 1, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.scheme.String(), func(t *testing.T) {
			e := newEnv(t, 3, ManagerOptions{})
			e.createIndex(t, c.scheme, "title")
			e.put(t, "item100", "title", "before")
			if !e.m.WaitForConvergence(5 * time.Second) {
				t.Fatal("setup did not converge")
			}

			before := e.m.Counters.Snapshot()
			e.put(t, "item100", "title", "after") // the measured update
			if !e.m.WaitForConvergence(5 * time.Second) {
				t.Fatal("update did not converge")
			}
			d := e.m.Counters.Snapshot().Sub(before)
			if d.BasePut != c.upBasePut || d.BaseRead != c.upBaseRead ||
				d.IndexPut != c.upIdxPut || d.IndexDel != c.upIdxDel ||
				d.AsyncBaseRead != c.upAsyncBaseRead || d.AsyncIndexPut != c.upAsyncIdxPut ||
				d.AsyncIndexDel != c.upAsyncIdxDel {
				t.Errorf("update costs = %+v", d)
			}

			before = e.m.Counters.Snapshot()
			if rows := e.lookupRows(t, []string{"title"}, "after"); len(rows) != 1 {
				t.Fatalf("read returned %v", rows)
			}
			d = e.m.Counters.Snapshot().Sub(before)
			if d.IndexRead != c.rdIdxRead || d.BaseRead != c.rdBaseRead {
				t.Errorf("read costs = %+v", d)
			}
			if d.BasePut != 0 || d.IndexPut != 0 {
				t.Errorf("read performed writes: %+v", d)
			}
		})
	}
}

func TestMixedSchemesPerIndex(t *testing.T) {
	// §3.4: schemes are chosen per index. One table carries a sync-full
	// title index and an async price index simultaneously.
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "title")
	e.createIndex(t, AsyncSimple, "price")

	if _, err := e.cl.Put(e.tbl, []byte("item001"), map[string][]byte{
		"title": []byte("t"), "price": []byte("9"),
	}); err != nil {
		t.Fatal(err)
	}
	// The sync index is immediately consistent.
	if rows := e.lookupRows(t, []string{"title"}, "t"); len(rows) != 1 {
		t.Fatalf("title rows = %v", rows)
	}
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("async index did not converge")
	}
	if rows := e.lookupRows(t, []string{"price"}, "9"); len(rows) != 1 {
		t.Fatalf("price rows = %v", rows)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	if err := e.m.CreateIndex(IndexDef{Table: "missing", Columns: []string{"a"}, Scheme: SyncFull}, nil); err == nil {
		t.Error("index on missing table created")
	}
	def := IndexDef{Table: e.tbl, Columns: []string{"title"}, Scheme: SyncFull}
	if err := e.m.CreateIndex(def, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.m.CreateIndex(def, nil); err == nil {
		t.Error("duplicate index created")
	}
	if _, err := e.m.GetByIndex(e.cl, e.tbl, []string{"unknown"}, []byte("v")); err == nil {
		t.Error("GetByIndex on missing index succeeded")
	}
	if !e.m.DropIndex(e.tbl, def.Name()) {
		t.Error("DropIndex failed")
	}
	if e.m.DropIndex(e.tbl, def.Name()) {
		t.Error("double DropIndex succeeded")
	}
}
