package core

import "diffindex/internal/metrics"

// OpCounters instruments the I/O operations of Diff-Index exactly along the
// axes of the paper's Table 2: puts and reads against the base table and
// puts (including deletes) and reads against index tables, split into
// synchronous operations (inside the client-visible request) and
// asynchronous operations performed by the APS (the bracketed "[ ]" entries
// in Table 2).
//
// The counters are views over the metrics registry: each field is the
// registry's `diffindex_io_ops_total{op=...}` counter, so Snapshot and
// MetricsSnapshot report from one source of truth.
type OpCounters struct {
	BasePut   *metrics.Counter
	BaseRead  *metrics.Counter
	IndexPut  *metrics.Counter // index inserts
	IndexDel  *metrics.Counter // index tombstones ("1+1" with IndexPut)
	IndexRead *metrics.Counter

	AsyncBaseRead *metrics.Counter
	AsyncIndexPut *metrics.Counter
	AsyncIndexDel *metrics.Counter
}

// ioOp returns the registry counter for one Table 2 axis.
func ioOp(reg *metrics.Registry, op string) *metrics.Counter {
	return reg.Counter("diffindex_io_ops_total", metrics.L("op", op))
}

// newOpCounters resolves every Table 2 axis against the registry.
func newOpCounters(reg *metrics.Registry) OpCounters {
	return OpCounters{
		BasePut:       ioOp(reg, "base-put"),
		BaseRead:      ioOp(reg, "base-read"),
		IndexPut:      ioOp(reg, "index-put"),
		IndexDel:      ioOp(reg, "index-del"),
		IndexRead:     ioOp(reg, "index-read"),
		AsyncBaseRead: ioOp(reg, "async-base-read"),
		AsyncIndexPut: ioOp(reg, "async-index-put"),
		AsyncIndexDel: ioOp(reg, "async-index-del"),
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	BasePut, BaseRead, IndexPut, IndexDel, IndexRead int64
	AsyncBaseRead, AsyncIndexPut, AsyncIndexDel      int64
}

// Snapshot copies the current values.
func (o *OpCounters) Snapshot() Snapshot {
	return Snapshot{
		BasePut:       o.BasePut.Load(),
		BaseRead:      o.BaseRead.Load(),
		IndexPut:      o.IndexPut.Load(),
		IndexDel:      o.IndexDel.Load(),
		IndexRead:     o.IndexRead.Load(),
		AsyncBaseRead: o.AsyncBaseRead.Load(),
		AsyncIndexPut: o.AsyncIndexPut.Load(),
		AsyncIndexDel: o.AsyncIndexDel.Load(),
	}
}

// Sub returns the per-axis difference s − prev, for measuring one batch of
// operations between two snapshots.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		BasePut:       s.BasePut - prev.BasePut,
		BaseRead:      s.BaseRead - prev.BaseRead,
		IndexPut:      s.IndexPut - prev.IndexPut,
		IndexDel:      s.IndexDel - prev.IndexDel,
		IndexRead:     s.IndexRead - prev.IndexRead,
		AsyncBaseRead: s.AsyncBaseRead - prev.AsyncBaseRead,
		AsyncIndexPut: s.AsyncIndexPut - prev.AsyncIndexPut,
		AsyncIndexDel: s.AsyncIndexDel - prev.AsyncIndexDel,
	}
}
