package core

import (
	"fmt"
	"testing"
	"time"
)

func TestCleanseRepairsStaleEntries(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := e.createIndex(t, SyncInsert, "title")

	// Build up stale entries: each update leaves the previous one behind.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 10; i++ {
			e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("g%d-%d", gen, i))
		}
	}
	raw := e.rawIndexEntries(t, def)
	if len(raw) != 30 { // 10 live + 20 stale
		t.Fatalf("raw entries before cleanse = %d, want 30", len(raw))
	}
	checked, repaired, err := e.m.Cleanse(e.cl, e.tbl, "title")
	if err != nil {
		t.Fatal(err)
	}
	if checked != 30 || repaired != 20 {
		t.Errorf("Cleanse = (%d checked, %d repaired), want (30, 20)", checked, repaired)
	}
	raw = e.rawIndexEntries(t, def)
	if len(raw) != 10 {
		t.Errorf("raw entries after cleanse = %d, want 10", len(raw))
	}
	// A second cleanse finds nothing to repair.
	if _, repaired, _ := e.m.Cleanse(e.cl, e.tbl, "title"); repaired != 0 {
		t.Errorf("second cleanse repaired %d", repaired)
	}
	if _, _, err := e.m.Cleanse(e.cl, e.tbl, "nope"); err == nil {
		t.Error("cleanse of missing index succeeded")
	}
}

func TestSetSchemeCleansesWhenLeavingSyncInsert(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := e.createIndex(t, SyncInsert, "title")
	e.put(t, "item001", "title", "old")
	e.put(t, "item001", "title", "new") // stale old→item001 left behind

	if err := e.m.SetScheme(e.cl, e.tbl, []string{"title"}, AsyncSimple); err != nil {
		t.Fatal(err)
	}
	got, ok := e.m.catalog.Find(e.tbl, "title")
	if !ok || got.Scheme != AsyncSimple {
		t.Fatalf("scheme after switch = %v ok=%v", got.Scheme, ok)
	}
	// The stale entry must be gone even though async reads never repair.
	entries := e.rawIndexEntries(t, def)
	if len(entries) != 1 || entries[0] != "new→item001" {
		t.Errorf("entries after switch = %v", entries)
	}
	// Same-scheme switch is a no-op; missing index errors.
	if err := e.m.SetScheme(e.cl, e.tbl, []string{"title"}, AsyncSimple); err != nil {
		t.Errorf("no-op switch: %v", err)
	}
	if err := e.m.SetScheme(e.cl, e.tbl, []string{"ghost"}, SyncFull); err == nil {
		t.Error("switch of missing index succeeded")
	}
	// Updates now flow through the async path.
	e.put(t, "item001", "title", "newer")
	if !e.m.WaitForConvergence(5 * time.Second) {
		t.Fatal("no convergence after switch")
	}
	if rows := e.lookupRows(t, []string{"title"}, "newer"); len(rows) != 1 {
		t.Errorf("rows after async update = %v", rows)
	}
}

func TestAdvisorRecommendations(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncInsert, "title")
	a := e.m.NewAdvisor()

	cases := []struct {
		req  Requirements
		want Scheme
	}{
		{Requirements{NeedConsistency: true, ReadLatencyCritical: true}, SyncFull},
		{Requirements{NeedConsistency: true, UpdateLatencyCritical: true}, SyncInsert},
		{Requirements{NeedReadYourWrites: true}, AsyncSession},
		{Requirements{}, AsyncSimple},
	}
	for _, c := range cases {
		rec := a.Recommend(e.tbl, []string{"title"}, c.req)
		if rec.Scheme != c.want {
			t.Errorf("Recommend(%+v) = %v, want %v (%s)", c.req, rec.Scheme, c.want, rec.Rationale)
		}
		if rec.Rationale == "" {
			t.Error("empty rationale")
		}
	}
}

func TestAdvisorObservesWorkloadRatio(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncInsert, "title")
	a := e.m.NewAdvisor()

	// Write-heavy phase: many updates, few reads.
	for i := 0; i < 20; i++ {
		e.put(t, fmt.Sprintf("item%03d", i), "title", fmt.Sprintf("w%d", i))
	}
	e.lookupRows(t, []string{"title"}, "w0")
	u, r := a.Observed(e.tbl, "title")
	if u != 20 || r != 1 {
		t.Errorf("Observed = (%d, %d), want (20, 1)", u, r)
	}
	rec := a.Recommend(e.tbl, []string{"title"}, Requirements{NeedConsistency: true})
	if rec.Scheme != SyncInsert {
		t.Errorf("write-heavy consistent workload → %v, want sync-insert (%s)", rec.Scheme, rec.Rationale)
	}

	// Read-heavy phase tips the balance to sync-full.
	for i := 0; i < 40; i++ {
		e.lookupRows(t, []string{"title"}, fmt.Sprintf("w%d", i%20))
	}
	rec = a.Recommend(e.tbl, []string{"title"}, Requirements{NeedConsistency: true})
	if rec.Scheme != SyncFull {
		t.Errorf("read-heavy consistent workload → %v, want sync-full (%s)", rec.Scheme, rec.Rationale)
	}
	if rec.Updates == 0 || rec.Reads == 0 {
		t.Error("recommendation missing observed counts")
	}
}

func TestAdvisorApply(t *testing.T) {
	e := newEnv(t, 2, ManagerOptions{})
	e.createIndex(t, SyncInsert, "title")
	a := e.m.NewAdvisor()
	e.put(t, "item001", "title", "v1")
	e.put(t, "item001", "title", "v2") // stale entry under sync-insert

	rec, err := a.Apply(e.cl, e.tbl, []string{"title"}, Requirements{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Scheme != AsyncSimple {
		t.Fatalf("applied scheme %v", rec.Scheme)
	}
	got, _ := e.m.catalog.Find(e.tbl, "title")
	if got.Scheme != AsyncSimple {
		t.Error("scheme not applied to catalog")
	}
	// The switch cleansed the stale sync-insert entry.
	def := IndexDef{Table: e.tbl, Columns: []string{"title"}, Scheme: AsyncSimple}
	if entries := e.rawIndexEntries(t, def); len(entries) != 1 {
		t.Errorf("entries after Apply = %v", entries)
	}
}
