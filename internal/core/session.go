package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
)

// ErrSessionExpired is returned when a session has been inactive longer
// than the configured limit or was explicitly ended; the application should
// start a new session (§5.2).
var ErrSessionExpired = errors.New("core: session expired")

var sessionCounter atomic.Int64

// Session provides session consistency (read-your-writes) on top of
// asynchronously maintained indexes (§5.2, scheme async-session). The
// client library tracks a private, in-memory set of index entries and
// delete markers generated from this session's own writes, and merges them
// into every index read. Sessions expire after inactivity, and session
// consistency automatically degrades to plain eventual consistency when the
// private tables outgrow their memory cap.
type Session struct {
	m  *Manager
	cl *cluster.Client
	id string

	mu         sync.Mutex
	private    map[string]map[string]privEntry // index name → index key → entry
	bytes      int64
	degraded   bool
	lastActive time.Time
	ended      bool
}

type privEntry struct {
	ts      kv.Timestamp
	deleted bool
}

// NewSession opens a session bound to a client (get_session() in §5.2).
func (m *Manager) NewSession(cl *cluster.Client) *Session {
	return &Session{
		m:          m,
		cl:         cl,
		id:         fmt.Sprintf("session-%d", sessionCounter.Add(1)),
		private:    make(map[string]map[string]privEntry),
		lastActive: time.Now(),
	}
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Degraded reports whether session consistency has been disabled because
// the private tables exceeded the memory cap.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// touch validates liveness and refreshes the inactivity timer. Callers hold
// s.mu.
func (s *Session) touch() error {
	if s.ended || time.Since(s.lastActive) > s.m.opts.SessionTTL {
		s.ended = true
		s.private = nil
		return ErrSessionExpired
	}
	s.lastActive = time.Now()
	return nil
}

// record tracks one private index entry, accounting memory and degrading
// the session when the cap is exceeded (§5.2: "automatically disable
// session-consistency when out-of-memory is to occur").
func (s *Session) record(indexName, key string, e privEntry) {
	if s.degraded {
		return
	}
	tbl, ok := s.private[indexName]
	if !ok {
		tbl = make(map[string]privEntry)
		s.private[indexName] = tbl
	}
	if _, existed := tbl[key]; !existed {
		s.bytes += int64(len(key)) + 16
	}
	tbl[key] = e
	if s.bytes > s.m.opts.SessionMaxBytes {
		s.degraded = true
		s.private = make(map[string]map[string]privEntry)
		s.bytes = 0
	}
}

// Put writes a row within the session: a regular put that also requests the
// old values back, from which the library generates private delete markers
// and new index entries (§5.2).
func (s *Session) Put(table string, row []byte, cols map[string][]byte) (kv.Timestamp, error) {
	s.mu.Lock()
	if err := s.touch(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	degraded := s.degraded
	s.mu.Unlock()

	if degraded {
		return s.cl.Put(table, row, cols)
	}
	ts, old, err := s.cl.PutWithOld(table, row, cols)
	if err != nil {
		return 0, err
	}

	newCols := make(map[string][]byte, len(old)+len(cols))
	for c, v := range old {
		newCols[c] = v
	}
	for c, v := range cols {
		newCols[c] = v
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, def := range s.m.catalog.IndexesOn(table) {
		if def.Local || !def.Scheme.Asynchronous() || !def.Covers(cols) {
			continue
		}
		oldVal, hadOld := indexValue(def, old)
		newVal, hasNew := indexValue(def, newCols)
		if hadOld && (!hasNew || !bytes.Equal(oldVal, newVal)) {
			s.record(def.Name(), string(kv.IndexKey(oldVal, row)), privEntry{ts: ts - kv.Delta, deleted: true})
		}
		if hasNew {
			s.record(def.Name(), string(kv.IndexKey(newVal, row)), privEntry{ts: ts, deleted: false})
		}
	}
	return ts, nil
}

// Delete removes row columns within the session, generating private delete
// markers for the affected index entries.
func (s *Session) Delete(table string, row []byte, cols []string) (kv.Timestamp, error) {
	s.mu.Lock()
	if err := s.touch(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	degraded := s.degraded
	s.mu.Unlock()

	if degraded {
		return s.cl.Delete(table, row, cols)
	}
	// Read the pre-image first: the markers need the old index values.
	old, err := s.cl.GetRow(table, row)
	if err != nil {
		return 0, err
	}
	ts, err := s.cl.Delete(table, row, cols)
	if err != nil {
		return 0, err
	}
	deleted := cols
	if deleted == nil {
		for c := range old {
			deleted = append(deleted, c)
		}
	}
	newCols := make(map[string][]byte, len(old))
	for c, v := range old {
		newCols[c] = v
	}
	for _, c := range deleted {
		delete(newCols, c)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, def := range s.m.catalog.IndexesOn(table) {
		if def.Local || !def.Scheme.Asynchronous() || !def.CoversNames(deleted) {
			continue
		}
		oldVal, hadOld := indexValue(def, old)
		newVal, hasNew := indexValue(def, newCols)
		if hadOld && (!hasNew || !bytes.Equal(oldVal, newVal)) {
			s.record(def.Name(), string(kv.IndexKey(oldVal, row)), privEntry{ts: ts - kv.Delta, deleted: true})
		}
		if hasNew {
			s.record(def.Name(), string(kv.IndexKey(newVal, row)), privEntry{ts: ts, deleted: false})
		}
	}
	return ts, nil
}

// GetByIndex is the session-consistent getFromIndex (§5.2): the regular
// index read merged with the session's private entries, guaranteeing the
// caller sees its own writes even before the APS has applied them.
func (s *Session) GetByIndex(table string, columns []string, value []byte) ([]IndexHit, error) {
	if def, ok := s.m.catalog.Find(table, columns...); ok && def.Local {
		// Local indexes are maintained synchronously inside the row's
		// region, so plain reads already satisfy read-your-writes.
		s.mu.Lock()
		err := s.touch()
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return s.m.GetByIndex(s.cl, table, columns, value)
	}
	prefix := kv.IndexValuePrefix(value)
	return s.getMerged(table, columns, prefix, kv.PrefixSuccessor(prefix), func(v []byte) bool {
		return bytes.Equal(v, value)
	})
}

// RangeByIndex is the session-consistent range lookup: low ≤ v ≤ high.
func (s *Session) RangeByIndex(table string, columns []string, low, high []byte, limit int) ([]IndexHit, error) {
	if def, ok := s.m.catalog.Find(table, columns...); ok && def.Local {
		s.mu.Lock()
		err := s.touch()
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return s.m.RangeByIndex(s.cl, table, columns, low, high, limit)
	}
	lo, hi := kv.IndexValueRange(low, high)
	hits, err := s.getMerged(table, columns, lo, hi, func(v []byte) bool {
		return bytes.Compare(v, low) >= 0 && (high == nil || bytes.Compare(v, high) <= 0)
	})
	if err != nil {
		return nil, err
	}
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, nil
}

func (s *Session) getMerged(table string, columns []string, lo, hi []byte, valueMatch func([]byte) bool) ([]IndexHit, error) {
	s.mu.Lock()
	if err := s.touch(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()

	def, ok := s.m.catalog.Find(table, columns...)
	if !ok {
		return nil, fmt.Errorf("core: no index on %s(%v)", table, columns)
	}
	tr := s.m.cluster.Tracer().Start("index-get", table)
	defer s.m.cluster.Tracer().Finish(tr)
	hits, err := s.m.readIndex(s.cl, def, lo, hi, 0, tr)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded {
		return hits, nil
	}
	priv := s.private[def.Name()]
	if len(priv) == 0 {
		return hits, nil
	}

	// Drop server hits superseded by a private delete marker.
	merged := hits[:0]
	seen := make(map[string]bool, len(hits))
	for _, h := range hits {
		// Reconstruct the hit's index key to match private entries.
		key := string(indexKeyForHit(def, lo, hi, h, priv))
		if key != "" {
			if e, ok := priv[key]; ok && e.deleted && e.ts >= h.Ts {
				continue
			}
			seen[key] = true
		}
		merged = append(merged, h)
	}
	// Add private puts the server has not applied yet.
	for key, e := range priv {
		if e.deleted || seen[key] {
			continue
		}
		val, row, err := kv.SplitIndexKey([]byte(key))
		if err != nil || !valueMatch(val) {
			continue
		}
		merged = append(merged, IndexHit{Row: append([]byte(nil), row...), Ts: e.ts})
	}
	sort.Slice(merged, func(i, j int) bool { return bytes.Compare(merged[i].Row, merged[j].Row) < 0 })
	return merged, nil
}

// indexKeyForHit finds the private-table key corresponding to a server hit.
// Exact-match lookups know the value (lo is its prefix); range lookups must
// search the private entries for the row.
func indexKeyForHit(def IndexDef, lo, hi []byte, h IndexHit, priv map[string]privEntry) []byte {
	for key := range priv {
		_, row, err := kv.SplitIndexKey([]byte(key))
		if err == nil && bytes.Equal(row, h.Row) {
			k := []byte(key)
			if bytes.Compare(k, lo) >= 0 && (hi == nil || bytes.Compare(k, hi) < 0) {
				return k
			}
		}
	}
	return nil
}

// End terminates the session and garbage-collects its private tables
// (end_session() in §5.2).
func (s *Session) End() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ended = true
	s.private = nil
	s.bytes = 0
}
