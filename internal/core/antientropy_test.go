package core

import (
	"fmt"
	"testing"

	"diffindex/internal/kv"
)

// loadRows writes n rows with a "color" column through the normal put path
// (index maintenance runs), spreading rows across both regions of the test
// table.
func loadRows(t testing.TB, e *env, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf("item%03d", i*25), "color", fmt.Sprintf("c%d", i%5))
	}
}

func TestAntiEntropyCleanIndex(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "color")
	loadRows(t, e, 40)

	reports, err := e.m.VerifyIndexes(e.cl, e.tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	rep := reports[0]
	if !rep.Healthy() || rep.DivergentBuckets != 0 || rep.Repaired != 0 {
		t.Fatalf("clean index reported divergence: %s", rep)
	}
	if rep.Buckets != VerifyBuckets {
		t.Fatalf("Buckets = %d", rep.Buckets)
	}
}

func TestAntiEntropyRepairsMissingEntry(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "color")
	loadRows(t, e, 40)

	// Simulate a LOST index insert: write a base row through the raw apply
	// path, which bypasses the coprocessor — the base has the row, the index
	// never saw it, and no tombstone exists. This is exactly the state a
	// dropped queue entry or buggy maintenance path leaves behind.
	row := []byte("item123")
	if err := e.cl.RawApply(e.tbl, row, []kv.Cell{{
		Key: kv.BaseKey(row, []byte("color")), Value: []byte("lost"), Ts: 999999, Kind: kv.KindPut,
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.lookupRows(t, []string{"color"}, "lost"); len(got) != 0 {
		t.Fatalf("index unexpectedly already has the entry: %v", got)
	}

	rep, err := e.m.VerifyIndex(e.cl, e.tbl, "color")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 || rep.Stale != 0 || rep.Repaired != 1 {
		t.Fatalf("report: %s", rep)
	}
	if rep.DivergentBuckets == 0 {
		t.Fatalf("digest comparison missed the divergence: %s", rep)
	}

	// The repaired entry now serves index reads.
	if got := e.lookupRows(t, []string{"color"}, "lost"); len(got) != 1 || got[0] != "item123" {
		t.Fatalf("post-repair lookup = %v", got)
	}
	// And the index digests converge: a second sweep is clean.
	rep2, err := e.m.VerifyIndex(e.cl, e.tbl, "color")
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Healthy() || rep2.DivergentBuckets != 0 {
		t.Fatalf("residual divergence after repair: %s", rep2)
	}
}

func TestAntiEntropyRepairsStaleEntry(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := e.createIndex(t, SyncFull, "color")
	loadRows(t, e, 40)

	// Simulate a PHANTOM entry: an index key no base row justifies, injected
	// straight into the index table (the state a lost delete or misdirected
	// insert leaves behind). Sync-full reads trust the index, so the phantom
	// is served to queries until anti-entropy removes it.
	phantomKey := kv.IndexKey([]byte("phantom"), []byte("item042"))
	if err := e.cl.RawApply(def.Name(), phantomKey, []kv.Cell{{
		Key: phantomKey, Ts: 777777, Kind: kv.KindPut,
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.lookupRows(t, []string{"color"}, "phantom"); len(got) != 1 {
		t.Fatalf("phantom not visible pre-repair: %v", got)
	}

	rep, err := e.m.VerifyIndex(e.cl, e.tbl, "color")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale != 1 || rep.Missing != 0 || rep.Repaired != 1 {
		t.Fatalf("report: %s", rep)
	}
	if got := e.lookupRows(t, []string{"color"}, "phantom"); len(got) != 0 {
		t.Fatalf("phantom still served after repair: %v", got)
	}
	rep2, err := e.m.VerifyIndex(e.cl, e.tbl, "color")
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Healthy() || rep2.DivergentBuckets != 0 {
		t.Fatalf("residual divergence after repair: %s", rep2)
	}
}

func TestAntiEntropyCompositeIndex(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, SyncFull, "a", "b")
	for i := 0; i < 20; i++ {
		row := fmt.Sprintf("item%03d", i*50)
		if _, err := e.cl.Put(e.tbl, []byte(row), map[string][]byte{
			"a": []byte(fmt.Sprintf("a%d", i%3)),
			"b": []byte(fmt.Sprintf("b%d", i%4)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Lost composite insert: both columns through the raw path at one ts.
	row := []byte("item777")
	if err := e.cl.RawApply(e.tbl, row, []kv.Cell{
		{Key: kv.BaseKey(row, []byte("a")), Value: []byte("ax"), Ts: 500000, Kind: kv.KindPut},
		{Key: kv.BaseKey(row, []byte("b")), Value: []byte("bx"), Ts: 500000, Kind: kv.KindPut},
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := e.m.VerifyIndex(e.cl, e.tbl, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 || rep.Repaired != 1 {
		t.Fatalf("report: %s", rep)
	}
	want := kv.EncodeComposite([]byte("ax"), []byte("bx"))
	if got := e.lookupRows(t, []string{"a", "b"}, string(want)); len(got) != 1 || got[0] != "item777" {
		t.Fatalf("post-repair composite lookup = %v", got)
	}
}

func TestAntiEntropyAsyncIndexAfterConvergence(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	e.createIndex(t, AsyncSimple, "color")
	loadRows(t, e, 40)
	if !e.m.WaitForConvergence(5e9) {
		t.Fatal("async index did not converge")
	}
	rep, err := e.m.VerifyIndex(e.cl, e.tbl, "color")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.Repaired != 0 {
		t.Fatalf("converged async index reported divergence: %s", rep)
	}
}

func TestAntiEntropySkipsLocalIndexes(t *testing.T) {
	e := newEnv(t, 3, ManagerOptions{})
	def := IndexDef{Table: e.tbl, Columns: []string{"color"}, Scheme: SyncFull, Local: true}
	if err := e.m.CreateIndex(def, nil); err != nil {
		t.Fatal(err)
	}
	loadRows(t, e, 10)
	reports, err := e.m.VerifyIndexes(e.cl, e.tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("local index swept: %v", reports)
	}
	if _, err := e.m.VerifyIndex(e.cl, e.tbl, "color"); err == nil {
		t.Fatal("VerifyIndex on a local index must fail")
	}
}
