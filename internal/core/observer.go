package core

import (
	"errors"
	"time"

	"diffindex/internal/cluster"
	"diffindex/internal/kv"
	"diffindex/internal/metrics"
)

// errDrainAborted aborts a flush whose pre-flush AUQ drain could not finish
// because the region died underneath it (§5.3: the flush must not truncate
// the WAL record of still-pending index work).
var errDrainAborted = errors.New("core: flush aborted, AUQ drain interrupted by region close")

// observer is the per-table coprocessor (§7's SyncFullObserver,
// SyncInsertObserver and AsyncObserver folded into one dispatcher): it
// intercepts every mutation on an indexed base table and performs the
// maintenance required by each index's scheme.
type observer struct {
	m *Manager
}

var _ cluster.Coprocessor = (*observer)(nil)

// PostPut implements index update on put. It runs inside the put pipeline
// on the base region's server, after the base cells were applied (SU1/AU1
// already happened) and before the put RPC returns.
func (o *observer) PostPut(ctx cluster.RegionCtx, row []byte, cols map[string][]byte, ts kv.Timestamp) error {
	o.m.Counters.BasePut.Inc()
	t := task{row: row, ts: ts, putCols: cols, enqueuedAt: time.Now()}
	o.dispatch(ctx, t)
	return nil
}

// PostDelete implements index update on delete: in LSM a delete is a put of
// a tombstone, and the index maintenance is the same pipeline with no new
// entry (§4.3).
func (o *observer) PostDelete(ctx cluster.RegionCtx, row []byte, cols []string, ts kv.Timestamp) error {
	o.m.Counters.BasePut.Inc()
	t := task{row: row, ts: ts, delCols: cols, enqueuedAt: time.Now()}
	o.dispatch(ctx, t)
	return nil
}

// dispatch routes one mutation to each index according to its scheme. The
// schemes partition per index, so a table can simultaneously carry e.g. a
// sync-insert index on title and an async index on price (§3.4).
func (o *observer) dispatch(ctx cluster.RegionCtx, t task) {
	defs := o.m.catalog.IndexesOn(ctx.Region.Info.Table)

	var needsSyncFull, needsAsync bool
	var localDefs []IndexDef
	for _, def := range defs {
		covered := (t.putCols != nil && def.Covers(t.putCols)) || (t.delCols != nil && def.CoversNames(t.delCols))
		if !covered {
			continue
		}
		o.m.noteIndexUpdate(def.Name())
		if def.Local {
			// Local index maintenance is synchronous and region-local
			// (§3.1): same server, so the writes below cost no network hop.
			localDefs = append(localDefs, def)
			continue
		}
		switch def.Scheme {
		case SyncFull:
			needsSyncFull = true
		case SyncInsert:
			// Scheme sync-insert: run SU1 and SU2 only (§4.2) — insert the
			// new entry, leave stale entries for read repair. Deletes have
			// no new entry, so sync-insert does nothing for them until a
			// read repairs the stale entry.
			rpcStart := time.Now()
			o.syncInsert(ctx, def, t)
			d := time.Since(rpcStart)
			o.m.stageHist(metrics.StageIndexRPC, ctx.Region.Info.Table, metrics.L("scheme", "sync-insert")).RecordDuration(d)
			ctx.Trace.AddStage(metrics.StageIndexRPC, d)
		case AsyncSimple, AsyncSession:
			needsAsync = true
		}
	}
	if len(localDefs) > 0 {
		if err := o.m.applyIndexUpdatesFor(ctx, t, false, localDefs); err != nil {
			retry := t
			retry.allIndexes = true
			o.m.auqFor(ctx).enqueue(retry)
		}
	}
	// Sync-full indexes share one pre-image read (Algorithm 1).
	if needsSyncFull {
		rpcStart := time.Now()
		err := o.syncFull(ctx, t)
		d := time.Since(rpcStart)
		o.m.stageHist(metrics.StageIndexRPC, ctx.Region.Info.Table, metrics.L("scheme", "sync-full")).RecordDuration(d)
		ctx.Trace.AddStage(metrics.StageIndexRPC, d)
		if err != nil {
			// A failed synchronous operation degrades to eventual
			// consistency: the task enters the AUQ and is retried until it
			// succeeds (§6.2 Atomicity/Durability). allIndexes makes the
			// redelivery cover the sync indexes whose work failed.
			retry := t
			retry.allIndexes = true
			o.m.auqFor(ctx).enqueue(retry)
			return
		}
	}
	// Async indexes enqueue the mutation once; the APS applies it to every
	// asynchronous index (Algorithm 3, AU1-AU2). The enqueue is timed
	// because a full queue blocks here — backpressure is latency the client
	// observes (§8.2).
	if needsAsync {
		enqStart := time.Now()
		o.m.auqFor(ctx).enqueue(t)
		d := time.Since(enqStart)
		o.m.stageHist(metrics.StageAUQEnqueue, ctx.Region.Info.Table).RecordDuration(d)
		ctx.Trace.AddStage(metrics.StageAUQEnqueue, d)
	}
}

// syncFull runs the synchronous part of Algorithm 1 (SU2-SU4) for every
// sync-full index on the table.
func (o *observer) syncFull(ctx cluster.RegionCtx, t task) error {
	var defs []IndexDef
	for _, def := range o.m.catalog.IndexesOn(ctx.Region.Info.Table) {
		if !def.Local && def.Scheme == SyncFull && covered(def, t) {
			defs = append(defs, def)
		}
	}
	return o.m.applyIndexUpdatesFor(ctx, t, false, defs)
}

// syncInsert performs P_I(v_new ⊕ k, t_new) only — no base read, no delete
// (Equation 2: L(sync-insert) = L(P_I)).
func (o *observer) syncInsert(ctx cluster.RegionCtx, def IndexDef, t task) {
	if t.putCols == nil {
		return // deletes insert nothing; read repair cleans the stale entry
	}
	newVal, ok := indexValue(def, t.putCols)
	if !ok {
		// A partial put that does not cover the whole composite index:
		// complete the post-image from the pre-image. (Single-column
		// indexes — the paper's setting — never take this branch, keeping
		// sync-insert's update path free of base reads.)
		oldCols, err := ctx.Region.LocalGetRow(t.row, t.ts-kv.Delta)
		if err != nil {
			o.m.auqFor(ctx).enqueue(t)
			return
		}
		o.m.Counters.BaseRead.Inc()
		merged := make(map[string][]byte, len(oldCols)+len(t.putCols))
		for c, v := range oldCols {
			merged[c] = v
		}
		for c, v := range t.putCols {
			merged[c] = v
		}
		if newVal, ok = indexValue(def, merged); !ok {
			return // row lacks indexed columns: no entry
		}
	}
	newKey := kv.IndexKey(newVal, t.row)
	cell := kv.Cell{Key: newKey, Ts: t.ts, Kind: kv.KindPut}
	conn := o.m.clientFor(ctx.Server.ID())
	if err := conn.MultiApply(def.Name(), []kv.Cell{cell}); err != nil {
		// Degrade to eventual consistency through the AUQ (§6.2). The AUQ
		// path also deletes the superseded entry, which is strictly more
		// repair than sync-insert promises — harmless.
		retry := t
		retry.allIndexes = true
		o.m.auqFor(ctx).enqueue(retry)
		return
	}
	o.m.Counters.IndexPut.Inc()
}

// PreFlush implements the drain-before-flush protocol (§5.3, Figure 5): it
// runs while the region's write gate is held exclusively (intake paused)
// and waits until the region's AUQ is empty, so no pending request refers
// to data about to be flushed (PR(Flushed) = ∅).
func (o *observer) PreFlush(ctx cluster.RegionCtx) error {
	if o.m.opts.DisableDrainOnFlush {
		return nil // ablation mode:§5.3's PR(Flushed) = ∅ invariant is broken
	}
	o.m.mu.Lock()
	q, ok := o.m.auqs[ctx.Region]
	o.m.mu.Unlock()
	if ok {
		// Count and time the drain: a deep queue here is a flush stall the
		// recovery experiments need to see (§5.3 pause-and-drain cost).
		table := ctx.Region.Info.Table
		o.m.reg.Counter("diffindex_flush_drains_total", metrics.L("table", table)).Inc()
		o.m.reg.Counter("diffindex_flush_drain_tasks_total", metrics.L("table", table)).Add(q.depth())
		drainStart := time.Now()
		drained := q.drain()
		o.m.stageHist(metrics.StageFlushDrain, table).RecordDuration(time.Since(drainStart))
		if !drained {
			// The region died (crash, move, decommission) before the queue
			// emptied. Aborting keeps the undrained tasks' base cells in the
			// WAL, where replay at the region's next host reconstructs them.
			return errDrainAborted
		}
	}
	return nil
}

// ReplayStarted marks n replayed cells as in flight toward re-enqueue:
// OpenRegion dispatches its OnReplay loop in the background, and until the
// returned func runs, convergence waits must not treat the AUQs as drained.
func (o *observer) ReplayStarted(n int) func() {
	o.m.replayInflight.Add(int64(n))
	return func() { o.m.replayInflight.Add(-int64(n)) }
}

// OnReplay re-enqueues every replayed base cell into the AUQ (§5.3): some
// may already have been delivered before the failure, but redelivery is
// idempotent because index entries carry the base entry's timestamp.
func (o *observer) OnReplay(ctx cluster.RegionCtx, c kv.Cell) {
	row, col, err := kv.SplitBaseKey(c.Key)
	if err != nil {
		return
	}
	t := task{row: append([]byte(nil), row...), ts: c.Ts, enqueuedAt: time.Now(), allIndexes: true}
	if c.Kind == kv.KindDelete {
		t.delCols = []string{string(col)}
	} else {
		t.putCols = map[string][]byte{string(col): append([]byte(nil), c.Value...)}
	}
	o.m.auqFor(ctx).enqueue(t)
}

// OnRegionClose tears down the region's AUQ; pending entries are dropped
// and will be reconstructed by WAL replay wherever the region reopens.
func (o *observer) OnRegionClose(ctx cluster.RegionCtx) {
	if q := o.m.dropAUQ(ctx.Region); q != nil {
		q.kill()
	}
}
