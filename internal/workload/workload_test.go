package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"diffindex"
)

func TestZipfianSkewAndRange(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, ZipfianConstant, rand.New(rand.NewSource(1)))
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= n {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must dominate: with θ=0.99 and n=1000 it gets ≈13% of draws.
	if counts[0] < draws/20 {
		t.Errorf("item 0 drew only %d/%d", counts[0], draws)
	}
	if counts[0] < counts[n/2]*10 {
		t.Errorf("insufficient skew: head=%d mid=%d", counts[0], counts[n/2])
	}
}

func TestUniformCoverage(t *testing.T) {
	g := NewGenerator("uniform", 100, 7)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Errorf("uniform covered only %d/100 values", len(seen))
	}
}

func TestLatestSkewsHigh(t *testing.T) {
	g := NewGenerator("latest", 1000, 7)
	high := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := g.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 900 {
			high++
		}
	}
	if high < draws/3 {
		t.Errorf("latest drew top decile only %d/%d", high, draws)
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	g := NewScrambledZipfian(1000, 3)
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		v := g.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("scrambled out of range: %d", v)
		}
		seen[v] = true
	}
	// The hot set must not be clustered at the low ordinals.
	low := 0
	for v := range seen {
		if v < 100 {
			low++
		}
	}
	if low > len(seen)/2 {
		t.Errorf("scrambled zipfian clustered: %d/%d in the first decile", low, len(seen))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, d := range []string{"uniform", "zipfian", "latest"} {
		a := NewGenerator(d, 500, 42)
		b := NewGenerator(d, 500, 42)
		for i := 0; i < 10000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: same-seed generators diverged at draw %d", d, i)
			}
		}
	}
}

// TestGeneratorGoldenSequences pins the exact first draws of every
// distribution for a fixed seed. Seed determinism is what makes chaos
// schedules and benchmark sweeps reproducible ("same seed, same keys"), so
// any change to a chooser's draw sequence — reordering its internal PRNG
// consumption, changing the scramble hash, touching the zipfian constants —
// must show up as a deliberate golden update in review, not as silent drift.
func TestGeneratorGoldenSequences(t *testing.T) {
	golden := map[string][]int64{
		"uniform": {675, 411, 760, 9, 657, 261, 247, 208, 868, 184, 314, 41},
		"zipfian": {30, 202, 842, 611, 202, 30, 408, 30, 30, 816, 145, 611},
		"latest":  {991, 999, 950, 997, 999, 991, 755, 991, 991, 931, 864, 997},
	}
	for d, want := range golden {
		g := NewGenerator(d, 1000, 42)
		for i, w := range want {
			if got := g.Next(); got != w {
				t.Errorf("%s draw %d = %d, want %d (seeded sequence drifted)", d, i, got, w)
			}
		}
	}
}

// TestScrambledZipfianHotspotSkew checks the scrambled zipfian keeps the
// zipfian *popularity mass* (a small hot set dominates) while spreading that
// hot set across the key space. θ=0.99 over n=10000 gives the most popular
// item 1/ζ_n(θ) ≈ 9.8% of draws; the top 1% of keys should carry about half
// the mass (uniform would give them 1%).
func TestScrambledZipfianHotspotSkew(t *testing.T) {
	const (
		n     = 10000
		draws = 200000
	)
	g := NewScrambledZipfian(n, 7)
	counts := make(map[int64]int)
	for i := 0; i < draws; i++ {
		v := g.Next()
		if v < 0 || v >= n {
			t.Fatalf("scrambled zipfian out of range: %d", v)
		}
		counts[v]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))

	if top := float64(freqs[0]) / draws; top < 0.05 || top > 0.15 {
		t.Errorf("hottest key drew %.1f%% of ops, want ≈9.8%% (zipfian mass lost)", top*100)
	}
	topMass := 0
	for i := 0; i < n/100 && i < len(freqs); i++ {
		topMass += freqs[i]
	}
	if m := float64(topMass) / draws; m < 0.4 {
		t.Errorf("top 1%% of keys drew only %.1f%% of ops, want ≈53%% (skew too flat)", m*100)
	} else if m > 0.7 {
		t.Errorf("top 1%% of keys drew %.1f%% of ops, want ≈53%% (skew too sharp)", m*100)
	}
	// The scramble must spread the hot set: a zipfian this skewed still
	// touches most of a 10k key space in 200k draws once hashed.
	if len(counts) < n/2 {
		t.Errorf("only %d/%d distinct keys drawn (hot set clustered, not scrambled)", len(counts), n)
	}
}

func TestItemSchemaShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols := ItemRow(7, rng)
	if len(cols) != 2+FillerColumns {
		t.Errorf("ItemRow has %d columns", len(cols))
	}
	size := 0
	for _, v := range cols {
		size += len(v)
	}
	if size < 800 || size > 1200 {
		t.Errorf("row payload = %d bytes, want ≈1KB", size)
	}
	if string(ItemKey(3)) >= string(ItemKey(10)) {
		t.Error("item keys must sort numerically")
	}
	if string(PriceValue(5)) >= string(PriceValue(50)) {
		t.Error("price values must sort numerically")
	}
	if string(TitleValue(1)) == string(UpdatedTitleValue(1, 1)) {
		t.Error("updated title must differ from the initial title")
	}
}

func TestSplitsAreSortedAndSized(t *testing.T) {
	for _, splits := range [][][]byte{
		TableSplits(1000, 4),
		TitleIndexSplits(1000, 4),
		PriceIndexSplits(1000, 4),
	} {
		if len(splits) != 3 {
			t.Fatalf("got %d splits, want 3", len(splits))
		}
		for i := 1; i < len(splits); i++ {
			if string(splits[i-1]) >= string(splits[i]) {
				t.Fatal("splits unsorted")
			}
		}
	}
	if TableSplits(1000, 1) != nil || TitleIndexSplits(10, 0) != nil || PriceIndexSplits(10, 1) != nil {
		t.Error("single-region split lists must be nil")
	}
}

func TestSetupLoadAndRun(t *testing.T) {
	db := diffindex.Open(diffindex.Options{Servers: 3})
	defer db.Close()
	const records = 200
	if err := Setup(db, records, 3, int(diffindex.SyncInsert), int(diffindex.SyncFull), 2); err != nil {
		t.Fatal(err)
	}
	cl := db.NewClient("verify")
	// Loaded rows are present and indexed.
	row, err := cl.GetRow(TableName, ItemKey(42))
	if err != nil || row == nil || string(row[TitleColumn]) != string(TitleValue(42)) {
		t.Fatalf("row 42 = %v err=%v", row, err)
	}
	hits, err := cl.GetByIndex(TableName, []string{TitleColumn}, TitleValue(42))
	if err != nil || len(hits) != 1 {
		t.Fatalf("title index hits = %v err=%v", hits, err)
	}
	// A run with a mixed op profile completes and records latencies.
	res := Run(db, RunConfig{
		Records:  records,
		Threads:  4,
		TotalOps: 400,
		Mix: map[OpKind]float64{
			OpIndexRead: 0.3,
			OpRangeRead: 0.1,
			OpRowRead:   0.1,
			// remaining 0.5 → updates
		},
		RangeSelectivity: 0.01,
		Distribution:     "zipfian",
		Seed:             11,
	})
	if res.Ops == 0 || res.TPS <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors during run", res.Errors)
	}
	for _, k := range []OpKind{OpUpdate, OpIndexRead, OpRangeRead, OpRowRead} {
		if res.PerOp[k].Count() == 0 {
			t.Errorf("op kind %s never ran", k)
		}
	}
	if res.All.Count() != res.Ops {
		t.Errorf("All histogram count %d != ops %d", res.All.Count(), res.Ops)
	}
}

func TestRunThrottled(t *testing.T) {
	db := diffindex.Open(diffindex.Options{Servers: 2})
	defer db.Close()
	if err := Setup(db, 50, 2, int(diffindex.AsyncSimple), -1, 1); err != nil {
		t.Fatal(err)
	}
	const target = 500.0
	res := Run(db, RunConfig{
		Records:      50,
		Threads:      2,
		Duration:     400 * time.Millisecond,
		TargetTPS:    target,
		Distribution: "uniform",
		Seed:         3,
	})
	if res.TPS > target*1.5 {
		t.Errorf("throttled run achieved %.0f TPS, target %.0f", res.TPS, target)
	}
	if res.Ops == 0 {
		t.Error("throttled run did nothing")
	}
	if !db.WaitForIndexes(5 * time.Second) {
		t.Error("async index did not converge after run")
	}
}

func TestRunDurationMode(t *testing.T) {
	db := diffindex.Open(diffindex.Options{Servers: 2})
	defer db.Close()
	if err := Setup(db, 20, 2, -1, -1, 1); err != nil { // no-index baseline
		t.Fatal(err)
	}
	start := time.Now()
	res := Run(db, RunConfig{
		Records:      20,
		Threads:      2,
		Duration:     100 * time.Millisecond,
		Distribution: "uniform",
		Seed:         5,
	})
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("duration mode returned too early: %v", elapsed)
	}
	if res.Ops == 0 {
		t.Error("no ops in duration mode")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpUpdate: "update", OpIndexRead: "index-read",
		OpRangeRead: "range-read", OpRowRead: "row-read",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown op must render")
	}
}
