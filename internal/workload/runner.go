package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"diffindex"
	"diffindex/internal/metrics"
)

// OpKind labels the operation types the runner can issue.
type OpKind int

const (
	// OpUpdate writes a new title to an item (a base put that forces index
	// maintenance) — the update workload of Figures 7 and 10.
	OpUpdate OpKind = iota
	// OpIndexRead is an exact-match getByIndex on item_title — Figure 8.
	OpIndexRead
	// OpRangeRead is a range query on item_price — Figure 9.
	OpRangeRead
	// OpRowRead is a plain primary-key row read (used for mixed workloads).
	OpRowRead
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpUpdate:
		return "update"
	case OpIndexRead:
		return "index-read"
	case OpRangeRead:
		return "range-read"
	case OpRowRead:
		return "row-read"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// RunConfig shapes one measured run.
type RunConfig struct {
	// Records is the loaded item count (key-chooser domain).
	Records int64
	// Threads is the closed-loop client thread count (the paper sweeps
	// 1-320).
	Threads int
	// TotalOps ends the run after this many operations (split across
	// threads). If 0, Duration governs.
	TotalOps int64
	// Duration ends the run after this wall time when TotalOps is 0.
	Duration time.Duration
	// TargetTPS, when non-zero, throttles the aggregate request rate — the
	// fixed-load mode of Figure 11's staleness measurement.
	TargetTPS float64
	// Mix gives the probability of each op kind; entries must sum to ≤ 1,
	// the remainder going to OpUpdate.
	Mix map[OpKind]float64
	// RangeSelectivity sets the fraction of the price-value space covered
	// by each range query (Figure 9 sweeps 0.000001-0.001).
	RangeSelectivity float64
	// Distribution is the key-chooser ("uniform", "zipfian", "latest").
	Distribution string
	// Seed makes runs reproducible.
	Seed int64
}

// Result aggregates a run's measurements.
type Result struct {
	Duration time.Duration
	Ops      int64
	Errors   int64
	// TPS is the achieved aggregate throughput.
	TPS float64
	// PerOp holds one latency histogram (nanoseconds) per op kind.
	PerOp map[OpKind]*metrics.Histogram
	// All aggregates every operation's latency.
	All *metrics.Histogram
}

// Run drives the workload against the cluster and returns its measurements.
// Each thread is a separate network client issuing back-to-back requests
// ("Each client thread continuously submits read/write request to the
// system. A completed request will be followed up by another one
// immediately", §8.1).
func Run(db *diffindex.DB, cfg RunConfig) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Records <= 0 {
		cfg.Records = 1
	}
	res := Result{
		PerOp: make(map[OpKind]*metrics.Histogram, numOpKinds),
		All:   metrics.NewHistogram(),
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		res.PerOp[k] = metrics.NewHistogram()
	}

	var (
		opsIssued atomic.Int64
		errs      atomic.Int64
		updateGen atomic.Int64
	)
	deadline := time.Time{}
	if cfg.TotalOps == 0 {
		d := cfg.Duration
		if d == 0 {
			d = time.Second
		}
		deadline = time.Now().Add(d)
	}
	perThreadInterval := time.Duration(0)
	if cfg.TargetTPS > 0 {
		perThreadInterval = time.Duration(float64(time.Second) / (cfg.TargetTPS / float64(cfg.Threads)))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := db.NewClient(fmt.Sprintf("ycsb-%d", w))
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			chooser := NewGenerator(cfg.Distribution, cfg.Records, cfg.Seed+int64(w)*15485863)
			next := time.Now()
			for {
				if cfg.TotalOps > 0 {
					if opsIssued.Add(1) > cfg.TotalOps {
						return
					}
				} else {
					if time.Now().After(deadline) {
						return
					}
					opsIssued.Add(1)
				}
				if perThreadInterval > 0 {
					now := time.Now()
					if now.Before(next) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(perThreadInterval)
				}

				kind := pickOp(rng, cfg.Mix)
				item := chooser.Next()
				opStart := time.Now()
				var err error
				switch kind {
				case OpUpdate:
					gen := updateGen.Add(1)
					_, err = cl.Put(TableName, ItemKey(item), diffindex.Cols{
						TitleColumn: UpdatedTitleValue(item, gen),
					})
				case OpIndexRead:
					_, err = cl.GetByIndex(TableName, []string{TitleColumn}, TitleValue(item))
				case OpRangeRead:
					span := int64(cfg.RangeSelectivity * float64(cfg.Records))
					if span < 1 {
						span = 1
					}
					lo := item
					if lo+span > cfg.Records {
						lo = cfg.Records - span
					}
					_, err = cl.RangeByIndex(TableName, []string{PriceColumn},
						PriceValue(lo), PriceValue(lo+span-1), 0)
				case OpRowRead:
					_, err = cl.GetRow(TableName, ItemKey(item))
				}
				lat := time.Since(opStart)
				if err != nil {
					errs.Add(1)
					continue
				}
				res.PerOp[kind].RecordDuration(lat)
				res.All.RecordDuration(lat)
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Ops = res.All.Count()
	res.Errors = errs.Load()
	if secs := res.Duration.Seconds(); secs > 0 {
		res.TPS = float64(res.Ops) / secs
	}
	return res
}

// PickOp samples an op kind from the mix — shared with the open-loop
// harness (internal/scale) so both loops interpret Mix identically.
func PickOp(rng *rand.Rand, mix map[OpKind]float64) OpKind { return pickOp(rng, mix) }

// pickOp samples an op kind from the mix; unassigned probability mass goes
// to OpUpdate.
func pickOp(rng *rand.Rand, mix map[OpKind]float64) OpKind {
	if len(mix) == 0 {
		return OpUpdate
	}
	u := rng.Float64()
	acc := 0.0
	for k := OpKind(0); k < numOpKinds; k++ {
		p, ok := mix[k]
		if !ok {
			continue
		}
		acc += p
		if u < acc {
			return k
		}
	}
	return OpUpdate
}
