// Package workload reproduces the paper's benchmark driver: YCSB (§8.1)
// extended with an item table of 10 columns (~1 KB rows) whose item_title
// and item_price columns are indexed. It provides the YCSB key-choosers
// (zipfian with Gray's algorithm, uniform, latest), a loader, and a
// closed-loop multi-threaded runner with optional throughput throttling,
// measuring per-operation latency histograms.
package workload

import (
	"math"
	"math/rand"
)

// Generator chooses item ordinals in [0, n) under some popularity
// distribution. Generators are NOT safe for concurrent use; give each
// worker thread its own.
type Generator interface {
	Next() int64
}

// NewGenerator builds a generator by distribution name: "uniform",
// "zipfian" (YCSB's default: SCRAMBLED zipfian with constant 0.99, so the
// hot set is spread across the whole key space rather than clustered in one
// region) or "latest" (zipfian over the most recent keys).
func NewGenerator(distribution string, n int64, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	switch distribution {
	case "zipfian":
		return NewScrambledZipfian(n, seed)
	case "latest":
		return &latestGenerator{z: NewZipfian(n, ZipfianConstant, rng), n: n}
	default:
		return &uniformGenerator{n: n, rng: rng}
	}
}

type uniformGenerator struct {
	n   int64
	rng *rand.Rand
}

// Next implements Generator.
func (g *uniformGenerator) Next() int64 { return g.rng.Int63n(g.n) }

// latestGenerator skews toward the highest ordinals ("latest" records).
type latestGenerator struct {
	z *Zipfian
	n int64
}

// Next implements Generator.
func (g *latestGenerator) Next() int64 { return g.n - 1 - g.z.Next() }

// ZipfianConstant is YCSB's default skew parameter θ.
const ZipfianConstant = 0.99

// Zipfian generates zipf-distributed ordinals in [0, n) using the
// incremental algorithm of Gray et al. ("Quickly generating billion-record
// synthetic databases"), exactly as YCSB's ZipfianGenerator does. Item 0 is
// the most popular.
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	rng   *rand.Rand
}

// NewZipfian builds a zipfian generator over [0, n) with skew theta.
func NewZipfian(n int64, theta float64, rng *rand.Rand) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads zipfian popularity across the whole key space by
// hashing, as YCSB does, so hot keys are not clustered in one region.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian builds a scrambled zipfian generator over [0, n).
func NewScrambledZipfian(n int64, seed int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, ZipfianConstant, rand.New(rand.NewSource(seed))), n: n}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next() int64 {
	return int64(fnvHash64(uint64(s.z.Next()))) % s.n
}

func fnvHash64(v uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= prime
		v >>= 8
	}
	return h >> 1 // keep it non-negative when cast to int64
}
