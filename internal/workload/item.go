package workload

import (
	"fmt"
	"math/rand"
	"sync"

	"diffindex"
)

// The extended-YCSB schema of §8.1: an item table where each row has a
// unique item id as row key and 10 columns — item_title and item_price are
// indexed, the other 8 carry 100-byte random filler so rows are ≈1 KB.
const (
	// TableName is the base table's name.
	TableName = "item"
	// TitleColumn is the exact-match-indexed column (index item_title).
	TitleColumn = "title"
	// PriceColumn is the range-indexed column (index item_price).
	PriceColumn = "price"
	// FillerColumns is the number of random filler columns.
	FillerColumns = 8
	// FillerLength is each filler column's value size in bytes.
	FillerLength = 100
)

// ItemKey renders the row key of item ordinal i.
func ItemKey(i int64) []byte { return []byte(fmt.Sprintf("item%010d", i)) }

// TitleValue renders the initial indexed title of item i: unique per item,
// so an exact-match index query returns exactly one row (§8.2's read
// experiment).
func TitleValue(i int64) []byte { return []byte(fmt.Sprintf("t%010d", i)) }

// UpdatedTitleValue renders the title written by the gen-th update of item
// i — unique per (item, gen), forcing every update to move the index entry.
func UpdatedTitleValue(i int64, gen int64) []byte {
	return []byte(fmt.Sprintf("t%010d-u%08d", i, gen))
}

// PriceValue renders the price of item i: a zero-padded ordinal, so a range
// covering a fraction f of the value space selects ≈ f of the rows (the
// selectivity control of Figure 9).
func PriceValue(i int64) []byte { return []byte(fmt.Sprintf("%012d", i)) }

// TableSplits returns count-1 evenly spaced row-key split points for the
// item table, spreading records regions across servers (§8.1: "We evenly
// distribute the data and index table among all 8 region servers").
func TableSplits(records int64, count int) [][]byte {
	if count <= 1 {
		return nil
	}
	splits := make([][]byte, 0, count-1)
	for i := 1; i < count; i++ {
		splits = append(splits, ItemKey(records*int64(i)/int64(count)))
	}
	return splits
}

// TitleIndexSplits returns evenly spaced index-key splits for item_title.
func TitleIndexSplits(records int64, count int) [][]byte {
	if count <= 1 {
		return nil
	}
	vals := make([][]byte, 0, count-1)
	for i := 1; i < count; i++ {
		vals = append(vals, TitleValue(records*int64(i)/int64(count)))
	}
	return diffindex.IndexSplitPoints(vals...)
}

// PriceIndexSplits returns evenly spaced index-key splits for item_price.
func PriceIndexSplits(records int64, count int) [][]byte {
	if count <= 1 {
		return nil
	}
	vals := make([][]byte, 0, count-1)
	for i := 1; i < count; i++ {
		vals = append(vals, PriceValue(records*int64(i)/int64(count)))
	}
	return diffindex.IndexSplitPoints(vals...)
}

// ItemRow builds the full column set of item i, using rng for the filler
// bytes.
func ItemRow(i int64, rng *rand.Rand) diffindex.Cols {
	cols := diffindex.Cols{
		TitleColumn: TitleValue(i),
		PriceColumn: PriceValue(i),
	}
	for f := 0; f < FillerColumns; f++ {
		buf := make([]byte, FillerLength)
		rng.Read(buf)
		cols[fmt.Sprintf("field%d", f)] = buf
	}
	return cols
}

// Load inserts items [0, records) using the given number of loader threads,
// then waits for asynchronous indexes to converge. It mirrors the paper's
// load phase: data present before measurement, flushed afterwards by the
// caller if reads should be disk-bound.
func Load(db *diffindex.DB, records int64, threads int) error {
	if threads <= 0 {
		threads = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, threads)
	per := (records + int64(threads) - 1) / int64(threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := db.NewClient(fmt.Sprintf("loader-%d", w))
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			lo, hi := int64(w)*per, (int64(w)+1)*per
			if hi > records {
				hi = records
			}
			for i := lo; i < hi; i++ {
				if _, err := cl.Put(TableName, ItemKey(i), ItemRow(i, rng)); err != nil {
					errCh <- fmt.Errorf("load item %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// Setup creates the item table and the requested indexes, pre-split across
// the cluster's servers, and loads the records. titleScheme/priceScheme of
// -1 skip that index (the "null"/no-index baseline).
func Setup(db *diffindex.DB, records int64, regionsPerTable int, titleScheme, priceScheme int, loaderThreads int) error {
	if err := db.CreateTable(TableName, TableSplits(records, regionsPerTable)); err != nil {
		return err
	}
	if titleScheme >= 0 {
		if err := db.CreateIndex(TableName, []string{TitleColumn}, diffindex.Scheme(titleScheme), TitleIndexSplits(records, regionsPerTable)); err != nil {
			return err
		}
	}
	if priceScheme >= 0 {
		if err := db.CreateIndex(TableName, []string{PriceColumn}, diffindex.Scheme(priceScheme), PriceIndexSplits(records, regionsPerTable)); err != nil {
			return err
		}
	}
	if err := Load(db, records, loaderThreads); err != nil {
		return err
	}
	return nil
}
