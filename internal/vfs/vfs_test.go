package vfs

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestMemFSCreateOpenWriteRead(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a/b/1.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil || sz != 11 {
		t.Fatalf("Size() = %d, %v; want 11", sz, err)
	}

	// A second handle sees the written data.
	g, err := fs.Open("a/b/1.log")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("ReadAt = %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSErrors(t *testing.T) {
	fs := NewMemFS()
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open missing: %v", err)
	}
	if err := fs.Remove("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove missing: %v", err)
	}
	if err := fs.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Rename missing: %v", err)
	}
	if _, err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f"); !errors.Is(err, ErrExist) {
		t.Errorf("Create duplicate: %v", err)
	}
}

func TestMemFSClosedHandle(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after close: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadAt after close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestMemFSReadAtEOF(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	f.Write([]byte("abc"))
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Errorf("short ReadAt = (%d, %v), want (2, EOF)", n, err)
	}
	if !bytes.Equal(buf[:n], []byte("bc")) {
		t.Errorf("data = %q", buf[:n])
	}
	if _, err := f.ReadAt(buf, 3); err != io.EOF {
		t.Errorf("ReadAt at end: %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset: want error")
	}
}

func TestMemFSListAndRename(t *testing.T) {
	fs := NewMemFS()
	for _, name := range []string{"wal/2", "wal/1", "sst/9", "wal/10"} {
		if _, err := fs.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fs.List("wal/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"wal/1", "wal/10", "wal/2"}
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
	if err := fs.Rename("wal/1", "sst/1"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("wal/1"); ok {
		t.Error("renamed file still exists under old name")
	}
	if ok, _ := fs.Exists("sst/1"); !ok {
		t.Error("renamed file missing under new name")
	}
}

func TestMemFSConcurrentAppend(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("f")
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := f.Write([]byte("0123456789")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sz, _ := f.Size()
	if sz != writers*per*10 {
		t.Errorf("size = %d, want %d", sz, writers*per*10)
	}
}

func TestLatencyFSChargesAndCounts(t *testing.T) {
	var slept time.Duration
	lfs := NewLatencyFS(NewMemFS(), LatencyProfile{
		ReadLatency:    100 * time.Microsecond,
		WriteLatency:   10 * time.Microsecond,
		SyncLatency:    50 * time.Microsecond,
		BytesPerSecond: 1 << 20,
	})
	lfs.sleep = func(d time.Duration) { slept += d }

	f, err := lfs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20) // transfer time = 1s at 1 MiB/s
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	wantWrite := 10*time.Microsecond + time.Second
	if slept != wantWrite {
		t.Errorf("write slept %v, want %v", slept, wantWrite)
	}
	slept = 0
	if _, err := f.ReadAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	wantRead := 100*time.Microsecond + time.Second
	if slept != wantRead {
		t.Errorf("read slept %v, want %v", slept, wantRead)
	}
	slept = 0
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if slept != 50*time.Microsecond {
		t.Errorf("sync slept %v", slept)
	}

	r, w, s, br, bw := lfs.Stats.Snapshot()
	if r != 1 || w != 1 || s != 1 || br != 1<<20 || bw != 1<<20 {
		t.Errorf("stats = (%d %d %d %d %d)", r, w, s, br, bw)
	}
}

func TestLatencyFSZeroProfileNoSleep(t *testing.T) {
	lfs := NewLatencyFS(NewMemFS(), LatencyProfile{})
	lfs.sleep = func(time.Duration) { t.Error("sleep called with zero profile") }
	f, _ := lfs.Create("f")
	f.Write([]byte("x"))
	f.ReadAt(make([]byte, 1), 0)
	f.Sync()
}

func TestLatencyFSPassthrough(t *testing.T) {
	lfs := NewLatencyFS(NewMemFS(), LatencyProfile{})
	if _, err := lfs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := lfs.Open("a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := lfs.Exists("a"); !ok {
		t.Error("Exists(a) = false")
	}
	if err := lfs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	names, err := lfs.List("")
	if err != nil || len(names) != 1 || names[0] != "b" {
		t.Errorf("List = %v, %v", names, err)
	}
	if err := lfs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := lfs.Open("b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open removed: %v", err)
	}
}
