package vfs

import (
	"sync/atomic"
	"time"
)

// LatencyProfile configures the simulated I/O costs of a LatencyFS. All
// durations may be zero to disable that cost. The defaults used by the
// benchmark harness model a commodity disk behind a distributed file system,
// scaled down so experiments complete quickly while preserving the paper's
// read ≫ write asymmetry (DESIGN.md substitution S1).
type LatencyProfile struct {
	// ReadLatency is charged once per ReadAt call — a random I/O (seek).
	ReadLatency time.Duration
	// WriteLatency is charged once per Write call — a sequential append.
	WriteLatency time.Duration
	// SyncLatency is charged once per Sync call — a commit-log fsync.
	SyncLatency time.Duration
	// BytesPerSecond, if non-zero, additionally charges transfer time
	// proportional to the byte count of each read and write.
	BytesPerSecond int64
}

func (p LatencyProfile) transfer(n int) time.Duration {
	if p.BytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / p.BytesPerSecond)
}

// IOStats counts I/O operations flowing through a LatencyFS. Counters are
// cumulative and safe for concurrent use; the experiment harness snapshots
// them to report per-scheme I/O costs (Table 2).
type IOStats struct {
	Reads      atomic.Int64
	Writes     atomic.Int64
	Syncs      atomic.Int64
	BytesRead  atomic.Int64
	BytesWrite atomic.Int64
}

// Snapshot returns the current counter values.
func (s *IOStats) Snapshot() (reads, writes, syncs, bytesRead, bytesWritten int64) {
	return s.Reads.Load(), s.Writes.Load(), s.Syncs.Load(), s.BytesRead.Load(), s.BytesWrite.Load()
}

// LatencyFS wraps an FS and injects I/O latency per the profile, counting
// operations in Stats. Sleeping happens outside any FS lock, so concurrent
// I/O overlaps exactly as it would on real hardware with independent queues.
type LatencyFS struct {
	inner   FS
	profile LatencyProfile
	// Stats accumulates I/O counters for the lifetime of the FS.
	Stats IOStats
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// NewLatencyFS wraps inner with the given latency profile.
func NewLatencyFS(inner FS, profile LatencyProfile) *LatencyFS {
	return &LatencyFS{inner: inner, profile: profile, sleep: time.Sleep}
}

func (fs *LatencyFS) delay(d time.Duration) {
	if d > 0 {
		fs.sleep(d)
	}
}

// Create implements FS.
func (fs *LatencyFS) Create(name string) (File, error) {
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{inner: f, fs: fs}, nil
}

// Open implements FS.
func (fs *LatencyFS) Open(name string) (File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{inner: f, fs: fs}, nil
}

// Remove implements FS.
func (fs *LatencyFS) Remove(name string) error { return fs.inner.Remove(name) }

// Rename implements FS.
func (fs *LatencyFS) Rename(oldName, newName string) error {
	return fs.inner.Rename(oldName, newName)
}

// List implements FS.
func (fs *LatencyFS) List(prefix string) ([]string, error) { return fs.inner.List(prefix) }

// Exists implements FS.
func (fs *LatencyFS) Exists(name string) (bool, error) { return fs.inner.Exists(name) }

type latencyFile struct {
	inner File
	fs    *LatencyFS
}

func (f *latencyFile) Write(p []byte) (int, error) {
	f.fs.delay(f.fs.profile.WriteLatency + f.fs.profile.transfer(len(p)))
	n, err := f.inner.Write(p)
	f.fs.Stats.Writes.Add(1)
	f.fs.Stats.BytesWrite.Add(int64(n))
	return n, err
}

func (f *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.delay(f.fs.profile.ReadLatency + f.fs.profile.transfer(len(p)))
	n, err := f.inner.ReadAt(p, off)
	f.fs.Stats.Reads.Add(1)
	f.fs.Stats.BytesRead.Add(int64(n))
	return n, err
}

func (f *latencyFile) Sync() error {
	f.fs.delay(f.fs.profile.SyncLatency)
	f.fs.Stats.Syncs.Add(1)
	return f.inner.Sync()
}

func (f *latencyFile) Size() (int64, error) { return f.inner.Size() }
func (f *latencyFile) Close() error         { return f.inner.Close() }
